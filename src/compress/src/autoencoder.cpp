#include "nvcim/compress/autoencoder.hpp"

#include <cmath>

namespace nvcim::compress {

Autoencoder::Autoencoder(AutoencoderConfig cfg) : cfg_(cfg) {
  Rng rng(cfg_.seed);
  enc1_ = nn::Linear(cfg_.input_dim, cfg_.hidden_dim, rng, "ae.enc1");
  enc2_ = nn::Linear(cfg_.hidden_dim, cfg_.code_dim, rng, "ae.enc2");
  dec1_ = nn::Linear(cfg_.code_dim, cfg_.hidden_dim, rng, "ae.dec1");
  dec2_ = nn::Linear(cfg_.hidden_dim, cfg_.input_dim, rng, "ae.dec2");
}

namespace {

// y = x·W + b and the activation, with the exact arithmetic of the tape path
// (nvcim::matmul, then a row-broadcast bias add, then the elementwise op) so
// the tape-free inference forwards stay bit-identical to training-side ones.
void affine_into(const Matrix& x, const nn::Linear& layer, Matrix& out) {
  matmul_into(x, layer.w.value, out);
  const float* bias = layer.b.value.data();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    float* row = out.data() + r * out.cols();
    for (std::size_t c = 0; c < out.cols(); ++c) row[c] += bias[c];
  }
}

void gelu_inplace(Matrix& m) {
  for (std::size_t i = 0; i < m.size(); ++i) m.at_flat(i) = autograd::gelu_value(m.at_flat(i));
}

void tanh_inplace(Matrix& m) {
  for (std::size_t i = 0; i < m.size(); ++i) m.at_flat(i) = std::tanh(m.at_flat(i));
}

}  // namespace

float Autoencoder::run_training(const std::vector<Matrix>& data, std::size_t steps,
                                bool reset_opt) {
  std::vector<const Matrix*> parts;
  parts.reserve(data.size());
  for (const Matrix& m : data) {
    NVCIM_CHECK_MSG(m.cols() == cfg_.input_dim, "autoencoder input dim mismatch");
    if (m.rows() > 0) parts.push_back(&m);
  }
  NVCIM_CHECK_MSG(!parts.empty(), "no training rows");
  const Matrix all = nvcim::stack_rows(parts);
  Rng rng(cfg_.seed ^ (opt_steps_done_ + 1));
  nn::Adam::Config acfg;
  acfg.schedule.kind = nn::LrSchedule::Kind::Cosine;
  acfg.schedule.base_lr = cfg_.lr;
  acfg.schedule.total_steps = steps;
  nn::Adam adam(acfg);
  if (reset_opt) opt_steps_done_ = 0;

  // Row RMS of the data, used to scale the augmentation noise.
  const float data_rms =
      all.frobenius_norm() / std::sqrt(static_cast<float>(all.size()));

  float last = 0.0f;
  for (std::size_t step = 0; step < steps; ++step) {
    // Assemble a batch of random rows (optionally augmented).
    const std::size_t bs = std::min(cfg_.batch_size, all.rows());
    Matrix batch(bs, cfg_.input_dim);
    for (std::size_t b = 0; b < bs; ++b) {
      Matrix row = all.row(rng.uniform_index(all.rows()));
      if (cfg_.augment) {
        if (rng.uniform() < 0.3) {
          // Pure random row with data-matched RMS: the code must be faithful
          // over the whole operating ball, not just the data manifold, since
          // prompt-tuned OVTs drift off-manifold before encoding.
          const float rms = data_rms * static_cast<float>(rng.uniform(0.5, 2.5));
          for (std::size_t c = 0; c < row.size(); ++c)
            row.at_flat(c) = static_cast<float>(rng.normal(0.0, rms));
        } else {
          const Matrix other = all.row(rng.uniform_index(all.rows()));
          const float alpha = static_cast<float>(rng.uniform());
          row *= alpha;
          row.add_scaled(other, 1.0f - alpha);
          row *=
              static_cast<float>(rng.uniform(cfg_.augment_scale_lo, cfg_.augment_scale_hi));
          for (std::size_t c = 0; c < row.size(); ++c)
            row.at_flat(c) +=
                static_cast<float>(rng.normal(0.0, cfg_.augment_noise_std * data_rms));
        }
      }
      batch.set_row(b, row);
    }

    autograd::Tape tape;
    nn::Binder bind(tape, /*frozen=*/false);
    autograd::Var x = tape.leaf(batch, false);
    autograd::Var code = tape.tanh_op(enc2_.forward(bind, tape.gelu(enc1_.forward(bind, x))));
    autograd::Var rec = dec2_.forward(bind, tape.gelu(dec1_.forward(bind, code)));
    autograd::Var loss = tape.mse(rec, batch);
    tape.backward(loss);
    adam.step(bind.bound());
    last = loss.value()(0, 0);
  }
  opt_steps_done_ += steps;
  return last;
}

float Autoencoder::train(const std::vector<Matrix>& data) {
  return run_training(data, cfg_.steps, /*reset_opt=*/true);
}

float Autoencoder::update(const std::vector<Matrix>& data, std::size_t steps) {
  return run_training(data, steps, /*reset_opt=*/false);
}

void Autoencoder::encode_into(const Matrix& x, Matrix& out, Scratch* scratch) const {
  NVCIM_CHECK_MSG(x.cols() == cfg_.input_dim, "autoencoder input dim mismatch");
  Scratch local;
  Matrix& hidden = (scratch != nullptr ? scratch->hidden : local.hidden);
  affine_into(x, enc1_, hidden);
  gelu_inplace(hidden);
  affine_into(hidden, enc2_, out);
  tanh_inplace(out);
}

void Autoencoder::decode_into(const Matrix& code, Matrix& out, Scratch* scratch) const {
  NVCIM_CHECK_MSG(code.cols() == cfg_.code_dim, "autoencoder code dim mismatch");
  Scratch local;
  Matrix& hidden = (scratch != nullptr ? scratch->hidden : local.hidden);
  affine_into(code, dec1_, hidden);
  gelu_inplace(hidden);
  affine_into(hidden, dec2_, out);
}

Matrix Autoencoder::encode(const Matrix& x) const {
  Matrix out;
  encode_into(x, out);
  return out;
}

Matrix Autoencoder::decode(const Matrix& code) const {
  Matrix out;
  decode_into(code, out);
  return out;
}

float Autoencoder::reconstruction_error(const Matrix& x) const {
  const Matrix rec = decode(encode(x));
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(x.at_flat(i)) - rec.at_flat(i);
    s += d * d;
  }
  return static_cast<float>(s / static_cast<double>(x.size()));
}

}  // namespace nvcim::compress
