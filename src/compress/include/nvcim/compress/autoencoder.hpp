#pragma once

#include <vector>

#include "nvcim/nn/layers.hpp"
#include "nvcim/nn/optim.hpp"

namespace nvcim::compress {

/// Deep-Compression-style autoencoder that maps d-dimensional token rows to
/// a fixed-width code whose precision is NVM-compatible (the paper's
/// "embedding size of 48 and precision of int16"). tanh bounds the code to
/// [-1, 1] so int16 symmetric quantization covers the full range.
struct AutoencoderConfig {
  std::size_t input_dim = 32;
  std::size_t code_dim = 48;
  std::size_t hidden_dim = 64;
  std::size_t steps = 300;
  std::size_t batch_size = 16;
  float lr = 1e-2f;
  std::uint64_t seed = 23;
  /// Denoising-style training augmentation: each batch row is a random
  /// convex mixture of two data rows, scale-jittered and Gaussian-perturbed.
  /// Prompt-tuned OVTs drift away from the raw embedding manifold, so the
  /// encoder must generalize to a neighbourhood of it, not memorize it.
  bool augment = true;
  float augment_noise_std = 0.15f;   ///< relative to the row RMS
  float augment_scale_lo = 0.6f;
  float augment_scale_hi = 1.8f;
};

class Autoencoder {
 public:
  /// Reusable hidden-layer buffer for the inference-path forwards. One per
  /// thread: the Autoencoder itself stays const/thread-safe while callers
  /// that loop (e.g. serving workers) stop churning temporaries.
  struct Scratch {
    Matrix hidden;
  };

  explicit Autoencoder(AutoencoderConfig cfg);

  const AutoencoderConfig& config() const { return cfg_; }

  /// Train from scratch on row vectors (each Matrix is n×input_dim; rows are
  /// pooled together). Returns the final reconstruction MSE.
  float train(const std::vector<Matrix>& data);

  /// Incremental refresh on new data (the paper updates the autoencoder with
  /// the buffer leftovers after representative selection).
  float update(const std::vector<Matrix>& data, std::size_t steps);

  /// Encode n×input_dim rows to n×code_dim (values in [-1, 1]). Rows are
  /// independent: encoding a stack of rows equals encoding each row alone.
  Matrix encode(const Matrix& x) const;
  /// Decode n×code_dim codes back to n×input_dim.
  Matrix decode(const Matrix& code) const;

  /// encode() written into caller storage; allocation-free once `out` and
  /// `scratch` are warm. Bit-identical to encode().
  void encode_into(const Matrix& x, Matrix& out, Scratch* scratch = nullptr) const;
  /// decode() written into caller storage. Bit-identical to decode().
  void decode_into(const Matrix& code, Matrix& out, Scratch* scratch = nullptr) const;

  /// Mean squared reconstruction error of x (n×input_dim).
  float reconstruction_error(const Matrix& x) const;

 private:
  float run_training(const std::vector<Matrix>& data, std::size_t steps, bool reset_opt);

  AutoencoderConfig cfg_;
  nn::Linear enc1_, enc2_, dec1_, dec2_;
  std::size_t opt_steps_done_ = 0;
};

}  // namespace nvcim::compress
