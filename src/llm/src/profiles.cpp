#include "nvcim/llm/profiles.hpp"

namespace nvcim::llm {

LlmProfile gemma2b_sim() {
  LlmProfile p;
  p.name = "Gemma-2B(sim)";
  p.d_model = 32;
  p.n_layers = 2;
  p.n_heads = 4;
  p.ffn_mult = 2;
  p.quant_bits = 0;
  p.pretrain.steps = 900;
  p.pretrain.lr = 3e-3f;
  return p;
}

LlmProfile mistral7b_gptq_sim() {
  LlmProfile p;
  p.name = "Mistral-7B-GPTQ(sim)";
  p.d_model = 48;
  p.n_layers = 3;
  p.n_heads = 4;
  p.ffn_mult = 2;
  p.quant_bits = 4;  // GPTQ-style 4-bit weights
  p.pretrain.steps = 900;
  p.pretrain.lr = 3e-3f;
  return p;
}

LlmProfile phi2_sim() {
  LlmProfile p;
  p.name = "Phi-2(sim)";
  p.d_model = 40;
  p.n_layers = 2;
  p.n_heads = 4;
  p.ffn_mult = 3;
  p.quant_bits = 0;
  p.pretrain.steps = 900;
  p.pretrain.lr = 3e-3f;
  return p;
}

std::vector<LlmProfile> edge_llm_profiles() {
  return {gemma2b_sim(), mistral7b_gptq_sim(), phi2_sim()};
}

TinyLM build_pretrained(const LlmProfile& profile, std::size_t vocab, std::size_t max_seq,
                        const std::vector<TrainExample>& corpus, std::uint64_t seed) {
  TinyLM model(profile.make_config(vocab, max_seq), seed);
  PretrainConfig cfg = profile.pretrain;
  cfg.seed = seed ^ 0xA5A5A5A5ull;
  pretrain(model, corpus, cfg);
  if (profile.quant_bits > 0) quantize_weights(model, profile.quant_bits);
  return model;
}

}  // namespace nvcim::llm
