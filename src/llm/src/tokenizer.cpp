#include "nvcim/llm/tokenizer.hpp"

#include <sstream>

#include "nvcim/common/check.hpp"

namespace nvcim::llm {

Tokenizer::Tokenizer() {
  for (const char* w : {"<pad>", "<unk>", "<bos>", "<eos>", "<sep>"}) {
    index_.emplace(w, static_cast<int>(words_.size()));
    words_.emplace_back(w);
  }
}

int Tokenizer::id_of(const std::string& word, bool grow) {
  auto it = index_.find(word);
  if (it != index_.end()) return it->second;
  if (!grow || frozen_) return unk_id();
  const int id = static_cast<int>(words_.size());
  index_.emplace(word, id);
  words_.push_back(word);
  return id;
}

int Tokenizer::lookup(const std::string& word) const {
  auto it = index_.find(word);
  return it == index_.end() ? unk_id() : it->second;
}

const std::string& Tokenizer::word_of(int id) const {
  NVCIM_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < words_.size(),
                  "token id " << id << " out of vocab");
  return words_[static_cast<std::size_t>(id)];
}

std::vector<int> Tokenizer::encode(const std::string& text, bool grow) {
  std::vector<int> out;
  std::istringstream is(text);
  std::string w;
  while (is >> w) out.push_back(id_of(w, grow));
  return out;
}

std::string Tokenizer::decode(const std::vector<int>& ids) const {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) out += ' ';
    out += word_of(ids[i]);
  }
  return out;
}

}  // namespace nvcim::llm
