#include "nvcim/llm/tuners.hpp"

namespace nvcim::llm {
namespace {

nn::Adam make_adam(const TunerConfig& cfg) {
  nn::Adam::Config acfg;
  acfg.clip_norm = cfg.clip_norm;
  acfg.schedule.kind = nn::LrSchedule::Kind::Cosine;
  acfg.schedule.base_lr = cfg.lr;
  acfg.schedule.total_steps = cfg.steps;
  return nn::Adam(acfg);
}

/// Bind a locally owned Param as a trainable leaf and, when a perturbation
/// hook is present, route the forward pass through the perturbed value while
/// keeping the gradient path attached to the clean parameter.
autograd::Var bind_with_noise(autograd::Tape& tape, nn::Param& p, const PerturbFn& perturb,
                              Rng& rng,
                              std::vector<std::pair<nn::Param*, autograd::Var>>& bindings) {
  autograd::Var v = tape.leaf(p.value, true);
  bindings.emplace_back(&p, v);
  if (!perturb) return v;
  Matrix delta = perturb(p.value, rng);
  delta -= p.value;
  return tape.add_const(v, std::move(delta));
}

std::vector<const TrainExample*> pick_batch(const std::vector<TrainExample>& examples,
                                            std::size_t batch_size, Rng& rng) {
  std::vector<const TrainExample*> batch;
  if (examples.size() <= batch_size) {
    for (const auto& e : examples) batch.push_back(&e);
  } else {
    for (std::size_t b = 0; b < batch_size; ++b)
      batch.push_back(&examples[rng.uniform_index(examples.size())]);
  }
  return batch;
}

}  // namespace

Matrix SoftPromptTuner::train(TinyLM& model, const std::vector<TrainExample>& examples) const {
  NVCIM_CHECK_MSG(!examples.empty(), "no examples for prompt tuning");
  Rng rng(cfg_.seed);
  const std::size_t d = model.config().d_model;
  const bool anchored = !cfg_.init.empty();
  Matrix init = cfg_.init;
  if (!anchored) {
    init = Matrix::randn(cfg_.n_virtual_tokens, d, rng, cfg_.init_std);
  } else {
    NVCIM_CHECK_MSG(init.rows() == cfg_.n_virtual_tokens && init.cols() == d,
                    "prompt init must be n_virtual_tokens x d_model");
  }
  const Matrix anchor = init;
  nn::Param prompt(std::move(init), "soft_prompt");
  nn::Adam adam = make_adam(cfg_);

  for (std::size_t step = 0; step < cfg_.steps; ++step) {
    autograd::Tape tape;
    nn::Binder bind(tape, /*frozen=*/true);
    std::vector<std::pair<nn::Param*, autograd::Var>> bindings;
    autograd::Var p_leaf = tape.leaf(prompt.value, true);
    bindings.emplace_back(&prompt, p_leaf);
    autograd::Var p_used = p_leaf;
    if (cfg_.perturb) {
      Matrix delta = cfg_.perturb(prompt.value, rng);
      delta -= prompt.value;
      p_used = tape.add_const(p_leaf, std::move(delta));
    }

    const auto batch = pick_batch(examples, cfg_.batch_size, rng);
    autograd::Var total = tape.leaf(Matrix(1, 1, 0.0f), false);
    for (const TrainExample* ex : batch)
      total = tape.add(total, model.loss(bind, *ex, p_used));
    autograd::Var loss = tape.scale(total, 1.0f / static_cast<float>(batch.size()));
    if (anchored && cfg_.anchor_weight > 0.0f)
      loss = tape.add(loss, tape.scale(tape.mse(p_leaf, anchor), cfg_.anchor_weight));
    tape.backward(loss);
    adam.step(bindings);
  }
  return prompt.value;
}

KvPrefixValues PrefixKvTuner::train(TinyLM& model,
                                    const std::vector<TrainExample>& examples) const {
  NVCIM_CHECK_MSG(!examples.empty(), "no examples for prefix tuning");
  Rng rng(cfg_.seed);
  const std::size_t d = model.config().d_model;
  const std::size_t L = model.config().n_layers;

  std::vector<nn::Param> keys, values;
  keys.reserve(L);
  values.reserve(L);
  for (std::size_t l = 0; l < L; ++l) {
    keys.emplace_back(Matrix::randn(cfg_.n_virtual_tokens, d, rng, cfg_.init_std),
                      "prefix_k" + std::to_string(l));
    values.emplace_back(Matrix::randn(cfg_.n_virtual_tokens, d, rng, cfg_.init_std),
                        "prefix_v" + std::to_string(l));
  }
  nn::Adam adam = make_adam(cfg_);

  for (std::size_t step = 0; step < cfg_.steps; ++step) {
    autograd::Tape tape;
    nn::Binder bind(tape, /*frozen=*/true);
    std::vector<std::pair<nn::Param*, autograd::Var>> bindings;
    KvPrefixVars kv;
    for (std::size_t l = 0; l < L; ++l) {
      autograd::Var k = bind_with_noise(tape, keys[l], cfg_.perturb, rng, bindings);
      autograd::Var v = bind_with_noise(tape, values[l], cfg_.perturb, rng, bindings);
      kv.emplace_back(k, v);
    }

    const auto batch = pick_batch(examples, cfg_.batch_size, rng);
    autograd::Var total = tape.leaf(Matrix(1, 1, 0.0f), false);
    for (const TrainExample* ex : batch)
      total = tape.add(total, model.loss(bind, *ex, std::nullopt, &kv));
    autograd::Var loss = tape.scale(total, 1.0f / static_cast<float>(batch.size()));
    tape.backward(loss);
    adam.step(bindings);
  }

  KvPrefixValues out(L);
  for (std::size_t l = 0; l < L; ++l) {
    out[l].key = keys[l].value;
    out[l].value = values[l].value;
  }
  return out;
}

DeptAdapters DeptTuner::train(TinyLM& model, const std::vector<TrainExample>& examples) const {
  NVCIM_CHECK_MSG(!examples.empty(), "no examples for DEPT tuning");
  const TunerConfig& base = cfg_.base;
  Rng rng(base.seed);
  const std::size_t d = model.config().d_model;
  const std::size_t V = model.config().vocab;

  nn::Param prompt(Matrix::randn(base.n_virtual_tokens, d, rng, base.init_std), "dept_prompt");
  nn::Param lora_a(Matrix::randn(V, cfg_.rank, rng, 0.05f), "dept_lora_a");
  nn::Param lora_b(Matrix(cfg_.rank, d, 0.0f), "dept_lora_b");  // zero init: delta starts at 0
  nn::Adam adam = make_adam(base);

  for (std::size_t step = 0; step < base.steps; ++step) {
    autograd::Tape tape;
    nn::Binder bind(tape, /*frozen=*/true);
    std::vector<std::pair<nn::Param*, autograd::Var>> bindings;
    autograd::Var p_used = bind_with_noise(tape, prompt, base.perturb, rng, bindings);
    autograd::Var a = tape.leaf(lora_a.value, true);
    autograd::Var b = tape.leaf(lora_b.value, true);
    bindings.emplace_back(&lora_a, a);
    bindings.emplace_back(&lora_b, b);
    autograd::Var delta = tape.matmul(a, b);

    const auto batch = pick_batch(examples, base.batch_size, rng);
    autograd::Var total = tape.leaf(Matrix(1, 1, 0.0f), false);
    for (const TrainExample* ex : batch)
      total = tape.add(total, model.loss(bind, *ex, p_used, nullptr, delta));
    autograd::Var loss = tape.scale(total, 1.0f / static_cast<float>(batch.size()));
    tape.backward(loss);
    adam.step(bindings);
  }

  return DeptAdapters{prompt.value, lora_a.value, lora_b.value};
}

}  // namespace nvcim::llm
