#include "nvcim/llm/pretrain.hpp"

namespace nvcim::llm {

float pretrain(TinyLM& model, const std::vector<TrainExample>& corpus,
               const PretrainConfig& cfg) {
  NVCIM_CHECK_MSG(!corpus.empty(), "pretraining corpus is empty");
  Rng rng(cfg.seed);
  nn::Adam::Config acfg;
  acfg.clip_norm = cfg.clip_norm;
  acfg.schedule.kind = nn::LrSchedule::Kind::Cosine;
  acfg.schedule.base_lr = cfg.lr;
  acfg.schedule.total_steps = cfg.steps;
  acfg.schedule.warmup_steps = cfg.steps / 20;
  nn::Adam adam(acfg);

  double tail_loss = 0.0;
  std::size_t tail_count = 0;
  const std::size_t tail_begin = cfg.steps - cfg.steps / 10 - 1;

  for (std::size_t step = 0; step < cfg.steps; ++step) {
    autograd::Tape tape;
    nn::Binder bind(tape, /*frozen=*/false);
    autograd::Var total = tape.leaf(Matrix(1, 1, 0.0f), false);
    const std::size_t bs = std::min(cfg.batch_size, corpus.size());
    for (std::size_t b = 0; b < bs; ++b) {
      const TrainExample& ex = corpus[rng.uniform_index(corpus.size())];
      total = tape.add(total, model.loss(bind, ex));
    }
    autograd::Var mean_loss = tape.scale(total, 1.0f / static_cast<float>(bs));
    tape.backward(mean_loss);
    adam.step(bind.bound());
    if (step >= tail_begin) {
      tail_loss += mean_loss.value()(0, 0);
      ++tail_count;
    }
  }
  return tail_count == 0 ? 0.0f : static_cast<float>(tail_loss / static_cast<double>(tail_count));
}

float evaluate_loss(TinyLM& model, const std::vector<TrainExample>& examples) {
  NVCIM_CHECK(!examples.empty());
  double sum = 0.0;
  for (const TrainExample& ex : examples) {
    autograd::Tape tape;
    nn::Binder bind(tape, /*frozen=*/true);
    sum += model.loss(bind, ex).value()(0, 0);
  }
  return static_cast<float>(sum / static_cast<double>(examples.size()));
}

}  // namespace nvcim::llm
