#include "nvcim/llm/model.hpp"

#include <cmath>

namespace nvcim::llm {

TrainExample make_example(const std::vector<int>& input, const std::vector<int>& completion,
                          const std::vector<int>& prefix) {
  TrainExample ex;
  ex.prefix_tokens = prefix;
  ex.tokens = input;
  ex.tokens.insert(ex.tokens.end(), completion.begin(), completion.end());
  ex.targets.assign(ex.tokens.size(), -1);
  // Position j predicts tokens[j+1]; train on predictions of completion tokens.
  const std::size_t n_in = input.size();
  NVCIM_CHECK_MSG(n_in >= 1, "input must be non-empty");
  for (std::size_t j = n_in - 1; j + 1 < ex.tokens.size(); ++j)
    ex.targets[j] = ex.tokens[j + 1];
  return ex;
}

TinyLM::TinyLM(TinyLmConfig cfg, std::uint64_t seed) : cfg_(cfg) {
  NVCIM_CHECK(cfg_.vocab > 0 && cfg_.d_model > 0 && cfg_.n_layers > 0);
  Rng rng(seed);
  tok_emb_ = nn::Param(nn::scaled_normal_init(cfg_.vocab, cfg_.d_model, cfg_.d_model, rng),
                       "tok_emb");
  pos_emb_ = nn::Param(nn::scaled_normal_init(cfg_.max_seq, cfg_.d_model, cfg_.d_model, rng),
                       "pos_emb");
  blocks_.reserve(cfg_.n_layers);
  for (std::size_t l = 0; l < cfg_.n_layers; ++l)
    blocks_.emplace_back(cfg_.d_model, cfg_.n_heads, cfg_.ffn_hidden, rng,
                         "block" + std::to_string(l));
  final_ln_ = nn::LayerNorm(cfg_.d_model, "final_ln");
  lm_head_ = nn::Linear(cfg_.d_model, cfg_.vocab, rng, "lm_head");
}

nn::ParamSet TinyLM::params() {
  nn::ParamSet ps;
  ps.add(tok_emb_);
  ps.add(pos_emb_);
  for (auto& b : blocks_) b.collect(ps);
  final_ln_.collect(ps);
  lm_head_.collect(ps);
  return ps;
}

Var TinyLM::forward_hidden(nn::Binder& bind, const std::vector<int>& tokens,
                           std::optional<Var> soft_prompt, const KvPrefixVars* kv_prefixes,
                           std::optional<Var> embed_delta, std::size_t& n_soft_out,
                           std::optional<Var> pre_embedded) {
  autograd::Tape& t = bind.tape();
  NVCIM_CHECK_MSG(!tokens.empty(), "empty token sequence");
  if (kv_prefixes != nullptr)
    NVCIM_CHECK_MSG(kv_prefixes->size() == cfg_.n_layers, "one KV prefix per layer required");

  Var x;
  if (pre_embedded) {
    NVCIM_CHECK_MSG(!embed_delta, "pre-embedded rows cannot combine with embed_delta");
    NVCIM_CHECK_MSG(pre_embedded->value().rows() == tokens.size() &&
                        pre_embedded->value().cols() == cfg_.d_model,
                    "pre-embedded rows must be seq_len x d_model");
    x = *pre_embedded;
  } else {
    Var table = bind(tok_emb_);
    if (embed_delta) table = t.add(table, *embed_delta);
    x = t.embedding(table, tokens);
  }

  std::size_t n_soft = 0;
  if (soft_prompt) {
    NVCIM_CHECK_MSG(soft_prompt->value().cols() == cfg_.d_model,
                    "soft prompt must have d_model columns");
    n_soft = soft_prompt->value().rows();
    x = t.concat_rows(*soft_prompt, x);
  }
  n_soft_out = n_soft;

  NVCIM_CHECK_MSG(n_soft <= cfg_.prompt_slots,
                  "soft prompt length " << n_soft << " exceeds prompt_slots "
                                        << cfg_.prompt_slots);
  NVCIM_CHECK_MSG(cfg_.prompt_slots + tokens.size() <= cfg_.max_seq,
                  "sequence length exceeds max_seq " << cfg_.max_seq);
  // Prompt rows right-align into the reserved slot region [0, prompt_slots);
  // real tokens always sit at positions >= prompt_slots.
  std::vector<int> pos_ids(n_soft + tokens.size());
  for (std::size_t i = 0; i < n_soft; ++i)
    pos_ids[i] = static_cast<int>(cfg_.prompt_slots - n_soft + i);
  for (std::size_t i = 0; i < tokens.size(); ++i)
    pos_ids[n_soft + i] = static_cast<int>(cfg_.prompt_slots + i);
  x = t.add(x, t.embedding(bind(pos_emb_), pos_ids));

  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    if (kv_prefixes != nullptr) {
      const auto& [pk, pv] = (*kv_prefixes)[l];
      x = blocks_[l].forward_with_prefix_vars(bind, x, pk, pv);
    } else {
      x = blocks_[l].forward_with_prefix_vars(bind, x, std::nullopt, std::nullopt);
    }
  }
  return final_ln_.forward(bind, x);
}

Var TinyLM::logits(nn::Binder& bind, const std::vector<int>& tokens,
                   std::optional<Var> soft_prompt, const KvPrefixVars* kv_prefixes,
                   std::optional<Var> embed_delta) {
  std::size_t n_soft = 0;
  Var h = forward_hidden(bind, tokens, soft_prompt, kv_prefixes, embed_delta, n_soft);
  Var z = lm_head_.forward(bind, h);
  if (n_soft > 0) z = bind.tape().slice_rows(z, n_soft, n_soft + tokens.size());
  return z;
}

Var TinyLM::loss(nn::Binder& bind, const TrainExample& ex, std::optional<Var> soft_prompt,
                 const KvPrefixVars* kv_prefixes, std::optional<Var> embed_delta) {
  NVCIM_CHECK_MSG(ex.tokens.size() == ex.targets.size(), "tokens/targets length mismatch");
  if (!ex.prefix_tokens.empty()) {
    NVCIM_CHECK_MSG(!soft_prompt.has_value(),
                    "cannot combine prefix_tokens with an explicit soft prompt");
    soft_prompt = bind.tape().embedding(bind(tok_emb_), ex.prefix_tokens);
  }
  Var z = logits(bind, ex.tokens, soft_prompt, kv_prefixes, embed_delta);
  return bind.tape().cross_entropy(z, ex.targets);
}

Matrix TinyLM::logits_inference(const std::vector<int>& tokens, const Matrix* soft_prompt,
                                const KvPrefixValues* kv_prefixes,
                                const Matrix* embed_delta) const {
  auto* self = const_cast<TinyLM*>(this);
  autograd::Tape tape;
  nn::Binder bind(tape, /*frozen=*/true);
  std::optional<Var> sp;
  if (soft_prompt != nullptr) sp = tape.leaf(*soft_prompt, false);
  std::optional<Var> ed;
  if (embed_delta != nullptr) ed = tape.leaf(*embed_delta, false);
  KvPrefixVars kv_vars;
  const KvPrefixVars* kv_ptr = nullptr;
  if (kv_prefixes != nullptr) {
    for (const auto& p : *kv_prefixes)
      kv_vars.emplace_back(tape.leaf(p.key, false), tape.leaf(p.value, false));
    kv_ptr = &kv_vars;
  }
  Var z = self->logits(bind, tokens, sp, kv_ptr, ed);
  return z.value();
}

std::size_t TinyLM::classify(const std::vector<int>& tokens, const std::vector<int>& label_ids,
                             const Matrix* soft_prompt, const KvPrefixValues* kv_prefixes,
                             const Matrix* embed_delta) const {
  NVCIM_CHECK(!label_ids.empty());
  const Matrix z = logits_inference(tokens, soft_prompt, kv_prefixes, embed_delta);
  const std::size_t last = z.rows() - 1;
  std::size_t best = 0;
  float best_logit = -1e30f;
  for (std::size_t i = 0; i < label_ids.size(); ++i) {
    const float v = z(last, static_cast<std::size_t>(label_ids[i]));
    if (v > best_logit) {
      best_logit = v;
      best = i;
    }
  }
  return best;
}

std::vector<std::size_t> TinyLM::classify_batch(
    const std::vector<const std::vector<int>*>& seqs, const std::vector<int>& label_ids,
    const std::vector<const Matrix*>& soft_prompts) const {
  NVCIM_CHECK(!label_ids.empty());
  NVCIM_CHECK_MSG(soft_prompts.size() == seqs.size(), "one soft prompt (or null) per sequence");
  auto* self = const_cast<TinyLM*>(this);

  // One gather pass over the embedding table for the whole group.
  std::vector<Matrix> embeds;
  embed_batch_into(seqs, embeds);

  std::vector<std::size_t> out(seqs.size(), 0);
  autograd::Tape tape;  // reused across sequences; clear() keeps its storage
  for (std::size_t b = 0; b < seqs.size(); ++b) {
    tape.clear();
    nn::Binder bind(tape, /*frozen=*/true);
    std::optional<Var> sp;
    if (soft_prompts[b] != nullptr) sp = tape.leaf(*soft_prompts[b], false);
    std::size_t n_soft = 0;
    Var h = self->forward_hidden(bind, *seqs[b], sp, nullptr, std::nullopt, n_soft,
                                 tape.leaf(embeds[b], false));
    Var z = self->lm_head_.forward(bind, h);
    const Matrix& zv = z.value();
    // Logits rows span [n_soft, n_soft + seq_len); classify() reads the last.
    const std::size_t last = n_soft + seqs[b]->size() - 1;
    std::size_t best = 0;
    float best_logit = -1e30f;
    for (std::size_t i = 0; i < label_ids.size(); ++i) {
      const float v = zv(last, static_cast<std::size_t>(label_ids[i]));
      if (v > best_logit) {
        best_logit = v;
        best = i;
      }
    }
    out[b] = best;
  }
  return out;
}

std::vector<int> TinyLM::generate(const std::vector<int>& prompt, std::size_t max_new_tokens,
                                  float temperature, Rng& rng, int eos_id,
                                  const Matrix* soft_prompt, const KvPrefixValues* kv_prefixes,
                                  const Matrix* embed_delta) const {
  std::vector<int> seq = prompt;
  std::vector<int> out;
  for (std::size_t step = 0; step < max_new_tokens; ++step) {
    if (cfg_.prompt_slots + seq.size() + 1 > cfg_.max_seq) break;
    const Matrix z = logits_inference(seq, soft_prompt, kv_prefixes, embed_delta);
    const std::size_t last = z.rows() - 1;
    int next = 0;
    if (temperature <= 1e-6f) {
      float best = -1e30f;
      for (std::size_t c = 0; c < z.cols(); ++c)
        if (z(last, c) > best) {
          best = z(last, c);
          next = static_cast<int>(c);
        }
    } else {
      // Temperature softmax sampling.
      float mx = -1e30f;
      for (std::size_t c = 0; c < z.cols(); ++c) mx = std::max(mx, z(last, c));
      std::vector<double> p(z.cols());
      double denom = 0.0;
      for (std::size_t c = 0; c < z.cols(); ++c) {
        p[c] = std::exp(static_cast<double>((z(last, c) - mx) / temperature));
        denom += p[c];
      }
      double u = rng.uniform() * denom;
      for (std::size_t c = 0; c < z.cols(); ++c) {
        u -= p[c];
        if (u <= 0.0) {
          next = static_cast<int>(c);
          break;
        }
      }
    }
    if (next == eos_id) break;
    out.push_back(next);
    seq.push_back(next);
  }
  return out;
}

Matrix TinyLM::embed(const std::vector<int>& tokens) const {
  Matrix e;
  embed_into(tokens, e);
  return e;
}

void TinyLM::embed_into(const std::vector<int>& tokens, Matrix& out) const {
  out.resize(tokens.size(), cfg_.d_model);
  const float* table = tok_emb_.value.data();
  for (std::size_t r = 0; r < tokens.size(); ++r) {
    NVCIM_CHECK(tokens[r] >= 0 && static_cast<std::size_t>(tokens[r]) < cfg_.vocab);
    const float* src = table + static_cast<std::size_t>(tokens[r]) * cfg_.d_model;
    std::copy(src, src + cfg_.d_model, out.data() + r * cfg_.d_model);
  }
}

std::vector<Matrix> TinyLM::embed_batch(const std::vector<const std::vector<int>*>& seqs) const {
  std::vector<Matrix> out;
  embed_batch_into(seqs, out);
  return out;
}

void TinyLM::embed_batch_into(const std::vector<const std::vector<int>*>& seqs,
                              std::vector<Matrix>& out) const {
  out.resize(seqs.size());
  for (std::size_t b = 0; b < seqs.size(); ++b) {
    NVCIM_CHECK_MSG(seqs[b] != nullptr, "embed_batch: null sequence");
    embed_into(*seqs[b], out[b]);
  }
}

Matrix TinyLM::embed_mean(const std::vector<int>& tokens) const {
  const Matrix e = embed(tokens);
  Matrix m(1, cfg_.d_model, 0.0f);
  for (std::size_t r = 0; r < e.rows(); ++r)
    for (std::size_t c = 0; c < e.cols(); ++c) m(0, c) += e(r, c);
  m *= 1.0f / static_cast<float>(e.rows());
  return m;
}

void quantize_weights(TinyLM& model, int bits) {
  NVCIM_CHECK_MSG(bits >= 2 && bits <= 16, "quantization bits out of range");
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  auto quantize = [&](Matrix& w) {
    const float ma = w.max_abs();
    if (ma == 0.0f) return;
    const float scale = ma / qmax;
    for (std::size_t i = 0; i < w.size(); ++i)
      w.at_flat(i) = std::round(w.at_flat(i) / scale) * scale;
  };
  nn::ParamSet ps = model.params();
  for (nn::Param* p : ps.all()) {
    // Quantize weight matrices and embedding tables; leave LayerNorm
    // gains/biases and Linear biases in full precision (GPTQ convention).
    const std::string& n = p->name;
    const bool is_weight = n.size() >= 2 && n.compare(n.size() - 2, 2, ".w") == 0;
    const bool is_embedding = n == "tok_emb" || n == "pos_emb";
    if (is_weight || is_embedding) quantize(p->value);
  }
}

}  // namespace nvcim::llm
