#pragma once

#include <string>
#include <vector>

#include "nvcim/llm/model.hpp"
#include "nvcim/llm/pretrain.hpp"

namespace nvcim::llm {

/// Architecture + pretraining recipe standing in for one of the paper's edge
/// checkpoints. The three profiles differ in width/depth (and the Mistral
/// profile is post-training quantized to 4 bits, simulating its GPTQ
/// checkpoint) so that cross-model trends in the tables are meaningful.
struct LlmProfile {
  std::string name;
  std::size_t d_model = 32;
  std::size_t n_layers = 2;
  std::size_t n_heads = 4;
  std::size_t ffn_mult = 2;
  int quant_bits = 0;  ///< 0 = fp32; >0 = symmetric post-training quantization
  PretrainConfig pretrain;

  TinyLmConfig make_config(std::size_t vocab, std::size_t max_seq) const {
    TinyLmConfig c;
    c.vocab = vocab;
    c.d_model = d_model;
    c.n_layers = n_layers;
    c.n_heads = n_heads;
    c.ffn_hidden = d_model * ffn_mult;
    c.max_seq = max_seq;
    return c;
  }
};

LlmProfile gemma2b_sim();
LlmProfile mistral7b_gptq_sim();
LlmProfile phi2_sim();

/// All three profiles, in the paper's Table I column order.
std::vector<LlmProfile> edge_llm_profiles();

/// Build + pretrain a backbone for the profile on the given corpus, applying
/// the profile's post-training quantization if any.
TinyLM build_pretrained(const LlmProfile& profile, std::size_t vocab, std::size_t max_seq,
                        const std::vector<TrainExample>& corpus, std::uint64_t seed);

}  // namespace nvcim::llm
