#pragma once

#include <vector>

#include "nvcim/llm/model.hpp"

namespace nvcim::llm {

struct PretrainConfig {
  std::size_t steps = 400;
  std::size_t batch_size = 12;
  float lr = 3e-3f;
  float clip_norm = 1.0f;
  std::uint64_t seed = 7;
};

/// Full-parameter training of the backbone on a corpus (the stand-in for the
/// public pretraining the real edge checkpoints received). Returns the mean
/// loss over the final 10% of steps.
float pretrain(TinyLM& model, const std::vector<TrainExample>& corpus,
               const PretrainConfig& cfg);

/// Mean loss of the model over a set of examples (no gradient updates).
float evaluate_loss(TinyLM& model, const std::vector<TrainExample>& examples);

}  // namespace nvcim::llm
