#pragma once

#include <functional>
#include <vector>

#include "nvcim/llm/model.hpp"

namespace nvcim::llm {

/// Hook applied to the virtual-token values before each training forward
/// pass. Returns the perturbed copy; the gradient flows to the unperturbed
/// parameter (straight-through, matching the paper's Eq. 4 noise injection).
/// An empty function means no perturbation.
using PerturbFn = std::function<Matrix(const Matrix& tokens, Rng& rng)>;

/// Common hyper-parameters for all prompt-tuning variants.
///
/// Note on the learning rate: the paper tunes HuggingFace PT at 1e-4 on
/// billion-parameter models; our from-scratch tiny backbones need a larger
/// step to converge within an edge-style budget, so the default is 5e-2
/// (Adam, cosine decay). Documented in EXPERIMENTS.md.
struct TunerConfig {
  std::size_t n_virtual_tokens = 8;
  std::size_t steps = 60;
  std::size_t batch_size = 4;
  float lr = 5e-2f;
  float init_std = 0.5f;
  float clip_norm = 1.0f;
  std::uint64_t seed = 11;
  PerturbFn perturb;  ///< noise-aware training hook (empty = off)
  /// Optional warm start (n_virtual_tokens × d). HuggingFace prompt tuning
  /// supports initialization from text embeddings; NVCiM-PT initializes each
  /// OVT from its representative sample's embedding, which both speeds up
  /// convergence and keeps the OVT near the embedding manifold (making it
  /// retrievable by inner-product search against query embeddings).
  Matrix init;  ///< empty = random N(0, init_std²)
  /// Proximal regularization toward `init` (ignored when init is empty):
  /// loss += anchor_weight · ‖P − init‖²/n. Bounds prompt drift so the OVT
  /// stays encodable by the shared autoencoder and retrievable by
  /// embedding-space search.
  float anchor_weight = 0.3f;
};

/// Vanilla prompt tuning (Lester et al.): trainable virtual tokens prepended
/// at the embedding level. This is the representation NVCiM-PT stores in NVM
/// as the OVT payload.
class SoftPromptTuner {
 public:
  explicit SoftPromptTuner(TunerConfig cfg) : cfg_(cfg) {}

  /// Returns the tuned n_virtual×d soft prompt. Training on a single sample
  /// yields that sample's OVT; training on a whole buffer yields a one4all
  /// prompt.
  Matrix train(TinyLM& model, const std::vector<TrainExample>& examples) const;

  const TunerConfig& config() const { return cfg_; }

 private:
  TunerConfig cfg_;
};

/// Prefix tuning (Li & Liang): trainable per-layer key/value rows. Also
/// implements P-tuning v2, whose "deep prompts" are the same mechanism
/// trained one4all.
class PrefixKvTuner {
 public:
  explicit PrefixKvTuner(TunerConfig cfg) : cfg_(cfg) {}

  KvPrefixValues train(TinyLM& model, const std::vector<TrainExample>& examples) const;

  const TunerConfig& config() const { return cfg_; }

 private:
  TunerConfig cfg_;
};

/// DEPT (decomposed prompt tuning): a shorter soft prompt plus a low-rank
/// additive update of the embedding table.
struct DeptAdapters {
  Matrix soft_prompt;  ///< n_short × d
  Matrix lora_a;       ///< vocab × r
  Matrix lora_b;       ///< r × d
  Matrix embed_delta() const { return matmul(lora_a, lora_b); }
};

class DeptTuner {
 public:
  struct Config {
    TunerConfig base;     ///< n_virtual_tokens here is the *shortened* prompt length
    std::size_t rank = 2;
  };

  explicit DeptTuner(Config cfg) : cfg_(cfg) {}

  DeptAdapters train(TinyLM& model, const std::vector<TrainExample>& examples) const;

 private:
  Config cfg_;
};

}  // namespace nvcim::llm
