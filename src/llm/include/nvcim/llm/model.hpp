#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nvcim/llm/example.hpp"
#include "nvcim/nn/layers.hpp"
#include "nvcim/nn/optim.hpp"

namespace nvcim::llm {

using autograd::Var;

struct TinyLmConfig {
  std::size_t vocab = 64;
  std::size_t d_model = 32;
  std::size_t n_layers = 2;
  std::size_t n_heads = 4;
  std::size_t ffn_hidden = 64;
  std::size_t max_seq = 96;  ///< covers prompt_slots + input + completion
  /// Reserved positional slots for soft prompts. Real tokens always occupy
  /// positions ≥ prompt_slots (with or without a prompt), so prepending
  /// virtual tokens never shifts the token positions out of the pretraining
  /// distribution; prompts right-align into the reserved region.
  std::size_t prompt_slots = 16;
};

/// Per-layer trainable key/value prefix vars, as used by prefix tuning and
/// P-tuning v2 ("deep prompts").
using KvPrefixVars = std::vector<std::pair<Var, Var>>;

/// Frozen per-layer KV prefix values for inference.
using KvPrefixValues = std::vector<nn::KvPrefix>;

/// Decoder-only causal transformer LM, small enough to pretrain in-process.
/// Serves as the "edge LLM" substrate: the backbone is frozen during prompt
/// tuning and only externally supplied virtual-token leaves receive
/// gradients.
class TinyLM {
 public:
  TinyLM(TinyLmConfig cfg, std::uint64_t seed);

  const TinyLmConfig& config() const { return cfg_; }
  /// Fresh registry of non-owning pointers to every parameter. Rebuilt per
  /// call so the model keeps value semantics (moves don't dangle a cached
  /// registry).
  nn::ParamSet params();
  std::size_t parameter_count() { return params().parameter_count(); }

  /// Full differentiable forward. Returns logits rows aligned with `tokens`
  /// (soft-prompt positions are sliced off). Optional adapters:
  ///   - `soft_prompt`: n_sp×d rows prepended at the embedding level;
  ///   - `kv_prefixes`: per-layer KV rows (size must equal n_layers);
  ///   - `embed_delta`: additive V×d correction to the embedding table
  ///     (DEPT-style low-rank update, already materialized by the caller).
  Var logits(nn::Binder& bind, const std::vector<int>& tokens,
             std::optional<Var> soft_prompt = std::nullopt,
             const KvPrefixVars* kv_prefixes = nullptr,
             std::optional<Var> embed_delta = std::nullopt);

  /// Mean next-token cross-entropy of `ex` under the adapters.
  Var loss(nn::Binder& bind, const TrainExample& ex,
           std::optional<Var> soft_prompt = std::nullopt,
           const KvPrefixVars* kv_prefixes = nullptr,
           std::optional<Var> embed_delta = std::nullopt);

  // ---- Inference conveniences (build & drop a private tape) ----

  /// Logits matrix for the whole sequence.
  Matrix logits_inference(const std::vector<int>& tokens, const Matrix* soft_prompt = nullptr,
                          const KvPrefixValues* kv_prefixes = nullptr,
                          const Matrix* embed_delta = nullptr) const;

  /// Index into `label_ids` of the highest-logit label at the last position.
  std::size_t classify(const std::vector<int>& tokens, const std::vector<int>& label_ids,
                       const Matrix* soft_prompt = nullptr,
                       const KvPrefixValues* kv_prefixes = nullptr,
                       const Matrix* embed_delta = nullptr) const;

  /// Batched classify(): one embed_batch() gather pass supplies every
  /// sequence's token-embedding rows up front (skipping the per-call
  /// vocab×d table leaf copy), then the frozen per-sequence forwards run on
  /// a single reused tape. Entry b is bit-identical to
  /// classify(*seqs[b], label_ids, soft_prompts[b]) — the pre-gathered rows
  /// are exactly what the tape's embedding lookup would produce.
  /// `soft_prompts[b]` may be nullptr for a promptless sequence.
  std::vector<std::size_t> classify_batch(const std::vector<const std::vector<int>*>& seqs,
                                          const std::vector<int>& label_ids,
                                          const std::vector<const Matrix*>& soft_prompts) const;

  /// Autoregressive sampling with softmax temperature (0 = greedy).
  std::vector<int> generate(const std::vector<int>& prompt, std::size_t max_new_tokens,
                            float temperature, Rng& rng, int eos_id,
                            const Matrix* soft_prompt = nullptr,
                            const KvPrefixValues* kv_prefixes = nullptr,
                            const Matrix* embed_delta = nullptr) const;

  /// Token-embedding rows for a sequence (no positions); this is the E(x)
  /// the framework clusters on and uses as the retrieval query.
  Matrix embed(const std::vector<int>& tokens) const;

  /// embed() written into caller storage — allocation-free once `out` is
  /// warm. Bit-identical to embed().
  void embed_into(const std::vector<int>& tokens, Matrix& out) const;

  /// Batched embed(): one table gather per sequence in a single pass.
  /// Result b is bit-identical to embed(*seqs[b]).
  std::vector<Matrix> embed_batch(const std::vector<const std::vector<int>*>& seqs) const;

  /// embed_batch() into caller storage — steady-state allocation-free when
  /// `out` (and its element matrices) are warm.
  void embed_batch_into(const std::vector<const std::vector<int>*>& seqs,
                        std::vector<Matrix>& out) const;

  /// Mean-pooled single-row embedding of a sequence.
  Matrix embed_mean(const std::vector<int>& tokens) const;

  // Direct parameter access (used by weight quantization and tests).
  nn::Param& token_embedding() { return tok_emb_; }
  nn::Param& positional_embedding() { return pos_emb_; }
  std::vector<nn::TransformerBlock>& blocks() { return blocks_; }
  nn::Linear& lm_head() { return lm_head_; }

 private:
  /// `pre_embedded` supplies the token-embedding rows directly (a frozen
  /// leaf), bypassing the table gather; it cannot combine with embed_delta.
  Var forward_hidden(nn::Binder& bind, const std::vector<int>& tokens,
                     std::optional<Var> soft_prompt, const KvPrefixVars* kv_prefixes,
                     std::optional<Var> embed_delta, std::size_t& n_soft_out,
                     std::optional<Var> pre_embedded = std::nullopt);

  TinyLmConfig cfg_;
  nn::Param tok_emb_;  ///< vocab × d
  nn::Param pos_emb_;  ///< max_seq × d
  std::vector<nn::TransformerBlock> blocks_;
  nn::LayerNorm final_ln_;
  nn::Linear lm_head_;
};

/// Round every Linear weight matrix (and the embedding tables) of the model
/// to a symmetric `bits`-bit grid — the stand-in for a GPTQ-quantized edge
/// checkpoint (Mistral-7B-GPTQ profile).
void quantize_weights(TinyLM& model, int bits);

}  // namespace nvcim::llm
