#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace nvcim::llm {

/// Whitespace word-level tokenizer with a dynamically built vocabulary and
/// the usual special tokens. Used by the example applications and the
/// synthetic LaMP-like generators (which emit word strings).
class Tokenizer {
 public:
  Tokenizer();

  /// Id of a word, inserting it into the vocabulary if `grow` (default)
  /// and returning <unk> otherwise.
  int id_of(const std::string& word, bool grow = true);
  /// Lookup without growth; returns unk_id() for unknown words.
  int lookup(const std::string& word) const;
  const std::string& word_of(int id) const;

  std::vector<int> encode(const std::string& text, bool grow = true);
  std::string decode(const std::vector<int>& ids) const;

  std::size_t vocab_size() const { return words_.size(); }

  int pad_id() const { return 0; }
  int unk_id() const { return 1; }
  int bos_id() const { return 2; }
  int eos_id() const { return 3; }
  int sep_id() const { return 4; }

  /// Freeze the vocabulary: id_of()/encode() stop growing it.
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> words_;
  bool frozen_ = false;
};

}  // namespace nvcim::llm
