#pragma once

#include <vector>

namespace nvcim::llm {

/// One training/evaluation example for the causal LM. `targets[j]` is the
/// token id the model must predict at sequence position j (normally
/// tokens[j+1]); positions with target -1 are excluded from the loss, which
/// is how the harness restricts learning to the completion part of a prompt.
struct TrainExample {
  std::vector<int> tokens;
  std::vector<int> targets;
  /// Optional context tokens whose embeddings are placed (right-aligned) in
  /// the reserved prompt-slot positions instead of the token sequence. The
  /// pretraining corpus uses this to teach the backbone that the prompt
  /// region carries latent context (e.g. the user's domain) — the positions
  /// a tuned soft prompt occupies later.
  std::vector<int> prefix_tokens;
};

/// Build a TrainExample from an (input, completion) pair: loss is applied
/// only on the completion tokens (and on predicting the first completion
/// token from the last input token). `prefix` fills prefix_tokens.
TrainExample make_example(const std::vector<int>& input, const std::vector<int>& completion,
                          const std::vector<int>& prefix = {});

}  // namespace nvcim::llm
