#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "nvcim/common/check.hpp"
#include "nvcim/common/rng.hpp"

namespace nvcim {

/// Dense row-major float32 matrix — the single numeric container used by the
/// autograd tape, the LLM substrate and the crossbar simulator. Vectors are
/// represented as 1×n or n×1 matrices. The class has value semantics: copies
/// are deep, moves are cheap.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    NVCIM_CHECK_MSG(data_.size() == rows_ * cols_,
                    "data size " << data_.size() << " != " << rows_ << "x" << cols_);
  }
  /// Brace-construction from nested lists, e.g. Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<float>> rows);

  static Matrix zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 0.0f); }
  static Matrix ones(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 1.0f); }
  static Matrix identity(std::size_t n);
  /// I.i.d. Gaussian entries.
  static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng, float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  static Matrix rand_uniform(std::size_t rows, std::size_t cols, Rng& rng, float lo, float hi);
  /// 1×n row vector from raw values.
  static Matrix row_vector(std::vector<float> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Matrix& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  float& operator()(std::size_t r, std::size_t c) {
    NVCIM_CHECK_MSG(r < rows_ && c < cols_, "index (" << r << "," << c << ") out of "
                                                      << rows_ << "x" << cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    NVCIM_CHECK_MSG(r < rows_ && c < cols_, "index (" << r << "," << c << ") out of "
                                                      << rows_ << "x" << cols_);
    return data_[r * cols_ + c];
  }
  float& at_flat(std::size_t i) { return data_[i]; }
  float at_flat(std::size_t i) const { return data_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  const std::vector<float>& storage() const { return data_; }

  // ---- In-place elementwise ----
  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(float s);
  Matrix& hadamard_inplace(const Matrix& o);
  Matrix& add_scaled(const Matrix& o, float s);  ///< this += s * o
  void fill(float v);

  // ---- Shape ----
  Matrix transposed() const;
  Matrix reshaped(std::size_t rows, std::size_t cols) const;
  /// Reinterpret the existing storage as rows×cols (element count preserved).
  Matrix& reshape_inplace(std::size_t rows, std::size_t cols);
  /// Resize storage to rows×cols. Contents are unspecified afterwards; meant
  /// for reusable output/scratch buffers (no reallocation when the element
  /// count shrinks or stays put).
  void resize(std::size_t rows, std::size_t cols);
  /// Rows [begin, end) as a new matrix.
  Matrix row_slice(std::size_t begin, std::size_t end) const;
  /// Columns [begin, end) as a new matrix.
  Matrix col_slice(std::size_t begin, std::size_t end) const;
  /// Single row as 1×cols matrix.
  Matrix row(std::size_t r) const { return row_slice(r, r + 1); }
  void set_row(std::size_t r, const Matrix& v);
  /// Flatten to a 1×(rows*cols) row vector.
  Matrix flattened() const { return reshaped(1, size()); }

  // ---- Reductions ----
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float max_abs() const;
  float frobenius_norm() const;

  bool all_finite() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// ---- Free-function algebra ----
Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, float s);
Matrix operator*(float s, Matrix a);
Matrix hadamard(Matrix a, const Matrix& b);

/// C = A·B. Shapes checked. Blocked over (rows, shared dim) so the B panel
/// stays cache-resident on tall batched inputs; per-element accumulation
/// order is unchanged, so results are bit-identical to the naive kernel.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A·B written into caller storage — no allocation when `out` already
/// has the right element count. Bit-identical to matmul().
void matmul_into(const Matrix& a, const Matrix& b, Matrix& out);
/// C = Aᵀ·B without materializing the transpose.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A·Bᵀ without materializing the transpose.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// Flattened inner product; shapes must match elementwise.
float dot(const Matrix& a, const Matrix& b);
/// Cosine similarity of the flattened matrices; 0 if either has zero norm.
float cosine_similarity(const Matrix& a, const Matrix& b);

/// Vertical concatenation (same column count).
Matrix vconcat(const Matrix& top, const Matrix& bottom);
/// Horizontal concatenation (same row count).
Matrix hconcat(const Matrix& left, const Matrix& right);

/// Non-overlapping average pooling with window `scale` applied along the
/// flattened vector (the Pool_i(x) operator of the paper's Eq. 5). The tail
/// window may be shorter. scale==1 returns a flattened copy.
Matrix average_pool_flat(const Matrix& x, std::size_t scale);

/// Row-wise batch of average_pool_flat: pools each row of a B×n matrix
/// independently, producing B×⌈n/scale⌉. Row b equals
/// average_pool_flat(x.row(b), scale) bit-for-bit.
Matrix average_pool_rows(const Matrix& x, std::size_t scale);

/// average_pool_rows() into caller storage — allocation-free once `out` is
/// warm. Bit-identical to average_pool_rows().
void average_pool_rows_into(const Matrix& x, std::size_t scale, Matrix& out);

/// Resample a matrix to exactly `n_rows` rows by averaging contiguous row
/// blocks (n_rows < rows) or nearest-row repetition (n_rows > rows). Used to
/// put variable-length query embeddings into the fixed virtual-token shape.
Matrix resample_rows(const Matrix& x, std::size_t n_rows);

/// Stack the rows of several same-width matrices into one tall matrix.
Matrix stack_rows(const std::vector<const Matrix*>& parts);
/// stack_rows() into caller storage — allocation-free once `out` is warm.
void stack_rows_into(const std::vector<const Matrix*>& parts, Matrix& out);

/// Batched resample_rows: resample each xs[b] (variable rows, shared cols)
/// to `n_rows` rows and stack the results into a (B·n_rows)×cols matrix
/// written into `out`. Block b is bit-identical to resample_rows(*xs[b],
/// n_rows); no per-item temporaries are allocated.
void resample_rows_batch(const std::vector<const Matrix*>& xs, std::size_t n_rows, Matrix& out);

bool allclose(const Matrix& a, const Matrix& b, float atol = 1e-5f, float rtol = 1e-5f);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace nvcim
