#include "nvcim/tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

namespace nvcim {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    NVCIM_CHECK_MSG(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, Rng& rng, float stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return m;
}

Matrix Matrix::rand_uniform(std::size_t rows, std::size_t cols, Rng& rng, float lo, float hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return m;
}

Matrix Matrix::row_vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Matrix(1, n, std::move(values));
}

Matrix& Matrix::operator+=(const Matrix& o) {
  NVCIM_CHECK_MSG(same_shape(o), "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  NVCIM_CHECK_MSG(same_shape(o), "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::hadamard_inplace(const Matrix& o) {
  NVCIM_CHECK_MSG(same_shape(o), "shape mismatch in hadamard");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= o.data_[i];
  return *this;
}

Matrix& Matrix::add_scaled(const Matrix& o, float s) {
  NVCIM_CHECK_MSG(same_shape(o), "shape mismatch in add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * o.data_[i];
  return *this;
}

void Matrix::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.data_[c * rows_ + r] = data_[r * cols_ + c];
  return t;
}

Matrix Matrix::reshaped(std::size_t rows, std::size_t cols) const {
  NVCIM_CHECK_MSG(rows * cols == size(),
                  "reshape " << rows_ << "x" << cols_ << " -> " << rows << "x" << cols);
  Matrix m = *this;
  m.rows_ = rows;
  m.cols_ = cols;
  return m;
}

Matrix& Matrix::reshape_inplace(std::size_t rows, std::size_t cols) {
  NVCIM_CHECK_MSG(rows * cols == size(),
                  "reshape " << rows_ << "x" << cols_ << " -> " << rows << "x" << cols);
  rows_ = rows;
  cols_ = cols;
  return *this;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix Matrix::row_slice(std::size_t begin, std::size_t end) const {
  NVCIM_CHECK_MSG(begin <= end && end <= rows_, "row_slice [" << begin << "," << end << ")");
  Matrix m(end - begin, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols_), m.data_.begin());
  return m;
}

Matrix Matrix::col_slice(std::size_t begin, std::size_t end) const {
  NVCIM_CHECK_MSG(begin <= end && end <= cols_, "col_slice [" << begin << "," << end << ")");
  Matrix m(rows_, end - begin);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = begin; c < end; ++c) m(r, c - begin) = (*this)(r, c);
  return m;
}

void Matrix::set_row(std::size_t r, const Matrix& v) {
  NVCIM_CHECK_MSG(r < rows_ && v.size() == cols_, "set_row shape mismatch");
  std::copy(v.data_.begin(), v.data_.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

float Matrix::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Matrix::mean() const {
  NVCIM_CHECK(!empty());
  return sum() / static_cast<float>(size());
}

float Matrix::min() const {
  NVCIM_CHECK(!empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Matrix::max() const {
  NVCIM_CHECK(!empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Matrix::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Matrix::frobenius_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

bool Matrix::all_finite() const {
  return std::all_of(data_.begin(), data_.end(), [](float v) { return std::isfinite(v); });
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, float s) { return a *= s; }
Matrix operator*(float s, Matrix a) { return a *= s; }
Matrix hadamard(Matrix a, const Matrix& b) { return a.hadamard_inplace(b); }

namespace {
// L1 blocking of the A·B kernel: a KC-row panel of B is reused across MC rows
// of A before moving on. For each output element the shared dimension is
// still traversed in ascending order, so the accumulated float is the same
// bit pattern the unblocked kernel produced.
constexpr std::size_t kMatmulBlockRows = 32;  // MC: A rows per panel pass
constexpr std::size_t kMatmulBlockK = 128;    // KC: B rows kept hot in L1
}  // namespace

void matmul_into(const Matrix& a, const Matrix& b, Matrix& out) {
  NVCIM_CHECK_MSG(a.cols() == b.rows(), "matmul " << a.rows() << "x" << a.cols() << " · "
                                                  << b.rows() << "x" << b.cols());
  NVCIM_CHECK_MSG(&out != &a && &out != &b, "matmul_into output must not alias an input");
  out.resize(a.rows(), b.cols());
  out.fill(0.0f);
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  for (std::size_t i0 = 0; i0 < M; i0 += kMatmulBlockRows) {
    const std::size_t i1 = std::min(i0 + kMatmulBlockRows, M);
    for (std::size_t k0 = 0; k0 < K; k0 += kMatmulBlockK) {
      const std::size_t k1 = std::min(k0 + kMatmulBlockK, K);
      for (std::size_t i = i0; i < i1; ++i) {
        float* crow = out.data() + i * N;
        const float* arow = a.data() + i * K;
        for (std::size_t k = k0; k < k1; ++k) {
          const float av = arow[k];
          if (av == 0.0f) continue;
          const float* brow = b.data() + k * N;
          for (std::size_t j = 0; j < N; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(a, b, c);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  NVCIM_CHECK_MSG(a.rows() == b.rows(), "matmul_tn shape mismatch");
  Matrix c(a.cols(), b.cols(), 0.0f);
  const std::size_t M = a.cols(), K = a.rows(), N = b.cols();
  for (std::size_t k = 0; k < K; ++k) {
    const float* arow = a.data() + k * M;
    const float* brow = b.data() + k * N;
    for (std::size_t i = 0; i < M; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.data() + i * N;
      for (std::size_t j = 0; j < N; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  NVCIM_CHECK_MSG(a.cols() == b.cols(), "matmul_nt shape mismatch");
  Matrix c(a.rows(), b.rows(), 0.0f);
  const std::size_t M = a.rows(), K = a.cols(), N = b.rows();
  for (std::size_t i = 0; i < M; ++i) {
    const float* arow = a.data() + i * K;
    float* crow = c.data() + i * N;
    for (std::size_t j = 0; j < N; ++j) {
      const float* brow = b.data() + j * K;
      double s = 0.0;
      for (std::size_t k = 0; k < K; ++k) s += static_cast<double>(arow[k]) * brow[k];
      crow[j] = static_cast<float>(s);
    }
  }
  return c;
}

float dot(const Matrix& a, const Matrix& b) {
  NVCIM_CHECK_MSG(a.size() == b.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += static_cast<double>(a.at_flat(i)) * b.at_flat(i);
  return static_cast<float>(s);
}

float cosine_similarity(const Matrix& a, const Matrix& b) {
  const float na = a.frobenius_norm();
  const float nb = b.frobenius_norm();
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return dot(a, b) / (na * nb);
}

Matrix vconcat(const Matrix& top, const Matrix& bottom) {
  NVCIM_CHECK_MSG(top.cols() == bottom.cols(), "vconcat column mismatch");
  Matrix m(top.rows() + bottom.rows(), top.cols());
  std::copy(top.data(), top.data() + top.size(), m.data());
  std::copy(bottom.data(), bottom.data() + bottom.size(), m.data() + top.size());
  return m;
}

Matrix hconcat(const Matrix& left, const Matrix& right) {
  NVCIM_CHECK_MSG(left.rows() == right.rows(), "hconcat row mismatch");
  Matrix m(left.rows(), left.cols() + right.cols());
  for (std::size_t r = 0; r < left.rows(); ++r) {
    for (std::size_t c = 0; c < left.cols(); ++c) m(r, c) = left(r, c);
    for (std::size_t c = 0; c < right.cols(); ++c) m(r, left.cols() + c) = right(r, c);
  }
  return m;
}

Matrix average_pool_flat(const Matrix& x, std::size_t scale) {
  NVCIM_CHECK(scale >= 1);
  const std::size_t n = x.size();
  if (scale == 1) return x.flattened();
  const std::size_t out = (n + scale - 1) / scale;
  Matrix p(1, out);
  for (std::size_t w = 0; w < out; ++w) {
    const std::size_t begin = w * scale;
    const std::size_t end = std::min(begin + scale, n);
    double s = 0.0;
    for (std::size_t i = begin; i < end; ++i) s += x.at_flat(i);
    p.at_flat(w) = static_cast<float>(s / static_cast<double>(end - begin));
  }
  return p;
}

Matrix average_pool_rows(const Matrix& x, std::size_t scale) {
  if (scale == 1) return x;
  Matrix p;
  average_pool_rows_into(x, scale, p);
  return p;
}

void average_pool_rows_into(const Matrix& x, std::size_t scale, Matrix& out) {
  NVCIM_CHECK(scale >= 1);
  const std::size_t n = x.cols();
  const std::size_t width = (n + scale - 1) / scale;
  out.resize(x.rows(), width);
  if (scale == 1) {
    std::copy(x.data(), x.data() + x.size(), out.data());
    return;
  }
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* row = x.data() + r * n;
    float* prow = out.data() + r * width;
    for (std::size_t w = 0; w < width; ++w) {
      const std::size_t begin = w * scale;
      const std::size_t end = std::min(begin + scale, n);
      double s = 0.0;
      for (std::size_t i = begin; i < end; ++i) s += row[i];
      prow[w] = static_cast<float>(s / static_cast<double>(end - begin));
    }
  }
}

namespace {

// Shared kernel of resample_rows / resample_rows_batch — one implementation
// so the serial and batched paths cannot drift apart. Writes the resampled
// n_rows×cols result into `block`.
void resample_rows_into_block(const Matrix& x, std::size_t n_rows, float* block) {
  const std::size_t cols = x.cols();
  if (x.rows() == n_rows) {
    std::copy(x.data(), x.data() + x.size(), block);
    return;
  }
  for (std::size_t i = 0; i < n_rows; ++i) {
    // Row block [begin, end) of the source mapped to output row i.
    const std::size_t begin = i * x.rows() / n_rows;
    std::size_t end = (i + 1) * x.rows() / n_rows;
    if (end <= begin) end = begin + 1;
    float* orow = block + i * cols;
    std::fill(orow, orow + cols, 0.0f);
    for (std::size_t r = begin; r < end; ++r) {
      const float* xrow = x.data() + r * cols;
      for (std::size_t c = 0; c < cols; ++c) orow[c] += xrow[c];
    }
    const float inv = 1.0f / static_cast<float>(end - begin);
    for (std::size_t c = 0; c < cols; ++c) orow[c] *= inv;
  }
}

}  // namespace

Matrix resample_rows(const Matrix& x, std::size_t n_rows) {
  NVCIM_CHECK(n_rows >= 1 && x.rows() >= 1);
  if (n_rows == x.rows()) return x;
  Matrix out(n_rows, x.cols());
  resample_rows_into_block(x, n_rows, out.data());
  return out;
}

void stack_rows_into(const std::vector<const Matrix*>& parts, Matrix& out) {
  NVCIM_CHECK_MSG(!parts.empty(), "stack_rows of nothing");
  const std::size_t cols = parts[0]->cols();
  std::size_t total = 0;
  for (const Matrix* m : parts) {
    NVCIM_CHECK_MSG(m != nullptr && m->cols() == cols, "stack_rows column mismatch");
    total += m->rows();
  }
  out.resize(total, cols);
  float* dst = out.data();
  for (const Matrix* m : parts) {
    std::copy(m->data(), m->data() + m->size(), dst);
    dst += m->size();
  }
}

Matrix stack_rows(const std::vector<const Matrix*>& parts) {
  Matrix out;
  stack_rows_into(parts, out);
  return out;
}

void resample_rows_batch(const std::vector<const Matrix*>& xs, std::size_t n_rows, Matrix& out) {
  NVCIM_CHECK_MSG(!xs.empty(), "resample_rows_batch of nothing");
  NVCIM_CHECK(n_rows >= 1);
  const std::size_t cols = xs[0]->cols();
  for (const Matrix* x : xs)
    NVCIM_CHECK_MSG(x != nullptr && x->cols() == cols && x->rows() >= 1,
                    "resample_rows_batch item shape mismatch");
  out.resize(xs.size() * n_rows, cols);
  for (std::size_t b = 0; b < xs.size(); ++b)
    resample_rows_into_block(*xs[b], n_rows, out.data() + b * n_rows * cols);
}

bool allclose(const Matrix& a, const Matrix& b, float atol, float rtol) {
  if (!a.same_shape(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float x = a.at_flat(i), y = b.at_flat(i);
    if (std::fabs(x - y) > atol + rtol * std::fabs(y)) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")[";
  const std::size_t show = std::min<std::size_t>(m.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    if (i) os << ", ";
    os << m.at_flat(i);
  }
  if (m.size() > show) os << ", ...";
  return os << "]";
}

}  // namespace nvcim
