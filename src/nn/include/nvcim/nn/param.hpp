#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nvcim/autograd/tape.hpp"
#include "nvcim/tensor/matrix.hpp"

namespace nvcim::nn {

/// A trainable tensor plus its Adam moment state. Modules own their Params by
/// value; the optimizer updates them through pointers collected by a Binder
/// during the forward pass.
struct Param {
  Matrix value;
  Matrix m;  ///< Adam first moment (lazily sized)
  Matrix v;  ///< Adam second moment (lazily sized)
  bool trainable = true;
  std::string name;

  Param() = default;
  Param(Matrix init, std::string param_name)
      : value(std::move(init)), name(std::move(param_name)) {}

  std::size_t size() const { return value.size(); }
};

/// Binds Params to tape leaves for one forward/backward pass and remembers
/// the (Param, Var) association so the optimizer can read gradients.
///
/// `frozen` mode binds every parameter as a constant — used at inference and
/// for prompt tuning, where the backbone is frozen and only externally
/// supplied leaves (the virtual tokens) are trainable.
class Binder {
 public:
  Binder(autograd::Tape& tape, bool frozen = false) : tape_(&tape), frozen_(frozen) {}

  /// Bind a Param to a tape leaf. Repeated binds of the same Param on the
  /// same Binder return the same Var, so multi-example forward passes share
  /// one leaf per parameter and gradients accumulate correctly.
  autograd::Var operator()(Param& p) {
    if (auto it = cache_.find(&p); it != cache_.end()) return it->second;
    const bool rg = p.trainable && !frozen_;
    autograd::Var var = tape_->leaf(p.value, rg);
    if (rg) bound_.emplace_back(&p, var);
    cache_.emplace(&p, var);
    return var;
  }

  autograd::Tape& tape() { return *tape_; }
  bool frozen() const { return frozen_; }
  const std::vector<std::pair<Param*, autograd::Var>>& bound() const { return bound_; }

 private:
  autograd::Tape* tape_;
  bool frozen_;
  std::vector<std::pair<Param*, autograd::Var>> bound_;
  std::unordered_map<Param*, autograd::Var> cache_;
};

/// Collects non-owning pointers to every Param of a model, for optimizers,
/// parameter counting and (de)serialization.
class ParamSet {
 public:
  void add(Param& p) { params_.push_back(&p); }
  const std::vector<Param*>& all() const { return params_; }
  std::size_t parameter_count() const {
    std::size_t n = 0;
    for (const Param* p : params_) n += p->size();
    return n;
  }

 private:
  std::vector<Param*> params_;
};

// ---- Initializers ----

/// Xavier/Glorot normal for a fan_in×fan_out weight.
Matrix xavier_init(std::size_t fan_in, std::size_t fan_out, Rng& rng);
/// Scaled normal init (stddev = scale / sqrt(fan_in)).
Matrix scaled_normal_init(std::size_t rows, std::size_t cols, std::size_t fan_in, Rng& rng,
                          float scale = 1.0f);

}  // namespace nvcim::nn
