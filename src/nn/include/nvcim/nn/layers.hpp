#pragma once

#include <optional>
#include <vector>

#include "nvcim/nn/param.hpp"

namespace nvcim::nn {

using autograd::Var;

/// Affine map y = x·W + b.
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in, std::size_t out, Rng& rng, const std::string& name);

  Var forward(Binder& bind, Var x);
  void collect(ParamSet& ps);

  std::size_t in_features() const { return w.value.rows(); }
  std::size_t out_features() const { return w.value.cols(); }

  Param w;  ///< in × out
  Param b;  ///< 1 × out
};

/// Row-wise layer normalization with learnable gain/bias.
class LayerNorm {
 public:
  LayerNorm() = default;
  LayerNorm(std::size_t dim, const std::string& name);

  Var forward(Binder& bind, Var x);
  void collect(ParamSet& ps);

  Param gain;  ///< 1 × dim
  Param bias;  ///< 1 × dim
};

/// Optional per-layer key/value prefix (prefix tuning / P-tuning v2): the
/// rows of `key`/`value` are prepended to this layer's K and V, and queries
/// may attend to them at every position.
struct KvPrefix {
  Matrix key;    ///< n_prefix × d_model
  Matrix value;  ///< n_prefix × d_model
};

/// Multi-head causal self-attention over a S×D sequence, with optional
/// KV-prefix injection. Heads are realized by column-slicing the fused
/// Q/K/V projections.
class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention() = default;
  MultiHeadSelfAttention(std::size_t d_model, std::size_t n_heads, Rng& rng,
                         const std::string& name);

  /// `prefix`, if present, contributes extra attendable KV rows. The prefix
  /// is bound as trainable iff `prefix_trainable` (used during prefix
  /// tuning); the bindings are appended to `prefix_bindings` when given.
  Var forward(Binder& bind, Var x, const KvPrefix* prefix = nullptr);

  /// Variant used by prefix tuning: prefix K/V supplied as live tape vars so
  /// the caller can differentiate through them.
  Var forward_with_prefix_vars(Binder& bind, Var x, std::optional<Var> prefix_k,
                               std::optional<Var> prefix_v);

  void collect(ParamSet& ps);

  std::size_t n_heads() const { return n_heads_; }
  std::size_t d_model() const { return wq.in_features(); }

  Linear wq, wk, wv, wo;

 private:
  std::size_t n_heads_ = 1;
};

/// Position-wise feed-forward: Linear → GELU → Linear, hidden = ratio·d.
class FeedForward {
 public:
  FeedForward() = default;
  FeedForward(std::size_t d_model, std::size_t hidden, Rng& rng, const std::string& name);

  Var forward(Binder& bind, Var x);
  void collect(ParamSet& ps);

  Linear fc1, fc2;
};

/// Pre-LN transformer decoder block: x += Attn(LN(x)); x += FFN(LN(x)).
class TransformerBlock {
 public:
  TransformerBlock() = default;
  TransformerBlock(std::size_t d_model, std::size_t n_heads, std::size_t ffn_hidden, Rng& rng,
                   const std::string& name);

  Var forward(Binder& bind, Var x, const KvPrefix* prefix = nullptr);
  Var forward_with_prefix_vars(Binder& bind, Var x, std::optional<Var> prefix_k,
                               std::optional<Var> prefix_v);
  void collect(ParamSet& ps);

  LayerNorm ln1, ln2;
  MultiHeadSelfAttention attn;
  FeedForward ffn;
};

/// Additive causal mask for S query rows over (P+S) key columns, where the
/// first P columns (the prefix) are visible to every query.
Matrix causal_mask(std::size_t seq, std::size_t n_prefix);

}  // namespace nvcim::nn
