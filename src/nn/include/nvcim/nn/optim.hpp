#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "nvcim/nn/param.hpp"

namespace nvcim::nn {

/// Learning-rate schedule evaluated per optimizer step.
struct LrSchedule {
  enum class Kind { Constant, Cosine, StepDecay };
  Kind kind = Kind::Constant;
  float base_lr = 1e-4f;   ///< paper's default PT learning rate
  std::size_t total_steps = 1;
  std::size_t warmup_steps = 0;
  float step_decay_factor = 0.5f;
  std::size_t step_decay_every = 100;

  float lr_at(std::size_t step) const;
};

/// Adam with decoupled global-norm gradient clipping. State lives inside each
/// Param so the same optimizer object can be reused across models.
class Adam {
 public:
  struct Config {
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
    float clip_norm = 1.0f;  ///< 0 disables clipping
    LrSchedule schedule;
  };

  Adam() : Adam(Config{}) {}
  explicit Adam(Config cfg) : cfg_(cfg) {}

  /// Apply one update using the gradients recorded on the tape for the given
  /// bindings. Parameters whose gradient never materialized are skipped.
  void step(const std::vector<std::pair<Param*, autograd::Var>>& bindings);

  void reset() { t_ = 0; }
  std::size_t step_count() const { return t_; }
  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  std::size_t t_ = 0;
};

}  // namespace nvcim::nn
