#include "nvcim/nn/layers.hpp"

#include <cmath>

namespace nvcim::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng, const std::string& name)
    : w(xavier_init(in, out, rng), name + ".w"), b(Matrix(1, out, 0.0f), name + ".b") {}

Var Linear::forward(Binder& bind, Var x) {
  autograd::Tape& t = bind.tape();
  return t.add_row_broadcast(t.matmul(x, bind(w)), bind(b));
}

void Linear::collect(ParamSet& ps) {
  ps.add(w);
  ps.add(b);
}

LayerNorm::LayerNorm(std::size_t dim, const std::string& name)
    : gain(Matrix(1, dim, 1.0f), name + ".gain"), bias(Matrix(1, dim, 0.0f), name + ".bias") {}

Var LayerNorm::forward(Binder& bind, Var x) {
  return bind.tape().layernorm(x, bind(gain), bind(bias));
}

void LayerNorm::collect(ParamSet& ps) {
  ps.add(gain);
  ps.add(bias);
}

Matrix causal_mask(std::size_t seq, std::size_t n_prefix) {
  Matrix m(seq, n_prefix + seq, 0.0f);
  constexpr float neg_inf = -1e9f;
  for (std::size_t i = 0; i < seq; ++i)
    for (std::size_t j = n_prefix + i + 1; j < n_prefix + seq; ++j) m(i, j) = neg_inf;
  return m;
}

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t d_model, std::size_t n_heads, Rng& rng,
                                               const std::string& name)
    : wq(d_model, d_model, rng, name + ".wq"),
      wk(d_model, d_model, rng, name + ".wk"),
      wv(d_model, d_model, rng, name + ".wv"),
      wo(d_model, d_model, rng, name + ".wo"),
      n_heads_(n_heads) {
  NVCIM_CHECK_MSG(d_model % n_heads == 0, "d_model must be divisible by n_heads");
}

Var MultiHeadSelfAttention::forward(Binder& bind, Var x, const KvPrefix* prefix) {
  std::optional<Var> pk, pv;
  if (prefix != nullptr) {
    pk = bind.tape().leaf(prefix->key, false);
    pv = bind.tape().leaf(prefix->value, false);
  }
  return forward_with_prefix_vars(bind, x, pk, pv);
}

Var MultiHeadSelfAttention::forward_with_prefix_vars(Binder& bind, Var x, std::optional<Var> pk,
                                                     std::optional<Var> pv) {
  autograd::Tape& t = bind.tape();
  const std::size_t seq = x.value().rows();
  const std::size_t d = d_model();
  const std::size_t dh = d / n_heads_;
  NVCIM_CHECK(pk.has_value() == pv.has_value());

  Var q = wq.forward(bind, x);
  Var k = wk.forward(bind, x);
  Var v = wv.forward(bind, x);

  std::size_t n_prefix = 0;
  if (pk) {
    NVCIM_CHECK_MSG(pk->value().cols() == d && pv->value().cols() == d,
                    "prefix K/V must have d_model columns");
    n_prefix = pk->value().rows();
    k = t.concat_rows(*pk, k);
    v = t.concat_rows(*pv, v);
  }

  const Matrix mask = causal_mask(seq, n_prefix);
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

  std::optional<Var> heads;
  for (std::size_t h = 0; h < n_heads_; ++h) {
    Var qh = t.slice_cols(q, h * dh, (h + 1) * dh);
    Var kh = t.slice_cols(k, h * dh, (h + 1) * dh);
    Var vh = t.slice_cols(v, h * dh, (h + 1) * dh);
    Var scores = t.scale(t.matmul_nt(qh, kh), inv_sqrt_dh);
    Var attn = t.row_softmax(t.add_const(scores, mask));
    Var oh = t.matmul(attn, vh);
    heads = heads ? t.concat_cols(*heads, oh) : oh;
  }
  return wo.forward(bind, *heads);
}

void MultiHeadSelfAttention::collect(ParamSet& ps) {
  wq.collect(ps);
  wk.collect(ps);
  wv.collect(ps);
  wo.collect(ps);
}

FeedForward::FeedForward(std::size_t d_model, std::size_t hidden, Rng& rng,
                         const std::string& name)
    : fc1(d_model, hidden, rng, name + ".fc1"), fc2(hidden, d_model, rng, name + ".fc2") {}

Var FeedForward::forward(Binder& bind, Var x) {
  return fc2.forward(bind, bind.tape().gelu(fc1.forward(bind, x)));
}

void FeedForward::collect(ParamSet& ps) {
  fc1.collect(ps);
  fc2.collect(ps);
}

TransformerBlock::TransformerBlock(std::size_t d_model, std::size_t n_heads,
                                   std::size_t ffn_hidden, Rng& rng, const std::string& name)
    : ln1(d_model, name + ".ln1"),
      ln2(d_model, name + ".ln2"),
      attn(d_model, n_heads, rng, name + ".attn"),
      ffn(d_model, ffn_hidden, rng, name + ".ffn") {}

Var TransformerBlock::forward(Binder& bind, Var x, const KvPrefix* prefix) {
  autograd::Tape& t = bind.tape();
  Var h = t.add(x, attn.forward(bind, ln1.forward(bind, x), prefix));
  return t.add(h, ffn.forward(bind, ln2.forward(bind, h)));
}

Var TransformerBlock::forward_with_prefix_vars(Binder& bind, Var x, std::optional<Var> pk,
                                               std::optional<Var> pv) {
  autograd::Tape& t = bind.tape();
  Var h = t.add(x, attn.forward_with_prefix_vars(bind, ln1.forward(bind, x), pk, pv));
  return t.add(h, ffn.forward(bind, ln2.forward(bind, h)));
}

void TransformerBlock::collect(ParamSet& ps) {
  ln1.collect(ps);
  ln2.collect(ps);
  attn.collect(ps);
  ffn.collect(ps);
}

}  // namespace nvcim::nn
