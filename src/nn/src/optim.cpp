#include "nvcim/nn/optim.hpp"

#include <cmath>

namespace nvcim::nn {

float LrSchedule::lr_at(std::size_t step) const {
  if (warmup_steps > 0 && step < warmup_steps)
    return base_lr * static_cast<float>(step + 1) / static_cast<float>(warmup_steps);
  switch (kind) {
    case Kind::Constant:
      return base_lr;
    case Kind::Cosine: {
      const std::size_t total = total_steps > warmup_steps ? total_steps : warmup_steps + 1;
      const float progress = static_cast<float>(step - warmup_steps) /
                             static_cast<float>(total - warmup_steps);
      const float clamped = progress > 1.0f ? 1.0f : progress;
      constexpr float pi = 3.14159265358979323846f;
      return base_lr * 0.5f * (1.0f + std::cos(pi * clamped));
    }
    case Kind::StepDecay: {
      const std::size_t k = step_decay_every == 0 ? 0 : step / step_decay_every;
      float lr = base_lr;
      for (std::size_t i = 0; i < k; ++i) lr *= step_decay_factor;
      return lr;
    }
  }
  return base_lr;
}

void Adam::step(const std::vector<std::pair<Param*, autograd::Var>>& bindings) {
  const float lr = cfg_.schedule.lr_at(t_);
  ++t_;

  // Global-norm clipping over every parameter that received a gradient.
  float clip_scale = 1.0f;
  if (cfg_.clip_norm > 0.0f) {
    double sq = 0.0;
    for (const auto& [param, var] : bindings) {
      if (!var.tape()->has_grad(var)) continue;
      const float n = var.grad().frobenius_norm();
      sq += static_cast<double>(n) * n;
    }
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > cfg_.clip_norm) clip_scale = cfg_.clip_norm / norm;
  }

  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));

  for (const auto& [param, var] : bindings) {
    if (!var.tape()->has_grad(var)) continue;
    Param& p = *param;
    if (p.m.size() != p.value.size()) {
      p.m = Matrix(p.value.rows(), p.value.cols(), 0.0f);
      p.v = Matrix(p.value.rows(), p.value.cols(), 0.0f);
    }
    const Matrix& g = var.grad();
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float gi = g.at_flat(i) * clip_scale + cfg_.weight_decay * p.value.at_flat(i);
      float& m = p.m.at_flat(i);
      float& v = p.v.at_flat(i);
      m = cfg_.beta1 * m + (1.0f - cfg_.beta1) * gi;
      v = cfg_.beta2 * v + (1.0f - cfg_.beta2) * gi * gi;
      const float mhat = m / bc1;
      const float vhat = v / bc2;
      p.value.at_flat(i) -= lr * mhat / (std::sqrt(vhat) + cfg_.eps);
    }
  }
}

}  // namespace nvcim::nn
