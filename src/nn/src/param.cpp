#include "nvcim/nn/param.hpp"

#include <cmath>

namespace nvcim::nn {

Matrix xavier_init(std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in + fan_out));
  return Matrix::randn(fan_in, fan_out, rng, stddev);
}

Matrix scaled_normal_init(std::size_t rows, std::size_t cols, std::size_t fan_in, Rng& rng,
                          float scale) {
  const float stddev = scale / std::sqrt(static_cast<float>(fan_in));
  return Matrix::randn(rows, cols, rng, stddev);
}

}  // namespace nvcim::nn
