#include "nvcim/core/noise.hpp"

#include <cmath>

namespace nvcim::core {

Matrix inject_banded_noise(const Matrix& s, const NoiseBandConfig& cfg, Rng& rng) {
  const float ma = s.max_abs();
  if (ma == 0.0f) return s;
  Matrix out = s;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double s_hat = std::fabs(s.at_flat(i)) / ma;
    const double stddev = cfg.sigma * cfg.factor_for(s_hat);
    out.at_flat(i) += static_cast<float>(rng.normal(0.0, stddev) * ma);
  }
  return out;
}

llm::PerturbFn make_noise_hook(const NoiseBandConfig& cfg) {
  return [cfg](const Matrix& s, Rng& rng) { return inject_banded_noise(s, cfg, rng); };
}

}  // namespace nvcim::core
