#include "nvcim/core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace nvcim::core {

std::vector<MethodSpec> table1_methods() {
  using mitigation::Kind;
  using retrieval::Algorithm;
  return {
      {"SWV", false, Kind::SWV, Algorithm::SSA},
      {"CxDNN", false, Kind::CxDNN, Algorithm::SSA},
      {"CorrectNet", false, Kind::CorrectNet, Algorithm::SSA},
      {"No-Miti(MIPS)", false, Kind::None, Algorithm::MIPS},
      {"NVP*(MIPS)", true, Kind::None, Algorithm::MIPS},
      {"NVCiM-PT", true, Kind::None, Algorithm::SSA},
  };
}

namespace {

compress::AutoencoderConfig make_ae_config(std::size_t d_model) {
  compress::AutoencoderConfig cfg;
  cfg.input_dim = d_model;
  cfg.code_dim = 48;  // paper: encoding embedding size 48
  cfg.hidden_dim = 2 * d_model;
  cfg.steps = 800;
  return cfg;
}

}  // namespace

ExperimentContext::ExperimentContext(const llm::LlmProfile& profile,
                                     const data::LampConfig& task_cfg, ExperimentOptions opts)
    : opts_(opts),
      task_(task_cfg),
      model_(llm::build_pretrained(profile, task_.vocab_size(), opts.max_seq,
                                   task_.pretraining_corpus(opts.pretrain_corpus,
                                                            opts.seed ^ 0xC0DEull),
                                   opts.seed)),
      autoenc_(make_ae_config(profile.d_model)) {
  // Autoencoder pretraining on task-domain embeddings.
  Rng rng(opts_.seed ^ 0xAE17ull);
  std::vector<Matrix> rows;
  for (std::size_t i = 0; i < opts_.autoencoder_samples; ++i) {
    const std::size_t d = rng.uniform_index(task_.config().n_domains);
    rows.push_back(model_.embed(task_.sample(d, rng).input));
  }
  autoenc_.train(rows);

  // Users: buffer + test stream, representative selection (shared by all
  // methods — RS does not depend on the device).
  users_.reserve(opts_.n_users);
  for (std::size_t ui = 0; ui < opts_.n_users; ++ui) {
    UserState u;
    u.data = task_.make_user(ui, opts_.buffer_size, opts_.n_test);

    std::vector<Matrix> embeddings;
    for (const data::Sample& s : u.data.train) embeddings.push_back(model_.embed_mean(s.input));
    const std::size_t k = cluster::select_k(opts_.buffer_size, {});
    cluster::KMeansConfig kmcfg;
    kmcfg.seed = opts_.seed ^ (ui * 7711ull);
    const auto clusters = cluster::kmeans(embeddings, k, kmcfg);
    u.rep_indices = cluster::representatives(embeddings, clusters);
    for (const std::size_t rep : u.rep_indices) {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < clusters.assignment.size(); ++i)
        if (clusters.assignment[i] == clusters.assignment[rep]) members.push_back(i);
      u.cluster_members.push_back(std::move(members));
    }

    for (const data::Sample& q : u.data.test)
      u.query_raw.push_back(resample_rows(model_.embed(q.input), opts_.n_virtual_tokens));
    users_.push_back(std::move(u));
  }
}

std::string ExperimentContext::cache_key(bool noise_aware, double sigma) {
  if (!noise_aware) return "plain";
  std::ostringstream os;
  os << "nt" << static_cast<int>(std::lround(sigma * 1000.0));
  return os.str();
}

const std::vector<Matrix>& ExperimentContext::ovts_for(UserState& u, bool noise_aware,
                                                       double sigma) {
  const std::string key = cache_key(noise_aware, sigma);
  auto it = u.ovt_cache.find(key);
  if (it != u.ovt_cache.end()) return it->second;

  llm::TunerConfig tcfg;
  tcfg.n_virtual_tokens = opts_.n_virtual_tokens;
  tcfg.steps = opts_.tuner_steps;
  if (noise_aware) {
    NoiseBandConfig bands;
    bands.sigma = sigma;
    tcfg.perturb = make_noise_hook(bands);
  }

  std::vector<Matrix> ovts;
  for (std::size_t ri = 0; ri < u.rep_indices.size(); ++ri) {
    const data::Sample& rep = u.data.train[u.rep_indices[ri]];
    std::vector<llm::TrainExample> members;
    for (const std::size_t mi : u.cluster_members[ri])
      members.push_back(u.data.train[mi].example);
    llm::TunerConfig cfg_i = tcfg;
    // Same seed for plain and noise-aware training: the two variants share
    // init and batch order, so cells differ only through the injected noise
    // (paired comparison — lowers cross-method variance).
    cfg_i.seed = opts_.seed ^ (u.data.user_id * 977ull + ri * 131ull);
    cfg_i.init = resample_rows(model_.embed(rep.input), cfg_i.n_virtual_tokens);
    llm::SoftPromptTuner tuner(cfg_i);
    ovts.push_back(tuner.train(model_, members));
  }
  return u.ovt_cache.emplace(key, std::move(ovts)).first->second;
}

double ExperimentContext::evaluate(const MethodSpec& method, const nvm::DeviceModel& device,
                                   double sigma) {
  return evaluate_detailed(method, device, sigma).metric;
}

ExperimentContext::CellResult ExperimentContext::evaluate_detailed(
    const MethodSpec& method, const nvm::DeviceModel& device, double sigma) {
  nvm::VariationModel var{device, sigma};
  auto mit = mitigation::make_mitigation(method.mitigation);
  cim::CrossbarConfig xbar;  // paper defaults: 384×128, 2-bit, int16

  eval::MeanAccumulator acc, match, payload_err;
  Rng eval_rng(opts_.seed ^ 0xEA71ull);

  for (UserState& u : users_) {
    const std::vector<Matrix>& ovts = ovts_for(u, method.noise_aware, sigma);
    if (ovts.empty()) continue;

    // Encode and store: retrieval keys into the search banks, payload codes
    // through the mitigation storage path. Anchored OVTs stay within the
    // (augmentation-widened) operating ball of the shared autoencoder, so no
    // per-user encoder refresh is needed at evaluation time.
    const compress::Autoencoder& ae = autoenc_;
    std::vector<Matrix> codes;
    for (const Matrix& ovt : ovts)
      codes.push_back(ae.encode(resample_rows(ovt, opts_.n_virtual_tokens)));

    retrieval::CimRetriever::Config rcfg;
    rcfg.algorithm = method.retrieval;
    rcfg.crossbar = xbar;
    rcfg.variation = var;
    retrieval::CimRetriever retriever(rcfg);
    Rng store_rng(opts_.seed ^ (0x57011ull + u.data.user_id * 31ull));
    retriever.store(codes, store_rng);

    std::vector<Matrix> prompts;
    for (std::size_t i = 0; i < codes.size(); ++i) {
      Rng cell_rng = store_rng.split(i + 1);
      prompts.push_back(ae.decode(mit->store_and_restore(codes[i], xbar, var, cell_rng)));
      const Matrix clean = ae.decode(codes[i]);
      const float denom = clean.frobenius_norm();
      if (denom > 0.0f)
        payload_err.add((prompts.back() - clean).frobenius_norm() / denom);
    }

    for (std::size_t qi = 0; qi < u.data.test.size(); ++qi) {
      const data::Sample& q = u.data.test[qi];
      const std::size_t idx = retriever.retrieve(ae.encode(u.query_raw[qi]));
      match.add(u.data.train[u.rep_indices[idx]].domain == q.domain ? 1.0 : 0.0);
      const Matrix& prompt = prompts[idx];
      if (task_.config().kind == data::TaskKind::Classification) {
        const std::size_t pred = model_.classify(q.input, task_.label_ids(), &prompt);
        acc.add(pred == static_cast<std::size_t>(q.label) ? 1.0 : 0.0);
      } else {
        const std::vector<int> hyp =
            model_.generate(q.input, task_.config().gen_len + 2, 0.1f, eval_rng,
                            task_.eos_id(), &prompt);
        acc.add(eval::rouge1(hyp, data::LampTask::reference_words(q)).f1);
      }
    }
  }
  CellResult res;
  res.metric = acc.mean();
  res.retrieval_match = match.mean();
  res.payload_rel_err = payload_err.mean();
  return res;
}

Fig1Result run_fig1_cell(const llm::LlmProfile& profile, const data::LampConfig& task_cfg,
                         const ExperimentOptions& opts) {
  data::LampTask task(task_cfg);
  llm::TinyLM model = llm::build_pretrained(
      profile, task.vocab_size(), opts.max_seq,
      task.pretraining_corpus(opts.pretrain_corpus, opts.seed ^ 0xC0DEull), opts.seed);

  eval::MeanAccumulator m_vanilla, m_dept, m_ptv2, m_ovt;
  Rng gen_rng(opts.seed ^ 0xF161ull);

  for (std::size_t ui = 0; ui < opts.n_users; ++ui) {
    const data::UserData u = task.make_user(ui, opts.buffer_size, opts.n_test);
    std::vector<llm::TrainExample> buffer_examples;
    for (const data::Sample& s : u.train) buffer_examples.push_back(s.example);

    llm::TunerConfig base;
    base.n_virtual_tokens = opts.n_virtual_tokens;
    base.steps = opts.tuner_steps * 2;  // one4all sees the whole buffer
    base.seed = opts.seed ^ (ui * 31337ull);

    // one4all variants.
    const Matrix vanilla_prompt = llm::SoftPromptTuner(base).train(model, buffer_examples);
    llm::DeptTuner::Config dcfg;
    dcfg.base = base;
    dcfg.base.n_virtual_tokens = std::max<std::size_t>(2, opts.n_virtual_tokens / 2);
    const llm::DeptAdapters dept = llm::DeptTuner(dcfg).train(model, buffer_examples);
    const Matrix dept_delta = dept.embed_delta();
    const llm::KvPrefixValues ptv2 = llm::PrefixKvTuner(base).train(model, buffer_examples);

    // OVT prefixes: oracle per-domain prefix tuning on the buffer samples of
    // that domain (the paper's "optimal set of virtual tokens" upper bound).
    std::map<std::size_t, llm::KvPrefixValues> ovt_by_domain;
    for (const std::size_t d : u.domains) {
      std::vector<llm::TrainExample> domain_examples;
      for (const data::Sample& s : u.train)
        if (s.domain == d) domain_examples.push_back(s.example);
      if (domain_examples.empty()) continue;
      llm::TunerConfig pcfg = base;
      pcfg.steps = opts.tuner_steps;
      pcfg.seed = base.seed ^ (d * 977ull);
      ovt_by_domain.emplace(d, llm::PrefixKvTuner(pcfg).train(model, domain_examples));
    }

    auto score = [&](const data::Sample& q, const Matrix* soft,
                     const llm::KvPrefixValues* kv, const Matrix* delta) {
      if (task.config().kind == data::TaskKind::Classification) {
        const std::size_t pred = model.classify(q.input, task.label_ids(), soft, kv, delta);
        return pred == static_cast<std::size_t>(q.label) ? 1.0 : 0.0;
      }
      const std::vector<int> hyp = model.generate(q.input, task.config().gen_len + 2, 0.1f,
                                                  gen_rng, task.eos_id(), soft, kv, delta);
      return eval::rouge1(hyp, data::LampTask::reference_words(q)).f1;
    };

    for (const data::Sample& q : u.test) {
      m_vanilla.add(score(q, &vanilla_prompt, nullptr, nullptr));
      m_dept.add(score(q, &dept.soft_prompt, nullptr, &dept_delta));
      m_ptv2.add(score(q, nullptr, &ptv2, nullptr));
      auto it = ovt_by_domain.find(q.domain);
      if (it != ovt_by_domain.end())
        m_ovt.add(score(q, nullptr, &it->second, nullptr));
      else
        m_ovt.add(score(q, nullptr, nullptr, nullptr));
    }
  }

  Fig1Result r;
  r.vanilla = m_vanilla.mean();
  r.dept = m_dept.mean();
  r.ptv2 = m_ptv2.mean();
  r.ovt = m_ovt.mean();
  return r;
}

}  // namespace nvcim::core
