#include "nvcim/core/framework.hpp"

namespace nvcim::core {

NvcimPtFramework::NvcimPtFramework(llm::TinyLM& model, const data::LampTask& task,
                                   FrameworkConfig cfg)
    : model_(&model), task_(&task), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  cfg_.autoencoder.input_dim = model.config().d_model;
  autoenc_ = std::make_shared<compress::Autoencoder>(cfg_.autoencoder);
  mitigation_ = mitigation::make_mitigation(cfg_.payload_mitigation);

  retrieval::CimRetriever::Config rcfg;
  rcfg.algorithm = cfg_.retrieval_algorithm;
  rcfg.ssa = cfg_.ssa;
  rcfg.crossbar = cfg_.crossbar;
  rcfg.variation = cfg_.variation;
  retriever_ = std::make_unique<retrieval::CimRetriever>(rcfg);
}

void NvcimPtFramework::ensure_private_autoencoder() {
  // use_count > 1 ⇒ an exported deployment (or engine) still references this
  // encoder; clone before mutating so live serving keeps its snapshot.
  if (autoenc_.use_count() > 1)
    autoenc_ = std::make_shared<compress::Autoencoder>(*autoenc_);
}

void NvcimPtFramework::initialize_autoencoder(std::size_t n_samples) {
  ensure_private_autoencoder();
  Rng rng = rng_.split(0xAE0ull);
  std::vector<Matrix> rows;
  rows.reserve(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const std::size_t d = rng.uniform_index(task_->config().n_domains);
    const data::Sample s = task_->sample(d, rng);
    rows.push_back(model_->embed(s.input));
  }
  autoenc_->train(rows);
}

Matrix NvcimPtFramework::encode_tokens(const Matrix& rows) const {
  return autoenc_->encode(resample_rows(rows, cfg_.tuner.n_virtual_tokens));
}

Matrix NvcimPtFramework::query_representation(const data::Sample& query) const {
  return encode_tokens(model_->embed(query.input));
}

void NvcimPtFramework::train_from_buffer(const std::vector<data::Sample>& buffer) {
  NVCIM_CHECK_MSG(!buffer.empty(), "empty buffer");
  ensure_private_autoencoder();

  // ---- Representative Selection (RS) ----
  std::vector<Matrix> embeddings;
  embeddings.reserve(buffer.size());
  for (const data::Sample& s : buffer) embeddings.push_back(model_->embed_mean(s.input));
  const std::size_t k = cluster::select_k(buffer.size(), cfg_.k_select);
  last_k_ = k;
  cluster::KMeansConfig kmcfg = cfg_.kmeans;
  kmcfg.seed = rng_.split(0x135ull).next_u64();
  const auto clusters = cluster::kmeans(embeddings, k, kmcfg);
  const auto reps = cluster::representatives(embeddings, clusters);

  // ---- Autoencoder refresh on the non-representative leftovers ----
  std::vector<Matrix> leftovers;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    if (std::find(reps.begin(), reps.end(), i) == reps.end())
      leftovers.push_back(model_->embed(buffer[i].input));
  }
  if (!leftovers.empty()) autoenc_->update(leftovers, cfg_.autoencoder.steps / 4);

  // ---- Noise-aware Training (NT): one OVT per representative ----
  llm::TunerConfig tcfg = cfg_.tuner;
  if (cfg_.noise_aware) {
    NoiseBandConfig bands = cfg_.noise_bands;
    bands.sigma = cfg_.variation.global_sigma;
    tcfg.perturb = make_noise_hook(bands);
  }
  std::vector<Matrix> new_ovts;
  for (std::size_t ri = 0; ri < reps.size(); ++ri) {
    const data::Sample& rep = buffer[reps[ri]];
    // The representative anchors the OVT; its whole cluster provides the
    // training signal (a single sample is usually label-ambiguous across
    // domains).
    std::vector<llm::TrainExample> members;
    const std::size_t cluster_of_rep = clusters.assignment[reps[ri]];
    for (std::size_t i = 0; i < buffer.size(); ++i)
      if (clusters.assignment[i] == cluster_of_rep) members.push_back(buffer[i].example);
    llm::TunerConfig cfg_i = tcfg;
    cfg_i.seed = rng_.split(0x5EED0ull + ri).next_u64();
    // Warm-start the OVT from the representative's embedding (keeps the OVT
    // retrievable by inner-product search; see TunerConfig::init).
    cfg_i.init = resample_rows(model_->embed(rep.input), cfg_i.n_virtual_tokens);
    llm::SoftPromptTuner tuner(cfg_i);
    new_ovts.push_back(tuner.train(*model_, members));
    ovt_domains_.push_back(rep.domain);
  }

  // Anchored OVTs stay within the autoencoder's (augmentation-widened)
  // operating ball, so the leftovers-based refresh above suffices.
  for (const Matrix& ovt : new_ovts) ovt_payload_codes_.push_back(encode_tokens(ovt));

  // ---- Store & Scaled Search (SSA): write codes to NVM ----
  // Retrieval keys go into the search crossbar banks; the payload goes
  // through the configured mitigation storage path and is decoded into the
  // prompt inference will actually use.
  Rng store_rng = rng_.split(0x570Eull + ovt_payload_codes_.size());
  retriever_->store(ovt_payload_codes_, store_rng);
  stored_codes_.clear();
  restored_prompts_.clear();
  for (const Matrix& code : ovt_payload_codes_) {
    Rng cell_rng = store_rng.split(restored_prompts_.size() + 1);
    const Matrix noisy_code =
        mitigation_->store_and_restore(code, cfg_.crossbar, cfg_.variation, cell_rng);
    stored_codes_.push_back(noisy_code);
    restored_prompts_.push_back(autoenc_->decode(noisy_code));
  }
}

TrainedDeployment NvcimPtFramework::export_deployment() {
  NVCIM_CHECK_MSG(n_stored_ovts() > 0, "nothing trained to export");
  TrainedDeployment d;
  d.keys = std::move(ovt_payload_codes_);
  d.stored_codes = std::move(stored_codes_);
  d.domains = std::move(ovt_domains_);
  // Share, don't deep-copy: deployments exported from one encoder snapshot
  // alias the same Autoencoder, letting a serving engine fuse their encode
  // GEMMs. Isolation from retraining is preserved by copy-on-write — any
  // later mutating train step clones the framework's copy first (see
  // ensure_private_autoencoder()).
  d.autoencoder = autoenc_;
  d.n_virtual_tokens = cfg_.tuner.n_virtual_tokens;
  ovt_payload_codes_.clear();
  stored_codes_.clear();
  restored_prompts_.clear();
  ovt_domains_.clear();
  return d;
}

Matrix TrainedDeployment::query_representation(const llm::TinyLM& model,
                                               const data::Sample& query) const {
  NVCIM_CHECK_MSG(autoencoder != nullptr, "deployment has no autoencoder");
  return autoencoder->encode(resample_rows(model.embed(query.input), n_virtual_tokens));
}

Matrix TrainedDeployment::query_representation_batch(
    const llm::TinyLM& model, const std::vector<const TrainedDeployment*>& deps,
    const std::vector<const data::Sample*>& queries, EncodeScratch* scratch) {
  NVCIM_CHECK_MSG(!deps.empty() && deps.size() == queries.size(),
                  "batch of " << deps.size() << " deployments vs " << queries.size()
                              << " queries");
  const TrainedDeployment& lead = *deps[0];
  NVCIM_CHECK_MSG(lead.autoencoder != nullptr, "deployment has no autoencoder");
  for (const TrainedDeployment* d : deps)
    NVCIM_CHECK_MSG(d != nullptr && d->autoencoder.get() == lead.autoencoder.get() &&
                        d->n_virtual_tokens == lead.n_virtual_tokens,
                    "batched encode requires one shared autoencoder and token count");

  EncodeScratch local;
  EncodeScratch& ws = (scratch != nullptr ? *scratch : local);
  ws.seqs.clear();
  ws.seqs.reserve(queries.size());
  for (const data::Sample* q : queries) {
    NVCIM_CHECK_MSG(q != nullptr, "null query in batch");
    ws.seqs.push_back(&q->input);
  }
  model.embed_batch_into(ws.seqs, ws.embeds);
  ws.parts.clear();
  ws.parts.reserve(ws.embeds.size());
  for (const Matrix& e : ws.embeds) ws.parts.push_back(&e);

  // All B queries resampled to the shared virtual-token shape, stacked, and
  // pushed through one encode GEMM. Rows are independent under encode, so
  // row b of the result equals the serial per-query path bit-for-bit.
  resample_rows_batch(ws.parts, lead.n_virtual_tokens, ws.stacked);
  Matrix codes;
  lead.autoencoder->encode_into(ws.stacked, codes, &ws.autoencoder);
  const std::size_t code_dim = codes.cols();
  codes.reshape_inplace(deps.size(), lead.n_virtual_tokens * code_dim);
  return codes;
}

Matrix TrainedDeployment::decode_prompt(std::size_t idx) const {
  NVCIM_CHECK_MSG(idx < stored_codes.size(), "OVT index " << idx << " out of range");
  return autoencoder->decode(stored_codes[idx]);
}

void TrainedDeployment::decode_prompt_into(std::size_t idx, Matrix& out,
                                           compress::Autoencoder::Scratch* scratch) const {
  NVCIM_CHECK_MSG(idx < stored_codes.size(), "OVT index " << idx << " out of range");
  autoencoder->decode_into(stored_codes[idx], out, scratch);
}

std::size_t NvcimPtFramework::retrieve_index(const data::Sample& query) {
  NVCIM_CHECK_MSG(n_stored_ovts() > 0, "no OVTs stored; run train_from_buffer first");
  return retriever_->retrieve(query_representation(query));
}

std::size_t NvcimPtFramework::classify(const data::Sample& query) {
  const Matrix& prompt = restored_prompts_[retrieve_index(query)];
  return model_->classify(query.input, task_->label_ids(), &prompt);
}

std::vector<int> NvcimPtFramework::generate(const data::Sample& query, Rng& rng) {
  const Matrix& prompt = restored_prompts_[retrieve_index(query)];
  // Paper settings: temperature 0.1, bounded generation length.
  return model_->generate(query.input, task_->config().gen_len + 2, 0.1f, rng,
                          task_->eos_id(), &prompt);
}

double NvcimPtFramework::evaluate(const data::Sample& query, Rng& rng) {
  if (task_->config().kind == data::TaskKind::Classification) {
    const std::size_t pred = classify(query);
    return pred == static_cast<std::size_t>(query.label) ? 1.0 : 0.0;
  }
  const std::vector<int> hyp = generate(query, rng);
  return eval::rouge1(hyp, data::LampTask::reference_words(query)).f1;
}

}  // namespace nvcim::core
