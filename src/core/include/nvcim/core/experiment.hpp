#pragma once

#include <map>
#include <string>
#include <vector>

#include "nvcim/core/framework.hpp"
#include "nvcim/llm/profiles.hpp"

namespace nvcim::core {

/// One column of the paper's method grid (Table I / III / IV rows).
struct MethodSpec {
  std::string name;
  bool noise_aware = false;                              ///< NT on?
  mitigation::Kind mitigation = mitigation::Kind::None;  ///< payload storage path
  retrieval::Algorithm retrieval = retrieval::Algorithm::SSA;
};

/// The six methods of Table I, in paper order:
/// SWV, CxDNN, CorrectNet (mitigation storage + SSA retrieval, no NT),
/// No-Miti(MIPS), NVP*(MIPS) (NT, plain storage, MIPS), NVCiM-PT (NT + SSA).
std::vector<MethodSpec> table1_methods();

/// Scale/sampling knobs of an experiment run. Defaults are sized so the full
/// Table I regenerates in minutes; raise n_users / n_test toward the paper's
/// 100-user protocol when time allows.
struct ExperimentOptions {
  std::size_t n_users = 5;
  std::size_t buffer_size = 25;   ///< paper default for Table I
  std::size_t n_test = 12;
  std::size_t n_virtual_tokens = 8;
  std::size_t tuner_steps = 60;
  std::size_t pretrain_corpus = 2000;
  std::size_t autoencoder_samples = 64;
  std::size_t max_seq = 48;
  std::uint64_t seed = 2025;
};

/// Shared state for evaluating many (device, σ, method) cells on one
/// (LLM profile, dataset) pair: the backbone is pretrained once, users and
/// their OVTs are trained once per NT setting and reused across every cell —
/// matching the paper's protocol, where storage/retrieval vary per device
/// but the tuned OVTs do not.
class ExperimentContext {
 public:
  ExperimentContext(const llm::LlmProfile& profile, const data::LampConfig& task_cfg,
                    ExperimentOptions opts);

  /// Per-cell result with mechanism diagnostics.
  struct CellResult {
    double metric = 0.0;           ///< accuracy or ROUGE-1 F1
    double retrieval_match = 0.0;  ///< fraction of queries whose retrieved OVT
                                   ///< domain equals the query domain
    double payload_rel_err = 0.0;  ///< mean ‖restored − clean‖/‖clean‖ of prompts
  };

  /// Mean task metric (accuracy or ROUGE-1) of a method on a device at the
  /// given variation scale.
  double evaluate(const MethodSpec& method, const nvm::DeviceModel& device, double sigma);
  CellResult evaluate_detailed(const MethodSpec& method, const nvm::DeviceModel& device,
                               double sigma);

  const data::LampTask& task() const { return task_; }
  llm::TinyLM& model() { return model_; }
  const ExperimentOptions& options() const { return opts_; }

 private:
  struct UserState {
    data::UserData data;
    std::vector<std::size_t> rep_indices;             ///< into data.train
    std::vector<std::vector<std::size_t>> cluster_members;  ///< per representative
    std::vector<Matrix> query_raw;  ///< resampled (pre-encoder) query embeddings
    // OVT cache: key "plain" = plain training, "ntXXX" = noise-aware at σ key
    std::map<std::string, std::vector<Matrix>> ovt_cache;
  };

  const std::vector<Matrix>& ovts_for(UserState& u, bool noise_aware, double sigma);
  static std::string cache_key(bool noise_aware, double sigma);

  ExperimentOptions opts_;
  data::LampTask task_;
  llm::TinyLM model_;
  compress::Autoencoder autoenc_;
  std::vector<UserState> users_;
};

/// Fig. 1 harness: one4all prompt-tuning methods vs OVT prefix tuning
/// (oracle per-domain prefixes, no NVM in the loop).
struct Fig1Result {
  double vanilla = 0.0;  ///< Lester-style one4all soft prompt
  double dept = 0.0;     ///< DEPT one4all
  double ptv2 = 0.0;     ///< P-tuning v2 (one4all deep prompts)
  double ovt = 0.0;      ///< prefix tuning with per-domain OVTs
};

Fig1Result run_fig1_cell(const llm::LlmProfile& profile, const data::LampConfig& task_cfg,
                         const ExperimentOptions& opts);

}  // namespace nvcim::core
