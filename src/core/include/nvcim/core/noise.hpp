#pragma once

#include "nvcim/llm/tuners.hpp"
#include "nvcim/tensor/matrix.hpp"

namespace nvcim::core {

/// The paper's Eq. 4: magnitude-banded Gaussian noise injection for
/// noise-aware training. Each element of the normalized virtual tokens
/// Ŝ = S / max|S| selects one of four bands, whose factor multiplies the
/// global σ; the resulting noise is scaled back by max|S|:
///   S' = S + N · max|S|,  N_ij ~ N(0, (σ·f_band)²).
///
/// Band factors follow the Table II level structure (mid-range levels show
/// the largest variation on the multi-level devices): the defaults put more
/// noise on large-magnitude entries, which map to the upper cell levels.
struct NoiseBandConfig {
  double sigma = 0.1;  ///< global noise parameter (paper default)
  double f1 = 1.0;     ///< |Ŝ| > 0.75
  double f2 = 0.8;     ///< 0.5 ≤ |Ŝ| ≤ 0.75
  double f3 = 0.6;     ///< 0.25 ≤ |Ŝ| < 0.5
  double f4 = 0.4;     ///< |Ŝ| < 0.25

  double factor_for(double s_hat_abs) const {
    if (s_hat_abs > 0.75) return f1;
    if (s_hat_abs >= 0.5) return f2;
    if (s_hat_abs >= 0.25) return f3;
    return f4;
  }
};

/// One draw of Eq. 4 applied to virtual tokens S.
Matrix inject_banded_noise(const Matrix& s, const NoiseBandConfig& cfg, Rng& rng);

/// Wrap Eq. 4 as the tuner's perturbation hook.
llm::PerturbFn make_noise_hook(const NoiseBandConfig& cfg);

}  // namespace nvcim::core
