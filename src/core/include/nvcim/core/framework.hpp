#pragma once

#include <memory>
#include <vector>

#include "nvcim/cluster/kmeans.hpp"
#include "nvcim/compress/autoencoder.hpp"
#include "nvcim/core/noise.hpp"
#include "nvcim/data/lamp.hpp"
#include "nvcim/eval/metrics.hpp"
#include "nvcim/llm/model.hpp"
#include "nvcim/llm/tuners.hpp"
#include "nvcim/mitigation/methods.hpp"
#include "nvcim/retrieval/search.hpp"

namespace nvcim::core {

/// End-to-end configuration of NVCiM-PT for one deployment.
struct FrameworkConfig {
  cluster::KSelectionConfig k_select;
  cluster::KMeansConfig kmeans;
  llm::TunerConfig tuner;              ///< OVT prompt-tuning recipe
  bool noise_aware = true;             ///< enable NT (Eq. 4) during PT
  NoiseBandConfig noise_bands;         ///< Eq. 4 parameters
  compress::AutoencoderConfig autoencoder;  ///< input_dim overwritten from the model
  cim::CrossbarConfig crossbar;        ///< 384×128, 2-bit cells by default
  nvm::VariationModel variation;       ///< device + global σ
  retrieval::Algorithm retrieval_algorithm = retrieval::Algorithm::SSA;
  retrieval::ScaledSearchConfig ssa;
  mitigation::Kind payload_mitigation = mitigation::Kind::None;
  std::uint64_t seed = 99;
};

/// Reusable buffers for the batched encode path (typically one per serving
/// worker): per-query embeddings, the stacked resampled rows and the
/// autoencoder's hidden-layer scratch, so steady-state batches stop
/// churning temporaries.
struct EncodeScratch {
  std::vector<const std::vector<int>*> seqs;
  std::vector<Matrix> embeds;
  std::vector<const Matrix*> parts;
  Matrix stacked;
  compress::Autoencoder::Scratch autoencoder;
};

/// The serve-side half of one user's deployment, produced by
/// NvcimPtFramework::export_deployment(). Owns everything a serving engine
/// needs to answer queries for this user — the encoded retrieval keys, the
/// noisy NVM read-back payload codes, and the (shared) autoencoder — while
/// the heavyweight training machinery stays behind in the framework. The
/// frozen LLM backbone is deliberately NOT owned: one TinyLM is shared
/// across every deployment of a serving engine.
struct TrainedDeployment {
  std::vector<Matrix> keys;          ///< clean encoded OVT codes (retrieval keys)
  std::vector<Matrix> stored_codes;  ///< noisy NVM read-backs (decode on demand)
  std::vector<std::size_t> domains;  ///< ground-truth domain per OVT (diagnostics)
  std::shared_ptr<const compress::Autoencoder> autoencoder;
  std::size_t n_virtual_tokens = 0;

  std::size_t n_ovts() const { return keys.size(); }

  /// Encoded fixed-shape representation of a query — identical to what the
  /// exporting framework's query_representation() produced.
  Matrix query_representation(const llm::TinyLM& model, const data::Sample& query) const;

  /// Batched query_representation over deployments that share one
  /// autoencoder (and virtual-token count): embeds every query, resamples
  /// each to n_virtual_tokens rows, stacks the rows, and runs a single
  /// autoencoder-encode GEMM for the whole group — one GEMM serving many
  /// tenants. Returns a B×(n_virtual_tokens·code_dim) matrix whose row b is
  /// bit-identical to
  /// deps[b]->query_representation(model, *queries[b]).flattened().
  static Matrix query_representation_batch(const llm::TinyLM& model,
                                           const std::vector<const TrainedDeployment*>& deps,
                                           const std::vector<const data::Sample*>& queries,
                                           EncodeScratch* scratch = nullptr);

  /// Decode the stored (noisy) payload code of OVT `idx` into the soft
  /// prompt inference uses — identical to the exporting framework's
  /// restored_prompts()[idx].
  Matrix decode_prompt(std::size_t idx) const;

  /// decode_prompt() into caller storage, reusing `scratch` across calls.
  void decode_prompt_into(std::size_t idx, Matrix& out,
                          compress::Autoencoder::Scratch* scratch = nullptr) const;
};

/// The NVCiM-assisted prompt-tuning framework (paper Fig. 3), owning the
/// full loop for one user deployment:
///  training mode  — representative selection (RS) over a full buffer,
///                   noise-aware prompt tuning (NT) of one OVT per
///                   representative, autoencoder refresh on the leftovers,
///                   encoding and NVM storage of the OVTs (payload through
///                   the configured mitigation path, retrieval keys in the
///                   SSA/MIPS crossbar banks);
///  inference mode — encode the query embedding, retrieve the best OVT via
///                   in-memory search, decode it and run the frozen LLM with
///                   it as the soft prompt.
class NvcimPtFramework {
 public:
  NvcimPtFramework(llm::TinyLM& model, const data::LampTask& task, FrameworkConfig cfg);

  /// Pretrain the autoencoder on task-domain embeddings (the paper pretrains
  /// it on user-generated data before deployment).
  void initialize_autoencoder(std::size_t n_samples);

  /// Training mode: consume a full buffer. May be called repeatedly; OVTs
  /// accumulate and the NVM store is rewritten.
  void train_from_buffer(const std::vector<data::Sample>& buffer);

  /// Train/serve split: move the trained serving state (keys, stored payload
  /// codes, domains) out into a TrainedDeployment for a serving engine to
  /// own. The framework returns to its untrained state (n_stored_ovts() ==
  /// 0) and may be retrained. The deployment *shares* the autoencoder
  /// (copy-on-write: the framework clones its own copy before the next
  /// mutating train step), so deployments exported from the same encoder
  /// snapshot alias one object — a serving engine can fuse their encode
  /// GEMMs — while later retraining still cannot disturb live serving.
  TrainedDeployment export_deployment();

  /// Inference mode.
  std::size_t retrieve_index(const data::Sample& query);
  std::size_t classify(const data::Sample& query);
  std::vector<int> generate(const data::Sample& query, Rng& rng);
  /// Task-appropriate score for one query: classification → 0/1 correctness,
  /// generation → ROUGE-1 F1.
  double evaluate(const data::Sample& query, Rng& rng);

  // ---- Introspection (tests / diagnostics) ----
  std::size_t n_stored_ovts() const { return restored_prompts_.size(); }
  const std::vector<Matrix>& restored_prompts() const { return restored_prompts_; }
  const std::vector<std::size_t>& ovt_domains() const { return ovt_domains_; }
  /// Encoded fixed-shape representation of a query (what retrieval sees).
  Matrix query_representation(const data::Sample& query) const;
  const compress::Autoencoder& autoencoder() const { return *autoenc_; }
  std::size_t last_selected_k() const { return last_k_; }

 private:
  Matrix encode_tokens(const Matrix& rows) const;
  /// Clone the autoencoder if an exported deployment still shares it, so a
  /// mutating train step never touches an encoder a live engine is reading.
  void ensure_private_autoencoder();

  llm::TinyLM* model_;
  const data::LampTask* task_;
  FrameworkConfig cfg_;
  Rng rng_;
  std::shared_ptr<compress::Autoencoder> autoenc_;
  std::unique_ptr<retrieval::CimRetriever> retriever_;
  std::unique_ptr<mitigation::MitigationMethod> mitigation_;

  std::vector<Matrix> ovt_payload_codes_;   ///< clean encoded OVTs (write targets)
  std::vector<Matrix> stored_codes_;        ///< noisy NVM read-backs (decode inputs)
  std::vector<Matrix> restored_prompts_;    ///< decoded NVM read-backs (what inference uses)
  std::vector<std::size_t> ovt_domains_;    ///< ground-truth domain per OVT (diagnostics)
  std::size_t last_k_ = 0;
};

}  // namespace nvcim::core
