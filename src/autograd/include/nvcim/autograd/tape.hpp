#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "nvcim/tensor/matrix.hpp"

namespace nvcim::autograd {

class Tape;

// tanh-approximation GELU constants, shared by the tape op and the tape-free
// inference kernels (e.g. compress::Autoencoder) so both paths are
// bit-identical.
inline constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
inline constexpr float kGeluA = 0.044715f;

inline float gelu_value(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}

/// Lightweight handle to a node on a Tape. Vars are only valid for the
/// lifetime of the tape that created them and become dangling after
/// Tape::clear().
class Var {
 public:
  Var() = default;
  Var(Tape* tape, std::size_t index) : tape_(tape), index_(index) {}

  bool valid() const { return tape_ != nullptr; }
  std::size_t index() const { return index_; }
  Tape* tape() const { return tape_; }

  const Matrix& value() const;
  const Matrix& grad() const;

 private:
  Tape* tape_ = nullptr;
  std::size_t index_ = 0;
};

/// Reverse-mode automatic differentiation over Matrix values.
///
/// Usage: create leaves with Tape::leaf(), compose with the op methods, call
/// backward() on a scalar (1×1) result, then read gradients from the leaves.
/// The tape is rebuilt every training step (define-by-run); call clear()
/// between steps to release the graph.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Register a leaf. requires_grad leaves accumulate gradients in backward().
  Var leaf(Matrix value, bool requires_grad = false);

  /// Drop all nodes (invalidates outstanding Vars).
  void clear();
  std::size_t node_count() const { return nodes_.size(); }

  // ---- elementwise / scalar ----
  Var add(Var a, Var b);
  Var sub(Var a, Var b);
  Var mul(Var a, Var b);              ///< Hadamard product
  Var scale(Var a, float s);
  Var add_const(Var a, Matrix c);     ///< a + constant (e.g. causal mask)
  Var relu(Var a);
  Var gelu(Var a);                    ///< tanh-approximation GELU
  Var tanh_op(Var a);
  Var square(Var a);

  // ---- linear algebra ----
  Var matmul(Var a, Var b);           ///< A·B
  Var matmul_nt(Var a, Var b);        ///< A·Bᵀ (attention scores)
  Var add_row_broadcast(Var a, Var bias);  ///< bias is 1×cols, added to each row

  // ---- shape ----
  Var concat_rows(Var top, Var bottom);
  Var concat_cols(Var left, Var right);
  Var slice_rows(Var a, std::size_t begin, std::size_t end);
  Var slice_cols(Var a, std::size_t begin, std::size_t end);
  Var reshape(Var a, std::size_t rows, std::size_t cols);

  // ---- nn primitives ----
  /// Row-wise softmax.
  Var row_softmax(Var a);
  /// Row-wise layer normalization with learnable 1×cols gain and bias.
  Var layernorm(Var a, Var gain, Var bias, float eps = 1e-5f);
  /// Gather rows of `table` at `ids` (embedding lookup).
  Var embedding(Var table, const std::vector<int>& ids);
  /// Mean over all elements -> 1×1.
  Var mean_all(Var a);
  /// Mean softmax cross-entropy of row logits vs integer targets -> 1×1.
  /// Rows whose target is negative are ignored (masked positions).
  Var cross_entropy(Var logits, const std::vector<int>& targets);
  /// Mean squared error against a constant target -> 1×1.
  Var mse(Var pred, Matrix target);

  /// Accumulate gradients of `result` (must be 1×1) into every
  /// requires_grad node reachable from it. Gradients are zeroed first.
  void backward(Var result);

  const Matrix& value(Var v) const;
  const Matrix& grad(Var v) const;
  /// True if backward() deposited a gradient on this node.
  bool has_grad(Var v) const;

 private:
  struct Node {
    Matrix value;
    Matrix grad;               // lazily sized on backward
    bool requires_grad = false;
    bool grad_alloc = false;
    std::function<void()> backward_fn;  // empty for leaves
  };

  Var make(Matrix value, bool requires_grad, std::function<void()> backward_fn);
  Matrix& grad_ref(std::size_t idx);
  void accumulate(std::size_t idx, const Matrix& g);

  std::vector<Node> nodes_;
};

}  // namespace nvcim::autograd
