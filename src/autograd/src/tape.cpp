#include "nvcim/autograd/tape.hpp"

#include <cmath>

namespace nvcim::autograd {

const Matrix& Var::value() const { return tape_->value(*this); }
const Matrix& Var::grad() const { return tape_->grad(*this); }

const Matrix& Tape::value(Var v) const {
  NVCIM_CHECK(v.valid() && v.index() < nodes_.size());
  return nodes_[v.index()].value;
}

const Matrix& Tape::grad(Var v) const {
  NVCIM_CHECK(v.valid() && v.index() < nodes_.size());
  const Node& n = nodes_[v.index()];
  NVCIM_CHECK_MSG(n.grad_alloc, "gradient was never computed for this node");
  return n.grad;
}

bool Tape::has_grad(Var v) const {
  NVCIM_CHECK(v.valid() && v.index() < nodes_.size());
  return nodes_[v.index()].grad_alloc;
}

Var Tape::leaf(Matrix value, bool requires_grad) {
  return make(std::move(value), requires_grad, {});
}

void Tape::clear() { nodes_.clear(); }

Var Tape::make(Matrix value, bool requires_grad, std::function<void()> backward_fn) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  n.backward_fn = std::move(backward_fn);
  nodes_.push_back(std::move(n));
  return Var(this, nodes_.size() - 1);
}

Matrix& Tape::grad_ref(std::size_t idx) {
  Node& n = nodes_[idx];
  if (!n.grad_alloc) {
    n.grad = Matrix(n.value.rows(), n.value.cols(), 0.0f);
    n.grad_alloc = true;
  }
  return n.grad;
}

void Tape::accumulate(std::size_t idx, const Matrix& g) {
  if (!nodes_[idx].requires_grad) return;
  grad_ref(idx) += g;
}

void Tape::backward(Var result) {
  NVCIM_CHECK(result.valid() && result.tape() == this);
  NVCIM_CHECK_MSG(value(result).size() == 1, "backward() requires a scalar (1x1) result");
  for (Node& n : nodes_) n.grad_alloc = false;
  grad_ref(result.index()).fill(1.0f);
  for (std::size_t i = result.index() + 1; i-- > 0;) {
    Node& n = nodes_[i];
    if (n.requires_grad && n.grad_alloc && n.backward_fn) n.backward_fn();
  }
}

// ---------------------------------------------------------------------------
// elementwise
// ---------------------------------------------------------------------------

Var Tape::add(Var a, Var b) {
  const std::size_t ia = a.index(), ib = b.index();
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Matrix out = nodes_[ia].value + nodes_[ib].value;
  Var v = make(std::move(out), rg, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, ib, io] {
    const Matrix& g = nodes_[io].grad;
    accumulate(ia, g);
    accumulate(ib, g);
  };
  return v;
}

Var Tape::sub(Var a, Var b) {
  const std::size_t ia = a.index(), ib = b.index();
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var v = make(nodes_[ia].value - nodes_[ib].value, rg, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, ib, io] {
    const Matrix& g = nodes_[io].grad;
    accumulate(ia, g);
    if (nodes_[ib].requires_grad) grad_ref(ib).add_scaled(g, -1.0f);
  };
  return v;
}

Var Tape::mul(Var a, Var b) {
  const std::size_t ia = a.index(), ib = b.index();
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var v = make(hadamard(nodes_[ia].value, nodes_[ib].value), rg, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, ib, io] {
    const Matrix& g = nodes_[io].grad;
    if (nodes_[ia].requires_grad) accumulate(ia, hadamard(g, nodes_[ib].value));
    if (nodes_[ib].requires_grad) accumulate(ib, hadamard(g, nodes_[ia].value));
  };
  return v;
}

Var Tape::scale(Var a, float s) {
  const std::size_t ia = a.index();
  Var v = make(nodes_[ia].value * s, nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io, s] {
    if (nodes_[ia].requires_grad) grad_ref(ia).add_scaled(nodes_[io].grad, s);
  };
  return v;
}

Var Tape::add_const(Var a, Matrix c) {
  const std::size_t ia = a.index();
  Var v = make(nodes_[ia].value + c, nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io] { accumulate(ia, nodes_[io].grad); };
  return v;
}

Var Tape::relu(Var a) {
  const std::size_t ia = a.index();
  Matrix out = nodes_[ia].value;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out.at_flat(i) < 0.0f) out.at_flat(i) = 0.0f;
  Var v = make(std::move(out), nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io] {
    if (!nodes_[ia].requires_grad) return;
    const Matrix& g = nodes_[io].grad;
    const Matrix& x = nodes_[ia].value;
    Matrix gx = g;
    for (std::size_t i = 0; i < gx.size(); ++i)
      if (x.at_flat(i) <= 0.0f) gx.at_flat(i) = 0.0f;
    grad_ref(ia) += gx;
  };
  return v;
}

Var Tape::gelu(Var a) {
  const std::size_t ia = a.index();
  Matrix out = nodes_[ia].value;
  for (std::size_t i = 0; i < out.size(); ++i) out.at_flat(i) = gelu_value(out.at_flat(i));
  Var v = make(std::move(out), nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io] {
    if (!nodes_[ia].requires_grad) return;
    const Matrix& g = nodes_[io].grad;
    const Matrix& xm = nodes_[ia].value;
    Matrix gx(xm.rows(), xm.cols());
    for (std::size_t i = 0; i < gx.size(); ++i) {
      const float x = xm.at_flat(i);
      const float u = kGeluC * (x + kGeluA * x * x * x);
      const float t = std::tanh(u);
      const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
      const float dy = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      gx.at_flat(i) = g.at_flat(i) * dy;
    }
    grad_ref(ia) += gx;
  };
  return v;
}

Var Tape::tanh_op(Var a) {
  const std::size_t ia = a.index();
  Matrix out = nodes_[ia].value;
  for (std::size_t i = 0; i < out.size(); ++i) out.at_flat(i) = std::tanh(out.at_flat(i));
  Var v = make(std::move(out), nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io] {
    if (!nodes_[ia].requires_grad) return;
    const Matrix& g = nodes_[io].grad;
    const Matrix& y = nodes_[io].value;
    Matrix gx(y.rows(), y.cols());
    for (std::size_t i = 0; i < gx.size(); ++i) {
      const float t = y.at_flat(i);
      gx.at_flat(i) = g.at_flat(i) * (1.0f - t * t);
    }
    grad_ref(ia) += gx;
  };
  return v;
}

Var Tape::square(Var a) {
  const std::size_t ia = a.index();
  Var v = make(hadamard(nodes_[ia].value, nodes_[ia].value), nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io] {
    if (!nodes_[ia].requires_grad) return;
    Matrix gx = hadamard(nodes_[io].grad, nodes_[ia].value);
    gx *= 2.0f;
    grad_ref(ia) += gx;
  };
  return v;
}

// ---------------------------------------------------------------------------
// linear algebra
// ---------------------------------------------------------------------------

Var Tape::matmul(Var a, Var b) {
  const std::size_t ia = a.index(), ib = b.index();
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var v = make(nvcim::matmul(nodes_[ia].value, nodes_[ib].value), rg, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, ib, io] {
    const Matrix& g = nodes_[io].grad;
    if (nodes_[ia].requires_grad) accumulate(ia, nvcim::matmul_nt(g, nodes_[ib].value));
    if (nodes_[ib].requires_grad) accumulate(ib, nvcim::matmul_tn(nodes_[ia].value, g));
  };
  return v;
}

Var Tape::matmul_nt(Var a, Var b) {
  const std::size_t ia = a.index(), ib = b.index();
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var v = make(nvcim::matmul_nt(nodes_[ia].value, nodes_[ib].value), rg, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, ib, io] {
    const Matrix& g = nodes_[io].grad;
    if (nodes_[ia].requires_grad) accumulate(ia, nvcim::matmul(g, nodes_[ib].value));
    if (nodes_[ib].requires_grad) accumulate(ib, nvcim::matmul_tn(g, nodes_[ia].value));
  };
  return v;
}

Var Tape::add_row_broadcast(Var a, Var bias) {
  const std::size_t ia = a.index(), ib = bias.index();
  const Matrix& av = nodes_[ia].value;
  const Matrix& bv = nodes_[ib].value;
  NVCIM_CHECK_MSG(bv.rows() == 1 && bv.cols() == av.cols(), "bias must be 1 x cols");
  Matrix out = av;
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += bv(0, c);
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var v = make(std::move(out), rg, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, ib, io] {
    const Matrix& g = nodes_[io].grad;
    accumulate(ia, g);
    if (nodes_[ib].requires_grad) {
      Matrix& gb = grad_ref(ib);
      for (std::size_t r = 0; r < g.rows(); ++r)
        for (std::size_t c = 0; c < g.cols(); ++c) gb(0, c) += g(r, c);
    }
  };
  return v;
}

// ---------------------------------------------------------------------------
// shape
// ---------------------------------------------------------------------------

Var Tape::concat_rows(Var top, Var bottom) {
  const std::size_t it = top.index(), ib = bottom.index();
  const bool rg = nodes_[it].requires_grad || nodes_[ib].requires_grad;
  const std::size_t top_rows = nodes_[it].value.rows();
  Var v = make(vconcat(nodes_[it].value, nodes_[ib].value), rg, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, it, ib, io, top_rows] {
    const Matrix& g = nodes_[io].grad;
    if (nodes_[it].requires_grad) accumulate(it, g.row_slice(0, top_rows));
    if (nodes_[ib].requires_grad) accumulate(ib, g.row_slice(top_rows, g.rows()));
  };
  return v;
}

Var Tape::concat_cols(Var left, Var right) {
  const std::size_t il = left.index(), ir = right.index();
  const bool rg = nodes_[il].requires_grad || nodes_[ir].requires_grad;
  const std::size_t left_cols = nodes_[il].value.cols();
  Var v = make(hconcat(nodes_[il].value, nodes_[ir].value), rg, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, il, ir, io, left_cols] {
    const Matrix& g = nodes_[io].grad;
    if (nodes_[il].requires_grad) accumulate(il, g.col_slice(0, left_cols));
    if (nodes_[ir].requires_grad) accumulate(ir, g.col_slice(left_cols, g.cols()));
  };
  return v;
}

Var Tape::slice_cols(Var a, std::size_t begin, std::size_t end) {
  const std::size_t ia = a.index();
  Var v = make(nodes_[ia].value.col_slice(begin, end), nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io, begin] {
    if (!nodes_[ia].requires_grad) return;
    const Matrix& g = nodes_[io].grad;
    Matrix& ga = grad_ref(ia);
    for (std::size_t r = 0; r < g.rows(); ++r)
      for (std::size_t c = 0; c < g.cols(); ++c) ga(r, begin + c) += g(r, c);
  };
  return v;
}

Var Tape::slice_rows(Var a, std::size_t begin, std::size_t end) {
  const std::size_t ia = a.index();
  Var v = make(nodes_[ia].value.row_slice(begin, end), nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io, begin] {
    if (!nodes_[ia].requires_grad) return;
    const Matrix& g = nodes_[io].grad;
    Matrix& ga = grad_ref(ia);
    for (std::size_t r = 0; r < g.rows(); ++r)
      for (std::size_t c = 0; c < g.cols(); ++c) ga(begin + r, c) += g(r, c);
  };
  return v;
}

Var Tape::reshape(Var a, std::size_t rows, std::size_t cols) {
  const std::size_t ia = a.index();
  Var v = make(nodes_[ia].value.reshaped(rows, cols), nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io] {
    if (!nodes_[ia].requires_grad) return;
    const Matrix& src = nodes_[ia].value;
    accumulate(ia, nodes_[io].grad.reshaped(src.rows(), src.cols()));
  };
  return v;
}

// ---------------------------------------------------------------------------
// nn primitives
// ---------------------------------------------------------------------------

Var Tape::row_softmax(Var a) {
  const std::size_t ia = a.index();
  const Matrix& x = nodes_[ia].value;
  Matrix y(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float mx = -1e30f;
    for (std::size_t c = 0; c < x.cols(); ++c) mx = std::max(mx, x(r, c));
    double denom = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) denom += std::exp(static_cast<double>(x(r, c) - mx));
    for (std::size_t c = 0; c < x.cols(); ++c)
      y(r, c) = static_cast<float>(std::exp(static_cast<double>(x(r, c) - mx)) / denom);
  }
  Var v = make(std::move(y), nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io] {
    if (!nodes_[ia].requires_grad) return;
    const Matrix& g = nodes_[io].grad;
    const Matrix& yv = nodes_[io].value;
    Matrix gx(yv.rows(), yv.cols());
    for (std::size_t r = 0; r < yv.rows(); ++r) {
      double s = 0.0;
      for (std::size_t c = 0; c < yv.cols(); ++c)
        s += static_cast<double>(g(r, c)) * yv(r, c);
      for (std::size_t c = 0; c < yv.cols(); ++c)
        gx(r, c) = yv(r, c) * (g(r, c) - static_cast<float>(s));
    }
    grad_ref(ia) += gx;
  };
  return v;
}

Var Tape::layernorm(Var a, Var gain, Var bias, float eps) {
  const std::size_t ia = a.index(), ig = gain.index(), ib = bias.index();
  const Matrix& x = nodes_[ia].value;
  const Matrix& gn = nodes_[ig].value;
  const Matrix& bs = nodes_[ib].value;
  NVCIM_CHECK(gn.rows() == 1 && gn.cols() == x.cols());
  NVCIM_CHECK(bs.rows() == 1 && bs.cols() == x.cols());
  const std::size_t R = x.rows(), C = x.cols();
  Matrix xhat(R, C), y(R, C);
  std::vector<float> inv_std(R);
  for (std::size_t r = 0; r < R; ++r) {
    double mu = 0.0;
    for (std::size_t c = 0; c < C; ++c) mu += x(r, c);
    mu /= static_cast<double>(C);
    double var = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      const double d = x(r, c) - mu;
      var += d * d;
    }
    var /= static_cast<double>(C);
    const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
    inv_std[r] = istd;
    for (std::size_t c = 0; c < C; ++c) {
      xhat(r, c) = (x(r, c) - static_cast<float>(mu)) * istd;
      y(r, c) = gn(0, c) * xhat(r, c) + bs(0, c);
    }
  }
  const bool rg =
      nodes_[ia].requires_grad || nodes_[ig].requires_grad || nodes_[ib].requires_grad;
  Var v = make(std::move(y), rg, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, ig, ib, io, xhat, inv_std] {
    const Matrix& g = nodes_[io].grad;
    const std::size_t R = g.rows(), C = g.cols();
    if (nodes_[ib].requires_grad) {
      Matrix& gb = grad_ref(ib);
      for (std::size_t r = 0; r < R; ++r)
        for (std::size_t c = 0; c < C; ++c) gb(0, c) += g(r, c);
    }
    if (nodes_[ig].requires_grad) {
      Matrix& gg = grad_ref(ig);
      for (std::size_t r = 0; r < R; ++r)
        for (std::size_t c = 0; c < C; ++c) gg(0, c) += g(r, c) * xhat(r, c);
    }
    if (nodes_[ia].requires_grad) {
      const Matrix& gn = nodes_[ig].value;
      Matrix gx(R, C);
      for (std::size_t r = 0; r < R; ++r) {
        double m1 = 0.0, m2 = 0.0;
        for (std::size_t c = 0; c < C; ++c) {
          const double gh = static_cast<double>(g(r, c)) * gn(0, c);
          m1 += gh;
          m2 += gh * xhat(r, c);
        }
        m1 /= static_cast<double>(C);
        m2 /= static_cast<double>(C);
        for (std::size_t c = 0; c < C; ++c) {
          const double gh = static_cast<double>(g(r, c)) * gn(0, c);
          gx(r, c) = static_cast<float>(inv_std[r] *
                                        (gh - m1 - static_cast<double>(xhat(r, c)) * m2));
        }
      }
      grad_ref(ia) += gx;
    }
  };
  return v;
}

Var Tape::embedding(Var table, const std::vector<int>& ids) {
  const std::size_t it = table.index();
  const Matrix& tb = nodes_[it].value;
  Matrix out(ids.size(), tb.cols());
  for (std::size_t r = 0; r < ids.size(); ++r) {
    NVCIM_CHECK_MSG(ids[r] >= 0 && static_cast<std::size_t>(ids[r]) < tb.rows(),
                    "token id " << ids[r] << " out of vocab " << tb.rows());
    for (std::size_t c = 0; c < tb.cols(); ++c)
      out(r, c) = tb(static_cast<std::size_t>(ids[r]), c);
  }
  Var v = make(std::move(out), nodes_[it].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, it, io, ids] {
    if (!nodes_[it].requires_grad) return;
    const Matrix& g = nodes_[io].grad;
    Matrix& gt = grad_ref(it);
    for (std::size_t r = 0; r < ids.size(); ++r)
      for (std::size_t c = 0; c < g.cols(); ++c)
        gt(static_cast<std::size_t>(ids[r]), c) += g(r, c);
  };
  return v;
}

Var Tape::mean_all(Var a) {
  const std::size_t ia = a.index();
  Matrix out(1, 1, nodes_[ia].value.mean());
  Var v = make(std::move(out), nodes_[ia].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ia, io] {
    if (!nodes_[ia].requires_grad) return;
    const float g = nodes_[io].grad(0, 0) / static_cast<float>(nodes_[ia].value.size());
    Matrix& ga = grad_ref(ia);
    for (std::size_t i = 0; i < ga.size(); ++i) ga.at_flat(i) += g;
  };
  return v;
}

Var Tape::cross_entropy(Var logits, const std::vector<int>& targets) {
  const std::size_t il = logits.index();
  const Matrix& z = nodes_[il].value;
  NVCIM_CHECK_MSG(targets.size() == z.rows(), "one target per logits row");
  const std::size_t R = z.rows(), C = z.cols();
  Matrix probs(R, C);
  double loss = 0.0;
  std::size_t valid = 0;
  for (std::size_t r = 0; r < R; ++r) {
    float mx = -1e30f;
    for (std::size_t c = 0; c < C; ++c) mx = std::max(mx, z(r, c));
    double denom = 0.0;
    for (std::size_t c = 0; c < C; ++c) denom += std::exp(static_cast<double>(z(r, c) - mx));
    for (std::size_t c = 0; c < C; ++c)
      probs(r, c) = static_cast<float>(std::exp(static_cast<double>(z(r, c) - mx)) / denom);
    if (targets[r] >= 0) {
      NVCIM_CHECK(static_cast<std::size_t>(targets[r]) < C);
      loss -= std::log(std::max(1e-12, static_cast<double>(
                                           probs(r, static_cast<std::size_t>(targets[r])))));
      ++valid;
    }
  }
  NVCIM_CHECK_MSG(valid > 0, "cross_entropy: no valid (non-negative) targets");
  Matrix out(1, 1, static_cast<float>(loss / static_cast<double>(valid)));
  Var v = make(std::move(out), nodes_[il].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, il, io, probs, targets, valid] {
    if (!nodes_[il].requires_grad) return;
    const float g = nodes_[io].grad(0, 0) / static_cast<float>(valid);
    Matrix& gl = grad_ref(il);
    for (std::size_t r = 0; r < probs.rows(); ++r) {
      if (targets[r] < 0) continue;
      for (std::size_t c = 0; c < probs.cols(); ++c) gl(r, c) += g * probs(r, c);
      gl(r, static_cast<std::size_t>(targets[r])) -= g;
    }
  };
  return v;
}

Var Tape::mse(Var pred, Matrix target) {
  const std::size_t ip = pred.index();
  const Matrix& p = nodes_[ip].value;
  NVCIM_CHECK_MSG(p.same_shape(target), "mse shape mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = static_cast<double>(p.at_flat(i)) - target.at_flat(i);
    s += d * d;
  }
  Matrix out(1, 1, static_cast<float>(s / static_cast<double>(p.size())));
  Var v = make(std::move(out), nodes_[ip].requires_grad, {});
  const std::size_t io = v.index();
  nodes_[io].backward_fn = [this, ip, io, target] {
    if (!nodes_[ip].requires_grad) return;
    const Matrix& p = nodes_[ip].value;
    const float g = 2.0f * nodes_[io].grad(0, 0) / static_cast<float>(p.size());
    Matrix& gp = grad_ref(ip);
    for (std::size_t i = 0; i < p.size(); ++i)
      gp.at_flat(i) += g * (p.at_flat(i) - target.at_flat(i));
  };
  return v;
}

}  // namespace nvcim::autograd
