#include "nvcim/obs/httpd.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

namespace nvcim::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_response(int fd, const HttpResponse& resp) {
  std::ostringstream head;
  head << "HTTP/1.1 " << resp.status << ' ' << status_text(resp.status) << "\r\n"
       << "Content-Type: " << resp.content_type << "\r\n"
       << "Content-Length: " << resp.body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
  const std::string h = head.str();
  return send_all(fd, h.data(), h.size()) &&
         send_all(fd, resp.body.data(), resp.body.size());
}

}  // namespace

HttpServer::HttpServer(HttpServerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.handler_threads == 0) cfg_.handler_threads = 1;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, HttpHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

bool HttpServer::start() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (started_) return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return false;
  }
  bound_port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;

  {
    std::lock_guard<std::mutex> lk(mu_);
    started_ = true;
    stopping_ = false;
  }
  acceptor_ = std::thread(&HttpServer::accept_loop, this);
  handlers_.reserve(cfg_.handler_threads);
  for (std::size_t i = 0; i < cfg_.handler_threads; ++i) {
    handlers_.emplace_back(&HttpServer::handler_loop, this);
  }
  return true;
}

void HttpServer::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Only the first caller proceeds to the joins; a concurrent or repeat
    // stop() (including the destructor after an explicit stop) returns.
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  // Unblock the accept thread: shutdown() makes a blocked accept() return,
  // close() releases the fd.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  // Connections accepted but never served get dropped on shutdown.
  std::deque<int> orphans;
  {
    std::lock_guard<std::mutex> lk(mu_);
    orphans.swap(pending_);
    started_ = false;
  }
  for (int fd : orphans) ::close(fd);
}

bool HttpServer::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return started_ && !stopping_;
}

void HttpServer::accept_loop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) {
        if (conn >= 0) ::close(conn);
        return;
      }
      if (conn >= 0) {
        if (pending_.size() >= cfg_.max_pending) {
          ::close(conn);  // overloaded: shed instead of queueing unboundedly
          continue;
        }
        pending_.push_back(conn);
      }
    }
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket closed or unrecoverable
    }
    cv_.notify_one();
  }
}

void HttpServer::handler_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  set_io_timeout(fd, cfg_.recv_timeout_ms);
  std::string req;
  char buf[2048];
  // Read until the end of the header block; bodies are ignored (GET only)
  // and oversized requests are rejected rather than buffered.
  while (req.find("\r\n\r\n") == std::string::npos) {
    if (req.size() > 16 * 1024) {
      write_response(fd, HttpResponse{400, "text/plain; charset=utf-8", "request too large\n"});
      ::close(fd);
      return;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      ::close(fd);  // timeout or peer went away mid-request
      return;
    }
    req.append(buf, static_cast<std::size_t>(n));
  }

  std::istringstream line(req.substr(0, req.find("\r\n")));
  std::string method, target, version;
  line >> method >> target >> version;
  HttpResponse resp;
  if (method.empty() || target.empty()) {
    resp = HttpResponse{400, "text/plain; charset=utf-8", "malformed request\n"};
  } else if (method != "GET" && method != "HEAD") {
    resp = HttpResponse{405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else {
    const std::string path = target.substr(0, target.find('?'));
    const auto it = routes_.find(path);
    if (it == routes_.end()) {
      resp = HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      try {
        resp = it->second(target);
      } catch (const std::exception& e) {
        resp = HttpResponse{500, "text/plain; charset=utf-8",
                            std::string("handler error: ") + e.what() + "\n"};
      } catch (...) {
        resp = HttpResponse{500, "text/plain; charset=utf-8", "handler error\n"};
      }
    }
  }
  if (method == "HEAD") resp.body.clear();
  write_response(fd, resp);
  ::close(fd);
}

int http_get(const std::string& host, std::uint16_t port,
             const std::string& target, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  set_io_timeout(fd, 5000);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const std::string req = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, req.data(), req.size())) {
    ::close(fd);
    return -1;
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (resp.compare(0, 9, "HTTP/1.1 ") != 0 && resp.compare(0, 9, "HTTP/1.0 ") != 0)
    return -1;
  const int status = std::atoi(resp.c_str() + 9);
  if (status <= 0) return -1;
  if (body != nullptr) {
    const std::size_t sep = resp.find("\r\n\r\n");
    *body = sep == std::string::npos ? std::string() : resp.substr(sep + 4);
  }
  return status;
}

}  // namespace nvcim::obs
