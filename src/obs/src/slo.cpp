#include "nvcim/obs/slo.hpp"

#include <limits>

namespace nvcim::obs {

namespace {

double burn_of(const SloSample& s, double objective) {
  if (s.total == 0 || s.bad == 0) return 0.0;
  const double budget = 1.0 - objective;
  if (budget <= 0.0) return std::numeric_limits<double>::infinity();
  return s.bad_fraction() / budget;
}

}  // namespace

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::Ok:
      return "ok";
    case HealthState::Warning:
      return "warning";
    case HealthState::Critical:
      return "critical";
  }
  return "unknown";
}

BurnRate evaluate_burn_rate(const SloSample& fast, const SloSample& slow,
                            double objective, const BurnRateConfig& cfg) {
  BurnRate r;
  r.fast = burn_of(fast, objective);
  r.slow = burn_of(slow, objective);
  if (r.fast >= cfg.critical_burn && r.slow >= cfg.critical_burn) {
    r.state = HealthState::Critical;
  } else if (r.fast >= cfg.warning_burn && r.slow >= cfg.warning_burn) {
    r.state = HealthState::Warning;
  }
  return r;
}

}  // namespace nvcim::obs
