#include "nvcim/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "nvcim/common/check.hpp"

namespace nvcim::obs {

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Escape a label value for both Prometheus and JSON string literals
/// (backslash, quote, newline — the shared subset).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

Labels normalized(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string series_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) key.push_back(',');
    key += k;
    key.push_back('=');
    key.push_back('"');
    key += escape(v);
    key.push_back('"');
  }
  return key;
}

/// `name{labels}` with an optional extra label (the histogram ``le``).
std::string series_name(const std::string& name, const std::string& key,
                        const std::string& extra = "") {
  if (key.empty() && extra.empty()) return name;
  std::string out = name;
  out.push_back('{');
  out += key;
  if (!extra.empty()) {
    if (!key.empty()) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

}  // namespace

Registry::Series& Registry::find_or_create(const std::string& name, const Labels& labels,
                                           const std::string& help, Kind kind) {
  NVCIM_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = families_[name];
  if (family.series.empty()) {
    family.kind = kind;
    family.help = help;
  } else {
    NVCIM_CHECK_MSG(family.kind == kind, "metric " << name << " registered with two kinds");
  }
  if (family.help.empty() && !help.empty()) family.help = help;
  const Labels norm = normalized(labels);
  Series& s = family.series[series_key(norm)];
  if (s.labels.empty() && !norm.empty()) s.labels = norm;
  return s;
}

Counter& Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  Series& s = find_or_create(name, labels, help, Kind::kCounter);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help) {
  Series& s = find_or_create(name, labels, help, Kind::kGauge);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels,
                               const std::string& help, const HistogramConfig& cfg) {
  Series& s = find_or_create(name, labels, help, Kind::kHistogram);
  if (!s.histogram) s.histogram = std::make_unique<Histogram>(cfg);
  return *s.histogram;
}

bool Registry::remove_series(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto fam = families_.find(name);
  if (fam == families_.end()) return false;
  return fam->second.series.erase(series_key(normalized(labels))) > 0;
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) out << "# HELP " << name << ' ' << family.help << '\n';
    const char* type = family.kind == Kind::kCounter
                           ? "counter"
                           : family.kind == Kind::kGauge ? "gauge" : "histogram";
    out << "# TYPE " << name << ' ' << type << '\n';
    for (const auto& [key, series] : family.series) {
      if (series.counter) {
        out << series_name(name, key) << ' ' << fmt(series.counter->value()) << '\n';
      } else if (series.gauge) {
        out << series_name(name, key) << ' ' << fmt(series.gauge->value()) << '\n';
      } else if (series.histogram) {
        const Histogram& h = *series.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.n_buckets(); ++b) {
          const std::uint64_t n = h.bucket_count(b);
          if (n == 0) continue;  // sparse exposition: only occupied buckets
          cumulative += n;
          out << series_name(name + "_bucket", key,
                             "le=\"" + fmt(h.bucket_upper(b)) + "\"")
              << ' ' << cumulative << '\n';
        }
        out << series_name(name + "_bucket", key, "le=\"+Inf\"") << ' ' << h.count()
            << '\n';
        out << series_name(name + "_sum", key) << ' ' << fmt(h.sum()) << '\n';
        out << series_name(name + "_count", key) << ' ' << h.count() << '\n';
      }
    }
  }
  return out.str();
}

std::string Registry::json_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out << ",\n";
    first_family = false;
    const char* type = family.kind == Kind::kCounter
                           ? "counter"
                           : family.kind == Kind::kGauge ? "gauge" : "histogram";
    out << "  \"" << name << "\": {\"type\": \"" << type << "\", \"help\": \""
        << escape(family.help) << "\", \"series\": [";
    bool first_series = true;
    for (const auto& [key, series] : family.series) {
      (void)key;
      if (!first_series) out << ", ";
      first_series = false;
      out << "{\"labels\": {";
      bool first_label = true;
      for (const auto& [k, v] : series.labels) {
        if (!first_label) out << ", ";
        first_label = false;
        out << '"' << escape(k) << "\": \"" << escape(v) << '"';
      }
      out << "}";
      if (series.counter) {
        out << ", \"value\": " << fmt(series.counter->value());
      } else if (series.gauge) {
        out << ", \"value\": " << fmt(series.gauge->value());
      } else if (series.histogram) {
        const Histogram& h = *series.histogram;
        out << ", \"count\": " << h.count() << ", \"sum\": " << fmt(h.sum())
            << ", \"min\": " << fmt(h.min()) << ", \"max\": " << fmt(h.max())
            << ", \"p50\": " << fmt(h.value_at_quantile(0.50))
            << ", \"p95\": " << fmt(h.value_at_quantile(0.95))
            << ", \"p99\": " << fmt(h.value_at_quantile(0.99));
      }
      out << "}";
    }
    out << "]}";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace nvcim::obs
