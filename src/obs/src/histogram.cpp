#include "nvcim/obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nvcim/common/check.hpp"

namespace nvcim::obs {

namespace {

void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(HistogramConfig cfg)
    : cfg_(cfg),
      buckets_(1 + cfg.octaves * cfg.sub_buckets),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  NVCIM_CHECK_MSG(cfg_.min_value > 0.0, "histogram min_value must be positive");
  NVCIM_CHECK_MSG(cfg_.sub_buckets > 0 && cfg_.octaves > 0, "histogram needs buckets");
}

std::size_t Histogram::bucket_index(double value) const {
  if (!(value > cfg_.min_value)) return 0;  // underflow; also catches NaN
  int exp = 0;
  // scaled = frac * 2^exp with frac in [0.5, 1); scaled > 1 ⇒ octave = exp - 1.
  const double frac = std::frexp(value / cfg_.min_value, &exp);
  const std::size_t octave = static_cast<std::size_t>(exp - 1);
  if (octave >= cfg_.octaves) return buckets_.size() - 1;  // overflow clamp
  const double within = frac * 2.0 - 1.0;  // position in [0, 1) across the octave
  std::size_t sub = static_cast<std::size_t>(within * static_cast<double>(cfg_.sub_buckets));
  sub = std::min(sub, cfg_.sub_buckets - 1);
  return 1 + octave * cfg_.sub_buckets + sub;
}

double Histogram::bucket_lower(std::size_t i) const {
  if (i == 0) return 0.0;
  const std::size_t octave = (i - 1) / cfg_.sub_buckets;
  const std::size_t sub = (i - 1) % cfg_.sub_buckets;
  return cfg_.min_value * std::ldexp(1.0, static_cast<int>(octave)) *
         (1.0 + static_cast<double>(sub) / static_cast<double>(cfg_.sub_buckets));
}

double Histogram::bucket_upper(std::size_t i) const {
  if (i == 0) return cfg_.min_value;
  const std::size_t octave = (i - 1) / cfg_.sub_buckets;
  const std::size_t sub = (i - 1) % cfg_.sub_buckets;
  return cfg_.min_value * std::ldexp(1.0, static_cast<int>(octave)) *
         (1.0 + static_cast<double>(sub + 1) / static_cast<double>(cfg_.sub_buckets));
}

void Histogram::record(double value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

void Histogram::merge_from(const Histogram& other) {
  NVCIM_CHECK_MSG(cfg_.min_value == other.cfg_.min_value &&
                      cfg_.sub_buckets == other.cfg_.sub_buckets &&
                      cfg_.octaves == other.cfg_.octaves,
                  "histogram merge requires identical bucket layouts");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
  if (other.count() > 0) {
    atomic_min(min_, other.min());
    atomic_max(max_, other.max());
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::value_at_quantile(double q) const {
  // Snapshot the buckets once so the walk is self-consistent even with
  // concurrent writers.
  std::vector<std::uint64_t> counts(buckets_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  if (q <= 0.0) return lo;
  if (q >= 1.0) return hi;
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  target = std::max<std::uint64_t>(1, std::min(target, total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target) {
      // Rank-interpolate within the bucket rather than returning its
      // midpoint: when a tail's samples all land in one bucket, a midpoint
      // (clamped to [lo, hi]) collapses every tail quantile to the same
      // value — p95 == p99 even though the ranks differ. Interpolating by
      // rank keeps distinct quantiles distinct (monotone in q) while
      // staying inside both the bucket and the recorded [lo, hi] support,
      // so single-value distributions still come back exact.
      const std::uint64_t before = seen - counts[i];
      const double frac = static_cast<double>(target - before) /
                          static_cast<double>(counts[i]);
      const double blo = std::max(bucket_lower(i), lo);
      const double bhi = std::min(bucket_upper(i), hi);
      return blo + frac * std::max(0.0, bhi - blo);
    }
  }
  return hi;  // unreachable (target <= total)
}

}  // namespace nvcim::obs
