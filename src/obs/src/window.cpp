#include "nvcim/obs/window.hpp"

#include <algorithm>
#include <cmath>

#include "nvcim/obs/metrics.hpp"

namespace nvcim::obs {

namespace {

// Counters are monotone, but the snapshots are built from relaxed atomic
// reads taken at different instants — saturate instead of wrapping.
std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : 0;
}

}  // namespace

HistogramSnapshot HistogramSnapshot::of(const Histogram& h) {
  HistogramSnapshot s;
  s.counts.resize(h.n_buckets());
  for (std::size_t i = 0; i < s.counts.size(); ++i) s.counts[i] = h.bucket_count(i);
  s.count = h.count();
  s.sum = h.sum();
  return s;
}

WindowDelta::WindowDelta(const Histogram* geometry, std::vector<std::uint64_t> counts,
                         std::uint64_t count, double sum, double span_ms)
    : geom_(geometry),
      counts_(std::move(counts)),
      count_(count),
      sum_(sum),
      span_ms_(span_ms) {}

double WindowDelta::value_at_quantile(double q) const {
  if (geom_ == nullptr || counts_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (std::uint64_t c : counts_) total += c;
  if (total == 0) return 0.0;
  // No exact min/max exists for a window, so q = 0 / 1 return the bounds of
  // the first / last occupied bucket instead.
  if (q <= 0.0) {
    for (std::size_t i = 0; i < counts_.size(); ++i)
      if (counts_[i] > 0) return geom_->bucket_lower(i);
  }
  if (q >= 1.0) {
    for (std::size_t i = counts_.size(); i-- > 0;)
      if (counts_[i] > 0) return geom_->bucket_upper(i);
  }
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  target = std::max<std::uint64_t>(1, std::min(target, total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      const std::uint64_t before = seen - counts_[i];
      const double frac = static_cast<double>(target - before) /
                          static_cast<double>(counts_[i]);
      const double blo = geom_->bucket_lower(i);
      const double bhi = geom_->bucket_upper(i);
      return blo + frac * std::max(0.0, bhi - blo);
    }
  }
  return 0.0;  // unreachable (target <= total)
}

std::uint64_t WindowDelta::count_le(double v) const {
  if (geom_ == nullptr || counts_.empty()) return 0;
  const std::size_t idx = std::min(geom_->bucket_index(v), counts_.size() - 1);
  std::uint64_t n = 0;
  for (std::size_t i = 0; i <= idx; ++i) n += counts_[i];
  return n;
}

HistogramWindow::HistogramWindow(const Histogram* source, WindowConfig cfg)
    : src_(source), cfg_(cfg) {}

bool HistogramWindow::advance(double now_ms) {
  bool pushed = false;
  if (!started_) {
    started_ = true;
    start_ms_ = now_ms;
    ring_.push_back(Entry{now_ms, HistogramSnapshot::of(*src_)});
    pushed = true;
  } else if (now_ms >= ring_.back().ts_ms + cfg_.bucket_ms) {
    ring_.push_back(Entry{now_ms, HistogramSnapshot::of(*src_)});
    pushed = true;
  }
  // Keep the newest entry that is already older than retention — it is the
  // baseline for the widest window; everything before it is dead history.
  while (ring_.size() >= 2 && ring_[1].ts_ms <= now_ms - cfg_.retention_ms) {
    ring_.pop_front();
  }
  return pushed;
}

WindowDelta HistogramWindow::delta(double now_ms, double window_ms) const {
  const HistogramSnapshot live = HistogramSnapshot::of(*src_);
  const HistogramSnapshot* base = nullptr;
  double base_ts = started_ ? start_ms_ : now_ms;
  const double cutoff = now_ms - window_ms;
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->ts_ms <= cutoff) {
      base = &it->snap;
      base_ts = it->ts_ms;
      break;
    }
  }
  if (base == nullptr && !ring_.empty()) {
    base = &ring_.front().snap;  // warm-up: delta since the oldest snapshot
    base_ts = ring_.front().ts_ms;
  }
  std::vector<std::uint64_t> counts(live.counts.size());
  std::uint64_t count = live.count;
  double sum = live.sum;
  if (base != nullptr) {
    for (std::size_t i = 0; i < counts.size(); ++i)
      counts[i] = sat_sub(live.counts[i], base->counts[i]);
    count = sat_sub(live.count, base->count);
    sum = std::max(0.0, live.sum - base->sum);
  } else {
    counts = live.counts;
  }
  return WindowDelta(src_, std::move(counts), count, sum,
                     std::max(0.0, now_ms - base_ts));
}

CounterWindow::CounterWindow(const Counter* source, WindowConfig cfg)
    : src_(source), cfg_(cfg) {}

bool CounterWindow::advance(double now_ms) {
  bool pushed = false;
  if (!started_) {
    started_ = true;
    start_ms_ = now_ms;
    ring_.push_back(Entry{now_ms, src_->value()});
    pushed = true;
  } else if (now_ms >= ring_.back().ts_ms + cfg_.bucket_ms) {
    ring_.push_back(Entry{now_ms, src_->value()});
    pushed = true;
  }
  while (ring_.size() >= 2 && ring_[1].ts_ms <= now_ms - cfg_.retention_ms) {
    ring_.pop_front();
  }
  return pushed;
}

CounterWindow::Delta CounterWindow::delta(double now_ms, double window_ms) const {
  const double live = src_->value();
  const Entry* base = nullptr;
  double base_ts = started_ ? start_ms_ : now_ms;
  const double cutoff = now_ms - window_ms;
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->ts_ms <= cutoff) {
      base = &*it;
      break;
    }
  }
  if (base == nullptr && !ring_.empty()) base = &ring_.front();
  Delta d;
  if (base != nullptr) {
    d.value = std::max(0.0, live - base->value);
    base_ts = base->ts_ms;
  } else {
    d.value = live;
  }
  d.span_ms = std::max(0.0, now_ms - base_ts);
  return d;
}

}  // namespace nvcim::obs
