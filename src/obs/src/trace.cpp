#include "nvcim/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "nvcim/common/check.hpp"

namespace nvcim::obs {

namespace {
std::atomic<std::uint64_t> g_next_tracer_id{1};
}  // namespace

Tracer::Tracer(TracerConfig cfg)
    : cfg_(cfg),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {
  NVCIM_CHECK_MSG(cfg_.ring_capacity > 0, "tracer ring capacity must be positive");
}

Tracer::Ring& Tracer::local_ring() {
  // Per-thread cache keyed by tracer id: ids are never reused, so a stale
  // entry from a destroyed tracer can never alias a new one. The cache
  // grows by one entry per (thread, tracer) pair — bounded by the number of
  // engines a thread ever records into.
  thread_local std::vector<std::pair<std::uint64_t, Ring*>> cache;
  for (const auto& [id, ring] : cache)
    if (id == id_) return *ring;
  auto owned = std::make_unique<Ring>(cfg_.ring_capacity);
  Ring* ring = owned.get();
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    ring->tid = static_cast<std::uint32_t>(rings_.size());
    rings_.push_back(std::move(owned));
  }
  cache.emplace_back(id_, ring);
  return *ring;
}

void Tracer::complete(const char* name, const char* cat, double ts_us, double end_us,
                      const char* k1, std::int64_t v1, const char* k2, std::int64_t v2) {
  if (!cfg_.enabled) return;
  Ring& ring = local_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  TraceEvent& slot = ring.slots[head % ring.slots.size()];
  slot.name = name;
  slot.cat = cat;
  slot.ts_us = ts_us;
  slot.dur_us = end_us - ts_us;
  slot.tid = ring.tid;
  slot.k1 = k1;
  slot.v1 = v1;
  slot.k2 = k2;
  slot.v2 = v2;
  // Publish after the slot is fully written: a reader that acquires `head`
  // sees every slot below it.
  ring.head.store(head + 1, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    const std::uint64_t n = std::min(head, cap);
    for (std::uint64_t i = head - n; i < head; ++i)
      out.push_back(ring->slots[i % cap]);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > ring->slots.size()) dropped += head - ring->slots.size();
  }
  return dropped;
}

std::size_t Tracer::n_threads() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  return rings_.size();
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> evs = events();
  std::size_t n_tids = 0;
  for (const TraceEvent& e : evs) n_tids = std::max<std::size_t>(n_tids, e.tid + 1);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (std::size_t t = 0; t < n_tids; ++t) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << t
       << ", \"args\": {\"name\": \"worker-" << t << "\"}}";
  }
  char buf[256];
  for (const TraceEvent& e : evs) {
    if (!first) os << ',';
    first = false;
    // name/cat/arg keys are caller-provided string literals (no escaping).
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
                  "\"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                  e.name, e.cat, e.ts_us, e.dur_us, e.tid);
    os << buf;
    if (e.k1 != nullptr || e.k2 != nullptr) {
      os << ", \"args\": {";
      if (e.k1 != nullptr) os << '"' << e.k1 << "\": " << e.v1;
      if (e.k2 != nullptr) {
        if (e.k1 != nullptr) os << ", ";
        os << '"' << e.k2 << "\": " << e.v2;
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f);
  return static_cast<bool>(f);
}

}  // namespace nvcim::obs
