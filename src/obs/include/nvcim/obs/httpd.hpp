#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace nvcim::obs {

/// What a handler returns; the server adds the status line, Content-Type,
/// Content-Length and Connection: close framing.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

/// Exact-path handler. `target` is the full request target (path plus any
/// query string) so handlers can inspect parameters if they care.
using HttpHandler = std::function<HttpResponse(const std::string& target)>;

struct HttpServerConfig {
  std::string bind = "127.0.0.1";  ///< IPv4 literal to bind
  std::uint16_t port = 0;          ///< 0 = kernel-assigned ephemeral port
  std::size_t handler_threads = 2;
  std::size_t max_pending = 64;    ///< accepted fds queued for handlers
  int recv_timeout_ms = 2000;      ///< per-connection read/write timeout
};

/// Small, dependency-free blocking HTTP/1.1 server for introspection
/// endpoints: one accept thread feeding a bounded queue of connections
/// drained by a fixed handler pool. GET-only (anything else is 405),
/// one request per connection (Connection: close), exact-path routing.
/// Not a general web server — it exists so `curl :port/metrics` works
/// against a serving engine with zero third-party dependencies.
class HttpServer {
 public:
  explicit HttpServer(HttpServerConfig cfg = HttpServerConfig{});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register an exact-path handler. Must be called before start().
  void handle(std::string path, HttpHandler handler);

  /// Bind + listen + launch threads. Returns false (with no threads
  /// running) if the socket cannot be bound. Safe to call once.
  bool start();

  /// Idempotent, safe from any thread: closes the listen socket, drains the
  /// pending-connection queue and joins all threads. Also run by ~HttpServer.
  void stop();

  bool running() const;
  /// Port actually bound (resolves port 0 after start()).
  std::uint16_t port() const { return bound_port_; }
  const HttpServerConfig& config() const { return cfg_; }

 private:
  void accept_loop();
  void handler_loop();
  void serve_connection(int fd);

  HttpServerConfig cfg_;
  std::map<std::string, HttpHandler> routes_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;
  bool stopping_ = false;
  bool started_ = false;

  std::thread acceptor_;
  std::vector<std::thread> handlers_;
};

/// Minimal blocking HTTP/1.1 GET client (tests + tooling): connects to
/// host:port, requests `target`, returns the response status code and
/// fills `*body` when given. Returns -1 on connect/protocol failure.
int http_get(const std::string& host, std::uint16_t port,
             const std::string& target, std::string* body = nullptr);

}  // namespace nvcim::obs
