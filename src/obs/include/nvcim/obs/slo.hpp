#pragma once

#include <cstdint>

namespace nvcim::obs {

/// Three-state health verdict used by burn-rate evaluation and rolled up
/// into the engine-level HealthReport. Ordered by severity so worst() is
/// just a max.
enum class HealthState { Ok = 0, Warning = 1, Critical = 2 };

const char* to_string(HealthState s);

inline HealthState worst(HealthState a, HealthState b) { return a > b ? a : b; }

/// Dual-window burn-rate alerting (the SRE-workbook shape): an SLO burns at
/// rate `bad_fraction / error_budget` where error_budget = 1 - objective.
/// Burn 1.0 = exactly spending the budget; burn 10 over a 5-minute window
/// means the monthly budget would be gone in ~3 days. A state only fires
/// when BOTH the fast and the slow window exceed the threshold: the slow
/// window de-flaps (a 2-second blip cannot trip it), the fast window makes
/// recovery prompt (once the last minute is clean the alert clears even
/// though the 5-minute window still remembers the incident).
struct BurnRateConfig {
  double fast_window_ms = 60.0 * 1000.0;    ///< prompt signal + fast recovery
  double slow_window_ms = 300.0 * 1000.0;   ///< de-flapping confirmation
  double warning_burn = 2.0;                ///< both windows >= this => Warning
  double critical_burn = 10.0;              ///< both windows >= this => Critical
};

/// One window's worth of SLI observations: `total` events of which `bad`
/// violated the objective (latency over threshold, degraded response,
/// missed deadline, ...).
struct SloSample {
  std::uint64_t total = 0;
  std::uint64_t bad = 0;

  double bad_fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(bad) / static_cast<double>(total);
  }
};

/// Evaluated burn for one SLO: per-window burn rates plus the combined
/// dual-window state.
struct BurnRate {
  double fast = 0.0;
  double slow = 0.0;
  HealthState state = HealthState::Ok;
};

/// Pure function of its inputs (no clocks, no globals) so the health state
/// machine is unit-testable with synthetic windows. An objective of 1.0
/// (zero error budget) burns infinitely fast on any bad event; an empty
/// window burns at 0 (no traffic is not an outage).
BurnRate evaluate_burn_rate(const SloSample& fast, const SloSample& slow,
                            double objective, const BurnRateConfig& cfg);

}  // namespace nvcim::obs
