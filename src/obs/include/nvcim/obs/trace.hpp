#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace nvcim::obs {

struct TracerConfig {
  /// Off by default: a disabled tracer records nothing and costs one branch
  /// per span, so production paths can keep spans compiled in.
  bool enabled = false;
  /// Events kept per recording thread; older events are overwritten (the
  /// ring wraps) and counted as dropped.
  std::size_t ring_capacity = 1 << 14;
};

/// One completed span. `name`/`cat` and the arg keys must be string
/// literals (static storage): events are POD so ring writes never allocate.
/// Up to two integer args carry the ids that link spans together
/// (request → batch → stage → shard → lifecycle op).
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  double ts_us = 0.0;   ///< span start, microseconds since tracer epoch
  double dur_us = 0.0;  ///< span duration
  std::uint32_t tid = 0;
  const char* k1 = nullptr;
  std::int64_t v1 = 0;
  const char* k2 = nullptr;
  std::int64_t v2 = 0;
};

/// Lightweight scoped-span tracer: each recording thread owns a lock-free
/// ring buffer (registered once under a mutex, written with plain stores +
/// a release head bump — single writer per ring), timestamps come from one
/// monotonic clock, and the whole buffer set exports as Chrome
/// `trace_event` JSON loadable in Perfetto / chrome://tracing.
///
/// Reading (events(), write_chrome_trace()) takes a consistent snapshot of
/// fully-published events; call it after recording threads have quiesced
/// (e.g. post ServingEngine::stop()) for a complete picture.
class Tracer {
 public:
  explicit Tracer(TracerConfig cfg = TracerConfig{});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return cfg_.enabled; }

  /// Microseconds since tracer construction (monotonic).
  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  /// A steady_clock timestamp (e.g. a request's enqueue time captured
  /// before the tracer was consulted) on the tracer's time axis.
  double to_us(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
  }

  /// Record one completed span [ts_us, end_us) into this thread's ring.
  /// No-op when disabled.
  void complete(const char* name, const char* cat, double ts_us, double end_us,
                const char* k1 = nullptr, std::int64_t v1 = 0,
                const char* k2 = nullptr, std::int64_t v2 = 0);

  /// All published events across every thread's ring, sorted by start time.
  std::vector<TraceEvent> events() const;
  /// Events overwritten by ring wraparound, across all threads.
  std::uint64_t dropped() const;
  std::size_t n_threads() const;

  /// Chrome trace_event JSON ("X" complete events + thread-name metadata).
  void write_chrome_trace(std::ostream& os) const;
  /// Convenience: write_chrome_trace to `path`. Returns false on I/O error.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<TraceEvent> slots;
    std::atomic<std::uint64_t> head{0};  ///< monotonic; slot = head % capacity
    std::uint32_t tid = 0;
  };

  Ring& local_ring();

  TracerConfig cfg_;
  std::uint64_t id_;  ///< globally unique, keys the thread-local ring cache
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII scoped span: stamps start at construction, records into the tracer
/// at destruction. Near-zero cost when the tracer is null or disabled.
class Span {
 public:
  Span(Tracer* tracer, const char* name, const char* cat,
       const char* k1 = nullptr, std::int64_t v1 = 0,
       const char* k2 = nullptr, std::int64_t v2 = 0)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        cat_(cat),
        k1_(k1),
        v1_(v1),
        k2_(k2),
        v2_(v2) {
    if (tracer_ != nullptr) ts_us_ = tracer_->now_us();
  }
  ~Span() {
    if (tracer_ != nullptr)
      tracer_->complete(name_, cat_, ts_us_, tracer_->now_us(), k1_, v1_, k2_, v2_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  const char* cat_;
  double ts_us_ = 0.0;
  const char* k1_;
  std::int64_t v1_;
  const char* k2_;
  std::int64_t v2_;
};

}  // namespace nvcim::obs
