#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "nvcim/obs/histogram.hpp"

namespace nvcim::obs {

namespace detail {
inline void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing metric (double-valued so millisecond totals fit
/// the same primitive as request counts). Lock-free.
class Counter {
 public:
  void inc(double d = 1.0) { detail::atomic_add(v_, d); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Last-value (set), high-water (update_max) or up-down (add) metric.
/// Lock-free.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) { detail::atomic_add(v_, d); }
  void update_max(double v) { detail::atomic_max(v_, v); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Metric labels, e.g. {{"tenant", "3"}}. Order is normalized (sorted by
/// key) when the series key is built, so label order never forks a series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Named metric registry: counters, gauges and histograms, each optionally
/// labelled (per-tenant, per-stage, per-shard). Lookup is mutex-guarded and
/// returns a stable reference — callers cache the pointer and record
/// lock-free ever after. Exposition: Prometheus text format and a JSON dump
/// (both deterministic: families and series are emitted in sorted order).
class Registry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       const std::string& help = "",
                       const HistogramConfig& cfg = HistogramConfig{});

  /// Drop one labelled series from a family (cardinality control, e.g.
  /// retiring an evicted tenant's ``nvcim_tenant_*`` series). Returns true
  /// if a series was removed. The family itself stays registered — its
  /// ``# TYPE`` line keeps appearing — and the removed metric objects are
  /// destroyed, so callers must not hold cached pointers to them.
  bool remove_series(const std::string& name, const Labels& labels);

  /// Prometheus text exposition format (histograms: cumulative non-empty
  /// ``_bucket`` series plus ``le="+Inf"``, ``_sum`` and ``_count``).
  std::string prometheus_text() const;
  /// The same registry as a JSON object; histograms dump count/sum/min/max
  /// and p50/p95/p99.
  std::string json_text() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    Labels labels;  ///< normalized (sorted by key)
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::map<std::string, Series> series;  ///< keyed by serialized labels
  };

  Series& find_or_create(const std::string& name, const Labels& labels,
                         const std::string& help, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace nvcim::obs
