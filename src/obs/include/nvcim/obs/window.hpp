#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "nvcim/obs/histogram.hpp"

namespace nvcim::obs {

class Counter;

/// Geometry of a rolling delta-ring: cumulative snapshots of a source
/// Histogram / Counter are captured at most once per `bucket_ms`, and a
/// windowed view is the difference between the live value and the snapshot
/// taken just before the window opened. `buckets * bucket_ms` is the primary
/// (fast) window; the ring retains `retention_ms` of history so wider
/// (slow) windows — e.g. the SLO burn-rate 5-minute window — can be read
/// from the same ring.
struct WindowConfig {
  double bucket_ms = 5000.0;     ///< snapshot cadence
  std::size_t buckets = 12;      ///< fast window = buckets * bucket_ms (60 s)
  double retention_ms = 300000;  ///< history kept for slow/burn-rate windows
  double window_ms() const { return bucket_ms * static_cast<double>(buckets); }
};

/// Cumulative point-in-time copy of a Histogram's bucket counts. Cheap to
/// subtract bucket-wise; carries no geometry (that stays with the source).
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  static HistogramSnapshot of(const Histogram& h);
};

/// The difference between two cumulative snapshots of one histogram: the
/// distribution of values recorded inside a time window. Quantiles are
/// rank-interpolated over the delta bucket counts using the source
/// histogram's bucket geometry (no exact min/max is available for a
/// window, so estimates clamp to bucket bounds only).
class WindowDelta {
 public:
  WindowDelta() = default;
  WindowDelta(const Histogram* geometry, std::vector<std::uint64_t> counts,
              std::uint64_t count, double sum, double span_ms);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Wall-clock span the delta covers; >= the requested window when the
  /// ring has enough history, shorter during warm-up (delta since start).
  double span_ms() const { return span_ms_; }
  double rate_per_sec() const {
    return span_ms_ > 0.0 ? static_cast<double>(count_) / (span_ms_ / 1000.0) : 0.0;
  }
  double value_at_quantile(double q) const;
  /// Number of recorded values <= v (bucket-resolution: counts every bucket
  /// whose upper bound is <= v, plus the bucket containing v in full when v
  /// reaches past its lower bound — conservative for SLO "good" counts).
  std::uint64_t count_le(double v) const;

 private:
  const Histogram* geom_ = nullptr;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double span_ms_ = 0.0;
};

/// Rolling window over one Histogram. Not internally locked: callers
/// serialise advance()/delta() externally (EngineStats does so under its
/// stats mutex). The source histogram itself may be concurrently written —
/// snapshots use its relaxed-atomic reads.
///
/// advance() is lazy-clock: it takes `now_ms` explicitly so tests can drive
/// a deterministic clock and the serving engine can advance on its read
/// path only (no ticker thread, zero record-path overhead).
class HistogramWindow {
 public:
  HistogramWindow(const Histogram* source, WindowConfig cfg);

  /// Capture a cumulative snapshot if the current bucket has elapsed, and
  /// drop history older than retention. Idempotent within a bucket: returns
  /// true only when a snapshot was captured (a bucket boundary crossed), so
  /// callers can recompute derived gauges exactly once per bucket.
  bool advance(double now_ms);

  /// Distribution recorded in (now - window_ms, now]. Falls back to the
  /// oldest retained snapshot (or zero — i.e. since start) while the ring
  /// is still warming up.
  WindowDelta delta(double now_ms, double window_ms) const;
  /// Primary-window convenience: delta over cfg.window_ms().
  WindowDelta delta(double now_ms) const { return delta(now_ms, cfg_.window_ms()); }

  const WindowConfig& config() const { return cfg_; }
  std::size_t ring_size() const { return ring_.size(); }

 private:
  struct Entry {
    double ts_ms;
    HistogramSnapshot snap;
  };

  const Histogram* src_;
  WindowConfig cfg_;
  std::deque<Entry> ring_;
  double start_ms_ = 0.0;
  bool started_ = false;
};

/// Rolling window over one monotone Counter (same lazy-clock discipline).
class CounterWindow {
 public:
  struct Delta {
    double value = 0.0;
    double span_ms = 0.0;
    double rate_per_sec() const {
      return span_ms > 0.0 ? value / (span_ms / 1000.0) : 0.0;
    }
  };

  CounterWindow(const Counter* source, WindowConfig cfg);

  /// Same boundary discipline as HistogramWindow::advance.
  bool advance(double now_ms);
  Delta delta(double now_ms, double window_ms) const;
  Delta delta(double now_ms) const { return delta(now_ms, cfg_.window_ms()); }

 private:
  struct Entry {
    double ts_ms;
    double value;
  };

  const Counter* src_;
  WindowConfig cfg_;
  std::deque<Entry> ring_;
  double start_ms_ = 0.0;
  bool started_ = false;
};

}  // namespace nvcim::obs
