#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace nvcim::obs {

/// Shape of a log-linear histogram: `octaves` powers of two starting at
/// `min_value`, each split into `sub_buckets` linear buckets, plus one
/// underflow bucket for values <= min_value. Values beyond the last octave
/// clamp into the final bucket. With 32 sub-buckets the relative width of
/// any bucket is <= 1/32 ≈ 3.1%, so a rank-interpolated estimate is within
/// ~3.1% of any value in the bucket — comfortably inside the 5% percentile
/// error bound the serving stats promise.
struct HistogramConfig {
  double min_value = 1e-3;       ///< smallest resolvable value (1 µs in ms units)
  std::size_t sub_buckets = 32;  ///< linear buckets per octave
  std::size_t octaves = 28;      ///< 1e-3 ms … ~134 s of dynamic range
};

/// Fixed-bucket log-linear latency histogram (HdrHistogram-style): lock-free
/// concurrent recording into atomic buckets, O(buckets) percentile queries
/// and bucket-exact merging — the primitive that replaces the serving
/// engine's sort-under-mutex exact-latency vector. Recording is wait-free
/// per bucket; queries snapshot bucket counts with relaxed loads, so a
/// percentile read concurrent with writers is approximate in the obvious
/// way (it sees some prefix of the in-flight records).
class Histogram {
 public:
  explicit Histogram(HistogramConfig cfg = HistogramConfig{});

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one value. Negative / NaN values land in the underflow bucket.
  void record(double value);

  /// Bucket-wise accumulate `other` into this histogram. Both must share
  /// one HistogramConfig (checked).
  void merge_from(const Histogram& other);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value (exact, not bucketed); 0 when empty.
  double min() const;
  double max() const;
  double mean() const;

  /// Value at quantile q in [0, 1]: rank-interpolated within the bucket
  /// holding the q-th record, clamped to the exact [min, max] seen — so
  /// distinct quantiles sharing one bucket stay distinct (monotone in q).
  /// 0 when empty.
  double value_at_quantile(double q) const;

  std::size_t n_buckets() const { return buckets_.size(); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Bucket i covers (lower(i), upper(i)]; bucket 0 is (-inf, min_value].
  double bucket_lower(std::size_t i) const;
  double bucket_upper(std::size_t i) const;
  std::size_t bucket_index(double value) const;

  const HistogramConfig& config() const { return cfg_; }

 private:
  HistogramConfig cfg_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

}  // namespace nvcim::obs
