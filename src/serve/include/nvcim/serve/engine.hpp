#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nvcim/core/framework.hpp"
#include "nvcim/obs/httpd.hpp"
#include "nvcim/obs/trace.hpp"
#include "nvcim/serve/health.hpp"
#include "nvcim/serve/lru_cache.hpp"
#include "nvcim/serve/ovt_store.hpp"
#include "nvcim/serve/request.hpp"
#include "nvcim/serve/scheduler.hpp"
#include "nvcim/serve/stats.hpp"

namespace nvcim::serve {

/// Background device scrubber: a ticker thread periodically enqueues
/// scrub-and-repair rounds as worker-pool aux tasks (the same machinery
/// write-behind programming rides on), walking the store's subarrays in
/// round-robin order. Each round probes columns against their pristine
/// programming levels, reprograms degraded columns in place, migrates
/// tenants off columns that stay deviant after reprogramming (stuck cells)
/// and quarantines subarrays that accumulate too many stuck columns — see
/// ShardedOvtStore::scrub_and_repair. Requires LifecycleConfig::enabled
/// (repair needs the mutable store).
struct ScrubberConfig {
  bool enabled = false;
  double interval_ms = 20.0;  ///< ticker period between scrub rounds
  /// Subarrays probed per round, across all shards (0 = the whole fleet
  /// every round). Small values bound the serving interference per round.
  std::size_t subarrays_per_round = 1;
  ScrubPolicy policy;  ///< detection threshold, repair/migrate toggles
};

/// Embedded introspection server: when enabled, start() binds a local HTTP
/// endpoint serving /metrics (Prometheus text), /metrics.json, /healthz,
/// /readyz, /debug/engine, /debug/slow and /debug/trace. Port 0 binds an
/// ephemeral port — read it back via ServingEngine::introspection_port().
struct IntrospectionConfig {
  bool enabled = false;
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t handler_threads = 2;
};

/// Declarative SLOs evaluated by the engine's health monitor over dual
/// rolling windows (see obs::BurnRateConfig): a latency objective ("99% of
/// requests under latency_threshold_ms"), an availability objective (a
/// degraded response spends error budget) and a deadline objective (late
/// completions and in-queue expiries spend budget).
struct SloConfig {
  double latency_threshold_ms = 50.0;
  double latency_objective = 0.99;
  double availability_objective = 0.999;
  double deadline_objective = 0.99;
  obs::BurnRateConfig burn;
};

struct ServingConfig {
  std::size_t n_shards = 2;
  std::size_t n_threads = 2;
  std::size_t max_batch = 8;         ///< queries per crossbar MVM pass
  /// Batch coalescing: a worker that finds fewer than `min_batch` queued
  /// requests waits up to `batch_window_ms` for more before processing, so
  /// bursty traffic forms full-width batches (wider MVM passes, more shards
  /// to fan out) instead of splintering across workers. 1 = dequeue
  /// immediately (the pre-coalescing behaviour).
  std::size_t min_batch = 1;
  double batch_window_ms = 2.0;
  std::size_t queue_capacity = 64;   ///< submit() blocks when the queue is full
  /// Cross-tenant request scheduling: DRR fair queuing with EDF-critical
  /// pull and optional per-tenant rate limits (SchedPolicy::Fifo restores
  /// the legacy global arrival order for A/B).
  SchedulerConfig scheduler;
  std::size_t cache_capacity = 32;   ///< decoded-OVT LRU entries
  bool run_inference = false;        ///< also classify with the shared backbone
  /// Fan the retrieve stage's per-shard MVM passes out across the worker
  /// pool when a batch spans multiple shards. Shards are independent (their
  /// crossbars were programmed at build time), so results are bit-identical
  /// to the serial shard loop; off = serial loop, for A/B benching.
  bool parallel_retrieval = true;
  /// Two-phase retrieval: k-means candidate routing + low-bit sketch
  /// prefilter (phase 1) ahead of candidate-masked exact crossbar scoring
  /// (phase 2). Off by default — the exact PR 3 data path. With
  /// `two_phase.nprobe = 0` (probe every cluster) results remain
  /// bit-identical to the exact path while other users' key columns are
  /// still skipped; smaller nprobe trades recall for pruned crossbar work
  /// (see EngineStats::pruned_fraction / sampled_recall_at1).
  TwoPhaseConfig two_phase;
  /// Online tenant lifecycle: admit_user()/evict_user()/rebalance() while
  /// serving, over an epoch-versioned mutable store. Off by default — the
  /// build-once PR 4 store.
  LifecycleConfig lifecycle;
  /// Background fault scrubbing and self-repair while serving. Off by
  /// default; requires `lifecycle.enabled`.
  ScrubberConfig scrubber;
  /// Span tracing (off by default): request/batch/stage/shard/lifecycle
  /// spans into per-thread ring buffers, exportable as Chrome trace_event
  /// JSON via tracer().write_chrome_trace_file().
  obs::TracerConfig tracing;
  /// >0: requests slower than this leave a SlowRequest exemplar (latency +
  /// queue-wait + the carrying batch's stage breakdown) in EngineStats.
  double slow_request_ms = 0.0;
  /// Embedded HTTP admin endpoint (off by default).
  IntrospectionConfig introspection;
  /// SLO objectives behind health() / the /healthz verdict.
  SloConfig slo;
  /// Rolling-window geometry for the `nvcim_*_1m` families and
  /// StatsSnapshot::last_minute (retention must cover slo.burn windows).
  obs::WindowConfig window;
  retrieval::Algorithm algorithm = retrieval::Algorithm::SSA;
  retrieval::ScaledSearchConfig ssa;
  cim::CrossbarConfig crossbar;
  nvm::VariationModel variation;
  std::uint64_t seed = 2026;
};

class ServingEngine;

/// Handle to one submitted request: the future, the engine-unique request id
/// and cancel-before-dispatch. Returned by ServingEngine::submit(). A
/// default-constructed (or rejected — OverloadPolicy::Reject with a full
/// queue) handle is !valid() and carries no future. The handle must not
/// outlive its engine.
class RequestHandle {
 public:
  RequestHandle() = default;

  /// False ⇔ the submission was rejected (queue full under
  /// OverloadPolicy::Reject) — the legacy try_submit() nullopt.
  bool valid() const { return engine_ != nullptr; }
  std::uint64_t id() const { return id_; }

  std::future<Response>& future() { return future_; }
  /// Move the future out (e.g. to stash handles in a container of futures).
  std::future<Response> take_future() { return std::move(future_); }
  /// Block for the response (rethrows the request's error, if any).
  Response get() { return future_.get(); }

  /// Cancel the request if it is still queued: true ⇔ it was removed before
  /// dispatch (its future settles with Cancelled). False once a worker owns
  /// it — the request will complete normally.
  bool cancel();

 private:
  friend class ServingEngine;
  RequestHandle(ServingEngine* engine, std::uint64_t id, std::future<Response> fut)
      : engine_(engine), id_(id), future_(std::move(fut)) {}

  ServingEngine* engine_ = nullptr;
  std::uint64_t id_ = 0;
  std::future<Response> future_;
};

/// Handle to one admission: valid() ⇔ the admission was accepted (false is
/// the legacy try_admit_user() == false rejection), wait() joins a
/// write-behind admission (rethrows its error on rollback). The handle must
/// not outlive its engine.
class AdmissionHandle {
 public:
  AdmissionHandle() = default;

  /// False ⇔ the admission was rejected (pending-admission bound hit under
  /// AdmitOptions::non_blocking).
  bool valid() const { return engine_ != nullptr; }
  std::size_t user_id() const { return user_id_; }

  /// Block until the tenant is live (immediately for synchronous
  /// admissions). Rethrows the admission's error if programming failed.
  void wait();

 private:
  friend class ServingEngine;
  AdmissionHandle(ServingEngine* engine, std::size_t user_id)
      : engine_(engine), user_id_(user_id) {}

  ServingEngine* engine_ = nullptr;
  std::size_t user_id_ = 0;
};

/// Multi-tenant serving engine over one frozen backbone: owns N users'
/// TrainedDeployments, packs their retrieval keys into a sharded crossbar
/// store, and serves concurrent (user, query) requests through a thread
/// pool. Each worker processes a batch through four explicit stages:
///
///   1. encode   — requests grouped by shared autoencoder and pushed
///                 through one batched encode GEMM per group (cross-user
///                 fusion; see TrainedDeployment::query_representation_batch)
///   2. retrieve — rows grouped by destination shard, one crossbar MVM pass
///                 per shard, per-user slot masking; when a batch spans
///                 several shards the per-shard passes are fanned out across
///                 the worker pool (idle workers steal them, the coordinator
///                 helps until its batch's shards are done — deterministic,
///                 since shards are independent)
///   3. decode   — decoded-prompt fetch through the LRU cache with
///                 single-flight misses (concurrent misses on one key share
///                 a single decode — no thundering herd; an evicted key is
///                 decoded again on its next miss)
///   4. classify — optional backbone classification, deduplicated within
///                 the batch for identical (user, OVT, input) requests
///
/// Per-stage wall-clock is accumulated into EngineStats. Batched results
/// are bit-identical to the serial reference path (retrieve_serial).
///
/// Lifecycle: construct → add_deployment()× → start() → submit()/serve()×
/// → stop() (or destruction). The backbone and task outlive the engine.
class ServingEngine {
 public:
  ServingEngine(llm::TinyLM& model, const data::LampTask& task, ServingConfig cfg);
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Take ownership of a trained user deployment. Must precede start().
  void add_deployment(std::size_t user_id, core::TrainedDeployment deployment);

  /// Build the sharded store and launch the worker pool.
  void start();
  bool running() const { return running_; }

  /// Join the workers and settle every still-queued request's future with
  /// EngineStopped (queued work is never silently dropped OR silently served
  /// after shutdown began; in-flight batches complete normally). Idempotent.
  void stop();

  // ---- Submission (the one entry point; the rest are shims over it) ----

  /// Enqueue one request under its scheduling contract and return a handle
  /// carrying the future, the request id and cancel-before-dispatch.
  /// Blocking/rejecting/deadline/priority/callback semantics all live in
  /// `opts` (see SubmitOptions), not in which function was called. With a
  /// full queue the call blocks under OverloadPolicy::Block and returns an
  /// invalid handle (bumping EngineStats::rejected_requests) under Reject.
  RequestHandle submit(Request request, SubmitOptions opts = {});

  /// Cancel a still-queued request by id (RequestHandle::cancel()'s
  /// implementation): true ⇔ it was removed before dispatch; its future
  /// settles with Cancelled and EngineStats::cancelled_requests bumps.
  bool cancel(std::uint64_t request_id);

  /// Per-tenant rate limit (requests/second, 0 = unlimited), applied at
  /// dequeue: an over-limit tenant's backlog stays queued while other
  /// tenants are scheduled. Callable while serving.
  void set_rate_limit(std::size_t user_id, double rps);

  // ---- Deprecated submission shims (prefer submit(Request, SubmitOptions)) ----

  /// DEPRECATED shim: submit({user, query}).take_future() with blocking
  /// backpressure — the pre-PR 8 submit().
  std::future<Response> submit(std::size_t user_id, data::Sample query);

  /// DEPRECATED shim: submit() under OverloadPolicy::Reject — nullopt when
  /// the queue is full (the pre-PR 8 try_submit()).
  std::optional<std::future<Response>> try_submit(std::size_t user_id, data::Sample query);

  /// DEPRECATED shim: submit and wait.
  Response serve(std::size_t user_id, const data::Sample& query);

  // ---- Online tenant lifecycle (requires ServingConfig::lifecycle) ----

  /// Admit a user while serving (one entry point; AdmitOptions carries the
  /// non-blocking / join-before-return semantics the admit_user /
  /// try_admit_user / wait_admitted trio used to encode in function names).
  /// Returns an invalid handle ⇔ the write-behind pending-admission bound
  /// rejected the call under `opts.non_blocking`. Before start() this is
  /// equivalent to add_deployment(). See admit_user() for the write-behind
  /// protocol details.
  AdmissionHandle admit(std::size_t user_id, core::TrainedDeployment deployment,
                        AdmitOptions opts = {});

  /// DEPRECATED shim for admit(): blocking admission, no join.
  ///
  /// Admit a user while serving: program its keys into the live store (new
  /// epoch; in-flight batches are untouched) and take ownership of the
  /// deployment. Before start() this is equivalent to add_deployment().
  ///
  /// With LifecycleConfig::write_behind (and a running pool), the call
  /// stages the admission and returns immediately (tenant Pending): column
  /// programming runs as per-subarray aux tasks on the worker pool,
  /// interleaved with serving batches, and the tenant flips live when the
  /// last span lands — bit-identical to the synchronous path (same staged
  /// protocol, same per-column noise streams). Join with wait_admitted().
  /// At LifecycleConfig::max_pending_admissions staged admissions the call
  /// blocks (backpressure); try_admit_user() rejects instead.
  void admit_user(std::size_t user_id, core::TrainedDeployment deployment);

  /// DEPRECATED shim for admit(..., {.non_blocking = true}).valid().
  ///
  /// Non-blocking admission control for admit_user(): when the write-behind
  /// pending bound is hit the admission is REJECTED — returns false (the
  /// engine is Overloaded, EngineStats::rejected_admissions bumps) instead
  /// of blocking. Synchronous-path admissions always proceed (return true).
  bool try_admit_user(std::size_t user_id, core::TrainedDeployment deployment);

  /// Join one write-behind admission (AdmissionHandle::wait()'s
  /// implementation): block until the user's staged columns
  /// are fully programmed and the tenant is live. Rethrows the admission's
  /// error if programming failed (the admission was rolled back). Returns
  /// immediately for already-live users; throws for unknown ones.
  void wait_admitted(std::size_t user_id);

  /// Evict a user while serving: unpublish its slot (freed columns are
  /// reused only after in-flight readers drain), drop the deployment and
  /// purge its decoded prompts from the LRU. In-flight requests for the
  /// user still complete against their pinned epoch; new submits throw.
  void evict_user(std::size_t user_id);

  /// One synchronous scrub-and-repair pass over EVERY subarray of every
  /// shard, on the calling thread (tests and benches; the background ticker
  /// runs the same code incrementally). Aggregates the per-subarray
  /// outcomes; counts and repair wall-clock land in EngineStats. Requires
  /// LifecycleConfig::enabled; callable whether or not the ticker runs.
  ScrubOutcome scrub_now();

  /// One rebalance cycle: plan migrations from overloaded to underloaded
  /// shards and execute them as aux tasks on the worker pool (workers
  /// interleave them with serving batches — no quiesce). Blocks until the
  /// cycle completes; returns the number of users migrated. Wall-clock and
  /// counts land in EngineStats (migrations, rebalance_ms).
  std::size_t rebalance();

  /// Serial reference path used by tests: same banks, same arithmetic, no
  /// queue/threads/cache.
  std::size_t retrieve_serial(std::size_t user_id, const data::Sample& query);

  /// Decoded prompt for (user, ovt) through the LRU cache.
  std::shared_ptr<const Matrix> prompt(std::size_t user_id, std::size_t ovt_index);

  /// One machine-readable health verdict: SLO burn rates over dual rolling
  /// windows, device-fleet subarray health, queue saturation and the
  /// pending-admission backlog (the /healthz / /readyz backend — callable
  /// without the HTTP server). Advances the rolling windows as a side
  /// effect (lazy-clock maintenance).
  HealthReport health() const;

  /// Port the introspection server actually bound (resolves
  /// IntrospectionConfig::port == 0), or 0 when the server is not running.
  std::uint16_t introspection_port() const;

  std::size_t n_users() const;
  const ShardedOvtStore& store() const { return store_; }
  /// Mutable store access for fault injection (tests, benches, chaos
  /// drills). The store's fault APIs take their own locks — callable while
  /// serving.
  ShardedOvtStore& store_mutable() { return store_; }
  const core::TrainedDeployment& deployment(std::size_t user_id) const;
  StatsSnapshot stats() const { return stats_.snapshot(); }
  /// The engine's span tracer (enabled via ServingConfig::tracing). Export
  /// after stop() for a complete trace.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  /// The metric registry behind EngineStats: Prometheus text / JSON
  /// exposition of every counter, gauge and histogram (per-tenant included).
  const obs::Registry& metrics() const { return stats_.registry(); }
  /// Slow-request exemplars captured so far (ServingConfig::slow_request_ms).
  std::vector<SlowRequest> slow_requests() const { return stats_.slow_requests(); }
  std::size_t cache_evictions() const;
  /// Autoencoder decodes actually executed (cache misses that won the
  /// single-flight race). With a cold cache, no evictions and any amount of
  /// concurrency this equals the number of distinct (user, ovt) keys touched.
  std::size_t prompt_decodes() const { return prompt_decodes_; }
  /// Fetches that coalesced onto another worker's in-flight decode.
  std::size_t coalesced_fetches() const { return coalesced_fetches_; }

 private:
  /// One user's pinned serving state: the deployment (shared_ptr — eviction
  /// drops the map entry, in-flight batches keep theirs alive) and its
  /// admission generation. Decoded-prompt cache keys use the generation,
  /// never the raw user id, so a re-admitted user id can never alias a
  /// stale cache entry or a late single-flight insert from its predecessor.
  struct DepRef {
    std::shared_ptr<const core::TrainedDeployment> dep;
    std::uint64_t generation = 0;
  };

  /// Per-worker reusable buffers: the encode-path scratch (embeddings,
  /// stacked rows, autoencoder hidden layer), the batch's representation
  /// matrix, the packed per-shard query/score matrices and the retriever's
  /// bank scratch, so steady-state batches allocate (almost) nothing. Shard
  /// tasks executed by a worker use that worker's own state, so concurrent
  /// shard retrievals never share buffers.
  struct WorkerState {
    core::EncodeScratch encode;
    Matrix reps;
    Matrix shard_queries;
    Matrix shard_scores;
    retrieval::CimRetriever::Scratch retrieve;
    // Two-phase retrieval: per-row users, the routed candidate bitmaps and
    // a second scores/scratch pair for the sampled exact-recall passes.
    std::vector<std::size_t> row_users;
    cim::CandidateSet candidates;
    ShardedOvtStore::RouteScratch route;
    Matrix exact_scores;
    retrieval::CimRetriever::Scratch exact_retrieve;
    // Batched decode: the stacked missed payload codes and the one-GEMM
    // decode output.
    Matrix decode_stacked;
    Matrix decode_out;
    std::vector<const Matrix*> decode_parts;
  };

  /// A unit of stage work fanned out to the worker pool (currently one
  /// shard's retrieval). Runs on the executing worker's own WorkerState.
  using AuxTask = std::function<void(WorkerState&)>;

  /// One in-flight decode for single-flight misses: the first worker to miss
  /// on a key decodes; later missers wait on `cv` and share the result.
  struct InFlightDecode {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const Matrix> value;
    std::exception_ptr error;
  };

  /// Join state of one in-flight write-behind admission: spans still to
  /// program, the first programming error seen (if any) and the settled
  /// flag wait_admitted() blocks on.
  struct AdmissionJoin {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = 0;
    bool settled = false;
    std::exception_ptr error;
  };

  void worker_loop();
  /// Ticker behind ScrubberConfig: wakes every interval_ms and enqueues one
  /// scrub round as an aux task (skipped while the previous round is still
  /// in flight — scrubbing never queues up behind itself).
  void scrubber_loop();
  /// Scrub-and-repair the next `budget` subarrays in round-robin order
  /// across all shards (0 = all of them), recording stats and spans.
  ScrubOutcome scrub_round(std::size_t budget);
  void process_batch(std::vector<QueuedRequest>&& batch, WorkerState& ws);
  /// Settle one request's future, then fire its on_complete (exactly once,
  /// in that order; callback exceptions are swallowed). The single funnel
  /// for every completion path: served, failed, expired, cancelled, stopped.
  static void finish(QueuedRequest& req, Response&& resp);
  static void finish_error(QueuedRequest& req, std::exception_ptr error);
  /// Settle a batch of already-expired requests with DeadlineExceeded and
  /// account them (stats + tracer). Called outside queue_mu_.
  void expire_requests(std::vector<QueuedRequest>&& expired);
  /// Shared body of admit_user()/try_admit_user(). Returns false only when
  /// `may_block` is false and the pending-admission bound rejects the call.
  bool admit_user_impl(std::size_t user_id, core::TrainedDeployment deployment, bool may_block);
  /// Program one staged span; the last span to finish settles the admission
  /// (commit on success, full rollback on error) and wakes the joiners.
  void run_admission_span(const std::shared_ptr<const ShardedOvtStore::StagedAdmission>& staged,
                          const std::shared_ptr<AdmissionJoin>& join, std::size_t idx,
                          std::uint64_t generation, std::chrono::steady_clock::time_point t0);
  /// Pinned deployment ref for `user_id`, or an empty DepRef when the user
  /// is gone (evicted between submit and batch assembly).
  DepRef find_deployment(std::size_t user_id) const;
  std::shared_ptr<const Matrix> prompt_locked_fetch(const DepRef& ref, std::size_t ovt_index,
                                                    bool* was_hit,
                                                    compress::Autoencoder::Scratch* scratch);
  /// Publish one finished decode: cache the value (best-effort), retire the
  /// in-flight entry and wake every waiter. The single implementation of
  /// the single-flight completion protocol, shared by the per-request fetch
  /// and the batched stage-3 decode.
  void complete_decode_flight(const std::pair<std::size_t, std::size_t>& key,
                              const std::shared_ptr<InFlightDecode>& flight,
                              const std::shared_ptr<const Matrix>& value,
                              const std::exception_ptr& error);

  llm::TinyLM* model_;
  const data::LampTask* task_;
  ServingConfig cfg_;
  ShardedOvtStore store_;
  mutable std::mutex deployments_mu_;  ///< guards deployments_/next_generation_
  std::unordered_map<std::size_t, DepRef> deployments_;
  std::uint64_t next_generation_ = 0;
  std::size_t rep_size_ = 0;  ///< flattened query-representation width

  mutable std::mutex cache_mu_;
  LruCache<std::pair<std::size_t, std::size_t>, std::shared_ptr<const Matrix>, UserKeyHash>
      cache_;
  std::unordered_map<std::pair<std::size_t, std::size_t>, std::shared_ptr<InFlightDecode>,
                     UserKeyHash>
      inflight_;  ///< guarded by cache_mu_
  /// Admission generations of the currently-deployed users (guarded by
  /// cache_mu_): a decode that completes AFTER its user was evicted must
  /// not re-insert into the LRU — its generation is gone from this set, so
  /// the value is delivered to its waiters but never cached.
  std::unordered_set<std::uint64_t> live_generations_;
  std::atomic<std::size_t> prompt_decodes_{0};
  std::atomic<std::size_t> coalesced_fetches_{0};
  /// Routed shard passes so far — drives the recall-vs-exact sampling cadence.
  std::atomic<std::size_t> routed_passes_{0};

  mutable std::mutex queue_mu_;  ///< mutable: health() reads depth under it
  std::condition_variable queue_cv_;      ///< workers wait for work / shutdown
  std::condition_variable capacity_cv_;   ///< producers wait for queue space
  /// Deadline/priority-aware per-tenant request queue (guarded by queue_mu_;
  /// the scheduler itself is passive — see RequestScheduler).
  RequestScheduler sched_;
  /// Stage subtasks fanned out by an in-flight batch (guarded by queue_mu_).
  /// Workers drain these before taking new request batches — an aux task
  /// unblocks a batch that is already holding requests.
  std::deque<AuxTask> aux_queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  bool stopping_ = false;  ///< guarded by queue_mu_

  // Background scrubber state (ScrubberConfig; thread joined by stop()).
  std::thread scrubber_;
  std::mutex scrub_mu_;               ///< guards scrub_stop_ / scrub_cursor_
  std::condition_variable scrub_cv_;  ///< wakes the ticker for shutdown
  bool scrub_stop_ = false;
  std::size_t scrub_cursor_ = 0;  ///< round-robin (shard, subarray) position
  /// A scrub round is queued or running — the ticker skips its tick instead
  /// of stacking rounds behind a slow repair.
  std::atomic<bool> scrub_inflight_{false};

  mutable std::mutex admissions_mu_;       ///< guards admissions_
  std::condition_variable admissions_cv_;  ///< admit_user() backpressure waiters
  /// In-flight write-behind admissions by user id. An entry exists from the
  /// moment the pending slot is reserved until the admission settles — its
  /// size IS the backpressure bound's measure.
  std::unordered_map<std::size_t, std::shared_ptr<AdmissionJoin>> admissions_;

  /// Register the introspection routes and start the embedded server
  /// (no-op unless IntrospectionConfig::enabled). Defined in
  /// introspection.cpp alongside the endpoint handlers.
  void start_introspection();
  void stop_introspection();

  EngineStats stats_;
  obs::Tracer tracer_;
  std::unique_ptr<obs::HttpServer> http_;
  std::atomic<std::uint64_t> next_batch_id_{0};  ///< links batch/stage/shard spans
  std::atomic<std::uint64_t> next_request_id_{1};  ///< RequestHandle ids (0 = invalid)
};

inline bool RequestHandle::cancel() { return engine_ != nullptr && engine_->cancel(id_); }

inline void AdmissionHandle::wait() {
  if (engine_ != nullptr) engine_->wait_admitted(user_id_);
}

}  // namespace nvcim::serve
