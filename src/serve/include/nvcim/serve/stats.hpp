#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nvcim/obs/metrics.hpp"
#include "nvcim/obs/slo.hpp"
#include "nvcim/obs/window.hpp"

namespace nvcim::serve {

/// Rolling-window view of the last `span_ms` of traffic (the primary window
/// is ~1 minute by default — see obs::WindowConfig). All rates are computed
/// from delta-ring snapshots, so they decay as the incident leaves the
/// window instead of being diluted into lifetime averages.
struct WindowStats {
  double span_ms = 0.0;          ///< actual span covered (shorter at warm-up)
  std::size_t requests = 0;      ///< requests completed inside the window
  double throughput_rps = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double queue_wait_p95_ms = 0.0;
  /// (expired + rejected) / (requests + expired + rejected) in the window.
  double error_rate = 0.0;
  /// Degraded responses / requests in the window.
  double degraded_rate = 0.0;
  /// Late completions / requests in the window.
  double deadline_miss_rate = 0.0;
};

/// Aggregate view of an engine's counters at one instant.
struct StatsSnapshot {
  std::size_t requests = 0;
  std::size_t batches = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  double avg_batch_size = 0.0;
  /// Requests per wall-clock second since start. The clock freezes at
  /// stop(), so post-shutdown snapshots are stable instead of decaying
  /// toward zero against a still-running wall clock.
  double throughput_rps = 0.0;
  // Latency percentiles (submit → response) from the log-linear histogram:
  // O(buckets) reads, within ~1.6% of the exact values (property-tested).
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  // Queue-wait vs service-time split (submit → batch dequeue, from the
  // per-request `enqueued` timestamp that previously only fed total latency).
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p95_ms = 0.0;
  /// Deepest the bounded request queue has been at any enqueue.
  std::size_t queue_depth_hwm = 0;
  // Cumulative per-stage wall-clock across all processed batches (the four
  // stages of ServingEngine::process_batch).
  double encode_ms = 0.0;    ///< batched query encode (embed+resample+GEMM)
  double retrieve_ms = 0.0;  ///< shard-grouped crossbar retrieval
  double decode_ms = 0.0;    ///< prompt fetch (LRU / single-flight decode)
  double classify_ms = 0.0;  ///< optional backbone classification
  /// Cumulative per-shard retrieval wall-clock (index = shard id). The sum
  /// can exceed retrieve_ms when shards run in parallel — that overlap IS
  /// the fan-out win.
  std::vector<double> shard_retrieve_ms;
  /// Batches whose retrieve stage fanned shards out across the worker pool.
  std::size_t parallel_retrieve_fanouts = 0;
  // Two-phase retrieval accounting (zero when the feature is off).
  /// Key columns the masked exact pass actually computes. Block-granular:
  /// the fused kernel rounds candidate work up to whole accumulator blocks
  /// (Crossbar::kAccumulatorLanes), so this matches the kernel's own ADC
  /// accounting and exceeds the raw candidate count.
  std::size_t candidates_examined = 0;
  /// Keys a full unmasked pass would have scored (B × shard keys, summed).
  std::size_t candidates_possible = 0;
  /// 1 − examined/possible: the fraction of exact crossbar work pruned.
  double pruned_fraction = 0.0;
  /// Sampled recall-vs-exact: every Nth routed shard pass also runs the
  /// unmasked scoring and counts rows whose argmax matches.
  std::size_t recall_samples = 0;
  std::size_t recall_matches = 0;
  double sampled_recall_at1 = 0.0;  ///< matches/samples (0 with no samples)
  /// Decode GEMMs that stacked >1 missed payload into one batched pass.
  std::size_t batched_decode_gemms = 0;
  // Tenant lifecycle accounting (zero without LifecycleConfig::enabled).
  std::size_t users_admitted = 0;   ///< live admits after start()
  std::size_t users_evicted = 0;    ///< live evictions
  std::size_t migrations = 0;       ///< user slots moved between shards
  /// Candidate routers (re)built by lifecycle operations — per-user, so a
  /// refresh never re-clusters tenants whose membership didn't change.
  std::size_t router_refreshes = 0;
  double rebalance_ms = 0.0;        ///< cumulative rebalance() wall-clock
  /// Submissions bounced with Overloaded because the queue was full
  /// (OverloadPolicy::Reject; Block still applies backpressure instead).
  std::size_t rejected_requests = 0;
  // SLO accounting (PR 8 async lifecycle; zero without deadlines in play).
  /// Requests whose deadline passed while still queued: dropped with
  /// DeadlineExceeded before any crossbar work, never counted in `requests`.
  std::size_t expired_requests = 0;
  /// Requests dispatched in time but completed after their deadline (the
  /// answer was still delivered, with Response::deadline_missed set).
  std::size_t deadline_missed = 0;
  /// Requests removed by RequestHandle::cancel() before dispatch.
  std::size_t cancelled_requests = 0;
  // Write-behind admission accounting (zero on the synchronous path).
  /// Programming spans staged but not yet executed (live queue depth).
  std::size_t programming_queue_depth = 0;
  /// Per-subarray programming batches executed by worker aux tasks.
  std::size_t program_batches = 0;
  // Admission latency (stage → live) percentiles from the histogram.
  double admission_p50_ms = 0.0;
  double admission_p95_ms = 0.0;
  /// try_admit_user() calls bounced with Overloaded (pending-admission
  /// backpressure bound hit).
  std::size_t rejected_admissions = 0;
  // Device-fault tolerance accounting (zero without scrubbing in play).
  std::size_t scrub_passes = 0;          ///< per-subarray scrub-and-repair passes
  std::size_t scrub_columns_probed = 0;  ///< columns probed against pristine
  std::size_t columns_degraded = 0;      ///< columns flagged degraded by scrubs
  std::size_t columns_repaired = 0;      ///< degraded columns reprogrammed clean
  std::size_t columns_stuck = 0;         ///< columns that failed reprogramming
  std::size_t scrub_migrations = 0;      ///< tenants moved off stuck columns
  std::size_t subarrays_quarantined = 0;
  std::size_t degraded_responses = 0;    ///< responses delivered with degraded set
  // Repair wall-clock percentiles (scrub passes that found degraded columns).
  double repair_p50_ms = 0.0;
  double repair_p95_ms = 0.0;
  /// Tenants whose labelled `nvcim_tenant_*` series were retired on eviction.
  std::size_t tenants_retired = 0;
  /// Queue depth right now (the live gauge, vs the high-water mark above).
  std::size_t queue_depth = 0;
  /// Rolling view over the primary (~1 minute) window.
  WindowStats last_minute;
};

/// One slow-request exemplar: a request whose latency crossed the engine's
/// slow_request_ms threshold, with its span tree flattened to the stage
/// wall-clock of the batch that carried it.
struct SlowRequest {
  std::size_t user_id = 0;
  std::uint64_t batch_id = 0;
  double latency_ms = 0.0;
  double queue_wait_ms = 0.0;
  double encode_ms = 0.0;
  double retrieve_ms = 0.0;
  double decode_ms = 0.0;
  double classify_ms = 0.0;
};

/// Thread-safe request/batch/latency accounting for a serving engine,
/// built on the nvcim::obs primitives: latency, queue-wait and service-time
/// land in lock-free log-linear histograms (p50/p95/p99 from O(buckets)
/// merges, not sort-under-mutex over an unbounded exact vector), counters
/// and gauges live in an obs::Registry with per-tenant labels, and the
/// whole set exposes as Prometheus text / JSON via registry().
/// One window's worth of SLI samples for the SLO burn-rate evaluator, plus
/// the derived WindowStats (same deltas, read once).
struct WindowedSli {
  obs::SloSample latency;       ///< bad = completions over the threshold
  obs::SloSample availability;  ///< bad = degraded responses
  obs::SloSample deadline;      ///< bad = late completions + in-queue expiries
  WindowStats stats;
};

class EngineStats {
 public:
  explicit EngineStats(obs::WindowConfig window = obs::WindowConfig{});

  void start_clock();
  /// Freeze the throughput clock (idempotent): snapshots taken after the
  /// engine stops keep reporting the rate it actually served at.
  void stop_clock();

  /// Record one completed request: its end-to-end latency, the queue-wait
  /// share of it and which tenant it belonged to.
  void record_request(std::size_t user_id, double latency_ms, double queue_wait_ms,
                      bool cache_hit);

  /// Record the queue depth observed at one enqueue/dequeue: sets the live
  /// `nvcim_queue_depth` gauge and advances the `nvcim_queue_depth_hwm`
  /// high-water mark.
  void record_queue_depth(std::size_t depth);

  void record_batch(std::size_t batch_size);

  /// Accumulate one batch's per-stage wall-clock (milliseconds).
  void record_stage_times(double encode_ms, double retrieve_ms, double decode_ms,
                          double classify_ms);

  /// Accumulate one shard retrieval's wall-clock (milliseconds).
  void record_shard_time(std::size_t shard, double ms);

  /// Count one batch whose retrieve stage ran shards in parallel.
  void record_parallel_fanout();

  /// Accumulate one routed shard pass's candidate counts (keys the masked
  /// pass scored vs keys a full pass would have scored).
  void record_two_phase(std::size_t examined, std::size_t possible);

  /// Accumulate one tenant's routed-candidate count (per-tenant counter:
  /// which tenant is eating the crossbar).
  void record_tenant_candidates(std::size_t user_id, std::size_t candidates);

  /// Accumulate one sampled recall-vs-exact comparison.
  void record_recall_sample(std::size_t rows, std::size_t matches);

  /// Count one decode GEMM that stacked several missed payloads.
  void record_batched_decode();

  /// Count one live admission (and its router build, when routed).
  void record_admission(bool router_refreshed);
  void record_eviction();
  void record_migration();
  /// Accumulate one rebalance() cycle's wall-clock.
  void record_rebalance(double ms);
  void record_rejection();
  /// One request expired in-queue (deadline passed before dispatch).
  void record_expired(std::size_t user_id);
  /// One request completed after its deadline (dispatched, late).
  void record_deadline_miss(std::size_t user_id);
  /// One request cancelled before dispatch.
  void record_cancellation();

  // ---- Write-behind admission ----
  /// `spans` programming batches were staged (queue depth rises by spans).
  void record_programming_enqueued(std::size_t spans);
  /// One staged batch of `columns` key columns was programmed (depth -1).
  void record_program_batch(std::size_t columns);
  /// One admission went stage → live in `ms` wall-clock.
  void record_admission_latency(double ms);
  /// One try_admit_user() bounced on the pending-admission bound.
  void record_admission_rejection();

  // ---- Device-fault scrubbing / repair ----
  /// One subarray scrub-and-repair pass: columns probed, flagged degraded,
  /// repaired in place, left stuck after reprogramming, tenants migrated off
  /// stuck hardware, and whether the pass quarantined the subarray.
  void record_scrub_pass(std::size_t probed, std::size_t degraded, std::size_t repaired,
                         std::size_t stuck, std::size_t migrated, bool quarantined);
  /// Wall-clock of one scrub pass's repair-and-migrate phase (recorded only
  /// for passes that found degraded columns — clean probes are free).
  void record_repair_latency(double ms);
  /// One response delivered with Response::degraded set.
  void record_degraded_response();

  /// Keep one slow-request exemplar (bounded: the most recent kMaxSlow).
  void record_slow_request(const SlowRequest& slow);
  std::vector<SlowRequest> slow_requests() const;

  // ---- Per-tenant series lifecycle (cardinality control) ----
  /// Retire an evicted tenant's labelled `nvcim_tenant_*` series from the
  /// registry and bump `nvcim_tenants_retired_total`. In-flight stragglers
  /// for a retired tenant keep recording into the global (unlabelled)
  /// families only. Idempotent.
  void retire_tenant(std::size_t user_id);
  /// Re-admitting a previously retired tenant id starts a fresh labelled
  /// series (the cumulative per-tenant history restarts from zero).
  void revive_tenant(std::size_t user_id);

  // ---- Rolling windows (lazy-clock: advanced on read paths only) ----
  /// Milliseconds since this stats object was constructed (steady clock) —
  /// the time base the windows run on.
  double now_ms() const;
  /// Advance the delta rings to `now_ms` and, once per window bucket,
  /// refresh the derived `nvcim_*_1m` gauges. Called from the engine's read
  /// paths (snapshot, health, /metrics); never from the record path.
  void advance_windows(double now_ms) const;
  /// advance_windows(now_ms()) — the real-clock form.
  void refresh_windows() const { advance_windows(now_ms()); }
  /// Windowed SLI samples + stats over (now - window_ms, now]. Reads the
  /// rings as-is; call advance_windows first (or use the real-clock
  /// windowed() below).
  WindowedSli windowed_at(double now_ms, double latency_threshold_ms,
                          double window_ms) const;
  WindowedSli windowed(double latency_threshold_ms, double window_ms) const;

  StatsSnapshot snapshot() const;

  /// The metric registry behind this stats object — Prometheus text /
  /// JSON exposition via registry().prometheus_text() / json_text().
  const obs::Registry& registry() const { return registry_; }
  obs::Registry& registry() { return registry_; }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kMaxSlow = 64;

  struct TenantMetrics {
    obs::Counter* requests = nullptr;
    obs::Counter* candidates = nullptr;
    obs::Histogram* latency = nullptr;
    obs::Histogram* queue_wait = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* deadline_missed = nullptr;
  };
  /// Cached per-tenant metric pointers (creates the labelled series on
  /// first sight); nullptr for a retired tenant — stragglers must not
  /// resurrect series that were just removed from the registry. Caller must
  /// hold mu_.
  TenantMetrics* tenant_locked(std::size_t user_id);

  /// Derived WindowStats over one window; caller must hold mu_.
  WindowStats window_stats_locked(double now_ms, double window_ms) const;

  obs::Registry registry_;
  // Hot metrics, owned by the registry (stable pointers, lock-free writes).
  obs::Histogram* latency_;
  obs::Histogram* queue_wait_;
  obs::Histogram* service_;
  obs::Gauge* queue_depth_hwm_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Counter* batches_;
  obs::Counter* batched_requests_;
  obs::Counter* encode_ms_;
  obs::Counter* retrieve_ms_;
  obs::Counter* decode_ms_;
  obs::Counter* classify_ms_;
  obs::Counter* parallel_fanouts_;
  obs::Counter* candidates_examined_;
  obs::Counter* candidates_possible_;
  obs::Counter* recall_samples_;
  obs::Counter* recall_matches_;
  obs::Counter* batched_decodes_;
  obs::Counter* admitted_;
  obs::Counter* evicted_;
  obs::Counter* migrations_;
  obs::Counter* router_refreshes_;
  obs::Counter* rebalance_ms_;
  obs::Counter* rejected_;
  obs::Gauge* programming_queue_depth_;
  obs::Histogram* admission_latency_;
  obs::Histogram* program_batch_columns_;
  obs::Counter* rejected_admissions_;
  obs::Counter* expired_;
  obs::Counter* deadline_missed_;
  obs::Counter* cancelled_;
  obs::Counter* scrub_passes_;
  obs::Counter* scrub_columns_probed_;
  obs::Counter* columns_degraded_;
  obs::Counter* columns_repaired_;
  obs::Counter* columns_stuck_;
  obs::Counter* scrub_migrations_;
  obs::Counter* subarrays_quarantined_;
  obs::Counter* degraded_responses_;
  obs::Histogram* repair_latency_;
  obs::Gauge* queue_depth_;        ///< live queue depth (vs the HWM above)
  obs::Counter* tenants_retired_;
  // Derived rolling-window gauges, refreshed once per window bucket.
  obs::Gauge* throughput_1m_;
  obs::Gauge* latency_p50_1m_;
  obs::Gauge* latency_p95_1m_;
  obs::Gauge* latency_p99_1m_;
  obs::Gauge* error_rate_1m_;
  obs::Gauge* degraded_rate_1m_;
  obs::Gauge* deadline_miss_rate_1m_;

  obs::WindowConfig window_cfg_;
  Clock::time_point epoch_;  ///< zero point of the windows' ms clock

  mutable std::mutex mu_;  ///< guards clock state, shard/tenant caches, slow_, windows
  Clock::time_point start_{};
  Clock::time_point stop_{};
  bool started_ = false;
  bool stopped_ = false;
  std::vector<obs::Counter*> shard_ms_;  ///< per-shard labelled counters
  std::unordered_map<std::size_t, TenantMetrics> tenants_;
  std::unordered_set<std::size_t> retired_tenants_;
  std::deque<SlowRequest> slow_;
  // Delta rings over the hot metrics (mutable: advanced lazily from const
  // read paths, under mu_).
  mutable obs::HistogramWindow latency_window_;
  mutable obs::HistogramWindow queue_wait_window_;
  mutable obs::CounterWindow degraded_window_;
  mutable obs::CounterWindow deadline_window_;
  mutable obs::CounterWindow expired_window_;
  mutable obs::CounterWindow rejected_window_;
};

}  // namespace nvcim::serve
