#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <vector>

namespace nvcim::serve {

/// Aggregate view of an engine's counters at one instant.
struct StatsSnapshot {
  std::size_t requests = 0;
  std::size_t batches = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  double avg_batch_size = 0.0;
  double throughput_rps = 0.0;  ///< requests per wall-clock second since start
  double p50_latency_ms = 0.0;  ///< submit → response, per request
  double p95_latency_ms = 0.0;
  // Cumulative per-stage wall-clock across all processed batches (the four
  // stages of ServingEngine::process_batch).
  double encode_ms = 0.0;    ///< batched query encode (embed+resample+GEMM)
  double retrieve_ms = 0.0;  ///< shard-grouped crossbar retrieval
  double decode_ms = 0.0;    ///< prompt fetch (LRU / single-flight decode)
  double classify_ms = 0.0;  ///< optional backbone classification
  /// Cumulative per-shard retrieval wall-clock (index = shard id). The sum
  /// can exceed retrieve_ms when shards run in parallel — that overlap IS
  /// the fan-out win.
  std::vector<double> shard_retrieve_ms;
  /// Batches whose retrieve stage fanned shards out across the worker pool.
  std::size_t parallel_retrieve_fanouts = 0;
  // Two-phase retrieval accounting (zero when the feature is off).
  /// Key columns the masked exact pass actually computes. Block-granular:
  /// the fused kernel rounds candidate work up to whole accumulator blocks
  /// (Crossbar::kAccumulatorLanes), so this matches the kernel's own ADC
  /// accounting and exceeds the raw candidate count.
  std::size_t candidates_examined = 0;
  /// Keys a full unmasked pass would have scored (B × shard keys, summed).
  std::size_t candidates_possible = 0;
  /// 1 − examined/possible: the fraction of exact crossbar work pruned.
  double pruned_fraction = 0.0;
  /// Sampled recall-vs-exact: every Nth routed shard pass also runs the
  /// unmasked scoring and counts rows whose argmax matches.
  std::size_t recall_samples = 0;
  std::size_t recall_matches = 0;
  double sampled_recall_at1 = 0.0;  ///< matches/samples (0 with no samples)
  /// Decode GEMMs that stacked >1 missed payload into one batched pass.
  std::size_t batched_decode_gemms = 0;
  // Tenant lifecycle accounting (zero without LifecycleConfig::enabled).
  std::size_t users_admitted = 0;   ///< live admits after start()
  std::size_t users_evicted = 0;    ///< live evictions
  std::size_t migrations = 0;       ///< user slots moved between shards
  /// Candidate routers (re)built by lifecycle operations — per-user, so a
  /// refresh never re-clusters tenants whose membership didn't change.
  std::size_t router_refreshes = 0;
  double rebalance_ms = 0.0;        ///< cumulative rebalance() wall-clock
  /// try_submit() calls bounced with Overloaded because the queue was full
  /// (non-blocking admission control; submit() still blocks instead).
  std::size_t rejected_requests = 0;
};

/// Thread-safe request/batch/latency accounting for a serving engine.
/// Latency samples are kept in full (serving runs here are 1e2–1e5 requests,
/// not production scale), so percentiles are exact.
class EngineStats {
 public:
  void start_clock() {
    std::lock_guard<std::mutex> lock(mu_);
    start_ = Clock::now();
    started_ = true;
  }

  void record_request(double latency_ms, bool cache_hit) {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    cache_hit ? ++cache_hits_ : ++cache_misses_;
    latencies_ms_.push_back(latency_ms);
  }

  void record_batch(std::size_t batch_size) {
    std::lock_guard<std::mutex> lock(mu_);
    ++batches_;
    batched_requests_ += batch_size;
  }

  /// Accumulate one batch's per-stage wall-clock (milliseconds).
  void record_stage_times(double encode_ms, double retrieve_ms, double decode_ms,
                          double classify_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    encode_ms_ += encode_ms;
    retrieve_ms_ += retrieve_ms;
    decode_ms_ += decode_ms;
    classify_ms_ += classify_ms;
  }

  /// Accumulate one shard retrieval's wall-clock (milliseconds).
  void record_shard_time(std::size_t shard, double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    if (shard >= shard_retrieve_ms_.size()) shard_retrieve_ms_.resize(shard + 1, 0.0);
    shard_retrieve_ms_[shard] += ms;
  }

  /// Count one batch whose retrieve stage ran shards in parallel.
  void record_parallel_fanout() {
    std::lock_guard<std::mutex> lock(mu_);
    ++parallel_retrieve_fanouts_;
  }

  /// Accumulate one routed shard pass's candidate counts (keys the masked
  /// pass scored vs keys a full pass would have scored).
  void record_two_phase(std::size_t examined, std::size_t possible) {
    std::lock_guard<std::mutex> lock(mu_);
    candidates_examined_ += examined;
    candidates_possible_ += possible;
  }

  /// Accumulate one sampled recall-vs-exact comparison.
  void record_recall_sample(std::size_t rows, std::size_t matches) {
    std::lock_guard<std::mutex> lock(mu_);
    recall_samples_ += rows;
    recall_matches_ += matches;
  }

  /// Count one decode GEMM that stacked several missed payloads.
  void record_batched_decode() {
    std::lock_guard<std::mutex> lock(mu_);
    ++batched_decode_gemms_;
  }

  /// Count one live admission (and its router build, when routed).
  void record_admission(bool router_refreshed) {
    std::lock_guard<std::mutex> lock(mu_);
    ++users_admitted_;
    if (router_refreshed) ++router_refreshes_;
  }

  void record_eviction() {
    std::lock_guard<std::mutex> lock(mu_);
    ++users_evicted_;
  }

  void record_migration() {
    std::lock_guard<std::mutex> lock(mu_);
    ++migrations_;
  }

  /// Accumulate one rebalance() cycle's wall-clock.
  void record_rebalance(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    rebalance_ms_ += ms;
  }

  void record_rejection() {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_requests_;
  }

  StatsSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    StatsSnapshot s;
    s.requests = requests_;
    s.batches = batches_;
    s.cache_hits = cache_hits_;
    s.cache_misses = cache_misses_;
    const std::size_t probes = cache_hits_ + cache_misses_;
    if (probes > 0) s.cache_hit_rate = static_cast<double>(cache_hits_) / probes;
    if (batches_ > 0) s.avg_batch_size = static_cast<double>(batched_requests_) / batches_;
    if (started_ && requests_ > 0) {
      const double secs = std::chrono::duration<double>(Clock::now() - start_).count();
      if (secs > 0.0) s.throughput_rps = static_cast<double>(requests_) / secs;
    }
    if (!latencies_ms_.empty()) {
      std::vector<double> sorted = latencies_ms_;
      std::sort(sorted.begin(), sorted.end());
      s.p50_latency_ms = percentile(sorted, 0.50);
      s.p95_latency_ms = percentile(sorted, 0.95);
    }
    s.encode_ms = encode_ms_;
    s.retrieve_ms = retrieve_ms_;
    s.decode_ms = decode_ms_;
    s.classify_ms = classify_ms_;
    s.shard_retrieve_ms = shard_retrieve_ms_;
    s.parallel_retrieve_fanouts = parallel_retrieve_fanouts_;
    s.candidates_examined = candidates_examined_;
    s.candidates_possible = candidates_possible_;
    if (candidates_possible_ > 0)
      s.pruned_fraction = 1.0 - static_cast<double>(candidates_examined_) /
                                    static_cast<double>(candidates_possible_);
    s.recall_samples = recall_samples_;
    s.recall_matches = recall_matches_;
    if (recall_samples_ > 0)
      s.sampled_recall_at1 =
          static_cast<double>(recall_matches_) / static_cast<double>(recall_samples_);
    s.batched_decode_gemms = batched_decode_gemms_;
    s.users_admitted = users_admitted_;
    s.users_evicted = users_evicted_;
    s.migrations = migrations_;
    s.router_refreshes = router_refreshes_;
    s.rebalance_ms = rebalance_ms_;
    s.rejected_requests = rejected_requests_;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;

  static double percentile(const std::vector<double>& sorted, double q) {
    const std::size_t idx =
        static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  }

  mutable std::mutex mu_;
  Clock::time_point start_{};
  bool started_ = false;
  std::size_t requests_ = 0;
  std::size_t batches_ = 0;
  std::size_t batched_requests_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  double encode_ms_ = 0.0;
  double retrieve_ms_ = 0.0;
  double decode_ms_ = 0.0;
  double classify_ms_ = 0.0;
  std::vector<double> shard_retrieve_ms_;
  std::size_t parallel_retrieve_fanouts_ = 0;
  std::size_t candidates_examined_ = 0;
  std::size_t candidates_possible_ = 0;
  std::size_t recall_samples_ = 0;
  std::size_t recall_matches_ = 0;
  std::size_t batched_decode_gemms_ = 0;
  std::size_t users_admitted_ = 0;
  std::size_t users_evicted_ = 0;
  std::size_t migrations_ = 0;
  std::size_t router_refreshes_ = 0;
  double rebalance_ms_ = 0.0;
  std::size_t rejected_requests_ = 0;
  std::vector<double> latencies_ms_;
};

}  // namespace nvcim::serve
