#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nvcim/obs/slo.hpp"

namespace nvcim::serve {

/// One declarative SLO's evaluated burn state.
struct SloStatus {
  std::string name;        ///< "latency" | "availability" | "deadline"
  double objective = 0.0;
  obs::BurnRate burn;
};

/// The engine's one machine-readable health verdict, combining SLO burn
/// rates (dual-window), device health from the scrubber, queue saturation
/// and the pending-admission backlog. Backs /healthz (Critical => 503) and
/// /readyz (ready => 200).
struct HealthReport {
  obs::HealthState state = obs::HealthState::Ok;
  /// Workers up, store built, staged admissions drained.
  bool ready = false;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t pending_admissions = 0;
  // Device fleet view (from ShardedOvtStore subarray health).
  std::size_t subarrays_total = 0;
  std::size_t subarrays_degraded = 0;  ///< includes failed
  std::size_t subarrays_failed = 0;
  std::size_t subarrays_quarantined = 0;
  std::vector<SloStatus> slos;
  /// Human-readable contributing causes for any non-Ok state.
  std::vector<std::string> reasons;

  std::string json() const;
};

}  // namespace nvcim::serve
