#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "nvcim/serve/request.hpp"

namespace nvcim::serve {

/// Cross-tenant scheduling policy for the request queue.
enum class SchedPolicy {
  /// Global arrival order, blind to tenants and deadlines (the legacy
  /// std::deque path, kept for A/B). Expiry still applies.
  Fifo,
  /// Deficit round-robin across per-tenant queues: each active tenant earns
  /// `quantum` requests per round, so a hot tenant at queue capacity cannot
  /// starve a cold one. Within a tenant, requests order by (deadline,
  /// -priority, arrival); across tenants, requests whose deadline is inside
  /// the urgency window are pulled EDF-first regardless of whose turn it is.
  Drr,
};

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::Drr;
  /// Requests a tenant may dequeue per DRR round. Larger favours batch
  /// locality (runs of one tenant), smaller favours interleaving.
  std::size_t quantum = 4;
  /// Deadlines within `now + urgency_window_ms` are treated as critical:
  /// pulled EDF-first across tenants ahead of the DRR rotation, and batch
  /// coalescing never waits past them.
  double urgency_window_ms = 2.0;
  /// Default per-tenant rate limit in requests/second; 0 = unlimited.
  /// Enforced as a token bucket (burst = max(quantum, 1)) at dequeue time:
  /// over-limit tenants stay queued, they are just not scheduled. Per-tenant
  /// overrides via RequestScheduler::set_rate_limit().
  double default_rate_limit_rps = 0.0;
};

/// Deadline/priority-aware fair request queue: per-tenant queues drained by
/// deficit round-robin with an EDF escape hatch for critical deadlines,
/// optional token-bucket rate limits, expiry of already-dead requests and
/// cancel-before-dispatch.
///
/// Passive and externally synchronized: the engine calls every method under
/// its queue mutex (the condition-variable protocol stays in the engine).
/// Every method takes the current time explicitly, so unit tests drive the
/// clock deterministically.
///
/// Scheduling only reorders which requests form a batch — never what any
/// request computes — so retrieval results are bit-identical under any
/// policy (property-tested).
class RequestScheduler {
 public:
  using Clock = QueuedRequest::Clock;

  explicit RequestScheduler(SchedulerConfig cfg);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Queued requests for one tenant (tests/introspection).
  std::size_t queued_for(std::size_t user_id) const;

  /// Enqueue one request. `req.seq` is assigned here (arrival order).
  void push(QueuedRequest req, Clock::time_point now);

  /// Earliest deadline over all queued requests, or QueuedRequest::kNoDeadline
  /// when none carries one. Drives the batch-coalescing window: a worker must
  /// not sleep past this instant.
  Clock::time_point next_deadline() const;

  /// Remove and return every request whose deadline has already passed.
  /// Callers settle them with DeadlineExceeded — they never reach a batch.
  std::vector<QueuedRequest> take_expired(Clock::time_point now);

  /// Dequeue up to `max_batch` requests under the configured policy. Call
  /// take_expired(now) first: pop_batch assumes no queued deadline < now.
  std::vector<QueuedRequest> pop_batch(std::size_t max_batch, Clock::time_point now);

  /// Remove a still-queued request by id. Returns true and moves it into
  /// `*out` when found; false once dispatched (or never queued).
  bool cancel(std::uint64_t id, QueuedRequest* out);

  /// Remove and return everything still queued (stop() path).
  std::vector<QueuedRequest> drain();

  /// Per-tenant rate-limit override (requests/second, 0 = unlimited).
  void set_rate_limit(std::size_t user_id, double rps);

 private:
  struct Tenant {
    std::deque<QueuedRequest> q;  ///< sorted by (deadline, -priority, seq)
    std::size_t deficit = 0;      ///< DRR credit, reset when the queue empties
    double rate_rps = 0.0;        ///< 0 = unlimited
    double tokens = 0.0;
    Clock::time_point last_refill{};
    bool in_ring = false;
  };

  Tenant& tenant(std::size_t user_id);
  void ring_add(std::size_t user_id);
  void ring_remove(std::size_t user_id);
  /// Advance the token bucket to `now` (no-op for unlimited tenants).
  static void refill(Tenant& t, Clock::time_point now, double burst);
  /// Refill, then consume one token; true when a dequeue is allowed.
  static bool take_token(Tenant& t, Clock::time_point now, double burst);
  void pop_front_into(Tenant& t, std::vector<QueuedRequest>& out);
  std::vector<QueuedRequest> pop_batch_fifo(std::size_t max_batch, Clock::time_point now);

  SchedulerConfig cfg_;
  std::unordered_map<std::size_t, Tenant> tenants_;
  /// Round-robin rotation of tenants with queued requests. A tenant enters
  /// at the back on its first queued request and leaves when drained, so an
  /// idle tenant costs nothing and a returning one rejoins at the back.
  std::vector<std::size_t> ring_;
  std::size_t ring_pos_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nvcim::serve
