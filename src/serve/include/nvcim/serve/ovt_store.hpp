#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "nvcim/retrieval/search.hpp"

namespace nvcim::serve {

struct OvtStoreConfig {
  std::size_t n_shards = 2;
  retrieval::Algorithm algorithm = retrieval::Algorithm::SSA;
  retrieval::ScaledSearchConfig ssa;
  cim::CrossbarConfig crossbar;
  nvm::VariationModel variation;
  cim::ProgramOptions program;
};

/// Multi-tenant OVT key store: packs many users' encoded prompt keys into a
/// small number of shared crossbar shards. Each shard is one CimRetriever
/// (per-scale accelerator banks) holding the concatenated keys of its users;
/// a user owns a contiguous key range [begin, end) within its shard, and
/// retrieval for a user argmaxes only inside that range. Users are assigned
/// to the least-loaded shard at registration, so shards stay balanced
/// without a separate placement pass.
///
/// Thread-safety: per-shard mutexes — queries against different shards
/// proceed concurrently; queries against one shard serialize (the crossbar
/// op counters make bank reads non-const).
class ShardedOvtStore {
 public:
  /// A user's placement: shard index plus its key range within the shard.
  struct UserSlot {
    std::size_t shard = 0;
    std::size_t begin = 0;  ///< first key index within the shard
    std::size_t end = 0;    ///< one past the last key index
    std::size_t n_keys() const { return end - begin; }
  };

  explicit ShardedOvtStore(OvtStoreConfig cfg);

  /// Register a user's retrieval keys (all users must share one key shape).
  /// Must precede build(); user ids are unique.
  void add_user(std::size_t user_id, const std::vector<Matrix>& keys);

  /// Program every shard's crossbar banks. Call once after registration.
  void build(Rng& rng);
  bool built() const { return built_; }

  std::size_t n_shards() const { return shards_.size(); }
  std::size_t n_users() const { return slots_.size(); }
  std::size_t n_keys() const;
  bool has_user(std::size_t user_id) const { return slots_.count(user_id) > 0; }
  const UserSlot& slot(std::size_t user_id) const;

  /// Batched scores of B flattened queries against every key of `shard`
  /// (B×key_size → B×shard_keys). All queries of the batch must target this
  /// shard; the caller masks rows to each user's slot afterwards.
  Matrix shard_scores(std::size_t shard, const Matrix& queries);

  /// shard_scores() written into caller storage with caller scratch —
  /// bit-identical, allocation-free once warm. Different shards may be
  /// queried concurrently (per-shard locking); callers running shards in
  /// parallel must pass distinct `out`/`scratch` per concurrent call.
  void shard_scores_into(std::size_t shard, const Matrix& queries, Matrix& out,
                         retrieval::CimRetriever::Scratch& scratch);

  /// Serial reference path: best user-local OVT index for one query,
  /// through the single-query retrieval pipeline.
  std::size_t retrieve_user(std::size_t user_id, const Matrix& query);

  /// User-local argmax of one scores row restricted to the user's key range.
  static std::size_t best_in_slot(const Matrix& scores, std::size_t row, const UserSlot& slot);

  /// Total crossbar op counters across all shards.
  cim::OpCounters counters() const;

 private:
  struct Shard {
    std::vector<Matrix> keys;  ///< concatenated user keys, cleared by build()
    std::unique_ptr<retrieval::CimRetriever> retriever;
    std::mutex mu;
  };

  OvtStoreConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::size_t, UserSlot> slots_;
  bool built_ = false;
};

}  // namespace nvcim::serve
