#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "nvcim/cluster/kmeans.hpp"
#include "nvcim/retrieval/search.hpp"

namespace nvcim::serve {

/// Two-phase (IVF-style) retrieval knobs: phase 1 clusters each user's OVT
/// keys with the paper's Eq. 1/2 k-means machinery at store-build time and,
/// per query, ranks the cluster centroids through a low-bit sketch GEMM to
/// emit a candidate bitmap; phase 2 runs the exact crossbar scoring only on
/// the candidates (masked fused kernel). Key order in the crossbars is
/// untouched, so `nprobe = 0` (= examine every cluster) reproduces the
/// exact path bit-identically on every candidate column.
struct TwoPhaseConfig {
  bool enabled = false;
  /// Clusters examined per query. 0 = all clusters of the user — candidates
  /// cover the full slot, results match exact retrieval bit-for-bit.
  std::size_t nprobe = 2;
  /// Optional cap on the shortlist: after cluster expansion keep at most
  /// max(1, frac·slot_keys) candidates, ranked by the key-sketch scores.
  /// 0 disables the trim.
  double shortlist_frac = 0.0;
  /// Bit width of the centroid/key sketch planes (4–8); sketches only rank,
  /// they never contribute to the returned scores.
  std::size_t sketch_bits = 6;
  /// Paper Eq. 2 selection of k per user slot. Serving slots are larger
  /// than the paper's training buffers, so the cap is raised.
  cluster::KSelectionConfig k_select{2, 16, 5.0, 1.5};
  cluster::KMeansConfig kmeans;
  /// Every Nth routed shard pass also runs the unmasked exact scoring and
  /// records recall-vs-exact into EngineStats. 0 disables sampling.
  std::size_t recall_sample_every = 16;
};

struct OvtStoreConfig {
  std::size_t n_shards = 2;
  retrieval::Algorithm algorithm = retrieval::Algorithm::SSA;
  retrieval::ScaledSearchConfig ssa;
  cim::CrossbarConfig crossbar;
  nvm::VariationModel variation;
  cim::ProgramOptions program;
  TwoPhaseConfig two_phase;
};

/// Multi-tenant OVT key store: packs many users' encoded prompt keys into a
/// small number of shared crossbar shards. Each shard is one CimRetriever
/// (per-scale accelerator banks) holding the concatenated keys of its users;
/// a user owns a contiguous key range [begin, end) within its shard, and
/// retrieval for a user argmaxes only inside that range. Users are assigned
/// to the least-loaded shard at registration, so shards stay balanced
/// without a separate placement pass.
///
/// With TwoPhaseConfig::enabled, build() additionally clusters every user's
/// keys (k-means, k per Eq. 2) and quantizes centroid + key sketch planes;
/// route_candidates() then ranks centroids per query through the sketches
/// and emits candidate bitmaps the masked scoring path consumes.
///
/// Thread-safety: per-shard mutexes — queries against different shards
/// proceed concurrently; queries against one shard serialize (the crossbar
/// op counters make bank reads non-const). Routing reads immutable
/// post-build state and needs no lock.
class ShardedOvtStore {
 public:
  /// A user's placement: shard index plus its key range within the shard.
  struct UserSlot {
    std::size_t shard = 0;
    std::size_t begin = 0;  ///< first key index within the shard
    std::size_t end = 0;    ///< one past the last key index
    std::size_t n_keys() const { return end - begin; }
  };

  /// Reusable phase-1 buffers (one per serving worker): the sketched query
  /// row, per-centroid scores, the centroid ranking order and the candidate
  /// scratch of the shortlist trim.
  struct RouteScratch {
    std::vector<float> qsketch;
    std::vector<float> centroid_scores;
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> cand;
    std::vector<float> cand_scores;
  };

  explicit ShardedOvtStore(OvtStoreConfig cfg);

  /// Register a user's retrieval keys (all users must share one key shape).
  /// Must precede build(); user ids are unique.
  void add_user(std::size_t user_id, const std::vector<Matrix>& keys);

  /// Program every shard's crossbar banks (and, with two-phase retrieval
  /// enabled, build every user's candidate router). Call once after
  /// registration.
  void build(Rng& rng);
  bool built() const { return built_; }

  std::size_t n_shards() const { return shards_.size(); }
  std::size_t n_users() const { return slots_.size(); }
  std::size_t n_keys() const;
  /// Keys packed into one shard (0 for an empty shard). Valid after build().
  std::size_t shard_keys(std::size_t shard) const;
  bool has_user(std::size_t user_id) const { return slots_.count(user_id) > 0; }
  const UserSlot& slot(std::size_t user_id) const;

  /// True when build() constructed candidate routers (two-phase enabled).
  bool routed() const { return !routers_.empty(); }
  /// Cluster count of one user's router (tests / diagnostics).
  std::size_t router_k(std::size_t user_id) const;

  /// Phase 1: candidate bitmaps over `shard`'s key columns for B queries
  /// (row b belongs to row_users[b]). Ranks each user's cluster centroids
  /// against the sketched query, expands the top-nprobe clusters to member
  /// keys and optionally trims to the sketch-ranked shortlist. Every row
  /// gets at least one candidate, all inside the user's slot.
  ///
  /// Returns the key columns the masked exact pass will actually compute:
  /// the fused kernel prunes at accumulator-block granularity
  /// (Crossbar::kAccumulatorLanes), so candidate work rounds up to whole
  /// blocks — this count matches the kernel's own ADC accounting, not the
  /// (smaller) raw candidate count.
  std::size_t route_candidates(std::size_t shard, const Matrix& queries,
                               const std::vector<std::size_t>& row_users,
                               cim::CandidateSet& out, RouteScratch& scratch) const;

  /// Batched scores of B flattened queries against every key of `shard`
  /// (B×key_size → B×shard_keys). All queries of the batch must target this
  /// shard; the caller masks rows to each user's slot afterwards.
  Matrix shard_scores(std::size_t shard, const Matrix& queries);

  /// shard_scores() written into caller storage with caller scratch —
  /// bit-identical, allocation-free once warm. Different shards may be
  /// queried concurrently (per-shard locking); callers running shards in
  /// parallel must pass distinct `out`/`scratch` per concurrent call.
  /// With `candidates` (phase 2), only candidate columns are scored — those
  /// entries are bit-identical to the unmasked pass; the rest are exact 0
  /// or exact full-pass values (block-granular masking), so winners must be
  /// picked with best_in_slot_candidates().
  void shard_scores_into(std::size_t shard, const Matrix& queries, Matrix& out,
                         retrieval::CimRetriever::Scratch& scratch,
                         const cim::CandidateSet* candidates = nullptr);

  /// Serial reference path: best user-local OVT index for one query,
  /// through the single-query retrieval pipeline.
  std::size_t retrieve_user(std::size_t user_id, const Matrix& query);

  /// User-local argmax of one scores row restricted to the user's key range.
  static std::size_t best_in_slot(const Matrix& scores, std::size_t row, const UserSlot& slot);

  /// best_in_slot() restricted to the row's candidate columns (the masked
  /// scoring path zeroes non-candidates, so they must not win the argmax).
  static std::size_t best_in_slot_candidates(const Matrix& scores, std::size_t row,
                                             const UserSlot& slot,
                                             const cim::CandidateSet& candidates);

  /// Total crossbar op counters across all shards.
  cim::OpCounters counters() const;

 private:
  struct Shard {
    std::vector<Matrix> keys;  ///< concatenated user keys, cleared by build()
    std::unique_ptr<retrieval::CimRetriever> retriever;
    std::mutex mu;
  };

  /// Phase-1 routing state of one user: cluster membership in CSR form
  /// (user-local key indices, cluster-grouped) plus the quantized sketch
  /// planes. Immutable after build().
  struct UserRouter {
    std::vector<std::uint32_t> member_begin;  ///< k+1 offsets into members
    std::vector<std::uint32_t> members;       ///< user-local key indices
    Matrix centroid_sketch;                   ///< k × key_size, low-bit ints
    Matrix key_sketch;                        ///< slot_keys × key_size ints
  };

  void build_router(std::size_t user_id, const UserSlot& slot,
                    const std::vector<Matrix>& shard_keys);

  OvtStoreConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::size_t, UserSlot> slots_;
  std::unordered_map<std::size_t, UserRouter> routers_;
  bool built_ = false;
};

}  // namespace nvcim::serve
