#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "nvcim/cim/faults.hpp"
#include "nvcim/cluster/kmeans.hpp"
#include "nvcim/retrieval/search.hpp"
#include "nvcim/serve/lifecycle.hpp"

namespace nvcim::serve {

/// Two-phase (IVF-style) retrieval knobs: phase 1 clusters each user's OVT
/// keys with the paper's Eq. 1/2 k-means machinery at store-build time and,
/// per query, ranks the cluster centroids through a low-bit sketch GEMM to
/// emit a candidate bitmap; phase 2 runs the exact crossbar scoring only on
/// the candidates (masked fused kernel). Key order in the crossbars is
/// untouched, so `nprobe = 0` (= examine every cluster) reproduces the
/// exact path bit-identically on every candidate column.
struct TwoPhaseConfig {
  bool enabled = false;
  /// Clusters examined per query. 0 = all clusters of the user — candidates
  /// cover the full slot, results match exact retrieval bit-for-bit.
  std::size_t nprobe = 2;
  /// Optional cap on the shortlist: after cluster expansion keep at most
  /// max(1, frac·slot_keys) candidates, ranked by the key-sketch scores.
  /// 0 disables the trim.
  double shortlist_frac = 0.0;
  /// Bit width of the centroid/key sketch planes (4–8); sketches only rank,
  /// they never contribute to the returned scores.
  std::size_t sketch_bits = 6;
  /// Paper Eq. 2 selection of k per user slot. Serving slots are larger
  /// than the paper's training buffers, so the cap is raised.
  cluster::KSelectionConfig k_select{2, 16, 5.0, 1.5};
  cluster::KMeansConfig kmeans;
  /// Every Nth routed shard pass also runs the unmasked exact scoring and
  /// records recall-vs-exact into EngineStats. 0 disables sampling.
  std::size_t recall_sample_every = 16;
};

/// Health of one crossbar subarray as judged by the scrubber.
///   Healthy  — every probed column matched its pristine programming.
///   Degraded — at least one column deviates (stuck cells or drift); repair
///              is pending or in flight, serving continues from the slot.
///   Failed   — the subarray is quarantined out of placement (too many
///              unrepairable columns, or killed outright).
enum class SubarrayHealth : std::uint8_t { Healthy, Degraded, Failed };

/// Detection/repair policy of one scrub pass.
struct ScrubPolicy {
  /// Per-cell deviation (analog level units) above which a cell counts as
  /// deviant from its pristine programming. Programming noise is frozen at
  /// write time and recorded in the pristine shadow, so fault-free columns
  /// probe exactly clean — the eps only absorbs float round-off.
  double cell_eps = 1e-6;
  /// A column is degraded when its deviant-cell fraction exceeds this
  /// (0 = any deviant cell degrades the column).
  double column_deviant_frac = 0.0;
  /// Re-program degraded columns in place from the tenants' retained keys.
  bool auto_repair = true;
  /// Migrate tenants off columns that fail the in-place rewrite (stuck
  /// hardware) to the least-loaded other shard.
  bool auto_migrate = true;
  /// Quarantine the subarray once this many of its columns are
  /// unrepairable (stuck or unowned-deviant after a repair pass).
  std::size_t quarantine_after = 8;
};

/// Result of a detect-only scrub pass over one subarray.
struct ScrubReport {
  std::size_t columns_probed = 0;
  std::vector<std::size_t> degraded;  ///< shard-local degraded column indices
  SubarrayHealth health = SubarrayHealth::Healthy;
};

/// Result of a full scrub-and-repair pass over one subarray.
struct ScrubOutcome {
  std::size_t columns_probed = 0;
  std::size_t columns_degraded = 0;  ///< detected deviant this pass
  std::size_t columns_repaired = 0;  ///< in-place rewrite restored them
  std::size_t columns_stuck = 0;     ///< still deviant after the rewrite
  std::vector<std::size_t> migrated_users;  ///< moved off stuck columns
  bool quarantined = false;  ///< subarray crossed the failure threshold
  SubarrayHealth health = SubarrayHealth::Healthy;
};

struct OvtStoreConfig {
  std::size_t n_shards = 2;
  retrieval::Algorithm algorithm = retrieval::Algorithm::SSA;
  retrieval::ScaledSearchConfig ssa;
  cim::CrossbarConfig crossbar;
  nvm::VariationModel variation;
  cim::ProgramOptions program;
  TwoPhaseConfig two_phase;
  /// Online tenant lifecycle: mutable post-build store (admit/evict/
  /// rebalance while serving) behind an epoch-versioned directory.
  LifecycleConfig lifecycle;
};

/// Multi-tenant OVT key store: packs many users' encoded prompt keys into a
/// small number of shared crossbar shards. Each shard is one CimRetriever
/// (per-scale accelerator banks) holding the concatenated keys of its users;
/// a user owns a contiguous key range [begin, end) within its shard, and
/// retrieval for a user argmaxes only inside that range. Users are assigned
/// to the least-loaded shard at registration, so shards stay balanced
/// without a separate placement pass.
///
/// With TwoPhaseConfig::enabled, build() additionally clusters every user's
/// keys (k-means, k per Eq. 2) and quantizes centroid + key sketch planes;
/// route_candidates() then ranks centroids per query through the sketches
/// and emits candidate bitmaps the masked scoring path consumes.
///
/// With LifecycleConfig::enabled, the store stays mutable after build():
///   - user → slot/router state lives in an epoch-versioned TenantDirectory
///     (immutable snapshots, copy-on-write publishes); in-flight batches
///     pin() one snapshot and serve every stage against it;
///   - admit_user() allocates a slot (least-loaded shard, block-aligned when
///     routing benefits), programs the new key columns into the shard's
///     crossbars — per-key quantization scales and per-(subarray, column)
///     noise streams make the result bit-identical to a from-scratch build
///     containing the user, without touching any other column — builds the
///     user's candidate router, and publishes a new epoch;
///   - evict_user() unpublishes the slot; the columns are reprogrammed only
///     after every reader pinned to an older epoch drains (epoch-based slot
///     reclamation in SlotAllocator);
///   - migrate_user()/plan_rebalance() move slot ranges from overloaded to
///     underloaded shards with the same program-then-publish-then-free
///     protocol, so serving never quiesces.
///
/// Thread-safety: per-shard mutexes — queries against different shards
/// proceed concurrently; queries against one shard serialize (the crossbar
/// op counters make bank reads non-const), and lifecycle programming of a
/// shard excludes its queries for the duration of the column writes only.
/// Lifecycle mutations serialize on one store-level mutex. Routing reads an
/// immutable snapshot and needs no lock.
class ShardedOvtStore {
 public:
  using UserSlot = serve::UserSlot;

  /// Reusable phase-1 buffers (one per serving worker): the sketched query
  /// row, per-centroid scores, the centroid ranking order and the candidate
  /// scratch of the shortlist trim.
  struct RouteScratch {
    std::vector<float> qsketch;
    std::vector<float> centroid_scores;
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> cand;
    std::vector<float> cand_scores;
  };

  explicit ShardedOvtStore(OvtStoreConfig cfg);

  /// Register a user's retrieval keys (all users must share one key shape).
  /// Before build(): records the user for the initial build. After build():
  /// hard error without the lifecycle subsystem; with it, forwards to
  /// admit_user() — the live-admission path.
  void add_user(std::size_t user_id, const std::vector<Matrix>& keys);

  /// Program every shard's crossbar banks (and, with two-phase retrieval
  /// enabled, build every user's candidate router). Call once after
  /// registration.
  void build(Rng& rng);
  bool built() const { return built_; }
  bool lifecycle() const { return cfg_.lifecycle.enabled; }

  // ---- Online tenant lifecycle (requires LifecycleConfig::enabled) ----

  /// Admit a user while serving: allocate a slot, program the keys into the
  /// target shard's crossbars, build the candidate router (two-phase), and
  /// publish a new directory epoch. The user's retrieval results are
  /// bit-identical to a from-scratch build that placed it in the same slot,
  /// and no other user's scores change. Implemented as
  /// stage_admit() → program_span()× → commit_admit() on the caller thread,
  /// so the synchronous and write-behind paths are the same code.
  void admit_user(std::size_t user_id, const std::vector<Matrix>& keys);

  // ---- Staged (write-behind) admission ----
  //
  // The three-step protocol behind asynchronous admission: stage_admit()
  // does every placement decision (shard choice, slot allocation, capacity
  // provisioning, router build) under the lifecycle lock and publishes the
  // slot as PENDING; program_span() programs one per-subarray column batch
  // under that shard's lock only (callable from any worker, in any order —
  // each column draws from its own position-derived stream); commit_admit()
  // flips the tenant live once every span is programmed. The programmed
  // cells are bit-identical to a synchronous admit_user() and to a
  // from-scratch build with the same placement.

  /// One staged admission: the placement plus the per-subarray programming
  /// batches still to run. `keys` is a stable copy shared with the
  /// programming tasks; `spans` are [first, last) shard-column ranges, one
  /// per touched subarray.
  struct StagedAdmission {
    std::size_t user_id = 0;
    std::size_t shard = 0;
    std::size_t begin = 0;
    std::shared_ptr<const std::vector<Matrix>> keys;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
  };

  /// Stage an admission: place, allocate, provision crossbar capacity,
  /// build the router and publish the slot as pending. The tenant is not
  /// queryable until commit_admit().
  StagedAdmission stage_admit(std::size_t user_id, const std::vector<Matrix>& keys);

  /// Program one staged span (spans[idx]) into the target shard. Takes only
  /// that shard's lock — serving on other shards is untouched, and this
  /// shard is blocked for one subarray batch, not the whole slot.
  void program_span(const StagedAdmission& staged, std::size_t idx);

  /// Flip a staged tenant live (all spans programmed). Publishes the epoch
  /// that makes the user queryable.
  void commit_admit(std::size_t user_id);

  /// Roll a staged admission back (programming failed): unpublish the slot
  /// and return its columns to the allocator. No-op if already settled.
  void abort_admit(std::size_t user_id);

  /// True when the user's slot exists AND its columns are fully programmed
  /// (i.e. not mid-write-behind). The submit-gate for async admission.
  bool user_live(std::size_t user_id) const;

  /// Evict a user: unpublish its slot and router. The key columns are left
  /// in place (in-flight batches pinned to older epochs may still read
  /// them) and become reusable once those readers drain.
  void evict_user(std::size_t user_id);

  /// Move one user's slot to `to_shard`: program its keys there, republish
  /// the directory, free the old range (epoch-deferred). The router is
  /// untouched — cluster membership is slot-local. The user's post-move
  /// results are bit-identical to a from-scratch build with that placement.
  void migrate_user(std::size_t user_id, std::size_t to_shard);

  /// Deterministic migration plan moving users from overloaded to
  /// underloaded shards (see LifecycleConfig::rebalance_tolerance).
  std::vector<Migration> plan_rebalance() const;

  /// Pin the current directory epoch: the returned view is immutable and
  /// defers reuse of any slot freed after it was taken. One per batch.
  PinnedDirectory pin() const;
  std::uint64_t epoch() const { return directory_.epoch(); }

  /// Occupied key columns of one shard (allocated slots, not capacity).
  std::size_t shard_occupied(std::size_t shard) const;
  /// Candidate routers (re)built after the initial build() — admits and
  /// explicit refreshes. Per-user routers make the refresh inherently
  /// incremental: membership changes never re-cluster other tenants.
  std::size_t router_refreshes() const;

  // ---- Shared query-path API (legacy + lifecycle) ----

  std::size_t n_shards() const { return shards_.size(); }
  std::size_t n_users() const;
  std::size_t n_keys() const;
  /// Score-row width of one shard: the packed key count after a legacy
  /// build(), the crossbar capacity (occupied + free columns) of a
  /// lifecycle store. 0 for an empty shard. Valid after build().
  std::size_t shard_keys(std::size_t shard) const;
  bool has_user(std::size_t user_id) const;
  /// Current placement of a user (by value: a concurrent lifecycle publish
  /// must not dangle the caller). Batches should read their PinnedDirectory
  /// instead, for an epoch-consistent view.
  UserSlot slot(std::size_t user_id) const;

  /// True when build() constructed candidate routers (two-phase enabled).
  bool routed() const { return routed_; }
  /// Cluster count of one user's router (tests / diagnostics).
  std::size_t router_k(std::size_t user_id) const;

  /// Phase 1: candidate bitmaps over `shard`'s key columns for B queries
  /// (row b belongs to row_users[b]), resolved against the pinned snapshot
  /// `snap` — slots, routers and the score-row width are all read from that
  /// epoch, so a concurrent admit/evict cannot tear the routing. Ranks each
  /// user's cluster centroids against the sketched query, expands the
  /// top-nprobe clusters to member keys and optionally trims to the
  /// sketch-ranked shortlist. Every row gets at least one candidate, all
  /// inside the user's slot.
  ///
  /// Returns the key columns the masked exact pass will actually compute:
  /// the fused kernel prunes at accumulator-block granularity
  /// (Crossbar::kAccumulatorLanes), so candidate work rounds up to whole
  /// blocks — this count matches the kernel's own ADC accounting, not the
  /// (smaller) raw candidate count.
  std::size_t route_candidates(const TenantSnapshot& snap, std::size_t shard,
                               const Matrix& queries,
                               const std::vector<std::size_t>& row_users,
                               cim::CandidateSet& out, RouteScratch& scratch) const;

  /// Convenience overload against the current epoch.
  std::size_t route_candidates(std::size_t shard, const Matrix& queries,
                               const std::vector<std::size_t>& row_users,
                               cim::CandidateSet& out, RouteScratch& scratch) const;

  /// Batched scores of B flattened queries against every key of `shard`
  /// (B×key_size → B×shard_keys). All queries of the batch must target this
  /// shard; the caller masks rows to each user's slot afterwards.
  Matrix shard_scores(std::size_t shard, const Matrix& queries);

  /// shard_scores() written into caller storage with caller scratch —
  /// bit-identical, allocation-free once warm. Different shards may be
  /// queried concurrently (per-shard locking); callers running shards in
  /// parallel must pass distinct `out`/`scratch` per concurrent call.
  /// With `candidates` (phase 2), only candidate columns are scored — those
  /// entries are bit-identical to the unmasked pass; the rest are exact 0
  /// or exact full-pass values (block-granular masking), so winners must be
  /// picked with best_in_slot_candidates().
  void shard_scores_into(std::size_t shard, const Matrix& queries, Matrix& out,
                         retrieval::CimRetriever::Scratch& scratch,
                         const cim::CandidateSet* candidates = nullptr);

  /// Serial reference path: best user-local OVT index for one query,
  /// through the single-query retrieval pipeline.
  std::size_t retrieve_user(std::size_t user_id, const Matrix& query);

  /// User-local argmax of one scores row restricted to the user's key range.
  static std::size_t best_in_slot(const Matrix& scores, std::size_t row, const UserSlot& slot);

  /// best_in_slot() restricted to the row's candidate columns (the masked
  /// scoring path zeroes non-candidates, so they must not win the argmax).
  static std::size_t best_in_slot_candidates(const Matrix& scores, std::size_t row,
                                             const UserSlot& slot,
                                             const cim::CandidateSet& candidates);

  /// Total crossbar op counters across all shards.
  cim::OpCounters counters() const;

  // ---- Device-fault tolerance (requires LifecycleConfig::enabled) ----
  //
  // The fault unit is the column-tile subarray: `sub` indexes the shard's
  // column tiles, each cols_per_subarray() key columns wide. Detection
  // compares every cell of a column against the pristine shadow recorded at
  // program time (Crossbar::probe_column) — zero false positives, 100%
  // detection of any fault that changed a cell. Repair re-programs degraded
  // columns in place from the tenants' retained keys (slot-deterministic
  // noise streams make the rewrite bit-identical to the original content);
  // columns that stay deviant after the rewrite are stuck hardware, and
  // their tenants migrate to a healthy shard. A subarray accumulating
  // unrepairable columns past the policy threshold is quarantined: its
  // columns leave the placement pool permanently.

  std::size_t cols_per_subarray() const { return cfg_.crossbar.cols; }
  /// Column-tile subarrays currently provisioned on `shard` (0 if empty).
  std::size_t shard_subarrays(std::size_t shard) const;

  /// Inject a stuck-at fault into `n_cells` cells per (row tile, bank)
  /// segment of shard column `col`. Returns total cells clamped.
  std::size_t inject_column_fault(std::size_t shard, std::size_t col, nvm::FaultKind kind,
                                  std::size_t n_cells, std::uint64_t seed);
  /// Kill subarray `sub` of `shard` (all cells stick at zero conductance).
  void kill_subarray(std::size_t shard, std::size_t sub);
  /// Retention drift across every shard's crossbars.
  void set_drift_rate(double rate_per_tick);
  void advance_age(std::uint64_t ticks);

  /// Detect-only scrub: probe every column of subarray `sub` of `shard`
  /// against its pristine programming, publish the subarray's health state
  /// and the per-shard degraded-column set. Takes the shard lock for the
  /// probes only — serving on other shards is untouched.
  ScrubReport scrub_subarray(std::size_t shard, std::size_t sub,
                             const ScrubPolicy& policy = {});

  /// Re-program `cols` in place from their owning tenants' retained keys.
  /// Returns the columns still deviant after the rewrite (stuck hardware
  /// or unowned — nothing to rewrite them from).
  std::vector<std::size_t> repair_columns(std::size_t shard,
                                          const std::vector<std::size_t>& cols,
                                          const ScrubPolicy& policy = {});

  /// Full pass: scrub_subarray → repair_columns → migrate tenants still on
  /// stuck columns (auto_migrate, needs ≥ 2 shards) → quarantine the
  /// subarray when unrepairable columns reach policy.quarantine_after.
  ScrubOutcome scrub_and_repair(std::size_t shard, std::size_t sub,
                                const ScrubPolicy& policy = {});

  /// Quarantine subarray `sub` of `shard` out of placement permanently.
  void quarantine_subarray(std::size_t shard, std::size_t sub);
  bool subarray_quarantined(std::size_t shard, std::size_t sub) const;
  SubarrayHealth subarray_health(std::size_t shard, std::size_t sub) const;
  /// Columns currently marked degraded on `shard` (detected, not yet
  /// repaired or retired).
  std::size_t degraded_columns(std::size_t shard) const;
  /// True when any column of the user's current slot is marked degraded —
  /// the engine flags (not fails) such users' responses while repair is in
  /// flight.
  bool user_degraded(std::size_t user_id) const;

 private:
  struct Shard {
    std::vector<Matrix> keys;  ///< legacy build staging, cleared by build()
    std::unique_ptr<retrieval::CimRetriever> retriever;
    SlotAllocator allocator;       ///< lifecycle mode; guarded by lifecycle_mu_
    std::atomic<std::size_t> capacity{0};  ///< score-row width (lifecycle)
    std::mutex mu;
  };

  std::shared_ptr<const UserRouter> build_router(std::size_t user_id,
                                                 const std::vector<Matrix>& keys,
                                                 std::size_t begin, std::size_t n) const;

  /// Least-loaded target shard for `n_keys` new keys (lifecycle placement).
  std::size_t choose_shard_locked() const;
  /// Slot alignment for lifecycle placement: the fused kernel's
  /// accumulator-block width when two-phase pruning benefits, else 1.
  std::size_t slot_align() const;
  /// Program one user's keys into shard columns [begin, begin + n), growing
  /// the shard's retriever capacity if needed. Caller holds lifecycle_mu_.
  void program_slot_locked(std::size_t shard, std::size_t begin,
                           const std::vector<Matrix>& keys);
  /// Create or grow the shard's retriever to at least `need` key columns
  /// (takes the shard lock). Caller holds lifecycle_mu_ — staged spans can
  /// then program under the shard lock alone, never racing a tile-grid grow.
  void ensure_shard_capacity_locked(std::size_t shard, std::size_t need);

  OvtStoreConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  TenantDirectory directory_;
  mutable EpochTracker epochs_;
  mutable std::mutex lifecycle_mu_;  ///< serializes admit/evict/migrate + allocators
  /// Lifecycle mode retains each user's (flattened-shape) keys for
  /// migrations and router refreshes; guarded by lifecycle_mu_ post-build.
  std::unordered_map<std::size_t, std::vector<Matrix>> user_keys_;
  std::vector<std::size_t> registration_order_;  ///< pre-build users, in order
  std::vector<Rng> shard_base_rng_;              ///< per-shard noise bases (lifecycle)
  std::size_t key_size_ = 0;
  std::size_t router_refreshes_ = 0;  ///< guarded by lifecycle_mu_
  bool built_ = false;
  bool routed_ = false;

  /// Least-loaded shard other than `from_shard` (migration off stuck
  /// columns). Caller holds lifecycle_mu_.
  std::size_t choose_migration_target_locked(std::size_t from_shard) const;

  /// Scrubber-published health state, sized n_shards. Guarded by health_mu_,
  /// a leaf lock: taken with lifecycle_mu_ and/or a shard mutex held, never
  /// the other way around.
  mutable std::mutex health_mu_;
  /// Per-shard columns whose content currently deviates from pristine and
  /// that a tenant may still be reading (detected, not yet repaired/retired).
  std::vector<std::unordered_set<std::size_t>> degraded_cols_;
  std::vector<std::unordered_map<std::size_t, SubarrayHealth>> subarray_health_;
  /// Per-shard cumulative unrepairable columns per subarray — the
  /// quarantine_after counter.
  std::vector<std::unordered_map<std::size_t, std::size_t>> subarray_stuck_;
};

}  // namespace nvcim::serve
