#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "nvcim/common/check.hpp"

namespace nvcim::serve {

/// Least-recently-used cache with intrusive hit/miss accounting. Not
/// thread-safe by itself — the serving engine guards each get/put with its
/// own mutex and single-flights misses per key (see
/// ServingEngine::prompt_locked_fetch), so a value is computed at most once
/// however many workers miss on it concurrently.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    NVCIM_CHECK_MSG(capacity > 0, "LRU capacity must be positive");
  }

  /// Value for `key` if cached (promoting it to most-recently-used).
  std::optional<Value> get(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Insert (or refresh) `key`, evicting the least-recently-used entry when
  /// at capacity.
  void put(const Key& key, Value value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  bool contains(const Key& key) const { return map_.count(key) > 0; }

  /// Drop every entry whose key matches `pred`; returns how many were
  /// dropped. Used by tenant eviction to purge a user's decoded prompts
  /// (dropped entries do not count as capacity evictions).
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t dropped = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(it->first)) {
        map_.erase(it->first);
        it = order_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t evictions() const { return evictions_; }
  double hit_rate() const {
    const std::size_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  std::size_t capacity_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::list<std::pair<Key, Value>> order_;  ///< front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator, Hash> map_;
};

/// Hash for (user_id, ovt_index) cache keys.
struct UserKeyHash {
  std::size_t operator()(const std::pair<std::size_t, std::size_t>& k) const {
    // splitmix-style mix of the two halves
    std::size_t h = k.first * 0x9E3779B97F4A7C15ull;
    h ^= k.second + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
  }
};

}  // namespace nvcim::serve
