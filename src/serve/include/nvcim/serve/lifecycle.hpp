#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nvcim/common/check.hpp"
#include "nvcim/tensor/matrix.hpp"

namespace nvcim::serve {

/// Online tenant lifecycle knobs: with `enabled`, the sharded store keeps its
/// crossbars mutable after build() — users can be admitted and evicted while
/// serving, and the rebalancer can migrate slot ranges between shards. The
/// mutable store programs every key column independently (per-key
/// quantization scale, per-(tile, column) programming-noise stream), so
/// admitting a user later is bit-identical to having built the store with
/// that user from scratch, and untouched users' columns never change.
struct LifecycleConfig {
  bool enabled = false;
  /// Initial crossbar capacity headroom over the build()-time key count, so
  /// early admits land in pre-provisioned subarray columns instead of
  /// growing the tile grid. Capacity always rounds up to whole subarrays.
  double capacity_factor = 1.5;
  /// rebalance() considers a shard overloaded when its occupied keys exceed
  /// (1 + tolerance) × the mean across shards, and migrates users from the
  /// most- to the least-loaded shard until within tolerance.
  double rebalance_tolerance = 0.25;
  /// Cap on migrations per rebalance() cycle (each migration reprograms one
  /// user's columns — bound the serving interference per cycle).
  std::size_t max_migrations_per_cycle = 4;
  /// Cluster-aware placement: align admitted slots to the fused kernel's
  /// accumulator-block width, so one tenant's candidate columns share
  /// pruning blocks with as few other tenants as possible. Only applied
  /// when two-phase routing is enabled (block pruning is what benefits).
  bool align_slots_to_blocks = true;
  /// Program key columns through the tile-major batched primitive
  /// (Accelerator::program_keys_batched) instead of one column at a time.
  /// Bit-identical either way — the toggle exists for A/B benches and the
  /// property tests.
  bool batched_programming = true;
  /// Write-behind admission: admit_user() publishes the tenant's slot as
  /// PENDING and returns immediately; column programming runs as worker-pool
  /// aux tasks in per-subarray batches, and the tenant flips to live
  /// (queryable) only once every span is programmed. Deferred admission is
  /// bit-identical to synchronous admission (same per-column streams). Off =
  /// the synchronous caller-thread path.
  bool write_behind = false;
  /// Backpressure bound on the write-behind path: at most this many
  /// admissions may be in flight (staged, not yet live) at once.
  /// try_admit_user() returns Overloaded beyond it; admit_user() blocks.
  std::size_t max_pending_admissions = 8;
  /// Maximum key columns per programming span. Spans never cross subarray
  /// boundaries; this additionally splits a wide slot inside one subarray so
  /// a single admission fans out across several workers instead of
  /// serializing on one. Per-column noise streams are position-derived, so
  /// any split (and any execution order) programs bit-identical cells.
  /// 0 = one span per subarray.
  std::size_t program_span_cols = 32;
};

/// A user's placement: shard index plus its key-column range within the
/// shard's crossbars.
struct UserSlot {
  std::size_t shard = 0;
  std::size_t begin = 0;  ///< first key index within the shard
  std::size_t end = 0;    ///< one past the last key index
  std::size_t n_keys() const { return end - begin; }
};

/// Phase-1 routing state of one user: cluster membership in CSR form
/// (user-local key indices, cluster-grouped) plus the quantized sketch
/// planes. Immutable once built; snapshots share it by pointer, so a
/// router refresh swaps the pointer without touching readers.
struct UserRouter {
  std::vector<std::uint32_t> member_begin;  ///< k+1 offsets into members
  std::vector<std::uint32_t> members;       ///< user-local key indices
  Matrix centroid_sketch;                   ///< k × key_size, low-bit ints
  Matrix key_sketch;                        ///< slot_keys × key_size ints
};

/// One epoch-versioned view of the tenant directory: who exists, where each
/// user's slot lives, that user's candidate router, and how wide each
/// shard's crossbars were at publish time. Snapshots are immutable; an
/// in-flight batch pins one and serves every stage against it, so a
/// concurrent admit/evict/migration can never tear a batch's view.
struct TenantSnapshot {
  std::uint64_t epoch = 0;
  std::unordered_map<std::size_t, UserSlot> slots;
  std::unordered_map<std::size_t, std::shared_ptr<const UserRouter>> routers;
  /// Score-row width of each shard at this epoch (crossbar capacity
  /// columns). Candidate bitmaps are sized against this, never against the
  /// live width, which may have grown since.
  std::vector<std::size_t> shard_capacity;
  /// Users staged by a write-behind admission whose columns are still being
  /// programmed: the slot is allocated and published (so placement and
  /// reclamation see it), but the tenant is not yet queryable and the
  /// rebalancer must not migrate it.
  std::unordered_set<std::size_t> pending;

  bool has_user(std::size_t user_id) const { return slots.count(user_id) > 0; }
  /// Queryable: the slot exists AND its columns are fully programmed.
  bool is_live(std::size_t user_id) const {
    return has_user(user_id) && pending.count(user_id) == 0;
  }
  const UserSlot& slot(std::size_t user_id) const {
    auto it = slots.find(user_id);
    NVCIM_CHECK_MSG(it != slots.end(), "unknown user " << user_id);
    return it->second;
  }
};

/// Tracks which directory epochs still have pinned readers, so freed slot
/// ranges are only reprogrammed once every batch that could still read them
/// has drained — the quiesce-free half of the migration protocol (epoch-
/// based reclamation, sized for short-lived batch pins).
class EpochTracker {
 public:
  /// RAII pin of one epoch; movable so pins can ride inside batch state.
  class Guard {
   public:
    Guard() = default;
    Guard(EpochTracker* tracker, std::uint64_t epoch) : tracker_(tracker), epoch_(epoch) {}
    Guard(Guard&& o) noexcept : tracker_(o.tracker_), epoch_(o.epoch_) { o.tracker_ = nullptr; }
    Guard& operator=(Guard&& o) noexcept {
      release();
      tracker_ = o.tracker_;
      epoch_ = o.epoch_;
      o.tracker_ = nullptr;
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }
    void release();

   private:
    EpochTracker* tracker_ = nullptr;
    std::uint64_t epoch_ = 0;
  };

  Guard pin(std::uint64_t epoch);
  /// Smallest epoch still pinned, or `fallback` when none is. A slot range
  /// freed at epoch F is reusable once min_active(current) >= F: every
  /// remaining reader then holds a snapshot in which the slot is gone.
  std::uint64_t min_active(std::uint64_t fallback) const;

 private:
  friend class Guard;
  void leave(std::uint64_t epoch);

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::size_t> active_;  ///< epoch → pin count
};

/// Epoch-versioned user → shard/slot map with copy-on-write snapshots:
/// readers acquire() the current immutable snapshot (cheap shared_ptr copy),
/// writers clone it, mutate the clone and publish it with a bumped epoch.
class TenantDirectory {
 public:
  TenantDirectory() : current_(std::make_shared<TenantSnapshot>()) {}

  std::shared_ptr<const TenantSnapshot> acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }
  std::uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_->epoch;
  }
  /// Clone-mutate-publish: `fn` edits a copy of the current snapshot; the
  /// copy is published with epoch + 1. Returns the published epoch.
  /// Routers are shared by pointer, so the clone is O(users) map copies.
  std::uint64_t update(const std::function<void(TenantSnapshot&)>& fn);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const TenantSnapshot> current_;
};

/// A pinned, epoch-consistent view of the directory: the snapshot plus the
/// epoch pin that defers slot reuse while this view is alive. One per
/// in-flight batch.
struct PinnedDirectory {
  std::shared_ptr<const TenantSnapshot> snap;
  EpochTracker::Guard guard;

  bool has_user(std::size_t user_id) const { return snap->has_user(user_id); }
  const UserSlot& slot(std::size_t user_id) const { return snap->slot(user_id); }
};

/// Per-shard key-column allocator: contiguous slot ranges carved from a
/// growing tail, with an epoch-tagged free list so evicted ranges are only
/// handed out again once every pinned reader of the old epoch has drained.
/// Adjacent free ranges coalesce (taking the younger epoch tag, the safe
/// direction).
class SlotAllocator {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Allocate `n` columns at an `align`-column boundary: first-fit over
  /// reclaimable free ranges (freed_epoch <= safe_epoch), else bump the
  /// tail (recording any alignment gap as immediately-reusable free space).
  std::size_t allocate(std::size_t n, std::uint64_t safe_epoch, std::size_t align);
  /// Return [begin, end) to the free list, reusable once every reader
  /// pinned before `freed_epoch` drains.
  void release(std::size_t begin, std::size_t end, std::uint64_t freed_epoch);

  /// Permanently remove [begin, end) from the allocatable space (a failed
  /// subarray's columns). The quarantined intersection of the free list is
  /// dropped, later release()s of overlapping slots drop their quarantined
  /// part, and tail growth never re-enters the range (any clean run in
  /// front of a range straddling the tail stays allocatable free space).
  /// Quarantined columns count as neither occupied nor free.
  void quarantine(std::size_t begin, std::size_t end);
  /// True when [begin, end) intersects a quarantined range.
  bool is_quarantined(std::size_t begin, std::size_t end) const;

  std::size_t occupied() const { return occupied_; }  ///< allocated key columns
  std::size_t tail() const { return tail_; }          ///< high-water column
  std::size_t free_ranges() const { return free_.size(); }
  std::size_t quarantined() const { return quarantined_cols_; }

 private:
  struct FreeRange {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint64_t freed_epoch = 0;
  };
  /// Insert one clean (non-quarantined) range into the free list, keeping
  /// it sorted and coalescing with neighbours.
  void insert_free(std::size_t begin, std::size_t end, std::uint64_t freed_epoch);

  std::vector<FreeRange> free_;  ///< sorted by begin, non-overlapping
  /// Quarantined column ranges, sorted by begin, disjoint.
  std::vector<std::pair<std::size_t, std::size_t>> quarantine_;
  std::size_t tail_ = 0;
  std::size_t occupied_ = 0;
  std::size_t quarantined_cols_ = 0;
};

/// One planned user migration (executed by ShardedOvtStore::migrate_user).
struct Migration {
  std::size_t user_id = 0;
  std::size_t from_shard = 0;
  std::size_t to_shard = 0;
  std::size_t n_keys = 0;
};

/// Pure planning half of shard rebalancing: given per-shard occupied key
/// counts and the user slots, pick users to move from overloaded to
/// underloaded shards until every shard is within tolerance of the mean (or
/// the migration budget is spent). Deterministic: ties break toward lower
/// shard/user ids.
std::vector<Migration> plan_rebalance(const std::vector<std::size_t>& shard_occupied,
                                      const std::unordered_map<std::size_t, UserSlot>& slots,
                                      double tolerance, std::size_t max_migrations);

}  // namespace nvcim::serve
