#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <string>

#include "nvcim/common/check.hpp"
#include "nvcim/data/lamp.hpp"

namespace nvcim::serve {

/// Answer to one serving request.
struct Response {
  std::size_t user_id = 0;
  std::size_t ovt_index = 0;  ///< user-local index of the retrieved OVT
  std::size_t label = 0;      ///< classify() result when run_inference is on
  bool has_label = false;
  bool cache_hit = false;     ///< decoded prompt came from the LRU cache
  double latency_ms = 0.0;    ///< submit → completion
  /// submit → batch dequeue share of latency_ms: how long the request sat in
  /// the scheduler before a worker picked it up (the rest is service time).
  double queue_wait_ms = 0.0;
  /// The request carried a deadline and completed after it. It was still
  /// dispatched (only already-expired requests are dropped before retrieve);
  /// the caller decides whether a late answer is worth anything.
  bool deadline_missed = false;
  /// The scrubber has marked column(s) of this user's slot degraded (device
  /// fault detected, repair pending or in flight). The answer was computed
  /// from the degraded columns and delivered anyway — serving never fails a
  /// request over a fault the repair path is already handling; the flag
  /// lets the caller discount or retry the answer.
  bool degraded = false;
};

/// One serving request: the tenant and its query. Everything about HOW the
/// request should be scheduled lives in SubmitOptions, not in which overload
/// of submit() was called.
struct Request {
  std::size_t user_id = 0;
  data::Sample query;
};

/// What submit() does when the bounded queue is at capacity.
enum class OverloadPolicy {
  Block,   ///< wait for space (backpressure) — the old submit() behaviour
  Reject,  ///< return an invalid handle and bump rejected_requests — try_submit()
};

/// Per-request scheduling contract. Defaults reproduce the legacy behaviour:
/// no deadline, neutral priority, blocking backpressure, future-only
/// completion.
struct SubmitOptions {
  /// Relative deadline in milliseconds from submission; 0 = none. A request
  /// whose deadline passes while it is still queued is EXPIRED: its future
  /// settles with DeadlineExceeded and it never reaches the crossbar. A
  /// request dispatched in time but finishing late completes normally with
  /// Response::deadline_missed set.
  double deadline_ms = 0.0;
  /// Higher wins among same-tenant requests with equal deadlines. Priority
  /// never starves other tenants — cross-tenant ordering is the DRR
  /// scheduler's job.
  int priority = 0;
  OverloadPolicy overload_policy = OverloadPolicy::Block;
  /// Completion callback, invoked AFTER the future is settled, on whichever
  /// thread completes the request (a worker for served/expired requests, the
  /// canceller for cancel(), the stopping thread for stop()). Exactly one of
  /// the two arguments is meaningful: `error` is nullptr on success.
  /// Exceptions thrown by the callback are swallowed — they must not kill a
  /// worker. Keep it light; it runs on the serving path.
  std::function<void(const Response&, std::exception_ptr)> on_complete;
};

/// A request's deadline passed while it was still queued — the engine dropped
/// it without spending crossbar work.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// The request was cancelled via RequestHandle::cancel() before dispatch.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

/// The engine stopped while the request was still queued: stop() settles
/// every undispatched future with this error instead of leaving it dangling
/// or silently serving it after shutdown began.
class EngineStopped : public Error {
 public:
  explicit EngineStopped(const std::string& what) : Error(what) {}
};

/// The submitted user id is unknown to the engine, or its write-behind
/// admission has not gone live yet. submit() settles the handle's future
/// with this error instead of throwing, so asynchronous callers learn of
/// the failure on the same channel as every other per-request error.
class UnknownUser : public Error {
 public:
  explicit UnknownUser(const std::string& what) : Error(what) {}
};

/// How admit() behaves: non_blocking turns pending-admission backpressure
/// into rejection (an invalid handle) instead of blocking; wait joins the
/// write-behind programming before returning (admit(...).wait() equivalent).
struct AdmitOptions {
  bool non_blocking = false;
  bool wait = false;
};

/// One queued request as the scheduler stores it: the request plus its
/// resolved scheduling contract and completion channels. Move-only (owns the
/// promise).
struct QueuedRequest {
  using Clock = std::chrono::steady_clock;
  /// No-deadline sentinel (comparisons still work: everything sorts earlier).
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  std::uint64_t id = 0;   ///< engine-unique, carried by RequestHandle
  std::uint64_t seq = 0;  ///< global arrival order (FIFO key, EDF tie-break)
  std::size_t user_id = 0;
  data::Sample query;
  int priority = 0;
  Clock::time_point enqueued{};
  Clock::time_point deadline = kNoDeadline;  ///< absolute; kNoDeadline = none
  std::promise<Response> promise;
  std::function<void(const Response&, std::exception_ptr)> on_complete;

  bool has_deadline() const { return deadline != kNoDeadline; }
};

}  // namespace nvcim::serve
