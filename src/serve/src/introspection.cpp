// The engine's live introspection plane: the health() verdict combining SLO
// burn rates, device-fleet health, queue saturation and admission backlog,
// plus the embedded HTTP endpoints (/metrics, /metrics.json, /healthz,
// /readyz, /debug/engine, /debug/slow, /debug/trace) behind
// ServingConfig::introspection.

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "nvcim/obs/slo.hpp"
#include "nvcim/serve/engine.hpp"

namespace nvcim::serve {

namespace {

/// JSON-safe number: %.9g, with non-finite values clamped (bare inf/nan is
/// not valid JSON; an infinite burn rate is "the budget is zero", which 1e9
/// conveys to any dashboard).
std::string jnum(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e9" : "-1e9";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string jnum(std::size_t v) { return std::to_string(v); }

const char* jbool(bool b) { return b ? "true" : "false"; }

std::string snapshot_json(const StatsSnapshot& s) {
  std::ostringstream o;
  o << "{\n"
    << "  \"requests\": " << s.requests << ",\n"
    << "  \"batches\": " << s.batches << ",\n"
    << "  \"avg_batch_size\": " << jnum(s.avg_batch_size) << ",\n"
    << "  \"throughput_rps\": " << jnum(s.throughput_rps) << ",\n"
    << "  \"p50_latency_ms\": " << jnum(s.p50_latency_ms) << ",\n"
    << "  \"p95_latency_ms\": " << jnum(s.p95_latency_ms) << ",\n"
    << "  \"p99_latency_ms\": " << jnum(s.p99_latency_ms) << ",\n"
    << "  \"queue_wait_p50_ms\": " << jnum(s.queue_wait_p50_ms) << ",\n"
    << "  \"queue_wait_p95_ms\": " << jnum(s.queue_wait_p95_ms) << ",\n"
    << "  \"queue_depth\": " << s.queue_depth << ",\n"
    << "  \"queue_depth_hwm\": " << s.queue_depth_hwm << ",\n"
    << "  \"cache_hits\": " << s.cache_hits << ",\n"
    << "  \"cache_misses\": " << s.cache_misses << ",\n"
    << "  \"cache_hit_rate\": " << jnum(s.cache_hit_rate) << ",\n"
    << "  \"stage_ms\": {\"encode\": " << jnum(s.encode_ms)
    << ", \"retrieve\": " << jnum(s.retrieve_ms) << ", \"decode\": " << jnum(s.decode_ms)
    << ", \"classify\": " << jnum(s.classify_ms) << "},\n"
    << "  \"parallel_retrieve_fanouts\": " << s.parallel_retrieve_fanouts << ",\n"
    << "  \"pruned_fraction\": " << jnum(s.pruned_fraction) << ",\n"
    << "  \"sampled_recall_at1\": " << jnum(s.sampled_recall_at1) << ",\n"
    << "  \"users_admitted\": " << s.users_admitted << ",\n"
    << "  \"users_evicted\": " << s.users_evicted << ",\n"
    << "  \"tenants_retired\": " << s.tenants_retired << ",\n"
    << "  \"migrations\": " << s.migrations << ",\n"
    << "  \"rejected_requests\": " << s.rejected_requests << ",\n"
    << "  \"expired_requests\": " << s.expired_requests << ",\n"
    << "  \"deadline_missed\": " << s.deadline_missed << ",\n"
    << "  \"cancelled_requests\": " << s.cancelled_requests << ",\n"
    << "  \"programming_queue_depth\": " << s.programming_queue_depth << ",\n"
    << "  \"rejected_admissions\": " << s.rejected_admissions << ",\n"
    << "  \"scrub_passes\": " << s.scrub_passes << ",\n"
    << "  \"columns_degraded\": " << s.columns_degraded << ",\n"
    << "  \"columns_repaired\": " << s.columns_repaired << ",\n"
    << "  \"columns_stuck\": " << s.columns_stuck << ",\n"
    << "  \"subarrays_quarantined\": " << s.subarrays_quarantined << ",\n"
    << "  \"degraded_responses\": " << s.degraded_responses << ",\n"
    << "  \"last_minute\": {\n"
    << "    \"span_ms\": " << jnum(s.last_minute.span_ms) << ",\n"
    << "    \"requests\": " << s.last_minute.requests << ",\n"
    << "    \"throughput_rps\": " << jnum(s.last_minute.throughput_rps) << ",\n"
    << "    \"p50_latency_ms\": " << jnum(s.last_minute.p50_latency_ms) << ",\n"
    << "    \"p95_latency_ms\": " << jnum(s.last_minute.p95_latency_ms) << ",\n"
    << "    \"p99_latency_ms\": " << jnum(s.last_minute.p99_latency_ms) << ",\n"
    << "    \"queue_wait_p95_ms\": " << jnum(s.last_minute.queue_wait_p95_ms) << ",\n"
    << "    \"error_rate\": " << jnum(s.last_minute.error_rate) << ",\n"
    << "    \"degraded_rate\": " << jnum(s.last_minute.degraded_rate) << ",\n"
    << "    \"deadline_miss_rate\": " << jnum(s.last_minute.deadline_miss_rate) << "\n"
    << "  }\n}\n";
  return o.str();
}

std::string slow_json(const std::vector<SlowRequest>& slow) {
  std::ostringstream o;
  o << "[";
  for (std::size_t i = 0; i < slow.size(); ++i) {
    const SlowRequest& r = slow[i];
    if (i > 0) o << ",";
    o << "\n  {\"user\": " << r.user_id << ", \"batch\": " << r.batch_id
      << ", \"latency_ms\": " << jnum(r.latency_ms)
      << ", \"queue_wait_ms\": " << jnum(r.queue_wait_ms)
      << ", \"encode_ms\": " << jnum(r.encode_ms)
      << ", \"retrieve_ms\": " << jnum(r.retrieve_ms)
      << ", \"decode_ms\": " << jnum(r.decode_ms)
      << ", \"classify_ms\": " << jnum(r.classify_ms) << "}";
  }
  o << (slow.empty() ? "]\n" : "\n]\n");
  return o.str();
}

std::string burn_phrase(const SloStatus& s) {
  return s.name + " SLO burning at " + jnum(s.burn.fast) + "x (fast) / " +
         jnum(s.burn.slow) + "x (slow) against objective " + jnum(s.objective);
}

}  // namespace

std::string HealthReport::json() const {
  std::ostringstream o;
  o << "{\n  \"state\": \"" << obs::to_string(state) << "\",\n"
    << "  \"ready\": " << jbool(ready) << ",\n"
    << "  \"queue\": {\"depth\": " << queue_depth << ", \"capacity\": " << queue_capacity
    << "},\n"
    << "  \"pending_admissions\": " << pending_admissions << ",\n"
    << "  \"device\": {\"subarrays\": " << subarrays_total
    << ", \"degraded\": " << subarrays_degraded << ", \"failed\": " << subarrays_failed
    << ", \"quarantined\": " << subarrays_quarantined << "},\n"
    << "  \"slos\": [";
  for (std::size_t i = 0; i < slos.size(); ++i) {
    const SloStatus& s = slos[i];
    if (i > 0) o << ",";
    o << "\n    {\"name\": \"" << s.name << "\", \"objective\": " << jnum(s.objective)
      << ", \"fast_burn\": " << jnum(s.burn.fast)
      << ", \"slow_burn\": " << jnum(s.burn.slow) << ", \"state\": \""
      << obs::to_string(s.burn.state) << "\"}";
  }
  o << (slos.empty() ? "],\n" : "\n  ],\n");
  o << "  \"reasons\": [";
  for (std::size_t i = 0; i < reasons.size(); ++i) {
    if (i > 0) o << ", ";
    o << "\"" << reasons[i] << "\"";
  }
  o << "]\n}\n";
  return o.str();
}

HealthReport ServingEngine::health() const {
  HealthReport r;
  const double now = stats_.now_ms();
  stats_.advance_windows(now);

  // SLO burn rates over the dual windows (fast + slow must both exceed a
  // threshold to change state — see obs::evaluate_burn_rate).
  const SloConfig& slo = cfg_.slo;
  const obs::BurnRateConfig& burn = slo.burn;
  const WindowedSli fast =
      stats_.windowed_at(now, slo.latency_threshold_ms, burn.fast_window_ms);
  const WindowedSli slow =
      stats_.windowed_at(now, slo.latency_threshold_ms, burn.slow_window_ms);
  r.slos.push_back({"latency", slo.latency_objective,
                    obs::evaluate_burn_rate(fast.latency, slow.latency,
                                            slo.latency_objective, burn)});
  r.slos.push_back({"availability", slo.availability_objective,
                    obs::evaluate_burn_rate(fast.availability, slow.availability,
                                            slo.availability_objective, burn)});
  r.slos.push_back({"deadline", slo.deadline_objective,
                    obs::evaluate_burn_rate(fast.deadline, slow.deadline,
                                            slo.deadline_objective, burn)});
  for (const SloStatus& s : r.slos) {
    if (s.burn.state != obs::HealthState::Ok) {
      r.state = obs::worst(r.state, s.burn.state);
      r.reasons.push_back(burn_phrase(s));
    }
  }

  // Queue saturation: full is Critical (new work is blocking or bouncing),
  // >= 80% is an early warning.
  bool stopping = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    r.queue_depth = sched_.size();
    stopping = stopping_;
  }
  r.queue_capacity = cfg_.queue_capacity;
  if (r.queue_depth >= r.queue_capacity) {
    r.state = obs::HealthState::Critical;
    r.reasons.push_back("request queue saturated (" + jnum(r.queue_depth) + "/" +
                        jnum(r.queue_capacity) + ")");
  } else if (r.queue_depth * 5 >= r.queue_capacity * 4) {
    r.state = obs::worst(r.state, obs::HealthState::Warning);
    r.reasons.push_back("request queue above 80% (" + jnum(r.queue_depth) + "/" +
                        jnum(r.queue_capacity) + ")");
  }

  // Pending write-behind admissions at the backpressure bound: admits are
  // blocking/bouncing.
  {
    std::lock_guard<std::mutex> lock(admissions_mu_);
    r.pending_admissions = admissions_.size();
  }
  if (cfg_.lifecycle.enabled && r.pending_admissions > 0 &&
      r.pending_admissions >= cfg_.lifecycle.max_pending_admissions) {
    r.state = obs::worst(r.state, obs::HealthState::Warning);
    r.reasons.push_back("admission backlog at bound (" + jnum(r.pending_admissions) +
                        "/" + jnum(cfg_.lifecycle.max_pending_admissions) + ")");
  }

  // Device fleet: scrubber-published subarray health. Any degraded hardware
  // warns; failed subarrays or a half-degraded fleet is critical.
  if (store_.built()) {
    for (std::size_t shard = 0; shard < store_.n_shards(); ++shard) {
      for (std::size_t sub = 0; sub < store_.shard_subarrays(shard); ++sub) {
        ++r.subarrays_total;
        const SubarrayHealth h = store_.subarray_health(shard, sub);
        if (h != SubarrayHealth::Healthy) ++r.subarrays_degraded;
        if (h == SubarrayHealth::Failed) ++r.subarrays_failed;
        if (store_.subarray_quarantined(shard, sub)) ++r.subarrays_quarantined;
      }
    }
    if (r.subarrays_failed > 0 ||
        (r.subarrays_total > 0 && r.subarrays_degraded * 2 >= r.subarrays_total)) {
      r.state = obs::HealthState::Critical;
      r.reasons.push_back("device fleet degraded (" + jnum(r.subarrays_degraded) +
                          "/" + jnum(r.subarrays_total) + " subarrays, " +
                          jnum(r.subarrays_failed) + " failed)");
    } else if (r.subarrays_degraded > 0 || r.subarrays_quarantined > 0) {
      r.state = obs::worst(r.state, obs::HealthState::Warning);
      r.reasons.push_back("degraded subarrays (" + jnum(r.subarrays_degraded) +
                          " degraded, " + jnum(r.subarrays_quarantined) +
                          " quarantined)");
    }
  }

  r.ready = running_ && !stopping && store_.built() && r.pending_admissions == 0;
  return r;
}

std::uint16_t ServingEngine::introspection_port() const {
  return http_ != nullptr ? http_->port() : 0;
}

void ServingEngine::start_introspection() {
  if (!cfg_.introspection.enabled) return;
  obs::HttpServerConfig hcfg;
  hcfg.bind = cfg_.introspection.bind;
  hcfg.port = cfg_.introspection.port;
  hcfg.handler_threads = cfg_.introspection.handler_threads;
  auto server = std::make_unique<obs::HttpServer>(hcfg);

  server->handle("/", [](const std::string&) {
    obs::HttpResponse resp;
    resp.content_type = "text/plain; charset=utf-8";
    resp.body =
        "nvcim serving engine introspection\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  the same registry as JSON\n"
        "  /healthz       SLO burn / device / queue health (503 = critical)\n"
        "  /readyz        readiness (workers up, admissions drained)\n"
        "  /debug/engine  StatsSnapshot as JSON (incl. last-minute window)\n"
        "  /debug/slow    slow-request exemplars\n"
        "  /debug/trace   Chrome trace_event dump\n";
    return resp;
  });
  server->handle("/metrics", [this](const std::string&) {
    // Lazy window maintenance rides the scrape, then the body is the
    // registry's own exposition verbatim — byte-identical to an in-process
    // prometheus_text() call.
    stats_.refresh_windows();
    obs::HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = stats_.registry().prometheus_text();
    return resp;
  });
  server->handle("/metrics.json", [this](const std::string&) {
    stats_.refresh_windows();
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = stats_.registry().json_text();
    return resp;
  });
  server->handle("/healthz", [this](const std::string&) {
    const HealthReport report = health();
    obs::HttpResponse resp;
    resp.status = report.state == obs::HealthState::Critical ? 503 : 200;
    resp.content_type = "application/json";
    resp.body = report.json();
    return resp;
  });
  server->handle("/readyz", [this](const std::string&) {
    const HealthReport report = health();
    obs::HttpResponse resp;
    resp.status = report.ready ? 200 : 503;
    resp.content_type = "application/json";
    resp.body = std::string("{\"ready\": ") + jbool(report.ready) + "}\n";
    return resp;
  });
  server->handle("/debug/engine", [this](const std::string&) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = snapshot_json(stats());
    return resp;
  });
  server->handle("/debug/slow", [this](const std::string&) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = slow_json(slow_requests());
    return resp;
  });
  server->handle("/debug/trace", [this](const std::string&) {
    std::ostringstream os;
    tracer_.write_chrome_trace(os);
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = os.str();
    return resp;
  });

  if (!server->start()) {
    std::fprintf(stderr,
                 "nvcim: introspection server failed to bind %s:%u — serving continues "
                 "without it\n",
                 hcfg.bind.c_str(), static_cast<unsigned>(hcfg.port));
    return;
  }
  http_ = std::move(server);
}

void ServingEngine::stop_introspection() {
  if (http_ != nullptr) {
    http_->stop();
    http_.reset();
  }
}

}  // namespace nvcim::serve
