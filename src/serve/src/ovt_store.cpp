#include "nvcim/serve/ovt_store.hpp"

#include <algorithm>

namespace nvcim::serve {

ShardedOvtStore::ShardedOvtStore(OvtStoreConfig cfg) : cfg_(std::move(cfg)) {
  NVCIM_CHECK_MSG(cfg_.n_shards > 0, "store needs at least one shard");
  shards_.reserve(cfg_.n_shards);
  for (std::size_t s = 0; s < cfg_.n_shards; ++s) shards_.push_back(std::make_unique<Shard>());
}

void ShardedOvtStore::add_user(std::size_t user_id, const std::vector<Matrix>& keys) {
  NVCIM_CHECK_MSG(!built_, "store already built; users must be added before build()");
  NVCIM_CHECK_MSG(!keys.empty(), "user " << user_id << " has no keys");
  NVCIM_CHECK_MSG(!has_user(user_id), "user " << user_id << " already registered");

  // Least-loaded placement keeps shard key counts balanced.
  std::size_t target = 0;
  for (std::size_t s = 1; s < shards_.size(); ++s)
    if (shards_[s]->keys.size() < shards_[target]->keys.size()) target = s;

  Shard& shard = *shards_[target];
  UserSlot slot;
  slot.shard = target;
  slot.begin = shard.keys.size();
  for (const Matrix& k : keys) shard.keys.push_back(k);
  slot.end = shard.keys.size();
  slots_.emplace(user_id, slot);
}

void ShardedOvtStore::build(Rng& rng) {
  NVCIM_CHECK_MSG(!built_, "store already built");
  NVCIM_CHECK_MSG(!slots_.empty(), "no users registered");
  retrieval::CimRetriever::Config rcfg;
  rcfg.algorithm = cfg_.algorithm;
  rcfg.ssa = cfg_.ssa;
  rcfg.crossbar = cfg_.crossbar;
  rcfg.variation = cfg_.variation;
  rcfg.program = cfg_.program;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    if (shard.keys.empty()) continue;  // more shards than users
    shard.retriever = std::make_unique<retrieval::CimRetriever>(rcfg);
    Rng shard_rng = rng.split(0x5A4D0ull + s);
    shard.retriever->store(shard.keys, shard_rng);
    shard.keys.clear();
    shard.keys.shrink_to_fit();
  }
  built_ = true;
}

std::size_t ShardedOvtStore::n_keys() const {
  std::size_t n = 0;
  for (const auto& [id, slot] : slots_) {
    (void)id;
    n += slot.n_keys();
  }
  return n;
}

const ShardedOvtStore::UserSlot& ShardedOvtStore::slot(std::size_t user_id) const {
  auto it = slots_.find(user_id);
  NVCIM_CHECK_MSG(it != slots_.end(), "unknown user " << user_id);
  return it->second;
}

Matrix ShardedOvtStore::shard_scores(std::size_t shard, const Matrix& queries) {
  Matrix out;
  retrieval::CimRetriever::Scratch scratch;
  shard_scores_into(shard, queries, out, scratch);
  return out;
}

void ShardedOvtStore::shard_scores_into(std::size_t shard, const Matrix& queries, Matrix& out,
                                        retrieval::CimRetriever::Scratch& scratch) {
  NVCIM_CHECK_MSG(built_, "store not built");
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  Shard& s = *shards_[shard];
  NVCIM_CHECK_MSG(s.retriever != nullptr, "shard " << shard << " holds no keys");
  std::lock_guard<std::mutex> lock(s.mu);
  s.retriever->scores_batch_into(queries, out, scratch);
}

std::size_t ShardedOvtStore::retrieve_user(std::size_t user_id, const Matrix& query) {
  NVCIM_CHECK_MSG(built_, "store not built");
  const UserSlot& us = slot(user_id);
  Shard& s = *shards_[us.shard];
  std::lock_guard<std::mutex> lock(s.mu);
  const Matrix scores = s.retriever->scores(query);
  return best_in_slot(scores, 0, us);
}

std::size_t ShardedOvtStore::best_in_slot(const Matrix& scores, std::size_t row,
                                          const UserSlot& slot) {
  NVCIM_CHECK_MSG(slot.end <= scores.cols(), "slot exceeds score row");
  NVCIM_CHECK_MSG(slot.n_keys() > 0, "empty slot");
  std::size_t best = slot.begin;
  for (std::size_t i = slot.begin + 1; i < slot.end; ++i)
    if (scores(row, i) > scores(row, best)) best = i;
  return best - slot.begin;
}

cim::OpCounters ShardedOvtStore::counters() const {
  cim::OpCounters c;
  for (const auto& s : shards_) {
    // Bank queries mutate the counters, so reading them takes the same
    // per-shard lock as shard_scores().
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->retriever != nullptr) c += s->retriever->counters();
  }
  return c;
}

}  // namespace nvcim::serve
