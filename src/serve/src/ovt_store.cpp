#include "nvcim/serve/ovt_store.hpp"

#include <algorithm>
#include <cmath>

#include "nvcim/cim/quant.hpp"

namespace nvcim::serve {

namespace {

retrieval::CimRetriever::Config retriever_config(const OvtStoreConfig& cfg) {
  retrieval::CimRetriever::Config rcfg;
  rcfg.algorithm = cfg.algorithm;
  rcfg.ssa = cfg.ssa;
  rcfg.crossbar = cfg.crossbar;
  rcfg.variation = cfg.variation;
  rcfg.program = cfg.program;
  rcfg.batched_programming = cfg.lifecycle.batched_programming;
  return rcfg;
}

}  // namespace

ShardedOvtStore::ShardedOvtStore(OvtStoreConfig cfg) : cfg_(std::move(cfg)) {
  NVCIM_CHECK_MSG(cfg_.n_shards > 0, "store needs at least one shard");
  NVCIM_CHECK_MSG(cfg_.two_phase.sketch_bits >= 4 && cfg_.two_phase.sketch_bits <= 8,
                  "sketch_bits must be in [4, 8]");
  shards_.reserve(cfg_.n_shards);
  for (std::size_t s = 0; s < cfg_.n_shards; ++s) shards_.push_back(std::make_unique<Shard>());
  degraded_cols_.resize(cfg_.n_shards);
  subarray_health_.resize(cfg_.n_shards);
  subarray_stuck_.resize(cfg_.n_shards);
}

std::size_t ShardedOvtStore::slot_align() const {
  if (!cfg_.two_phase.enabled || !cfg_.lifecycle.align_slots_to_blocks) return 1;
  // Block-aligned slots only help when subarray boundaries are themselves
  // block-aligned (true for the paper geometry: 128-column subarrays, 16-
  // column accumulator blocks).
  const std::size_t block = cim::Crossbar::kAccumulatorLanes / (cfg_.crossbar.differential ? 2 : 1);
  return cfg_.crossbar.cols % block == 0 ? block : 1;
}

std::size_t ShardedOvtStore::choose_shard_locked() const {
  // Quarantined columns count toward load: a shard with retired hardware
  // looks fuller, steering new placements toward healthy shards.
  const auto load = [this](std::size_t s) {
    return shards_[s]->allocator.occupied() + shards_[s]->allocator.quarantined();
  };
  std::size_t target = 0;
  for (std::size_t s = 1; s < shards_.size(); ++s)
    if (load(s) < load(target)) target = s;
  return target;
}

std::size_t ShardedOvtStore::choose_migration_target_locked(std::size_t from_shard) const {
  const auto load = [this](std::size_t s) {
    return shards_[s]->allocator.occupied() + shards_[s]->allocator.quarantined();
  };
  std::size_t target = from_shard == 0 ? 1 : 0;
  for (std::size_t s = 0; s < shards_.size(); ++s)
    if (s != from_shard && load(s) < load(target)) target = s;
  return target;
}

void ShardedOvtStore::add_user(std::size_t user_id, const std::vector<Matrix>& keys) {
  if (built_) {
    NVCIM_CHECK_MSG(cfg_.lifecycle.enabled,
                    "store already built; users must be added before build() "
                    "(enable LifecycleConfig for live admission)");
    admit_user(user_id, keys);
    return;
  }
  NVCIM_CHECK_MSG(!keys.empty(), "user " << user_id << " has no keys");
  NVCIM_CHECK_MSG(!has_user(user_id), "user " << user_id << " already registered");
  if (key_size_ == 0) key_size_ = keys[0].size();
  for (const Matrix& k : keys)
    NVCIM_CHECK_MSG(k.size() == key_size_, "keys must share a common size");

  UserSlot slot;
  if (cfg_.lifecycle.enabled) {
    // Same placement path live admits use, so a from-scratch build and an
    // incremental one walk identical allocator histories.
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    slot.shard = choose_shard_locked();
    slot.begin = shards_[slot.shard]->allocator.allocate(keys.size(), 0, slot_align());
    slot.end = slot.begin + keys.size();
    user_keys_[user_id] = keys;
  } else {
    // Least-loaded placement keeps shard key counts balanced.
    std::size_t target = 0;
    for (std::size_t s = 1; s < shards_.size(); ++s)
      if (shards_[s]->keys.size() < shards_[target]->keys.size()) target = s;
    Shard& shard = *shards_[target];
    slot.shard = target;
    slot.begin = shard.keys.size();
    for (const Matrix& k : keys) shard.keys.push_back(k);
    slot.end = shard.keys.size();
  }
  registration_order_.push_back(user_id);
  directory_.update([&](TenantSnapshot& t) { t.slots[user_id] = slot; });
}

std::shared_ptr<const UserRouter> ShardedOvtStore::build_router(
    std::size_t user_id, const std::vector<Matrix>& keys, std::size_t begin,
    std::size_t n) const {
  const std::size_t key_size = keys[begin].size();

  // Flatten the user's keys once: k-means points and the sketch plane share
  // this layout.
  std::vector<Matrix> points;
  Matrix key_mat(n, key_size);
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(keys[begin + i].flattened());
    key_mat.set_row(i, points.back());
  }

  const std::size_t k = std::min(cluster::select_k(n, cfg_.two_phase.k_select), n);
  cluster::KMeansConfig kmcfg = cfg_.two_phase.kmeans;
  // Deterministic, distinct stream per user: routing must not depend on
  // registration or build order.
  kmcfg.seed = kmcfg.seed + 0x9E3779B97F4A7C15ull * (user_id + 1);
  const cluster::KMeansResult km = cluster::kmeans(points, k, kmcfg);

  // Compact away empty clusters: k-means can re-seed a cluster in its final
  // iteration and converge before any point lands in it. Probing an empty
  // centroid would waste an nprobe slot — and at nprobe = 1 could produce
  // an empty candidate set.
  std::vector<std::uint32_t> remap(km.k, 0);
  std::vector<std::size_t> kept;
  {
    std::vector<std::size_t> counts(km.k, 0);
    for (const std::size_t a : km.assignment) ++counts[a];
    for (std::size_t c = 0; c < km.k; ++c) {
      if (counts[c] == 0) continue;
      remap[c] = static_cast<std::uint32_t>(kept.size());
      kept.push_back(c);
    }
  }

  auto router = std::make_shared<UserRouter>();
  router->member_begin.assign(kept.size() + 1, 0);
  for (const std::size_t a : km.assignment) ++router->member_begin[remap[a] + 1];
  for (std::size_t c = 0; c < kept.size(); ++c)
    router->member_begin[c + 1] += router->member_begin[c];
  router->members.resize(n);
  std::vector<std::uint32_t> cursor(router->member_begin.begin(),
                                    router->member_begin.end() - 1);
  for (std::size_t i = 0; i < n; ++i)
    router->members[cursor[remap[km.assignment[i]]]++] = static_cast<std::uint32_t>(i);

  // Low-bit sketch planes over centroids and keys. Only the integer grids
  // matter: ranking by q(x)·q(c) is scale-invariant (symmetric quantization
  // scales are positive), so the scales are dropped.
  Matrix centroid_mat(kept.size(), key_size);
  for (std::size_t c = 0; c < kept.size(); ++c)
    centroid_mat.set_row(c, km.centroids[kept[c]]);
  const int bits = static_cast<int>(cfg_.two_phase.sketch_bits);
  router->centroid_sketch = cim::quantize_symmetric(centroid_mat, bits).q;
  router->key_sketch = cim::quantize_symmetric(key_mat, bits).q;
  return router;
}

void ShardedOvtStore::ensure_shard_capacity_locked(std::size_t shard, std::size_t need) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.retriever == nullptr) {
    s.retriever = std::make_unique<retrieval::CimRetriever>(retriever_config(cfg_));
    s.retriever->store_mutable(key_size_, need, shard_base_rng_[shard]);
  } else if (s.retriever->n_keys() < need) {
    s.retriever->ensure_capacity(need);
  }
  s.capacity.store(s.retriever->n_keys(), std::memory_order_release);
}

void ShardedOvtStore::program_slot_locked(std::size_t shard, std::size_t begin,
                                          const std::vector<Matrix>& keys) {
  ensure_shard_capacity_locked(shard, begin + keys.size());
  Shard& s = *shards_[shard];
  // Programming excludes this shard's MVM passes for the duration of the
  // column writes only — other shards keep serving.
  std::lock_guard<std::mutex> lock(s.mu);
  s.retriever->program_keys(begin, keys);
}

void ShardedOvtStore::build(Rng& rng) {
  NVCIM_CHECK_MSG(!built_, "store already built");
  NVCIM_CHECK_MSG(!registration_order_.empty(), "no users registered");
  const auto snap = directory_.acquire();
  routed_ = cfg_.two_phase.enabled;

  // Per-shard noise bases are derived for every shard up front (even ones
  // still empty): a later admit into an empty shard must draw the same
  // streams a from-scratch build would have.
  shard_base_rng_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s)
    shard_base_rng_.push_back(rng.split(0x5A4D0ull + s));

  std::unordered_map<std::size_t, std::shared_ptr<const UserRouter>> routers;
  if (cfg_.lifecycle.enabled) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      const std::size_t tail = shard.allocator.tail();
      if (tail == 0) continue;  // more shards than users (so far)
      const std::size_t capacity = std::max(
          tail, static_cast<std::size_t>(
                    std::ceil(static_cast<double>(tail) * cfg_.lifecycle.capacity_factor)));
      shard.retriever = std::make_unique<retrieval::CimRetriever>(retriever_config(cfg_));
      shard.retriever->store_mutable(key_size_, capacity, shard_base_rng_[s]);
      shard.capacity.store(shard.retriever->n_keys(), std::memory_order_release);
    }
    // Program per user, in registration order — though per-key scales and
    // per-column noise streams make the result order-independent anyway.
    for (const std::size_t user : registration_order_) {
      const UserSlot& slot = snap->slot(user);
      program_slot_locked(slot.shard, slot.begin, user_keys_.at(user));
    }
    if (routed_) {
      for (const std::size_t user : registration_order_) {
        const std::vector<Matrix>& keys = user_keys_.at(user);
        routers[user] = build_router(user, keys, 0, keys.size());
      }
    }
  } else {
    // Phase-1 routers are built from the clean keys before the crossbars
    // consume (and the shards drop) them. Key order inside each shard is
    // untouched — programming draws the same noise stream as the exact path,
    // so nprobe = all reproduces it bit-identically.
    if (routed_) {
      for (const auto& [user_id, slot] : snap->slots)
        routers[user_id] =
            build_router(user_id, shards_[slot.shard]->keys, slot.begin, slot.n_keys());
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      if (shard.keys.empty()) continue;  // more shards than users
      shard.retriever = std::make_unique<retrieval::CimRetriever>(retriever_config(cfg_));
      Rng shard_rng = shard_base_rng_[s];
      shard.retriever->store(shard.keys, shard_rng);
      shard.keys.clear();
      shard.keys.shrink_to_fit();
    }
  }

  directory_.update([&](TenantSnapshot& t) {
    t.routers = std::move(routers);
    t.shard_capacity.assign(shards_.size(), 0);
    for (std::size_t s = 0; s < shards_.size(); ++s)
      if (shards_[s]->retriever != nullptr)
        t.shard_capacity[s] = shards_[s]->retriever->n_keys();
  });
  built_ = true;
}

// ---------------------------------------------------------------------------
// Online tenant lifecycle
// ---------------------------------------------------------------------------

void ShardedOvtStore::admit_user(std::size_t user_id, const std::vector<Matrix>& keys) {
  // Synchronous admission rides the staged protocol end to end, so the
  // write-behind path cannot drift from it: same placement, same spans,
  // same per-column streams — the only difference is which thread programs.
  const StagedAdmission staged = stage_admit(user_id, keys);
  try {
    for (std::size_t i = 0; i < staged.spans.size(); ++i) program_span(staged, i);
  } catch (...) {
    abort_admit(user_id);
    throw;
  }
  commit_admit(user_id);
}

ShardedOvtStore::StagedAdmission ShardedOvtStore::stage_admit(std::size_t user_id,
                                                              const std::vector<Matrix>& keys) {
  NVCIM_CHECK_MSG(cfg_.lifecycle.enabled, "tenant lifecycle disabled in this store");
  NVCIM_CHECK_MSG(built_, "stage_admit requires a built store (use add_user before build())");
  NVCIM_CHECK_MSG(!keys.empty(), "user " << user_id << " has no keys");
  for (const Matrix& k : keys)
    NVCIM_CHECK_MSG(k.size() == key_size_, "keys must share a common size");

  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  NVCIM_CHECK_MSG(!directory_.acquire()->has_user(user_id),
                  "user " << user_id << " already registered");
  const std::size_t shard = choose_shard_locked();
  // A freed range is reusable only when every reader pinned before its
  // freeing epoch has drained — otherwise an in-flight batch could read a
  // column mid-reprogram.
  const std::uint64_t safe = epochs_.min_active(directory_.epoch());
  const std::size_t begin = shards_[shard]->allocator.allocate(keys.size(), safe, slot_align());
  // Provision crossbar capacity up front, under the staging lock: the span
  // tasks then only ever write existing subarrays, so deferred programming
  // can never race a tile-grid grow triggered by a later admission.
  ensure_shard_capacity_locked(shard, begin + keys.size());

  std::shared_ptr<const UserRouter> router;
  if (routed_) {
    router = build_router(user_id, keys, 0, keys.size());
    ++router_refreshes_;
  }
  user_keys_[user_id] = keys;
  directory_.update([&](TenantSnapshot& t) {
    t.slots[user_id] = UserSlot{shard, begin, begin + keys.size()};
    if (router != nullptr) t.routers[user_id] = router;
    t.shard_capacity[shard] = shards_[shard]->capacity.load(std::memory_order_acquire);
    // Published but pending: placement and reclamation see the slot, the
    // query path does not (is_live() is false until commit_admit()).
    t.pending.insert(user_id);
  });

  StagedAdmission staged;
  staged.user_id = user_id;
  staged.shard = shard;
  staged.begin = begin;
  staged.keys = std::make_shared<const std::vector<Matrix>>(keys);
  // Spans never cross a subarray boundary (each programming batch visits a
  // single row-tile column range — what the batched primitive hoists
  // per-visit work out of) and are further capped at program_span_cols so a
  // wide slot fans out across several workers instead of serializing on one.
  const std::size_t cap = cfg_.lifecycle.program_span_cols == 0
                              ? cfg_.crossbar.cols
                              : cfg_.lifecycle.program_span_cols;
  const std::size_t end = begin + keys.size();
  for (std::size_t c0 = begin; c0 < end;) {
    const std::size_t c1 = std::min(
        {end, (c0 / cfg_.crossbar.cols + 1) * cfg_.crossbar.cols, c0 + cap});
    staged.spans.emplace_back(c0, c1);
    c0 = c1;
  }
  return staged;
}

void ShardedOvtStore::program_span(const StagedAdmission& staged, std::size_t idx) {
  NVCIM_CHECK_MSG(idx < staged.spans.size(), "span " << idx << " out of range");
  const std::size_t c0 = staged.spans[idx].first;
  const std::size_t c1 = staged.spans[idx].second;
  // This span's slice of the staged keys; program_keys pools them per bank
  // exactly as the full-slot call would.
  const std::vector<Matrix> span_keys(staged.keys->begin() + (c0 - staged.begin),
                                      staged.keys->begin() + (c1 - staged.begin));
  Shard& s = *shards_[staged.shard];
  std::lock_guard<std::mutex> lock(s.mu);
  NVCIM_CHECK_MSG(s.retriever != nullptr, "shard " << staged.shard << " not provisioned");
  s.retriever->program_keys(c0, span_keys);
}

void ShardedOvtStore::commit_admit(std::size_t user_id) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  NVCIM_CHECK_MSG(directory_.acquire()->pending.count(user_id) > 0,
                  "user " << user_id << " has no staged admission");
  directory_.update([&](TenantSnapshot& t) { t.pending.erase(user_id); });
}

void ShardedOvtStore::abort_admit(std::size_t user_id) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  const auto snap = directory_.acquire();
  if (!snap->has_user(user_id) || snap->pending.count(user_id) == 0) return;
  const UserSlot slot = snap->slot(user_id);
  const std::uint64_t freed_epoch = directory_.update([&](TenantSnapshot& t) {
    t.slots.erase(user_id);
    t.routers.erase(user_id);
    t.pending.erase(user_id);
  });
  shards_[slot.shard]->allocator.release(slot.begin, slot.end, freed_epoch);
  user_keys_.erase(user_id);
}

bool ShardedOvtStore::user_live(std::size_t user_id) const {
  return directory_.acquire()->is_live(user_id);
}

void ShardedOvtStore::evict_user(std::size_t user_id) {
  NVCIM_CHECK_MSG(cfg_.lifecycle.enabled, "tenant lifecycle disabled in this store");
  NVCIM_CHECK_MSG(built_, "store not built");
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  const auto snap = directory_.acquire();
  const UserSlot slot = snap->slot(user_id);  // throws for unknown users
  NVCIM_CHECK_MSG(snap->pending.count(user_id) == 0,
                  "user " << user_id << " has a staged admission in flight — "
                          << "join it (wait_admitted) before evicting");
  // Unpublish first, then free: the range's reuse is deferred past every
  // reader still pinned to an epoch that contains the slot.
  const std::uint64_t freed_epoch = directory_.update([&](TenantSnapshot& t) {
    t.slots.erase(user_id);
    t.routers.erase(user_id);
  });
  shards_[slot.shard]->allocator.release(slot.begin, slot.end, freed_epoch);
  user_keys_.erase(user_id);
}

void ShardedOvtStore::migrate_user(std::size_t user_id, std::size_t to_shard) {
  NVCIM_CHECK_MSG(cfg_.lifecycle.enabled, "tenant lifecycle disabled in this store");
  NVCIM_CHECK_MSG(built_, "store not built");
  NVCIM_CHECK_MSG(to_shard < shards_.size(), "shard " << to_shard << " out of range");
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  const auto snap = directory_.acquire();
  const UserSlot from = snap->slot(user_id);
  NVCIM_CHECK_MSG(from.shard != to_shard, "user " << user_id << " already on shard " << to_shard);
  NVCIM_CHECK_MSG(snap->pending.count(user_id) == 0,
                  "user " << user_id << " has a staged admission in flight");
  const std::vector<Matrix>& keys = user_keys_.at(user_id);

  // Program-then-publish-then-free: the new columns are fully programmed
  // before any reader can be routed to them, old-epoch readers keep scoring
  // the old columns, and the old range only becomes reusable once they
  // drain. No quiesce anywhere.
  const std::uint64_t safe = epochs_.min_active(directory_.epoch());
  const std::size_t begin =
      shards_[to_shard]->allocator.allocate(keys.size(), safe, slot_align());
  program_slot_locked(to_shard, begin, keys);
  const std::uint64_t freed_epoch = directory_.update([&](TenantSnapshot& t) {
    t.slots[user_id] = UserSlot{to_shard, begin, begin + keys.size()};
    // The router is slot-local (member indices are user-local), so migration
    // never re-clusters — router refresh stays incremental by construction.
    t.shard_capacity[to_shard] = shards_[to_shard]->capacity.load(std::memory_order_acquire);
  });
  shards_[from.shard]->allocator.release(from.begin, from.end, freed_epoch);
}

std::vector<Migration> ShardedOvtStore::plan_rebalance() const {
  NVCIM_CHECK_MSG(cfg_.lifecycle.enabled, "tenant lifecycle disabled in this store");
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  std::vector<std::size_t> occupied;
  occupied.reserve(shards_.size());
  for (const auto& s : shards_) occupied.push_back(s->allocator.occupied());
  const auto snap = directory_.acquire();
  if (snap->pending.empty())
    return serve::plan_rebalance(occupied, snap->slots, cfg_.lifecycle.rebalance_tolerance,
                                 cfg_.lifecycle.max_migrations_per_cycle);
  // A mid-programming tenant cannot migrate (its columns are still being
  // written) — plan only over settled slots.
  std::unordered_map<std::size_t, UserSlot> movable = snap->slots;
  for (const std::size_t u : snap->pending) movable.erase(u);
  return serve::plan_rebalance(occupied, movable, cfg_.lifecycle.rebalance_tolerance,
                               cfg_.lifecycle.max_migrations_per_cycle);
}

PinnedDirectory ShardedOvtStore::pin() const {
  PinnedDirectory p;
  for (;;) {
    p.snap = directory_.acquire();
    p.guard = epochs_.pin(p.snap->epoch);
    // The acquire→pin pair is not atomic: a publish landing between the two
    // steps could free — and, since min_active() cannot see the pin yet,
    // immediately hand out — a slot this snapshot still references. If the
    // epoch moved, drop the stale pin (guard reassignment releases it) and
    // retry; once the epoch is unchanged AFTER the pin registered, any
    // later free carries a younger epoch and defers to this guard.
    if (directory_.epoch() == p.snap->epoch) return p;
  }
}

std::size_t ShardedOvtStore::shard_occupied(std::size_t shard) const {
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  return shards_[shard]->allocator.occupied();
}

std::size_t ShardedOvtStore::router_refreshes() const {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  return router_refreshes_;
}

// ---------------------------------------------------------------------------
// Directory reads
// ---------------------------------------------------------------------------

std::size_t ShardedOvtStore::n_users() const { return directory_.acquire()->slots.size(); }

std::size_t ShardedOvtStore::n_keys() const {
  const auto snap = directory_.acquire();
  std::size_t n = 0;
  for (const auto& [id, slot] : snap->slots) {
    (void)id;
    n += slot.n_keys();
  }
  return n;
}

bool ShardedOvtStore::has_user(std::size_t user_id) const {
  return directory_.acquire()->has_user(user_id);
}

ShardedOvtStore::UserSlot ShardedOvtStore::slot(std::size_t user_id) const {
  return directory_.acquire()->slot(user_id);
}

std::size_t ShardedOvtStore::shard_keys(std::size_t shard) const {
  NVCIM_CHECK_MSG(built_, "store not built");
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  if (cfg_.lifecycle.enabled)
    return shards_[shard]->capacity.load(std::memory_order_acquire);
  const Shard& s = *shards_[shard];
  return s.retriever != nullptr ? s.retriever->n_keys() : 0;
}

std::size_t ShardedOvtStore::router_k(std::size_t user_id) const {
  const auto snap = directory_.acquire();
  auto it = snap->routers.find(user_id);
  NVCIM_CHECK_MSG(it != snap->routers.end(), "no router for user " << user_id);
  return it->second->member_begin.size() - 1;
}

// ---------------------------------------------------------------------------
// Query path
// ---------------------------------------------------------------------------

std::size_t ShardedOvtStore::route_candidates(std::size_t shard, const Matrix& queries,
                                              const std::vector<std::size_t>& row_users,
                                              cim::CandidateSet& out, RouteScratch& rs) const {
  return route_candidates(*directory_.acquire(), shard, queries, row_users, out, rs);
}

std::size_t ShardedOvtStore::route_candidates(const TenantSnapshot& snap, std::size_t shard,
                                              const Matrix& queries,
                                              const std::vector<std::size_t>& row_users,
                                              cim::CandidateSet& out, RouteScratch& rs) const {
  NVCIM_CHECK_MSG(built_, "store not built");
  NVCIM_CHECK_MSG(routed(), "two-phase retrieval not enabled at build time");
  NVCIM_CHECK_MSG(queries.rows() == row_users.size(), "one user per query row required");
  NVCIM_CHECK_MSG(shard < snap.shard_capacity.size(), "shard " << shard << " out of range");
  const std::size_t B = queries.rows();
  const std::size_t key_size = queries.cols();
  // Bitmaps are sized against the snapshot's score width — the live shard
  // may be wider already (an admit grew it); the masked kernel treats
  // columns beyond the bitmap as never-candidates.
  out.reset(B, snap.shard_capacity[shard]);

  const float qmax =
      static_cast<float>(cim::qmax_for_bits(static_cast<int>(cfg_.two_phase.sketch_bits)));
  rs.qsketch.resize(key_size);

  for (std::size_t b = 0; b < B; ++b) {
    const UserSlot& us = snap.slot(row_users[b]);
    NVCIM_CHECK_MSG(us.shard == shard, "query row " << b << " targets shard " << us.shard
                                                    << ", not " << shard);
    const UserRouter& router = *snap.routers.at(row_users[b]);
    const std::size_t k = router.member_begin.size() - 1;

    // Sketch the query at the same bit width as the stored planes.
    const float* q = queries.data() + b * key_size;
    float ma = 0.0f;
    for (std::size_t i = 0; i < key_size; ++i) ma = std::max(ma, std::fabs(q[i]));
    const float scale = ma > 0.0f ? ma / qmax : 1.0f;
    for (std::size_t i = 0; i < key_size; ++i) rs.qsketch[i] = std::round(q[i] / scale);

    // Rank centroids by the sketch inner product (the cheap phase-1 GEMM:
    // k × key_size multiply-adds per query, vs shard_keys × key_size for
    // the exact pass).
    rs.centroid_scores.resize(k);
    for (std::size_t c = 0; c < k; ++c) {
      const float* cent = router.centroid_sketch.data() + c * key_size;
      float s = 0.0f;
      for (std::size_t i = 0; i < key_size; ++i) s += rs.qsketch[i] * cent[i];
      rs.centroid_scores[c] = s;
    }
    const std::size_t np =
        (cfg_.two_phase.nprobe == 0 || cfg_.two_phase.nprobe >= k) ? k : cfg_.two_phase.nprobe;
    rs.order.resize(k);
    for (std::size_t c = 0; c < k; ++c) rs.order[c] = static_cast<std::uint32_t>(c);
    std::partial_sort(rs.order.begin(), rs.order.begin() + np, rs.order.end(),
                      [&rs](std::uint32_t a, std::uint32_t c) {
                        return rs.centroid_scores[a] > rs.centroid_scores[c];
                      });

    // Expand the probed clusters to member keys.
    rs.cand.clear();
    for (std::size_t p = 0; p < np; ++p) {
      const std::uint32_t c = rs.order[p];
      for (std::uint32_t m = router.member_begin[c]; m < router.member_begin[c + 1]; ++m)
        rs.cand.push_back(router.members[m]);
    }

    // Optional key-sketch trim of the shortlist.
    const double frac = cfg_.two_phase.shortlist_frac;
    if (frac > 0.0 && frac < 1.0) {
      const std::size_t cap = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(frac * static_cast<double>(us.n_keys()))));
      if (rs.cand.size() > cap) {
        rs.cand_scores.resize(rs.cand.size());
        for (std::size_t j = 0; j < rs.cand.size(); ++j) {
          const float* key = router.key_sketch.data() + rs.cand[j] * key_size;
          float s = 0.0f;
          for (std::size_t i = 0; i < key_size; ++i) s += rs.qsketch[i] * key[i];
          rs.cand_scores[j] = s;
        }
        // Rank candidate positions by sketch score (deterministic ties) and
        // keep the top cap; lists are tiny (≤ slot keys), a full sort is fine.
        std::vector<std::size_t> idx(rs.cand.size());
        for (std::size_t j = 0; j < idx.size(); ++j) idx[j] = j;
        std::sort(idx.begin(), idx.end(), [&rs](std::size_t a, std::size_t c) {
          if (rs.cand_scores[a] != rs.cand_scores[c])
            return rs.cand_scores[a] > rs.cand_scores[c];
          return rs.cand[a] < rs.cand[c];  // deterministic tie-break
        });
        std::vector<std::uint32_t> kept;
        kept.reserve(cap);
        for (std::size_t j = 0; j < cap; ++j) kept.push_back(rs.cand[idx[j]]);
        rs.cand.swap(kept);
      }
    }

    NVCIM_CHECK_MSG(!rs.cand.empty(), "router produced an empty candidate set");
    for (const std::uint32_t local : rs.cand) out.set(b, us.begin + local);
  }

  // Block-granular examined count, mirroring the kernel: columns tile into
  // crossbar subarrays of cfg_.crossbar.cols, and within a tile candidate
  // work rounds up to accumulator blocks of kAccumulatorLanes / pitch
  // output columns. Sum per query over blocks containing any candidate.
  const std::size_t tile_cols = cfg_.crossbar.cols;
  const std::size_t block_cols =
      cim::Crossbar::kAccumulatorLanes / (cfg_.crossbar.differential ? 2 : 1);
  std::size_t examined = 0;
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t t0 = 0; t0 < out.n_keys; t0 += tile_cols) {
      const std::size_t t1 = std::min(out.n_keys, t0 + tile_cols);
      for (std::size_t c0 = t0; c0 < t1; c0 += block_cols) {
        const std::size_t c1 = std::min(t1, c0 + block_cols);
        if (out.any_in_range(b, c0, c1)) examined += c1 - c0;
      }
    }
  }
  return examined;
}

Matrix ShardedOvtStore::shard_scores(std::size_t shard, const Matrix& queries) {
  Matrix out;
  retrieval::CimRetriever::Scratch scratch;
  shard_scores_into(shard, queries, out, scratch);
  return out;
}

void ShardedOvtStore::shard_scores_into(std::size_t shard, const Matrix& queries, Matrix& out,
                                        retrieval::CimRetriever::Scratch& scratch,
                                        const cim::CandidateSet* candidates) {
  NVCIM_CHECK_MSG(built_, "store not built");
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  Shard& s = *shards_[shard];
  // The retriever pointer is read under the shard lock: lifecycle admits
  // may create it (empty shard) or grow it concurrently.
  std::lock_guard<std::mutex> lock(s.mu);
  NVCIM_CHECK_MSG(s.retriever != nullptr, "shard " << shard << " holds no keys");
  s.retriever->scores_batch_into(queries, out, scratch, candidates);
}

std::size_t ShardedOvtStore::retrieve_user(std::size_t user_id, const Matrix& query) {
  NVCIM_CHECK_MSG(built_, "store not built");
  // Pin like the batch path does: between reading the slot and scoring it,
  // a concurrent migrate-then-admit could otherwise reprogram the columns
  // under this reader.
  const PinnedDirectory pinned = pin();
  const UserSlot us = pinned.slot(user_id);
  Shard& s = *shards_[us.shard];
  std::lock_guard<std::mutex> lock(s.mu);
  NVCIM_CHECK_MSG(s.retriever != nullptr, "shard " << us.shard << " holds no keys");
  const Matrix scores = s.retriever->scores(query);
  return best_in_slot(scores, 0, us);
}

std::size_t ShardedOvtStore::best_in_slot(const Matrix& scores, std::size_t row,
                                          const UserSlot& slot) {
  NVCIM_CHECK_MSG(slot.end <= scores.cols(), "slot exceeds score row");
  NVCIM_CHECK_MSG(slot.n_keys() > 0, "empty slot");
  std::size_t best = slot.begin;
  for (std::size_t i = slot.begin + 1; i < slot.end; ++i)
    if (scores(row, i) > scores(row, best)) best = i;
  return best - slot.begin;
}

std::size_t ShardedOvtStore::best_in_slot_candidates(const Matrix& scores, std::size_t row,
                                                     const UserSlot& slot,
                                                     const cim::CandidateSet& candidates) {
  NVCIM_CHECK_MSG(slot.end <= scores.cols(), "slot exceeds score row");
  NVCIM_CHECK_MSG(slot.n_keys() > 0, "empty slot");
  std::size_t best = slot.end;  // sentinel: no candidate seen yet
  for (std::size_t i = slot.begin; i < slot.end; ++i) {
    if (!candidates.test(row, i)) continue;
    if (best == slot.end || scores(row, i) > scores(row, best)) best = i;
  }
  NVCIM_CHECK_MSG(best != slot.end, "no candidate inside the user's slot");
  return best - slot.begin;
}

cim::OpCounters ShardedOvtStore::counters() const {
  cim::OpCounters c;
  for (const auto& s : shards_) {
    // Bank queries mutate the counters, so reading them takes the same
    // per-shard lock as shard_scores().
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->retriever != nullptr) c += s->retriever->counters();
  }
  return c;
}

// ---------------------------------------------------------------------------
// Device-fault tolerance
// ---------------------------------------------------------------------------

std::size_t ShardedOvtStore::shard_subarrays(std::size_t shard) const {
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  return shards_[shard]->capacity.load(std::memory_order_acquire) / cols_per_subarray();
}

std::size_t ShardedOvtStore::inject_column_fault(std::size_t shard, std::size_t col,
                                                 nvm::FaultKind kind, std::size_t n_cells,
                                                 std::uint64_t seed) {
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  NVCIM_CHECK_MSG(s.retriever != nullptr, "shard " << shard << " not provisioned");
  return s.retriever->inject_column_fault(col, kind, n_cells, seed);
}

void ShardedOvtStore::kill_subarray(std::size_t shard, std::size_t sub) {
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  NVCIM_CHECK_MSG(s.retriever != nullptr, "shard " << shard << " not provisioned");
  s.retriever->kill_subarray(sub);
}

void ShardedOvtStore::set_drift_rate(double rate_per_tick) {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->retriever != nullptr) s->retriever->set_drift_rate(rate_per_tick);
  }
}

void ShardedOvtStore::advance_age(std::uint64_t ticks) {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->retriever != nullptr) s->retriever->advance_age(ticks);
  }
}

ScrubReport ShardedOvtStore::scrub_subarray(std::size_t shard, std::size_t sub,
                                            const ScrubPolicy& policy) {
  NVCIM_CHECK_MSG(built_, "store not built");
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  ScrubReport report;
  if (subarray_quarantined(shard, sub)) {  // retired — its columns no longer serve
    report.health = SubarrayHealth::Failed;
    return report;
  }
  const std::size_t cols = cols_per_subarray();
  const std::size_t begin = sub * cols, end = begin + cols;
  Shard& s = *shards_[shard];
  // Individually-retired columns (stuck hardware pulled from the placement
  // pool) stay physically deviant forever: skip them, or every pass would
  // re-flag the same dead column and pump the subarray's stuck count toward
  // quarantine. Snapshot the retired set first — lifecycle_mu_ precedes
  // s.mu in the lock order, and a column retiring between snapshot and
  // probe is benign (flagged once more, skipped next pass).
  std::vector<bool> retired(cols, false);
  if (cfg_.lifecycle.enabled) {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    for (std::size_t c = begin; c < end; ++c)
      retired[c - begin] = s.allocator.is_quarantined(c, c + 1);
  }
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.retriever == nullptr || end > s.retriever->n_keys()) return report;
    for (std::size_t c = begin; c < end; ++c) {
      if (retired[c - begin]) continue;
      const cim::ColumnProbe probe = s.retriever->probe_column(c, policy.cell_eps);
      ++report.columns_probed;
      if (probe.deviant > 0 && probe.deviant_frac() > policy.column_deviant_frac)
        report.degraded.push_back(c);
    }
  }
  {
    std::lock_guard<std::mutex> h(health_mu_);
    auto& dset = degraded_cols_[shard];
    // Re-probe supersedes the previous verdict for every column visited.
    for (std::size_t c = begin; c < end; ++c) dset.erase(c);
    for (const std::size_t c : report.degraded) dset.insert(c);
    if (report.degraded.empty())
      subarray_health_[shard].erase(sub);  // Healthy is the map's default
    else
      subarray_health_[shard][sub] = SubarrayHealth::Degraded;
  }
  report.health = report.degraded.empty() ? SubarrayHealth::Healthy : SubarrayHealth::Degraded;
  return report;
}

std::vector<std::size_t> ShardedOvtStore::repair_columns(std::size_t shard,
                                                         const std::vector<std::size_t>& cols,
                                                         const ScrubPolicy& policy) {
  NVCIM_CHECK_MSG(cfg_.lifecycle.enabled, "tenant lifecycle disabled in this store");
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  std::vector<std::size_t> stuck;
  if (cols.empty()) return stuck;
  // The lifecycle lock stabilizes the directory and the retained keys for
  // the whole pass; each column write takes the shard lock alone, so serving
  // on this shard is excluded per column, not per pass.
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  const auto snap = directory_.acquire();
  Shard& s = *shards_[shard];
  for (const std::size_t col : cols) {
    // Find the owning tenant (slots are few; a linear scan is fine at
    // maintenance cadence).
    const Matrix* key = nullptr;
    for (const auto& [user, slot] : snap->slots) {
      if (slot.shard != shard || col < slot.begin || col >= slot.end) continue;
      key = &user_keys_.at(user)[col - slot.begin];
      break;
    }
    std::lock_guard<std::mutex> slock(s.mu);
    NVCIM_CHECK_MSG(s.retriever != nullptr, "shard " << shard << " not provisioned");
    // Per-column noise streams and per-key quantization scales make the
    // rewrite bit-identical to the original programming — drifted or
    // disturbed cells land back on their pristine levels exactly.
    if (key != nullptr) s.retriever->program_keys(col, {*key});
    // An unowned deviant column has nothing to rewrite it from; a stuck cell
    // survives the rewrite either way — the re-probe decides.
    const cim::ColumnProbe probe = s.retriever->probe_column(col, policy.cell_eps);
    if (probe.deviant > 0 && probe.deviant_frac() > policy.column_deviant_frac)
      stuck.push_back(col);
  }
  {
    std::lock_guard<std::mutex> h(health_mu_);
    auto& dset = degraded_cols_[shard];
    for (const std::size_t col : cols) dset.erase(col);
    for (const std::size_t col : stuck) dset.insert(col);
  }
  return stuck;
}

ScrubOutcome ShardedOvtStore::scrub_and_repair(std::size_t shard, std::size_t sub,
                                               const ScrubPolicy& policy) {
  ScrubOutcome out;
  const ScrubReport report = scrub_subarray(shard, sub, policy);
  out.columns_probed = report.columns_probed;
  out.columns_degraded = report.degraded.size();
  out.health = report.health;
  if (report.degraded.empty()) return out;

  std::vector<std::size_t> stuck = report.degraded;
  if (policy.auto_repair) {
    stuck = repair_columns(shard, report.degraded, policy);
    out.columns_repaired = report.degraded.size() - stuck.size();
  }
  out.columns_stuck = stuck.size();
  if (stuck.empty()) {
    std::lock_guard<std::mutex> h(health_mu_);
    subarray_health_[shard].erase(sub);
    out.health = SubarrayHealth::Healthy;
    return out;
  }

  // Stuck columns are bad hardware: retire each from the placement pool
  // (later releases of overlapping slots drop the quarantined part), and
  // plan migrations for the tenants still sitting on them.
  std::vector<std::pair<std::size_t, std::size_t>> moves;  // user → target shard
  std::size_t stuck_total = 0;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    const auto snap = directory_.acquire();
    std::unordered_set<std::size_t> owners;
    for (const std::size_t col : stuck) {
      shards_[shard]->allocator.quarantine(col, col + 1);
      for (const auto& [user, slot] : snap->slots) {
        if (slot.shard != shard || col < slot.begin || col >= slot.end) continue;
        if (policy.auto_migrate && shards_.size() > 1 && snap->pending.count(user) == 0 &&
            owners.insert(user).second)
          moves.emplace_back(user, choose_migration_target_locked(shard));
        break;
      }
    }
    std::lock_guard<std::mutex> h(health_mu_);
    stuck_total = (subarray_stuck_[shard][sub] += stuck.size());
  }

  // Migrations run without the lifecycle lock held — migrate_user takes it
  // itself (program-then-publish-then-free, no quiesce). Until a tenant has
  // moved, its stuck columns stay in the degraded set, so its responses keep
  // carrying the degraded flag rather than failing.
  for (const auto& [user, target] : moves) {
    migrate_user(user, target);
    out.migrated_users.push_back(user);
  }
  {
    // Retire the stuck columns of migrated (or unowned) slots from the
    // degraded set; columns whose tenant could not move stay flagged.
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    const auto snap = directory_.acquire();
    std::lock_guard<std::mutex> h(health_mu_);
    auto& dset = degraded_cols_[shard];
    for (const std::size_t col : stuck) {
      bool occupied = false;
      for (const auto& [user, slot] : snap->slots) {
        (void)user;
        if (slot.shard == shard && col >= slot.begin && col < slot.end) {
          occupied = true;
          break;
        }
      }
      if (!occupied) dset.erase(col);
    }
    subarray_health_[shard][sub] = SubarrayHealth::Degraded;
  }
  out.health = SubarrayHealth::Degraded;

  if (stuck_total >= policy.quarantine_after) {
    quarantine_subarray(shard, sub);
    out.quarantined = true;
    out.health = SubarrayHealth::Failed;
  }
  return out;
}

void ShardedOvtStore::quarantine_subarray(std::size_t shard, std::size_t sub) {
  NVCIM_CHECK_MSG(cfg_.lifecycle.enabled, "tenant lifecycle disabled in this store");
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  const std::size_t cols = cols_per_subarray();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    shards_[shard]->allocator.quarantine(sub * cols, (sub + 1) * cols);
  }
  std::lock_guard<std::mutex> h(health_mu_);
  subarray_health_[shard][sub] = SubarrayHealth::Failed;
}

bool ShardedOvtStore::subarray_quarantined(std::size_t shard, std::size_t sub) const {
  // Health-map Failed, not allocator intersection: a single retired column
  // must not mark its whole subarray as quarantined.
  return subarray_health(shard, sub) == SubarrayHealth::Failed;
}

SubarrayHealth ShardedOvtStore::subarray_health(std::size_t shard, std::size_t sub) const {
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  std::lock_guard<std::mutex> h(health_mu_);
  const auto it = subarray_health_[shard].find(sub);
  return it == subarray_health_[shard].end() ? SubarrayHealth::Healthy : it->second;
}

std::size_t ShardedOvtStore::degraded_columns(std::size_t shard) const {
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  std::lock_guard<std::mutex> h(health_mu_);
  return degraded_cols_[shard].size();
}

bool ShardedOvtStore::user_degraded(std::size_t user_id) const {
  const auto snap = directory_.acquire();
  const auto it = snap->slots.find(user_id);
  if (it == snap->slots.end()) return false;
  const UserSlot& slot = it->second;
  std::lock_guard<std::mutex> h(health_mu_);
  const auto& dset = degraded_cols_[slot.shard];
  if (dset.empty()) return false;
  for (const std::size_t col : dset)
    if (col >= slot.begin && col < slot.end) return true;
  return false;
}

}  // namespace nvcim::serve
