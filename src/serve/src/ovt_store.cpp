#include "nvcim/serve/ovt_store.hpp"

#include <algorithm>
#include <cmath>

#include "nvcim/cim/quant.hpp"

namespace nvcim::serve {

ShardedOvtStore::ShardedOvtStore(OvtStoreConfig cfg) : cfg_(std::move(cfg)) {
  NVCIM_CHECK_MSG(cfg_.n_shards > 0, "store needs at least one shard");
  NVCIM_CHECK_MSG(cfg_.two_phase.sketch_bits >= 4 && cfg_.two_phase.sketch_bits <= 8,
                  "sketch_bits must be in [4, 8]");
  shards_.reserve(cfg_.n_shards);
  for (std::size_t s = 0; s < cfg_.n_shards; ++s) shards_.push_back(std::make_unique<Shard>());
}

void ShardedOvtStore::add_user(std::size_t user_id, const std::vector<Matrix>& keys) {
  NVCIM_CHECK_MSG(!built_, "store already built; users must be added before build()");
  NVCIM_CHECK_MSG(!keys.empty(), "user " << user_id << " has no keys");
  NVCIM_CHECK_MSG(!has_user(user_id), "user " << user_id << " already registered");

  // Least-loaded placement keeps shard key counts balanced.
  std::size_t target = 0;
  for (std::size_t s = 1; s < shards_.size(); ++s)
    if (shards_[s]->keys.size() < shards_[target]->keys.size()) target = s;

  Shard& shard = *shards_[target];
  UserSlot slot;
  slot.shard = target;
  slot.begin = shard.keys.size();
  for (const Matrix& k : keys) shard.keys.push_back(k);
  slot.end = shard.keys.size();
  slots_.emplace(user_id, slot);
}

void ShardedOvtStore::build_router(std::size_t user_id, const UserSlot& slot,
                                   const std::vector<Matrix>& shard_keys) {
  const std::size_t n = slot.n_keys();
  const std::size_t key_size = shard_keys[slot.begin].size();

  // Flatten the user's keys once: k-means points and the sketch plane share
  // this layout.
  std::vector<Matrix> points;
  Matrix key_mat(n, key_size);
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(shard_keys[slot.begin + i].flattened());
    key_mat.set_row(i, points.back());
  }

  const std::size_t k =
      std::min(cluster::select_k(n, cfg_.two_phase.k_select), n);
  cluster::KMeansConfig kmcfg = cfg_.two_phase.kmeans;
  // Deterministic, distinct stream per user: routing must not depend on
  // registration or build order.
  kmcfg.seed = kmcfg.seed + 0x9E3779B97F4A7C15ull * (user_id + 1);
  const cluster::KMeansResult km = cluster::kmeans(points, k, kmcfg);

  // Compact away empty clusters: k-means can re-seed a cluster in its final
  // iteration and converge before any point lands in it. Probing an empty
  // centroid would waste an nprobe slot — and at nprobe = 1 could produce
  // an empty candidate set.
  std::vector<std::uint32_t> remap(km.k, 0);
  std::vector<std::size_t> kept;
  {
    std::vector<std::size_t> counts(km.k, 0);
    for (const std::size_t a : km.assignment) ++counts[a];
    for (std::size_t c = 0; c < km.k; ++c) {
      if (counts[c] == 0) continue;
      remap[c] = static_cast<std::uint32_t>(kept.size());
      kept.push_back(c);
    }
  }

  UserRouter router;
  router.member_begin.assign(kept.size() + 1, 0);
  for (const std::size_t a : km.assignment) ++router.member_begin[remap[a] + 1];
  for (std::size_t c = 0; c < kept.size(); ++c)
    router.member_begin[c + 1] += router.member_begin[c];
  router.members.resize(n);
  std::vector<std::uint32_t> cursor(router.member_begin.begin(), router.member_begin.end() - 1);
  for (std::size_t i = 0; i < n; ++i)
    router.members[cursor[remap[km.assignment[i]]]++] = static_cast<std::uint32_t>(i);

  // Low-bit sketch planes over centroids and keys. Only the integer grids
  // matter: ranking by q(x)·q(c) is scale-invariant (symmetric quantization
  // scales are positive), so the scales are dropped.
  Matrix centroid_mat(kept.size(), key_size);
  for (std::size_t c = 0; c < kept.size(); ++c)
    centroid_mat.set_row(c, km.centroids[kept[c]]);
  const int bits = static_cast<int>(cfg_.two_phase.sketch_bits);
  router.centroid_sketch = cim::quantize_symmetric(centroid_mat, bits).q;
  router.key_sketch = cim::quantize_symmetric(key_mat, bits).q;

  routers_.emplace(user_id, std::move(router));
}

void ShardedOvtStore::build(Rng& rng) {
  NVCIM_CHECK_MSG(!built_, "store already built");
  NVCIM_CHECK_MSG(!slots_.empty(), "no users registered");
  retrieval::CimRetriever::Config rcfg;
  rcfg.algorithm = cfg_.algorithm;
  rcfg.ssa = cfg_.ssa;
  rcfg.crossbar = cfg_.crossbar;
  rcfg.variation = cfg_.variation;
  rcfg.program = cfg_.program;
  // Phase-1 routers are built from the clean keys before the crossbars
  // consume (and the shards drop) them. Key order inside each shard is
  // untouched — programming draws the same noise stream as the exact path,
  // so nprobe = all reproduces it bit-identically.
  if (cfg_.two_phase.enabled) {
    for (const auto& [user_id, slot] : slots_)
      build_router(user_id, slot, shards_[slot.shard]->keys);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    if (shard.keys.empty()) continue;  // more shards than users
    shard.retriever = std::make_unique<retrieval::CimRetriever>(rcfg);
    Rng shard_rng = rng.split(0x5A4D0ull + s);
    shard.retriever->store(shard.keys, shard_rng);
    shard.keys.clear();
    shard.keys.shrink_to_fit();
  }
  built_ = true;
}

std::size_t ShardedOvtStore::n_keys() const {
  std::size_t n = 0;
  for (const auto& [id, slot] : slots_) {
    (void)id;
    n += slot.n_keys();
  }
  return n;
}

std::size_t ShardedOvtStore::shard_keys(std::size_t shard) const {
  NVCIM_CHECK_MSG(built_, "store not built");
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  const Shard& s = *shards_[shard];
  return s.retriever != nullptr ? s.retriever->n_keys() : 0;
}

const ShardedOvtStore::UserSlot& ShardedOvtStore::slot(std::size_t user_id) const {
  auto it = slots_.find(user_id);
  NVCIM_CHECK_MSG(it != slots_.end(), "unknown user " << user_id);
  return it->second;
}

std::size_t ShardedOvtStore::router_k(std::size_t user_id) const {
  auto it = routers_.find(user_id);
  NVCIM_CHECK_MSG(it != routers_.end(), "no router for user " << user_id);
  return it->second.member_begin.size() - 1;
}

std::size_t ShardedOvtStore::route_candidates(std::size_t shard, const Matrix& queries,
                                              const std::vector<std::size_t>& row_users,
                                              cim::CandidateSet& out, RouteScratch& rs) const {
  NVCIM_CHECK_MSG(built_, "store not built");
  NVCIM_CHECK_MSG(routed(), "two-phase retrieval not enabled at build time");
  NVCIM_CHECK_MSG(queries.rows() == row_users.size(), "one user per query row required");
  const std::size_t B = queries.rows();
  const std::size_t key_size = queries.cols();
  out.reset(B, shard_keys(shard));

  const float qmax =
      static_cast<float>(cim::qmax_for_bits(static_cast<int>(cfg_.two_phase.sketch_bits)));
  rs.qsketch.resize(key_size);

  for (std::size_t b = 0; b < B; ++b) {
    const UserSlot& us = slot(row_users[b]);
    NVCIM_CHECK_MSG(us.shard == shard, "query row " << b << " targets shard " << us.shard
                                                    << ", not " << shard);
    const UserRouter& router = routers_.at(row_users[b]);
    const std::size_t k = router.member_begin.size() - 1;

    // Sketch the query at the same bit width as the stored planes.
    const float* q = queries.data() + b * key_size;
    float ma = 0.0f;
    for (std::size_t i = 0; i < key_size; ++i) ma = std::max(ma, std::fabs(q[i]));
    const float scale = ma > 0.0f ? ma / qmax : 1.0f;
    for (std::size_t i = 0; i < key_size; ++i) rs.qsketch[i] = std::round(q[i] / scale);

    // Rank centroids by the sketch inner product (the cheap phase-1 GEMM:
    // k × key_size multiply-adds per query, vs shard_keys × key_size for
    // the exact pass).
    rs.centroid_scores.resize(k);
    for (std::size_t c = 0; c < k; ++c) {
      const float* cent = router.centroid_sketch.data() + c * key_size;
      float s = 0.0f;
      for (std::size_t i = 0; i < key_size; ++i) s += rs.qsketch[i] * cent[i];
      rs.centroid_scores[c] = s;
    }
    const std::size_t np =
        (cfg_.two_phase.nprobe == 0 || cfg_.two_phase.nprobe >= k) ? k : cfg_.two_phase.nprobe;
    rs.order.resize(k);
    for (std::size_t c = 0; c < k; ++c) rs.order[c] = static_cast<std::uint32_t>(c);
    std::partial_sort(rs.order.begin(), rs.order.begin() + np, rs.order.end(),
                      [&rs](std::uint32_t a, std::uint32_t c) {
                        return rs.centroid_scores[a] > rs.centroid_scores[c];
                      });

    // Expand the probed clusters to member keys.
    rs.cand.clear();
    for (std::size_t p = 0; p < np; ++p) {
      const std::uint32_t c = rs.order[p];
      for (std::uint32_t m = router.member_begin[c]; m < router.member_begin[c + 1]; ++m)
        rs.cand.push_back(router.members[m]);
    }

    // Optional key-sketch trim of the shortlist.
    const double frac = cfg_.two_phase.shortlist_frac;
    if (frac > 0.0 && frac < 1.0) {
      const std::size_t cap = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(frac * static_cast<double>(us.n_keys()))));
      if (rs.cand.size() > cap) {
        rs.cand_scores.resize(rs.cand.size());
        for (std::size_t j = 0; j < rs.cand.size(); ++j) {
          const float* key = router.key_sketch.data() + rs.cand[j] * key_size;
          float s = 0.0f;
          for (std::size_t i = 0; i < key_size; ++i) s += rs.qsketch[i] * key[i];
          rs.cand_scores[j] = s;
        }
        // Rank candidate positions by sketch score (deterministic ties) and
        // keep the top cap; lists are tiny (≤ slot keys), a full sort is fine.
        std::vector<std::size_t> idx(rs.cand.size());
        for (std::size_t j = 0; j < idx.size(); ++j) idx[j] = j;
        std::sort(idx.begin(), idx.end(), [&rs](std::size_t a, std::size_t c) {
          if (rs.cand_scores[a] != rs.cand_scores[c])
            return rs.cand_scores[a] > rs.cand_scores[c];
          return rs.cand[a] < rs.cand[c];  // deterministic tie-break
        });
        std::vector<std::uint32_t> kept;
        kept.reserve(cap);
        for (std::size_t j = 0; j < cap; ++j) kept.push_back(rs.cand[idx[j]]);
        rs.cand.swap(kept);
      }
    }

    NVCIM_CHECK_MSG(!rs.cand.empty(), "router produced an empty candidate set");
    for (const std::uint32_t local : rs.cand) out.set(b, us.begin + local);
  }

  // Block-granular examined count, mirroring the kernel: columns tile into
  // crossbar subarrays of cfg_.crossbar.cols, and within a tile candidate
  // work rounds up to accumulator blocks of kAccumulatorLanes / pitch
  // output columns. Sum per query over blocks containing any candidate.
  const std::size_t tile_cols = cfg_.crossbar.cols;
  const std::size_t block_cols =
      cim::Crossbar::kAccumulatorLanes / (cfg_.crossbar.differential ? 2 : 1);
  std::size_t examined = 0;
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t t0 = 0; t0 < out.n_keys; t0 += tile_cols) {
      const std::size_t t1 = std::min(out.n_keys, t0 + tile_cols);
      for (std::size_t c0 = t0; c0 < t1; c0 += block_cols) {
        const std::size_t c1 = std::min(t1, c0 + block_cols);
        if (out.any_in_range(b, c0, c1)) examined += c1 - c0;
      }
    }
  }
  return examined;
}

Matrix ShardedOvtStore::shard_scores(std::size_t shard, const Matrix& queries) {
  Matrix out;
  retrieval::CimRetriever::Scratch scratch;
  shard_scores_into(shard, queries, out, scratch);
  return out;
}

void ShardedOvtStore::shard_scores_into(std::size_t shard, const Matrix& queries, Matrix& out,
                                        retrieval::CimRetriever::Scratch& scratch,
                                        const cim::CandidateSet* candidates) {
  NVCIM_CHECK_MSG(built_, "store not built");
  NVCIM_CHECK_MSG(shard < shards_.size(), "shard " << shard << " out of range");
  Shard& s = *shards_[shard];
  NVCIM_CHECK_MSG(s.retriever != nullptr, "shard " << shard << " holds no keys");
  std::lock_guard<std::mutex> lock(s.mu);
  s.retriever->scores_batch_into(queries, out, scratch, candidates);
}

std::size_t ShardedOvtStore::retrieve_user(std::size_t user_id, const Matrix& query) {
  NVCIM_CHECK_MSG(built_, "store not built");
  const UserSlot& us = slot(user_id);
  Shard& s = *shards_[us.shard];
  std::lock_guard<std::mutex> lock(s.mu);
  const Matrix scores = s.retriever->scores(query);
  return best_in_slot(scores, 0, us);
}

std::size_t ShardedOvtStore::best_in_slot(const Matrix& scores, std::size_t row,
                                          const UserSlot& slot) {
  NVCIM_CHECK_MSG(slot.end <= scores.cols(), "slot exceeds score row");
  NVCIM_CHECK_MSG(slot.n_keys() > 0, "empty slot");
  std::size_t best = slot.begin;
  for (std::size_t i = slot.begin + 1; i < slot.end; ++i)
    if (scores(row, i) > scores(row, best)) best = i;
  return best - slot.begin;
}

std::size_t ShardedOvtStore::best_in_slot_candidates(const Matrix& scores, std::size_t row,
                                                     const UserSlot& slot,
                                                     const cim::CandidateSet& candidates) {
  NVCIM_CHECK_MSG(slot.end <= scores.cols(), "slot exceeds score row");
  NVCIM_CHECK_MSG(slot.n_keys() > 0, "empty slot");
  std::size_t best = slot.end;  // sentinel: no candidate seen yet
  for (std::size_t i = slot.begin; i < slot.end; ++i) {
    if (!candidates.test(row, i)) continue;
    if (best == slot.end || scores(row, i) > scores(row, best)) best = i;
  }
  NVCIM_CHECK_MSG(best != slot.end, "no candidate inside the user's slot");
  return best - slot.begin;
}

cim::OpCounters ShardedOvtStore::counters() const {
  cim::OpCounters c;
  for (const auto& s : shards_) {
    // Bank queries mutate the counters, so reading them takes the same
    // per-shard lock as shard_scores().
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->retriever != nullptr) c += s->retriever->counters();
  }
  return c;
}

}  // namespace nvcim::serve
