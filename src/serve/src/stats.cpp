#include "nvcim/serve/stats.hpp"

#include <algorithm>
#include <string>

namespace nvcim::serve {

namespace {

/// Latency-scale histograms: 1 µs resolution up to ~134 s in milliseconds.
obs::HistogramConfig latency_buckets() { return obs::HistogramConfig{}; }

}  // namespace

EngineStats::EngineStats(obs::WindowConfig window)
    : latency_(&registry_.histogram("nvcim_request_latency_ms", {},
                                    "submit -> response latency per request (ms)",
                                    latency_buckets())),
      queue_wait_(&registry_.histogram("nvcim_queue_wait_ms", {},
                                       "submit -> batch dequeue wait per request (ms)",
                                       latency_buckets())),
      service_(&registry_.histogram("nvcim_service_time_ms", {},
                                    "batch dequeue -> response per request (ms)",
                                    latency_buckets())),
      queue_depth_hwm_(&registry_.gauge("nvcim_queue_depth_hwm", {},
                                        "deepest request queue seen at enqueue")),
      cache_hits_(&registry_.counter("nvcim_prompt_cache_hits_total", {},
                                     "decoded-prompt LRU hits")),
      cache_misses_(&registry_.counter("nvcim_prompt_cache_misses_total", {},
                                       "decoded-prompt LRU misses")),
      batches_(&registry_.counter("nvcim_batches_total", {}, "batches processed")),
      batched_requests_(&registry_.counter("nvcim_batched_requests_total", {},
                                           "requests summed over processed batches")),
      encode_ms_(&registry_.counter("nvcim_stage_ms_total", {{"stage", "encode"}},
                                    "cumulative stage wall-clock (ms)")),
      retrieve_ms_(&registry_.counter("nvcim_stage_ms_total", {{"stage", "retrieve"}})),
      decode_ms_(&registry_.counter("nvcim_stage_ms_total", {{"stage", "decode"}})),
      classify_ms_(&registry_.counter("nvcim_stage_ms_total", {{"stage", "classify"}})),
      parallel_fanouts_(&registry_.counter("nvcim_parallel_retrieve_fanouts_total", {},
                                           "batches whose shards fanned out")),
      candidates_examined_(&registry_.counter("nvcim_candidates_examined_total", {},
                                              "key columns the masked pass scored")),
      candidates_possible_(&registry_.counter("nvcim_candidates_possible_total", {},
                                              "key columns a full pass would score")),
      recall_samples_(&registry_.counter("nvcim_recall_samples_total", {},
                                         "rows compared against exact scoring")),
      recall_matches_(&registry_.counter("nvcim_recall_matches_total", {},
                                         "sampled rows whose winner matched exact")),
      batched_decodes_(&registry_.counter("nvcim_batched_decode_gemms_total", {},
                                          "decode GEMMs stacking >1 payload")),
      admitted_(&registry_.counter("nvcim_users_admitted_total", {},
                                   "live admissions after start()")),
      evicted_(&registry_.counter("nvcim_users_evicted_total", {}, "live evictions")),
      migrations_(&registry_.counter("nvcim_migrations_total", {},
                                     "user slots moved between shards")),
      router_refreshes_(&registry_.counter("nvcim_router_refreshes_total", {},
                                           "candidate routers (re)built")),
      rebalance_ms_(&registry_.counter("nvcim_rebalance_ms_total", {},
                                       "cumulative rebalance() wall-clock (ms)")),
      rejected_(&registry_.counter("nvcim_requests_rejected_total", {},
                                   "try_submit() rejections (queue full)")),
      programming_queue_depth_(&registry_.gauge("nvcim_programming_queue_depth", {},
                                                "staged programming spans not yet executed")),
      admission_latency_(&registry_.histogram("nvcim_admission_latency_ms", {},
                                              "stage -> live admission latency (ms)",
                                              latency_buckets())),
      program_batch_columns_(&registry_.histogram("nvcim_program_batch_columns", {},
                                                  "key columns per programming batch",
                                                  latency_buckets())),
      rejected_admissions_(&registry_.counter("nvcim_admissions_rejected_total", {},
                                              "try_admit_user() rejections (pending bound)")),
      expired_(&registry_.counter("nvcim_requests_expired_total", {},
                                  "requests dropped in-queue past their deadline")),
      deadline_missed_(&registry_.counter("nvcim_deadline_missed_total", {},
                                          "requests completed after their deadline")),
      cancelled_(&registry_.counter("nvcim_requests_cancelled_total", {},
                                    "requests cancelled before dispatch")),
      scrub_passes_(&registry_.counter("nvcim_scrub_passes_total", {},
                                       "per-subarray scrub-and-repair passes")),
      scrub_columns_probed_(&registry_.counter("nvcim_scrub_columns_probed_total", {},
                                               "columns probed against pristine levels")),
      columns_degraded_(&registry_.counter("nvcim_columns_degraded_total", {},
                                           "columns flagged degraded by scrubs")),
      columns_repaired_(&registry_.counter("nvcim_columns_repaired_total", {},
                                           "degraded columns reprogrammed clean")),
      columns_stuck_(&registry_.counter("nvcim_columns_stuck_total", {},
                                        "columns unrepairable after reprogramming")),
      scrub_migrations_(&registry_.counter("nvcim_scrub_migrations_total", {},
                                           "tenants migrated off stuck columns")),
      subarrays_quarantined_(&registry_.counter("nvcim_subarrays_quarantined_total", {},
                                                "subarrays retired from placement")),
      degraded_responses_(&registry_.counter("nvcim_degraded_responses_total", {},
                                             "responses served from degraded columns")),
      repair_latency_(&registry_.histogram("nvcim_repair_latency_ms", {},
                                           "repair-and-migrate wall-clock per scrub pass (ms)",
                                           latency_buckets())),
      queue_depth_(&registry_.gauge("nvcim_queue_depth", {},
                                    "requests queued right now")),
      tenants_retired_(&registry_.counter("nvcim_tenants_retired_total", {},
                                          "evicted tenants whose labelled series were retired")),
      throughput_1m_(&registry_.gauge("nvcim_throughput_rps_1m", {},
                                      "requests/s over the primary rolling window")),
      latency_p50_1m_(&registry_.gauge("nvcim_request_latency_ms_1m",
                                       {{"quantile", "0.5"}},
                                       "windowed latency quantiles (primary window)")),
      latency_p95_1m_(&registry_.gauge("nvcim_request_latency_ms_1m",
                                       {{"quantile", "0.95"}})),
      latency_p99_1m_(&registry_.gauge("nvcim_request_latency_ms_1m",
                                       {{"quantile", "0.99"}})),
      error_rate_1m_(&registry_.gauge("nvcim_error_rate_1m", {},
                                      "(expired+rejected)/(requests+expired+rejected) over the window")),
      degraded_rate_1m_(&registry_.gauge("nvcim_degraded_rate_1m", {},
                                         "degraded responses per request over the window")),
      deadline_miss_rate_1m_(&registry_.gauge("nvcim_deadline_miss_rate_1m", {},
                                              "late completions per request over the window")),
      window_cfg_(window),
      epoch_(Clock::now()),
      latency_window_(latency_, window),
      queue_wait_window_(queue_wait_, window),
      degraded_window_(degraded_responses_, window),
      deadline_window_(deadline_missed_, window),
      expired_window_(expired_, window),
      rejected_window_(rejected_, window) {}

void EngineStats::start_clock() {
  std::lock_guard<std::mutex> lock(mu_);
  start_ = Clock::now();
  started_ = true;
  stopped_ = false;
}

void EngineStats::stop_clock() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ && !stopped_) {
    stop_ = Clock::now();
    stopped_ = true;
  }
}

EngineStats::TenantMetrics* EngineStats::tenant_locked(std::size_t user_id) {
  if (retired_tenants_.count(user_id) > 0) return nullptr;
  TenantMetrics& tm = tenants_[user_id];
  if (tm.requests == nullptr) {
    const obs::Labels labels{{"tenant", std::to_string(user_id)}};
    tm.requests = &registry_.counter("nvcim_tenant_requests_total", labels,
                                     "requests served per tenant");
    tm.candidates = &registry_.counter("nvcim_tenant_candidates_total", labels,
                                       "routed candidate keys scored per tenant");
    tm.latency = &registry_.histogram("nvcim_tenant_request_latency_ms", labels,
                                      "per-tenant submit -> response latency (ms)",
                                      latency_buckets());
    tm.queue_wait = &registry_.histogram("nvcim_tenant_queue_wait_ms", labels,
                                         "per-tenant submit -> batch dequeue wait (ms)",
                                         latency_buckets());
    tm.expired = &registry_.counter("nvcim_tenant_requests_expired_total", labels,
                                    "per-tenant requests dropped past their deadline");
    tm.deadline_missed = &registry_.counter("nvcim_tenant_deadline_missed_total", labels,
                                            "per-tenant requests completed late");
  }
  return &tm;
}

void EngineStats::record_request(std::size_t user_id, double latency_ms,
                                 double queue_wait_ms, bool cache_hit) {
  latency_->record(latency_ms);
  queue_wait_->record(queue_wait_ms);
  service_->record(std::max(0.0, latency_ms - queue_wait_ms));
  (cache_hit ? cache_hits_ : cache_misses_)->inc();
  // Tenant histograms are recorded under mu_: retire_tenant destroys the
  // series objects, so a pointer must never escape the lock.
  std::lock_guard<std::mutex> lock(mu_);
  if (TenantMetrics* tm = tenant_locked(user_id)) {
    tm->requests->inc();
    tm->latency->record(latency_ms);
    tm->queue_wait->record(queue_wait_ms);
  }
}

void EngineStats::record_queue_depth(std::size_t depth) {
  queue_depth_->set(static_cast<double>(depth));
  queue_depth_hwm_->update_max(static_cast<double>(depth));
}

void EngineStats::record_batch(std::size_t batch_size) {
  batches_->inc();
  batched_requests_->inc(static_cast<double>(batch_size));
}

void EngineStats::record_stage_times(double encode_ms, double retrieve_ms,
                                     double decode_ms, double classify_ms) {
  encode_ms_->inc(encode_ms);
  retrieve_ms_->inc(retrieve_ms);
  decode_ms_->inc(decode_ms);
  classify_ms_->inc(classify_ms);
}

void EngineStats::record_shard_time(std::size_t shard, double ms) {
  obs::Counter* counter = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shard >= shard_ms_.size()) shard_ms_.resize(shard + 1, nullptr);
    if (shard_ms_[shard] == nullptr)
      shard_ms_[shard] = &registry_.counter("nvcim_shard_retrieve_ms_total",
                                            {{"shard", std::to_string(shard)}},
                                            "cumulative per-shard retrieval (ms)");
    counter = shard_ms_[shard];
  }
  counter->inc(ms);
}

void EngineStats::record_parallel_fanout() { parallel_fanouts_->inc(); }

void EngineStats::record_two_phase(std::size_t examined, std::size_t possible) {
  candidates_examined_->inc(static_cast<double>(examined));
  candidates_possible_->inc(static_cast<double>(possible));
}

void EngineStats::record_tenant_candidates(std::size_t user_id, std::size_t candidates) {
  std::lock_guard<std::mutex> lock(mu_);
  if (TenantMetrics* tm = tenant_locked(user_id))
    tm->candidates->inc(static_cast<double>(candidates));
}

void EngineStats::record_recall_sample(std::size_t rows, std::size_t matches) {
  recall_samples_->inc(static_cast<double>(rows));
  recall_matches_->inc(static_cast<double>(matches));
}

void EngineStats::record_batched_decode() { batched_decodes_->inc(); }

void EngineStats::record_admission(bool router_refreshed) {
  admitted_->inc();
  if (router_refreshed) router_refreshes_->inc();
}

void EngineStats::record_eviction() { evicted_->inc(); }

void EngineStats::record_migration() { migrations_->inc(); }

void EngineStats::record_rebalance(double ms) { rebalance_ms_->inc(ms); }

void EngineStats::record_rejection() { rejected_->inc(); }

void EngineStats::record_expired(std::size_t user_id) {
  expired_->inc();
  std::lock_guard<std::mutex> lock(mu_);
  if (TenantMetrics* tm = tenant_locked(user_id)) tm->expired->inc();
}

void EngineStats::record_deadline_miss(std::size_t user_id) {
  deadline_missed_->inc();
  std::lock_guard<std::mutex> lock(mu_);
  if (TenantMetrics* tm = tenant_locked(user_id)) tm->deadline_missed->inc();
}

void EngineStats::record_cancellation() { cancelled_->inc(); }

void EngineStats::record_programming_enqueued(std::size_t spans) {
  programming_queue_depth_->add(static_cast<double>(spans));
}

void EngineStats::record_program_batch(std::size_t columns) {
  programming_queue_depth_->add(-1.0);
  program_batch_columns_->record(static_cast<double>(columns));
}

void EngineStats::record_admission_latency(double ms) { admission_latency_->record(ms); }

void EngineStats::record_admission_rejection() { rejected_admissions_->inc(); }

void EngineStats::record_scrub_pass(std::size_t probed, std::size_t degraded,
                                    std::size_t repaired, std::size_t stuck,
                                    std::size_t migrated, bool quarantined) {
  scrub_passes_->inc();
  scrub_columns_probed_->inc(static_cast<double>(probed));
  columns_degraded_->inc(static_cast<double>(degraded));
  columns_repaired_->inc(static_cast<double>(repaired));
  columns_stuck_->inc(static_cast<double>(stuck));
  scrub_migrations_->inc(static_cast<double>(migrated));
  if (quarantined) subarrays_quarantined_->inc();
}

void EngineStats::record_repair_latency(double ms) { repair_latency_->record(ms); }

void EngineStats::record_degraded_response() { degraded_responses_->inc(); }

void EngineStats::record_slow_request(const SlowRequest& slow) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_.push_back(slow);
  if (slow_.size() > kMaxSlow) slow_.pop_front();
}

std::vector<SlowRequest> EngineStats::slow_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowRequest>(slow_.begin(), slow_.end());
}

void EngineStats::retire_tenant(std::size_t user_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!retired_tenants_.insert(user_id).second) return;
  tenants_.erase(user_id);
  const obs::Labels labels{{"tenant", std::to_string(user_id)}};
  bool removed = false;
  for (const char* family :
       {"nvcim_tenant_requests_total", "nvcim_tenant_candidates_total",
        "nvcim_tenant_request_latency_ms", "nvcim_tenant_queue_wait_ms",
        "nvcim_tenant_requests_expired_total", "nvcim_tenant_deadline_missed_total"}) {
    removed = registry_.remove_series(family, labels) || removed;
  }
  if (removed) tenants_retired_->inc();
}

void EngineStats::revive_tenant(std::size_t user_id) {
  std::lock_guard<std::mutex> lock(mu_);
  retired_tenants_.erase(user_id);
}

double EngineStats::now_ms() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - epoch_).count();
}

void EngineStats::advance_windows(double now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  bool boundary = latency_window_.advance(now_ms);
  boundary = queue_wait_window_.advance(now_ms) || boundary;
  boundary = degraded_window_.advance(now_ms) || boundary;
  boundary = deadline_window_.advance(now_ms) || boundary;
  boundary = expired_window_.advance(now_ms) || boundary;
  boundary = rejected_window_.advance(now_ms) || boundary;
  if (!boundary) return;  // gauges change only at bucket boundaries
  const WindowStats w = window_stats_locked(now_ms, window_cfg_.window_ms());
  throughput_1m_->set(w.throughput_rps);
  latency_p50_1m_->set(w.p50_latency_ms);
  latency_p95_1m_->set(w.p95_latency_ms);
  latency_p99_1m_->set(w.p99_latency_ms);
  error_rate_1m_->set(w.error_rate);
  degraded_rate_1m_->set(w.degraded_rate);
  deadline_miss_rate_1m_->set(w.deadline_miss_rate);
}

WindowStats EngineStats::window_stats_locked(double now_ms, double window_ms) const {
  WindowStats w;
  const obs::WindowDelta lat = latency_window_.delta(now_ms, window_ms);
  w.span_ms = lat.span_ms();
  w.requests = static_cast<std::size_t>(lat.count());
  w.throughput_rps = lat.rate_per_sec();
  if (lat.count() > 0) {
    w.p50_latency_ms = lat.value_at_quantile(0.50);
    w.p95_latency_ms = lat.value_at_quantile(0.95);
    w.p99_latency_ms = lat.value_at_quantile(0.99);
  }
  const obs::WindowDelta qw = queue_wait_window_.delta(now_ms, window_ms);
  if (qw.count() > 0) w.queue_wait_p95_ms = qw.value_at_quantile(0.95);
  const double degraded = degraded_window_.delta(now_ms, window_ms).value;
  const double missed = deadline_window_.delta(now_ms, window_ms).value;
  const double expired = expired_window_.delta(now_ms, window_ms).value;
  const double rejected = rejected_window_.delta(now_ms, window_ms).value;
  const double requests = static_cast<double>(w.requests);
  if (requests > 0.0) {
    w.degraded_rate = degraded / requests;
    w.deadline_miss_rate = missed / requests;
  }
  const double attempts = requests + expired + rejected;
  if (attempts > 0.0) w.error_rate = (expired + rejected) / attempts;
  return w;
}

WindowedSli EngineStats::windowed_at(double now_ms, double latency_threshold_ms,
                                     double window_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowedSli sli;
  sli.stats = window_stats_locked(now_ms, window_ms);
  const obs::WindowDelta lat = latency_window_.delta(now_ms, window_ms);
  sli.latency.total = lat.count();
  const std::uint64_t good = lat.count_le(latency_threshold_ms);
  sli.latency.bad = lat.count() > good ? lat.count() - good : 0;
  const double degraded = degraded_window_.delta(now_ms, window_ms).value;
  sli.availability.total = lat.count();
  sli.availability.bad =
      std::min<std::uint64_t>(lat.count(), static_cast<std::uint64_t>(degraded));
  const double missed = deadline_window_.delta(now_ms, window_ms).value;
  const double expired = expired_window_.delta(now_ms, window_ms).value;
  sli.deadline.total = lat.count() + static_cast<std::uint64_t>(expired);
  sli.deadline.bad = static_cast<std::uint64_t>(missed + expired);
  return sli;
}

WindowedSli EngineStats::windowed(double latency_threshold_ms, double window_ms) const {
  const double now = now_ms();
  advance_windows(now);
  return windowed_at(now, latency_threshold_ms, window_ms);
}

StatsSnapshot EngineStats::snapshot() const {
  StatsSnapshot s;
  const double now = now_ms();
  advance_windows(now);  // lazy window maintenance rides the read path
  s.requests = static_cast<std::size_t>(latency_->count());
  s.batches = static_cast<std::size_t>(batches_->value());
  s.cache_hits = static_cast<std::size_t>(cache_hits_->value());
  s.cache_misses = static_cast<std::size_t>(cache_misses_->value());
  const std::size_t probes = s.cache_hits + s.cache_misses;
  if (probes > 0) s.cache_hit_rate = static_cast<double>(s.cache_hits) / probes;
  if (s.batches > 0) s.avg_batch_size = batched_requests_->value() / static_cast<double>(s.batches);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ && s.requests > 0) {
      const Clock::time_point end = stopped_ ? stop_ : Clock::now();
      const double secs = std::chrono::duration<double>(end - start_).count();
      if (secs > 0.0) s.throughput_rps = static_cast<double>(s.requests) / secs;
    }
    s.shard_retrieve_ms.resize(shard_ms_.size(), 0.0);
    for (std::size_t i = 0; i < shard_ms_.size(); ++i)
      if (shard_ms_[i] != nullptr) s.shard_retrieve_ms[i] = shard_ms_[i]->value();
    s.last_minute = window_stats_locked(now, window_cfg_.window_ms());
  }
  if (s.requests > 0) {
    s.p50_latency_ms = latency_->value_at_quantile(0.50);
    s.p95_latency_ms = latency_->value_at_quantile(0.95);
    s.p99_latency_ms = latency_->value_at_quantile(0.99);
    s.queue_wait_p50_ms = queue_wait_->value_at_quantile(0.50);
    s.queue_wait_p95_ms = queue_wait_->value_at_quantile(0.95);
  }
  s.queue_depth_hwm = static_cast<std::size_t>(queue_depth_hwm_->value());
  s.encode_ms = encode_ms_->value();
  s.retrieve_ms = retrieve_ms_->value();
  s.decode_ms = decode_ms_->value();
  s.classify_ms = classify_ms_->value();
  s.parallel_retrieve_fanouts = static_cast<std::size_t>(parallel_fanouts_->value());
  s.candidates_examined = static_cast<std::size_t>(candidates_examined_->value());
  s.candidates_possible = static_cast<std::size_t>(candidates_possible_->value());
  if (s.candidates_possible > 0)
    s.pruned_fraction = 1.0 - static_cast<double>(s.candidates_examined) /
                                  static_cast<double>(s.candidates_possible);
  s.recall_samples = static_cast<std::size_t>(recall_samples_->value());
  s.recall_matches = static_cast<std::size_t>(recall_matches_->value());
  if (s.recall_samples > 0)
    s.sampled_recall_at1 =
        static_cast<double>(s.recall_matches) / static_cast<double>(s.recall_samples);
  s.batched_decode_gemms = static_cast<std::size_t>(batched_decodes_->value());
  s.users_admitted = static_cast<std::size_t>(admitted_->value());
  s.users_evicted = static_cast<std::size_t>(evicted_->value());
  s.migrations = static_cast<std::size_t>(migrations_->value());
  s.router_refreshes = static_cast<std::size_t>(router_refreshes_->value());
  s.rebalance_ms = rebalance_ms_->value();
  s.rejected_requests = static_cast<std::size_t>(rejected_->value());
  s.programming_queue_depth =
      static_cast<std::size_t>(std::max(0.0, programming_queue_depth_->value()));
  s.program_batches = static_cast<std::size_t>(program_batch_columns_->count());
  if (s.program_batches > 0 || admission_latency_->count() > 0) {
    s.admission_p50_ms = admission_latency_->value_at_quantile(0.50);
    s.admission_p95_ms = admission_latency_->value_at_quantile(0.95);
  }
  s.rejected_admissions = static_cast<std::size_t>(rejected_admissions_->value());
  s.expired_requests = static_cast<std::size_t>(expired_->value());
  s.deadline_missed = static_cast<std::size_t>(deadline_missed_->value());
  s.cancelled_requests = static_cast<std::size_t>(cancelled_->value());
  s.scrub_passes = static_cast<std::size_t>(scrub_passes_->value());
  s.scrub_columns_probed = static_cast<std::size_t>(scrub_columns_probed_->value());
  s.columns_degraded = static_cast<std::size_t>(columns_degraded_->value());
  s.columns_repaired = static_cast<std::size_t>(columns_repaired_->value());
  s.columns_stuck = static_cast<std::size_t>(columns_stuck_->value());
  s.scrub_migrations = static_cast<std::size_t>(scrub_migrations_->value());
  s.subarrays_quarantined = static_cast<std::size_t>(subarrays_quarantined_->value());
  s.degraded_responses = static_cast<std::size_t>(degraded_responses_->value());
  if (repair_latency_->count() > 0) {
    s.repair_p50_ms = repair_latency_->value_at_quantile(0.50);
    s.repair_p95_ms = repair_latency_->value_at_quantile(0.95);
  }
  s.tenants_retired = static_cast<std::size_t>(tenants_retired_->value());
  s.queue_depth = static_cast<std::size_t>(queue_depth_->value());
  return s;
}

}  // namespace nvcim::serve
