#include "nvcim/serve/lifecycle.hpp"

#include <algorithm>

namespace nvcim::serve {

// ---------------------------------------------------------------------------
// EpochTracker
// ---------------------------------------------------------------------------

void EpochTracker::Guard::release() {
  if (tracker_ != nullptr) tracker_->leave(epoch_);
  tracker_ = nullptr;
}

EpochTracker::Guard EpochTracker::pin(std::uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++active_[epoch];
  }
  return Guard(this, epoch);
}

void EpochTracker::leave(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(epoch);
  NVCIM_CHECK_MSG(it != active_.end() && it->second > 0, "epoch " << epoch << " not pinned");
  if (--it->second == 0) active_.erase(it);
}

std::uint64_t EpochTracker::min_active(std::uint64_t fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.empty() ? fallback : active_.begin()->first;
}

// ---------------------------------------------------------------------------
// TenantDirectory
// ---------------------------------------------------------------------------

std::uint64_t TenantDirectory::update(const std::function<void(TenantSnapshot&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<TenantSnapshot>(*current_);
  next->epoch = current_->epoch + 1;
  fn(*next);
  current_ = std::move(next);
  return current_->epoch;
}

// ---------------------------------------------------------------------------
// SlotAllocator
// ---------------------------------------------------------------------------

namespace {
std::size_t round_up(std::size_t v, std::size_t align) {
  return align <= 1 ? v : (v + align - 1) / align * align;
}
}  // namespace

std::size_t SlotAllocator::allocate(std::size_t n, std::uint64_t safe_epoch, std::size_t align) {
  NVCIM_CHECK_MSG(n > 0, "cannot allocate an empty slot");
  // First fit over reclaimable free ranges. The scan is deterministic
  // (ranges sorted by begin), so identical allocation histories produce
  // identical placements — the property the from-scratch bit-identity
  // tests lean on.
  for (std::size_t i = 0; i < free_.size(); ++i) {
    FreeRange& r = free_[i];
    if (r.freed_epoch > safe_epoch) continue;  // a pinned reader may still see it
    const std::size_t begin = round_up(r.begin, align);
    if (begin + n > r.end) continue;
    const FreeRange taken = r;
    // Carve [begin, begin+n); the leading alignment sliver and the trailing
    // remainder stay free with the original epoch tag.
    std::vector<FreeRange> pieces;
    if (begin > taken.begin) pieces.push_back({taken.begin, begin, taken.freed_epoch});
    if (begin + n < taken.end) pieces.push_back({begin + n, taken.end, taken.freed_epoch});
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    free_.insert(free_.begin() + static_cast<std::ptrdiff_t>(i), pieces.begin(), pieces.end());
    occupied_ += n;
    return begin;
  }
  const std::size_t begin = round_up(tail_, align);
  if (begin > tail_) free_.push_back({tail_, begin, 0});  // alignment gap, reusable at once
  tail_ = begin + n;
  occupied_ += n;
  return begin;
}

void SlotAllocator::release(std::size_t begin, std::size_t end, std::uint64_t freed_epoch) {
  NVCIM_CHECK_MSG(begin < end && end <= tail_, "bad release [" << begin << ", " << end << ")");
  occupied_ -= end - begin;
  // Quarantined columns never return to the free list: hand back only the
  // clean sub-ranges of the released slot.
  std::size_t b = begin;
  for (const auto& q : quarantine_) {
    if (q.second <= b) continue;
    if (q.first >= end) break;
    if (b < q.first) insert_free(b, std::min(q.first, end), freed_epoch);
    b = std::max(b, q.second);
    if (b >= end) return;
  }
  if (b < end) insert_free(b, end, freed_epoch);
}

void SlotAllocator::quarantine(std::size_t begin, std::size_t end) {
  NVCIM_CHECK_MSG(begin < end, "bad quarantine [" << begin << ", " << end << ")");
  // Drop the quarantined intersection of the free list.
  std::vector<FreeRange> kept;
  kept.reserve(free_.size() + 1);
  for (const FreeRange& r : free_) {
    if (r.end <= begin || r.begin >= end) {
      kept.push_back(r);
      continue;
    }
    if (r.begin < begin) kept.push_back({r.begin, begin, r.freed_epoch});
    if (r.end > end) kept.push_back({end, r.end, r.freed_epoch});
  }
  free_ = std::move(kept);
  // Keep every quarantined range below the tail, so the tail-bump path can
  // never re-enter it; the clean run in front stays allocatable.
  if (end > tail_) {
    if (tail_ < begin) insert_free(tail_, begin, 0);
    tail_ = end;
  }
  // Merge into the quarantine list, counting only newly covered columns.
  std::size_t b = begin, e = end, already = 0;
  std::vector<std::pair<std::size_t, std::size_t>> merged;
  merged.reserve(quarantine_.size() + 1);
  for (const auto& q : quarantine_) {
    if (q.second < b || q.first > e) {
      merged.push_back(q);
      continue;
    }
    const std::size_t lo = std::max(begin, q.first);
    const std::size_t hi = std::min(end, q.second);
    if (lo < hi) already += hi - lo;
    b = std::min(b, q.first);
    e = std::max(e, q.second);
  }
  merged.push_back({b, e});
  std::sort(merged.begin(), merged.end());
  quarantine_ = std::move(merged);
  quarantined_cols_ += (end - begin) - already;
}

bool SlotAllocator::is_quarantined(std::size_t begin, std::size_t end) const {
  for (const auto& q : quarantine_) {
    if (q.second <= begin) continue;
    if (q.first >= end) break;
    return true;
  }
  return false;
}

void SlotAllocator::insert_free(std::size_t begin, std::size_t end, std::uint64_t freed_epoch) {
  auto it = std::lower_bound(free_.begin(), free_.end(), begin,
                             [](const FreeRange& r, std::size_t b) { return r.begin < b; });
  it = free_.insert(it, {begin, end, freed_epoch});
  // Coalesce with neighbours; the merged range keeps the *younger* (larger)
  // epoch tag — reuse waits for the most recently freed piece, never less.
  if (it != free_.begin()) {
    auto prev = it - 1;
    if (prev->end == it->begin) {
      prev->end = it->end;
      prev->freed_epoch = std::max(prev->freed_epoch, it->freed_epoch);
      it = free_.erase(it) - 1;
    }
  }
  auto next = it + 1;
  if (next != free_.end() && it->end == next->begin) {
    it->end = next->end;
    it->freed_epoch = std::max(it->freed_epoch, next->freed_epoch);
    free_.erase(next);
  }
}

// ---------------------------------------------------------------------------
// Rebalance planning
// ---------------------------------------------------------------------------

std::vector<Migration> plan_rebalance(const std::vector<std::size_t>& shard_occupied,
                                      const std::unordered_map<std::size_t, UserSlot>& slots,
                                      double tolerance, std::size_t max_migrations) {
  std::vector<Migration> plan;
  if (shard_occupied.size() < 2 || slots.empty()) return plan;

  std::vector<std::size_t> occ = shard_occupied;
  // Users of each shard sorted by size then id, so planning is deterministic.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> by_shard(occ.size());
  for (const auto& [user, slot] : slots)
    by_shard[slot.shard].emplace_back(slot.n_keys(), user);
  for (auto& users : by_shard) std::sort(users.begin(), users.end());

  std::size_t total = 0;
  for (const std::size_t o : occ) total += o;
  const double mean = static_cast<double>(total) / static_cast<double>(occ.size());

  while (plan.size() < max_migrations) {
    std::size_t hi = 0, lo = 0;
    for (std::size_t s = 1; s < occ.size(); ++s) {
      if (occ[s] > occ[hi]) hi = s;
      if (occ[s] < occ[lo]) lo = s;
    }
    if (static_cast<double>(occ[hi]) <= (1.0 + tolerance) * mean) break;
    if (by_shard[hi].empty()) break;
    // Move the user whose size comes closest to halving the hi/lo gap
    // without overshooting past the mean in either direction.
    const std::size_t gap = occ[hi] - occ[lo];
    std::size_t pick = by_shard[hi].size();
    for (std::size_t i = 0; i < by_shard[hi].size(); ++i) {
      const std::size_t sz = by_shard[hi][i].first;
      if (2 * sz > gap) break;  // sorted ascending: everything after overshoots
      pick = i;                 // largest size with 2·sz <= gap
    }
    if (pick == by_shard[hi].size()) break;  // every user overshoots — stop
    const auto [size, user] = by_shard[hi][pick];
    by_shard[hi].erase(by_shard[hi].begin() + static_cast<std::ptrdiff_t>(pick));
    occ[hi] -= size;
    occ[lo] += size;
    plan.push_back({user, hi, lo, size});
  }
  return plan;
}

}  // namespace nvcim::serve
