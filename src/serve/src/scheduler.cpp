#include "nvcim/serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

namespace nvcim::serve {

namespace {

/// In-tenant ordering: tightest deadline first, then higher priority, then
/// arrival. Total and strict on distinct requests (seq is unique).
bool more_urgent(const QueuedRequest& a, const QueuedRequest& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.seq < b.seq;
}

double seconds_between(QueuedRequest::Clock::time_point a, QueuedRequest::Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

RequestScheduler::RequestScheduler(SchedulerConfig cfg) : cfg_(cfg) {
  if (cfg_.quantum == 0) cfg_.quantum = 1;
}

RequestScheduler::Tenant& RequestScheduler::tenant(std::size_t user_id) {
  auto it = tenants_.find(user_id);
  if (it != tenants_.end()) return it->second;
  Tenant t;
  t.rate_rps = cfg_.default_rate_limit_rps;
  t.tokens = static_cast<double>(cfg_.quantum);  // full burst on first sight
  return tenants_.emplace(user_id, std::move(t)).first->second;
}

void RequestScheduler::ring_add(std::size_t user_id) {
  Tenant& t = tenants_.at(user_id);
  if (t.in_ring) return;
  ring_.push_back(user_id);
  t.in_ring = true;
}

void RequestScheduler::ring_remove(std::size_t user_id) {
  Tenant& t = tenants_.at(user_id);
  if (!t.in_ring) return;
  const auto it = std::find(ring_.begin(), ring_.end(), user_id);
  const std::size_t idx = static_cast<std::size_t>(it - ring_.begin());
  ring_.erase(it);
  if (ring_pos_ > idx) --ring_pos_;
  if (!ring_.empty() && ring_pos_ >= ring_.size()) ring_pos_ = 0;
  t.in_ring = false;
  t.deficit = 0;  // credit does not survive going idle (classic DRR)
}

void RequestScheduler::refill(Tenant& t, Clock::time_point now, double burst) {
  if (t.rate_rps <= 0.0) return;
  if (t.last_refill == Clock::time_point{}) {
    t.last_refill = now;
  } else if (now > t.last_refill) {
    t.tokens = std::min(burst, t.tokens + t.rate_rps * seconds_between(t.last_refill, now));
    t.last_refill = now;
  }
}

bool RequestScheduler::take_token(Tenant& t, Clock::time_point now, double burst) {
  if (t.rate_rps <= 0.0) return true;
  refill(t, now, burst);
  if (t.tokens < 1.0) return false;
  t.tokens -= 1.0;
  return true;
}

std::size_t RequestScheduler::queued_for(std::size_t user_id) const {
  const auto it = tenants_.find(user_id);
  return it == tenants_.end() ? 0 : it->second.q.size();
}

void RequestScheduler::push(QueuedRequest req, Clock::time_point now) {
  (void)now;
  req.seq = next_seq_++;
  const std::size_t uid = req.user_id;
  Tenant& t = tenant(uid);
  if (cfg_.policy == SchedPolicy::Fifo) {
    // Arrival order IS the order; nothing to insert-sort.
    t.q.push_back(std::move(req));
  } else {
    // Insert sorted by urgency. Appends stay O(1) for the common
    // no-deadline/equal-priority stream (everything later sorts later).
    auto it = std::upper_bound(t.q.begin(), t.q.end(), req,
                               [](const QueuedRequest& a, const QueuedRequest& b) {
                                 return more_urgent(a, b);
                               });
    t.q.insert(it, std::move(req));
  }
  ring_add(uid);
  ++size_;
}

RequestScheduler::Clock::time_point RequestScheduler::next_deadline() const {
  Clock::time_point best = QueuedRequest::kNoDeadline;
  for (const auto& [uid, t] : tenants_) {
    (void)uid;
    if (t.q.empty()) continue;
    if (cfg_.policy == SchedPolicy::Fifo) {
      // FIFO queues are arrival-ordered, so every entry must be scanned.
      for (const QueuedRequest& r : t.q) best = std::min(best, r.deadline);
    } else {
      // Urgency-sorted: the front carries the tenant's tightest deadline.
      best = std::min(best, t.q.front().deadline);
    }
  }
  return best;
}

std::vector<QueuedRequest> RequestScheduler::take_expired(Clock::time_point now) {
  std::vector<QueuedRequest> expired;
  if (size_ == 0) return expired;
  for (auto& [uid, t] : tenants_) {
    for (auto it = t.q.begin(); it != t.q.end();) {
      if (it->has_deadline() && it->deadline < now) {
        expired.push_back(std::move(*it));
        it = t.q.erase(it);
        --size_;
      } else if (cfg_.policy != SchedPolicy::Fifo) {
        break;  // urgency-sorted: every later entry's deadline is >= this one's
      } else {
        ++it;
      }
    }
    if (t.q.empty()) ring_remove(uid);
  }
  return expired;
}

void RequestScheduler::pop_front_into(Tenant& t, std::vector<QueuedRequest>& out) {
  out.push_back(std::move(t.q.front()));
  t.q.pop_front();
  --size_;
}

std::vector<QueuedRequest> RequestScheduler::pop_batch_fifo(std::size_t max_batch,
                                                            Clock::time_point now) {
  // Global arrival order across tenants: repeatedly take the front with the
  // lowest seq. O(tenants) per pop — fine at serving batch sizes. Rate
  // limits still apply (a limited tenant's backlog waits, others pass it).
  std::vector<QueuedRequest> out;
  const double burst = static_cast<double>(cfg_.quantum);
  while (out.size() < max_batch && size_ > 0) {
    Tenant* best = nullptr;
    std::size_t best_uid = 0;
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (auto& [uid, t] : tenants_) {
      if (t.q.empty()) continue;
      refill(t, now, burst);
      if (t.rate_rps > 0.0 && t.tokens < 1.0) continue;  // throttled: skip
      if (t.q.front().seq < best_seq) {
        best_seq = t.q.front().seq;
        best = &t;
        best_uid = uid;
      }
    }
    if (best == nullptr) break;  // everything left is rate-limited
    if (best->rate_rps > 0.0) best->tokens -= 1.0;
    pop_front_into(*best, out);
    if (best->q.empty()) ring_remove(best_uid);
  }
  return out;
}

std::vector<QueuedRequest> RequestScheduler::pop_batch(std::size_t max_batch,
                                                       Clock::time_point now) {
  if (cfg_.policy == SchedPolicy::Fifo) return pop_batch_fifo(max_batch, now);

  std::vector<QueuedRequest> out;
  out.reserve(std::min(max_batch, size_));
  const double burst = static_cast<double>(cfg_.quantum);
  const auto urgent_cutoff =
      now + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(cfg_.urgency_window_ms));

  // Phase 1 — critical EDF pull: requests whose deadline falls inside the
  // urgency window go first, tightest deadline across ALL tenants, ahead of
  // the round-robin rotation. This is what turns "the batch forms against
  // the tightest live deadline" from a per-tenant property into a global one.
  while (out.size() < max_batch) {
    Tenant* best = nullptr;
    std::size_t best_uid = 0;
    const QueuedRequest* best_req = nullptr;
    for (auto& [uid, t] : tenants_) {
      if (t.q.empty()) continue;
      const QueuedRequest& front = t.q.front();
      if (!front.has_deadline() || front.deadline > urgent_cutoff) continue;
      if (best_req == nullptr || more_urgent(front, *best_req)) {
        best_req = &front;
        best = &t;
        best_uid = uid;
      }
    }
    if (best == nullptr) break;
    if (!take_token(*best, now, burst)) {
      // Rate limits are strict: even a critical deadline cannot launder a
      // tenant past its bucket. Skip the tenant for this batch by treating
      // its front as non-critical — cheapest way is to stop the pull when
      // the most urgent tenant is throttled (others get their DRR turn).
      break;
    }
    pop_front_into(*best, out);
    if (best->q.empty()) ring_remove(best_uid);
  }

  // Phase 2 — deficit round-robin over the remaining tenants: each visited
  // tenant earns `quantum` credit and dequeues while it has credit, tokens
  // and the batch has room. A full lap with no progress means everything
  // left is rate-limited — stop rather than spin.
  while (out.size() < max_batch && !ring_.empty()) {
    bool progressed = false;
    const std::size_t lap = ring_.size();
    for (std::size_t step = 0; step < lap && out.size() < max_batch; ++step) {
      if (ring_.empty()) break;
      if (ring_pos_ >= ring_.size()) ring_pos_ = 0;
      const std::size_t uid = ring_[ring_pos_];
      Tenant& t = tenants_.at(uid);
      t.deficit += cfg_.quantum;
      while (t.deficit > 0 && !t.q.empty() && out.size() < max_batch) {
        if (!take_token(t, now, burst)) break;
        pop_front_into(t, out);
        --t.deficit;
        progressed = true;
      }
      if (t.q.empty()) {
        ring_remove(uid);  // adjusts ring_pos_; do not advance
      } else {
        t.deficit = std::min(t.deficit, cfg_.quantum);  // cap banked credit
        ++ring_pos_;
      }
    }
    if (!progressed) break;
  }
  return out;
}

bool RequestScheduler::cancel(std::uint64_t id, QueuedRequest* out) {
  for (auto& [uid, t] : tenants_) {
    for (auto it = t.q.begin(); it != t.q.end(); ++it) {
      if (it->id != id) continue;
      if (out != nullptr) *out = std::move(*it);
      t.q.erase(it);
      --size_;
      if (t.q.empty()) ring_remove(uid);
      return true;
    }
  }
  return false;
}

std::vector<QueuedRequest> RequestScheduler::drain() {
  std::vector<QueuedRequest> out;
  out.reserve(size_);
  for (auto& [uid, t] : tenants_) {
    for (QueuedRequest& r : t.q) out.push_back(std::move(r));
    t.q.clear();
    ring_remove(uid);
  }
  // Deterministic hand-off order (arrival) regardless of map iteration.
  std::sort(out.begin(), out.end(),
            [](const QueuedRequest& a, const QueuedRequest& b) { return a.seq < b.seq; });
  size_ = 0;
  return out;
}

void RequestScheduler::set_rate_limit(std::size_t user_id, double rps) {
  Tenant& t = tenant(user_id);
  t.rate_rps = rps;
  t.tokens = std::min(t.tokens, static_cast<double>(cfg_.quantum));
}

}  // namespace nvcim::serve
