#include "nvcim/serve/engine.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <utility>

namespace nvcim::serve {

namespace {

OvtStoreConfig store_config(const ServingConfig& cfg) {
  OvtStoreConfig sc;
  sc.n_shards = cfg.n_shards;
  sc.algorithm = cfg.algorithm;
  sc.ssa = cfg.ssa;
  sc.crossbar = cfg.crossbar;
  sc.variation = cfg.variation;
  sc.two_phase = cfg.two_phase;
  sc.lifecycle = cfg.lifecycle;
  return sc;
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

ServingEngine::ServingEngine(llm::TinyLM& model, const data::LampTask& task, ServingConfig cfg)
    : model_(&model),
      task_(&task),
      cfg_(cfg),
      store_(store_config(cfg)),
      cache_(cfg.cache_capacity),
      sched_(cfg.scheduler),
      stats_(cfg.window),
      tracer_(cfg.tracing) {
  NVCIM_CHECK_MSG(cfg_.n_threads > 0, "engine needs at least one worker");
  NVCIM_CHECK_MSG(cfg_.max_batch > 0, "max_batch must be positive");
  NVCIM_CHECK_MSG(cfg_.queue_capacity > 0, "queue_capacity must be positive");
}

ServingEngine::~ServingEngine() { stop(); }

void ServingEngine::add_deployment(std::size_t user_id, core::TrainedDeployment deployment) {
  NVCIM_CHECK_MSG(!running_, "cannot add deployments while running (use admit_user)");
  NVCIM_CHECK_MSG(deployment.n_ovts() > 0, "deployment for user " << user_id << " is empty");
  NVCIM_CHECK_MSG(deployment.autoencoder != nullptr,
                  "deployment for user " << user_id << " has no autoencoder");
  store_.add_user(user_id, deployment.keys);
  auto owned = std::make_shared<const core::TrainedDeployment>(std::move(deployment));
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(deployments_mu_);
    generation = next_generation_++;
    deployments_[user_id] = DepRef{std::move(owned), generation};
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    live_generations_.insert(generation);
  }
  // A re-used tenant id gets fresh labelled series even if a prior
  // incarnation was retired on eviction.
  stats_.revive_tenant(user_id);
}

AdmissionHandle ServingEngine::admit(std::size_t user_id, core::TrainedDeployment deployment,
                                     AdmitOptions opts) {
  if (!admit_user_impl(user_id, std::move(deployment), /*may_block=*/!opts.non_blocking))
    return AdmissionHandle{};  // rejected: pending-admission bound hit
  AdmissionHandle handle(this, user_id);
  if (opts.wait) handle.wait();
  return handle;
}

void ServingEngine::admit_user(std::size_t user_id, core::TrainedDeployment deployment) {
  admit(user_id, std::move(deployment));
}

bool ServingEngine::try_admit_user(std::size_t user_id, core::TrainedDeployment deployment) {
  return admit(user_id, std::move(deployment), AdmitOptions{/*non_blocking=*/true, false})
      .valid();
}

bool ServingEngine::admit_user_impl(std::size_t user_id, core::TrainedDeployment deployment,
                                    bool may_block) {
  if (!store_.built()) {
    add_deployment(user_id, std::move(deployment));
    return true;
  }
  NVCIM_CHECK_MSG(cfg_.lifecycle.enabled, "tenant lifecycle disabled in this engine");
  NVCIM_CHECK_MSG(deployment.n_ovts() > 0, "deployment for user " << user_id << " is empty");
  NVCIM_CHECK_MSG(deployment.autoencoder != nullptr,
                  "deployment for user " << user_id << " has no autoencoder");
  auto owned = std::make_shared<const core::TrainedDeployment>(std::move(deployment));
  obs::Span span(&tracer_, "admit_user", "lifecycle", "user",
                 static_cast<std::int64_t>(user_id));
  const auto t0 = std::chrono::steady_clock::now();

  // Write-behind only with a pool to write behind: before start() (or after
  // stop()) the synchronous path keeps the call self-contained.
  const bool deferred = cfg_.lifecycle.write_behind && running_;
  std::shared_ptr<AdmissionJoin> join;
  if (deferred) {
    std::unique_lock<std::mutex> lock(admissions_mu_);
    if (!may_block && admissions_.size() >= cfg_.lifecycle.max_pending_admissions) {
      // Overloaded: the programming backlog is at its bound — reject and
      // let the caller shed or retry. The counter is the observable signal.
      stats_.record_admission_rejection();
      return false;
    }
    admissions_cv_.wait(lock, [this] {
      return admissions_.size() < cfg_.lifecycle.max_pending_admissions;
    });
    NVCIM_CHECK_MSG(admissions_.count(user_id) == 0,
                    "user " << user_id << " admission already in flight");
    join = std::make_shared<AdmissionJoin>();
    admissions_.emplace(user_id, join);  // reserves one pending-admission slot
  }

  // Deployment first, directory second: the moment a batch can see the
  // user's slot, its deployment must resolve.
  std::uint64_t generation = 0;
  try {
    std::lock_guard<std::mutex> lock(deployments_mu_);
    NVCIM_CHECK_MSG(deployments_.count(user_id) == 0,
                    "user " << user_id << " already deployed");
    generation = next_generation_++;
    deployments_[user_id] = DepRef{owned, generation};
    stats_.revive_tenant(user_id);  // re-admitted id => fresh labelled series
  } catch (...) {
    if (join != nullptr) {
      {
        std::lock_guard<std::mutex> lock(admissions_mu_);
        admissions_.erase(user_id);
      }
      admissions_cv_.notify_all();
    }
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    live_generations_.insert(generation);
  }

  if (!deferred) {
    try {
      store_.admit_user(user_id, owned->keys);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(deployments_mu_);
        deployments_.erase(user_id);
      }
      std::lock_guard<std::mutex> lock(cache_mu_);
      live_generations_.erase(generation);
      throw;
    }
    stats_.record_admission(/*router_refreshed=*/store_.routed());
    stats_.record_admission_latency(ms_between(t0, std::chrono::steady_clock::now()));
    return true;
  }

  // Write-behind: stage now (placement, allocation, router, Pending
  // publish — the cheap part), program later. Each per-subarray span
  // becomes one aux task; workers interleave them with serving batches,
  // and the last span to land commits the tenant live.
  std::shared_ptr<const ShardedOvtStore::StagedAdmission> staged;
  try {
    staged = std::make_shared<const ShardedOvtStore::StagedAdmission>(
        store_.stage_admit(user_id, owned->keys));
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(deployments_mu_);
      deployments_.erase(user_id);
    }
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      live_generations_.erase(generation);
    }
    {
      std::lock_guard<std::mutex> lock(admissions_mu_);
      admissions_.erase(user_id);
    }
    admissions_cv_.notify_all();
    throw;
  }
  join->remaining = staged->spans.size();
  stats_.record_programming_enqueued(staged->spans.size());

  // Same enqueue gate as rebalance(): tasks enqueued while running_ &&
  // !stopping_ holds UNDER queue_mu_ are guaranteed a live worker to drain
  // them (workers empty the aux queue before exiting); otherwise program
  // inline — the admission still settles through run_admission_span.
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (running_ && !stopping_) {
      for (std::size_t i = 0; i < staged->spans.size(); ++i)
        aux_queue_.emplace_back([this, staged, join, i, generation, t0](WorkerState&) {
          run_admission_span(staged, join, i, generation, t0);
        });
      enqueued = true;
    }
  }
  if (enqueued) {
    queue_cv_.notify_all();
  } else {
    for (std::size_t i = 0; i < staged->spans.size(); ++i)
      run_admission_span(staged, join, i, generation, t0);
  }
  return true;
}

void ServingEngine::run_admission_span(
    const std::shared_ptr<const ShardedOvtStore::StagedAdmission>& staged,
    const std::shared_ptr<AdmissionJoin>& join, std::size_t idx, std::uint64_t generation,
    std::chrono::steady_clock::time_point t0) {
  {
    obs::Span span(&tracer_, "program_span", "lifecycle", "user",
                   static_cast<std::int64_t>(staged->user_id), "span",
                   static_cast<std::int64_t>(idx));
    std::exception_ptr error;
    try {
      store_.program_span(*staged, idx);
    } catch (...) {
      error = std::current_exception();
    }
    stats_.record_program_batch(staged->spans[idx].second - staged->spans[idx].first);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(join->mu);
      if (error != nullptr && join->error == nullptr) join->error = error;
      last = --join->remaining == 0;
    }
    if (!last) return;
  }

  // Last span settles the admission: commit on success, full rollback
  // (slot, deployment, generation) on any span's error.
  std::exception_ptr final_error;
  {
    std::lock_guard<std::mutex> lock(join->mu);
    final_error = join->error;
  }
  if (final_error == nullptr) {
    try {
      store_.commit_admit(staged->user_id);
      stats_.record_admission(/*router_refreshed=*/store_.routed());
      stats_.record_admission_latency(ms_between(t0, std::chrono::steady_clock::now()));
    } catch (...) {
      final_error = std::current_exception();
    }
  }
  if (final_error != nullptr) {
    store_.abort_admit(staged->user_id);
    {
      std::lock_guard<std::mutex> lock(deployments_mu_);
      deployments_.erase(staged->user_id);
    }
    std::lock_guard<std::mutex> lock(cache_mu_);
    live_generations_.erase(generation);
  }
  // Settle order matters: the store is consistent (committed or rolled
  // back) BEFORE the admissions_ entry disappears, so a wait_admitted()
  // that misses the entry can trust user_live()/find_deployment().
  {
    std::lock_guard<std::mutex> lock(admissions_mu_);
    admissions_.erase(staged->user_id);
  }
  admissions_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(join->mu);
    join->error = final_error;
    join->settled = true;
  }
  join->cv.notify_all();
}

void ServingEngine::wait_admitted(std::size_t user_id) {
  std::shared_ptr<AdmissionJoin> join;
  {
    std::lock_guard<std::mutex> lock(admissions_mu_);
    auto it = admissions_.find(user_id);
    if (it != admissions_.end()) join = it->second;
  }
  if (join == nullptr) {
    // No admission in flight: either it already settled (user is live) or
    // the user was never admitted / its admission failed and rolled back.
    NVCIM_CHECK_MSG(find_deployment(user_id).dep != nullptr && store_.user_live(user_id),
                    "user " << user_id << " has no admission to wait for");
    return;
  }
  std::unique_lock<std::mutex> lock(join->mu);
  join->cv.wait(lock, [&join] { return join->settled; });
  if (join->error != nullptr) std::rethrow_exception(join->error);
}

void ServingEngine::evict_user(std::size_t user_id) {
  NVCIM_CHECK_MSG(cfg_.lifecycle.enabled, "tenant lifecycle disabled in this engine");
  obs::Span span(&tracer_, "evict_user", "lifecycle", "user",
                 static_cast<std::int64_t>(user_id));
  // A write-behind admission still in flight must settle first (the store
  // refuses to evict pending slots). A failed admission rolls itself back,
  // and the evict below then throws unknown-user — same as if the user had
  // never been admitted.
  {
    std::shared_ptr<AdmissionJoin> join;
    {
      std::lock_guard<std::mutex> lock(admissions_mu_);
      auto it = admissions_.find(user_id);
      if (it != admissions_.end()) join = it->second;
    }
    if (join != nullptr) {
      std::unique_lock<std::mutex> jlock(join->mu);
      join->cv.wait(jlock, [&join] { return join->settled; });
    }
  }
  // Unpublish the slot first (new batches stop seeing the user), then drop
  // the deployment (in-flight batches hold their own shared_ptr), then
  // purge the user's decoded prompts. Cache keys carry the admission
  // generation, so a late single-flight insert from a still-draining batch
  // can never be served to a future re-admission of this user id.
  store_.evict_user(user_id);  // throws for unknown users
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(deployments_mu_);
    auto it = deployments_.find(user_id);
    NVCIM_CHECK_MSG(it != deployments_.end(), "user " << user_id << " has no deployment");
    generation = it->second.generation;
    deployments_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    live_generations_.erase(generation);  // late decode completions won't re-cache
    cache_.erase_if([generation](const std::pair<std::size_t, std::size_t>& key) {
      return key.first == generation;
    });
  }
  stats_.record_eviction();
  // Cardinality control: drop the evicted tenant's labelled series so a
  // churn workload cannot grow the exposition without bound.
  stats_.retire_tenant(user_id);
}

std::size_t ServingEngine::rebalance() {
  NVCIM_CHECK_MSG(cfg_.lifecycle.enabled, "tenant lifecycle disabled in this engine");
  obs::Span span(&tracer_, "rebalance", "lifecycle");
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Migration> plan = store_.plan_rebalance();
  std::atomic<std::size_t> migrated{0};
  if (plan.empty()) {
    stats_.record_rebalance(ms_between(t0, std::chrono::steady_clock::now()));
    return 0;
  }
  // Each migration programs one user's columns into the target shard and
  // republishes the directory. A migration that fails (e.g. the user was
  // evicted between planning and execution) is skipped, never fatal.
  const auto migrate_one = [&](const Migration& m) {
    obs::Span mspan(&tracer_, "migrate_user", "lifecycle", "user",
                    static_cast<std::int64_t>(m.user_id), "to_shard",
                    static_cast<std::int64_t>(m.to_shard));
    try {
      store_.migrate_user(m.user_id, m.to_shard);
      stats_.record_migration();
      ++migrated;
    } catch (...) {
    }
  };
  // Fan the migrations out as aux tasks: workers run them between (and
  // with priority over) serving batches, exactly like per-shard retrieval
  // subtasks — quiesce-free by construction. The enqueue is gated on
  // running_ && !stopping_ UNDER queue_mu_ (the lock stop() sets stopping_
  // under): tasks enqueued while that holds are guaranteed a live worker to
  // drain them (workers empty the aux queue before exiting); otherwise the
  // migrations run inline on this thread instead of waiting forever.
  struct Group {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  } group;
  group.remaining = plan.size();
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (running_ && !stopping_) {
      for (const Migration& m : plan)
        aux_queue_.emplace_back([&migrate_one, &group, m](WorkerState&) {
          migrate_one(m);
          std::lock_guard<std::mutex> glock(group.mu);
          if (--group.remaining == 0) group.cv.notify_all();
        });
      enqueued = true;
    }
  }
  if (enqueued) {
    queue_cv_.notify_all();
    std::unique_lock<std::mutex> lock(group.mu);
    group.cv.wait(lock, [&group] { return group.remaining == 0; });
  } else {
    for (const Migration& m : plan) migrate_one(m);
  }
  stats_.record_rebalance(ms_between(t0, std::chrono::steady_clock::now()));
  return migrated.load();
}

ScrubOutcome ServingEngine::scrub_now() {
  NVCIM_CHECK_MSG(cfg_.lifecycle.enabled, "tenant lifecycle disabled in this engine");
  return scrub_round(0);
}

ScrubOutcome ServingEngine::scrub_round(std::size_t budget) {
  ScrubOutcome total;
  // Snapshot the (shard, subarray) universe up front; capacity grown while
  // the round runs is picked up next round.
  std::vector<std::pair<std::size_t, std::size_t>> units;
  for (std::size_t s = 0; s < store_.n_shards(); ++s)
    for (std::size_t a = 0; a < store_.shard_subarrays(s); ++a) units.emplace_back(s, a);
  if (units.empty()) return total;
  const std::size_t n = budget == 0 ? units.size() : std::min(budget, units.size());
  std::size_t cursor = 0;
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    cursor = scrub_cursor_;
    scrub_cursor_ = (scrub_cursor_ + n) % units.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto [shard, sub] = units[(cursor + i) % units.size()];
    obs::Span span(&tracer_, "scrub_subarray", "scrub", "shard",
                   static_cast<std::int64_t>(shard), "subarray",
                   static_cast<std::int64_t>(sub));
    const auto t0 = std::chrono::steady_clock::now();
    const ScrubOutcome out = store_.scrub_and_repair(shard, sub, cfg_.scrubber.policy);
    // Repair wall-clock only for passes that found something — clean probes
    // would otherwise drown the histogram in near-zero samples.
    if (out.columns_degraded > 0)
      stats_.record_repair_latency(ms_between(t0, std::chrono::steady_clock::now()));
    stats_.record_scrub_pass(out.columns_probed, out.columns_degraded, out.columns_repaired,
                             out.columns_stuck, out.migrated_users.size(), out.quarantined);
    // Scrub-driven migrations also count toward the global migration total,
    // like rebalance()'s.
    for (std::size_t u = 0; u < out.migrated_users.size(); ++u) stats_.record_migration();
    total.columns_probed += out.columns_probed;
    total.columns_degraded += out.columns_degraded;
    total.columns_repaired += out.columns_repaired;
    total.columns_stuck += out.columns_stuck;
    total.migrated_users.insert(total.migrated_users.end(), out.migrated_users.begin(),
                                out.migrated_users.end());
    total.quarantined = total.quarantined || out.quarantined;
  }
  return total;
}

void ServingEngine::scrubber_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(scrub_mu_);
      scrub_cv_.wait_for(lock,
                         std::chrono::duration<double, std::milli>(cfg_.scrubber.interval_ms),
                         [this] { return scrub_stop_; });
      if (scrub_stop_) return;
    }
    // One round in flight at a time: a tick that lands while a slow repair
    // is still running is skipped, not queued behind it.
    if (scrub_inflight_.exchange(true)) continue;
    bool enqueued = false;
    {
      // Same gate as rebalance(): tasks enqueued while running_ &&
      // !stopping_ holds UNDER queue_mu_ are guaranteed a live worker to
      // drain them (workers empty the aux queue before exiting).
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (running_ && !stopping_) {
        aux_queue_.emplace_back([this](WorkerState&) {
          scrub_round(cfg_.scrubber.subarrays_per_round);
          scrub_inflight_.store(false);
        });
        enqueued = true;
      }
    }
    if (enqueued)
      queue_cv_.notify_one();
    else
      scrub_inflight_.store(false);
  }
}

ServingEngine::DepRef ServingEngine::find_deployment(std::size_t user_id) const {
  std::lock_guard<std::mutex> lock(deployments_mu_);
  auto it = deployments_.find(user_id);
  return it == deployments_.end() ? DepRef{} : it->second;
}

std::size_t ServingEngine::n_users() const {
  std::lock_guard<std::mutex> lock(deployments_mu_);
  return deployments_.size();
}

void ServingEngine::start() {
  NVCIM_CHECK_MSG(!running_, "engine already started");
  std::size_t first_user_rep = 0;
  {
    std::lock_guard<std::mutex> lock(deployments_mu_);
    NVCIM_CHECK_MSG(!deployments_.empty(), "no deployments to serve");
    first_user_rep = deployments_.begin()->second.dep->keys[0].size();
  }
  if (!store_.built()) {
    Rng rng(cfg_.seed);
    store_.build(rng);
  }
  // All users share one key shape (enforced by the store), so every flattened
  // query representation has the width of the first user's first key.
  rep_size_ = first_user_rep;
  stopping_ = false;
  running_ = true;
  stats_.start_clock();
  stats_.refresh_windows();  // seed the delta rings at serving start
  workers_.reserve(cfg_.n_threads);
  for (std::size_t t = 0; t < cfg_.n_threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
  if (cfg_.scrubber.enabled) {
    NVCIM_CHECK_MSG(cfg_.lifecycle.enabled,
                    "scrubber requires the tenant lifecycle (repair needs the mutable store)");
    {
      std::lock_guard<std::mutex> lock(scrub_mu_);
      scrub_stop_ = false;
    }
    scrubber_ = std::thread([this] { scrubber_loop(); });
  }
  start_introspection();
}

void ServingEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  capacity_cv_.notify_all();
  // The scrub ticker goes first: with stopping_ already set it can no
  // longer enqueue rounds, and joining it here keeps it from touching the
  // queue while the workers drain.
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  if (scrubber_.joinable()) scrubber_.join();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  // Deterministic shutdown for write-behind admissions: the workers drained
  // every staged programming span above (aux tasks run before exit), so
  // every in-flight admission has settled — committed live or rolled back —
  // by the time the map empties. The wait is for stragglers settling inline
  // on a producer thread; it is bounded, never indefinite.
  {
    std::unique_lock<std::mutex> lock(admissions_mu_);
    admissions_cv_.wait(lock, [this] { return admissions_.empty(); });
  }
  // Still-queued requests never dangle and are never silently served after
  // shutdown began: every undispatched future settles with EngineStopped
  // BEFORE stop() returns (in-flight batches completed above, in join).
  std::vector<QueuedRequest> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover = sched_.drain();
  }
  for (QueuedRequest& r : leftover)
    finish_error(r, std::make_exception_ptr(EngineStopped(
                        "engine stopped with request " + std::to_string(r.id) +
                        " still queued")));
  stats_.record_queue_depth(0);  // queue fully drained
  running_ = false;
  // Freeze the throughput clock: every request is accounted for once the
  // workers have drained, so later snapshots stay stable instead of diving
  // toward zero against a still-running wall clock.
  stats_.stop_clock();
  // The admin endpoint stays up through the drain (a scrape during shutdown
  // sees the final counters) and goes down with the engine.
  stop_introspection();
}

void ServingEngine::finish(QueuedRequest& req, Response&& resp) {
  // Future first, callback second: a callback that itself waits on the
  // future must never deadlock. Callback errors are swallowed — they run on
  // serving threads.
  auto on_complete = std::move(req.on_complete);
  Response cb_copy;
  if (on_complete) cb_copy = resp;
  req.promise.set_value(std::move(resp));
  if (on_complete) {
    try {
      on_complete(cb_copy, nullptr);
    } catch (...) {
    }
  }
}

void ServingEngine::finish_error(QueuedRequest& req, std::exception_ptr error) {
  auto on_complete = std::move(req.on_complete);
  req.promise.set_exception(error);
  if (on_complete) {
    try {
      on_complete(Response{}, error);
    } catch (...) {
    }
  }
}

RequestHandle ServingEngine::submit(Request request, SubmitOptions opts) {
  NVCIM_CHECK_MSG(running_, "engine not started");
  // Both halves of an admission must be visible: the deployment AND the
  // store slot — and the slot must be LIVE (fully programmed), not a
  // write-behind Pending still being written. Checking only the deployment
  // would let a request race into a batch whose pinned epoch predates the
  // slot and fail spuriously; admitting a Pending one would score
  // half-programmed columns. The failure is structured, not fatal: the
  // handle's future settles with UnknownUser, so async callers (who may
  // race a submit against an eviction or a still-pending admission) learn
  // of it on the same channel as every other per-request error.
  if (find_deployment(request.user_id).dep == nullptr || !store_.user_live(request.user_id)) {
    QueuedRequest qr;
    qr.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    qr.user_id = request.user_id;
    qr.on_complete = std::move(opts.on_complete);
    RequestHandle handle(this, qr.id, qr.promise.get_future());
    finish_error(qr, std::make_exception_ptr(UnknownUser(
                         "unknown or not-yet-live user " + std::to_string(request.user_id))));
    return handle;
  }
  QueuedRequest qr;
  qr.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  qr.user_id = request.user_id;
  qr.query = std::move(request.query);
  qr.priority = opts.priority;
  qr.enqueued = std::chrono::steady_clock::now();
  if (opts.deadline_ms > 0.0)
    qr.deadline = qr.enqueued + std::chrono::duration_cast<QueuedRequest::Clock::duration>(
                                    std::chrono::duration<double, std::milli>(opts.deadline_ms));
  qr.on_complete = std::move(opts.on_complete);
  const QueuedRequest::Clock::time_point enqueued = qr.enqueued;
  RequestHandle handle(this, qr.id, qr.promise.get_future());
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (opts.overload_policy == OverloadPolicy::Reject) {
      NVCIM_CHECK_MSG(!stopping_, "engine is stopping");
      if (sched_.size() >= cfg_.queue_capacity) {
        // Overloaded: reject instead of blocking — the caller owns the
        // shed/retry policy. The counter is the observable signal.
        stats_.record_rejection();
        return RequestHandle{};
      }
    } else {
      capacity_cv_.wait(lock,
                        [this] { return sched_.size() < cfg_.queue_capacity || stopping_; });
      NVCIM_CHECK_MSG(!stopping_, "engine is stopping");
    }
    sched_.push(std::move(qr), enqueued);
    stats_.record_queue_depth(sched_.size());
  }
  queue_cv_.notify_one();
  return handle;
}

bool ServingEngine::cancel(std::uint64_t request_id) {
  QueuedRequest out;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!sched_.cancel(request_id, &out)) return false;
    stats_.record_queue_depth(sched_.size());
  }
  capacity_cv_.notify_one();  // one queue slot freed
  finish_error(out, std::make_exception_ptr(Cancelled(
                        "request " + std::to_string(request_id) +
                        " cancelled before dispatch")));
  stats_.record_cancellation();
  return true;
}

void ServingEngine::set_rate_limit(std::size_t user_id, double rps) {
  std::lock_guard<std::mutex> lock(queue_mu_);
  sched_.set_rate_limit(user_id, rps);
}

std::future<Response> ServingEngine::submit(std::size_t user_id, data::Sample query) {
  return submit(Request{user_id, std::move(query)}).take_future();
}

std::optional<std::future<Response>> ServingEngine::try_submit(std::size_t user_id,
                                                               data::Sample query) {
  SubmitOptions opts;
  opts.overload_policy = OverloadPolicy::Reject;
  RequestHandle handle = submit(Request{user_id, std::move(query)}, std::move(opts));
  if (!handle.valid()) return std::nullopt;
  return handle.take_future();
}

Response ServingEngine::serve(std::size_t user_id, const data::Sample& query) {
  return submit(Request{user_id, query}).get();
}

void ServingEngine::worker_loop() {
  using Clock = std::chrono::steady_clock;
  WorkerState ws;
  for (;;) {
    AuxTask aux;
    std::vector<QueuedRequest> batch;
    std::vector<QueuedRequest> expired;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return !aux_queue_.empty() || !sched_.empty() || stopping_; });
      // Aux tasks first: they belong to a batch already in flight, and the
      // coordinating worker is blocked until they finish.
      if (!aux_queue_.empty()) {
        aux = std::move(aux_queue_.front());
        aux_queue_.pop_front();
      } else if (stopping_) {
        // Queued-but-undispatched requests are NOT drained after stop():
        // they fail with EngineStopped (stop() settles them once every
        // worker has joined). Aux tasks above still run — they belong to
        // batches already in flight.
        return;
      } else {
        // Deadline-aware batch formation. Expire the already-dead first:
        // they must never reach the crossbar, and they must not count
        // toward min_batch.
        expired = sched_.take_expired(Clock::now());
        // Coalescing: give a thin queue a bounded window to fill up to
        // min_batch — but never sleep past the tightest live deadline
        // (dispatch early instead of letting it expire mid-window). An aux
        // task arriving during the window preempts the wait.
        if (!sched_.empty() && cfg_.min_batch > 1 && sched_.size() < cfg_.min_batch) {
          double window_ms = cfg_.batch_window_ms;
          const Clock::time_point tightest = sched_.next_deadline();
          if (tightest != QueuedRequest::kNoDeadline) {
            const double to_deadline = ms_between(Clock::now(), tightest);
            window_ms = std::max(0.0, std::min(window_ms, to_deadline));
          }
          if (window_ms > 0.0) {
            queue_cv_.wait_for(
                lock, std::chrono::duration<double, std::milli>(window_ms), [this] {
                  return sched_.size() >= cfg_.min_batch || !aux_queue_.empty() || stopping_;
                });
          }
          if (!aux_queue_.empty()) {
            aux = std::move(aux_queue_.front());
            aux_queue_.pop_front();
          }
        }
        if (!aux) {
          // Re-check expiry at dispatch time (the window may have outlived a
          // deadline that arrived mid-wait), then pull the batch under the
          // configured policy (DRR fair rotation + EDF-critical pull).
          const Clock::time_point now = Clock::now();
          auto late = sched_.take_expired(now);
          std::move(late.begin(), late.end(), std::back_inserter(expired));
          if (!stopping_) batch = sched_.pop_batch(cfg_.max_batch, now);
        }
        // Dequeue/expiry shrank the queue: keep the live gauge honest (the
        // HWM half of record_queue_depth is monotone, so this is set-only).
        stats_.record_queue_depth(sched_.size());
      }
    }
    if (!expired.empty()) {
      capacity_cv_.notify_all();
      expire_requests(std::move(expired));
    }
    if (aux) {
      aux(ws);
      continue;
    }
    if (batch.empty()) continue;  // another worker drained it
    capacity_cv_.notify_all();
    process_batch(std::move(batch), ws);
  }
}

void ServingEngine::expire_requests(std::vector<QueuedRequest>&& expired) {
  const auto now = std::chrono::steady_clock::now();
  for (QueuedRequest& r : expired) {
    stats_.record_expired(r.user_id);
    if (tracer_.enabled())
      tracer_.complete("request_expired", "request", tracer_.to_us(r.enqueued),
                       tracer_.to_us(now), "user", static_cast<std::int64_t>(r.user_id),
                       "priority", static_cast<std::int64_t>(r.priority));
    finish_error(r, std::make_exception_ptr(DeadlineExceeded(
                        "request " + std::to_string(r.id) + " for user " +
                        std::to_string(r.user_id) + " expired after " +
                        std::to_string(ms_between(r.enqueued, now)) + " ms queued")));
  }
}

void ServingEngine::process_batch(std::vector<QueuedRequest>&& batch, WorkerState& ws) {
  stats_.record_batch(batch.size());
  const std::size_t B = batch.size();

  // A bad request (e.g. a query the backbone rejects) must fail only its own
  // future, never the worker thread — an exception escaping worker_loop
  // would std::terminate the whole serving process.
  std::vector<char> failed(B, 0);
  const auto fail = [&](std::size_t i) {
    failed[i] = 1;
    finish_error(batch[i], std::current_exception());
  };

  using Clock = std::chrono::steady_clock;
  Clock::time_point tick = Clock::now();
  const auto lap = [&tick] {
    const Clock::time_point now = Clock::now();
    const double ms = ms_between(tick, now);
    tick = now;
    return ms;
  };

  // Ids link the span tree together: every stage/shard span carries this
  // batch id, every request span carries it too, so a Perfetto query can
  // walk request → batch → stage → shard.
  const std::uint64_t batch_id = next_batch_id_.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point batch_start = tick;
  obs::Span batch_span(&tracer_, "process_batch", "batch", "batch",
                       static_cast<std::int64_t>(batch_id), "B",
                       static_cast<std::int64_t>(B));
  const auto trace_stage = [&](const char* name, Clock::time_point t0,
                               Clock::time_point t1) {
    if (tracer_.enabled())
      tracer_.complete(name, "stage", tracer_.to_us(t0), tracer_.to_us(t1), "batch",
                       static_cast<std::int64_t>(batch_id));
  };

  // Pin the tenant directory: every stage of this batch resolves slots,
  // routers and shard widths against this one epoch, however many admits /
  // evictions / migrations land while the batch is in flight. The pin also
  // defers reuse of any slot freed after this point, so the crossbar
  // columns this batch reads cannot be reprogrammed underneath it.
  // Deployments are pinned the same way (shared_ptr per request): eviction
  // drops the map entry, not the object.
  const PinnedDirectory pinned = store_.pin();
  std::vector<DepRef> deps(B);
  for (std::size_t i = 0; i < B; ++i) {
    deps[i] = find_deployment(batch[i].user_id);
    if (deps[i].dep == nullptr || !pinned.snap->is_live(batch[i].user_id)) {
      // Evicted between submit and batch assembly (or evicted and
      // re-admitted as a still-Pending write-behind slot whose columns are
      // mid-programming) — fail just this request.
      failed[i] = 1;
      finish_error(batch[i], std::make_exception_ptr(Error(
                                 "user " + std::to_string(batch[i].user_id) +
                                 " was evicted")));
    }
  }

  // ---- Stage 1: batched encode, fused across users sharing an autoencoder.
  // One row of `reps` per request (failed rows are never read); groups keyed
  // by the deployment's autoencoder identity run as one stacked encode GEMM.
  Matrix& reps = ws.reps;
  reps.resize(B, rep_size_);
  std::vector<std::pair<const compress::Autoencoder*, std::vector<std::size_t>>> groups;
  for (std::size_t i = 0; i < B; ++i) {
    if (failed[i]) continue;
    const compress::Autoencoder* ae = deps[i].dep->autoencoder.get();
    auto it = std::find_if(groups.begin(), groups.end(),
                           [ae](const auto& g) { return g.first == ae; });
    if (it == groups.end()) {
      groups.emplace_back(ae, std::vector<std::size_t>{});
      it = std::prev(groups.end());
    }
    it->second.push_back(i);
  }
  for (const auto& [ae, members] : groups) {
    (void)ae;
    bool fused = false;
    try {
      std::vector<const core::TrainedDeployment*> group_deps;
      std::vector<const data::Sample*> queries;
      group_deps.reserve(members.size());
      queries.reserve(members.size());
      for (const std::size_t i : members) {
        group_deps.push_back(deps[i].dep.get());
        queries.push_back(&batch[i].query);
      }
      const Matrix group_reps =
          core::TrainedDeployment::query_representation_batch(*model_, group_deps, queries,
                                                              &ws.encode);
      NVCIM_CHECK_MSG(group_reps.cols() == rep_size_, "representation width mismatch");
      for (std::size_t r = 0; r < members.size(); ++r)
        std::memcpy(reps.data() + members[r] * rep_size_, group_reps.data() + r * rep_size_,
                    rep_size_ * sizeof(float));
      fused = true;
    } catch (...) {
      // Fall through to the serial path below: one malformed query must not
      // poison the whole group's GEMM.
    }
    if (!fused) {
      for (const std::size_t i : members) {
        try {
          const Matrix rep =
              deps[i].dep->query_representation(*model_, batch[i].query);
          NVCIM_CHECK_MSG(rep.size() == rep_size_, "representation width mismatch");
          std::memcpy(reps.data() + i * rep_size_, rep.data(), rep_size_ * sizeof(float));
        } catch (...) {
          fail(i);
        }
      }
    }
  }
  const Clock::time_point encode_t0 = tick;
  const double encode_ms = lap();
  trace_stage("encode", encode_t0, tick);

  // ---- Stage 2: shard-grouped retrieval. One batched MVM pass per shard;
  // each row is then masked to its user's slot. Shard ids are dense, so a
  // plain vector replaces the old per-batch std::map. When the batch spans
  // several shards, the per-shard passes are independent (distinct crossbar
  // banks, disjoint request rows): they are fanned out onto the worker
  // pool's aux queue, idle workers steal them, and this worker helps drain
  // tasks until its group completes — so results are identical to the
  // serial shard loop, just overlapped in time.
  std::vector<std::size_t> ovt_index(B, 0);
  const bool routed = cfg_.two_phase.enabled && store_.routed();
  std::vector<std::vector<std::size_t>> by_shard(store_.n_shards());
  for (std::size_t i = 0; i < B; ++i)
    if (!failed[i]) by_shard[pinned.slot(batch[i].user_id).shard].push_back(i);
  if (routed) {
    // Group a shard pass's rows by user: the masked kernel skips an
    // accumulator block only when none of its 4-query register tile needs
    // it, so packing one user's queries adjacently keeps each tile's
    // candidate columns confined to (mostly) one slot. Row order does not
    // affect any row's scores — each query's accumulation is independent.
    for (auto& members : by_shard)
      std::stable_sort(members.begin(), members.end(),
                       [&](std::size_t a, std::size_t b2) {
                         return pinned.slot(batch[a].user_id).begin <
                                pinned.slot(batch[b2].user_id).begin;
                       });
  }

  // One shard's retrieval, on the *executing* worker's scratch: pack that
  // shard's representation rows, (with two-phase retrieval) route their
  // candidate bitmaps, score them against the shard's banks — masked to the
  // candidates when routed — and mask each row to its user's slot. A
  // failure poisons only the shard's own requests (their indices are
  // touched by no other task).
  const auto retrieve_shard = [&](std::size_t shard, WorkerState& tws) {
    const std::vector<std::size_t>& members = by_shard[shard];
    const Clock::time_point t0 = Clock::now();
    try {
      Matrix& queries = tws.shard_queries;
      queries.resize(members.size(), rep_size_);
      for (std::size_t r = 0; r < members.size(); ++r)
        std::memcpy(queries.data() + r * rep_size_, reps.data() + members[r] * rep_size_,
                    rep_size_ * sizeof(float));
      if (routed) {
        tws.row_users.clear();
        tws.row_users.reserve(members.size());
        for (const std::size_t i : members) tws.row_users.push_back(batch[i].user_id);
        const std::size_t examined = store_.route_candidates(
            *pinned.snap, shard, queries, tws.row_users, tws.candidates, tws.route);
        store_.shard_scores_into(shard, queries, tws.shard_scores, tws.retrieve,
                                 &tws.candidates);
        for (std::size_t r = 0; r < members.size(); ++r) {
          const std::size_t i = members[r];
          ovt_index[i] = ShardedOvtStore::best_in_slot_candidates(
              tws.shard_scores, r, pinned.slot(batch[i].user_id), tws.candidates);
          stats_.record_tenant_candidates(batch[i].user_id, tws.candidates.count_row(r));
        }
        stats_.record_two_phase(examined,
                                members.size() * pinned.snap->shard_capacity[shard]);
        // Sampled recall-vs-exact: every Nth routed pass also runs the
        // unmasked scoring and counts rows whose winner matches.
        const std::size_t every = cfg_.two_phase.recall_sample_every;
        if (every > 0 && routed_passes_++ % every == 0) {
          store_.shard_scores_into(shard, queries, tws.exact_scores, tws.exact_retrieve);
          std::size_t matches = 0;
          for (std::size_t r = 0; r < members.size(); ++r) {
            const UserSlot& us = pinned.slot(batch[members[r]].user_id);
            if (ShardedOvtStore::best_in_slot(tws.exact_scores, r, us) == ovt_index[members[r]])
              ++matches;
          }
          stats_.record_recall_sample(members.size(), matches);
        }
      } else {
        store_.shard_scores_into(shard, queries, tws.shard_scores, tws.retrieve);
        for (std::size_t r = 0; r < members.size(); ++r) {
          const std::size_t i = members[r];
          ovt_index[i] =
              ShardedOvtStore::best_in_slot(tws.shard_scores, r, pinned.slot(batch[i].user_id));
        }
      }
    } catch (...) {
      for (const std::size_t i : members)
        if (!failed[i]) fail(i);
    }
    const Clock::time_point t1 = Clock::now();
    stats_.record_shard_time(shard, ms_between(t0, t1));
    if (tracer_.enabled())
      tracer_.complete("shard_retrieve", "shard", tracer_.to_us(t0), tracer_.to_us(t1),
                       "shard", static_cast<std::int64_t>(shard), "batch",
                       static_cast<std::int64_t>(batch_id));
  };

  std::vector<std::size_t> active_shards;
  for (std::size_t shard = 0; shard < by_shard.size(); ++shard)
    if (!by_shard[shard].empty()) active_shards.push_back(shard);

  if (cfg_.parallel_retrieval && active_shards.size() > 1) {
    stats_.record_parallel_fanout();
    struct Group {
      std::mutex mu;
      std::condition_variable cv;
      std::size_t remaining;
    } group;
    group.remaining = active_shards.size();
    const auto finish_one = [&group] {
      std::lock_guard<std::mutex> lock(group.mu);
      if (--group.remaining == 0) group.cv.notify_all();
    };
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      for (const std::size_t shard : active_shards)
        aux_queue_.emplace_back([&retrieve_shard, &finish_one, shard](WorkerState& tws) {
          retrieve_shard(shard, tws);
          finish_one();
        });
    }
    queue_cv_.notify_all();
    // Help until this group is done: execute aux tasks (ours or another
    // batch's) while any are queued; once every remaining task is claimed by
    // some worker, wait for the group's completion signal. Tasks never
    // block, so helping cannot deadlock — with one worker this degenerates
    // to the serial loop.
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(group.mu);
        if (group.remaining == 0) break;
      }
      AuxTask task;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (!aux_queue_.empty()) {
          task = std::move(aux_queue_.front());
          aux_queue_.pop_front();
        }
      }
      if (task) {
        task(ws);
        continue;
      }
      std::unique_lock<std::mutex> lock(group.mu);
      group.cv.wait(lock, [&group] { return group.remaining == 0; });
      break;
    }
  } else {
    for (const std::size_t shard : active_shards) retrieve_shard(shard, ws);
  }
  const Clock::time_point retrieve_t0 = tick;
  const double retrieve_ms = lap();
  trace_stage("retrieve", retrieve_t0, tick);

  // ---- Stage 3: decoded-prompt fetch through the cache. One lock pass
  // probes the cache and registers this worker as the single-flight leader
  // for every distinct missed key; the batch's missed payload rows then
  // stack into ONE decode GEMM per shared autoencoder (rows are independent
  // under decode, so results are bit-identical to per-key decodes), results
  // land in the cache, flights complete, and followers of other workers'
  // flights wait last — leaders never block on followers, so the order is
  // deadlock-free.
  std::vector<std::shared_ptr<const Matrix>> prompts(B);
  std::vector<char> cache_hit(B, 0);
  using CacheKey = std::pair<std::size_t, std::size_t>;
  struct LeaderDecode {
    std::size_t req;  ///< first request index that missed on this key
    CacheKey key;
    std::shared_ptr<InFlightDecode> flight;
    std::shared_ptr<const Matrix> value;
    std::exception_ptr error;
  };
  std::vector<LeaderDecode> leaders;
  std::vector<std::pair<std::size_t, std::shared_ptr<InFlightDecode>>> followers;
  // Capacity up front: once a flight is registered in inflight_, the vector
  // push recording it must not throw, or the key would wedge forever.
  leaders.reserve(B);
  followers.reserve(B);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (std::size_t i = 0; i < B; ++i) {
      if (failed[i]) continue;
      // Keyed by the admission generation, not the user id: a re-admitted
      // user id must never see its predecessor's cached prompts.
      const CacheKey key{deps[i].generation, ovt_index[i]};
      if (auto hit = cache_.get(key)) {
        prompts[i] = *hit;
        cache_hit[i] = 1;
        continue;
      }
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        // Another worker (or an earlier request of this batch) is already
        // decoding this key — coalesce onto its flight.
        ++coalesced_fetches_;
        followers.emplace_back(i, it->second);
        continue;
      }
      LeaderDecode ld;
      ld.req = i;
      ld.key = key;
      ld.flight = std::make_shared<InFlightDecode>();
      inflight_.emplace(key, ld.flight);
      leaders.push_back(std::move(ld));
    }
  }

  if (!leaders.empty()) {
    // Group the missed keys by autoencoder (cross-user groups share one
    // decoder exactly as the encode stage shares encoders) and decode each
    // group in a single stacked GEMM. A group failure falls back to per-key
    // decodes so one bad payload cannot poison its neighbours. The whole
    // region is fenced: every registered flight MUST reach the completion
    // loop below — an escaped exception (e.g. bad_alloc in the grouping)
    // becomes the error of every still-unfinished leader, never a wedged
    // in-flight key that blocks future fetchers forever.
    try {
      std::vector<std::pair<const compress::Autoencoder*, std::vector<std::size_t>>> dgroups;
      for (std::size_t l = 0; l < leaders.size(); ++l) {
        const compress::Autoencoder* ae = deps[leaders[l].req].dep->autoencoder.get();
        auto it = std::find_if(dgroups.begin(), dgroups.end(),
                               [ae](const auto& g) { return g.first == ae; });
        if (it == dgroups.end()) {
          dgroups.emplace_back(ae, std::vector<std::size_t>{});
          it = std::prev(dgroups.end());
        }
        it->second.push_back(l);
      }
      for (const auto& [ae, group] : dgroups) {
        bool fused = false;
        if (group.size() > 1) {
          try {
            ws.decode_parts.clear();
            ws.decode_parts.reserve(group.size());
            for (const std::size_t l : group)
              ws.decode_parts.push_back(
                  &deps[leaders[l].req].dep->stored_codes[leaders[l].key.second]);
            stack_rows_into(ws.decode_parts, ws.decode_stacked);
            ae->decode_into(ws.decode_stacked, ws.decode_out, &ws.encode.autoencoder);
            std::size_t r0 = 0;
            for (std::size_t g = 0; g < group.size(); ++g) {
              const std::size_t rows = ws.decode_parts[g]->rows();
              leaders[group[g]].value =
                  std::make_shared<const Matrix>(ws.decode_out.row_slice(r0, r0 + rows));
              r0 += rows;
              ++prompt_decodes_;
            }
            stats_.record_batched_decode();
            fused = true;
          } catch (...) {
            for (const std::size_t l : group) leaders[l].value.reset();
          }
        }
        if (!fused) {
          for (const std::size_t l : group) {
            try {
              auto owned = std::make_shared<Matrix>();
              deps[leaders[l].req].dep->decode_prompt_into(leaders[l].key.second, *owned,
                                                           &ws.encode.autoencoder);
              leaders[l].value = std::move(owned);
              ++prompt_decodes_;
            } catch (...) {
              leaders[l].error = std::current_exception();
            }
          }
        }
      }
    } catch (...) {
      for (LeaderDecode& ld : leaders)
        if (!ld.value && !ld.error) ld.error = std::current_exception();
    }
    for (LeaderDecode& ld : leaders) {
      complete_decode_flight(ld.key, ld.flight, ld.value, ld.error);
      if (ld.error) {
        if (!failed[ld.req]) {
          failed[ld.req] = 1;
          finish_error(batch[ld.req], ld.error);
        }
      } else {
        prompts[ld.req] = ld.value;
      }
    }
  }

  for (auto& [i, flight] : followers) {
    try {
      std::unique_lock<std::mutex> lock(flight->mu);
      flight->cv.wait(lock, [&flight] { return flight->done; });
      if (flight->error) std::rethrow_exception(flight->error);
      prompts[i] = flight->value;
      cache_hit[i] = 1;  // shared the leader's decode
    } catch (...) {
      fail(i);
    }
  }
  const Clock::time_point decode_t0 = tick;
  const double decode_ms = lap();
  trace_stage("decode", decode_t0, tick);

  // ---- Stage 4: optional classification — deduplicated up front, the
  // unique forwards batched through TinyLM::classify_batch (one embedding
  // gather pass + a reused tape instead of per-request tape construction) —
  // then finish every surviving request.
  const bool classify =
      cfg_.run_inference && task_->config().kind == data::TaskKind::Classification;
  std::vector<std::size_t> labels(B, 0);
  std::vector<char> labelled(B, 0);
  if (classify) {
    // Dedup first: identical (user, OVT, input) requests share one forward.
    // The O(B²) rescan is bounded by max_batch and short-circuits on the
    // integer fields, so the token-vector compare only runs for probable
    // duplicates.
    std::vector<std::size_t> uniq;
    std::vector<std::size_t> dup_of(B, B);
    for (std::size_t i = 0; i < B; ++i) {
      if (failed[i]) continue;
      for (std::size_t j = 0; j < i && dup_of[i] == B; ++j) {
        if (!failed[j] && dup_of[j] == B && batch[j].user_id == batch[i].user_id &&
            ovt_index[j] == ovt_index[i] && batch[j].query.input == batch[i].query.input)
          dup_of[i] = j;
      }
      if (dup_of[i] == B) uniq.push_back(i);
    }
    if (!uniq.empty()) {
      try {
        std::vector<const std::vector<int>*> seqs;
        std::vector<const Matrix*> soft_prompts;
        seqs.reserve(uniq.size());
        soft_prompts.reserve(uniq.size());
        for (const std::size_t i : uniq) {
          seqs.push_back(&batch[i].query.input);
          soft_prompts.push_back(prompts[i].get());
        }
        const std::vector<std::size_t> out =
            model_->classify_batch(seqs, task_->label_ids(), soft_prompts);
        for (std::size_t r = 0; r < uniq.size(); ++r) {
          labels[uniq[r]] = out[r];
          labelled[uniq[r]] = 1;
        }
      } catch (...) {
        // Fall through: the finish loop below retries each request alone, so
        // one malformed query cannot poison the whole group's batch.
      }
    }
    for (std::size_t i = 0; i < B; ++i) {
      if (failed[i] || labelled[i] || dup_of[i] == B) continue;
      labels[i] = labels[dup_of[i]];
      labelled[i] = labelled[dup_of[i]];
    }
  }
  std::vector<SlowRequest> slow;
  for (std::size_t i = 0; i < B; ++i) {
    if (failed[i]) continue;
    QueuedRequest& p = batch[i];
    try {
      Response resp;
      resp.user_id = p.user_id;
      resp.ovt_index = ovt_index[i];
      resp.cache_hit = cache_hit[i] != 0;
      if (classify) {
        if (!labelled[i]) {  // batched pass failed — serial fallback
          labels[i] = model_->classify(p.query.input, task_->label_ids(), prompts[i].get());
          labelled[i] = 1;
        }
        resp.label = labels[i];
        resp.has_label = true;
      }
      const Clock::time_point done = Clock::now();
      resp.latency_ms = ms_between(p.enqueued, done);
      // Queue wait = submit → batch dequeue; the rest of the latency is
      // service time. Clamped non-negative for requests enqueued mid-window.
      const double wait_ms =
          std::max(0.0, std::min(resp.latency_ms, ms_between(p.enqueued, batch_start)));
      resp.queue_wait_ms = wait_ms;
      // Dispatched in time but finished late: the answer is delivered (only
      // already-expired requests are dropped), the miss is accounted.
      resp.deadline_missed = p.has_deadline() && done > p.deadline;
      if (resp.deadline_missed) stats_.record_deadline_miss(p.user_id);
      // Device-fault degradation: a scrub flagged column(s) of this user's
      // slot and repair is pending or in flight. The answer was computed
      // from those columns and is delivered anyway — marked, not failed.
      if (cfg_.lifecycle.enabled) {
        resp.degraded = store_.user_degraded(p.user_id);
        if (resp.degraded) stats_.record_degraded_response();
      }
      stats_.record_request(p.user_id, resp.latency_ms, wait_ms, resp.cache_hit);
      if (tracer_.enabled()) {
        tracer_.complete("request", "request", tracer_.to_us(p.enqueued),
                         tracer_.to_us(done), "user",
                         static_cast<std::int64_t>(p.user_id), "batch",
                         static_cast<std::int64_t>(batch_id));
        // SLO-annotated sibling span for requests with a scheduling
        // contract: deadline slack (negative = missed) and priority.
        if (p.has_deadline() || p.priority != 0)
          tracer_.complete("request_slo", "request", tracer_.to_us(p.enqueued),
                           tracer_.to_us(done), "slack_us",
                           p.has_deadline()
                               ? static_cast<std::int64_t>(
                                     std::chrono::duration_cast<std::chrono::microseconds>(
                                         p.deadline - done)
                                         .count())
                               : std::int64_t{0},
                           "priority", static_cast<std::int64_t>(p.priority));
      }
      if (cfg_.slow_request_ms > 0.0 && resp.latency_ms >= cfg_.slow_request_ms) {
        SlowRequest sr;
        sr.user_id = p.user_id;
        sr.batch_id = batch_id;
        sr.latency_ms = resp.latency_ms;
        sr.queue_wait_ms = wait_ms;
        slow.push_back(sr);  // stage times filled in below, once classify laps
      }
      finish(p, std::move(resp));
    } catch (...) {
      fail(i);
    }
  }
  const Clock::time_point classify_t0 = tick;
  const double classify_ms = lap();
  trace_stage("classify", classify_t0, tick);

  stats_.record_stage_times(encode_ms, retrieve_ms, decode_ms, classify_ms);
  for (SlowRequest& sr : slow) {
    sr.encode_ms = encode_ms;
    sr.retrieve_ms = retrieve_ms;
    sr.decode_ms = decode_ms;
    sr.classify_ms = classify_ms;
    stats_.record_slow_request(sr);
  }
}

std::shared_ptr<const Matrix> ServingEngine::prompt_locked_fetch(
    const DepRef& ref, std::size_t ovt_index, bool* was_hit,
    compress::Autoencoder::Scratch* scratch) {
  const std::pair<std::size_t, std::size_t> key{ref.generation, ovt_index};
  std::shared_ptr<InFlightDecode> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (auto hit = cache_.get(key)) {
      if (was_hit != nullptr) *was_hit = true;
      return *hit;
    }
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<InFlightDecode>();
      inflight_.emplace(key, flight);
      leader = true;
    }
  }

  if (!leader) {
    // Single-flight: another worker is already decoding this key — wait for
    // its result instead of duplicating the expensive decode.
    ++coalesced_fetches_;
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&flight] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    if (was_hit != nullptr) *was_hit = true;  // shared the leader's decode
    return flight->value;
  }

  // Leader: decode outside every lock — the autoencoder decode is the
  // expensive step the cache exists to amortize, and it is const/thread-safe.
  std::shared_ptr<const Matrix> decoded;
  std::exception_ptr error;
  try {
    auto owned = std::make_shared<Matrix>();
    ref.dep->decode_prompt_into(ovt_index, *owned, scratch);
    decoded = std::move(owned);
    ++prompt_decodes_;
  } catch (...) {
    error = std::current_exception();
  }
  complete_decode_flight(key, flight, decoded, error);
  if (error) std::rethrow_exception(error);
  if (was_hit != nullptr) *was_hit = false;
  return decoded;
}

void ServingEngine::complete_decode_flight(const std::pair<std::size_t, std::size_t>& key,
                                           const std::shared_ptr<InFlightDecode>& flight,
                                           const std::shared_ptr<const Matrix>& value,
                                           const std::exception_ptr& error) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    // A decode finishing after its user's eviction (dead generation) is
    // delivered to its waiters but never cached — otherwise it would
    // re-insert an unreachable entry right after the eviction purge.
    if (!error && live_generations_.count(key.first) > 0) {
      try {
        cache_.put(key, value);
      } catch (...) {
        // A failed cache insert must not wedge the key: the flight is still
        // completed and the decoded value delivered, just not cached.
      }
    }
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->value = value;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();
}

std::shared_ptr<const Matrix> ServingEngine::prompt(std::size_t user_id, std::size_t ovt_index) {
  const DepRef ref = find_deployment(user_id);
  NVCIM_CHECK_MSG(ref.dep != nullptr, "unknown user " << user_id);
  NVCIM_CHECK_MSG(ovt_index < ref.dep->n_ovts(),
                  "OVT " << ovt_index << " out of range for user " << user_id);
  return prompt_locked_fetch(ref, ovt_index, nullptr, nullptr);
}

std::size_t ServingEngine::retrieve_serial(std::size_t user_id, const data::Sample& query) {
  NVCIM_CHECK_MSG(store_.built(), "engine not started");
  const DepRef ref = find_deployment(user_id);
  NVCIM_CHECK_MSG(ref.dep != nullptr, "unknown user " << user_id);
  return store_.retrieve_user(user_id, ref.dep->query_representation(*model_, query));
}

const core::TrainedDeployment& ServingEngine::deployment(std::size_t user_id) const {
  std::lock_guard<std::mutex> lock(deployments_mu_);
  auto it = deployments_.find(user_id);
  NVCIM_CHECK_MSG(it != deployments_.end(), "unknown user " << user_id);
  // The reference stays valid until the user is evicted (shared_ptr target).
  return *it->second.dep;
}

std::size_t ServingEngine::cache_evictions() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.evictions();
}

}  // namespace nvcim::serve
