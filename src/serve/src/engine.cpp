#include "nvcim/serve/engine.hpp"

#include <algorithm>
#include <map>

namespace nvcim::serve {

namespace {

OvtStoreConfig store_config(const ServingConfig& cfg) {
  OvtStoreConfig sc;
  sc.n_shards = cfg.n_shards;
  sc.algorithm = cfg.algorithm;
  sc.ssa = cfg.ssa;
  sc.crossbar = cfg.crossbar;
  sc.variation = cfg.variation;
  return sc;
}

}  // namespace

ServingEngine::ServingEngine(llm::TinyLM& model, const data::LampTask& task, ServingConfig cfg)
    : model_(&model),
      task_(&task),
      cfg_(cfg),
      store_(store_config(cfg)),
      cache_(cfg.cache_capacity) {
  NVCIM_CHECK_MSG(cfg_.n_threads > 0, "engine needs at least one worker");
  NVCIM_CHECK_MSG(cfg_.max_batch > 0, "max_batch must be positive");
  NVCIM_CHECK_MSG(cfg_.queue_capacity > 0, "queue_capacity must be positive");
}

ServingEngine::~ServingEngine() { stop(); }

void ServingEngine::add_deployment(std::size_t user_id, core::TrainedDeployment deployment) {
  NVCIM_CHECK_MSG(!running_, "cannot add deployments while running");
  NVCIM_CHECK_MSG(deployment.n_ovts() > 0, "deployment for user " << user_id << " is empty");
  NVCIM_CHECK_MSG(deployment.autoencoder != nullptr,
                  "deployment for user " << user_id << " has no autoencoder");
  store_.add_user(user_id, deployment.keys);
  deployments_.emplace(user_id, std::move(deployment));
}

void ServingEngine::start() {
  NVCIM_CHECK_MSG(!running_, "engine already started");
  NVCIM_CHECK_MSG(!deployments_.empty(), "no deployments to serve");
  if (!store_.built()) {
    Rng rng(cfg_.seed);
    store_.build(rng);
  }
  stopping_ = false;
  running_ = true;
  stats_.start_clock();
  workers_.reserve(cfg_.n_threads);
  for (std::size_t t = 0; t < cfg_.n_threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

void ServingEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  capacity_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  running_ = false;
}

std::future<Response> ServingEngine::submit(std::size_t user_id, data::Sample query) {
  NVCIM_CHECK_MSG(running_, "engine not started");
  NVCIM_CHECK_MSG(deployments_.count(user_id) > 0, "unknown user " << user_id);
  Pending p;
  p.user_id = user_id;
  p.query = std::move(query);
  p.enqueued = std::chrono::steady_clock::now();
  std::future<Response> fut = p.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    capacity_cv_.wait(lock, [this] { return queue_.size() < cfg_.queue_capacity || stopping_; });
    NVCIM_CHECK_MSG(!stopping_, "engine is stopping");
    queue_.push_back(std::move(p));
  }
  queue_cv_.notify_one();
  return fut;
}

Response ServingEngine::serve(std::size_t user_id, const data::Sample& query) {
  return submit(user_id, query).get();
}

void ServingEngine::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;  // drained
      const std::size_t take = std::min(cfg_.max_batch, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    capacity_cv_.notify_all();
    process_batch(std::move(batch));
  }
}

void ServingEngine::process_batch(std::vector<Pending>&& batch) {
  stats_.record_batch(batch.size());

  // A bad request (e.g. a query the backbone rejects) must fail only its own
  // future, never the worker thread — an exception escaping worker_loop
  // would std::terminate the whole serving process.
  std::vector<char> failed(batch.size(), 0);
  const auto fail = [&](std::size_t i) {
    failed[i] = 1;
    batch[i].promise.set_exception(std::current_exception());
  };

  // Encode every query (pure CPU work, no shared mutable state) and group
  // the batch by destination shard.
  std::vector<Matrix> reps(batch.size());
  std::map<std::size_t, std::vector<std::size_t>> by_shard;  // shard → batch positions
  for (std::size_t i = 0; i < batch.size(); ++i) {
    try {
      const core::TrainedDeployment& dep = deployments_.at(batch[i].user_id);
      reps[i] = dep.query_representation(*model_, batch[i].query).flattened();
      by_shard[store_.slot(batch[i].user_id).shard].push_back(i);
    } catch (...) {
      fail(i);
    }
  }

  // One batched MVM pass per shard; then mask each row to its user's slot.
  std::vector<std::size_t> ovt_index(batch.size(), 0);
  for (const auto& [shard, members] : by_shard) {
    try {
      Matrix queries(members.size(), reps[members[0]].size());
      for (std::size_t r = 0; r < members.size(); ++r) queries.set_row(r, reps[members[r]]);
      const Matrix scores = store_.shard_scores(shard, queries);
      for (std::size_t r = 0; r < members.size(); ++r) {
        const std::size_t i = members[r];
        ovt_index[i] =
            ShardedOvtStore::best_in_slot(scores, r, store_.slot(batch[i].user_id));
      }
    } catch (...) {
      for (const std::size_t i : members)
        if (!failed[i]) fail(i);
    }
  }

  // Resolve prompts through the cache and finish each request.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (failed[i]) continue;
    Pending& p = batch[i];
    try {
      Response resp;
      resp.user_id = p.user_id;
      resp.ovt_index = ovt_index[i];
      std::shared_ptr<const Matrix> prompt_mat =
          prompt_locked_fetch(p.user_id, ovt_index[i], &resp.cache_hit);
      if (cfg_.run_inference && task_->config().kind == data::TaskKind::Classification) {
        resp.label = model_->classify(p.query.input, task_->label_ids(), prompt_mat.get());
        resp.has_label = true;
      }
      resp.latency_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - p.enqueued)
                            .count();
      stats_.record_request(resp.latency_ms, resp.cache_hit);
      p.promise.set_value(std::move(resp));
    } catch (...) {
      fail(i);
    }
  }
}

std::shared_ptr<const Matrix> ServingEngine::prompt_locked_fetch(std::size_t user_id,
                                                                 std::size_t ovt_index,
                                                                 bool* was_hit) {
  const std::pair<std::size_t, std::size_t> key{user_id, ovt_index};
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (auto hit = cache_.get(key)) {
      if (was_hit != nullptr) *was_hit = true;
      return *hit;
    }
  }
  // Decode outside the cache lock: the autoencoder decode is the expensive
  // step the cache exists to amortize, and it is const/thread-safe.
  auto decoded = std::make_shared<const Matrix>(
      deployments_.at(user_id).decode_prompt(ovt_index));
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_.put(key, decoded);
  }
  if (was_hit != nullptr) *was_hit = false;
  return decoded;
}

std::shared_ptr<const Matrix> ServingEngine::prompt(std::size_t user_id, std::size_t ovt_index) {
  NVCIM_CHECK_MSG(deployments_.count(user_id) > 0, "unknown user " << user_id);
  NVCIM_CHECK_MSG(ovt_index < deployments_.at(user_id).n_ovts(),
                  "OVT " << ovt_index << " out of range for user " << user_id);
  return prompt_locked_fetch(user_id, ovt_index, nullptr);
}

std::size_t ServingEngine::retrieve_serial(std::size_t user_id, const data::Sample& query) {
  NVCIM_CHECK_MSG(store_.built(), "engine not started");
  const core::TrainedDeployment& dep = deployments_.at(user_id);
  return store_.retrieve_user(user_id, dep.query_representation(*model_, query));
}

const core::TrainedDeployment& ServingEngine::deployment(std::size_t user_id) const {
  auto it = deployments_.find(user_id);
  NVCIM_CHECK_MSG(it != deployments_.end(), "unknown user " << user_id);
  return it->second;
}

std::size_t ServingEngine::cache_evictions() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.evictions();
}

}  // namespace nvcim::serve
