#include "nvcim/eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace nvcim::eval {

Rouge1 rouge1(const std::vector<int>& hypothesis, const std::vector<int>& reference) {
  Rouge1 r;
  if (hypothesis.empty() || reference.empty()) return r;
  std::unordered_map<int, std::size_t> ref_counts;
  for (int t : reference) ++ref_counts[t];
  std::size_t overlap = 0;
  for (int t : hypothesis) {
    auto it = ref_counts.find(t);
    if (it != ref_counts.end() && it->second > 0) {
      ++overlap;
      --it->second;
    }
  }
  r.precision = static_cast<double>(overlap) / static_cast<double>(hypothesis.size());
  r.recall = static_cast<double>(overlap) / static_cast<double>(reference.size());
  r.f1 = (r.precision + r.recall) > 0.0
             ? 2.0 * r.precision * r.recall / (r.precision + r.recall)
             : 0.0;
  return r;
}

RougeL rouge_l(const std::vector<int>& hypothesis, const std::vector<int>& reference) {
  RougeL r;
  if (hypothesis.empty() || reference.empty()) return r;
  // Classic O(n·m) LCS dynamic program (sequences here are short).
  const std::size_t n = hypothesis.size(), m = reference.size();
  std::vector<std::size_t> prev(m + 1, 0), cur(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      cur[j] = hypothesis[i - 1] == reference[j - 1] ? prev[j - 1] + 1
                                                     : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  const double lcs = static_cast<double>(prev[m]);
  r.precision = lcs / static_cast<double>(n);
  r.recall = lcs / static_cast<double>(m);
  r.f1 = (r.precision + r.recall) > 0.0
             ? 2.0 * r.precision * r.recall / (r.precision + r.recall)
             : 0.0;
  return r;
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  Interval iv;
  if (trials == 0) {
    iv.hi = 1.0;
    return iv;
  }
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  iv.lo = std::max(0.0, center - margin);
  iv.hi = std::min(1.0, center + margin);
  return iv;
}

}  // namespace nvcim::eval
