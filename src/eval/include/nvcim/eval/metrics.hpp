#pragma once

#include <cstddef>
#include <vector>

namespace nvcim::eval {

/// ROUGE-1 unigram overlap between a hypothesis and a reference token
/// sequence (clipped counts, as in Lin 2004).
struct Rouge1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

Rouge1 rouge1(const std::vector<int>& hypothesis, const std::vector<int>& reference);

/// ROUGE-L: longest-common-subsequence based P/R/F1 (Lin 2004). Order-aware
/// counterpart to ROUGE-1, useful for the generation tasks' diagnostics.
struct RougeL {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

RougeL rouge_l(const std::vector<int>& hypothesis, const std::vector<int>& reference);

/// Wilson score interval for a binomial proportion — the confidence band we
/// quote for the accuracy cells of Tables I/III/IV.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

Interval wilson_interval(std::size_t successes, std::size_t trials, double z = 1.96);

/// Streaming mean accumulator used by every experiment harness.
class MeanAccumulator {
 public:
  void add(double v) {
    sum_ += v;
    ++n_;
  }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  std::size_t count() const { return n_; }

 private:
  double sum_ = 0.0;
  std::size_t n_ = 0;
};

}  // namespace nvcim::eval
