#include "nvcim/common/rng.hpp"

#include "nvcim/common/check.hpp"

namespace nvcim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  has_spare_ = false;
}

Rng Rng::split(std::uint64_t salt) const {
  // Mix the full state with the salt through SplitMix so children with
  // different salts are decorrelated even for adjacent salt values.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
  std::uint64_t sm = mix + 0x632BE59BD9B4E019ull * (salt + 1);
  Rng child(splitmix64(sm));
  return child;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  NVCIM_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  NVCIM_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return static_cast<std::size_t>(v % n);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  NVCIM_CHECK(k <= n);
  auto perm = permutation(n);
  perm.resize(k);
  return perm;
}

}  // namespace nvcim
