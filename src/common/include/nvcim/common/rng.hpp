#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace nvcim {

/// Deterministic, splittable pseudo-random generator used throughout the
/// simulator. Wraps xoshiro256** seeded via SplitMix64 so that results are
/// bit-identical across standard libraries and platforms (std::distributions
/// are implementation-defined and would break experiment reproducibility).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Derive an independent stream; `salt` distinguishes children of the same
  /// parent (e.g. one stream per crossbar tile or per user).
  Rng split(std::uint64_t salt) const;

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).  Requires n > 0.
  std::size_t uniform_index(std::size_t n);
  /// Standard normal via Box–Muller (cached spare value).
  double normal();
  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Sample k distinct indices from [0, n) (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace nvcim
