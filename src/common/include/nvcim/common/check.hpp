#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nvcim {

/// Error thrown on violated preconditions / invariants anywhere in the
/// library. All NVCIM_CHECK* macros throw this type so callers can catch a
/// single exception class at API boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "NVCIM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace nvcim

/// Precondition check that is always active (release builds included): the
/// library is a simulator whose correctness matters more than the last few
/// percent of speed, so shape/parameter validation stays on.
#define NVCIM_CHECK(expr)                                                \
  do {                                                                   \
    if (!(expr))                                                         \
      ::nvcim::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define NVCIM_CHECK_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream nvcim_check_os_;                                \
      nvcim_check_os_ << msg;                                            \
      ::nvcim::detail::throw_check_failure(#expr, __FILE__, __LINE__,    \
                                           nvcim_check_os_.str());       \
    }                                                                    \
  } while (0)
