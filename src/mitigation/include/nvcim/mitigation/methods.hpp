#pragma once

#include <memory>
#include <string>

#include "nvcim/cim/crossbar.hpp"

namespace nvcim::mitigation {

/// Round-trip a float matrix through NVM storage with *no* mitigation:
/// int16-quantize, program (tiled across subarrays), read back, dequantize.
/// All mitigation baselines build on this path.
Matrix nvm_roundtrip(const Matrix& w, const cim::CrossbarConfig& cfg,
                     const nvm::VariationModel& var, Rng& rng,
                     const cim::ProgramOptions& opts = {},
                     cim::OpCounters* counters = nullptr);

/// A noise-mitigation strategy applied when writing a payload matrix (an
/// OVT) into NVM. `store_and_restore` returns what the system reads back —
/// i.e. the OVT the LLM will actually consume.
class MitigationMethod {
 public:
  virtual ~MitigationMethod() = default;
  virtual std::string name() const = 0;
  virtual Matrix store_and_restore(const Matrix& w, const cim::CrossbarConfig& cfg,
                                   const nvm::VariationModel& var, Rng& rng) const = 0;
};

/// Plain storage, no compensation (the "No-Miti" path).
class NoMitigation final : public MitigationMethod {
 public:
  std::string name() const override { return "No-Miti"; }
  Matrix store_and_restore(const Matrix& w, const cim::CrossbarConfig& cfg,
                           const nvm::VariationModel& var, Rng& rng) const override;
};

/// SWV (Yan et al., DAC'22): write-verify only the most impactful fraction
/// of the weights (here: largest magnitude), bounding programming effort.
class SelectiveWriteVerify final : public MitigationMethod {
 public:
  struct Options {
    double fraction = 0.25;        ///< fraction of weights that get verify
    double tolerance = 0.08;       ///< normalized conductance tolerance
    std::size_t max_iterations = 10;
  };
  SelectiveWriteVerify() : SelectiveWriteVerify(Options{}) {}
  explicit SelectiveWriteVerify(Options o) : opt_(o) {}
  std::string name() const override { return "SWV"; }
  Matrix store_and_restore(const Matrix& w, const cim::CrossbarConfig& cfg,
                           const nvm::VariationModel& var, Rng& rng) const override;

 private:
  Options opt_;
};

/// CxDNN (Jain & Raghunathan, TECS'19): hardware-software compensation —
/// after programming, a per-column digital scale factor (least-squares fit
/// computed at write time, when the target is known) corrects the read-out.
class CxDnn final : public MitigationMethod {
 public:
  std::string name() const override { return "CxDNN"; }
  Matrix store_and_restore(const Matrix& w, const cim::CrossbarConfig& cfg,
                           const nvm::VariationModel& var, Rng& rng) const override;
};

/// CorrectNet (Eldebiky et al., DATE'23): error suppression (outlier
/// clipping before write tightens the quantization grid) plus a global
/// affine compensation fit at write time.
class CorrectNet final : public MitigationMethod {
 public:
  struct Options {
    double clip_quantile = 0.995;  ///< magnitude quantile kept before write
  };
  CorrectNet() : CorrectNet(Options{}) {}
  explicit CorrectNet(Options o) : opt_(o) {}
  std::string name() const override { return "CorrectNet"; }
  Matrix store_and_restore(const Matrix& w, const cim::CrossbarConfig& cfg,
                           const nvm::VariationModel& var, Rng& rng) const override;

 private:
  Options opt_;
};

enum class Kind { None, SWV, CxDNN, CorrectNet };

std::unique_ptr<MitigationMethod> make_mitigation(Kind kind);

}  // namespace nvcim::mitigation
