#include "nvcim/mitigation/methods.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nvcim/cim/quant.hpp"

namespace nvcim::mitigation {
namespace {

/// Program an integer matrix of arbitrary shape by tiling across subarrays
/// and read the noisy values back (cell-wise).
Matrix program_and_read_tiled(const Matrix& int_values, const cim::CrossbarConfig& cfg,
                              const nvm::VariationModel& var, Rng& rng,
                              const cim::ProgramOptions& opts, const Matrix* verify_mask,
                              cim::OpCounters* counters) {
  Matrix out(int_values.rows(), int_values.cols(), 0.0f);
  const std::size_t row_tiles = (int_values.rows() + cfg.rows - 1) / cfg.rows;
  const std::size_t col_tiles = (int_values.cols() + cfg.cols - 1) / cfg.cols;
  for (std::size_t rt = 0; rt < row_tiles; ++rt) {
    const std::size_t r0 = rt * cfg.rows;
    const std::size_t r1 = std::min(r0 + cfg.rows, int_values.rows());
    for (std::size_t ct = 0; ct < col_tiles; ++ct) {
      const std::size_t c0 = ct * cfg.cols;
      const std::size_t c1 = std::min(c0 + cfg.cols, int_values.cols());
      cim::Crossbar xb(cfg);
      cim::ProgramOptions tile_opts = opts;
      Matrix mask_tile;
      if (verify_mask != nullptr) {
        mask_tile = verify_mask->row_slice(r0, r1).col_slice(c0, c1);
        tile_opts.verify_mask = &mask_tile;
      }
      Rng tile_rng = rng.split(rt * 104729 + ct);
      xb.program(int_values.row_slice(r0, r1).col_slice(c0, c1), var, tile_rng, tile_opts);
      const Matrix rb = xb.read_values();
      for (std::size_t r = 0; r < rb.rows(); ++r)
        for (std::size_t c = 0; c < rb.cols(); ++c) out(r0 + r, c0 + c) = rb(r, c);
      if (counters != nullptr) *counters += xb.counters();
    }
  }
  return out;
}

}  // namespace

Matrix nvm_roundtrip(const Matrix& w, const cim::CrossbarConfig& cfg,
                     const nvm::VariationModel& var, Rng& rng,
                     const cim::ProgramOptions& opts, cim::OpCounters* counters) {
  const cim::QuantizedMatrix q =
      cim::quantize_symmetric(w, static_cast<int>(cfg.value_bits));
  Matrix noisy = program_and_read_tiled(q.q, cfg, var, rng, opts, opts.verify_mask, counters);
  return noisy * q.scale;
}

Matrix NoMitigation::store_and_restore(const Matrix& w, const cim::CrossbarConfig& cfg,
                                       const nvm::VariationModel& var, Rng& rng) const {
  return nvm_roundtrip(w, cfg, var, rng);
}

Matrix SelectiveWriteVerify::store_and_restore(const Matrix& w, const cim::CrossbarConfig& cfg,
                                               const nvm::VariationModel& var,
                                               Rng& rng) const {
  // Select the largest-magnitude fraction of weights for write-verify.
  std::vector<float> mags(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) mags[i] = std::fabs(w.at_flat(i));
  std::vector<float> sorted = mags;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t cut_idx = static_cast<std::size_t>(
      static_cast<double>(sorted.size()) * std::clamp(1.0 - opt_.fraction, 0.0, 1.0));
  const float threshold = sorted[std::min(cut_idx, sorted.size() - 1)];
  Matrix mask(w.rows(), w.cols(), 0.0f);
  for (std::size_t i = 0; i < w.size(); ++i)
    if (mags[i] >= threshold) mask.at_flat(i) = 1.0f;

  const cim::QuantizedMatrix q =
      cim::quantize_symmetric(w, static_cast<int>(cfg.value_bits));
  cim::ProgramOptions opts;
  opts.verify_tolerance = opt_.tolerance;
  opts.max_write_iterations = opt_.max_iterations;
  Matrix noisy = program_and_read_tiled(q.q, cfg, var, rng, opts, &mask, nullptr);
  return noisy * q.scale;
}

Matrix CxDnn::store_and_restore(const Matrix& w, const cim::CrossbarConfig& cfg,
                                const nvm::VariationModel& var, Rng& rng) const {
  Matrix noisy = nvm_roundtrip(w, cfg, var, rng);
  // Per-column least-squares scale: alpha = <w, w'> / <w', w'>.
  for (std::size_t c = 0; c < w.cols(); ++c) {
    double num = 0.0, den = 0.0;
    for (std::size_t r = 0; r < w.rows(); ++r) {
      num += static_cast<double>(w(r, c)) * noisy(r, c);
      den += static_cast<double>(noisy(r, c)) * noisy(r, c);
    }
    const double alpha = den > 1e-12 ? num / den : 1.0;
    for (std::size_t r = 0; r < w.rows(); ++r)
      noisy(r, c) = static_cast<float>(noisy(r, c) * alpha);
  }
  return noisy;
}

Matrix CorrectNet::store_and_restore(const Matrix& w, const cim::CrossbarConfig& cfg,
                                     const nvm::VariationModel& var, Rng& rng) const {
  // Error suppression: clip outliers so the int16 grid covers the bulk of
  // the distribution more finely.
  std::vector<float> mags(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) mags[i] = std::fabs(w.at_flat(i));
  std::sort(mags.begin(), mags.end());
  const auto q_idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(mags.size() - 1),
                       opt_.clip_quantile * static_cast<double>(mags.size())));
  const float clip = std::max(mags[q_idx], 1e-12f);
  Matrix clipped = w;
  for (std::size_t i = 0; i < clipped.size(); ++i)
    clipped.at_flat(i) = std::clamp(clipped.at_flat(i), -clip, clip);

  Matrix noisy = nvm_roundtrip(clipped, cfg, var, rng);

  // Global affine compensation fit against the (known-at-write-time) target.
  double mw = 0.0, mn = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    mw += clipped.at_flat(i);
    mn += noisy.at_flat(i);
  }
  mw /= static_cast<double>(w.size());
  mn /= static_cast<double>(w.size());
  double cov = 0.0, varn = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double dn = noisy.at_flat(i) - mn;
    cov += (static_cast<double>(clipped.at_flat(i)) - mw) * dn;
    varn += dn * dn;
  }
  const double a = varn > 1e-12 ? cov / varn : 1.0;
  const double b = mw - a * mn;
  for (std::size_t i = 0; i < noisy.size(); ++i)
    noisy.at_flat(i) = static_cast<float>(a * noisy.at_flat(i) + b);
  return noisy;
}

std::unique_ptr<MitigationMethod> make_mitigation(Kind kind) {
  switch (kind) {
    case Kind::None:
      return std::make_unique<NoMitigation>();
    case Kind::SWV:
      return std::make_unique<SelectiveWriteVerify>();
    case Kind::CxDNN:
      return std::make_unique<CxDnn>();
    case Kind::CorrectNet:
      return std::make_unique<CorrectNet>();
  }
  NVCIM_CHECK_MSG(false, "unknown mitigation kind");
  return nullptr;
}

}  // namespace nvcim::mitigation
