#pragma once

#include <vector>

#include "nvcim/tensor/matrix.hpp"

namespace nvcim::cluster {

struct KMeansResult {
  std::vector<std::size_t> assignment;  ///< cluster index per point
  std::vector<Matrix> centroids;        ///< 1×dim each
  std::size_t k = 0;
  double inertia = 0.0;                 ///< sum of squared distances to centroids
  std::size_t iterations = 0;
};

struct KMeansConfig {
  std::size_t max_iterations = 50;
  double tolerance = 1e-6;  ///< stop when inertia improvement falls below this
  std::uint64_t seed = 17;
};

/// Lloyd's k-means with k-means++ initialization over row-vector embeddings
/// (each point a 1×dim Matrix). Implements the paper's Eq. 1.
KMeansResult kmeans(const std::vector<Matrix>& points, std::size_t k,
                    const KMeansConfig& cfg = {});

/// The paper's Eq. 2: k = min(max(n_min + s·log2(bs/b0), n_min), n_max).
struct KSelectionConfig {
  std::size_t n_min = 2;
  std::size_t n_max = 8;
  double base_threshold = 5.0;  ///< b0
  double scale = 1.5;           ///< s
};

std::size_t select_k(std::size_t buffer_size, const KSelectionConfig& cfg = {});

/// The paper's Eq. 3: within cluster Ci pick argmin over cos_sim(e, mu(Ci)).
/// (The paper writes argmin; interpreted as the member whose angle to the
/// centroid is smallest would be argmax — we follow the formula's intent of
/// "most representative" and return the member *closest* to the centroid,
/// i.e. maximal cosine similarity. The argmin spelling is kept as an option
/// for strict-paper mode.)
enum class RepresentativeRule { ClosestToCentroid, PaperArgmin };

std::vector<std::size_t> representatives(const std::vector<Matrix>& points,
                                         const KMeansResult& clusters,
                                         RepresentativeRule rule =
                                             RepresentativeRule::ClosestToCentroid);

}  // namespace nvcim::cluster
