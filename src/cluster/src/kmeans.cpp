#include "nvcim/cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nvcim::cluster {
namespace {

double sq_distance(const Matrix& a, const Matrix& b) {
  NVCIM_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.at_flat(i)) - b.at_flat(i);
    s += d * d;
  }
  return s;
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
std::vector<Matrix> seed_centroids(const std::vector<Matrix>& points, std::size_t k, Rng& rng) {
  std::vector<Matrix> centroids;
  centroids.push_back(points[rng.uniform_index(points.size())]);
  std::vector<double> d2(points.size(), 0.0);
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const Matrix& c : centroids) best = std::min(best, sq_distance(points[i], c));
      d2[i] = best;
      total += best;
    }
    std::size_t pick = 0;
    if (total <= 0.0) {
      pick = rng.uniform_index(points.size());
    } else {
      double u = rng.uniform() * total;
      for (std::size_t i = 0; i < points.size(); ++i) {
        u -= d2[i];
        if (u <= 0.0) {
          pick = i;
          break;
        }
      }
    }
    centroids.push_back(points[pick]);
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const std::vector<Matrix>& points, std::size_t k, const KMeansConfig& cfg) {
  NVCIM_CHECK_MSG(!points.empty(), "kmeans on empty point set");
  k = std::min(k, points.size());
  NVCIM_CHECK(k >= 1);
  for (const Matrix& p : points)
    NVCIM_CHECK_MSG(p.size() == points[0].size(), "points must share dimensionality");

  Rng rng(cfg.seed);
  KMeansResult res;
  res.k = k;
  res.centroids = seed_centroids(points, k, rng);
  res.assignment.assign(points.size(), 0);

  double prev_inertia = std::numeric_limits<double>::max();
  for (std::size_t it = 0; it < cfg.max_iterations; ++it) {
    res.iterations = it + 1;
    // Assign.
    double inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t arg = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_distance(points[i], res.centroids[c]);
        if (d < best) {
          best = d;
          arg = c;
        }
      }
      res.assignment[i] = arg;
      inertia += best;
    }
    res.inertia = inertia;
    // Update.
    std::vector<Matrix> sums(k, Matrix(1, points[0].size(), 0.0f));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[res.assignment[i]] += points[i].flattened();
      ++counts[res.assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the point farthest from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d = sq_distance(points[i], res.centroids[res.assignment[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        res.centroids[c] = points[far].flattened();
      } else {
        sums[c] *= 1.0f / static_cast<float>(counts[c]);
        res.centroids[c] = sums[c];
      }
    }
    if (prev_inertia - inertia < cfg.tolerance) break;
    prev_inertia = inertia;
  }
  return res;
}

std::size_t select_k(std::size_t buffer_size, const KSelectionConfig& cfg) {
  NVCIM_CHECK(cfg.n_min >= 1 && cfg.n_max >= cfg.n_min && cfg.base_threshold > 0.0);
  const double ratio = static_cast<double>(buffer_size) / cfg.base_threshold;
  const double grown =
      static_cast<double>(cfg.n_min) + cfg.scale * std::log2(std::max(ratio, 1e-9));
  const double inner = std::max(grown, static_cast<double>(cfg.n_min));
  const double clamped = std::min(inner, static_cast<double>(cfg.n_max));
  return static_cast<std::size_t>(std::llround(std::floor(clamped)));
}

std::vector<std::size_t> representatives(const std::vector<Matrix>& points,
                                         const KMeansResult& clusters,
                                         RepresentativeRule rule) {
  std::vector<std::size_t> reps;
  for (std::size_t c = 0; c < clusters.k; ++c) {
    double best = rule == RepresentativeRule::ClosestToCentroid
                      ? -std::numeric_limits<double>::max()
                      : std::numeric_limits<double>::max();
    std::size_t arg = points.size();  // sentinel: empty cluster
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (clusters.assignment[i] != c) continue;
      const double cs = cosine_similarity(points[i], clusters.centroids[c]);
      const bool better =
          rule == RepresentativeRule::ClosestToCentroid ? cs > best : cs < best;
      if (better || arg == points.size()) {
        best = cs;
        arg = i;
      }
    }
    if (arg != points.size()) reps.push_back(arg);
  }
  return reps;
}

}  // namespace nvcim::cluster
