#include "nvcim/nvm/device.hpp"

#include <algorithm>
#include <cmath>

namespace nvcim::nvm {
namespace {

DeviceModel make(const char* name, const char* paper_id, std::size_t levels,
                 std::array<double, 4> sigmas) {
  DeviceModel d;
  d.name = name;
  d.paper_id = paper_id;
  d.n_levels = levels;
  d.sigma_per_level = sigmas;
  return d;
}

}  // namespace

// Values copied verbatim from Table II. RRAM1 is listed with a single level
// entry (uniform σ = 0.01 across the conductance range); we model it as a
// 4-level cell with uniform per-level variation so every device drives the
// same 2-bit crossbar layout.
DeviceModel rram1() { return make("RRAM1", "NVM-1", 4, {0.0100, 0.0100, 0.0100, 0.0100}); }
DeviceModel fefet2() { return make("FeFET2", "NVM-2", 4, {0.0067, 0.0135, 0.0135, 0.0067}); }
DeviceModel fefet3() { return make("FeFET3", "NVM-3", 4, {0.0049, 0.0146, 0.0146, 0.0049}); }
DeviceModel rram4() { return make("RRAM4", "NVM-4", 4, {0.0038, 0.0151, 0.0151, 0.0038}); }
DeviceModel fefet6() { return make("FeFET6", "NVM-5", 4, {0.0026, 0.0155, 0.0155, 0.0026}); }

std::vector<DeviceModel> table2_devices() {
  return {rram1(), fefet2(), fefet3(), rram4(), fefet6()};
}

std::size_t nearest_level(double normalized, std::size_t n_levels) {
  NVCIM_CHECK(n_levels >= 2);
  const double clamped = std::clamp(normalized, 0.0, 1.0);
  const double step = 1.0 / static_cast<double>(n_levels - 1);
  const auto level = static_cast<std::size_t>(std::llround(clamped / step));
  return std::min(level, n_levels - 1);
}

double program_cell(double normalized, const VariationModel& var, Rng& rng) {
  const std::size_t level = nearest_level(normalized, var.device.n_levels);
  const double target =
      static_cast<double>(level) / static_cast<double>(var.device.n_levels - 1);
  const double sigma = var.effective_sigma(level);
  return std::clamp(target + rng.normal(0.0, sigma), 0.0, 1.0);
}

WriteVerifyResult write_verify_cell(double normalized, const VariationModel& var, Rng& rng,
                                    double tolerance, std::size_t max_iterations) {
  NVCIM_CHECK(max_iterations >= 1);
  const std::size_t level = nearest_level(normalized, var.device.n_levels);
  const double target =
      static_cast<double>(level) / static_cast<double>(var.device.n_levels - 1);
  WriteVerifyResult res;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    res.conductance = program_cell(normalized, var, rng);
    res.pulses = it + 1;
    if (std::fabs(res.conductance - target) <= tolerance) break;
  }
  return res;
}

}  // namespace nvcim::nvm
