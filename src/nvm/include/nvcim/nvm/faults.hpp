#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace nvcim::nvm {

/// Hard device faults a cell can develop after programming. A stuck cell no
/// longer responds to write pulses: its analog level is pinned at an extreme
/// of the conductance range regardless of what is programmed into it.
enum class FaultKind : std::uint8_t {
  StuckAtOn,   ///< cell pinned at the highest conductance level
  StuckAtOff,  ///< cell pinned at zero conductance
};

/// Analog level a stuck cell reads back, on the same axis the crossbar
/// stores cells (conductance × (levels − 1), i.e. [0, levels − 1]).
inline double stuck_level(FaultKind kind, std::size_t levels) {
  return kind == FaultKind::StuckAtOn ? static_cast<double>(levels - 1) : 0.0;
}

/// Multiplicative conductance decay after `ticks` age steps at `rate` loss
/// per tick (rate in [0, 1)). Retention drift compounds geometrically:
/// factor = (1 − rate)^ticks. Re-programming a cell refreshes it — drift
/// applies only to the time since the last write.
inline double drift_factor(double rate, std::uint64_t ticks) {
  if (rate <= 0.0 || ticks == 0) return 1.0;
  return std::pow(1.0 - rate, static_cast<double>(ticks));
}

}  // namespace nvcim::nvm
