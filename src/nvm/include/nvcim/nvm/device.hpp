#pragma once

#include <array>
#include <string>
#include <vector>

#include "nvcim/common/rng.hpp"
#include "nvcim/common/check.hpp"

namespace nvcim::nvm {

/// Per-device non-ideality model, reproducing the paper's Table II: a cell
/// programmed to level L holds conductance g = g0 + N(0, σ_L) on the
/// normalized [0, 1] conductance axis (v = v0 + Δv, Δv ~ N(0, σ_v)).
struct DeviceModel {
  std::string name;       ///< e.g. "RRAM1"
  std::string paper_id;   ///< e.g. "NVM-1"
  std::size_t n_levels = 4;
  std::array<double, 4> sigma_per_level{};  ///< σ_v at L0..L3 (Table II)

  double sigma_at(std::size_t level) const {
    NVCIM_CHECK(level < n_levels && level < sigma_per_level.size());
    return sigma_per_level[level];
  }
  double mean_sigma() const {
    double s = 0.0;
    for (std::size_t l = 0; l < n_levels; ++l) s += sigma_per_level[l];
    return s / static_cast<double>(n_levels);
  }
  std::size_t bits_per_cell() const {
    std::size_t b = 0;
    while ((1ull << b) < n_levels) ++b;
    return b;
  }
};

// Table II presets (real devices extracted from the literature plus the two
// extrapolated synthetic FeFETs).
DeviceModel rram1();   ///< NVM-1
DeviceModel fefet2();  ///< NVM-2
DeviceModel fefet3();  ///< NVM-3
DeviceModel rram4();   ///< NVM-4
DeviceModel fefet6();  ///< NVM-5

/// All five, in Table I/II row order (NVM-1 .. NVM-5).
std::vector<DeviceModel> table2_devices();

/// Device model + the experiment-level variation scale. The paper sets "the
/// standard deviation σ to 0.1" as the experiment knob (swept 0.025–0.150 in
/// Table IV) while Table II characterizes each device's per-level *shape*.
/// We therefore compose them as: the per-level σ values are normalized by
/// the device mean (preserving the level structure) and scaled to the
/// experiment σ, so every device has mean per-level variation global_sigma
/// on the normalized conductance axis.
struct VariationModel {
  DeviceModel device;
  double global_sigma = 0.1;

  double effective_sigma(std::size_t level) const {
    const double mean = device.mean_sigma();
    if (mean <= 0.0) return global_sigma;
    return global_sigma * device.sigma_at(level) / mean;
  }
};

/// Program one cell: quantize `normalized` (in [0,1]) to the nearest device
/// level and draw the programmed conductance with that level's variation.
/// Returns the *analog* stored conductance in [0,1] (may fall outside the
/// level grid because of noise; clamped to [0,1]).
double program_cell(double normalized, const VariationModel& var, Rng& rng);

/// Nearest level index for a normalized conductance.
std::size_t nearest_level(double normalized, std::size_t n_levels);

/// Write-verify primitive: re-program until the deviation from the target
/// level is within `tolerance` (normalized units) or `max_iterations` is
/// reached. Returns the number of write pulses used (≥1). This is the
/// building block of the SWV mitigation baseline.
struct WriteVerifyResult {
  double conductance = 0.0;
  std::size_t pulses = 1;
};
WriteVerifyResult write_verify_cell(double normalized, const VariationModel& var, Rng& rng,
                                    double tolerance, std::size_t max_iterations);

}  // namespace nvcim::nvm
