#include "nvcim/retrieval/search.hpp"

namespace nvcim::retrieval {

float wmsdp(const Matrix& e, const Matrix& p, const ScaledSearchConfig& cfg) {
  NVCIM_CHECK_MSG(e.size() == p.size(), "WMSDP operands must have equal size");
  NVCIM_CHECK_MSG(cfg.scales.size() == cfg.weights.size() && !cfg.scales.empty(),
                  "scales/weights mismatch");
  double num = 0.0, denom = 0.0;
  for (std::size_t i = 0; i < cfg.scales.size(); ++i) {
    const Matrix pe = average_pool_flat(e, cfg.scales[i]);
    const Matrix pp = average_pool_flat(p, cfg.scales[i]);
    num += static_cast<double>(cfg.weights[i]) * dot(pe, pp);
    denom += cfg.weights[i];
  }
  return static_cast<float>(num / denom);
}

std::size_t mips_retrieve_exact(const Matrix& query, const std::vector<Matrix>& keys) {
  NVCIM_CHECK(!keys.empty());
  std::size_t best = 0;
  float best_score = -1e30f;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const float s = dot(query.flattened(), keys[i].flattened());
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

std::size_t ssa_retrieve_exact(const Matrix& query, const std::vector<Matrix>& keys,
                               const ScaledSearchConfig& cfg) {
  NVCIM_CHECK(!keys.empty());
  std::size_t best = 0;
  float best_score = -1e30f;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const float s = wmsdp(query, keys[i], cfg);
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

void CimRetriever::init_bank_layout() {
  bank_scales_.clear();
  bank_weights_.clear();
  if (cfg_.algorithm == Algorithm::MIPS) {
    bank_scales_.push_back(1);
    bank_weights_.push_back(1.0f);
  } else {
    NVCIM_CHECK(cfg_.ssa.scales.size() == cfg_.ssa.weights.size() && !cfg_.ssa.scales.empty());
    bank_scales_ = cfg_.ssa.scales;
    bank_weights_ = cfg_.ssa.weights;
  }
}

void CimRetriever::store(const std::vector<Matrix>& keys, Rng& rng) {
  NVCIM_CHECK_MSG(!keys.empty(), "no keys to store");
  mutable_mode_ = false;
  n_keys_ = keys.size();
  key_size_ = keys[0].size();
  for (const Matrix& k : keys)
    NVCIM_CHECK_MSG(k.size() == key_size_, "keys must share a common size");

  init_bank_layout();
  banks_.clear();
  for (std::size_t b = 0; b < bank_scales_.size(); ++b) {
    const std::size_t scale = bank_scales_[b];
    const std::size_t pooled_len = (key_size_ + scale - 1) / scale;
    Matrix pooled_keys(n_keys_, pooled_len);
    for (std::size_t i = 0; i < n_keys_; ++i)
      pooled_keys.set_row(i, average_pool_flat(keys[i], scale));
    auto acc = std::make_unique<cim::Accelerator>(cfg_.crossbar, cfg_.variation, cfg_.program);
    Rng bank_rng = rng.split(0xB00Bull + b);
    acc->store(pooled_keys, bank_rng);
    banks_.push_back(std::move(acc));
  }
}

void CimRetriever::store_mutable(std::size_t key_size, std::size_t capacity, const Rng& rng) {
  NVCIM_CHECK_MSG(key_size > 0 && capacity > 0, "empty mutable store");
  mutable_mode_ = true;
  key_size_ = key_size;
  init_bank_layout();
  banks_.clear();
  for (std::size_t b = 0; b < bank_scales_.size(); ++b) {
    const std::size_t scale = bank_scales_[b];
    const std::size_t pooled_len = (key_size_ + scale - 1) / scale;
    auto acc = std::make_unique<cim::Accelerator>(cfg_.crossbar, cfg_.variation, cfg_.program);
    // Same per-bank stream derivation as store(), so a mutable store seeded
    // identically programs identical noise at identical positions.
    acc->init_mutable(pooled_len, capacity, rng.split(0xB00Bull + b));
    banks_.push_back(std::move(acc));
  }
  n_keys_ = banks_[0]->n_keys();  // capacity rounded up to whole subarrays
}

void CimRetriever::program_keys(std::size_t col_begin, const std::vector<Matrix>& keys) {
  NVCIM_CHECK_MSG(mutable_mode_, "program_keys requires store_mutable");
  NVCIM_CHECK_MSG(!keys.empty(), "no keys to program");
  for (const Matrix& k : keys)
    NVCIM_CHECK_MSG(k.size() == key_size_, "keys must share a common size");
  NVCIM_CHECK_MSG(col_begin + keys.size() <= n_keys_,
                  "columns exceed capacity " << n_keys_ << " — grow with ensure_capacity()");
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    const std::size_t scale = bank_scales_[b];
    const std::size_t pooled_len = (key_size_ + scale - 1) / scale;
    Matrix pooled(keys.size(), pooled_len);
    for (std::size_t i = 0; i < keys.size(); ++i)
      pooled.set_row(i, average_pool_flat(keys[i], scale));
    // Same pooled values, same per-column streams either way — the batched
    // path is a wall-clock rewrite, not a semantic one (property-tested).
    if (cfg_.batched_programming)
      banks_[b]->program_keys_batched(pooled, col_begin);
    else
      banks_[b]->program_keys(pooled, col_begin);
  }
}

void CimRetriever::ensure_capacity(std::size_t n) {
  NVCIM_CHECK_MSG(mutable_mode_, "ensure_capacity requires store_mutable");
  for (auto& bank : banks_) bank->ensure_capacity(n);
  n_keys_ = banks_[0]->n_keys();
}

Matrix CimRetriever::scores(const Matrix& query) {
  NVCIM_CHECK_MSG(!banks_.empty(), "no keys stored");
  NVCIM_CHECK_MSG(query.size() == key_size_, "query size " << query.size()
                                                           << " != key size " << key_size_);
  Matrix total(1, n_keys_, 0.0f);
  float weight_sum = 0.0f;
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    const Matrix pooled = average_pool_flat(query, bank_scales_[b]);
    const Matrix s = banks_[b]->query(pooled);
    total.add_scaled(s, bank_weights_[b]);
    weight_sum += bank_weights_[b];
  }
  total *= 1.0f / weight_sum;
  return total;
}

Matrix CimRetriever::scores_batch(const Matrix& queries) {
  Matrix total;
  Scratch scratch;
  scores_batch_into(queries, total, scratch);
  return total;
}

void CimRetriever::scores_batch_into(const Matrix& queries, Matrix& out, Scratch& scratch) {
  scores_batch_into(queries, out, scratch, nullptr);
}

void CimRetriever::scores_batch_into(const Matrix& queries, Matrix& out, Scratch& scratch,
                                     const cim::CandidateSet* candidates) {
  NVCIM_CHECK_MSG(!banks_.empty(), "no keys stored");
  NVCIM_CHECK_MSG(queries.cols() == key_size_, "query width " << queries.cols()
                                                              << " != key size " << key_size_);
  out.resize(queries.rows(), n_keys_);
  out.fill(0.0f);
  float weight_sum = 0.0f;
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    // Scale 1 pools to the identity — feed the query block through directly.
    const Matrix* pooled = &queries;
    if (bank_scales_[b] != 1) {
      average_pool_rows_into(queries, bank_scales_[b], scratch.pooled);
      pooled = &scratch.pooled;
    }
    banks_[b]->query_batch_into(*pooled, scratch.bank_scores, scratch.acc, candidates);
    out.add_scaled(scratch.bank_scores, bank_weights_[b]);
    weight_sum += bank_weights_[b];
  }
  out *= 1.0f / weight_sum;
}

std::vector<std::size_t> CimRetriever::retrieve_batch(const Matrix& queries) {
  const Matrix s = scores_batch(queries);
  std::vector<std::size_t> best(s.rows(), 0);
  for (std::size_t r = 0; r < s.rows(); ++r)
    for (std::size_t i = 1; i < s.cols(); ++i)
      if (s(r, i) > s(r, best[r])) best[r] = i;
  return best;
}

Matrix CimRetriever::pack_queries(const std::vector<Matrix>& queries) const {
  NVCIM_CHECK_MSG(!queries.empty(), "no queries to pack");
  Matrix packed(queries.size(), key_size_);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    NVCIM_CHECK_MSG(queries[i].size() == key_size_, "query size " << queries[i].size()
                                                                  << " != key size " << key_size_);
    packed.set_row(i, queries[i].flattened());
  }
  return packed;
}

std::size_t CimRetriever::retrieve(const Matrix& query) {
  const Matrix s = scores(query);
  std::size_t best = 0;
  for (std::size_t i = 1; i < s.cols(); ++i)
    if (s(0, i) > s(0, best)) best = i;
  return best;
}

cim::OpCounters CimRetriever::counters() const {
  cim::OpCounters c;
  for (const auto& b : banks_) c += b->counters();
  return c;
}

std::size_t CimRetriever::n_subarrays() const {
  NVCIM_CHECK_MSG(!banks_.empty(), "no keys stored");
  return banks_[0]->n_subarrays();
}

std::size_t CimRetriever::cols_per_subarray() const {
  NVCIM_CHECK_MSG(!banks_.empty(), "no keys stored");
  return banks_[0]->cols_per_subarray();
}

std::size_t CimRetriever::inject_column_fault(std::size_t col, nvm::FaultKind kind,
                                              std::size_t cells_per_segment,
                                              std::uint64_t seed) {
  NVCIM_CHECK_MSG(!banks_.empty(), "no keys stored");
  std::size_t clamped = 0;
  for (std::size_t b = 0; b < banks_.size(); ++b)
    clamped += banks_[b]->inject_column_fault(col, kind, cells_per_segment,
                                              seed + 0xFA011ull * (b + 1));
  return clamped;
}

void CimRetriever::kill_subarray(std::size_t subarray) {
  NVCIM_CHECK_MSG(!banks_.empty(), "no keys stored");
  for (auto& b : banks_) b->kill_subarray(subarray);
}

void CimRetriever::set_drift_rate(double rate_per_tick) {
  for (auto& b : banks_) b->set_drift_rate(rate_per_tick);
}

void CimRetriever::advance_age(std::uint64_t ticks) {
  for (auto& b : banks_) b->advance_age(ticks);
}

cim::ColumnProbe CimRetriever::probe_column(std::size_t col, double eps) const {
  NVCIM_CHECK_MSG(!banks_.empty(), "no keys stored");
  cim::ColumnProbe pr;
  for (const auto& b : banks_) pr += b->probe_column(col, eps);
  return pr;
}

}  // namespace nvcim::retrieval
