#pragma once

#include <memory>
#include <vector>

#include "nvcim/cim/accelerator.hpp"
#include "nvcim/tensor/matrix.hpp"

namespace nvcim::retrieval {

enum class Algorithm { MIPS, SSA };

/// Configuration of the paper's Scaled Search Algorithm (Eq. 5): average
/// pooling at scales {1, 2, 4} with weights {1.0, 0.8, 0.6}.
struct ScaledSearchConfig {
  std::vector<std::size_t> scales{1, 2, 4};
  std::vector<float> weights{1.0f, 0.8f, 0.6f};
};

/// Exact (CPU, noise-free) Weighted Multi-Scale Dot Product between two
/// same-size matrices (flattened).
float wmsdp(const Matrix& e, const Matrix& p, const ScaledSearchConfig& cfg = {});

/// Exact CPU retrieval references (used as ground truth in tests).
std::size_t mips_retrieve_exact(const Matrix& query, const std::vector<Matrix>& keys);
std::size_t ssa_retrieve_exact(const Matrix& query, const std::vector<Matrix>& keys,
                               const ScaledSearchConfig& cfg = {});

/// In-memory retrieval engine: stores the (encoded) OVT keys in NVCiM
/// crossbars and answers nearest-key queries through noisy crossbar GEMMs.
/// For SSA, each pooling scale occupies its own accelerator bank holding the
/// pooled copies of every key (the paper's "Scale & Copy" layout, Fig. 4).
class CimRetriever {
 public:
  struct Config {
    Algorithm algorithm = Algorithm::SSA;
    ScaledSearchConfig ssa;
    cim::CrossbarConfig crossbar;
    nvm::VariationModel variation;
    cim::ProgramOptions program;
    /// Route program_keys() through the tile-major batched programming
    /// primitive (Accelerator::program_keys_batched). Bit-identical to the
    /// column-at-a-time path — kept as a toggle for A/B benches and the
    /// bit-identity property tests.
    bool batched_programming = true;
  };

  explicit CimRetriever(Config cfg) : cfg_(std::move(cfg)) {}

  /// Store keys (each flattened internally; all must share the shape of the
  /// first). Reprogramming with a new set replaces the old one.
  void store(const std::vector<Matrix>& keys, Rng& rng);

  /// Mutable (lifecycle) storage: create empty per-scale banks sized for
  /// `capacity` keys of `key_size` flattened elements. Keys are then
  /// programmed column-by-column with program_keys() — each key carries its
  /// own quantization scale and a position-derived noise stream, so
  /// programming the same keys at the same columns is bit-identical whether
  /// it happens in one pass or incrementally, and untouched columns never
  /// change. n_keys() reports the capacity (score-row width) in this mode.
  void store_mutable(std::size_t key_size, std::size_t capacity, const Rng& rng);

  /// Program `keys` into key columns [col_begin, col_begin + keys.size())
  /// of every scale bank (each key pooled per scale first, exactly as
  /// store() lays keys out). Requires store_mutable() and capacity.
  void program_keys(std::size_t col_begin, const std::vector<Matrix>& keys);

  /// Grow mutable capacity to at least `n` key columns (whole subarrays).
  void ensure_capacity(std::size_t n);

  bool mutable_mode() const { return mutable_mode_; }

  /// Similarity score of the query against every stored key.
  Matrix scores(const Matrix& query);
  /// Index of the best-scoring key.
  std::size_t retrieve(const Matrix& query);

  /// Batched scores: each row of `queries` (B×key_size, flattened queries)
  /// is scored against every stored key in one MVM pass per bank, returning
  /// B×n_keys. Row b equals scores(queries.row(b)) bit-for-bit.
  Matrix scores_batch(const Matrix& queries);

  /// Reusable buffers for scores_batch_into(): the pooled query block for
  /// one bank, that bank's raw scores, and the accelerator's tile scratch.
  struct Scratch {
    Matrix pooled;
    Matrix bank_scores;
    cim::Accelerator::BatchScratch acc;
  };

  /// scores_batch() written into caller storage with caller scratch —
  /// bit-identical results, no per-batch allocations once the scratch is
  /// warm. `out` is resized to B×n_keys.
  void scores_batch_into(const Matrix& queries, Matrix& out, Scratch& scratch);

  /// With `candidates` (per-query bitmaps over the n_keys key columns), each
  /// scale bank scores only candidate columns — the IVF-style phase-2 exact
  /// rerank. Candidate entries of `out` are bit-identical to the unmasked
  /// pass; non-candidate entries are exact 0 or the exact full-pass value
  /// (block-granular masking), so callers must argmax over candidates only.
  void scores_batch_into(const Matrix& queries, Matrix& out, Scratch& scratch,
                         const cim::CandidateSet* candidates);
  /// Batched retrieve over pre-flattened query rows.
  std::vector<std::size_t> retrieve_batch(const Matrix& queries);
  /// Flatten a query list into the B×key_size layout scores_batch expects.
  Matrix pack_queries(const std::vector<Matrix>& queries) const;

  std::size_t n_keys() const { return n_keys_; }
  cim::OpCounters counters() const;

  // -- Device-fault model ---------------------------------------------------
  // Every scale bank shares the same column-tile geometry (identical
  // capacity and crossbar config), so subarray and column indices address
  // all banks at once: a fault hits a key column in every bank holding a
  // pooled copy of it, and a probe aggregates deviations across banks.

  /// Column-tile subarrays per bank (the scrub/quarantine addressing unit).
  std::size_t n_subarrays() const;
  std::size_t cols_per_subarray() const;

  /// Pin stuck cells in key column `col` of every scale bank. Returns total
  /// cells clamped across banks.
  std::size_t inject_column_fault(std::size_t col, nvm::FaultKind kind,
                                  std::size_t cells_per_segment, std::uint64_t seed);

  /// Kill subarray `subarray` in every scale bank.
  void kill_subarray(std::size_t subarray);

  /// Retention drift across every bank (see Crossbar::advance_age).
  void set_drift_rate(double rate_per_tick);
  void advance_age(std::uint64_t ticks);

  /// Golden probe of key column `col`, aggregated over scale banks.
  cim::ColumnProbe probe_column(std::size_t col, double eps = 1e-6) const;

 private:
  void init_bank_layout();

  Config cfg_;
  bool mutable_mode_ = false;
  std::size_t n_keys_ = 0;
  std::size_t key_size_ = 0;
  // One accelerator per scale (MIPS uses a single scale-1 bank).
  std::vector<std::unique_ptr<cim::Accelerator>> banks_;
  std::vector<std::size_t> bank_scales_;
  std::vector<float> bank_weights_;
};

}  // namespace nvcim::retrieval
