#include "nvcim/data/lamp.hpp"

#include <algorithm>

namespace nvcim::data {

LampConfig lamp1_config() {
  LampConfig c;
  c.name = "LaMP-1";
  c.kind = TaskKind::Classification;
  c.n_labels = 2;
  c.seed = 101;
  return c;
}

LampConfig lamp2_config() {
  LampConfig c;
  c.name = "LaMP-2";
  c.kind = TaskKind::Classification;
  c.n_labels = 6;  // the paper's 15 tags, scaled to the synthetic vocabulary
  c.seed = 102;
  return c;
}

LampConfig lamp3_config() {
  LampConfig c;
  c.name = "LaMP-3";
  c.kind = TaskKind::Classification;
  c.n_labels = 5;  // rating 1..5
  c.seed = 103;
  return c;
}

LampConfig lamp5_config() {
  LampConfig c;
  c.name = "LaMP-5";
  c.kind = TaskKind::Generation;
  c.gen_len = 3;
  c.seed = 105;
  return c;
}

LampConfig lamp7_config() {
  LampConfig c;
  c.name = "LaMP-7";
  c.kind = TaskKind::Generation;
  c.gen_len = 4;
  c.domain_stride = 2;
  c.seed = 107;
  return c;
}

std::vector<LampConfig> all_lamp_configs() {
  return {lamp1_config(), lamp2_config(), lamp3_config(), lamp5_config(), lamp7_config()};
}

LampTask::LampTask(LampConfig cfg) : cfg_(std::move(cfg)) {
  NVCIM_CHECK(cfg_.n_domains >= 2 && cfg_.domains_per_user <= cfg_.n_domains);
  NVCIM_CHECK(cfg_.content_per_sample >= 1 && cfg_.content_per_sample <= cfg_.n_content_words);
  for (std::size_t d = 0; d < cfg_.n_domains; ++d)
    domain_ids_.push_back(tok_.id_of("dom" + std::to_string(d)));
  for (std::size_t i = 0; i < cfg_.n_domains; ++i)
    cue_ids_.push_back(tok_.id_of("cue" + std::to_string(i)));
  for (std::size_t i = 0; i < cfg_.n_content_words; ++i)
    content_ids_.push_back(tok_.id_of("w" + std::to_string(i)));
  if (cfg_.kind == TaskKind::Generation) {
    for (std::size_t i = 0; i < cfg_.n_out_words; ++i)
      out_ids_.push_back(tok_.id_of("o" + std::to_string(i)));
  } else {
    for (std::size_t i = 0; i < cfg_.n_labels; ++i)
      label_ids_.push_back(tok_.id_of("L" + std::to_string(i)));
  }
  tok_.freeze();
}

int LampTask::cue_token(std::size_t domain, Rng& rng) const {
  // Cue i is shared by domains i and i+1 (mod D): domain d may emit cue d-1
  // or cue d, so a single cue leaves two candidate domains.
  const std::size_t D = cfg_.n_domains;
  const std::size_t pick = rng.uniform() < 0.5 ? (domain + D - 1) % D : domain;
  return cue_ids_[pick];
}

Sample LampTask::sample(std::size_t domain, Rng& rng, bool explicit_domain) const {
  NVCIM_CHECK(domain < cfg_.n_domains);
  Sample s;
  s.domain = domain;
  s.input.push_back(tok_.bos_id());
  // Pretraining-only context: the domain token(s) go into the reserved
  // prompt-slot region (with variable length so every slot position gets
  // trained), teaching the backbone to read latent context exactly where a
  // tuned soft prompt will later sit.
  std::vector<int> prefix;
  if (explicit_domain) {
    const std::size_t n_ctx = 1 + rng.uniform_index(3);
    prefix.assign(n_ctx, domain_ids_[domain]);
  }
  // One cue drawn per sample and emitted twice: the cue is shared between
  // two adjacent domains, so the input alone never pins the domain down
  // (irreducible ambiguity that the prompt must resolve), while the repeated
  // token keeps the cue prominent in pooled embeddings for retrieval.
  const int cue = cue_token(domain, rng);
  s.input.push_back(cue);
  s.input.push_back(cue);

  std::vector<std::size_t> content(cfg_.content_per_sample);
  for (auto& c : content) {
    c = rng.uniform_index(cfg_.n_content_words);
    s.input.push_back(content_ids_[c]);
  }
  s.input.push_back(tok_.sep_id());

  // Domain-conditional mappings keyed on the *first* content word (the rest
  // are distractors): learnable by a small transformer, yet irreducibly
  // ambiguous without the domain context.
  if (cfg_.kind == TaskKind::Classification) {
    s.label = static_cast<int>((content[0] + domain * cfg_.domain_stride) % cfg_.n_labels);
    s.completion = {label_ids_[static_cast<std::size_t>(s.label)], tok_.eos_id()};
  } else {
    // Each output word transforms the corresponding content word under the
    // domain's rotation.
    for (std::size_t j = 0; j < cfg_.gen_len; ++j) {
      const std::size_t c = content[j % content.size()];
      s.completion.push_back(
          out_ids_[(c + (j + 1) * domain * cfg_.domain_stride) % cfg_.n_out_words]);
    }
    s.completion.push_back(tok_.eos_id());
  }
  s.example = llm::make_example(s.input, s.completion, prefix);
  return s;
}

std::vector<llm::TrainExample> LampTask::pretraining_corpus(std::size_t n,
                                                            std::uint64_t seed) const {
  Rng rng(seed);
  std::vector<llm::TrainExample> corpus;
  corpus.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d = rng.uniform_index(cfg_.n_domains);
    const bool explicit_domain = rng.uniform() < cfg_.explicit_domain_frac;
    corpus.push_back(sample(d, rng, explicit_domain).example);
  }
  return corpus;
}

UserData LampTask::make_user(std::size_t user_id, std::size_t n_train,
                             std::size_t n_test) const {
  Rng rng(cfg_.seed ^ (0xC0FFEEull + user_id * 0x9E3779B9ull));
  UserData u;
  u.user_id = user_id;
  u.domains = rng.sample_without_replacement(cfg_.n_domains, cfg_.domains_per_user);

  // Domain-shifted stream: contiguous blocks, cycling through the user's
  // domains — the setting in which a one4all prompt keeps getting stale.
  std::size_t block = 0;
  for (std::size_t i = 0; i < n_train; ++i) {
    if (i > 0 && i % cfg_.shift_block == 0) ++block;
    const std::size_t d = u.domains[block % u.domains.size()];
    u.train.push_back(sample(d, rng));
  }
  for (std::size_t i = 0; i < n_test; ++i) {
    const std::size_t d = u.domains[rng.uniform_index(u.domains.size())];
    u.test.push_back(sample(d, rng));
  }
  return u;
}

std::vector<int> LampTask::reference_words(const Sample& s) {
  std::vector<int> ref = s.completion;
  if (!ref.empty()) ref.pop_back();  // strip eos
  return ref;
}

bool DataBuffer::push(Sample s) {
  NVCIM_CHECK_MSG(!full(), "push into a full buffer; call clear() after training");
  samples_.push_back(std::move(s));
  return full();
}

}  // namespace nvcim::data
