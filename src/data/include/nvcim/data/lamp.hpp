#pragma once

#include <string>
#include <vector>

#include "nvcim/common/check.hpp"
#include "nvcim/common/rng.hpp"
#include "nvcim/llm/example.hpp"
#include "nvcim/llm/tokenizer.hpp"

namespace nvcim::data {

/// Synthetic stand-ins for the LaMP personalization benchmarks.
///
/// Mechanism (mirrors the paper's domain-shift story): every sample belongs
/// to a latent *domain* — the user's current task context. The mapping from
/// content words to the label (classification) or to the output words
/// (generation) depends on that domain. The input itself carries only a weak
/// domain cue (a topic word shared between two adjacent domains), so a model
/// without extra context faces irreducible ambiguity. The pretraining corpus
/// contains a fraction of samples with an *explicit* domain token, so the
/// backbone learns the domain-conditional mapping; user-time inputs omit that
/// token. A virtual-token prompt tuned on samples from one domain therefore
/// acts as the missing domain context — exactly the role OVTs play in
/// NVCiM-PT — while a one4all prompt can only commit to one domain of a
/// shifted stream.
enum class TaskKind { Classification, Generation };

struct LampConfig {
  std::string name;
  TaskKind kind = TaskKind::Classification;
  std::size_t n_labels = 2;            ///< classification only
  std::size_t n_domains = 6;           ///< global latent-domain pool
  std::size_t domains_per_user = 3;
  std::size_t n_content_words = 12;
  std::size_t n_out_words = 12;        ///< generation only
  std::size_t content_per_sample = 2;
  std::size_t gen_len = 3;             ///< generation output length
  std::size_t domain_stride = 1;       ///< how strongly the domain rotates the mapping
  std::size_t shift_block = 5;         ///< stream block length between domain shifts
  double explicit_domain_frac = 0.7;   ///< pretraining samples with explicit domain token
  std::uint64_t seed = 1234;
};

/// The five benchmark configurations used across the paper's tables.
LampConfig lamp1_config();  ///< binary classification (citation matching stand-in)
LampConfig lamp2_config();  ///< multiclass tag classification
LampConfig lamp3_config();  ///< 5-way rating prediction
LampConfig lamp5_config();  ///< generation (scholarly title stand-in)
LampConfig lamp7_config();  ///< generation (tweet paraphrase stand-in)
std::vector<LampConfig> all_lamp_configs();

/// A user-generated data sample: token-level input/completion plus the
/// latent-domain ground truth (used only for diagnostics, never by the
/// framework itself — matching the paper's "labels do not exist" setting).
struct Sample {
  std::vector<int> input;       ///< [bos, cue, w..., sep]
  std::vector<int> completion;  ///< [label] or out words, with trailing eos
  std::size_t domain = 0;
  int label = -1;               ///< classification index, -1 for generation
  llm::TrainExample example;    ///< loss-masked training view
};

struct UserData {
  std::size_t user_id = 0;
  std::vector<std::size_t> domains;  ///< this user's latent domains
  std::vector<Sample> train;         ///< domain-shifted stream
  std::vector<Sample> test;
};

class LampTask {
 public:
  explicit LampTask(LampConfig cfg);

  const LampConfig& config() const { return cfg_; }
  const llm::Tokenizer& tokenizer() const { return tok_; }
  std::size_t vocab_size() const { return tok_.vocab_size(); }
  int eos_id() const { return tok_.eos_id(); }

  /// Token ids of the label words (classification tasks).
  const std::vector<int>& label_ids() const { return label_ids_; }

  /// Draw a sample from the given domain. `explicit_domain` injects the
  /// domain token after <bos> (pretraining only).
  Sample sample(std::size_t domain, Rng& rng, bool explicit_domain = false) const;

  /// Mixed-domain corpus used to pretrain the backbone.
  std::vector<llm::TrainExample> pretraining_corpus(std::size_t n, std::uint64_t seed) const;

  /// A user with `domains_per_user` latent domains, a domain-shifted training
  /// stream of n_train samples, and n_test uniform test queries.
  UserData make_user(std::size_t user_id, std::size_t n_train, std::size_t n_test) const;

  /// Reference completion words (without eos) for ROUGE scoring.
  static std::vector<int> reference_words(const Sample& s);

 private:
  int cue_token(std::size_t domain, Rng& rng) const;

  LampConfig cfg_;
  llm::Tokenizer tok_;
  std::vector<int> domain_ids_;   ///< explicit domain tokens
  std::vector<int> cue_ids_;      ///< cue i is shared by domains i and i+1
  std::vector<int> content_ids_;
  std::vector<int> out_ids_;
  std::vector<int> label_ids_;
};

/// Fixed-capacity FIFO buffer holding the user-generated samples awaiting
/// prompt tuning (the paper's on-device data buffer).
class DataBuffer {
 public:
  explicit DataBuffer(std::size_t capacity) : capacity_(capacity) {
    NVCIM_CHECK(capacity > 0);
  }

  /// Returns true if the buffer is full after the push (training trigger).
  bool push(Sample s);
  bool full() const { return samples_.size() >= capacity_; }
  std::size_t size() const { return samples_.size(); }
  std::size_t capacity() const { return capacity_; }
  const std::vector<Sample>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<Sample> samples_;
};

}  // namespace nvcim::data
