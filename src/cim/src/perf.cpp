#include "nvcim/cim/perf.hpp"

#include <algorithm>
#include <cmath>

namespace nvcim::cim {

CimPerfParams rram_perf_22nm() {
  CimPerfParams p;
  p.name = "RRAM";
  p.t_subarray_ns = 60.0;
  p.e_cell_read_fj = 2.0;
  p.e_adc_pj = 2.0;
  p.peripheral_overhead = 0.2;
  p.parallel_banks = 8;
  return p;
}

CimPerfParams fefet_perf_22nm() {
  CimPerfParams p;
  p.name = "FeFET";
  p.t_subarray_ns = 50.0;
  p.e_cell_read_fj = 1.5;
  p.e_adc_pj = 2.0;
  p.peripheral_overhead = 0.2;
  p.parallel_banks = 8;
  return p;
}

CpuPerfParams jetson_orin_cpu() { return {}; }

PerfEstimate cim_retrieval_cost(const CimPerfParams& p, const CrossbarConfig& cfg,
                                std::size_t n_keys, std::size_t key_len) {
  const std::size_t row_tiles = (key_len + cfg.rows - 1) / cfg.rows;
  const std::size_t col_tiles = (n_keys + cfg.cols - 1) / cfg.cols;
  const std::size_t polarity = cfg.differential ? 2 : 1;
  const std::size_t activations = row_tiles * col_tiles * cfg.n_slices() * polarity;

  PerfEstimate est;
  const double serial_rounds =
      std::ceil(static_cast<double>(activations) / static_cast<double>(p.parallel_banks));
  est.latency_ns = serial_rounds * p.t_subarray_ns;

  const double cells_per_activation = static_cast<double>(cfg.rows * cfg.cols);
  const double adc_per_activation = static_cast<double>(cfg.cols);
  const double e_array = static_cast<double>(activations) *
                         (cells_per_activation * p.e_cell_read_fj * 1e-3 +
                          adc_per_activation * p.e_adc_pj);
  est.energy_pj = e_array * (1.0 + p.peripheral_overhead);
  return est;
}

PerfEstimate cim_cost_from_counters(const CimPerfParams& p, const CrossbarConfig& cfg,
                                    const OpCounters& counters) {
  PerfEstimate est;
  const double serial_rounds = std::ceil(static_cast<double>(counters.subarray_activations) /
                                         static_cast<double>(p.parallel_banks));
  est.latency_ns = serial_rounds * p.t_subarray_ns;
  const double e_array =
      static_cast<double>(counters.subarray_activations) * static_cast<double>(cfg.rows) *
          static_cast<double>(cfg.cols) * p.e_cell_read_fj * 1e-3 +
      static_cast<double>(counters.adc_conversions) * p.e_adc_pj;
  est.energy_pj = e_array * (1.0 + p.peripheral_overhead);
  return est;
}

PerfEstimate cpu_retrieval_cost(const CpuPerfParams& p, std::size_t n_keys,
                                std::size_t key_len, std::size_t bytes_per_value) {
  const double macs = static_cast<double>(n_keys) * static_cast<double>(key_len);
  const double bytes = macs * static_cast<double>(bytes_per_value);

  const double t_compute_ns = macs / p.mac_rate_gmacs;          // GMAC/s ⇒ ns per MAC
  const double t_dram_ns = bytes / p.dram_bw_gbps;              // GB/s ⇒ ns per byte
  double latency_ns = std::max(t_compute_ns, t_dram_ns);

  double energy_pj = macs * p.e_mac_pj + bytes * p.e_byte_dram_pj;

  const double dram_budget_bytes = p.dram_capacity_gb * 1e9;
  if (bytes > dram_budget_bytes) {
    const double ssd_bytes = bytes - dram_budget_bytes;
    latency_ns += ssd_bytes / p.ssd_bw_gbps;
    energy_pj += ssd_bytes * p.e_byte_ssd_pj;
  }

  PerfEstimate est;
  est.latency_ns = latency_ns;
  est.energy_pj = energy_pj;
  return est;
}

double ssd_transfer_seconds(double bytes, const CpuPerfParams& p) {
  return bytes / (p.ssd_bw_gbps * 1e9);
}

}  // namespace nvcim::cim
