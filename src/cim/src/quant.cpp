#include "nvcim/cim/quant.hpp"

#include <cmath>

namespace nvcim::cim {

QuantizedMatrix quantize_symmetric(const Matrix& x, int bits) {
  NVCIM_CHECK_MSG(bits >= 2 && bits <= 16, "quantization bits out of range");
  QuantizedMatrix out;
  out.bits = bits;
  out.q = Matrix(x.rows(), x.cols());
  const float ma = x.max_abs();
  const float qmax = static_cast<float>(qmax_for_bits(bits));
  out.scale = ma > 0.0f ? ma / qmax : 1.0f;
  for (std::size_t i = 0; i < x.size(); ++i)
    out.q.at_flat(i) = std::round(x.at_flat(i) / out.scale);
  return out;
}

}  // namespace nvcim::cim
