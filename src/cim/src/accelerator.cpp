#include "nvcim/cim/accelerator.hpp"

#include <algorithm>

namespace nvcim::cim {

void Accelerator::store(const Matrix& keys, Rng& rng) {
  NVCIM_CHECK_MSG(keys.rows() > 0 && keys.cols() > 0, "empty key matrix");
  n_keys_ = keys.rows();
  key_len_ = keys.cols();

  QuantizedMatrix q = quantize_symmetric(keys, static_cast<int>(cfg_.value_bits));
  scale_ = q.scale;
  keys_ref_ = q.q * q.scale;

  const Matrix kt = q.q.transposed();  // len × n_keys
  row_tiles_ = (key_len_ + cfg_.rows - 1) / cfg_.rows;
  col_tiles_ = (n_keys_ + cfg_.cols - 1) / cfg_.cols;
  tiles_.clear();
  tiles_.reserve(row_tiles_ * col_tiles_);

  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    const std::size_t r0 = rt * cfg_.rows;
    const std::size_t r1 = std::min(r0 + cfg_.rows, key_len_);
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::size_t c0 = ct * cfg_.cols;
      const std::size_t c1 = std::min(c0 + cfg_.cols, n_keys_);
      Crossbar xb(cfg_);
      Rng tile_rng = rng.split(rt * 7919 + ct);
      xb.program(kt.row_slice(r0, r1).col_slice(c0, c1), var_, tile_rng, opts_);
      tiles_.push_back(std::move(xb));
    }
  }
}

Matrix Accelerator::query(const Matrix& x) {
  NVCIM_CHECK_MSG(!tiles_.empty(), "no keys stored");
  NVCIM_CHECK_MSG(x.rows() == 1 && x.cols() == key_len_,
                  "query must be 1x" << key_len_);
  Matrix y(1, n_keys_, 0.0f);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    const std::size_t r0 = rt * cfg_.rows;
    const std::size_t r1 = std::min(r0 + cfg_.rows, key_len_);
    const Matrix xs = x.col_slice(r0, r1);
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::size_t c0 = ct * cfg_.cols;
      Matrix part = tiles_[rt * col_tiles_ + ct].matvec(xs);
      for (std::size_t c = 0; c < part.cols(); ++c) y(0, c0 + c) += part(0, c);
    }
  }
  return y * scale_;
}

Matrix Accelerator::query_batch(const Matrix& x) {
  Matrix y;
  BatchScratch scratch;
  query_batch_into(x, y, scratch);
  return y;
}

void Accelerator::query_batch_into(const Matrix& x, Matrix& y, BatchScratch& scratch,
                                   const CandidateSet* candidates) {
  NVCIM_CHECK_MSG(!tiles_.empty(), "no keys stored");
  NVCIM_CHECK_MSG(x.rows() >= 1 && x.cols() == key_len_,
                  "queries must be Bx" << key_len_);
  if (candidates != nullptr) {
    NVCIM_CHECK_MSG(candidates->n_queries == x.rows() && candidates->n_keys == n_keys_,
                    "candidate set is " << candidates->n_queries << "x" << candidates->n_keys
                                        << ", expected " << x.rows() << "x" << n_keys_);
  }
  y.resize(x.rows(), n_keys_);
  y.fill(0.0f);
  // Column tiles no query needs are skipped outright; the scan is
  // independent of the row tile, so hoist it out of the grid walk.
  if (candidates != nullptr) {
    scratch.col_tile_needed.assign(col_tiles_, 0);
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::size_t c0 = ct * cfg_.cols;
      const std::size_t c1 = std::min(c0 + cfg_.cols, n_keys_);
      for (std::size_t b = 0; b < x.rows() && scratch.col_tile_needed[ct] == 0; ++b)
        scratch.col_tile_needed[ct] = candidates->any_in_range(b, c0, c1) ? 1 : 0;
    }
  }
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    const std::size_t r0 = rt * cfg_.rows;
    const std::size_t r1 = std::min(r0 + cfg_.rows, key_len_);
    // Single row tile: feed the query block straight through, no column copy.
    const Matrix* xs = &x;
    if (row_tiles_ > 1) {
      scratch.xs.resize(x.rows(), r1 - r0);
      for (std::size_t b = 0; b < x.rows(); ++b)
        std::copy(x.data() + b * key_len_ + r0, x.data() + b * key_len_ + r1,
                  scratch.xs.data() + b * (r1 - r0));
      xs = &scratch.xs;
    }
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      if (candidates != nullptr && scratch.col_tile_needed[ct] == 0) continue;
      const std::size_t c0 = ct * cfg_.cols;
      tiles_[rt * col_tiles_ + ct].matvec_batch_into(*xs, scratch.part, candidates, c0);
      const Matrix& part = scratch.part;
      for (std::size_t b = 0; b < part.rows(); ++b)
        for (std::size_t c = 0; c < part.cols(); ++c) y(b, c0 + c) += part(b, c);
    }
  }
  y *= scale_;
}

Matrix Accelerator::query_ideal(const Matrix& x) const {
  NVCIM_CHECK_MSG(keys_ref_.rows() == n_keys_, "no keys stored");
  return matmul_nt(x, keys_ref_);
}

OpCounters Accelerator::counters() const {
  OpCounters c;
  for (const Crossbar& t : tiles_) c += t.counters();
  return c;
}

void Accelerator::reset_counters() {
  for (Crossbar& t : tiles_) t.reset_counters();
}

}  // namespace nvcim::cim
