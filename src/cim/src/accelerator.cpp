#include "nvcim/cim/accelerator.hpp"

#include <algorithm>

namespace nvcim::cim {

void Accelerator::store(const Matrix& keys, Rng& rng) {
  NVCIM_CHECK_MSG(keys.rows() > 0 && keys.cols() > 0, "empty key matrix");
  mutable_mode_ = false;
  col_scale_.clear();
  n_keys_ = keys.rows();
  key_len_ = keys.cols();

  QuantizedMatrix q = quantize_symmetric(keys, static_cast<int>(cfg_.value_bits));
  scale_ = q.scale;
  keys_ref_ = q.q * q.scale;

  const Matrix kt = q.q.transposed();  // len × n_keys
  row_tiles_ = (key_len_ + cfg_.rows - 1) / cfg_.rows;
  col_tiles_ = (n_keys_ + cfg_.cols - 1) / cfg_.cols;
  tiles_.clear();
  tiles_.reserve(row_tiles_ * col_tiles_);

  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    const std::size_t r0 = rt * cfg_.rows;
    const std::size_t r1 = std::min(r0 + cfg_.rows, key_len_);
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::size_t c0 = ct * cfg_.cols;
      const std::size_t c1 = std::min(c0 + cfg_.cols, n_keys_);
      Crossbar xb(cfg_);
      Rng tile_rng = rng.split(rt * 7919 + ct);
      xb.program(kt.row_slice(r0, r1).col_slice(c0, c1), var_, tile_rng, opts_);
      tiles_.push_back(std::move(xb));
    }
  }
}

void Accelerator::init_mutable(std::size_t key_len, std::size_t capacity_cols, const Rng& base) {
  NVCIM_CHECK_MSG(key_len > 0 && capacity_cols > 0, "empty mutable store");
  mutable_mode_ = true;
  base_rng_ = base;
  key_len_ = key_len;
  row_tiles_ = (key_len_ + cfg_.rows - 1) / cfg_.rows;
  // Capacity rounds up to whole subarrays and every tile spans the full
  // column width: appending capacity later only ever APPENDS tiles, so the
  // cell layout (and hence the MVM arithmetic) of existing columns is
  // invariant under growth.
  col_tiles_ = (capacity_cols + cfg_.cols - 1) / cfg_.cols;
  n_keys_ = col_tiles_ * cfg_.cols;
  col_scale_.assign(n_keys_, 0.0f);
  keys_ref_ = Matrix(n_keys_, key_len_, 0.0f);
  tiles_.clear();
  tiles_.reserve(row_tiles_ * col_tiles_);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    const std::size_t r0 = rt * cfg_.rows;
    const std::size_t r1 = std::min(r0 + cfg_.rows, key_len_);
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      Crossbar xb(cfg_);
      xb.init_blank(r1 - r0, cfg_.cols);
      tiles_.push_back(std::move(xb));
    }
  }
}

void Accelerator::ensure_capacity(std::size_t n_cols) {
  NVCIM_CHECK_MSG(mutable_mode_, "ensure_capacity requires init_mutable");
  if (n_cols <= n_keys_) return;
  const std::size_t new_ct = (n_cols + cfg_.cols - 1) / cfg_.cols;
  std::vector<Crossbar> grown;
  grown.reserve(row_tiles_ * new_ct);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    const std::size_t r0 = rt * cfg_.rows;
    const std::size_t r1 = std::min(r0 + cfg_.rows, key_len_);
    for (std::size_t ct = 0; ct < col_tiles_; ++ct)
      grown.push_back(std::move(tiles_[rt * col_tiles_ + ct]));
    for (std::size_t ct = col_tiles_; ct < new_ct; ++ct) {
      Crossbar xb(cfg_);
      xb.init_blank(r1 - r0, cfg_.cols);
      grown.push_back(std::move(xb));
    }
  }
  tiles_ = std::move(grown);
  col_tiles_ = new_ct;
  n_keys_ = col_tiles_ * cfg_.cols;
  col_scale_.resize(n_keys_, 0.0f);
  Matrix ref(n_keys_, key_len_, 0.0f);
  std::copy(keys_ref_.data(), keys_ref_.data() + keys_ref_.size(), ref.data());
  keys_ref_ = std::move(ref);
}

void Accelerator::program_keys(const Matrix& keys, std::size_t col_begin) {
  NVCIM_CHECK_MSG(mutable_mode_, "program_keys requires init_mutable");
  NVCIM_CHECK_MSG(keys.rows() > 0 && keys.cols() == key_len_,
                  "keys must be Nx" << key_len_);
  NVCIM_CHECK_MSG(col_begin + keys.rows() <= n_keys_,
                  "columns [" << col_begin << ", " << col_begin + keys.rows()
                              << ") exceed capacity " << n_keys_);
  Matrix seg;
  for (std::size_t j = 0; j < keys.rows(); ++j) {
    const std::size_t col = col_begin + j;
    const QuantizedMatrix q =
        quantize_symmetric(keys.row(j), static_cast<int>(cfg_.value_bits));
    col_scale_[col] = q.scale;
    for (std::size_t i = 0; i < key_len_; ++i) keys_ref_(col, i) = q.q(0, i) * q.scale;
    const std::size_t ct = col / cfg_.cols;
    for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
      const std::size_t r0 = rt * cfg_.rows;
      const std::size_t r1 = std::min(r0 + cfg_.rows, key_len_);
      seg.resize(1, r1 - r0);
      for (std::size_t i = r0; i < r1; ++i) seg(0, i - r0) = q.q(0, i);
      // One stream per (subarray row band, global column): the draw
      // sequence for a column's cells never depends on what else is or was
      // programmed — the bit-identity anchor of the lifecycle path.
      Rng col_rng = base_rng_.split(rt * 0x100000001B3ull + col);
      tiles_[rt * col_tiles_ + ct].program_column(seg, col % cfg_.cols, var_, col_rng, opts_);
    }
  }
}

void Accelerator::program_keys_batched(const Matrix& keys, std::size_t col_begin) {
  NVCIM_CHECK_MSG(mutable_mode_, "program_keys_batched requires init_mutable");
  NVCIM_CHECK_MSG(keys.rows() > 0 && keys.cols() == key_len_,
                  "keys must be Nx" << key_len_);
  const std::size_t n = keys.rows();
  NVCIM_CHECK_MSG(col_begin + n <= n_keys_,
                  "columns [" << col_begin << ", " << col_begin + n
                              << ") exceed capacity " << n_keys_);
  // Quantize every key once (the per-KEY scale is the bit-identity anchor:
  // it must not depend on which keys share the batch).
  Matrix qall(n, key_len_);
  for (std::size_t j = 0; j < n; ++j) {
    const QuantizedMatrix q =
        quantize_symmetric(keys.row(j), static_cast<int>(cfg_.value_bits));
    col_scale_[col_begin + j] = q.scale;
    for (std::size_t i = 0; i < key_len_; ++i) {
      qall(j, i) = q.q(0, i);
      keys_ref_(col_begin + j, i) = q.q(0, i) * q.scale;
    }
  }
  // Tile-major: one program_columns call per touched (row band, column
  // tile), with the span's segment matrix and per-column streams built once.
  Matrix seg;
  std::vector<Rng> rngs;
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    const std::size_t r0 = rt * cfg_.rows;
    const std::size_t r1 = std::min(r0 + cfg_.rows, key_len_);
    for (std::size_t ct = col_begin / cfg_.cols; ct * cfg_.cols < col_begin + n; ++ct) {
      const std::size_t c0 = std::max(col_begin, ct * cfg_.cols);
      const std::size_t c1 = std::min(col_begin + n, (ct + 1) * cfg_.cols);
      const std::size_t span = c1 - c0;
      seg.resize(span, r1 - r0);
      rngs.clear();
      rngs.reserve(span);
      for (std::size_t c = c0; c < c1; ++c) {
        const std::size_t j = c - col_begin;
        for (std::size_t i = r0; i < r1; ++i) seg(c - c0, i - r0) = qall(j, i);
        // Same (row band, global column) stream derivation as program_keys:
        // a column's draws never depend on batch composition or order.
        rngs.push_back(base_rng_.split(rt * 0x100000001B3ull + c));
      }
      tiles_[rt * col_tiles_ + ct].program_columns(seg, c0 % cfg_.cols, var_, rngs.data(),
                                                   opts_);
    }
  }
}

void Accelerator::apply_scales(Matrix& y) const {
  if (!mutable_mode_) {
    y *= scale_;
    return;
  }
  for (std::size_t b = 0; b < y.rows(); ++b) {
    float* row = y.data() + b * y.cols();
    for (std::size_t c = 0; c < y.cols(); ++c) row[c] *= col_scale_[c];
  }
}

Matrix Accelerator::query(const Matrix& x) {
  NVCIM_CHECK_MSG(!tiles_.empty(), "no keys stored");
  NVCIM_CHECK_MSG(x.rows() == 1 && x.cols() == key_len_,
                  "query must be 1x" << key_len_);
  Matrix y(1, n_keys_, 0.0f);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    const std::size_t r0 = rt * cfg_.rows;
    const std::size_t r1 = std::min(r0 + cfg_.rows, key_len_);
    const Matrix xs = x.col_slice(r0, r1);
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::size_t c0 = ct * cfg_.cols;
      Matrix part = tiles_[rt * col_tiles_ + ct].matvec(xs);
      for (std::size_t c = 0; c < part.cols(); ++c) y(0, c0 + c) += part(0, c);
    }
  }
  apply_scales(y);
  return y;
}

Matrix Accelerator::query_batch(const Matrix& x) {
  Matrix y;
  BatchScratch scratch;
  query_batch_into(x, y, scratch);
  return y;
}

void Accelerator::query_batch_into(const Matrix& x, Matrix& y, BatchScratch& scratch,
                                   const CandidateSet* candidates) {
  NVCIM_CHECK_MSG(!tiles_.empty(), "no keys stored");
  NVCIM_CHECK_MSG(x.rows() >= 1 && x.cols() == key_len_,
                  "queries must be Bx" << key_len_);
  if (candidates != nullptr) {
    // Only a mutable store may be QUERIED wider than the bitmap (capacity
    // grown after a batch routed against an earlier epoch — the extra
    // columns are never candidates); an immutable store with a mismatched
    // bitmap is a caller bug and keeps the hard equality check.
    NVCIM_CHECK_MSG(candidates->n_queries == x.rows() &&
                        (candidates->n_keys == n_keys_ ||
                         (mutable_mode_ && candidates->n_keys <= n_keys_)),
                    "candidate set is " << candidates->n_queries << "x" << candidates->n_keys
                                        << ", expected " << x.rows() << "x" << n_keys_);
  }
  y.resize(x.rows(), n_keys_);
  y.fill(0.0f);
  // Column tiles no query needs are skipped outright; the scan is
  // independent of the row tile, so hoist it out of the grid walk.
  if (candidates != nullptr) {
    scratch.col_tile_needed.assign(col_tiles_, 0);
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::size_t c0 = ct * cfg_.cols;
      const std::size_t c1 = std::min({c0 + cfg_.cols, n_keys_, candidates->n_keys});
      if (c0 >= c1) continue;  // tile fully beyond the bitmap: never needed
      for (std::size_t b = 0; b < x.rows() && scratch.col_tile_needed[ct] == 0; ++b)
        scratch.col_tile_needed[ct] = candidates->any_in_range(b, c0, c1) ? 1 : 0;
    }
  }
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    const std::size_t r0 = rt * cfg_.rows;
    const std::size_t r1 = std::min(r0 + cfg_.rows, key_len_);
    // Single row tile: feed the query block straight through, no column copy.
    const Matrix* xs = &x;
    if (row_tiles_ > 1) {
      scratch.xs.resize(x.rows(), r1 - r0);
      for (std::size_t b = 0; b < x.rows(); ++b)
        std::copy(x.data() + b * key_len_ + r0, x.data() + b * key_len_ + r1,
                  scratch.xs.data() + b * (r1 - r0));
      xs = &scratch.xs;
    }
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      if (candidates != nullptr && scratch.col_tile_needed[ct] == 0) continue;
      const std::size_t c0 = ct * cfg_.cols;
      tiles_[rt * col_tiles_ + ct].matvec_batch_into(*xs, scratch.part, candidates, c0);
      const Matrix& part = scratch.part;
      for (std::size_t b = 0; b < part.rows(); ++b)
        for (std::size_t c = 0; c < part.cols(); ++c) y(b, c0 + c) += part(b, c);
    }
  }
  apply_scales(y);
}

Matrix Accelerator::query_ideal(const Matrix& x) const {
  NVCIM_CHECK_MSG(keys_ref_.rows() == n_keys_, "no keys stored");
  return matmul_nt(x, keys_ref_);
}

std::size_t Accelerator::inject_column_fault(std::size_t col, nvm::FaultKind kind,
                                             std::size_t cells_per_segment,
                                             std::uint64_t seed) {
  NVCIM_CHECK_MSG(!tiles_.empty(), "no keys stored");
  NVCIM_CHECK_MSG(col < n_keys_, "column " << col << " out of range");
  const std::size_t ct = col / cfg_.cols;
  std::size_t clamped = 0;
  for (std::size_t rt = 0; rt < row_tiles_; ++rt)
    clamped += tiles_[rt * col_tiles_ + ct].inject_column_fault(
        col % cfg_.cols, kind, cells_per_segment, seed ^ (rt * 0x9E3779B97F4A7C15ull));
  return clamped;
}

void Accelerator::kill_subarray(std::size_t subarray) {
  NVCIM_CHECK_MSG(subarray < col_tiles_, "subarray " << subarray << " out of range");
  for (std::size_t rt = 0; rt < row_tiles_; ++rt)
    tiles_[rt * col_tiles_ + subarray].kill();
}

bool Accelerator::subarray_killed(std::size_t subarray) const {
  NVCIM_CHECK_MSG(subarray < col_tiles_, "subarray " << subarray << " out of range");
  return tiles_[subarray].killed();
}

void Accelerator::set_drift_rate(double rate_per_tick) {
  for (Crossbar& t : tiles_) t.set_drift_rate(rate_per_tick);
}

void Accelerator::advance_age(std::uint64_t ticks) {
  for (Crossbar& t : tiles_) t.advance_age(ticks);
}

ColumnProbe Accelerator::probe_column(std::size_t col, double eps) const {
  NVCIM_CHECK_MSG(!tiles_.empty(), "no keys stored");
  NVCIM_CHECK_MSG(col < n_keys_, "column " << col << " out of range");
  const std::size_t ct = col / cfg_.cols;
  ColumnProbe pr;
  for (std::size_t rt = 0; rt < row_tiles_; ++rt)
    pr += tiles_[rt * col_tiles_ + ct].probe_column(col % cfg_.cols, eps);
  return pr;
}

OpCounters Accelerator::counters() const {
  OpCounters c;
  for (const Crossbar& t : tiles_) c += t.counters();
  return c;
}

void Accelerator::reset_counters() {
  for (Crossbar& t : tiles_) t.reset_counters();
}

}  // namespace nvcim::cim
