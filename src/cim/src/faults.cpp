#include "nvcim/cim/faults.hpp"

#include "nvcim/common/check.hpp"
#include "nvcim/common/rng.hpp"

namespace nvcim::cim {

std::vector<ColumnFault> generate_fault_storm(const FaultStormConfig& cfg,
                                              std::size_t n_subarrays,
                                              std::size_t n_columns) {
  NVCIM_CHECK_MSG(n_subarrays > 0 && n_columns > 0, "empty fault-storm geometry");
  NVCIM_CHECK_MSG(cfg.column_frac >= 0.0 && cfg.column_frac <= 1.0,
                  "column_frac must be in [0, 1]");
  const std::size_t total = n_subarrays * n_columns;
  const std::size_t n_faults =
      static_cast<std::size_t>(cfg.column_frac * static_cast<double>(total));
  std::vector<ColumnFault> storm;
  if (n_faults == 0) return storm;

  Rng rng(cfg.seed);
  // Distinct flat positions, then kind draws in position order — both from
  // the one seeded stream, so the storm is a pure function of (cfg, grid).
  const std::vector<std::size_t> picks = rng.sample_without_replacement(total, n_faults);
  storm.reserve(n_faults);
  for (const std::size_t flat : picks) {
    ColumnFault f;
    f.subarray = flat / n_columns;
    f.column = flat % n_columns;
    f.kind = rng.uniform() < cfg.stuck_on_frac ? nvm::FaultKind::StuckAtOn
                                               : nvm::FaultKind::StuckAtOff;
    f.n_cells = cfg.cells_per_column;
    storm.push_back(f);
  }
  return storm;
}

}  // namespace nvcim::cim
