#include "nvcim/cim/crossbar.hpp"

#include <algorithm>
#include <cmath>

#include "nvcim/cim/quant.hpp"

namespace nvcim::cim {

void Crossbar::program(const Matrix& int_values, const nvm::VariationModel& var, Rng& rng,
                       const ProgramOptions& opts) {
  NVCIM_CHECK_MSG(int_values.rows() <= cfg_.rows && int_values.cols() <= cfg_.cols,
                  "matrix " << int_values.rows() << "x" << int_values.cols()
                            << " exceeds subarray " << cfg_.rows << "x" << cfg_.cols);
  NVCIM_CHECK_MSG(var.device.n_levels == cfg_.levels(),
                  "device level count must match bits_per_cell");
  active_rows_ = int_values.rows();
  active_cols_ = int_values.cols();
  reference_ = int_values;

  const std::size_t S = cfg_.n_slices();
  const long level_mask = static_cast<long>(cfg_.levels()) - 1;
  const double denorm = static_cast<double>(cfg_.levels() - 1);
  const long vmax = qmax_for_bits(static_cast<int>(cfg_.value_bits));

  pos_planes_.assign(S, Matrix(active_rows_, active_cols_, 0.0f));
  neg_planes_.assign(S, Matrix(active_rows_, active_cols_, 0.0f));

  for (std::size_t r = 0; r < active_rows_; ++r) {
    for (std::size_t c = 0; c < active_cols_; ++c) {
      const double vf = int_values(r, c);
      NVCIM_CHECK_MSG(std::fabs(vf - std::round(vf)) < 1e-3,
                      "crossbar expects integer-valued entries");
      long v = static_cast<long>(std::llround(vf));
      NVCIM_CHECK_MSG(std::labs(v) <= vmax, "value " << v << " exceeds int" << cfg_.value_bits);
      long pos = v > 0 ? v : 0;
      long neg = v < 0 ? -v : 0;
      if (!cfg_.differential) {
        NVCIM_CHECK_MSG(v >= 0, "non-differential crossbar requires non-negative values");
        neg = 0;
      }
      const bool verify =
          opts.verify_tolerance > 0.0 &&
          (opts.verify_mask == nullptr || (*opts.verify_mask)(r, c) > 0.0f);
      for (std::size_t s = 0; s < S; ++s) {
        const long pn = (pos >> (s * cfg_.bits_per_cell)) & level_mask;
        const long nn = (neg >> (s * cfg_.bits_per_cell)) & level_mask;
        auto program_one = [&](long nibble) -> double {
          const double normalized = static_cast<double>(nibble) / denorm;
          if (verify) {
            auto wv = nvm::write_verify_cell(normalized, var, rng, opts.verify_tolerance,
                                             opts.max_write_iterations);
            counters_.write_pulses += wv.pulses;
            return wv.conductance * denorm;
          }
          counters_.write_pulses += 1;
          return nvm::program_cell(normalized, var, rng) * denorm;
        };
        pos_planes_[s](r, c) = static_cast<float>(program_one(pn));
        if (cfg_.differential) neg_planes_[s](r, c) = static_cast<float>(program_one(nn));
        counters_.cells_programmed += cfg_.differential ? 2 : 1;
      }
    }
  }
}

Matrix Crossbar::read_values() const {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar not programmed");
  const std::size_t S = cfg_.n_slices();
  Matrix out(active_rows_, active_cols_, 0.0f);
  for (std::size_t s = 0; s < S; ++s) {
    const double shift = std::pow(2.0, static_cast<double>(s * cfg_.bits_per_cell));
    for (std::size_t r = 0; r < active_rows_; ++r)
      for (std::size_t c = 0; c < active_cols_; ++c) {
        double v = pos_planes_[s](r, c);
        if (cfg_.differential) v -= neg_planes_[s](r, c);
        out(r, c) += static_cast<float>(shift * v);
      }
  }
  return out;
}

double Crossbar::adc_quantize(double analog, double full_scale) const {
  if (cfg_.adc_bits == 0 || full_scale <= 0.0) return analog;
  const double n_codes = static_cast<double>((1ull << cfg_.adc_bits) - 1);
  const double lsb = full_scale / n_codes;
  return std::round(analog / lsb) * lsb;
}

Matrix Crossbar::matvec(const Matrix& x) {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar not programmed");
  NVCIM_CHECK_MSG(x.cols() == active_rows_, "input width " << x.cols() << " != programmed rows "
                                                           << active_rows_);
  const std::size_t S = cfg_.n_slices();
  const double denorm = static_cast<double>(cfg_.levels() - 1);
  Matrix y(x.rows(), active_cols_, 0.0f);

  for (std::size_t m = 0; m < x.rows(); ++m) {
    // ADC full scale: the worst-case column current given this input vector
    // (Σ|x_i| times the max cell level), per NeuroSim's input-referred model.
    double abs_in = 0.0;
    for (std::size_t i = 0; i < x.cols(); ++i) abs_in += std::fabs(x(m, i));
    const double full_scale = abs_in * denorm;

    for (std::size_t s = 0; s < S; ++s) {
      const double shift = std::pow(2.0, static_cast<double>(s * cfg_.bits_per_cell));
      counters_.subarray_activations += cfg_.differential ? 2 : 1;
      for (std::size_t c = 0; c < active_cols_; ++c) {
        double acc_pos = 0.0, acc_neg = 0.0;
        for (std::size_t r = 0; r < active_rows_; ++r) {
          acc_pos += static_cast<double>(x(m, r)) * pos_planes_[s](r, c);
          if (cfg_.differential) acc_neg += static_cast<double>(x(m, r)) * neg_planes_[s](r, c);
        }
        counters_.adc_conversions += cfg_.differential ? 2 : 1;
        const double v =
            adc_quantize(acc_pos, full_scale) - adc_quantize(acc_neg, full_scale);
        y(m, c) += static_cast<float>(shift * v);
      }
    }
  }
  return y;
}

Matrix Crossbar::matvec_batch(const Matrix& x) {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar not programmed");
  NVCIM_CHECK_MSG(x.cols() == active_rows_, "input width " << x.cols() << " != programmed rows "
                                                           << active_rows_);
  const std::size_t S = cfg_.n_slices();
  const double denorm = static_cast<double>(cfg_.levels() - 1);
  Matrix y(x.rows(), active_cols_, 0.0f);
  std::vector<double> acc_pos(active_cols_), acc_neg(active_cols_);

  for (std::size_t m = 0; m < x.rows(); ++m) {
    const float* xrow = x.data() + m * x.cols();
    double abs_in = 0.0;
    for (std::size_t i = 0; i < x.cols(); ++i) abs_in += std::fabs(xrow[i]);
    const double full_scale = abs_in * denorm;

    for (std::size_t s = 0; s < S; ++s) {
      const double shift = std::pow(2.0, static_cast<double>(s * cfg_.bits_per_cell));
      counters_.subarray_activations += cfg_.differential ? 2 : 1;
      std::fill(acc_pos.begin(), acc_pos.end(), 0.0);
      if (cfg_.differential) std::fill(acc_neg.begin(), acc_neg.end(), 0.0);
      for (std::size_t r = 0; r < active_rows_; ++r) {
        const double xv = xrow[r];
        const float* prow = pos_planes_[s].data() + r * active_cols_;
        for (std::size_t c = 0; c < active_cols_; ++c) acc_pos[c] += xv * prow[c];
        if (cfg_.differential) {
          const float* nrow = neg_planes_[s].data() + r * active_cols_;
          for (std::size_t c = 0; c < active_cols_; ++c) acc_neg[c] += xv * nrow[c];
        }
      }
      for (std::size_t c = 0; c < active_cols_; ++c) {
        counters_.adc_conversions += cfg_.differential ? 2 : 1;
        const double neg = cfg_.differential ? adc_quantize(acc_neg[c], full_scale) : 0.0;
        const double v = adc_quantize(acc_pos[c], full_scale) - neg;
        y(m, c) += static_cast<float>(shift * v);
      }
    }
  }
  return y;
}

}  // namespace nvcim::cim
