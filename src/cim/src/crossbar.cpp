#include "nvcim/cim/crossbar.hpp"

#include <algorithm>
#include <cmath>

#include "nvcim/cim/quant.hpp"

namespace nvcim::cim {

void Crossbar::program_cell_slices(std::size_t r, std::size_t c, long v,
                                   const nvm::VariationModel& var, Rng& rng,
                                   const ProgramOptions& opts, bool verify) {
  const std::size_t S = cfg_.n_slices();
  const long level_mask = static_cast<long>(cfg_.levels()) - 1;
  const double denorm = static_cast<double>(cfg_.levels() - 1);
  long pos = v > 0 ? v : 0;
  long neg = v < 0 ? -v : 0;
  if (!cfg_.differential) {
    NVCIM_CHECK_MSG(v >= 0, "non-differential crossbar requires non-negative values");
    neg = 0;
  }
  for (std::size_t s = 0; s < S; ++s) {
    const long pn = (pos >> (s * cfg_.bits_per_cell)) & level_mask;
    const long nn = (neg >> (s * cfg_.bits_per_cell)) & level_mask;
    auto program_one = [&](long nibble) -> double {
      const double normalized = static_cast<double>(nibble) / denorm;
      if (verify) {
        auto wv = nvm::write_verify_cell(normalized, var, rng, opts.verify_tolerance,
                                         opts.max_write_iterations);
        counters_.write_pulses += wv.pulses;
        return wv.conductance * denorm;
      }
      counters_.write_pulses += 1;
      return nvm::program_cell(normalized, var, rng) * denorm;
    };
    const std::size_t idx = s * slice_stride() + r * row_stride() + c * pitch();
    float* cell = cells_.data() + idx;
    cell[0] = static_cast<float>(program_one(pn));
    pristine_[idx] = cell[0];
    if (cfg_.differential) {
      cell[1] = static_cast<float>(program_one(nn));
      pristine_[idx + 1] = cell[1];
    }
    if (!stuck_.empty()) {
      // Stuck cells ignore the write pulse: the fresh level lands in the
      // pristine shadow (what the cell SHOULD hold) but the analog cell
      // stays pinned — which is exactly what a scrub probe then sees.
      auto it = stuck_.find(idx);
      if (it != stuck_.end()) cell[0] = it->second;
      if (cfg_.differential) {
        it = stuck_.find(idx + 1);
        if (it != stuck_.end()) cell[1] = it->second;
      }
    }
    if (cell[0] != 0.0f || (cfg_.differential && cell[1] != 0.0f)) slice_zero_[s] = 0;
    if (cfg_.reference_kernel) {
      pos_planes_[s](r, c) = cell[0];
      if (cfg_.differential) neg_planes_[s](r, c) = cell[1];
    }
    counters_.cells_programmed += cfg_.differential ? 2 : 1;
  }
}

void Crossbar::program(const Matrix& int_values, const nvm::VariationModel& var, Rng& rng,
                       const ProgramOptions& opts) {
  NVCIM_CHECK_MSG(int_values.rows() <= cfg_.rows && int_values.cols() <= cfg_.cols,
                  "matrix " << int_values.rows() << "x" << int_values.cols()
                            << " exceeds subarray " << cfg_.rows << "x" << cfg_.cols);
  NVCIM_CHECK_MSG(var.device.n_levels == cfg_.levels(),
                  "device level count must match bits_per_cell");
  init_blank(int_values.rows(), int_values.cols());
  reference_ = int_values;

  const long vmax = qmax_for_bits(static_cast<int>(cfg_.value_bits));
  for (std::size_t r = 0; r < active_rows_; ++r) {
    for (std::size_t c = 0; c < active_cols_; ++c) {
      const double vf = int_values(r, c);
      NVCIM_CHECK_MSG(std::fabs(vf - std::round(vf)) < 1e-3,
                      "crossbar expects integer-valued entries");
      const long v = static_cast<long>(std::llround(vf));
      NVCIM_CHECK_MSG(std::labs(v) <= vmax, "value " << v << " exceeds int" << cfg_.value_bits);
      const bool verify =
          opts.verify_tolerance > 0.0 &&
          (opts.verify_mask == nullptr || (*opts.verify_mask)(r, c) > 0.0f);
      program_cell_slices(r, c, v, var, rng, opts, verify);
    }
  }
}

void Crossbar::init_blank(std::size_t active_rows, std::size_t active_cols) {
  NVCIM_CHECK_MSG(active_rows > 0 && active_rows <= cfg_.rows &&
                      active_cols > 0 && active_cols <= cfg_.cols,
                  "region " << active_rows << "x" << active_cols << " exceeds subarray "
                            << cfg_.rows << "x" << cfg_.cols);
  active_rows_ = active_rows;
  active_cols_ = active_cols;
  const std::size_t S = cfg_.n_slices();
  cells_.assign(S * slice_stride(), 0.0f);
  slice_shift_.resize(S);
  for (std::size_t s = 0; s < S; ++s)
    slice_shift_[s] = std::ldexp(1.0, static_cast<int>(s * cfg_.bits_per_cell));
  // Every cell is exactly zero (never pulsed): all slices start elided.
  // program_cell_slices clears a slice's flag the moment a nonzero analog
  // level lands in it — monotonic, so the flag is only ever conservative.
  slice_zero_.assign(S, 1);
  // Re-initializing the region models swapping in a fresh physical array:
  // the pristine shadow resets with the cells and accumulated faults clear.
  pristine_.assign(S * slice_stride(), 0.0f);
  stuck_.clear();
  killed_ = false;
  age_ = 0;
  reference_ = Matrix(active_rows_, active_cols_, 0.0f);
  if (cfg_.reference_kernel) {
    pos_planes_.assign(S, Matrix(active_rows_, active_cols_, 0.0f));
    neg_planes_.assign(S, Matrix(active_rows_, active_cols_, 0.0f));
  } else {
    pos_planes_.clear();
    neg_planes_.clear();
  }
}

void Crossbar::program_column(const Matrix& int_values, std::size_t col,
                              const nvm::VariationModel& var, Rng& rng,
                              const ProgramOptions& opts) {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar region not initialized");
  NVCIM_CHECK_MSG(col < active_cols_, "column " << col << " out of range");
  NVCIM_CHECK_MSG(int_values.rows() == 1 && int_values.cols() == active_rows_,
                  "column values must be 1x" << active_rows_);
  NVCIM_CHECK_MSG(var.device.n_levels == cfg_.levels(),
                  "device level count must match bits_per_cell");
  NVCIM_CHECK_MSG(opts.verify_mask == nullptr,
                  "verify_mask is not supported on the per-column path");
  const long vmax = qmax_for_bits(static_cast<int>(cfg_.value_bits));
  const bool verify = opts.verify_tolerance > 0.0;
  for (std::size_t r = 0; r < active_rows_; ++r) {
    const double vf = int_values(0, r);
    NVCIM_CHECK_MSG(std::fabs(vf - std::round(vf)) < 1e-3,
                    "crossbar expects integer-valued entries");
    const long v = static_cast<long>(std::llround(vf));
    NVCIM_CHECK_MSG(std::labs(v) <= vmax, "value " << v << " exceeds int" << cfg_.value_bits);
    reference_(r, col) = static_cast<float>(v);
    program_cell_slices(r, col, v, var, rng, opts, verify);
  }
}

void Crossbar::program_columns(const Matrix& int_values, std::size_t col_begin,
                               const nvm::VariationModel& var, Rng* rngs,
                               const ProgramOptions& opts) {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar region not initialized");
  const std::size_t n = int_values.rows();
  NVCIM_CHECK_MSG(n > 0 && col_begin + n <= active_cols_,
                  "columns [" << col_begin << ", " << col_begin + n << ") out of range");
  NVCIM_CHECK_MSG(int_values.cols() == active_rows_,
                  "column values must be Nx" << active_rows_);
  NVCIM_CHECK_MSG(var.device.n_levels == cfg_.levels(),
                  "device level count must match bits_per_cell");
  NVCIM_CHECK_MSG(opts.verify_mask == nullptr,
                  "verify_mask is not supported on the per-column path");
  const long vmax = qmax_for_bits(static_cast<int>(cfg_.value_bits));
  const bool verify = opts.verify_tolerance > 0.0;
  // Validate the whole span up front, so a bad value can never leave the
  // span half-programmed.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t r = 0; r < active_rows_; ++r) {
      const double vf = int_values(j, r);
      NVCIM_CHECK_MSG(std::fabs(vf - std::round(vf)) < 1e-3,
                      "crossbar expects integer-valued entries");
      const long v = static_cast<long>(std::llround(vf));
      NVCIM_CHECK_MSG(std::labs(v) <= vmax, "value " << v << " exceeds int" << cfg_.value_bits);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t col = col_begin + j;
    Rng& rng = rngs[j];
    // Rows ascending per column, exactly like program_column: a column's
    // cells are a pure function of (values, position, its own stream).
    for (std::size_t r = 0; r < active_rows_; ++r) {
      const long v = static_cast<long>(std::llround(int_values(j, r)));
      reference_(r, col) = static_cast<float>(v);
      program_cell_slices(r, col, v, var, rng, opts, verify);
    }
  }
}

void Crossbar::clamp_cell(std::size_t idx, float level) {
  stuck_[idx] = level;
  cells_[idx] = level;
  const std::size_t s = idx / slice_stride();
  // A nonzero clamp makes the plane non-elidable; a zero clamp leaves the
  // (conservative) flag alone — the cell really does read zero.
  if (level != 0.0f) slice_zero_[s] = 0;
  if (cfg_.reference_kernel) {
    const std::size_t rem = idx % slice_stride();
    const std::size_t r = rem / row_stride();
    const std::size_t cp = rem % row_stride();
    const std::size_t c = cp / pitch();
    if (cfg_.differential && cp % pitch() == 1)
      neg_planes_[s](r, c) = level;
    else
      pos_planes_[s](r, c) = level;
  }
}

std::size_t Crossbar::inject_column_fault(std::size_t col, nvm::FaultKind kind,
                                          std::size_t n_cells, std::uint64_t seed) {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar region not initialized");
  NVCIM_CHECK_MSG(col < active_cols_, "column " << col << " out of range");
  if (n_cells == 0) return 0;
  const float level = static_cast<float>(nvm::stuck_level(kind, cfg_.levels()));
  // Candidates: cells of the column whose fault-free level differs from the
  // stuck level — pinning one of those is guaranteed observable.
  std::vector<std::size_t> cand;
  const std::size_t S = cfg_.n_slices();
  const std::size_t P = pitch();
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t r = 0; r < active_rows_; ++r) {
      const std::size_t base = s * slice_stride() + r * row_stride() + col * P;
      for (std::size_t p = 0; p < P; ++p) {
        const std::size_t idx = base + p;
        if (stuck_.find(idx) == stuck_.end() &&
            std::fabs(pristine_[idx] - level) > 1e-6f)
          cand.push_back(idx);
      }
    }
  }
  if (cand.empty()) return 0;
  Rng rng(seed);
  const std::size_t k = std::min(n_cells, cand.size());
  for (const std::size_t pick : rng.sample_without_replacement(cand.size(), k))
    clamp_cell(cand[pick], level);
  return k;
}

void Crossbar::kill() {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar region not initialized");
  killed_ = true;
  for (std::size_t idx = 0; idx < cells_.size(); ++idx) clamp_cell(idx, 0.0f);
}

void Crossbar::advance_age(std::uint64_t ticks) {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar region not initialized");
  age_ += ticks;
  const double f = nvm::drift_factor(drift_rate_, ticks);
  if (f == 1.0) return;
  const std::size_t S = cfg_.n_slices();
  const std::size_t P = pitch();
  for (std::size_t s = 0; s < S; ++s) {
    if (slice_zero_[s]) continue;  // all-zero plane: nothing to decay
    for (std::size_t r = 0; r < active_rows_; ++r) {
      for (std::size_t c = 0; c < active_cols_; ++c) {
        const std::size_t base = s * slice_stride() + r * row_stride() + c * P;
        for (std::size_t p = 0; p < P; ++p) {
          const std::size_t idx = base + p;
          if (cells_[idx] == 0.0f) continue;  // zero decays to zero
          if (!stuck_.empty() && stuck_.find(idx) != stuck_.end()) continue;
          cells_[idx] = static_cast<float>(static_cast<double>(cells_[idx]) * f);
          if (cfg_.reference_kernel) {
            if (cfg_.differential && p == 1)
              neg_planes_[s](r, c) = cells_[idx];
            else
              pos_planes_[s](r, c) = cells_[idx];
          }
        }
      }
    }
  }
}

ColumnProbe Crossbar::probe_column(std::size_t col, double eps) const {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar region not initialized");
  NVCIM_CHECK_MSG(col < active_cols_, "column " << col << " out of range");
  ColumnProbe pr;
  const std::size_t S = cfg_.n_slices();
  const std::size_t P = pitch();
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t r = 0; r < active_rows_; ++r) {
      const std::size_t base = s * slice_stride() + r * row_stride() + col * P;
      for (std::size_t p = 0; p < P; ++p) {
        const double dev = std::fabs(static_cast<double>(cells_[base + p]) -
                                     static_cast<double>(pristine_[base + p]));
        ++pr.cells;
        if (dev > eps) ++pr.deviant;
        if (dev > pr.max_deviation) pr.max_deviation = dev;
      }
    }
  }
  return pr;
}

Matrix Crossbar::read_values() const {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar not programmed");
  const std::size_t S = cfg_.n_slices();
  const std::size_t P = pitch();
  Matrix out(active_rows_, active_cols_, 0.0f);
  for (std::size_t s = 0; s < S; ++s) {
    const double shift = slice_shift_[s];
    if (slice_zero_[s]) continue;
    for (std::size_t r = 0; r < active_rows_; ++r) {
      const float* row = cells_.data() + s * slice_stride() + r * row_stride();
      for (std::size_t c = 0; c < active_cols_; ++c) {
        double v = row[c * P];
        if (cfg_.differential) v -= row[c * P + 1];
        out(r, c) += static_cast<float>(shift * v);
      }
    }
  }
  return out;
}

double Crossbar::adc_quantize(double analog, double full_scale) const {
  if (cfg_.adc_bits == 0 || full_scale <= 0.0) return analog;
  const double n_codes = static_cast<double>((1ull << cfg_.adc_bits) - 1);
  const double lsb = full_scale / n_codes;
  return std::round(analog / lsb) * lsb;
}

Matrix Crossbar::matvec(const Matrix& x) {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar not programmed");
  NVCIM_CHECK_MSG(x.cols() == active_rows_, "input width " << x.cols() << " != programmed rows "
                                                           << active_rows_);
  if (cfg_.reference_kernel) return matvec_reference(x);
  const std::size_t S = cfg_.n_slices();
  const double denorm = static_cast<double>(cfg_.levels() - 1);
  const std::size_t P = pitch();
  Matrix y(x.rows(), active_cols_, 0.0f);

  for (std::size_t m = 0; m < x.rows(); ++m) {
    // ADC full scale: the worst-case column current given this input vector
    // (Σ|x_i| times the max cell level), per NeuroSim's input-referred model.
    double abs_in = 0.0;
    for (std::size_t i = 0; i < x.cols(); ++i) abs_in += std::fabs(x(m, i));
    const double full_scale = abs_in * denorm;

    for (std::size_t s = 0; s < S; ++s) {
      const double shift = slice_shift_[s];
      counters_.subarray_activations += P;
      counters_.adc_conversions += P * active_cols_;
      if (slice_zero_[s]) continue;  // contributes exactly zero
      const float* plane = cells_.data() + s * slice_stride();
      for (std::size_t c = 0; c < active_cols_; ++c) {
        double acc_pos = 0.0, acc_neg = 0.0;
        const float* cell = plane + c * P;
        for (std::size_t r = 0; r < active_rows_; ++r, cell += row_stride()) {
          acc_pos += static_cast<double>(x(m, r)) * cell[0];
          if (cfg_.differential) acc_neg += static_cast<double>(x(m, r)) * cell[1];
        }
        const double v =
            adc_quantize(acc_pos, full_scale) - adc_quantize(acc_neg, full_scale);
        y(m, c) += static_cast<float>(shift * v);
      }
    }
  }
  return y;
}

/// Fused slice kernel shared by the exact (double) and FastAccumulate
/// (float) paths, iterated slice-major with register/L1 blocking: each
/// slice's interleaved [G+ G−] plane is swept once per query tile (the
/// legacy kernel re-streamed all S planes per query), feeding a resident
/// kTile×kBlk accumulator block, then one ADC/shift pass with a hoisted
/// per-query LSB folds the block into the output rows. Bit-identity with
/// the legacy kernel holds because (a) every accumulator element still sums
/// rows r = 0..R-1 in ascending order starting from zero, and (b) each
/// output element still receives its per-slice contributions in ascending
/// slice order — only the interleaving of independent (query, column)
/// partial sums changed.
template <typename Acc>
void Crossbar::fused_matvec(const Matrix& x, Matrix& y, const CandidateSet* candidates,
                            std::size_t col_offset) {
  const std::size_t S = cfg_.n_slices();
  const std::size_t B = x.rows();
  const double denorm = static_cast<double>(cfg_.levels() - 1);
  const std::size_t P = pitch();
  const std::size_t lane = row_stride();

  // ADC full scale per query row: the worst-case column current given that
  // input vector (Σ|x_i| times the max cell level), per NeuroSim's
  // input-referred model. The LSB (full_scale / n_codes) is hoisted here —
  // identical operands to the per-element adc_quantize() computation.
  fullscale_.resize(B);
  lsb_.resize(B);
  const bool adc_on = cfg_.adc_bits != 0;
  const double n_codes = static_cast<double>((1ull << cfg_.adc_bits) - 1);
  for (std::size_t m = 0; m < B; ++m) {
    const float* xrow = x.data() + m * x.cols();
    double abs_in = 0.0;
    for (std::size_t i = 0; i < x.cols(); ++i) abs_in += std::fabs(xrow[i]);
    fullscale_[m] = abs_in * denorm;
    lsb_[m] = adc_on && fullscale_[m] > 0.0 ? fullscale_[m] / n_codes : 0.0;
  }

  // Register blocking: kTile queries × kBlk accumulator columns per pass.
  // The four per-query blocks live in vector registers across the entire
  // row sweep (the naive kernel re-loads and re-stores its full accumulator
  // lane every row — that L1 traffic, not the FMAs, was the wall-clock),
  // each plane element is loaded once per query tile and feeds all four
  // queries' FMAs, and each pass reads a kBlk-wide column stripe of the
  // plane exactly once. Iteration order over (query, column block) changes
  // only WHICH element's sum is formed when; every accumulator element
  // still sums rows r = 0..R-1 in ascending order starting from zero,
  // exactly as the legacy kernel's std::fill + accumulate — so results are
  // bit-identical.
  constexpr std::size_t kTile = 4;
  constexpr std::size_t kBlk = kAccumulatorLanes;
  const std::size_t rows = active_rows_;

  // Candidate masking: one byte per (query, column block) saying whether any
  // candidate key lands in that block's output columns. kBlk interleaved
  // accumulators cover kBlk/P output columns, so block boundaries align with
  // whole columns and a cleared byte skips the block's entire row sweep.
  const std::size_t n_blocks = (lane + kBlk - 1) / kBlk;
  const bool masked = candidates != nullptr;
  std::size_t computed_cols = masked ? 0 : B * active_cols_;
  if (masked) {
    block_need_.assign(B * n_blocks, 0);
    for (std::size_t m = 0; m < B; ++m) {
      for (std::size_t bk = 0; bk < n_blocks; ++bk) {
        const std::size_t c_lo = bk * kBlk / P;
        const std::size_t c_hi = std::min(active_cols_, ((bk + 1) * kBlk + P - 1) / P);
        // Columns beyond the candidate set's width (possible when a mutable
        // store grew after the bitmap was routed) are never candidates.
        const std::size_t k_lo = col_offset + c_lo;
        const std::size_t k_hi = std::min(col_offset + c_hi, candidates->n_keys);
        if (k_lo < k_hi && candidates->any_in_range(m, k_lo, k_hi)) {
          block_need_[m * n_blocks + bk] = 1;
          computed_cols += c_hi - c_lo;
        }
      }
    }
  }
  const auto need = [&](std::size_t m, std::size_t k0) {
    return !masked || block_need_[m * n_blocks + k0 / kBlk] != 0;
  };

  // Subarray activations follow the input-side schedule (a plane activation
  // is shared by every column of the wave); ADC conversions advance only for
  // computed (query, column) pairs, so candidate pruning shows up in the
  // cost model exactly where the hardware saves — column reads.
  counters_.subarray_activations += B * S * P;
  counters_.adc_conversions += S * P * computed_cols;

  // ADC + shift fold of one query's accumulator block into its output row.
  const auto fold = [&](std::size_t m, const Acc* bt, std::size_t k0, std::size_t kb,
                        double shift) {
    const double lsb = lsb_[m];
    const auto quantize = [lsb](double analog) {
      return lsb > 0.0 ? std::round(analog / lsb) * lsb : analog;
    };
    float* yrow = y.data() + m * active_cols_;
    if (cfg_.differential) {
      for (std::size_t j = 0; j < kb; j += 2) {
        const double v = quantize(static_cast<double>(bt[j])) -
                         quantize(static_cast<double>(bt[j + 1]));
        yrow[(k0 + j) / 2] += static_cast<float>(shift * v);
      }
    } else {
      for (std::size_t j = 0; j < kb; ++j)
        yrow[k0 + j] += static_cast<float>(shift * quantize(static_cast<double>(bt[j])));
    }
  };

  for (std::size_t s = 0; s < S; ++s) {
    if (slice_zero_[s]) continue;  // contributes exactly zero
    const double shift = slice_shift_[s];
    const float* plane = cells_.data() + s * slice_stride();
    std::size_t m0 = 0;
    for (; m0 + kTile <= B; m0 += kTile) {
      const float* x0 = x.data() + (m0 + 0) * x.cols();
      const float* x1 = x.data() + (m0 + 1) * x.cols();
      const float* x2 = x.data() + (m0 + 2) * x.cols();
      const float* x3 = x.data() + (m0 + 3) * x.cols();
      std::size_t k0 = 0;
      for (; k0 + kBlk <= lane; k0 += kBlk) {
        const bool n0 = need(m0 + 0, k0), n1 = need(m0 + 1, k0);
        const bool n2 = need(m0 + 2, k0), n3 = need(m0 + 3, k0);
        if (!(n0 || n1 || n2 || n3)) continue;  // no candidate in this block
        Acc b0[kBlk] = {}, b1[kBlk] = {}, b2[kBlk] = {}, b3[kBlk] = {};
        const float* col = plane + k0;
        for (std::size_t r = 0; r < rows; ++r, col += lane) {
          const Acc v0 = static_cast<Acc>(x0[r]), v1 = static_cast<Acc>(x1[r]);
          const Acc v2 = static_cast<Acc>(x2[r]), v3 = static_cast<Acc>(x3[r]);
          for (std::size_t j = 0; j < kBlk; ++j) {
            const Acc p = static_cast<Acc>(col[j]);
            b0[j] += v0 * p;
            b1[j] += v1 * p;
            b2[j] += v2 * p;
            b3[j] += v3 * p;
          }
        }
        if (n0) fold(m0 + 0, b0, k0, kBlk, shift);
        if (n1) fold(m0 + 1, b1, k0, kBlk, shift);
        if (n2) fold(m0 + 2, b2, k0, kBlk, shift);
        if (n3) fold(m0 + 3, b3, k0, kBlk, shift);
      }
      if (k0 < lane) {  // column remainder, full query tile
        const bool n0 = need(m0 + 0, k0), n1 = need(m0 + 1, k0);
        const bool n2 = need(m0 + 2, k0), n3 = need(m0 + 3, k0);
        if (!(n0 || n1 || n2 || n3)) continue;
        const std::size_t kb = lane - k0;
        Acc b0[kBlk] = {}, b1[kBlk] = {}, b2[kBlk] = {}, b3[kBlk] = {};
        const float* col = plane + k0;
        for (std::size_t r = 0; r < rows; ++r, col += lane) {
          const Acc v0 = static_cast<Acc>(x0[r]), v1 = static_cast<Acc>(x1[r]);
          const Acc v2 = static_cast<Acc>(x2[r]), v3 = static_cast<Acc>(x3[r]);
          for (std::size_t j = 0; j < kb; ++j) {
            const Acc p = static_cast<Acc>(col[j]);
            b0[j] += v0 * p;
            b1[j] += v1 * p;
            b2[j] += v2 * p;
            b3[j] += v3 * p;
          }
        }
        if (n0) fold(m0 + 0, b0, k0, kb, shift);
        if (n1) fold(m0 + 1, b1, k0, kb, shift);
        if (n2) fold(m0 + 2, b2, k0, kb, shift);
        if (n3) fold(m0 + 3, b3, k0, kb, shift);
      }
    }
    for (; m0 < B; ++m0) {  // query remainder, one query at a time
      const float* xq = x.data() + m0 * x.cols();
      for (std::size_t k0 = 0; k0 < lane; k0 += kBlk) {
        if (!need(m0, k0)) continue;
        const std::size_t kb = std::min(kBlk, lane - k0);
        Acc b0[kBlk] = {};
        const float* col = plane + k0;
        for (std::size_t r = 0; r < rows; ++r, col += lane) {
          const Acc v0 = static_cast<Acc>(xq[r]);
          for (std::size_t j = 0; j < kb; ++j) b0[j] += v0 * static_cast<Acc>(col[j]);
        }
        fold(m0, b0, k0, kb, shift);
      }
    }
  }
}

void Crossbar::matvec_batch_into(const Matrix& x, Matrix& y, const CandidateSet* candidates,
                                 std::size_t col_offset) {
  NVCIM_CHECK_MSG(active_rows_ > 0, "crossbar not programmed");
  NVCIM_CHECK_MSG(x.cols() == active_rows_, "input width " << x.cols() << " != programmed rows "
                                                           << active_rows_);
  if (candidates != nullptr) {
    NVCIM_CHECK_MSG(candidates->n_queries == x.rows(),
                    "candidate set covers " << candidates->n_queries << " queries, batch has "
                                            << x.rows());
    // The candidate set may be NARROWER than this subarray's column span: a
    // mutable store can grow capacity after a batch routed its bitmaps
    // against an earlier epoch. Columns beyond n_keys are simply never
    // candidates (they belong to users admitted after the batch pinned).
  }
  if (cfg_.reference_kernel) {
    y = matvec_batch_reference(x);  // full-compute baseline: mask ignored
    return;
  }
  y.resize(x.rows(), active_cols_);
  y.fill(0.0f);
  if (cfg_.fast_accumulate)
    fused_matvec<float>(x, y, candidates, col_offset);
  else
    fused_matvec<double>(x, y, candidates, col_offset);
}

Matrix Crossbar::matvec_batch(const Matrix& x) {
  Matrix y;
  matvec_batch_into(x, y);
  return y;
}

// ---------------------------------------------------------------------------
// Legacy (pre-fusion) kernels, selected by CrossbarConfig::reference_kernel.
// These run on the plane-separated storage exactly as before the interleaved
// layout landed: std::pow per slice, std::fill per accumulator pass, and two
// separate polarity loops. They exist as the comparator for bit-identity
// property tests and as the in-situ perf baseline for benches.
// ---------------------------------------------------------------------------

Matrix Crossbar::matvec_reference(const Matrix& x) {
  const std::size_t S = cfg_.n_slices();
  const double denorm = static_cast<double>(cfg_.levels() - 1);
  Matrix y(x.rows(), active_cols_, 0.0f);

  for (std::size_t m = 0; m < x.rows(); ++m) {
    double abs_in = 0.0;
    for (std::size_t i = 0; i < x.cols(); ++i) abs_in += std::fabs(x(m, i));
    const double full_scale = abs_in * denorm;

    for (std::size_t s = 0; s < S; ++s) {
      const double shift = std::pow(2.0, static_cast<double>(s * cfg_.bits_per_cell));
      counters_.subarray_activations += cfg_.differential ? 2 : 1;
      for (std::size_t c = 0; c < active_cols_; ++c) {
        double acc_pos = 0.0, acc_neg = 0.0;
        for (std::size_t r = 0; r < active_rows_; ++r) {
          acc_pos += static_cast<double>(x(m, r)) * pos_planes_[s](r, c);
          if (cfg_.differential) acc_neg += static_cast<double>(x(m, r)) * neg_planes_[s](r, c);
        }
        counters_.adc_conversions += cfg_.differential ? 2 : 1;
        const double v =
            adc_quantize(acc_pos, full_scale) - adc_quantize(acc_neg, full_scale);
        y(m, c) += static_cast<float>(shift * v);
      }
    }
  }
  return y;
}

Matrix Crossbar::matvec_batch_reference(const Matrix& x) {
  const std::size_t S = cfg_.n_slices();
  const double denorm = static_cast<double>(cfg_.levels() - 1);
  Matrix y(x.rows(), active_cols_, 0.0f);
  std::vector<double> acc_pos(active_cols_), acc_neg(active_cols_);

  for (std::size_t m = 0; m < x.rows(); ++m) {
    const float* xrow = x.data() + m * x.cols();
    double abs_in = 0.0;
    for (std::size_t i = 0; i < x.cols(); ++i) abs_in += std::fabs(xrow[i]);
    const double full_scale = abs_in * denorm;

    for (std::size_t s = 0; s < S; ++s) {
      const double shift = std::pow(2.0, static_cast<double>(s * cfg_.bits_per_cell));
      counters_.subarray_activations += cfg_.differential ? 2 : 1;
      std::fill(acc_pos.begin(), acc_pos.end(), 0.0);
      if (cfg_.differential) std::fill(acc_neg.begin(), acc_neg.end(), 0.0);
      for (std::size_t r = 0; r < active_rows_; ++r) {
        const double xv = xrow[r];
        const float* prow = pos_planes_[s].data() + r * active_cols_;
        for (std::size_t c = 0; c < active_cols_; ++c) acc_pos[c] += xv * prow[c];
        if (cfg_.differential) {
          const float* nrow = neg_planes_[s].data() + r * active_cols_;
          for (std::size_t c = 0; c < active_cols_; ++c) acc_neg[c] += xv * nrow[c];
        }
      }
      for (std::size_t c = 0; c < active_cols_; ++c) {
        counters_.adc_conversions += cfg_.differential ? 2 : 1;
        const double neg = cfg_.differential ? adc_quantize(acc_neg[c], full_scale) : 0.0;
        const double v = adc_quantize(acc_pos[c], full_scale) - neg;
        y(m, c) += static_cast<float>(shift * v);
      }
    }
  }
  return y;
}

}  // namespace nvcim::cim
