#pragma once

#include <cstddef>
#include <string>

#include "nvcim/cim/crossbar.hpp"

namespace nvcim::cim {

/// First-order analytical latency/energy model in the spirit of
/// DNN+NeuroSim v2.0 at the 22 nm node. Constants are calibrated so that the
/// CiM-vs-CPU improvement envelope matches the paper's reported "up to 120×
/// latency / 60× energy vs Jetson Orin CPU" (see EXPERIMENTS.md); the model
/// captures the first-order terms — subarray read time, ADC cost, peripheral
/// overhead, bank-level parallelism — not circuit-level detail.
struct CimPerfParams {
  std::string name;
  double t_subarray_ns = 60.0;     ///< one slice-plane MVM (DAC+array+ADC pipeline)
  double e_cell_read_fj = 2.0;     ///< per cell per activation
  double e_adc_pj = 2.0;           ///< per 8-bit conversion
  double peripheral_overhead = 0.2;///< shift-add, mux, buffers (fraction of array+ADC)
  std::size_t parallel_banks = 8;  ///< subarrays operating concurrently
};

CimPerfParams rram_perf_22nm();
CimPerfParams fefet_perf_22nm();

/// Jetson-Orin-class CPU cost model: MAC throughput bound and DRAM streaming
/// bound, plus SSD paging once the OVT store exceeds the DRAM budget.
struct CpuPerfParams {
  std::string name = "Jetson Orin CPU";
  double mac_rate_gmacs = 4.0;      ///< effective sustained GMAC/s
  double dram_bw_gbps = 8.0;        ///< GB/s
  double dram_capacity_gb = 8.0;    ///< budget for the OVT store (Orin-class)
  double ssd_bw_gbps = 0.2;         ///< effective random-read GB/s
  double e_mac_pj = 2.0;
  double e_byte_dram_pj = 3.0;
  double e_byte_ssd_pj = 30.0;
};

CpuPerfParams jetson_orin_cpu();

struct PerfEstimate {
  double latency_ns = 0.0;
  double energy_pj = 0.0;
};

/// Cost of one in-memory similarity search over n_keys stored keys of
/// key_len int16 elements (analytical tile/slice counting — usable for key
/// counts far beyond what the functional simulator can hold).
PerfEstimate cim_retrieval_cost(const CimPerfParams& p, const CrossbarConfig& cfg,
                                std::size_t n_keys, std::size_t key_len);

/// Same cost derived from measured OpCounters of a functional run.
PerfEstimate cim_cost_from_counters(const CimPerfParams& p, const CrossbarConfig& cfg,
                                    const OpCounters& counters);

/// Cost of the same search on the CPU (streaming all keys from DRAM, paging
/// from SSD beyond the DRAM budget).
PerfEstimate cpu_retrieval_cost(const CpuPerfParams& p, std::size_t n_keys,
                                std::size_t key_len, std::size_t bytes_per_value = 2);

// ---- OVT storage sizing (Fig. 2) ----
// Paper-scale dimensions: a real edge-LLM OVT is ~20 virtual tokens × 2048
// hidden dim in fp16.
struct OvtSizingModel {
  std::size_t n_tokens = 20;
  std::size_t hidden_dim = 2048;
  std::size_t bytes_per_value = 2;  ///< fp16

  double bytes_per_ovt() const {
    return static_cast<double>(n_tokens * hidden_dim * bytes_per_value);
  }
  double total_bytes(std::size_t n_ovts) const {
    return bytes_per_ovt() * static_cast<double>(n_ovts);
  }
};

/// SSD→DRAM transfer seconds for a store of the given size (Fig. 2b).
double ssd_transfer_seconds(double bytes, const CpuPerfParams& p);

}  // namespace nvcim::cim
