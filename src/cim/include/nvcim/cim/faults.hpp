#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nvcim/nvm/faults.hpp"

namespace nvcim::cim {

/// One injected column fault, addressed in accelerator coordinates: the
/// column-tile subarray index and the key column within it.
struct ColumnFault {
  std::size_t subarray = 0;  ///< column-tile index
  std::size_t column = 0;    ///< column within the subarray, [0, cols)
  nvm::FaultKind kind = nvm::FaultKind::StuckAtOn;
  std::size_t n_cells = 1;  ///< stuck cells per (row tile, column) segment
};

/// Seed-driven description of a fault storm. The same seed and geometry
/// always generate the same fault set, so tests and benches can replay
/// identical storms against different builds.
struct FaultStormConfig {
  std::uint64_t seed = 0x5EEDFA17ull;
  double column_frac = 0.05;   ///< fraction of (subarray, column) pairs hit
  double stuck_on_frac = 0.5;  ///< of faulted columns, share that stick ON
  std::size_t cells_per_column = 2;
};

/// Result of probing one column's analog cells against their recorded
/// fault-free (pristine) levels.
struct ColumnProbe {
  std::size_t cells = 0;    ///< cells probed
  std::size_t deviant = 0;  ///< cells deviating from pristine by > eps
  double max_deviation = 0.0;

  double deviant_frac() const {
    return cells == 0 ? 0.0 : static_cast<double>(deviant) / static_cast<double>(cells);
  }
  ColumnProbe& operator+=(const ColumnProbe& o) {
    cells += o.cells;
    deviant += o.deviant;
    if (o.max_deviation > max_deviation) max_deviation = o.max_deviation;
    return *this;
  }
};

/// Deterministically sample a fault storm over an n_subarrays × n_columns
/// column grid: ⌊column_frac · total⌋ distinct (subarray, column) pairs,
/// each stuck ON with probability stuck_on_frac (drawn from the same seeded
/// stream). Identical inputs ⇒ identical storms, independent of platform.
std::vector<ColumnFault> generate_fault_storm(const FaultStormConfig& cfg,
                                              std::size_t n_subarrays,
                                              std::size_t n_columns);

}  // namespace nvcim::cim
