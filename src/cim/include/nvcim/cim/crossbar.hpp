#pragma once

#include <optional>
#include <vector>

#include "nvcim/nvm/device.hpp"
#include "nvcim/tensor/matrix.hpp"

namespace nvcim::cim {

/// Geometry and conversion parameters of one NVCiM subarray. The defaults
/// follow the paper: 384×128 subarrays of 2-bit cells holding int16 values,
/// which bit-slices to 8 cell planes per polarity.
struct CrossbarConfig {
  std::size_t rows = 384;
  std::size_t cols = 128;
  std::size_t bits_per_cell = 2;
  std::size_t value_bits = 16;  ///< integer precision of stored values
  std::size_t adc_bits = 8;     ///< 0 = ideal (no ADC quantization)
  bool differential = true;     ///< signed values as G+ − G− cell pairs

  std::size_t levels() const { return 1ull << bits_per_cell; }
  std::size_t n_slices() const {
    const std::size_t magnitude_bits = value_bits - (differential ? 1 : 0);
    return (magnitude_bits + bits_per_cell - 1) / bits_per_cell;
  }
};

/// Options controlling programming (write) behaviour.
struct ProgramOptions {
  double verify_tolerance = 0.0;       ///< 0 disables write-verify
  std::size_t max_write_iterations = 1;
  /// Optional rows×cols mask: entries > 0 get write-verify (SWV's
  /// "selective"); entries == 0 use a single blind write.
  const Matrix* verify_mask = nullptr;
};

/// Counters accumulated across operations, consumed by the PerfModel.
struct OpCounters {
  std::size_t subarray_activations = 0;  ///< one slice-plane MVM each
  std::size_t adc_conversions = 0;
  std::size_t cells_programmed = 0;
  std::size_t write_pulses = 0;

  OpCounters& operator+=(const OpCounters& o) {
    subarray_activations += o.subarray_activations;
    adc_conversions += o.adc_conversions;
    cells_programmed += o.cells_programmed;
    write_pulses += o.write_pulses;
    return *this;
  }
};

/// Functional model of a single NVM crossbar subarray with bit-sliced,
/// differential multi-level cells. Programming draws the per-cell conductance
/// noise once (spatial variation persists across reads); the analog MVM then
/// reads those noisy conductances, with per-slice ADC quantization.
class Crossbar {
 public:
  explicit Crossbar(CrossbarConfig cfg = {}) : cfg_(cfg) {}

  const CrossbarConfig& config() const { return cfg_; }

  /// Program an integer matrix (entries in [-qmax, qmax], exact integers)
  /// of shape at most rows×cols. Smaller matrices occupy the top-left corner.
  void program(const Matrix& int_values, const nvm::VariationModel& var, Rng& rng,
               const ProgramOptions& opts = {});

  /// y = x · W for x of shape m×r (r = programmed rows). Returns m×c in the
  /// stored-integer scale. Non-const: accumulates op counters.
  Matrix matvec(const Matrix& x);

  /// Batched y = x · W with identical semantics (and bit-identical results:
  /// the per-column accumulation order over rows is preserved) but a
  /// cache-friendly kernel — per slice plane the input rows stream across
  /// contiguous plane rows into per-column accumulators, so one pass serves
  /// all B queries of a serving batch. Counters advance exactly as B calls
  /// to matvec would.
  Matrix matvec_batch(const Matrix& x);

  /// Ideal (noise-free, ADC-free) reference of the programmed content.
  const Matrix& programmed_reference() const { return reference_; }

  /// Cell-wise readback of the stored values: reconstructs each integer from
  /// its (noisy) analog slice levels. This models reading a payload matrix
  /// back out of NVM storage.
  Matrix read_values() const;

  std::size_t active_rows() const { return active_rows_; }
  std::size_t active_cols() const { return active_cols_; }

  const OpCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 private:
  double adc_quantize(double analog, double full_scale) const;

  CrossbarConfig cfg_;
  // slice planes of analog cell levels (0..levels-1 plus noise), per polarity
  std::vector<Matrix> pos_planes_;
  std::vector<Matrix> neg_planes_;
  Matrix reference_;
  std::size_t active_rows_ = 0;
  std::size_t active_cols_ = 0;
  OpCounters counters_;
};

}  // namespace nvcim::cim
