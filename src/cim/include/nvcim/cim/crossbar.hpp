#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nvcim/cim/candidates.hpp"
#include "nvcim/cim/faults.hpp"
#include "nvcim/nvm/device.hpp"
#include "nvcim/nvm/faults.hpp"
#include "nvcim/tensor/matrix.hpp"

namespace nvcim::cim {

/// Geometry and conversion parameters of one NVCiM subarray. The defaults
/// follow the paper: 384×128 subarrays of 2-bit cells holding int16 values,
/// which bit-slices to 8 cell planes per polarity.
struct CrossbarConfig {
  std::size_t rows = 384;
  std::size_t cols = 128;
  std::size_t bits_per_cell = 2;
  std::size_t value_bits = 16;  ///< integer precision of stored values
  std::size_t adc_bits = 8;     ///< 0 = ideal (no ADC quantization)
  bool differential = true;     ///< signed values as G+ − G− cell pairs

  /// Opt-in fast path: the fused MVM kernel accumulates in float32 instead
  /// of float64. Roughly halves the accumulator bandwidth (and doubles SIMD
  /// lane count) at the cost of exactness — results are validated against
  /// the exact path within tolerance, not bit-identical.
  bool fast_accumulate = false;

  /// Run the legacy two-plane kernel (the pre-fusion implementation) on
  /// plane-separated storage. Kept for bit-identity property tests and as an
  /// in-situ perf baseline for benches; costs one extra copy of the cell
  /// planes, so leave it off in production configs.
  bool reference_kernel = false;

  std::size_t levels() const { return 1ull << bits_per_cell; }
  std::size_t n_slices() const {
    const std::size_t magnitude_bits = value_bits - (differential ? 1 : 0);
    return (magnitude_bits + bits_per_cell - 1) / bits_per_cell;
  }
};

/// Options controlling programming (write) behaviour.
struct ProgramOptions {
  double verify_tolerance = 0.0;       ///< 0 disables write-verify
  std::size_t max_write_iterations = 1;
  /// Optional rows×cols mask: entries > 0 get write-verify (SWV's
  /// "selective"); entries == 0 use a single blind write.
  const Matrix* verify_mask = nullptr;
};

/// Counters accumulated across operations, consumed by the PerfModel.
/// They track the *logical* operation schedule: slice planes whose cells are
/// exactly zero are elided by the simulator (their contribution is exactly
/// zero), but the counters still advance as if the plane had been activated,
/// so cost accounting is independent of which simulation shortcuts fire.
struct OpCounters {
  std::size_t subarray_activations = 0;  ///< one slice-plane MVM each
  std::size_t adc_conversions = 0;
  std::size_t cells_programmed = 0;
  std::size_t write_pulses = 0;

  OpCounters& operator+=(const OpCounters& o) {
    subarray_activations += o.subarray_activations;
    adc_conversions += o.adc_conversions;
    cells_programmed += o.cells_programmed;
    write_pulses += o.write_pulses;
    return *this;
  }
};

/// Functional model of a single NVM crossbar subarray with bit-sliced,
/// differential multi-level cells. Programming draws the per-cell conductance
/// noise once (spatial variation persists across reads); the analog MVM then
/// reads those noisy conductances, with per-slice ADC quantization.
///
/// Storage is interleaved per slice: each row holds [G+ G−] pairs
/// contiguously ([G+] only without differential pairs), so the fused MVM
/// kernel streams one unit-stride array per slice and feeds both polarities'
/// accumulators in a single pass. Per-slice shift factors (2^(s·bits)) and
/// all-zero-slice flags are precomputed at program time.
class Crossbar {
 public:
  /// Width (in interleaved accumulator lanes) of the fused kernel's register
  /// blocks — candidate masking prunes at this granularity, covering
  /// kAccumulatorLanes / pitch output columns per block. Exposed so the
  /// routing layer can account examined work the way the kernel computes it.
  static constexpr std::size_t kAccumulatorLanes = 32;

  explicit Crossbar(CrossbarConfig cfg = {}) : cfg_(cfg) {}

  const CrossbarConfig& config() const { return cfg_; }

  /// Program an integer matrix (entries in [-qmax, qmax], exact integers)
  /// of shape at most rows×cols. Smaller matrices occupy the top-left corner.
  void program(const Matrix& int_values, const nvm::VariationModel& var, Rng& rng,
               const ProgramOptions& opts = {});

  /// Allocate an unprogrammed active_rows×active_cols region: every cell is
  /// exactly zero (it was never pulsed), so unprogrammed columns contribute
  /// exactly zero to the MVM. The entry point of the mutable (lifecycle)
  /// storage path — columns are then programmed individually.
  void init_blank(std::size_t active_rows, std::size_t active_cols);

  /// (Re)program one column in place. `int_values` is a 1×active_rows row
  /// vector of exact integers. The caller owns the noise stream: passing a
  /// per-(subarray, column) derived Rng makes the programmed cells a pure
  /// function of (position, values, stream) — independent of programming
  /// order and of every other column — which is what keeps untouched
  /// columns bit-identical across admits and lets an incremental program
  /// reproduce a from-scratch one exactly. Other columns' cells are not
  /// touched. `verify_mask` is not supported on this path.
  void program_column(const Matrix& int_values, std::size_t col,
                      const nvm::VariationModel& var, Rng& rng,
                      const ProgramOptions& opts = {});

  /// Program a span of columns [col_begin, col_begin + n) in one visit.
  /// `int_values` is n×active_rows (row j holds column col_begin + j's
  /// integer values) and `rngs` points at n per-column noise streams, one
  /// per column in span order. Bit-identical to n program_column() calls
  /// with the same streams — each column's cells draw from its own stream
  /// in the same row-ascending order — but the geometry checks, value-range
  /// validation and per-call overhead are paid once per span instead of
  /// once per column. The write-behind admission path programs whole
  /// per-subarray batches through this.
  void program_columns(const Matrix& int_values, std::size_t col_begin,
                       const nvm::VariationModel& var, Rng* rngs,
                       const ProgramOptions& opts = {});

  /// y = x · W for x of shape m×r (r = programmed rows). Returns m×c in the
  /// stored-integer scale. Non-const: accumulates op counters.
  Matrix matvec(const Matrix& x);

  /// Batched y = x · W with identical semantics (and bit-identical results:
  /// the per-accumulator addition order over rows is preserved) but a fused
  /// cache-friendly kernel — per slice plane, each input row streams across
  /// the interleaved [G+ G−] cells into adjacent per-column accumulators in
  /// one unit-stride pass, so one sweep serves both polarities of all B
  /// queries. Counters advance exactly as B calls to matvec would.
  Matrix matvec_batch(const Matrix& x);

  /// matvec_batch() written into caller storage — allocation-free once `y`
  /// is warm. Bit-identical to matvec_batch().
  ///
  /// With `candidates`, only output columns whose candidate bit is set (for
  /// some query of the kernel's 4-query register tile) are computed; an
  /// entire 32-accumulator column block is skipped when no query of the tile
  /// has a candidate in it. `col_offset` maps this subarray's columns into
  /// the candidate set's key index space (column c here is key
  /// `col_offset + c`). Computed entries are bit-identical to the unmasked
  /// kernel — skipping a block never reorders another block's accumulation.
  /// Masking is block-granular per query: a non-candidate column is exact 0
  /// when its whole block was pruned for that query, or the exact full-pass
  /// value when a candidate shares its block — callers must argmax over
  /// candidates only. ADC-conversion counters advance only
  /// for computed (query, column) pairs, so pruning is visible in the cost
  /// model; subarray activations still follow the input-side schedule. The
  /// legacy reference kernel ignores the mask (it exists as the full-compute
  /// baseline).
  void matvec_batch_into(const Matrix& x, Matrix& y,
                         const CandidateSet* candidates = nullptr,
                         std::size_t col_offset = 0);

  /// Ideal (noise-free, ADC-free) reference of the programmed content.
  const Matrix& programmed_reference() const { return reference_; }

  /// Cell-wise readback of the stored values: reconstructs each integer from
  /// its (noisy) analog slice levels. This models reading a payload matrix
  /// back out of NVM storage.
  Matrix read_values() const;

  std::size_t active_rows() const { return active_rows_; }
  std::size_t active_cols() const { return active_cols_; }

  /// Analog level of one programmed cell (slice s, row r, col c, polarity).
  /// Diagnostic accessor used by bit-identity tests and benches.
  float cell_level(std::size_t s, std::size_t r, std::size_t c, bool negative) const {
    return cells_[s * slice_stride() + r * row_stride() + c * pitch() + (negative ? 1 : 0)];
  }

  /// True when every cell of slice `s` (both polarities) is exactly zero, so
  /// the MVM elides the plane. Only fires for noise-free programming.
  bool slice_is_zero(std::size_t s) const { return slice_zero_[s] != 0; }

  const OpCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

  // -- Device-fault model ---------------------------------------------------
  // Every programmed cell keeps a `pristine` shadow: the analog level it
  // would hold absent faults (the golden reference of the scrub probes).
  // Stuck cells are clamped to an extreme level and stay clamped across
  // re-programming — a write pulse cannot move a stuck cell — while drift
  // multiplies live cells away from their pristine levels until the next
  // refresh write. A full re-init (init_blank / program) models swapping in
  // a fresh array and clears all faults.

  /// Pin `n_cells` cells of column `col` at the stuck level, chosen
  /// deterministically from `seed` among cells whose fault-free level
  /// differs from the stuck level (so every injected fault is observable).
  /// Returns the number of cells actually clamped (may be < n_cells when
  /// the column has too few observable candidates).
  std::size_t inject_column_fault(std::size_t col, nvm::FaultKind kind,
                                  std::size_t n_cells, std::uint64_t seed);

  /// Whole-subarray kill switch: every cell sticks at zero conductance and
  /// no longer responds to programming.
  void kill();
  bool killed() const { return killed_; }
  std::size_t n_stuck_cells() const { return stuck_.size(); }

  /// Retention drift: advance the array's age by `ticks`, decaying every
  /// live (non-stuck, nonzero) cell by drift_factor(rate, ticks). Pristine
  /// levels are untouched, so probes see the decay; re-programming a cell
  /// refreshes it.
  void set_drift_rate(double rate_per_tick) { drift_rate_ = rate_per_tick; }
  double drift_rate() const { return drift_rate_; }
  void advance_age(std::uint64_t ticks);
  std::uint64_t age() const { return age_; }

  /// Golden probe of one column: compare each analog cell against its
  /// pristine level. Fault-free columns probe clean exactly (programming
  /// noise is frozen at write time and recorded in the shadow), so any
  /// deviation is a fault or drift — detection has no false positives.
  ColumnProbe probe_column(std::size_t col, double eps = 1e-6) const;

 private:
  /// Pin one flat cell index at `level`, keeping slice-zero flags and the
  /// reference-kernel planes consistent with the clamped value.
  void clamp_cell(std::size_t idx, float level);

  double adc_quantize(double analog, double full_scale) const;

  /// Program every slice (both polarities) of cell (r, c) with value `v`,
  /// drawing noise from `rng`. Shared by whole-matrix and per-column
  /// programming so the two paths are cell-for-cell identical given the
  /// same streams.
  void program_cell_slices(std::size_t r, std::size_t c, long v, const nvm::VariationModel& var,
                           Rng& rng, const ProgramOptions& opts, bool verify);

  std::size_t pitch() const { return cfg_.differential ? 2 : 1; }
  std::size_t row_stride() const { return active_cols_ * pitch(); }
  std::size_t slice_stride() const { return active_rows_ * row_stride(); }

  template <typename Acc>
  void fused_matvec(const Matrix& x, Matrix& y, const CandidateSet* candidates,
                    std::size_t col_offset);

  Matrix matvec_reference(const Matrix& x);
  Matrix matvec_batch_reference(const Matrix& x);

  CrossbarConfig cfg_;
  /// Interleaved analog cell levels (0..levels-1 plus noise): slice-major,
  /// then row-major, each row `active_cols_ × pitch()` floats.
  std::vector<float> cells_;
  std::vector<double> slice_shift_;        ///< 2^(s·bits_per_cell)
  std::vector<std::uint8_t> slice_zero_;   ///< slice plane is exactly all-zero
  /// Legacy plane-separated storage, populated only with reference_kernel.
  std::vector<Matrix> pos_planes_;
  std::vector<Matrix> neg_planes_;
  Matrix reference_;
  std::size_t active_rows_ = 0;
  std::size_t active_cols_ = 0;
  OpCounters counters_;
  /// Fault-free shadow of cells_ (same indexing): what each cell would hold
  /// absent stuck faults and drift. The scrub probes' golden reference.
  std::vector<float> pristine_;
  /// Stuck cells: flat cells_ index → pinned analog level. Overrides every
  /// subsequent write of that cell.
  std::unordered_map<std::size_t, float> stuck_;
  double drift_rate_ = 0.0;
  std::uint64_t age_ = 0;
  bool killed_ = false;
  // Reusable kernel scratch (per-query ADC full scale and LSB, plus the
  // per-(query, column-block) candidate flags of a masked pass); members so
  // steady-state batches allocate nothing. The crossbar is externally
  // synchronized (per-shard locks in the serving store).
  std::vector<double> fullscale_;
  std::vector<double> lsb_;
  std::vector<std::uint8_t> block_need_;
};

}  // namespace nvcim::cim
