#pragma once

#include <cstdint>
#include <vector>

namespace nvcim::cim {

/// Per-query candidate bitmaps over the key columns of an accelerator: bit
/// (q, k) set means query row q still needs an exact crossbar score for key
/// column k. Produced by a phase-1 router (k-means centroid ranking + low-bit
/// sketch prefilter in the serving store) and consumed by the fused MVM
/// kernel, which skips whole accumulator column blocks no query of a tile
/// needs. Columns whose bit is clear come back as exact 0 in the score
/// matrix — callers must argmax over candidates only.
struct CandidateSet {
  std::size_t n_queries = 0;
  std::size_t n_keys = 0;
  /// Row-major n_queries × n_keys flags (bytes, not packed bits: the kernel
  /// reads them in tight per-block loops and byte loads beat bit twiddling
  /// at these sizes).
  std::vector<std::uint8_t> bits;

  /// Reset to n_queries × n_keys with every bit clear.
  void reset(std::size_t queries, std::size_t keys) {
    n_queries = queries;
    n_keys = keys;
    bits.assign(queries * keys, 0);
  }

  void set(std::size_t q, std::size_t k) { bits[q * n_keys + k] = 1; }
  bool test(std::size_t q, std::size_t k) const { return bits[q * n_keys + k] != 0; }
  const std::uint8_t* row(std::size_t q) const { return bits.data() + q * n_keys; }

  /// Candidates in one query row.
  std::size_t count_row(std::size_t q) const {
    std::size_t n = 0;
    const std::uint8_t* r = row(q);
    for (std::size_t k = 0; k < n_keys; ++k) n += r[k];
    return n;
  }

  /// Total candidates across every query row.
  std::size_t count() const {
    std::size_t n = 0;
    for (const std::uint8_t b : bits) n += b;
    return n;
  }

  /// True when any key in [begin, end) is a candidate for query q.
  bool any_in_range(std::size_t q, std::size_t begin, std::size_t end) const {
    const std::uint8_t* r = row(q);
    for (std::size_t k = begin; k < end; ++k)
      if (r[k] != 0) return true;
    return false;
  }
};

}  // namespace nvcim::cim
