#pragma once

#include "nvcim/tensor/matrix.hpp"

namespace nvcim::cim {

/// Symmetric int quantization of a float matrix: q = round(x / scale) with
/// scale = max|x| / qmax. Values are kept in a float Matrix whose entries are
/// exact integers in [-qmax, qmax] — the storage format the crossbar
/// programs. Default 16-bit matches the paper's "precision of int16".
struct QuantizedMatrix {
  Matrix q;          ///< integer-valued entries
  float scale = 1.0f;
  int bits = 16;

  Matrix dequantize() const { return q * scale; }
};

QuantizedMatrix quantize_symmetric(const Matrix& x, int bits = 16);

/// Max representable magnitude for a symmetric b-bit integer.
inline long qmax_for_bits(int bits) { return (1L << (bits - 1)) - 1; }

}  // namespace nvcim::cim
