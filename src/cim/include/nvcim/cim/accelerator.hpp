#pragma once

#include <vector>

#include "nvcim/cim/crossbar.hpp"
#include "nvcim/cim/quant.hpp"

namespace nvcim::cim {

/// A bank of subarrays holding a key matrix for in-memory similarity search:
/// keys are stored column-wise (Kᵀ, shape len×n_keys) across a grid of
/// 384×128 tiles, and query(x) computes x·Kᵀ — one inner product per stored
/// key — entirely through the noisy crossbar MVMs.
class Accelerator {
 public:
  Accelerator(CrossbarConfig cfg, nvm::VariationModel var, ProgramOptions opts = {})
      : cfg_(cfg), var_(var), opts_(opts) {}

  /// Store `keys` (n_keys × len, one key per row). Quantizes to int16 with a
  /// single global scale and programs every tile. May be called again to
  /// restore with different contents.
  void store(const Matrix& keys, Rng& rng);

  /// Mutable (lifecycle) storage: allocate `capacity_cols` blank key columns
  /// (rounded up to whole subarrays) for keys of length `key_len`. Columns
  /// are then programmed individually with program_keys(): each key gets its
  /// OWN symmetric quantization scale and a noise stream derived from `base`
  /// and its (subarray, column) position — so a column's stored cells are a
  /// pure function of (key values, position, base stream), independent of
  /// every other column and of programming order. Programming the same keys
  /// at the same columns therefore yields bit-identical crossbars whether it
  /// happens at build time or one admit at a time, and (re)programming one
  /// column never perturbs the others.
  void init_mutable(std::size_t key_len, std::size_t capacity_cols, const Rng& base);

  /// Program `keys` (n × len, one key per row) into columns
  /// [col_begin, col_begin + n). Requires init_mutable() and enough
  /// capacity (grow first with ensure_capacity()). Reprogramming an
  /// occupied column overwrites it.
  void program_keys(const Matrix& keys, std::size_t col_begin);

  /// program_keys() restructured tile-major: all keys are quantized once,
  /// then every touched (subarray, tile) is visited exactly once and its
  /// whole column span programmed in one Crossbar::program_columns call —
  /// hoisting the per-key segment rebuild, the per-(key, subarray) stream
  /// construction and the per-call validation out of the inner loop. Each
  /// column still draws from the same (subarray, column)-derived stream, so
  /// the programmed cells are bit-identical to program_keys()
  /// (property-tested); this is the admission/build fast path.
  void program_keys_batched(const Matrix& keys, std::size_t col_begin);

  /// Grow capacity to at least `n_cols` key columns by appending blank
  /// column subarrays. Existing columns (cells, scales) are untouched.
  void ensure_capacity(std::size_t n_cols);

  bool mutable_mode() const { return mutable_mode_; }

  /// Inner products of the 1×len query against every stored key (1×n_keys),
  /// computed via crossbar MVM; result is dequantized back to float scale.
  Matrix query(const Matrix& x);

  /// Batched variant: B×len queries → B×n_keys scores in one pass over the
  /// tile grid (B queries per MVM activation instead of one). Row b equals
  /// query(x.row(b)) bit-for-bit; the win is wall-clock, not semantics.
  Matrix query_batch(const Matrix& x);

  /// Reusable buffers for query_batch_into(): the column slice of the query
  /// block fed to one row tile, one tile's partial result, and the masked
  /// path's per-column-tile candidate flags. Warm scratch makes the batched
  /// query path allocation-free.
  struct BatchScratch {
    Matrix xs;
    Matrix part;
    std::vector<std::uint8_t> col_tile_needed;
  };

  /// query_batch() written into caller storage with caller scratch —
  /// bit-identical results, zero steady-state allocations. `y` is resized to
  /// B×n_keys.
  ///
  /// With `candidates` (per-query bitmaps over the n_keys columns), only
  /// candidate columns are scored: a column tile none of the batch's queries
  /// needs is skipped outright, and inside a tile the crossbar kernel skips
  /// whole accumulator blocks per query tile (see
  /// Crossbar::matvec_batch_into). Candidate entries are bit-identical to
  /// the unmasked pass; non-candidate entries are exact 0 or the exact
  /// full-pass value (block-granular masking) — argmax over candidates only.
  void query_batch_into(const Matrix& x, Matrix& y, BatchScratch& scratch,
                        const CandidateSet* candidates = nullptr);

  /// Noise-free reference result for diagnostics.
  Matrix query_ideal(const Matrix& x) const;

  std::size_t n_keys() const { return n_keys_; }
  std::size_t key_len() const { return key_len_; }
  std::size_t n_tiles() const { return tiles_.size(); }

  OpCounters counters() const;
  void reset_counters();

  const CrossbarConfig& config() const { return cfg_; }
  const nvm::VariationModel& variation() const { return var_; }

  // -- Device-fault model ---------------------------------------------------
  // Faults are addressed at the column-tile subarray granularity — the unit
  // a physical array fails at. A global key column spans one column tile
  // across every row tile; injection and probing visit all its segments.

  /// Column-tile subarrays (the fault/scrub/quarantine addressing unit).
  std::size_t n_subarrays() const { return col_tiles_; }
  std::size_t cols_per_subarray() const { return cfg_.cols; }

  /// Pin `cells_per_segment` observable cells per (row tile, column)
  /// segment of global key column `col`. Returns total cells clamped.
  std::size_t inject_column_fault(std::size_t col, nvm::FaultKind kind,
                                  std::size_t cells_per_segment, std::uint64_t seed);

  /// Kill every row tile of column-tile subarray `subarray`: all its key
  /// columns stick at zero conductance and ignore further programming.
  void kill_subarray(std::size_t subarray);
  bool subarray_killed(std::size_t subarray) const;

  /// Retention drift across the whole bank (see Crossbar::advance_age).
  void set_drift_rate(double rate_per_tick);
  void advance_age(std::uint64_t ticks);

  /// Golden probe of global key column `col`, aggregated over row tiles.
  ColumnProbe probe_column(std::size_t col, double eps = 1e-6) const;

 private:
  /// Dequantize the integer-scale score block into `y`: one global scale in
  /// immutable mode, per-column scales (0 for unprogrammed columns) in
  /// mutable mode.
  void apply_scales(Matrix& y) const;

  CrossbarConfig cfg_;
  nvm::VariationModel var_;
  ProgramOptions opts_;
  Matrix keys_ref_;  ///< dequantized reference of what was stored
  float scale_ = 1.0f;
  std::size_t n_keys_ = 0;
  std::size_t key_len_ = 0;
  std::size_t row_tiles_ = 0;
  std::size_t col_tiles_ = 0;
  std::vector<Crossbar> tiles_;  ///< row-major [row_tile][col_tile]
  // Mutable (lifecycle) mode: per-key-column quantization scales and the
  // base noise stream that per-(subarray, column) programming streams are
  // split from. In this mode every tile spans the full subarray width and
  // n_keys_ is the capacity (score-row width), not the occupied count.
  bool mutable_mode_ = false;
  Rng base_rng_;
  std::vector<float> col_scale_;  ///< per column; 0 until first programmed
};

}  // namespace nvcim::cim
