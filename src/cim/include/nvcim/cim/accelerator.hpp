#pragma once

#include <vector>

#include "nvcim/cim/crossbar.hpp"
#include "nvcim/cim/quant.hpp"

namespace nvcim::cim {

/// A bank of subarrays holding a key matrix for in-memory similarity search:
/// keys are stored column-wise (Kᵀ, shape len×n_keys) across a grid of
/// 384×128 tiles, and query(x) computes x·Kᵀ — one inner product per stored
/// key — entirely through the noisy crossbar MVMs.
class Accelerator {
 public:
  Accelerator(CrossbarConfig cfg, nvm::VariationModel var, ProgramOptions opts = {})
      : cfg_(cfg), var_(var), opts_(opts) {}

  /// Store `keys` (n_keys × len, one key per row). Quantizes to int16 with a
  /// single global scale and programs every tile. May be called again to
  /// restore with different contents.
  void store(const Matrix& keys, Rng& rng);

  /// Inner products of the 1×len query against every stored key (1×n_keys),
  /// computed via crossbar MVM; result is dequantized back to float scale.
  Matrix query(const Matrix& x);

  /// Batched variant: B×len queries → B×n_keys scores in one pass over the
  /// tile grid (B queries per MVM activation instead of one). Row b equals
  /// query(x.row(b)) bit-for-bit; the win is wall-clock, not semantics.
  Matrix query_batch(const Matrix& x);

  /// Reusable buffers for query_batch_into(): the column slice of the query
  /// block fed to one row tile, one tile's partial result, and the masked
  /// path's per-column-tile candidate flags. Warm scratch makes the batched
  /// query path allocation-free.
  struct BatchScratch {
    Matrix xs;
    Matrix part;
    std::vector<std::uint8_t> col_tile_needed;
  };

  /// query_batch() written into caller storage with caller scratch —
  /// bit-identical results, zero steady-state allocations. `y` is resized to
  /// B×n_keys.
  ///
  /// With `candidates` (per-query bitmaps over the n_keys columns), only
  /// candidate columns are scored: a column tile none of the batch's queries
  /// needs is skipped outright, and inside a tile the crossbar kernel skips
  /// whole accumulator blocks per query tile (see
  /// Crossbar::matvec_batch_into). Candidate entries are bit-identical to
  /// the unmasked pass; non-candidate entries are exact 0 or the exact
  /// full-pass value (block-granular masking) — argmax over candidates only.
  void query_batch_into(const Matrix& x, Matrix& y, BatchScratch& scratch,
                        const CandidateSet* candidates = nullptr);

  /// Noise-free reference result for diagnostics.
  Matrix query_ideal(const Matrix& x) const;

  std::size_t n_keys() const { return n_keys_; }
  std::size_t key_len() const { return key_len_; }
  std::size_t n_tiles() const { return tiles_.size(); }

  OpCounters counters() const;
  void reset_counters();

  const CrossbarConfig& config() const { return cfg_; }
  const nvm::VariationModel& variation() const { return var_; }

 private:
  CrossbarConfig cfg_;
  nvm::VariationModel var_;
  ProgramOptions opts_;
  Matrix keys_ref_;  ///< dequantized reference of what was stored
  float scale_ = 1.0f;
  std::size_t n_keys_ = 0;
  std::size_t key_len_ = 0;
  std::size_t row_tiles_ = 0;
  std::size_t col_tiles_ = 0;
  std::vector<Crossbar> tiles_;  ///< row-major [row_tile][col_tile]
};

}  // namespace nvcim::cim
