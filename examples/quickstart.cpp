// Quickstart: the complete NVCiM-PT loop on one synthetic user.
//
// 1. Pretrain a tiny edge LLM on the task's mixed-domain corpus.
// 2. Fill the on-device data buffer from a domain-shifted user stream.
// 3. Training mode: representative selection -> noise-aware prompt tuning
//    -> autoencoder compression -> NVM storage (384x128 2-bit crossbars).
// 4. Inference mode: per query, retrieve the best OVT with the scaled search
//    algorithm (SSA) running on the crossbar model and answer with it.
//
// Compare against: no prompt at all, and a one4all prompt tuned on the whole
// buffer — the gap is the paper's core claim.

#include <cstdio>

#include "nvcim/core/framework.hpp"
#include "nvcim/llm/profiles.hpp"

using namespace nvcim;

int main() {
  // --- Task and backbone -----------------------------------------------
  data::LampTask task(data::lamp1_config());
  const llm::LlmProfile profile = llm::phi2_sim();
  std::printf("Pretraining %s on %s (vocab %zu)...\n", profile.name.c_str(),
              task.config().name.c_str(), task.vocab_size());
  llm::TinyLM model = llm::build_pretrained(profile, task.vocab_size(), /*max_seq=*/48,
                                            task.pretraining_corpus(2000, 1), /*seed=*/42);
  std::printf("  backbone parameters: %zu\n", model.parameter_count());

  // --- A user with a domain-shifted stream ------------------------------
  const data::UserData user = task.make_user(/*user_id=*/0, /*n_train=*/25, /*n_test=*/20);
  std::printf("User 0 latent domains:");
  for (std::size_t d : user.domains) std::printf(" %zu", d);
  std::printf("\n");

  // --- NVCiM-PT deployment ----------------------------------------------
  core::FrameworkConfig cfg;
  cfg.variation = {nvm::fefet3(), /*global_sigma=*/0.1};  // NVM-3 at paper default
  cfg.noise_aware = true;
  core::NvcimPtFramework framework(model, task, cfg);
  framework.initialize_autoencoder(/*n_samples=*/64);

  data::DataBuffer buffer(25);
  for (const data::Sample& s : user.train)
    if (buffer.push(s)) {
      std::printf("Buffer full (%zu samples) -> training mode\n", buffer.size());
      framework.train_from_buffer(buffer.samples());
      buffer.clear();
    }
  std::printf("Stored OVTs on NVM: %zu (k selected: %zu)\n", framework.n_stored_ovts(),
              framework.last_selected_k());

  // --- Baselines ---------------------------------------------------------
  std::vector<llm::TrainExample> buffer_examples;
  for (const data::Sample& s : user.train) buffer_examples.push_back(s.example);
  llm::TunerConfig one4all_cfg;
  one4all_cfg.steps = 120;
  const Matrix one4all = llm::SoftPromptTuner(one4all_cfg).train(model, buffer_examples);

  // --- Inference over the user's test queries ----------------------------
  Rng rng(7);
  eval::MeanAccumulator acc_none, acc_one4all, acc_nvcim;
  std::size_t retrieval_hits = 0;
  for (const data::Sample& q : user.test) {
    const std::size_t p_none = model.classify(q.input, task.label_ids());
    const std::size_t p_o4a = model.classify(q.input, task.label_ids(), &one4all);
    const std::size_t idx = framework.retrieve_index(q);
    const std::size_t p_nv = framework.classify(q);
    acc_none.add(p_none == static_cast<std::size_t>(q.label) ? 1.0 : 0.0);
    acc_one4all.add(p_o4a == static_cast<std::size_t>(q.label) ? 1.0 : 0.0);
    acc_nvcim.add(p_nv == static_cast<std::size_t>(q.label) ? 1.0 : 0.0);
    if (framework.ovt_domains()[idx] == q.domain) ++retrieval_hits;
  }
  (void)rng;

  std::printf("\nAccuracy over %zu queries:\n", user.test.size());
  std::printf("  no prompt        : %.3f\n", acc_none.mean());
  std::printf("  one4all prompt   : %.3f\n", acc_one4all.mean());
  std::printf("  NVCiM-PT (OVTs)  : %.3f\n", acc_nvcim.mean());
  std::printf("SSA retrieval domain-match rate: %.3f\n",
              static_cast<double>(retrieval_hits) / static_cast<double>(user.test.size()));
  return 0;
}
