// Device explorer: inspect how each Table-II NVM device distorts a stored
// OVT payload, how the mitigation baselines reduce that distortion, and
// what retrieval over each device's crossbars costs (NeuroSim-lite model).
//
// A hardware engineer's view of the stack: no LLM in the loop, just the
// storage/retrieval substrate.

#include <cstdio>

#include "nvcim/cim/accelerator.hpp"
#include "nvcim/cim/perf.hpp"
#include "nvcim/mitigation/methods.hpp"

using namespace nvcim;

int main() {
  Rng rng(42);
  // A representative OVT payload: 8 virtual tokens × 48-wide int16 code.
  const Matrix payload = Matrix::rand_uniform(8, 48, rng, -1.0f, 1.0f);
  const cim::CrossbarConfig xbar;  // 384×128, 2-bit cells, int16, 8b ADC

  std::printf("=== Payload round-trip error by device and mitigation (σ=0.1) ===\n");
  std::printf("%-8s %-7s", "device", "paper");
  const mitigation::Kind kinds[] = {mitigation::Kind::None, mitigation::Kind::SWV,
                                    mitigation::Kind::CxDNN, mitigation::Kind::CorrectNet};
  for (auto k : kinds) std::printf(" %12s", mitigation::make_mitigation(k)->name().c_str());
  std::printf("\n");

  for (const auto& dev : nvm::table2_devices()) {
    std::printf("%-8s %-7s", dev.name.c_str(), dev.paper_id.c_str());
    for (auto k : kinds) {
      auto method = mitigation::make_mitigation(k);
      // Average over several independent stores.
      double err = 0.0;
      const int reps = 5;
      for (int r = 0; r < reps; ++r) {
        Rng srng(100 + r);
        const Matrix restored =
            method->store_and_restore(payload, xbar, {dev, 0.1}, srng);
        err += (restored - payload).frobenius_norm() / payload.frobenius_norm();
      }
      std::printf(" %12.4f", err / reps);
    }
    std::printf("\n");
  }

  std::printf("\n=== In-memory search sanity: does the right key win? ===\n");
  std::printf("%-8s %10s %14s\n", "device", "hits/24", "ideal-score-gap");
  for (const auto& dev : nvm::table2_devices()) {
    cim::Accelerator acc(xbar, {dev, 0.1});
    // 12 random keys; queries are noisy copies of a chosen key.
    const Matrix keys = Matrix::randn(12, 384, rng);
    Rng store_rng(7);
    acc.store(keys, store_rng);
    int hits = 0;
    double gap = 0.0;
    Rng qr(9);
    for (int t = 0; t < 24; ++t) {
      const std::size_t target = qr.uniform_index(12);
      Matrix q = keys.row_slice(target, target + 1);
      for (std::size_t i = 0; i < q.size(); ++i)
        q.at_flat(i) += static_cast<float>(qr.normal(0.0, 0.2));
      const Matrix s = acc.query(q);
      std::size_t best = 0;
      for (std::size_t i = 1; i < 12; ++i)
        if (s(0, i) > s(0, best)) best = i;
      hits += best == target ? 1 : 0;
      const Matrix ideal = acc.query_ideal(q);
      gap += std::abs(s(0, target) - ideal(0, target)) /
             std::max(1e-6f, std::abs(ideal(0, target)));
    }
    std::printf("%-8s %7d/24 %14.4f\n", dev.name.c_str(), hits, gap / 24.0);
  }

  std::printf("\n=== Retrieval cost at scale (NeuroSim-lite, 22 nm) ===\n");
  std::printf("%-12s %12s %12s %12s\n", "#OVTs", "RRAM (us)", "FeFET (us)", "CPU (us)");
  for (std::size_t n : {1000u, 10000u, 100000u, 1000000u}) {
    const auto r = cim::cim_retrieval_cost(cim::rram_perf_22nm(), xbar, n, 384);
    const auto f = cim::cim_retrieval_cost(cim::fefet_perf_22nm(), xbar, n, 384);
    const auto c = cim::cpu_retrieval_cost(cim::jetson_orin_cpu(), n, 384);
    std::printf("%-12zu %12.1f %12.1f %12.1f\n", n, r.latency_ns / 1e3, f.latency_ns / 1e3,
                c.latency_ns / 1e3);
  }
  return 0;
}
