// Multi-tenant serving: the paper's single-user loop scaled out. Six users
// each train their own OVT library on-device (representative selection +
// prompt tuning), then hand their deployment to one shared ServingEngine:
// a single frozen backbone, OVT retrieval keys packed into two crossbar
// shards, worker threads answering a mixed stream of requests with
// two-phase batched in-memory search (k-means candidate routing + masked
// exact crossbar rerank) and an LRU cache of decoded prompts.
//
// The tenant lifecycle subsystem keeps the store mutable while serving: a
// seventh user signs up mid-stream (admit_user programs its key columns into
// the live crossbars and builds its router — nobody else's bits change), an
// early user is evicted (its slot is reclaimed once in-flight batches
// drain), and a rebalance cycle migrates slots if shard loads have skewed.
//
// All traffic enters through the async submission API: submit(Request,
// SubmitOptions) returns a RequestHandle (future + cancel), options carry
// per-request deadlines and priorities (the scheduler expires requests
// whose deadline passes before dispatch and pulls urgent ones ahead of the
// per-tenant round-robin), and admissions return an AdmissionHandle whose
// wait() joins the write-behind programming.
//
// Observability rides along: span tracing is on (request → batch → stage →
// shard → lifecycle-op spans land in multi_tenant_trace.json, loadable at
// ui.perfetto.dev or chrome://tracing), every latency feeds per-tenant
// histograms in the engine's metric registry (Prometheus text dumped
// below), and requests slower than slow_request_ms leave exemplars.

#include <cstdio>
#include <vector>

#include "nvcim/llm/profiles.hpp"
#include "nvcim/serve/engine.hpp"

using namespace nvcim;

int main() {
  data::LampTask task(data::lamp1_config());
  const llm::LlmProfile profile = llm::gemma2b_sim();
  std::printf("Multi-tenant serving on %s / %s\n", profile.name.c_str(),
              task.config().name.c_str());
  llm::TinyLM model = llm::build_pretrained(profile, task.vocab_size(), 48,
                                            task.pretraining_corpus(1500, 21), 77);

  // ---- Training mode, per user (the paper's Fig. 3 loop) ----
  const std::size_t n_users = 6;
  core::FrameworkConfig fcfg;
  fcfg.tuner.n_virtual_tokens = 8;
  fcfg.tuner.steps = 30;
  fcfg.autoencoder.steps = 120;
  fcfg.variation = {nvm::fefet3(), 0.1};

  serve::ServingConfig scfg;
  scfg.n_shards = 2;
  scfg.n_threads = 4;
  scfg.max_batch = 8;
  scfg.run_inference = true;  // classify with the shared frozen backbone
  scfg.variation = fcfg.variation;
  // Two-phase retrieval: probe every cluster (nprobe = 0) — bit-identical
  // winners, but other tenants' key columns are pruned from the crossbar
  // pass. Lower nprobe for more pruning at a sampled-recall cost. (In
  // lifecycle mode a full pass covers the whole provisioned capacity, so
  // the pruned fraction counts skipped free columns too; see bench_serve's
  // two-phase sweep for the effect at serving geometry.)
  scfg.two_phase.enabled = true;
  scfg.two_phase.nprobe = 0;
  // Online tenant lifecycle: live admission/eviction + shard rebalancing.
  // Write-behind admission: admit_user returns once the slot is staged and
  // the key columns program as worker aux tasks, overlapped with serving;
  // wait_admitted() joins before the tenant takes traffic.
  scfg.lifecycle.enabled = true;
  scfg.lifecycle.write_behind = true;
  // Per-request span tracing + slow-request exemplars (threshold in ms).
  scfg.tracing.enabled = true;
  scfg.slow_request_ms = 25.0;

  serve::ServingEngine engine(model, task, scfg);
  std::vector<data::UserData> users;
  for (std::size_t u = 0; u < n_users; ++u) {
    users.push_back(task.make_user(u, /*n_train=*/20, /*n_test=*/8));
    core::FrameworkConfig cfg_u = fcfg;
    cfg_u.seed = 1000 + u;
    core::NvcimPtFramework fw(model, task, cfg_u);
    fw.initialize_autoencoder(24);
    fw.train_from_buffer(users[u].train);
    std::printf("  user %zu: %zu OVTs trained\n", u, fw.n_stored_ovts());
    engine.add_deployment(u, fw.export_deployment());
  }

  // ---- Serving mode: one engine, mixed concurrent traffic ----
  engine.start();
  std::printf("engine: %zu users over %zu shards, %zu keys total\n", engine.n_users(),
              engine.store().n_shards(), engine.store().n_keys());

  std::vector<serve::RequestHandle> handles;
  std::vector<std::pair<std::size_t, const data::Sample*>> sent;
  for (std::size_t round = 0; round < 3; ++round)
    for (std::size_t u = 0; u < n_users; ++u)
      for (const data::Sample& q : users[u].test) {
        // The last round is latency-sensitive traffic: a (generous)
        // deadline and a priority bump. The scheduler sorts these ahead
        // within the tenant's queue, pulls them EDF-first when the
        // deadline closes in, and would expire them (DeadlineExceeded,
        // never touching the crossbar) rather than serve them late.
        serve::SubmitOptions opts;
        if (round == 2) {
          opts.deadline_ms = 500.0;
          opts.priority = 1;
        }
        handles.push_back(engine.submit(serve::Request{u, q}, opts));
        sent.emplace_back(u, &q);
      }

  // ---- Lifecycle, mid-serve: a new signup, an eviction, a rebalance ----
  // User 6 trains while the engine is busy, then joins the live store; user
  // 0 churns out. In-flight batches keep serving against their pinned
  // directory epoch throughout.
  serve::AdmissionHandle admission;
  {
    users.push_back(task.make_user(n_users, 20, 8));
    core::FrameworkConfig cfg_u = fcfg;
    cfg_u.seed = 1000 + n_users;
    core::NvcimPtFramework fw(model, task, cfg_u);
    fw.initialize_autoencoder(24);
    fw.train_from_buffer(users[n_users].train);
    admission = engine.admit(n_users, fw.export_deployment());  // returns staged
    std::printf("admitted user %zu mid-serve (%zu keys, router refreshed)\n", n_users,
                engine.deployment(n_users).n_ovts());
  }
  // Join the write-behind programming before routing traffic at the tenant
  // (Pending → Live; usually settled already by the in-flight waves).
  admission.wait();
  for (const data::Sample& q : users[n_users].test) {
    handles.push_back(engine.submit(serve::Request{n_users, q}));
    sent.emplace_back(n_users, &q);
  }
  engine.evict_user(0);
  std::printf("evicted user 0 (slot reclaimed after in-flight batches drain)\n");
  const std::size_t migrated = engine.rebalance();

  std::size_t correct = 0, labelled = 0, shed = 0, late = 0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    try {
      const serve::Response r = handles[i].get();
      if (r.deadline_missed) ++late;
      if (r.has_label) {
        ++labelled;
        if (r.label == static_cast<std::size_t>(sent[i].second->label)) ++correct;
      }
    } catch (const Error&) {
      // A request still queued (not yet in a batch) when its user was
      // evicted — or one whose deadline expired before dispatch — fails
      // with an error instead of serving stale (or late) state.
      ++shed;
    }
  }
  engine.stop();

  const serve::StatsSnapshot s = engine.stats();
  std::printf("\nserved %zu requests in %zu batches (avg batch %.1f)\n", s.requests, s.batches,
              s.avg_batch_size);
  std::printf("throughput  %8.0f req/s\n", s.throughput_rps);
  std::printf("latency     p50 %.2f ms   p95 %.2f ms   p99 %.2f ms\n", s.p50_latency_ms,
              s.p95_latency_ms, s.p99_latency_ms);
  std::printf("queue       wait p50 %.2f ms   p95 %.2f ms   depth HWM %zu\n",
              s.queue_wait_p50_ms, s.queue_wait_p95_ms, s.queue_depth_hwm);
  std::printf("deadlines   %zu expired before dispatch, %zu served past deadline\n",
              s.expired_requests, late);
  const double stage_total = s.encode_ms + s.retrieve_ms + s.decode_ms + s.classify_ms;
  std::printf("stages      encode %.1f ms (%.0f%%) | retrieve %.1f ms (%.0f%%) | "
              "decode %.1f ms (%.0f%%) | classify %.1f ms (%.0f%%)\n",
              s.encode_ms, 100.0 * s.encode_ms / stage_total, s.retrieve_ms,
              100.0 * s.retrieve_ms / stage_total, s.decode_ms, 100.0 * s.decode_ms / stage_total,
              s.classify_ms, 100.0 * s.classify_ms / stage_total);
  std::printf("prompt LRU  %.0f%% hit rate (%zu hits / %zu misses, %zu batched decode GEMMs)\n",
              100.0 * s.cache_hit_rate, s.cache_hits, s.cache_misses, s.batched_decode_gemms);
  if (s.candidates_possible > 0)
    std::printf("two-phase   %zu of %zu key scores pruned (%.0f%%), sampled recall@1 %.3f\n",
                s.candidates_possible - s.candidates_examined, s.candidates_possible,
                100.0 * s.pruned_fraction, s.sampled_recall_at1);
  std::printf("lifecycle   %zu admitted / %zu evicted / %zu migrated (%zu router refreshes, "
              "rebalance %.1f ms, %zu requests shed by eviction); store now holds %zu users, "
              "epoch %llu\n",
              s.users_admitted, s.users_evicted, migrated, s.router_refreshes, s.rebalance_ms,
              shed, engine.store().n_users(),
              static_cast<unsigned long long>(engine.store().epoch()));
  if (labelled > 0)
    std::printf("accuracy    %.1f%% over %zu classified requests\n",
                100.0 * static_cast<double>(correct) / static_cast<double>(labelled), labelled);

  // ---- Observability exports: Chrome trace, exemplars, Prometheus text ----
  if (engine.tracer().write_chrome_trace_file("multi_tenant_trace.json"))
    std::printf("\ntrace       %zu spans over %zu threads -> multi_tenant_trace.json "
                "(open in ui.perfetto.dev)\n",
                engine.tracer().events().size(), engine.tracer().n_threads());
  const std::vector<serve::SlowRequest> slow = engine.slow_requests();
  if (!slow.empty()) {
    std::printf("slow        %zu request(s) over %.0f ms, worst:\n", slow.size(),
                scfg.slow_request_ms);
    const serve::SlowRequest* worst = &slow.front();
    for (const serve::SlowRequest& sr : slow)
      if (sr.latency_ms > worst->latency_ms) worst = &sr;
    std::printf("            user %zu batch %llu: %.2f ms (queue %.2f ms; batch stages "
                "enc %.1f / ret %.1f / dec %.1f / cls %.1f ms)\n",
                worst->user_id, static_cast<unsigned long long>(worst->batch_id),
                worst->latency_ms, worst->queue_wait_ms, worst->encode_ms,
                worst->retrieve_ms, worst->decode_ms, worst->classify_ms);
  }
  // The per-tenant slice of the registry — the counters a tiering scheduler
  // would act on. The full dump is engine.metrics().prometheus_text().
  std::printf("\nper-tenant metrics (Prometheus excerpt):\n");
  const std::string prom = engine.metrics().prometheus_text();
  std::size_t pos = 0, shown = 0;
  while (shown < 12 && (pos = prom.find("nvcim_tenant_", pos)) != std::string::npos) {
    const std::size_t bol = prom.rfind('\n', pos) + 1;  // npos + 1 == 0 at start
    const std::size_t eol = prom.find('\n', pos);
    const std::string line = prom.substr(pos, eol - pos);
    if (prom[bol] != '#' &&  // skip HELP/TYPE comments
        line.find("_bucket") == std::string::npos) {  // skip histogram buckets
      std::printf("  %s\n", line.c_str());
      ++shown;
    }
    pos = eol;
  }
  return 0;
}
