// Noise resilience walk-through: the effect of the paper's Eq. 4 noise-aware
// training on one OVT, visualized as an accuracy-vs-σ curve.
//
// For one latent domain we train two OVTs (plain and noise-aware), push both
// through the autoencoder + NVM storage path at increasing device variation,
// and measure in-domain classification accuracy of the restored prompts.

#include <cstdio>

#include "nvcim/compress/autoencoder.hpp"
#include "nvcim/core/noise.hpp"
#include "nvcim/data/lamp.hpp"
#include "nvcim/eval/metrics.hpp"
#include "nvcim/llm/profiles.hpp"
#include "nvcim/llm/tuners.hpp"
#include "nvcim/mitigation/methods.hpp"

using namespace nvcim;

int main() {
  data::LampTask task(data::lamp2_config());
  llm::TinyLM model = llm::build_pretrained(llm::phi2_sim(), task.vocab_size(), 48,
                                            task.pretraining_corpus(2000, 5), 13);

  compress::AutoencoderConfig ae_cfg;
  ae_cfg.input_dim = model.config().d_model;
  ae_cfg.steps = 600;
  compress::Autoencoder ae(ae_cfg);
  Rng rng(3);
  {
    std::vector<Matrix> rows;
    for (int i = 0; i < 64; ++i)
      rows.push_back(model.embed(task.sample(rng.uniform_index(6), rng).input));
    ae.train(rows);
  }

  const std::size_t domain = 2;
  std::vector<llm::TrainExample> examples;
  std::vector<data::Sample> ss;
  for (int i = 0; i < 5; ++i) {
    ss.push_back(task.sample(domain, rng));
    examples.push_back(ss.back().example);
  }

  llm::TunerConfig plain_cfg;
  plain_cfg.steps = 60;
  plain_cfg.seed = 17;
  plain_cfg.init = resample_rows(model.embed(ss[0].input), plain_cfg.n_virtual_tokens);
  const Matrix ovt_plain = llm::SoftPromptTuner(plain_cfg).train(model, examples);

  std::printf("Accuracy of restored OVT prompts vs device variation (domain %zu)\n\n", domain);
  std::printf("%-8s %12s %12s %16s\n", "sigma", "plain OVT", "NT OVT", "payload rel err");

  mitigation::NoMitigation store;
  const cim::CrossbarConfig xbar;
  for (double sigma : {0.0, 0.1, 0.2, 0.35, 0.5, 0.7}) {
    // NT trained at the deployment σ (as the framework does).
    llm::TunerConfig nt_cfg = plain_cfg;
    core::NoiseBandConfig bands;
    bands.sigma = sigma;
    nt_cfg.perturb = core::make_noise_hook(bands);
    const Matrix ovt_nt = llm::SoftPromptTuner(nt_cfg).train(model, examples);

    eval::MeanAccumulator acc_plain, acc_nt, rel;
    for (int rep = 0; rep < 4; ++rep) {
      Rng srng(500 + rep);
      auto through = [&](const Matrix& ovt) {
        const Matrix code = ae.encode(resample_rows(ovt, plain_cfg.n_virtual_tokens));
        Rng r = srng.split(static_cast<std::uint64_t>(&ovt == &ovt_nt));
        return ae.decode(store.store_and_restore(code, xbar, {nvm::fefet3(), sigma}, r));
      };
      const Matrix p_plain = through(ovt_plain);
      const Matrix p_nt = through(ovt_nt);
      rel.add((p_plain - ae.decode(ae.encode(resample_rows(ovt_plain, 8)))).frobenius_norm() /
              ae.decode(ae.encode(resample_rows(ovt_plain, 8))).frobenius_norm());
      Rng qr(900 + rep);
      for (int i = 0; i < 25; ++i) {
        const data::Sample q = task.sample(domain, qr);
        acc_plain.add(model.classify(q.input, task.label_ids(), &p_plain) ==
                              static_cast<std::size_t>(q.label)
                          ? 1.0
                          : 0.0);
        acc_nt.add(model.classify(q.input, task.label_ids(), &p_nt) ==
                           static_cast<std::size_t>(q.label)
                       ? 1.0
                       : 0.0);
      }
    }
    std::printf("%-8.3f %12.3f %12.3f %16.3f\n", sigma, acc_plain.mean(), acc_nt.mean(),
                rel.mean());
  }
  std::printf("\nEq. 4's banded injection concentrates robustness where cells are\n"
              "noisiest (large-magnitude values on mid-range levels).\n");
  return 0;
}
