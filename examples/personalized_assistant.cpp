// Personalized assistant scenario (the paper's motivating workload): a user
// whose requests shift between latent task domains interacts with an edge
// LLM over several sessions. Every time the on-device buffer fills,
// NVCiM-PT enters training mode (RS -> NT -> SSA store); between fills it
// serves queries from the NVM-resident OVT library.
//
// The example contrasts a "sessions" timeline for NVCiM-PT against a
// one4all prompt that is re-tuned on each full buffer — showing how the
// one4all prompt chases the latest domain while the OVT library accumulates
// coverage.

#include <cstdio>

#include "nvcim/core/framework.hpp"
#include "nvcim/llm/profiles.hpp"
#include "nvcim/llm/tuners.hpp"

using namespace nvcim;

namespace {

double session_accuracy(llm::TinyLM& model, const data::LampTask& task,
                        core::NvcimPtFramework* fw, const Matrix* one4all,
                        const std::vector<data::Sample>& queries) {
  eval::MeanAccumulator acc;
  for (const data::Sample& q : queries) {
    std::size_t pred;
    if (fw != nullptr) {
      pred = fw->classify(q);
    } else {
      pred = model.classify(q.input, task.label_ids(), one4all);
    }
    acc.add(pred == static_cast<std::size_t>(q.label) ? 1.0 : 0.0);
  }
  return acc.mean();
}

}  // namespace

int main() {
  data::LampTask task(data::lamp2_config());  // multiclass tag prediction
  const llm::LlmProfile profile = llm::gemma2b_sim();
  std::printf("Personalized assistant on %s / %s\n", profile.name.c_str(),
              task.config().name.c_str());
  llm::TinyLM model = llm::build_pretrained(profile, task.vocab_size(), 48,
                                            task.pretraining_corpus(2000, 21), 77);

  // Three "sessions" of user activity: 20 interactions each, followed by a
  // burst of 15 live queries drawn from the domains seen so far.
  const data::UserData user = task.make_user(3, /*n_train=*/60, /*n_test=*/45);
  std::printf("User domains:");
  for (std::size_t d : user.domains) std::printf(" %zu", d);
  std::printf("\n\n");

  core::FrameworkConfig cfg;
  cfg.variation = {nvm::rram4(), 0.1};  // NVM-4 device at paper-default σ
  core::NvcimPtFramework framework(model, task, cfg);
  framework.initialize_autoencoder(64);

  data::DataBuffer buffer(20);
  Matrix one4all;  // retuned from scratch on each full buffer

  std::printf("%-10s %14s %14s %12s\n", "session", "NVCiM-PT acc", "one4all acc",
              "stored OVTs");
  for (int session = 0; session < 3; ++session) {
    // Accumulate this session's interactions.
    std::vector<data::Sample> session_train(
        user.train.begin() + session * 20, user.train.begin() + (session + 1) * 20);
    for (data::Sample& s : session_train)
      if (buffer.push(std::move(s))) {
        framework.train_from_buffer(buffer.samples());
        std::vector<llm::TrainExample> examples;
        for (const data::Sample& b : buffer.samples()) examples.push_back(b.example);
        llm::TunerConfig o4a;
        o4a.steps = 120;
        o4a.seed = 1000 + session;
        one4all = llm::SoftPromptTuner(o4a).train(model, examples);
        buffer.clear();
      }

    // Serve queries.
    const std::vector<data::Sample> queries(user.test.begin() + session * 15,
                                            user.test.begin() + (session + 1) * 15);
    const double acc_nvcim = session_accuracy(model, task, &framework, nullptr, queries);
    const double acc_o4a =
        session_accuracy(model, task, nullptr, one4all.empty() ? nullptr : &one4all, queries);
    std::printf("%-10d %14.3f %14.3f %12zu\n", session + 1, acc_nvcim, acc_o4a,
                framework.n_stored_ovts());
  }

  std::printf("\nThe OVT library grows with each buffer and keeps covering every\n"
              "domain the user revisits, while the one4all prompt tracks only\n"
              "the most recent buffer's mixture.\n");
  return 0;
}
