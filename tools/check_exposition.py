#!/usr/bin/env python3
"""Sanity-check the observability artifacts bench_serve exports.

File mode (legacy, two positional arguments):

  * ``metrics_serve.prom`` — Prometheus text format. Every sample line must
    parse, every series must belong to a ``# TYPE``-declared family, and
    histogram families must be internally consistent: cumulative ``_bucket``
    counts monotone in ``le``, the ``le="+Inf"`` bucket equal to ``_count``,
    and ``_sum``/``_count`` present per series. The scrubber's fault-
    tolerance families (``nvcim_scrub_*``, ``nvcim_columns_*``,
    ``nvcim_repair_latency_ms``, ...) must be declared even when idle —
    EngineStats registers them unconditionally so dashboards can always
    plot them from zero.
  * ``trace_serve.json`` — Chrome trace_event JSON. Must be valid JSON with
    a ``traceEvents`` array whose duration events carry name/cat/ts/dur,
    and must contain the span categories the engine promises (request,
    batch, stage, shard).

Live mode (``--url http://host:port`` or ``--url-file introspection_url.txt``):

  Scrapes the embedded introspection server of a running engine (bench_serve
  holds one open under ``NVCIM_SERVE_HTTP_HOLD_MS``): ``/metrics`` must pass
  the same Prometheus checks as the file, ``/healthz`` and ``/readyz`` must
  answer 200/503 with parseable JSON, and ``/metrics.json`` must be valid
  JSON. With ``--reference metrics_serve.prom`` the scrape is additionally
  compared against the in-process exposition the bench dumped: counter and
  histogram sample lines plus all ``# TYPE`` metadata must be byte-identical;
  gauge series must exist on both sides but their values are tolerated (the
  rolling-window ``*_1m`` gauges may recompute at a bucket boundary between
  the dump and the scrape).

Exit status: 0 = well-formed, 1 = malformed, 2 = usage/IO error.
"""

import json
import re
import sys
from collections import defaultdict

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>[^ ]+)$')
LABEL_RE = re.compile(r'^(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>(?:[^"\\]|\\.)*)"$')

# Families the engine promises to export unconditionally (registered at
# construction, so they appear — at zero — even when the subsystem is idle).
# The scrubber/self-repair set is listed explicitly: a refactor that drops
# one silently breaks every fault-tolerance dashboard and alert.
REQUIRED_FAMILIES = (
    "nvcim_scrub_passes_total",
    "nvcim_scrub_columns_probed_total",
    "nvcim_columns_degraded_total",
    "nvcim_columns_repaired_total",
    "nvcim_columns_stuck_total",
    "nvcim_scrub_migrations_total",
    "nvcim_subarrays_quarantined_total",
    "nvcim_degraded_responses_total",
    "nvcim_repair_latency_ms",
)


def parse_labels(text):
    if not text:
        return {}
    labels = {}
    for part in text.split(","):
        m = LABEL_RE.match(part.strip())
        if m is None:
            raise ValueError(f"bad label pair: {part!r}")
        labels[m.group("k")] = m.group("v")
    return labels


def check_prometheus_text(text):
    errors = []
    types = {}
    # (family, frozen non-le labels) -> list of (le, cumulative count)
    buckets = defaultdict(list)
    sums = set()
    counts = {}
    n_samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                errors.append(f"line {lineno}: malformed TYPE: {line!r}")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        try:
            value = float(m.group("value").replace("+Inf", "inf"))
        except ValueError:
            errors.append(f"line {lineno}: bad value in: {line!r}")
            continue
        try:
            labels = parse_labels(m.group("labels"))
        except ValueError as e:
            errors.append(f"line {lineno}: {e}")
            continue
        n_samples += 1
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if family not in types:
            errors.append(f"line {lineno}: series {name} has no # TYPE declaration")
            continue
        if types[family] == "histogram":
            key = (family, tuple(sorted((k, v) for k, v in labels.items()
                                        if k != "le")))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {lineno}: _bucket without le label")
                    continue
                le = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
                buckets[key].append((le, value, lineno))
            elif name.endswith("_sum"):
                sums.add(key)
            elif name.endswith("_count"):
                counts[key] = value

    for key, series in buckets.items():
        family = key[0]
        les = [le for le, _, _ in series]
        if les != sorted(les):
            errors.append(f"{family}: bucket le values not sorted")
        cum = [c for _, c, _ in series]
        if cum != sorted(cum):
            errors.append(f"{family}{dict(key[1])}: cumulative bucket counts not monotone")
        if not series or series[-1][0] != float("inf"):
            errors.append(f"{family}{dict(key[1])}: missing le=\"+Inf\" bucket")
        elif key not in counts:
            errors.append(f"{family}{dict(key[1])}: missing _count series")
        elif series[-1][1] != counts[key]:
            errors.append(f"{family}{dict(key[1])}: le=\"+Inf\" bucket "
                          f"{series[-1][1]} != _count {counts[key]}")
        if key not in sums:
            errors.append(f"{family}{dict(key[1])}: missing _sum series")

    if n_samples == 0:
        errors.append("no samples found — empty exposition?")
    if not buckets:
        errors.append("no histogram series found — EngineStats not exporting?")
    for family in REQUIRED_FAMILIES:
        if family not in types:
            errors.append(f"required family {family} missing — scrub/fault "
                          "metrics must be registered even when idle")
    return errors, n_samples


def check_prometheus(path):
    with open(path) as f:
        return check_prometheus_text(f.read())


def check_trace(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        return [f"invalid JSON: {e}"], 0
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"], 0
    cats = set()
    n_spans = 0
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            continue  # metadata (thread names)
        if ph != "X":
            errors.append(f"event {i}: unexpected ph {ph!r}")
            continue
        n_spans += 1
        for field in ("name", "cat", "ts", "dur", "pid", "tid"):
            if field not in e:
                errors.append(f"event {i}: missing {field}")
        if isinstance(e.get("dur"), (int, float)) and e["dur"] < 0:
            errors.append(f"event {i}: negative duration {e['dur']}")
        cats.add(e.get("cat"))
    for want in ("request", "batch", "stage", "shard"):
        if want not in cats:
            errors.append(f"no spans with cat {want!r} — engine span tree incomplete")
    if n_spans == 0:
        errors.append("no duration events in trace")
    return errors, n_spans


def split_exposition(text):
    """Classify an exposition into (metadata lines, value-stable sample lines,
    gauge series keys). Counters and histograms are value-stable across a
    quiesced hold; gauges (queue depth, rolling-window percentiles) may move."""
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) == 4:
                types[parts[2]] = parts[3]
    meta, stable, gauge_series = [], [], []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            meta.append(line)
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            stable.append(line)  # unparseable — force a diff
            continue
        name = m.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if types.get(family) == "gauge":
            gauge_series.append(f"{name}{{{m.group('labels') or ''}}}")
        else:
            stable.append(line)
    return meta, stable, gauge_series


def compare_expositions(scraped, reference):
    """Scraped /metrics vs. the in-process dump: metadata and counter/histogram
    sample lines byte-identical, gauge series present on both sides."""
    errors = []
    s_meta, s_stable, s_gauges = split_exposition(scraped)
    r_meta, r_stable, r_gauges = split_exposition(reference)
    if s_meta != r_meta:
        diff = set(s_meta).symmetric_difference(r_meta)
        errors.append(f"metadata (# HELP/# TYPE) differs: {sorted(diff)[:5]}")
    if s_stable != r_stable:
        diff = set(s_stable).symmetric_difference(r_stable)
        errors.append("counter/histogram samples differ between scrape and "
                      f"in-process exposition: {sorted(diff)[:8]}")
    if set(s_gauges) != set(r_gauges):
        diff = set(s_gauges).symmetric_difference(r_gauges)
        errors.append(f"gauge series sets differ: {sorted(diff)[:8]}")
    return errors


def fetch(base, target, timeout=10.0):
    from urllib.error import HTTPError
    from urllib.request import urlopen
    url = base.rstrip("/") + target
    try:
        with urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8", "replace")
    except HTTPError as e:  # 4xx/5xx still carry a body we want to inspect
        return e.code, e.read().decode("utf-8", "replace")


def check_live(base, reference_path):
    errors = []

    status, metrics_text = fetch(base, "/metrics")
    if status != 200:
        return [f"GET /metrics returned {status}"], 0
    prom_errors, n_samples = check_prometheus_text(metrics_text)
    errors.extend(f"/metrics: {e}" for e in prom_errors)

    if reference_path is not None:
        with open(reference_path) as f:
            errors.extend(compare_expositions(metrics_text, f.read()))

    for target, required_keys in (("/healthz", ("state", "ready", "slos")),
                                  ("/readyz", ("ready",))):
        status, body = fetch(base, target)
        if status not in (200, 503):
            errors.append(f"GET {target} returned {status} (want 200 or 503)")
            continue
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as e:
            errors.append(f"{target}: body is not valid JSON: {e}")
            continue
        for key in required_keys:
            if key not in doc:
                errors.append(f"{target}: JSON body missing {key!r}")
        print(f"  {target}: {status} state={doc.get('state', '?')}")

    status, body = fetch(base, "/metrics.json")
    if status != 200:
        errors.append(f"GET /metrics.json returned {status}")
    else:
        try:
            json.loads(body)
        except json.JSONDecodeError as e:
            errors.append(f"/metrics.json: invalid JSON: {e}")

    return errors, n_samples


def report(label, errors, n, unit):
    if errors:
        print(f"{label}: {len(errors)} problem(s):")
        for err in errors:
            print(f"  {err}")
        return True
    print(f"{label}: OK ({n} {unit})")
    return False


def main():
    import argparse
    ap = argparse.ArgumentParser(
        description="validate bench_serve observability artifacts or a live "
                    "introspection endpoint")
    ap.add_argument("prom", nargs="?", help="metrics_serve.prom (file mode)")
    ap.add_argument("trace", nargs="?", help="trace_serve.json (file mode)")
    ap.add_argument("--url", help="base URL of a live introspection server, "
                                  "e.g. http://127.0.0.1:9464")
    ap.add_argument("--url-file", help="file whose first line is the base URL "
                                       "(bench_serve writes introspection_url.txt)")
    ap.add_argument("--reference", help="in-process exposition dump to compare "
                                        "the live scrape against")
    args = ap.parse_args()

    if args.url or args.url_file:
        base = args.url
        if base is None:
            try:
                with open(args.url_file) as f:
                    base = f.readline().strip()
            except OSError as e:
                print(f"check_exposition: cannot read {args.url_file}: {e}",
                      file=sys.stderr)
                return 2
        if not base:
            print("check_exposition: empty URL", file=sys.stderr)
            return 2
        try:
            errors, n = check_live(base, args.reference)
        except OSError as e:
            print(f"check_exposition: cannot scrape {base}: {e}", file=sys.stderr)
            return 2
        return 1 if report(base, errors, n, "samples") else 0

    if args.prom is None or args.trace is None:
        ap.print_usage(sys.stderr)
        return 2
    failed = False
    try:
        errors, n = check_prometheus(args.prom)
    except OSError as e:
        print(f"check_exposition: cannot read {args.prom}: {e}", file=sys.stderr)
        return 2
    failed |= report(args.prom, errors, n, "samples")
    try:
        errors, n = check_trace(args.trace)
    except OSError as e:
        print(f"check_exposition: cannot read {args.trace}: {e}", file=sys.stderr)
        return 2
    failed |= report(args.trace, errors, n, "spans")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
