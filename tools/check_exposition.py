#!/usr/bin/env python3
"""Sanity-check the observability artifacts bench_serve exports:

  * ``metrics_serve.prom`` — Prometheus text format. Every sample line must
    parse, every series must belong to a ``# TYPE``-declared family, and
    histogram families must be internally consistent: cumulative ``_bucket``
    counts monotone in ``le``, the ``le="+Inf"`` bucket equal to ``_count``,
    and ``_sum``/``_count`` present per series. The scrubber's fault-
    tolerance families (``nvcim_scrub_*``, ``nvcim_columns_*``,
    ``nvcim_repair_latency_ms``, ...) must be declared even when idle —
    EngineStats registers them unconditionally so dashboards can always
    plot them from zero.
  * ``trace_serve.json`` — Chrome trace_event JSON. Must be valid JSON with
    a ``traceEvents`` array whose duration events carry name/cat/ts/dur,
    and must contain the span categories the engine promises (request,
    batch, stage, shard).

Exit status: 0 = both artifacts well-formed, 1 = malformed, 2 = usage error.
"""

import json
import re
import sys
from collections import defaultdict

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>[^ ]+)$')
LABEL_RE = re.compile(r'^(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>(?:[^"\\]|\\.)*)"$')

# Families the engine promises to export unconditionally (registered at
# construction, so they appear — at zero — even when the subsystem is idle).
# The scrubber/self-repair set is listed explicitly: a refactor that drops
# one silently breaks every fault-tolerance dashboard and alert.
REQUIRED_FAMILIES = (
    "nvcim_scrub_passes_total",
    "nvcim_scrub_columns_probed_total",
    "nvcim_columns_degraded_total",
    "nvcim_columns_repaired_total",
    "nvcim_columns_stuck_total",
    "nvcim_scrub_migrations_total",
    "nvcim_subarrays_quarantined_total",
    "nvcim_degraded_responses_total",
    "nvcim_repair_latency_ms",
)


def parse_labels(text):
    if not text:
        return {}
    labels = {}
    for part in text.split(","):
        m = LABEL_RE.match(part.strip())
        if m is None:
            raise ValueError(f"bad label pair: {part!r}")
        labels[m.group("k")] = m.group("v")
    return labels


def check_prometheus(path):
    errors = []
    types = {}
    # (family, frozen non-le labels) -> list of (le, cumulative count)
    buckets = defaultdict(list)
    sums = set()
    counts = {}
    n_samples = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                    errors.append(f"line {lineno}: malformed TYPE: {line!r}")
                else:
                    types[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if m is None:
                errors.append(f"line {lineno}: unparseable sample: {line!r}")
                continue
            name = m.group("name")
            try:
                value = float(m.group("value").replace("+Inf", "inf"))
            except ValueError:
                errors.append(f"line {lineno}: bad value in: {line!r}")
                continue
            try:
                labels = parse_labels(m.group("labels"))
            except ValueError as e:
                errors.append(f"line {lineno}: {e}")
                continue
            n_samples += 1
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in types:
                    family = name[: -len(suffix)]
                    break
            if family not in types:
                errors.append(f"line {lineno}: series {name} has no # TYPE declaration")
                continue
            if types[family] == "histogram":
                key = (family, tuple(sorted((k, v) for k, v in labels.items()
                                            if k != "le")))
                if name.endswith("_bucket"):
                    if "le" not in labels:
                        errors.append(f"line {lineno}: _bucket without le label")
                        continue
                    le = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
                    buckets[key].append((le, value, lineno))
                elif name.endswith("_sum"):
                    sums.add(key)
                elif name.endswith("_count"):
                    counts[key] = value

    for key, series in buckets.items():
        family = key[0]
        les = [le for le, _, _ in series]
        if les != sorted(les):
            errors.append(f"{family}: bucket le values not sorted")
        cum = [c for _, c, _ in series]
        if cum != sorted(cum):
            errors.append(f"{family}{dict(key[1])}: cumulative bucket counts not monotone")
        if not series or series[-1][0] != float("inf"):
            errors.append(f"{family}{dict(key[1])}: missing le=\"+Inf\" bucket")
        elif key not in counts:
            errors.append(f"{family}{dict(key[1])}: missing _count series")
        elif series[-1][1] != counts[key]:
            errors.append(f"{family}{dict(key[1])}: le=\"+Inf\" bucket "
                          f"{series[-1][1]} != _count {counts[key]}")
        if key not in sums:
            errors.append(f"{family}{dict(key[1])}: missing _sum series")

    if n_samples == 0:
        errors.append("no samples found — empty exposition?")
    if not buckets:
        errors.append("no histogram series found — EngineStats not exporting?")
    for family in REQUIRED_FAMILIES:
        if family not in types:
            errors.append(f"required family {family} missing — scrub/fault "
                          "metrics must be registered even when idle")
    return errors, n_samples


def check_trace(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        return [f"invalid JSON: {e}"], 0
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"], 0
    cats = set()
    n_spans = 0
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            continue  # metadata (thread names)
        if ph != "X":
            errors.append(f"event {i}: unexpected ph {ph!r}")
            continue
        n_spans += 1
        for field in ("name", "cat", "ts", "dur", "pid", "tid"):
            if field not in e:
                errors.append(f"event {i}: missing {field}")
        if isinstance(e.get("dur"), (int, float)) and e["dur"] < 0:
            errors.append(f"event {i}: negative duration {e['dur']}")
        cats.add(e.get("cat"))
    for want in ("request", "batch", "stage", "shard"):
        if want not in cats:
            errors.append(f"no spans with cat {want!r} — engine span tree incomplete")
    if n_spans == 0:
        errors.append("no duration events in trace")
    return errors, n_spans


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} metrics_serve.prom trace_serve.json",
              file=sys.stderr)
        return 2
    prom_path, trace_path = sys.argv[1], sys.argv[2]
    failed = False
    try:
        errors, n = check_prometheus(prom_path)
    except OSError as e:
        print(f"check_exposition: cannot read {prom_path}: {e}", file=sys.stderr)
        return 2
    if errors:
        failed = True
        print(f"{prom_path}: {len(errors)} problem(s):")
        for err in errors:
            print(f"  {err}")
    else:
        print(f"{prom_path}: OK ({n} samples)")
    try:
        errors, n = check_trace(trace_path)
    except OSError as e:
        print(f"check_exposition: cannot read {trace_path}: {e}", file=sys.stderr)
        return 2
    if errors:
        failed = True
        print(f"{trace_path}: {len(errors)} problem(s):")
        for err in errors:
            print(f"  {err}")
    else:
        print(f"{trace_path}: OK ({n} spans)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
