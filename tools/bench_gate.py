#!/usr/bin/env python3
"""Bench regression gate: compare a fresh BENCH_serve.json against the
committed one and fail on significant regressions.

Policy (chosen so the gate is meaningful across runner generations):

  * Throughput and speedup leaves (keys ending in ``_rps`` or containing
    ``speedup``) must not drop below ``committed * (1 - tolerance)``.
    These are the numbers each PR claims; a >25% drop means the claimed
    win evaporated.
  * Stage timings (``*_ms`` keys inside a ``stages*`` object) are compared
    as a *share of their scenario's stage total*, not as absolute
    milliseconds — absolute times track raw machine speed, shares track
    pipeline shape. A stage whose share grows by more than
    ``share_tolerance`` (absolute, e.g. 0.25 = 25 percentage points)
    indicates the stage regressed relative to its pipeline.
  * Retrieval-quality leaves: ``recall_at1`` (the headline sweep point the
    PR advertises) must stay >= ``recall_floor``, and ``default_recall_at1``
    (the out-of-the-box nprobe — the falsifiable signal, since the headline
    re-picks a compliant point each run) must stay >=
    ``default_recall_floor``. Absolute floors, not relative ones: a speedup
    bought below the floor is a regression regardless of the baseline.
  * ``faulted_recall_at1`` (the fault-storm scenario's recall@1 while a
    drift + stuck-column storm is live and unrepaired, against the same
    engine's pristine-pass indices) must stay >= ``faulted_recall_floor``:
    serving through device faults must degrade gracefully, never collapse.
    Same-engine ratio of match counts, hardware-portable, active under
    ``--ratios-only``. The companion ``fault_impact`` (p95 serving while
    the background scrubber repairs the storm / steady p95) is gated by
    the generic ``_impact`` ceiling rule below.
  * Impact-ratio leaves (keys ending in ``_impact``, e.g. the churn
    scenario's p95 ratio of serving-under-churn vs steady serving) are
    LOWER-is-better and hardware-portable (both sides of the ratio come
    from the same run): the fresh value must not grow above
    ``committed * (1 + tolerance)`` — a >25% growth means live
    migration/router refresh started hurting tail latency.
  * Tail-latency leaves (keys ending in ``p99_latency_ms``) are
    LOWER-is-better absolute milliseconds: gated like ``_rps`` but against
    a ``committed * (1 + tolerance)`` ceiling, and skipped under
    ``--ratios-only`` for the same reason (absolute time tracks raw
    machine speed).
  * ``obs_overhead_frac`` (the observability scenario's tracing-on vs
    tracing-off throughput loss) is gated against an absolute ceiling
    (``--obs-overhead-ceiling``). It is a same-run ratio, so it stays
    active under ``--ratios-only`` — tracing must stay near-free.
  * ``churn_slowdown`` (the churn scenario's steady_rps / churn_rps) is
    gated against an absolute ceiling (``--churn-slowdown-ceiling``).
    Same-run ratio, active under ``--ratios-only``. Write-behind batched
    admission programming is what keeps it bounded — the collapse was 6.3x
    on a multi-core host when admissions programmed key columns
    synchronously on the caller thread. The ceiling (5x) hard-fails any
    return to that regime while leaving headroom for single-core runners,
    where serving and programming share one core and the floor is the CPU
    ratio itself (~3.3-3.7x regardless of overlap).
  * ``fairness_impact`` (the SLO scenario's cold-tenant p99 under DRR with
    a saturating hot tenant, divided by the same probe's uncontended p99)
    is gated against an absolute ceiling (``--fairness-ceiling``): the
    scheduler's fairness guarantee is that a hot tenant cannot push a cold
    tenant's tail past 2x its uncontended tail. Same-run ratio, active
    under ``--ratios-only``. The FIFO baseline ratio is recorded alongside
    for contrast but not gated — FIFO is the A/B control, not the product.
  * ``deadline_miss_frac`` (the SLO scenario's expired + late fraction of
    deadline-carrying requests under DRR, with deadlines sized to be
    comfortably meetable) is gated against an absolute ceiling
    (``--deadline-miss-ceiling``). Same-run ratio, active under
    ``--ratios-only`` — nonzero drift means deadline-aware dequeue rotted.
  * All other leaves (absolute microbench ms, request counts, sweep-point
    recalls, ...) are informational only.

Exit status: 0 = no regression, 1 = regression, 2 = usage/structure error.
"""

import argparse
import json
import sys


def walk(node, path=()):
    """Yield (path, value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from walk(value, path + (key,))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk(value, path + (str(i),))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)


def lookup(node, path):
    for key in path:
        if isinstance(node, list):
            idx = int(key)
            if idx >= len(node):
                return None
            node = node[idx]
        elif isinstance(node, dict):
            if key not in node:
                return None
            node = node[key]
        else:
            return None
    return node if isinstance(node, (int, float)) and not isinstance(node, bool) else None


def stage_share(doc, path):
    """Share of this ``_ms`` leaf within its parent stages object, or None."""
    parent = doc
    for key in path[:-1]:
        parent = parent[int(key)] if isinstance(parent, list) else parent[key]
    if not isinstance(parent, dict):
        return None
    siblings = {k: v for k, v in parent.items()
                if k.endswith("_ms") and isinstance(v, (int, float))}
    total = sum(siblings.values())
    return None if total <= 0 else siblings[path[-1]] / total


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("committed", help="committed BENCH_serve.json (the baseline)")
    ap.add_argument("fresh", help="freshly produced BENCH_serve.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="relative drop allowed for rps/speedup leaves (default 0.25)")
    ap.add_argument("--share-tolerance", type=float, default=0.25,
                    help="absolute stage-share growth allowed (default 0.25)")
    ap.add_argument("--recall-floor", type=float, default=0.95,
                    help="absolute floor for the headline recall_at1 leaf in the "
                         "fresh run (default 0.95)")
    ap.add_argument("--default-recall-floor", type=float, default=0.90,
                    help="absolute floor for default_recall_at1 — the shipped "
                         "default nprobe's recall. Looser than the headline floor: "
                         "the default point sits near 0.95 and floats run to run, "
                         "but a catastrophic routing regression (e.g. 0.5) must "
                         "fail (default 0.90)")
    ap.add_argument("--faulted-recall-floor", type=float, default=0.90,
                    help="absolute floor for faulted_recall_at1 — recall@1 "
                         "while an unrepaired drift + stuck-column storm is "
                         "live. Faults corrupt a bounded set of tenant "
                         "columns, so serving must degrade gracefully "
                         "(default 0.90)")
    ap.add_argument("--obs-overhead-ceiling", type=float, default=0.03,
                    help="absolute ceiling for obs_overhead_frac — the fraction "
                         "of throughput tracing may cost (default 0.03; the "
                         "tracer's design target is ~2%%, the ceiling leaves "
                         "one point of measurement noise)")
    ap.add_argument("--churn-slowdown-ceiling", type=float, default=5.0,
                    help="absolute ceiling for churn_slowdown — how many times "
                         "slower serving may get under admit/evict churn "
                         "(default 5.0; synchronous programming collapsed to "
                         "6.3x on a multi-core host, and single-core runners "
                         "floor at ~3.3-3.7x — the CPU ratio of programming "
                         "to serving — even with write-behind overlap)")
    ap.add_argument("--fairness-ceiling", type=float, default=2.0,
                    help="absolute ceiling for fairness_impact — cold-tenant "
                         "p99 under DRR with a saturating hot tenant, as a "
                         "multiple of its uncontended p99 (default 2.0: the "
                         "scheduler's shipped fairness guarantee)")
    ap.add_argument("--deadline-miss-ceiling", type=float, default=0.05,
                    help="absolute ceiling for deadline_miss_frac — the "
                         "expired + late fraction of deadline-carrying "
                         "requests in the SLO scenario, whose deadlines are "
                         "sized to be comfortably meetable (default 0.05)")
    ap.add_argument("--ratios-only", action="store_true",
                    help="gate only hardware-portable metrics (speedup ratios and "
                         "stage shares), skipping absolute *_rps leaves — use when "
                         "the baseline was produced on different hardware than the "
                         "fresh run (e.g. heterogeneous CI runners)")
    args = ap.parse_args()

    try:
        with open(args.committed) as f:
            committed = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot load inputs: {e}", file=sys.stderr)
        return 2

    failures = []
    checked = 0
    for path, base in walk(committed):
        key = path[-1]
        dotted = ".".join(path)
        value = lookup(fresh, path)
        if value is None:
            failures.append(f"MISSING  {dotted}: present in committed baseline, "
                            "absent from fresh run")
            continue
        if key in ("recall_at1", "default_recall_at1"):
            # Absolute quality floors, hardware-portable by construction.
            floor = args.recall_floor if key == "recall_at1" else args.default_recall_floor
            checked += 1
            status = "ok" if value >= floor else "REGRESSED"
            print(f"{status:>9}  {dotted}: {base:.4f} -> {value:.4f} "
                  f"(floor {floor:.2f})")
            if value < floor:
                failures.append(f"REGRESSED  {dotted}: recall {value:.4f} below "
                                f"floor {floor:.2f}")
        elif key == "faulted_recall_at1":
            # Absolute quality floor under a live (unrepaired) fault storm:
            # same-engine match ratio, hardware-portable, active under
            # --ratios-only.
            checked += 1
            floor = args.faulted_recall_floor
            status = "ok" if value >= floor else "REGRESSED"
            print(f"{status:>9}  {dotted}: {base:.4f} -> {value:.4f} "
                  f"(floor {floor:.2f})")
            if value < floor:
                failures.append(f"REGRESSED  {dotted}: recall {value:.4f} under "
                                f"fault storm below floor {floor:.2f} — faults "
                                "are no longer contained to their columns")
        elif key == "fairness_impact":
            # Absolute ceiling on a same-run ratio (cold-tenant p99 under DRR
            # vs uncontended): hardware-portable, active under --ratios-only.
            # Checked before the generic _impact rule — the guarantee is
            # absolute (2x), not relative to whatever the baseline drifted to.
            checked += 1
            ceiling = args.fairness_ceiling
            status = "ok" if value <= ceiling else "REGRESSED"
            print(f"{status:>9}  {dotted}: {base:.3f} -> {value:.3f} "
                  f"(ceiling {ceiling:.2f})")
            if value > ceiling:
                failures.append(f"REGRESSED  {dotted}: cold-tenant p99 under a "
                                f"saturating hot tenant is {value:.2f}x its "
                                f"uncontended p99 (ceiling {ceiling:.2f}x) — "
                                "DRR fair queuing is not protecting cold tenants")
        elif key == "deadline_miss_frac":
            # Absolute ceiling on a same-run fraction: hardware-portable,
            # active under --ratios-only.
            checked += 1
            ceiling = args.deadline_miss_ceiling
            status = "ok" if value <= ceiling else "REGRESSED"
            print(f"{status:>9}  {dotted}: {base:.4f} -> {value:.4f} "
                  f"(ceiling {ceiling:.2f})")
            if value > ceiling:
                failures.append(f"REGRESSED  {dotted}: {value:.1%} of "
                                f"comfortably-meetable deadlines missed "
                                f"(ceiling {ceiling:.1%}) — deadline-aware "
                                "dequeue is broken")
        elif key.endswith("_impact"):
            # Lower-is-better ratio (e.g. churn p95 / steady p95): gate the
            # growth. Ratios are hardware-portable, so this stays active
            # under --ratios-only.
            checked += 1
            ceiling = base * (1.0 + args.tolerance)
            status = "ok" if value <= ceiling else "REGRESSED"
            print(f"{status:>9}  {dotted}: {base:.3f} -> {value:.3f} "
                  f"(ceiling {ceiling:.3f})")
            if value > ceiling:
                failures.append(f"REGRESSED  {dotted}: impact ratio {base:.3f} -> "
                                f"{value:.3f} (allowed ceiling {ceiling:.3f})")
        elif key == "obs_overhead_frac":
            # Absolute ceiling on a same-run ratio: hardware-portable, so it
            # stays active under --ratios-only.
            checked += 1
            ceiling = args.obs_overhead_ceiling
            status = "ok" if value <= ceiling else "REGRESSED"
            print(f"{status:>9}  {dotted}: {base:.4f} -> {value:.4f} "
                  f"(ceiling {ceiling:.2f})")
            if value > ceiling:
                failures.append(f"REGRESSED  {dotted}: tracing overhead "
                                f"{value:.1%} above ceiling {ceiling:.1%}")
        elif key == "churn_slowdown":
            # Absolute ceiling on a same-run throughput ratio (steady_rps /
            # churn_rps): hardware-portable, so it stays active under
            # --ratios-only.
            checked += 1
            ceiling = args.churn_slowdown_ceiling
            status = "ok" if value <= ceiling else "REGRESSED"
            print(f"{status:>9}  {dotted}: {base:.3f} -> {value:.3f} "
                  f"(ceiling {ceiling:.2f})")
            if value > ceiling:
                failures.append(f"REGRESSED  {dotted}: churn slows serving "
                                f"{value:.2f}x (ceiling {ceiling:.2f}x) — the "
                                "write-behind admission overlap is broken")
        elif key.endswith("p99_latency_ms"):
            # Lower-is-better absolute tail latency; machine-speed-bound, so
            # skipped when the baseline came from different hardware.
            if args.ratios_only:
                continue
            checked += 1
            ceiling = base * (1.0 + args.tolerance)
            status = "ok" if value <= ceiling else "REGRESSED"
            print(f"{status:>9}  {dotted}: {base:.3f} -> {value:.3f} "
                  f"(ceiling {ceiling:.3f})")
            if value > ceiling:
                failures.append(f"REGRESSED  {dotted}: p99 {base:.3f} -> "
                                f"{value:.3f} ms (allowed ceiling {ceiling:.3f})")
        elif key.endswith("_rps") or "speedup" in key:
            if args.ratios_only and key.endswith("_rps"):
                continue
            checked += 1
            floor = base * (1.0 - args.tolerance)
            status = "ok" if value >= floor else "REGRESSED"
            print(f"{status:>9}  {dotted}: {base:.2f} -> {value:.2f} "
                  f"(floor {floor:.2f})")
            if value < floor:
                failures.append(f"REGRESSED  {dotted}: {base:.2f} -> {value:.2f} "
                                f"(allowed floor {floor:.2f})")
        elif key.endswith("_ms") and any("stages" in p for p in path):
            base_share = stage_share(committed, path)
            new_share = stage_share(fresh, path)
            if base_share is None or new_share is None:
                continue
            checked += 1
            ceiling = base_share + args.share_tolerance
            status = "ok" if new_share <= ceiling else "REGRESSED"
            print(f"{status:>9}  {dotted} share: {base_share:.1%} -> {new_share:.1%} "
                  f"(ceiling {ceiling:.1%})")
            if new_share > ceiling:
                failures.append(f"REGRESSED  {dotted}: stage share {base_share:.1%} "
                                f"-> {new_share:.1%} (ceiling {ceiling:.1%})")

    if checked == 0:
        print("bench_gate: no gated metrics found — baseline malformed?", file=sys.stderr)
        return 2
    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s):")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print(f"\nbench_gate: {checked} metrics within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
