#include <gtest/gtest.h>

#include "nvcim/llm/model.hpp"
#include "nvcim/llm/pretrain.hpp"
#include "nvcim/llm/profiles.hpp"
#include "nvcim/llm/tokenizer.hpp"

namespace nvcim::llm {
namespace {

TinyLmConfig tiny_config() {
  TinyLmConfig cfg;
  cfg.vocab = 20;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.ffn_hidden = 32;
  cfg.max_seq = 32;
  cfg.prompt_slots = 8;
  return cfg;
}

TEST(Tokenizer, SpecialTokensStable) {
  Tokenizer tok;
  EXPECT_EQ(tok.pad_id(), 0);
  EXPECT_EQ(tok.unk_id(), 1);
  EXPECT_EQ(tok.bos_id(), 2);
  EXPECT_EQ(tok.eos_id(), 3);
  EXPECT_EQ(tok.sep_id(), 4);
  EXPECT_EQ(tok.vocab_size(), 5u);
}

TEST(Tokenizer, GrowsAndRoundtrips) {
  Tokenizer tok;
  const auto ids = tok.encode("hello world hello");
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_EQ(tok.decode(ids), "hello world hello");
}

TEST(Tokenizer, FreezeStopsGrowth) {
  Tokenizer tok;
  tok.id_of("known");
  tok.freeze();
  EXPECT_EQ(tok.id_of("novel"), tok.unk_id());
  EXPECT_NE(tok.lookup("known"), tok.unk_id());
}

TEST(Tokenizer, BadIdThrows) {
  Tokenizer tok;
  EXPECT_THROW(tok.word_of(99), Error);
  EXPECT_THROW(tok.word_of(-1), Error);
}

TEST(MakeExample, MasksInputPredictsCompletion) {
  const TrainExample ex = make_example({2, 5, 6}, {7, 3});
  ASSERT_EQ(ex.tokens.size(), 5u);
  ASSERT_EQ(ex.targets.size(), 5u);
  EXPECT_EQ(ex.targets[0], -1);
  EXPECT_EQ(ex.targets[1], -1);
  EXPECT_EQ(ex.targets[2], 7);  // last input predicts first completion token
  EXPECT_EQ(ex.targets[3], 3);
  EXPECT_EQ(ex.targets[4], -1);
}

TEST(MakeExample, CarriesPrefix) {
  const TrainExample ex = make_example({2, 5}, {3}, {9, 9});
  EXPECT_EQ(ex.prefix_tokens.size(), 2u);
  EXPECT_EQ(ex.prefix_tokens[0], 9);
}

TEST(TinyLM, LogitsShape) {
  TinyLM model(tiny_config(), 1);
  const Matrix z = model.logits_inference({2, 5, 6, 4});
  EXPECT_EQ(z.rows(), 4u);
  EXPECT_EQ(z.cols(), 20u);
  EXPECT_TRUE(z.all_finite());
}

TEST(TinyLM, SoftPromptRowsAreSlicedOff) {
  TinyLM model(tiny_config(), 1);
  Rng rng(2);
  const Matrix prompt = Matrix::randn(4, 16, rng);
  const Matrix z = model.logits_inference({2, 5, 6}, &prompt);
  EXPECT_EQ(z.rows(), 3u);
}

TEST(TinyLM, SoftPromptChangesLogits) {
  TinyLM model(tiny_config(), 1);
  Rng rng(3);
  const Matrix prompt = Matrix::randn(4, 16, rng);
  const Matrix z0 = model.logits_inference({2, 5, 6});
  const Matrix z1 = model.logits_inference({2, 5, 6}, &prompt);
  EXPECT_FALSE(allclose(z0, z1, 1e-5f, 1e-5f));
}

TEST(TinyLM, PromptLongerThanSlotsThrows) {
  TinyLM model(tiny_config(), 1);
  Rng rng(4);
  const Matrix prompt = Matrix::randn(9, 16, rng);  // prompt_slots = 8
  EXPECT_THROW(model.logits_inference({2, 5}, &prompt), Error);
}

TEST(TinyLM, TokenPositionsIndependentOfPromptLength) {
  // Same tokens with different prompt lengths must produce *different*
  // logits only through attention to the prompt, not positional shift; with
  // an all-zero prompt whose rows are zero vectors the positional embedding
  // of tokens stays fixed.
  TinyLM model(tiny_config(), 1);
  const Matrix z_no = model.logits_inference({2, 5, 6});
  EXPECT_EQ(z_no.rows(), 3u);
  // Sanity: max_seq bound respected.
  std::vector<int> long_seq(20, 5);
  EXPECT_NO_THROW(model.logits_inference(long_seq));
  std::vector<int> too_long(30, 5);
  EXPECT_THROW(model.logits_inference(too_long), Error);
}

TEST(TinyLM, KvPrefixPerLayerValidation) {
  TinyLM model(tiny_config(), 1);
  Rng rng(5);
  KvPrefixValues kv(2);  // model has 1 layer
  kv[0] = {Matrix::randn(2, 16, rng), Matrix::randn(2, 16, rng)};
  kv[1] = {Matrix::randn(2, 16, rng), Matrix::randn(2, 16, rng)};
  EXPECT_THROW(model.logits_inference({2, 5}, nullptr, &kv), Error);
}

TEST(TinyLM, ClassifyPicksHighestLabelLogit) {
  TinyLM model(tiny_config(), 1);
  const Matrix z = model.logits_inference({2, 5, 6});
  const std::size_t last = z.rows() - 1;
  const std::vector<int> labels{7, 8, 9};
  const std::size_t pick = model.classify({2, 5, 6}, labels);
  for (std::size_t i = 0; i < labels.size(); ++i)
    EXPECT_LE(z(last, static_cast<std::size_t>(labels[i])),
              z(last, static_cast<std::size_t>(labels[pick])) + 1e-6f);
}

TEST(TinyLM, GreedyGenerationDeterministic) {
  TinyLM model(tiny_config(), 1);
  Rng r1(1), r2(2);
  const auto a = model.generate({2, 5}, 5, 0.0f, r1, 3);
  const auto b = model.generate({2, 5}, 5, 0.0f, r2, 3);
  EXPECT_EQ(a, b);
  EXPECT_LE(a.size(), 5u);
}

TEST(TinyLM, GenerationStopsAtEos) {
  TinyLM model(tiny_config(), 1);
  Rng rng(1);
  const auto out = model.generate({2, 5}, 8, 0.0f, rng, 3);
  for (int t : out) EXPECT_NE(t, 3);
}

TEST(TinyLM, EmbedShapes) {
  TinyLM model(tiny_config(), 1);
  const Matrix e = model.embed({2, 5, 6});
  EXPECT_EQ(e.rows(), 3u);
  EXPECT_EQ(e.cols(), 16u);
  const Matrix m = model.embed_mean({2, 5, 6});
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_NEAR(m(0, 0), (e(0, 0) + e(1, 0) + e(2, 0)) / 3.0f, 1e-5f);
}

TEST(TinyLM, ParamsCoverEverything) {
  TinyLM model(tiny_config(), 1);
  nn::ParamSet ps = model.params();
  // tok/pos emb + 1 block (16) + final ln (2) + head (2) = 22
  EXPECT_EQ(ps.all().size(), 22u);
  EXPECT_EQ(model.parameter_count(), ps.parameter_count());
}

TEST(TinyLM, PrefixTokensActAsContext) {
  TinyLM model(tiny_config(), 1);
  TrainExample ex = make_example({2, 5, 6}, {7}, {9});
  autograd::Tape tape;
  nn::Binder bind(tape, true);
  EXPECT_NO_THROW(model.loss(bind, ex));
}

TEST(Pretrain, LossDecreases) {
  TinyLM model(tiny_config(), 7);
  // Trivial corpus: token 5 is always followed by token 6.
  std::vector<TrainExample> corpus;
  for (int i = 0; i < 8; ++i) corpus.push_back(make_example({2, 5}, {6, 3}));
  const float before = evaluate_loss(model, corpus);
  PretrainConfig cfg;
  cfg.steps = 80;
  cfg.batch_size = 4;
  pretrain(model, corpus, cfg);
  const float after = evaluate_loss(model, corpus);
  EXPECT_LT(after, before * 0.5f);
}

TEST(Quantize, ReducesDistinctValuesAndKeepsScale) {
  TinyLM model(tiny_config(), 7);
  const Matrix before = model.token_embedding().value;
  quantize_weights(model, 4);
  const Matrix& after = model.token_embedding().value;
  EXPECT_NEAR(after.max_abs(), before.max_abs(), before.max_abs() * 0.2f);
  // 4-bit symmetric: at most 15 distinct magnitudes around zero.
  std::set<float> distinct;
  for (std::size_t i = 0; i < after.size(); ++i) distinct.insert(after.at_flat(i));
  EXPECT_LE(distinct.size(), 16u);
}

TEST(Quantize, RejectsBadBits) {
  TinyLM model(tiny_config(), 7);
  EXPECT_THROW(quantize_weights(model, 1), Error);
  EXPECT_THROW(quantize_weights(model, 17), Error);
}

TEST(Profiles, ThreeDistinctEdgeModels) {
  const auto profiles = edge_llm_profiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "Gemma-2B(sim)");
  EXPECT_EQ(profiles[1].name, "Mistral-7B-GPTQ(sim)");
  EXPECT_EQ(profiles[2].name, "Phi-2(sim)");
  EXPECT_EQ(profiles[1].quant_bits, 4);
  // Widths must differ so cross-model trends are meaningful.
  EXPECT_NE(profiles[0].d_model, profiles[1].d_model);
  EXPECT_NE(profiles[1].d_model, profiles[2].d_model);
}

}  // namespace
}  // namespace nvcim::llm
