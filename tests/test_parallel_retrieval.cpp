// Fused crossbar slice kernel + parallel sharded retrieval (PR 3).
//
//  - bit-identity of the fused interleaved kernel against the retained
//    legacy two-plane reference kernel, across noise/ADC/differential
//    configurations, including the zero-slice-skip fast path
//  - tolerance validation of the opt-in FastAccumulate (float32) path
//  - allocation-free scratch variants (query_batch_into, scores_batch_into)
//    against their allocating counterparts
//  - determinism of the parallel per-shard retrieve fan-out against the
//    serial shard loop under a seeded engine, plus per-shard stats.

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <memory>
#include <vector>

#include "nvcim/serve/engine.hpp"

namespace nvcim {
namespace {

// ---------------------------------------------------------------------------
// Fused slice kernel vs the legacy reference kernel.
// ---------------------------------------------------------------------------

Matrix random_int_matrix(std::size_t rows, std::size_t cols, int lo, int hi, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.at_flat(i) =
        static_cast<float>(lo + static_cast<int>(rng.uniform_index(
                                    static_cast<std::size_t>(hi - lo + 1))));
  return m;
}

/// Program two crossbars (fused vs reference kernel) from identical RNG
/// streams and require exactly equal MVM results and counters.
void expect_fused_matches_reference(cim::CrossbarConfig cfg, double sigma, int value_range,
                                    std::uint64_t seed) {
  cim::CrossbarConfig ref_cfg = cfg;
  ref_cfg.reference_kernel = true;
  cim::Crossbar fused(cfg), reference(ref_cfg);

  Rng wr(seed);
  const Matrix w = random_int_matrix(cfg.rows, cfg.cols, cfg.differential ? -value_range : 0,
                                     value_range, wr);
  Rng pr1(seed + 1), pr2(seed + 1);
  fused.program(w, {nvm::fefet3(), sigma}, pr1);
  reference.program(w, {nvm::fefet3(), sigma}, pr2);

  Rng qr(seed + 2);
  const Matrix x = Matrix::randn(7, cfg.rows, qr);
  const Matrix yf = fused.matvec_batch(x);
  const Matrix yr = reference.matvec_batch(x);
  ASSERT_TRUE(yf.same_shape(yr));
  for (std::size_t i = 0; i < yf.size(); ++i)
    ASSERT_EQ(yf.at_flat(i), yr.at_flat(i)) << "flat index " << i;

  // The serial path agrees with itself across layouts too.
  const Matrix sf = fused.matvec(x.row(0));
  const Matrix sr = reference.matvec(x.row(0));
  for (std::size_t i = 0; i < sf.size(); ++i)
    ASSERT_EQ(sf.at_flat(i), sr.at_flat(i)) << "serial flat index " << i;

  // Counters advance identically: zero-slice skipping is a simulation
  // shortcut, not a change to the logical op schedule.
  EXPECT_EQ(fused.counters().subarray_activations, reference.counters().subarray_activations);
  EXPECT_EQ(fused.counters().adc_conversions, reference.counters().adc_conversions);
}

TEST(FusedKernel, BitIdenticalToReferenceUnderNoiseAndAdc) {
  cim::CrossbarConfig cfg;
  cfg.rows = 48;
  cfg.cols = 20;
  cfg.adc_bits = 8;
  expect_fused_matches_reference(cfg, 0.25, 1000, 11);
}

TEST(FusedKernel, BitIdenticalToReferenceNoiseless) {
  cim::CrossbarConfig cfg;
  cfg.rows = 32;
  cfg.cols = 12;
  cfg.adc_bits = 0;
  expect_fused_matches_reference(cfg, 0.0, 30000, 23);
}

TEST(FusedKernel, BitIdenticalToReferenceNonDifferential) {
  cim::CrossbarConfig cfg;
  cfg.rows = 40;
  cfg.cols = 16;
  cfg.differential = false;
  cfg.adc_bits = 6;
  expect_fused_matches_reference(cfg, 0.1, 500, 37);
}

TEST(FusedKernel, ZeroSliceSkipFiresAndStaysExact) {
  // Noiseless programming of tiny values leaves every high slice exactly
  // zero — the kernel elides those planes without changing results or
  // counters (checked inside the helper).
  cim::CrossbarConfig cfg;
  cfg.rows = 24;
  cfg.cols = 10;
  cfg.adc_bits = 8;
  expect_fused_matches_reference(cfg, 0.0, 3, 51);

  cim::Crossbar xb(cfg);
  Rng rng(52);
  xb.program(Matrix(24, 10, 3.0f), {nvm::fefet3(), 0.0}, rng);
  EXPECT_FALSE(xb.slice_is_zero(0));  // value 3 lives in the lowest slice
  for (std::size_t s = 1; s < cfg.n_slices(); ++s)
    EXPECT_TRUE(xb.slice_is_zero(s)) << "slice " << s;
  // Elision must not bend the arithmetic: a noiseless ideal-ADC readback of
  // the skipping crossbar still reconstructs the programmed integers.
  cim::CrossbarConfig ideal = cfg;
  ideal.adc_bits = 0;
  cim::Crossbar exact(ideal);
  Rng rng2(53);
  exact.program(Matrix(24, 10, 3.0f), {nvm::fefet3(), 0.0}, rng2);
  const Matrix y = exact.matvec(Matrix(1, 24, 1.0f));
  for (std::size_t c = 0; c < y.cols(); ++c) EXPECT_FLOAT_EQ(y(0, c), 24.0f * 3.0f);
}

TEST(FastAccumulate, WithinToleranceOfExactPath) {
  cim::CrossbarConfig exact_cfg;
  exact_cfg.rows = 96;
  exact_cfg.cols = 32;
  exact_cfg.adc_bits = 8;
  cim::CrossbarConfig fast_cfg = exact_cfg;
  fast_cfg.fast_accumulate = true;

  cim::Crossbar exact(exact_cfg), fast(fast_cfg);
  Rng wr(61);
  const Matrix w = random_int_matrix(96, 32, -20000, 20000, wr);
  Rng p1(62), p2(62);
  exact.program(w, {nvm::fefet3(), 0.1}, p1);
  fast.program(w, {nvm::fefet3(), 0.1}, p2);

  Rng qr(63);
  const Matrix x = Matrix::randn(16, 96, qr);
  const Matrix ye = exact.matvec_batch(x);
  const Matrix yf = fast.matvec_batch(x);
  ASSERT_TRUE(ye.same_shape(yf));
  // Float accumulation over ≤96 noisy terms stays within a small relative
  // error of the double path (well under the device-noise floor).
  const float rel = (ye - yf).frobenius_norm() / std::max(1e-6f, ye.frobenius_norm());
  EXPECT_LT(rel, 1e-4f);
}

// ---------------------------------------------------------------------------
// Scratch-reusing batched query paths.
// ---------------------------------------------------------------------------

TEST(AcceleratorScratch, QueryBatchIntoMatchesQueryBatch) {
  cim::CrossbarConfig cfg;
  cfg.rows = 64;
  cfg.cols = 16;
  cfg.adc_bits = 8;
  cim::Accelerator acc(cfg, {nvm::rram1(), 0.2});
  Rng rng(71);
  acc.store(Matrix::randn(24, 100, rng), rng);  // tiles in both dimensions

  cim::Accelerator::BatchScratch scratch;
  Matrix out;
  Rng qr(72);
  for (int round = 0; round < 3; ++round) {  // scratch reuse across rounds
    const Matrix queries = Matrix::randn(5 + round, 100, qr);
    const Matrix expected = acc.query_batch(queries);
    acc.query_batch_into(queries, out, scratch);
    ASSERT_TRUE(expected.same_shape(out));
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(expected.at_flat(i), out.at_flat(i)) << "round " << round << " flat " << i;
  }
}

TEST(RetrieverScratch, ScoresBatchIntoMatchesScoresBatch) {
  retrieval::CimRetriever::Config cfg;
  cfg.crossbar.rows = 48;
  cfg.crossbar.cols = 16;
  cfg.variation = {nvm::fefet3(), 0.1};
  retrieval::CimRetriever r(cfg);
  Rng rng(81);
  std::vector<Matrix> keys;
  for (int i = 0; i < 20; ++i) keys.push_back(Matrix::rand_uniform(4, 12, rng, -1.0f, 1.0f));
  r.store(keys, rng);

  retrieval::CimRetriever::Scratch scratch;
  Matrix out;
  Rng qr(82);
  for (int round = 0; round < 3; ++round) {
    const Matrix queries = Matrix::randn(6, 48, qr);  // key size 4×12 = 48
    const Matrix expected = r.scores_batch(queries);
    r.scores_batch_into(queries, out, scratch);
    ASSERT_TRUE(expected.same_shape(out));
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(expected.at_flat(i), out.at_flat(i)) << "round " << round << " flat " << i;
  }
}

// ---------------------------------------------------------------------------
// Parallel per-shard retrieval fan-out.
// ---------------------------------------------------------------------------

/// Synthetic deployments (random keys, untrained shared autoencoder): the
/// retrieval data path is under test, not task accuracy.
struct ParallelFixture {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;
  std::shared_ptr<const compress::Autoencoder> autoencoder;

  static constexpr std::size_t kDModel = 16;
  static constexpr std::size_t kCodeDim = 24;
  static constexpr std::size_t kTokens = 4;
  static constexpr std::size_t kKeysPerUser = 8;

  ParallelFixture() : model(make_model()) {
    compress::AutoencoderConfig acfg;
    acfg.input_dim = kDModel;
    acfg.code_dim = kCodeDim;
    acfg.hidden_dim = 32;
    autoencoder = std::make_shared<const compress::Autoencoder>(acfg);
  }

  llm::TinyLM make_model() {
    llm::TinyLmConfig cfg;
    cfg.vocab = task.vocab_size();
    cfg.d_model = kDModel;
    cfg.n_layers = 1;
    cfg.n_heads = 2;
    cfg.ffn_hidden = 32;
    cfg.max_seq = 40;
    cfg.prompt_slots = 8;
    return llm::TinyLM(cfg, 9);
  }

  core::TrainedDeployment make_deployment(std::size_t user) {
    core::TrainedDeployment d;
    d.autoencoder = autoencoder;
    d.n_virtual_tokens = kTokens;
    Rng rng(5000 + user);
    for (std::size_t k = 0; k < kKeysPerUser; ++k) {
      d.keys.push_back(Matrix::rand_uniform(kTokens, kCodeDim, rng, -1.0f, 1.0f));
      d.stored_codes.push_back(Matrix::rand_uniform(kTokens, kCodeDim, rng, -1.0f, 1.0f));
      d.domains.push_back(k);
    }
    return d;
  }

  serve::ServingConfig config(bool parallel, std::size_t shards, std::size_t threads,
                              std::size_t batch) const {
    serve::ServingConfig cfg;
    cfg.n_shards = shards;
    cfg.n_threads = threads;
    cfg.max_batch = batch;
    cfg.parallel_retrieval = parallel;
    cfg.crossbar.rows = 96;
    cfg.crossbar.cols = 32;
    cfg.variation = {nvm::fefet3(), 0.1};
    cfg.seed = 2026;
    return cfg;
  }

  std::vector<std::size_t> run(bool parallel, std::size_t shards, std::size_t threads,
                               std::size_t batch,
                               const std::vector<std::pair<std::size_t, data::Sample>>& reqs,
                               std::size_t n_users, serve::StatsSnapshot* stats = nullptr) {
    serve::ServingEngine engine(model, task, config(parallel, shards, threads, batch));
    for (std::size_t u = 0; u < n_users; ++u) engine.add_deployment(u, make_deployment(u));
    engine.start();
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(reqs.size());
    for (const auto& [u, q] : reqs) futures.push_back(engine.submit(u, q));
    std::vector<std::size_t> out;
    out.reserve(reqs.size());
    for (auto& f : futures) out.push_back(f.get().ovt_index);
    if (stats != nullptr) *stats = engine.stats();
    engine.stop();
    return out;
  }
};

TEST(ParallelRetrieval, DeterministicAndIdenticalToSerialShardLoop) {
  ParallelFixture f;
  const std::size_t n_users = 12;
  Rng qr(91);
  std::vector<std::pair<std::size_t, data::Sample>> reqs;
  for (int t = 0; t < 64; ++t) {
    const std::size_t u = qr.uniform_index(n_users);
    reqs.emplace_back(u, f.task.sample(qr.uniform_index(f.task.config().n_domains), qr));
  }

  serve::StatsSnapshot serial_stats, parallel_stats;
  const std::vector<std::size_t> serial =
      f.run(/*parallel=*/false, /*shards=*/4, /*threads=*/4, /*batch=*/16, reqs, n_users,
            &serial_stats);
  const std::vector<std::size_t> parallel =
      f.run(/*parallel=*/true, 4, 4, 16, reqs, n_users, &parallel_stats);
  const std::vector<std::size_t> parallel_again = f.run(true, 4, 4, 16, reqs, n_users);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "request " << i;
    EXPECT_EQ(parallel[i], parallel_again[i]) << "request " << i << " (rerun)";
  }
  EXPECT_EQ(serial_stats.parallel_retrieve_fanouts, 0u);
}

TEST(ParallelRetrieval, SingleWorkerSelfHelpStillCorrect) {
  // With one worker the coordinator must execute every fanned-out shard task
  // itself (no other worker exists to steal them) — the degenerate case of
  // the help loop.
  ParallelFixture f;
  const std::size_t n_users = 8;
  Rng qr(92);
  std::vector<std::pair<std::size_t, data::Sample>> reqs;
  for (int t = 0; t < 32; ++t) {
    const std::size_t u = qr.uniform_index(n_users);
    reqs.emplace_back(u, f.task.sample(qr.uniform_index(f.task.config().n_domains), qr));
  }
  const std::vector<std::size_t> serial = f.run(false, 4, 1, 16, reqs, n_users);
  const std::vector<std::size_t> parallel = f.run(true, 4, 1, 16, reqs, n_users);
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "request " << i;
}

TEST(ParallelRetrieval, BatchCoalescingServesEverythingAndMatchesSerial) {
  // min_batch > 1: workers wait (bounded) for full batches. Liveness must
  // hold when fewer than min_batch requests ever arrive (window times out),
  // and results stay identical to the serial shard loop.
  ParallelFixture f;
  const std::size_t n_users = 8;
  Rng qr(94);
  std::vector<std::pair<std::size_t, data::Sample>> reqs;
  for (int t = 0; t < 21; ++t) {  // deliberately not a multiple of min_batch
    const std::size_t u = qr.uniform_index(n_users);
    reqs.emplace_back(u, f.task.sample(qr.uniform_index(f.task.config().n_domains), qr));
  }
  serve::ServingConfig cfg = f.config(/*parallel=*/true, 4, 2, 16);
  cfg.min_batch = 16;
  cfg.batch_window_ms = 5.0;
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < n_users; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();
  std::vector<std::size_t> serial;
  for (const auto& [u, q] : reqs) serial.push_back(engine.retrieve_serial(u, q));
  std::vector<std::future<serve::Response>> futures;
  for (const auto& [u, q] : reqs) futures.push_back(engine.submit(u, q));
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(futures[i].get().ovt_index, serial[i]) << "request " << i;
  engine.stop();
}

TEST(ParallelRetrieval, PerShardTimingsAndFanoutsRecorded) {
  ParallelFixture f;
  const std::size_t n_users = 12;
  Rng qr(93);
  std::vector<std::pair<std::size_t, data::Sample>> reqs;
  for (int t = 0; t < 48; ++t) {
    const std::size_t u = qr.uniform_index(n_users);
    reqs.emplace_back(u, f.task.sample(qr.uniform_index(f.task.config().n_domains), qr));
  }
  serve::StatsSnapshot s;
  (void)f.run(true, 4, 4, 16, reqs, n_users, &s);
  ASSERT_EQ(s.requests, reqs.size());
  // 12 users over 4 shards → every shard holds users; batches of 16 random
  // users span >1 shard essentially surely, so fan-outs and per-shard
  // timings must both have been recorded.
  EXPECT_GT(s.parallel_retrieve_fanouts, 0u);
  ASSERT_EQ(s.shard_retrieve_ms.size(), 4u);
  double total = 0.0;
  for (const double ms : s.shard_retrieve_ms) {
    EXPECT_GE(ms, 0.0);
    total += ms;
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace nvcim
