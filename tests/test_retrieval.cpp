#include <gtest/gtest.h>

#include "nvcim/retrieval/search.hpp"

namespace nvcim::retrieval {
namespace {

TEST(Wmsdp, Scale1OnlyEqualsDotProduct) {
  ScaledSearchConfig cfg;
  cfg.scales = {1};
  cfg.weights = {1.0f};
  Matrix a{{1, 2, 3, 4}};
  Matrix b{{4, 3, 2, 1}};
  EXPECT_NEAR(wmsdp(a, b, cfg), dot(a, b), 1e-5f);
}

TEST(Wmsdp, PaperWeightsNormalized) {
  // With equal operands, the WMSDP is a weighted mean of pooled self-dots;
  // weights must normalize by their sum (Eq. 5 denominator).
  Matrix a{{1, 1, 1, 1}};
  ScaledSearchConfig cfg;  // scales {1,2,4}, weights {1,0.8,0.6}
  // Pool_i of all-ones is all-ones, dots are 4, 2, 1.
  const float expected = (1.0f * 4 + 0.8f * 2 + 0.6f * 1) / (1.0f + 0.8f + 0.6f);
  EXPECT_NEAR(wmsdp(a, a, cfg), expected, 1e-5f);
}

TEST(Wmsdp, SizeMismatchThrows) {
  Matrix a(1, 4, 1.0f), b(1, 5, 1.0f);
  EXPECT_THROW(wmsdp(a, b), Error);
}

TEST(Wmsdp, ConfigValidation) {
  ScaledSearchConfig bad;
  bad.scales = {1, 2};
  bad.weights = {1.0f};
  Matrix a(1, 4, 1.0f);
  EXPECT_THROW(wmsdp(a, a, bad), Error);
}

TEST(ExactRetrieval, MipsFindsMaxInnerProduct) {
  Matrix q{{1, 0, 0, 0}};
  std::vector<Matrix> keys{Matrix{{0, 1, 0, 0}}, Matrix{{2, 0, 0, 0}},
                           Matrix{{1, 1, 1, 1}}};
  EXPECT_EQ(mips_retrieve_exact(q, keys), 1u);
}

TEST(ExactRetrieval, SsaPrefersCoarseMatchUnderTokenMisalignment) {
  // Query signal shifted by one position within a pooling window: scale-1
  // dot misses it, scale-2/4 pooling recovers it.
  Matrix q{{0, 4, 0, 0, 0, 0, 0, 0}};
  Matrix shifted{{4, 0, 0, 0, 0, 0, 0, 0}};   // same window, different slot
  Matrix far{{0, 0, 0, 0, 0, 4.4f, 0, 0}};    // different window, slightly larger
  const std::vector<Matrix> keys{shifted, far};
  // MIPS: both keys give zero dot; tie broken by order (index 0) — fine.
  // SSA must pick the shifted key via pooled similarity.
  EXPECT_EQ(ssa_retrieve_exact(q, keys), 0u);
}

TEST(ExactRetrieval, EmptyKeysThrow) {
  Matrix q(1, 4, 1.0f);
  EXPECT_THROW(mips_retrieve_exact(q, {}), Error);
  EXPECT_THROW(ssa_retrieve_exact(q, {}), Error);
}

CimRetriever::Config retriever_config(Algorithm alg, double sigma = 0.0) {
  CimRetriever::Config cfg;
  cfg.algorithm = alg;
  cfg.crossbar.rows = 64;
  cfg.crossbar.cols = 16;
  cfg.variation = {nvm::fefet3(), sigma};
  return cfg;
}

std::vector<Matrix> block_keys(std::size_t n, std::size_t len, float mag = 1.0f) {
  // Key i has a block of mass in segment i.
  std::vector<Matrix> keys;
  const std::size_t seg = len / n;
  for (std::size_t i = 0; i < n; ++i) {
    Matrix k(1, len, 0.0f);
    for (std::size_t j = 0; j < seg; ++j) k(0, i * seg + j) = mag;
    keys.push_back(k);
  }
  return keys;
}

TEST(CimRetriever, NoiselessMipsMatchesExact) {
  auto keys = block_keys(4, 64);
  CimRetriever r(retriever_config(Algorithm::MIPS));
  Rng rng(1);
  r.store(keys, rng);
  EXPECT_EQ(r.n_keys(), 4u);
  Rng qr(2);
  for (int t = 0; t < 10; ++t) {
    const Matrix q = Matrix::randn(1, 64, qr);
    EXPECT_EQ(r.retrieve(q), mips_retrieve_exact(q, keys));
  }
}

TEST(CimRetriever, NoiselessSsaMatchesExact) {
  auto keys = block_keys(4, 64);
  CimRetriever r(retriever_config(Algorithm::SSA));
  Rng rng(3);
  r.store(keys, rng);
  Rng qr(4);
  for (int t = 0; t < 10; ++t) {
    const Matrix q = Matrix::randn(1, 64, qr);
    EXPECT_EQ(r.retrieve(q), ssa_retrieve_exact(q, keys));
  }
}

TEST(CimRetriever, ScoresShapeAndOrdering) {
  auto keys = block_keys(3, 48);
  CimRetriever r(retriever_config(Algorithm::SSA));
  Rng rng(5);
  r.store(keys, rng);
  const Matrix q = keys[2];  // exact match to key 2
  const Matrix s = r.scores(q);
  ASSERT_EQ(s.cols(), 3u);
  EXPECT_GT(s(0, 2), s(0, 0));
  EXPECT_GT(s(0, 2), s(0, 1));
}

TEST(CimRetriever, SsaMoreRobustThanMipsUnderDeviceNoise) {
  // Aggregate retrieval accuracy over noisy stores: SSA's multi-scale
  // averaging should match or beat raw MIPS on block-structured keys.
  const std::size_t n_keys = 8, len = 128;
  auto keys = block_keys(n_keys, len);
  std::size_t mips_hits = 0, ssa_hits = 0, trials = 0;
  for (int rep = 0; rep < 6; ++rep) {
    CimRetriever mips(retriever_config(Algorithm::MIPS, 0.25));
    CimRetriever ssa(retriever_config(Algorithm::SSA, 0.25));
    Rng r1(100 + rep), r2(100 + rep);
    mips.store(keys, r1);
    ssa.store(keys, r2);
    Rng qr(200 + rep);
    for (std::size_t k = 0; k < n_keys; ++k) {
      // Query = noisy version of key k with intra-window jitter.
      Matrix q = keys[k];
      for (std::size_t i = 0; i < q.size(); ++i)
        q.at_flat(i) += static_cast<float>(qr.normal(0.0, 0.3));
      mips_hits += mips.retrieve(q) == k ? 1 : 0;
      ssa_hits += ssa.retrieve(q) == k ? 1 : 0;
      ++trials;
    }
  }
  EXPECT_GT(static_cast<double>(ssa_hits), 0.6 * static_cast<double>(trials));
  EXPECT_GE(ssa_hits + 4, mips_hits);  // SSA within noise of or better than MIPS
}

TEST(CimRetriever, KeySizeConsistencyEnforced) {
  CimRetriever r(retriever_config(Algorithm::MIPS));
  Rng rng(6);
  EXPECT_THROW(r.store({Matrix(1, 8, 1.0f), Matrix(1, 9, 1.0f)}, rng), Error);
  EXPECT_THROW(r.store({}, rng), Error);
  r.store({Matrix(1, 8, 1.0f)}, rng);
  EXPECT_THROW(r.retrieve(Matrix(1, 9, 1.0f)), Error);
}

TEST(CimRetriever, MatrixShapedKeysAreFlattened) {
  // Keys given as n_vt×code matrices (the framework's shape).
  std::vector<Matrix> keys{Matrix(4, 8, 1.0f), Matrix(4, 8, -1.0f)};
  CimRetriever r(retriever_config(Algorithm::SSA));
  Rng rng(7);
  r.store(keys, rng);
  Matrix q(4, 8, 1.0f);
  EXPECT_EQ(r.retrieve(q), 0u);
}

TEST(CimRetriever, CountersAccumulate) {
  CimRetriever r(retriever_config(Algorithm::SSA));
  Rng rng(8);
  r.store(block_keys(2, 32), rng);
  const auto before = r.counters();
  EXPECT_GT(before.cells_programmed, 0u);
  r.retrieve(Matrix(1, 32, 1.0f));
  const auto after = r.counters();
  EXPECT_GT(after.subarray_activations, before.subarray_activations);
}

}  // namespace
}  // namespace nvcim::retrieval
