// Async request lifecycle (PR 8): deadline/priority-aware scheduling behind
// the unified submit(Request, SubmitOptions) -> RequestHandle surface.
//
//  - RequestScheduler unit (deterministic, explicit clock): EDF ordering
//    within a tenant, critical-deadline pull across tenants, DRR fair
//    rotation (a hot tenant's backlog cannot starve a cold tenant's head),
//    FIFO A/B mode preserving global arrival order, in-queue expiry,
//    token-bucket rate limits at dequeue, cancel-before-dispatch, drain
//  - engine-level: callback-vs-future equivalence, cancel through
//    RequestHandle, expired requests never reach the retrieve stage,
//    stop() settles still-queued futures with EngineStopped (regression:
//    the old path silently drained them), OverloadPolicy::Reject,
//    DRR-vs-FIFO completion-order fairness A/B, admit() handles
//  - property: retrieval results stay bit-identical to retrieve_serial
//    under random deadlines/priorities/policies — scheduling reorders
//    batches, never arithmetic
//
// These suites run under ASan/TSan in CI (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <mutex>
#include <vector>

#include "nvcim/core/framework.hpp"
#include "nvcim/llm/pretrain.hpp"
#include "nvcim/serve/engine.hpp"
#include "nvcim/serve/scheduler.hpp"

namespace nvcim {
namespace {

using serve::QueuedRequest;
using serve::RequestScheduler;
using serve::SchedulerConfig;
using serve::SchedPolicy;
using Clock = RequestScheduler::Clock;

// ---------------------------------------------------------------------------
// RequestScheduler unit tests: externally driven clock, no threads.
// ---------------------------------------------------------------------------

QueuedRequest make_req(std::size_t user, Clock::time_point enq, double deadline_ms = 0.0,
                       int priority = 0) {
  QueuedRequest r;
  r.user_id = user;
  r.enqueued = enq;
  r.priority = priority;
  if (deadline_ms > 0.0)
    r.deadline = enq + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(deadline_ms));
  return r;
}

std::vector<std::size_t> users_of(const std::vector<QueuedRequest>& batch) {
  std::vector<std::size_t> u;
  for (const QueuedRequest& r : batch) u.push_back(r.user_id);
  return u;
}

TEST(SchedulerUnit, EdfOrdersWithinTenantByDeadlinePriorityArrival) {
  RequestScheduler s{SchedulerConfig{}};
  const Clock::time_point t0 = Clock::now();
  auto a = make_req(7, t0, 50.0);        // loose deadline
  auto b = make_req(7, t0, 10.0);        // tight deadline
  auto c = make_req(7, t0);              // none
  auto d = make_req(7, t0, 10.0, 2);     // tight deadline, higher priority
  s.push(std::move(a), t0);
  s.push(std::move(b), t0);
  s.push(std::move(c), t0);
  s.push(std::move(d), t0);
  const auto batch = s.pop_batch(4, t0);
  ASSERT_EQ(batch.size(), 4u);
  // (10ms, prio 2) then (10ms, prio 0, earlier arrival) then 50ms then none.
  EXPECT_EQ(batch[0].priority, 2);
  EXPECT_EQ(batch[1].seq, 1u);
  EXPECT_EQ(batch[2].seq, 0u);
  EXPECT_FALSE(batch[3].has_deadline());
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerUnit, CriticalDeadlineJumpsTheRotation) {
  SchedulerConfig cfg;
  cfg.urgency_window_ms = 2.0;
  RequestScheduler s{cfg};
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 8; ++i) s.push(make_req(0, t0), t0);  // hot, no deadlines
  s.push(make_req(1, t0, 1.0), t0);  // cold, deadline inside the window
  const auto batch = s.pop_batch(4, t0);
  ASSERT_EQ(batch.size(), 4u);
  // The critical request is pulled first even though tenant 0 joined first.
  EXPECT_EQ(batch[0].user_id, 1u);
  EXPECT_EQ(batch[1].user_id, 0u);
}

TEST(SchedulerUnit, DrrSharesBatchAcrossTenantsByQuantum) {
  SchedulerConfig cfg;
  cfg.quantum = 4;
  RequestScheduler s{cfg};
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 20; ++i) s.push(make_req(0, t0), t0);  // hot backlog
  for (int i = 0; i < 4; ++i) s.push(make_req(1, t0), t0);
  for (int i = 0; i < 4; ++i) s.push(make_req(2, t0), t0);
  const auto batch = s.pop_batch(12, t0);
  ASSERT_EQ(batch.size(), 12u);
  const auto u = users_of(batch);
  // One full round: 4 hot, then all of tenants 1 and 2 — the hot backlog
  // cannot push the cold tenants out of the batch.
  EXPECT_EQ(std::count(u.begin(), u.end(), 0u), 4);
  EXPECT_EQ(std::count(u.begin(), u.end(), 1u), 4);
  EXPECT_EQ(std::count(u.begin(), u.end(), 2u), 4);
  EXPECT_EQ(s.size(), 16u);  // the rest of the hot backlog waits its turn
  EXPECT_EQ(s.queued_for(0), 16u);
}

TEST(SchedulerUnit, FifoModePreservesGlobalArrivalOrder) {
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::Fifo;
  RequestScheduler s{cfg};
  const Clock::time_point t0 = Clock::now();
  const std::vector<std::size_t> arrivals{0, 1, 0, 2, 1, 0};
  for (const std::size_t u : arrivals) s.push(make_req(u, t0), t0);
  const auto batch = s.pop_batch(6, t0);
  ASSERT_EQ(batch.size(), 6u);
  EXPECT_EQ(users_of(batch), arrivals);
  for (std::size_t i = 0; i < batch.size(); ++i) EXPECT_EQ(batch[i].seq, i);
}

TEST(SchedulerUnit, TakeExpiredDropsOnlyDeadRequests) {
  RequestScheduler s{SchedulerConfig{}};
  const Clock::time_point t0 = Clock::now();
  s.push(make_req(0, t0, 1.0), t0);    // dead at t0+5ms
  s.push(make_req(0, t0, 100.0), t0);  // live
  s.push(make_req(1, t0), t0);         // no deadline
  const Clock::time_point t1 = t0 + std::chrono::milliseconds(5);
  const auto expired = s.take_expired(t1);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_TRUE(expired[0].has_deadline());
  EXPECT_LT(expired[0].deadline, t1);
  EXPECT_EQ(s.size(), 2u);
  const auto batch = s.pop_batch(4, t1);
  ASSERT_EQ(batch.size(), 2u);
  for (const QueuedRequest& r : batch)
    EXPECT_TRUE(!r.has_deadline() || r.deadline >= t1);
}

TEST(SchedulerUnit, NextDeadlineIsTheGlobalMinimumInBothPolicies) {
  for (const SchedPolicy policy : {SchedPolicy::Drr, SchedPolicy::Fifo}) {
    SchedulerConfig cfg;
    cfg.policy = policy;
    RequestScheduler s{cfg};
    const Clock::time_point t0 = Clock::now();
    EXPECT_EQ(s.next_deadline(), QueuedRequest::kNoDeadline);
    s.push(make_req(0, t0), t0);            // FIFO front: no deadline
    s.push(make_req(0, t0, 30.0), t0);
    s.push(make_req(1, t0, 8.0), t0);       // the global minimum
    s.push(make_req(1, t0, 90.0), t0);
    const Clock::time_point expect =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(8.0));
    EXPECT_EQ(s.next_deadline(), expect);
  }
}

TEST(SchedulerUnit, RateLimitThrottlesDequeueNotAdmission) {
  SchedulerConfig cfg;
  cfg.quantum = 4;  // burst = 4 tokens
  RequestScheduler s{cfg};
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 10; ++i) s.push(make_req(0, t0), t0);
  for (int i = 0; i < 8; ++i) s.push(make_req(1, t0), t0);
  s.set_rate_limit(0, 100.0);  // 100 rps, burst 4
  // First pop: tenant 0 spends its burst, tenant 1 (unlimited) fills the rest.
  auto batch = s.pop_batch(16, t0);
  auto u = users_of(batch);
  EXPECT_EQ(std::count(u.begin(), u.end(), 0u), 4);
  EXPECT_EQ(std::count(u.begin(), u.end(), 1u), 8);
  // Still throttled at the same instant: the backlog stays queued.
  EXPECT_TRUE(s.pop_batch(16, t0).empty());
  EXPECT_EQ(s.queued_for(0), 6u);
  // 100 ms later the bucket refilled (capped at the burst): 4 more.
  const Clock::time_point t1 = t0 + std::chrono::milliseconds(100);
  batch = s.pop_batch(16, t1);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(s.queued_for(0), 2u);
}

TEST(SchedulerUnit, CancelRemovesAQueuedRequestExactlyOnce) {
  RequestScheduler s{SchedulerConfig{}};
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 3; ++i) {
    auto r = make_req(0, t0);
    r.id = 100 + static_cast<std::uint64_t>(i);
    s.push(std::move(r), t0);
  }
  QueuedRequest out;
  EXPECT_TRUE(s.cancel(101, &out));
  EXPECT_EQ(out.id, 101u);
  EXPECT_FALSE(s.cancel(101, &out));  // already gone
  EXPECT_FALSE(s.cancel(999, &out));  // never queued
  const auto batch = s.pop_batch(4, t0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 100u);
  EXPECT_EQ(batch[1].id, 102u);
}

TEST(SchedulerUnit, DrainReturnsEverythingInArrivalOrder) {
  RequestScheduler s{SchedulerConfig{}};
  const Clock::time_point t0 = Clock::now();
  s.push(make_req(3, t0, 5.0), t0);
  s.push(make_req(1, t0), t0);
  s.push(make_req(2, t0, 50.0), t0);
  const auto all = s.drain();
  ASSERT_EQ(all.size(), 3u);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].seq, i);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.pop_batch(4, t0).empty());
}

// ---------------------------------------------------------------------------
// Engine-level tests (same fixture family as test_serve.cpp).
// ---------------------------------------------------------------------------

struct SchedFixture {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;

  SchedFixture() : model(make_model()) {}

  llm::TinyLM make_model() {
    llm::TinyLmConfig cfg;
    cfg.vocab = task.vocab_size();
    cfg.d_model = 16;
    cfg.n_layers = 1;
    cfg.n_heads = 2;
    cfg.ffn_hidden = 32;
    cfg.max_seq = 40;
    cfg.prompt_slots = 8;
    llm::TinyLM m(cfg, 5);
    llm::PretrainConfig pt;
    pt.steps = 40;
    pt.batch_size = 8;
    llm::pretrain(m, task.pretraining_corpus(100, 3), pt);
    return m;
  }

  core::FrameworkConfig framework_config(std::uint64_t seed) const {
    core::FrameworkConfig cfg;
    cfg.tuner.n_virtual_tokens = 4;
    cfg.tuner.steps = 8;
    cfg.autoencoder.steps = 40;
    cfg.autoencoder.code_dim = 24;
    cfg.crossbar.rows = 64;
    cfg.crossbar.cols = 16;
    cfg.crossbar.adc_bits = 0;
    cfg.variation = {nvm::fefet3(), 0.0};
    cfg.noise_aware = false;
    cfg.seed = seed;
    return cfg;
  }

  serve::ServingConfig serving_config(std::size_t n_shards, std::size_t n_threads) const {
    serve::ServingConfig cfg;
    cfg.n_shards = n_shards;
    cfg.n_threads = n_threads;
    cfg.crossbar.rows = 64;
    cfg.crossbar.cols = 16;
    cfg.crossbar.adc_bits = 0;
    cfg.variation = {nvm::fefet3(), 0.0};
    return cfg;
  }

  /// Train `n_users` single-user frameworks and hand their deployments to a
  /// fresh engine. Queries and serial expectations are recorded per user.
  void deploy_users(serve::ServingEngine& engine, std::size_t n_users, std::size_t n_queries,
                    std::vector<std::vector<data::Sample>>* queries) {
    queries->assign(n_users, {});
    for (std::size_t u = 0; u < n_users; ++u) {
      core::NvcimPtFramework fw(model, task, framework_config(100 + u));
      fw.initialize_autoencoder(12);
      fw.train_from_buffer(task.make_user(u, 10, 0).train);
      Rng qr(200 + u);
      for (std::size_t q = 0; q < n_queries; ++q)
        (*queries)[u].push_back(task.sample(qr.uniform_index(task.config().n_domains), qr));
      engine.add_deployment(u, fw.export_deployment());
    }
  }
};

TEST(SchedulerApi, CallbackAndFutureAgreeOnTheSameResponse) {
  SchedFixture f;
  serve::ServingEngine engine(f.model, f.task, f.serving_config(1, 1));
  std::vector<std::vector<data::Sample>> queries;
  f.deploy_users(engine, 2, 3, &queries);
  engine.start();

  std::mutex mu;
  std::vector<serve::Response> cb_responses;
  std::vector<serve::Response> fut_responses;
  std::vector<serve::RequestHandle> handles;
  for (std::size_t u = 0; u < 2; ++u)
    for (const data::Sample& q : queries[u]) {
      serve::SubmitOptions opts;
      opts.on_complete = [&](const serve::Response& r, std::exception_ptr err) {
        ASSERT_EQ(err, nullptr);
        std::lock_guard<std::mutex> lock(mu);
        cb_responses.push_back(r);
      };
      handles.push_back(engine.submit(serve::Request{u, q}, std::move(opts)));
      EXPECT_TRUE(handles.back().valid());
      EXPECT_GT(handles.back().id(), 0u);
    }
  for (serve::RequestHandle& h : handles) fut_responses.push_back(h.get());
  engine.stop();

  ASSERT_EQ(cb_responses.size(), fut_responses.size());
  // Callbacks fire after the future settles, with the identical payload.
  auto key = [](const serve::Response& r) {
    return std::make_tuple(r.user_id, r.ovt_index, r.latency_ms);
  };
  std::sort(cb_responses.begin(), cb_responses.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  std::sort(fut_responses.begin(), fut_responses.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  for (std::size_t i = 0; i < cb_responses.size(); ++i) {
    EXPECT_EQ(cb_responses[i].user_id, fut_responses[i].user_id);
    EXPECT_EQ(cb_responses[i].ovt_index, fut_responses[i].ovt_index);
    EXPECT_EQ(cb_responses[i].latency_ms, fut_responses[i].latency_ms);
    EXPECT_GE(fut_responses[i].queue_wait_ms, 0.0);
    EXPECT_LE(fut_responses[i].queue_wait_ms, fut_responses[i].latency_ms);
    EXPECT_FALSE(fut_responses[i].deadline_missed);  // no deadlines set
  }
}

TEST(SchedulerApi, CancelBeforeDispatchSettlesWithCancelled) {
  SchedFixture f;
  serve::ServingConfig scfg = f.serving_config(1, 1);
  scfg.min_batch = 8;            // the lone request sits in the coalescing
  scfg.batch_window_ms = 500.0;  // window long enough to cancel into
  serve::ServingEngine engine(f.model, f.task, scfg);
  std::vector<std::vector<data::Sample>> queries;
  f.deploy_users(engine, 1, 2, &queries);
  engine.start();

  std::exception_ptr cb_error;
  serve::SubmitOptions opts;
  opts.on_complete = [&](const serve::Response&, std::exception_ptr err) { cb_error = err; };
  serve::RequestHandle h = engine.submit(serve::Request{0, queries[0][0]}, std::move(opts));
  ASSERT_TRUE(h.valid());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel());  // second cancel: already gone
  EXPECT_THROW(h.get(), serve::Cancelled);
  ASSERT_NE(cb_error, nullptr);
  EXPECT_THROW(std::rethrow_exception(cb_error), serve::Cancelled);
  EXPECT_EQ(engine.stats().cancelled_requests, 1u);

  // The engine stays healthy: the next request completes normally (and
  // cancel after completion reports false).
  serve::RequestHandle h2 = engine.submit(serve::Request{0, queries[0][1]});
  const serve::Response r = h2.get();
  EXPECT_EQ(r.user_id, 0u);
  EXPECT_FALSE(h2.cancel());
  engine.stop();
  EXPECT_EQ(engine.stats().requests, 1u);
}

TEST(SchedulerApi, ExpiredRequestsNeverReachTheRetrieveStage) {
  SchedFixture f;
  serve::ServingConfig scfg = f.serving_config(1, 1);
  scfg.min_batch = 8;  // hold the batch open so expiry happens at the dequeue
  scfg.batch_window_ms = 50.0;
  serve::ServingEngine engine(f.model, f.task, scfg);
  std::vector<std::vector<data::Sample>> queries;
  f.deploy_users(engine, 1, 4, &queries);
  engine.start();

  std::vector<serve::RequestHandle> handles;
  for (const data::Sample& q : queries[0]) {
    serve::SubmitOptions opts;
    opts.deadline_ms = 1e-4;  // already past by the time a worker looks
    handles.push_back(engine.submit(serve::Request{0, q}, std::move(opts)));
  }
  for (serve::RequestHandle& h : handles) EXPECT_THROW(h.get(), serve::DeadlineExceeded);
  engine.stop();

  const serve::StatsSnapshot s = engine.stats();
  EXPECT_EQ(s.expired_requests, 4u);
  EXPECT_EQ(s.requests, 0u);  // expired requests are not "served"
  EXPECT_EQ(s.batches, 0u);   // and no batch ever formed: zero crossbar work
  // The metrics registry carries the same signal.
  EXPECT_NE(engine.metrics().prometheus_text().find("nvcim_requests_expired_total 4"),
            std::string::npos);
}

TEST(SchedulerApi, StopSettlesStillQueuedFuturesWithEngineStopped) {
  SchedFixture f;
  serve::ServingConfig scfg = f.serving_config(1, 1);
  scfg.min_batch = 16;            // > queued count: the worker never dispatches
  scfg.batch_window_ms = 5000.0;  // and stop() preempts the window
  serve::ServingEngine engine(f.model, f.task, scfg);
  std::vector<std::vector<data::Sample>> queries;
  f.deploy_users(engine, 1, 4, &queries);
  engine.start();

  std::mutex mu;
  std::size_t cb_errors = 0;
  std::vector<serve::RequestHandle> handles;
  for (const data::Sample& q : queries[0]) {
    serve::SubmitOptions opts;
    opts.on_complete = [&](const serve::Response&, std::exception_ptr err) {
      std::lock_guard<std::mutex> lock(mu);
      if (err != nullptr) ++cb_errors;
    };
    handles.push_back(engine.submit(serve::Request{0, q}, std::move(opts)));
  }
  engine.stop();  // regression: queued futures must settle, not dangle/drain
  for (serve::RequestHandle& h : handles) EXPECT_THROW(h.get(), serve::EngineStopped);
  EXPECT_EQ(cb_errors, 4u);
  EXPECT_EQ(engine.stats().requests, 0u);
}

TEST(SchedulerApi, RejectPolicyShedsAtCapacity) {
  SchedFixture f;
  serve::ServingConfig scfg = f.serving_config(1, 1);
  scfg.queue_capacity = 4;
  scfg.min_batch = 16;  // workers hold off: the queue actually fills
  scfg.batch_window_ms = 5000.0;
  serve::ServingEngine engine(f.model, f.task, scfg);
  std::vector<std::vector<data::Sample>> queries;
  f.deploy_users(engine, 1, 1, &queries);
  engine.start();

  std::vector<serve::RequestHandle> handles;
  serve::SubmitOptions reject;
  reject.overload_policy = serve::OverloadPolicy::Reject;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(engine.submit(serve::Request{0, queries[0][0]}, reject));
    EXPECT_TRUE(handles.back().valid());
  }
  serve::RequestHandle overflow = engine.submit(serve::Request{0, queries[0][0]}, reject);
  EXPECT_FALSE(overflow.valid());
  EXPECT_EQ(engine.stats().rejected_requests, 1u);
  engine.stop();
  for (serve::RequestHandle& h : handles) EXPECT_THROW(h.get(), serve::EngineStopped);
}

TEST(SchedulerFairness, DrrServesColdTenantAheadOfHotBacklogFifoDoesNot) {
  SchedFixture f;
  // One worker, batches of 8, coalescing until the whole backlog is queued:
  // completion order then equals scheduling order, deterministically.
  const std::size_t hot_requests = 23;
  for (const SchedPolicy policy : {SchedPolicy::Drr, SchedPolicy::Fifo}) {
    serve::ServingConfig scfg = f.serving_config(1, 1);
    scfg.max_batch = 8;
    scfg.min_batch = 24;  // hot backlog + the cold request
    scfg.batch_window_ms = 200.0;
    scfg.queue_capacity = 32;
    scfg.scheduler.policy = policy;
    scfg.scheduler.quantum = 4;
    serve::ServingEngine engine(f.model, f.task, scfg);
    std::vector<std::vector<data::Sample>> queries;
    f.deploy_users(engine, 2, 1, &queries);
    engine.start();

    std::mutex mu;
    std::vector<std::size_t> completion_order;
    const auto record = [&](const serve::Response& r, std::exception_ptr err) {
      if (err != nullptr) return;
      std::lock_guard<std::mutex> lock(mu);
      completion_order.push_back(r.user_id);
    };
    std::vector<serve::RequestHandle> handles;
    for (std::size_t i = 0; i < hot_requests; ++i) {
      serve::SubmitOptions opts;
      opts.on_complete = record;
      handles.push_back(engine.submit(serve::Request{0, queries[0][0]}, std::move(opts)));
    }
    serve::SubmitOptions cold;
    cold.on_complete = record;
    handles.push_back(engine.submit(serve::Request{1, queries[1][0]}, std::move(cold)));
    for (serve::RequestHandle& h : handles) h.get();
    engine.stop();

    ASSERT_EQ(completion_order.size(), hot_requests + 1);
    const auto cold_pos = static_cast<std::size_t>(
        std::find(completion_order.begin(), completion_order.end(), 1u) -
        completion_order.begin());
    if (policy == SchedPolicy::Drr) {
      // The hot tenant saturating the queue cannot starve the cold tenant:
      // its single request rides in the FIRST batch (DRR round-robin grants
      // it a turn after the hot tenant's quantum).
      EXPECT_LT(cold_pos, 8u) << "cold tenant starved under DRR";
    } else {
      // FIFO baseline for the A/B: the cold request waits out the entire
      // hot backlog that arrived before it.
      EXPECT_EQ(cold_pos, hot_requests);
    }
  }
}

TEST(SchedulerProperty, RetrievalBitIdenticalUnderAnySchedulingContract) {
  SchedFixture f;
  const std::size_t n_users = 4;
  const std::size_t n_queries = 6;
  for (const SchedPolicy policy : {SchedPolicy::Drr, SchedPolicy::Fifo}) {
    serve::ServingConfig scfg = f.serving_config(2, 2);
    scfg.max_batch = 4;
    scfg.min_batch = 2;
    scfg.batch_window_ms = 1.0;
    scfg.scheduler.policy = policy;
    serve::ServingEngine engine(f.model, f.task, scfg);
    std::vector<std::vector<data::Sample>> queries;
    f.deploy_users(engine, n_users, n_queries, &queries);
    engine.start();

    // Random scheduling contracts: deadlines loose enough to usually be
    // met, priorities across the range. Expired requests are legal
    // outcomes; completed ones must match the serial reference bit-for-bit.
    Rng rng(4242 + static_cast<std::uint64_t>(policy));
    struct Sub {
      std::size_t user;
      std::size_t query;
      serve::RequestHandle handle;
    };
    std::vector<Sub> subs;
    for (std::size_t u = 0; u < n_users; ++u)
      for (std::size_t q = 0; q < n_queries; ++q) {
        serve::SubmitOptions opts;
        if (rng.uniform_index(3) == 0) opts.deadline_ms = 50.0 + 50.0 * rng.uniform();
        opts.priority = static_cast<int>(rng.uniform_index(5)) - 2;
        subs.push_back({u, q, engine.submit(serve::Request{u, queries[u][q]}, std::move(opts))});
      }
    std::size_t completed = 0;
    for (Sub& sub : subs) {
      try {
        const serve::Response r = sub.handle.get();
        EXPECT_EQ(r.ovt_index, engine.retrieve_serial(sub.user, queries[sub.user][sub.query]))
            << "user " << sub.user << " query " << sub.query;
        ++completed;
      } catch (const serve::DeadlineExceeded&) {
        // Legal under load; the point is that scheduling never changes
        // arithmetic for anything that completes.
      }
    }
    engine.stop();
    EXPECT_GT(completed, 0u);
  }
}

TEST(SchedulerApi, AdmitHandleSubsumesTheAdmissionTrio) {
  SchedFixture f;
  serve::ServingConfig scfg = f.serving_config(2, 2);
  scfg.lifecycle.enabled = true;
  serve::ServingEngine engine(f.model, f.task, scfg);
  std::vector<std::vector<data::Sample>> queries;
  f.deploy_users(engine, 2, 2, &queries);
  engine.start();

  // Live admission through the unified surface, joined before returning.
  core::NvcimPtFramework fw(f.model, f.task, f.framework_config(100 + 2));
  fw.initialize_autoencoder(12);
  fw.train_from_buffer(f.task.make_user(2, 10, 0).train);
  Rng qr(202);
  const data::Sample q = f.task.sample(qr.uniform_index(f.task.config().n_domains), qr);
  serve::AdmitOptions opts;
  opts.wait = true;
  serve::AdmissionHandle h = engine.admit(2, fw.export_deployment(), opts);
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.user_id(), 2u);
  h.wait();  // idempotent once live
  const serve::Response r = engine.submit(serve::Request{2, q}).get();
  EXPECT_EQ(r.ovt_index, engine.retrieve_serial(2, q));
  EXPECT_FALSE(serve::AdmissionHandle{}.valid());  // default = rejected shape
  engine.stop();
}

}  // namespace
}  // namespace nvcim
