#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "nvcim/llm/pretrain.hpp"
#include "nvcim/serve/engine.hpp"
#include "nvcim/serve/lru_cache.hpp"

namespace nvcim::serve {
namespace {

// ---------------------------------------------------------------------------
// Batched crossbar path: bit-exact agreement with the per-query path.
// ---------------------------------------------------------------------------

TEST(BatchedCrossbar, MatvecBatchMatchesMatvecExactly) {
  cim::CrossbarConfig cfg;
  cfg.rows = 48;
  cfg.cols = 20;
  cim::Crossbar xb(cfg);
  Rng rng(11);
  Matrix w(48, 20);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.at_flat(i) = static_cast<float>(static_cast<int>(rng.uniform_index(2001)) - 1000);
  Rng prog_rng(12);
  xb.program(w, {nvm::fefet3(), 0.25}, prog_rng);

  Rng qr(13);
  const Matrix x = Matrix::randn(6, 48, qr);
  cim::Crossbar copy = xb;  // independent counters
  const Matrix serial = xb.matvec(x);
  const Matrix batched = copy.matvec_batch(x);
  ASSERT_TRUE(serial.same_shape(batched));
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial.at_flat(i), batched.at_flat(i)) << "flat index " << i;
  // Counters advance identically.
  EXPECT_EQ(xb.counters().subarray_activations, copy.counters().subarray_activations);
  EXPECT_EQ(xb.counters().adc_conversions, copy.counters().adc_conversions);
}

TEST(BatchedAccelerator, QueryBatchMatchesQueryUnderNoiseAndAdc) {
  cim::CrossbarConfig cfg;
  cfg.rows = 64;
  cfg.cols = 16;
  cfg.adc_bits = 8;
  cim::Accelerator acc(cfg, {nvm::rram1(), 0.2});
  Rng rng(21);
  acc.store(Matrix::randn(24, 100, rng), rng);  // tiles in both dimensions

  Rng qr(22);
  const Matrix queries = Matrix::randn(8, 100, qr);
  const Matrix batched = acc.query_batch(queries);
  ASSERT_EQ(batched.rows(), 8u);
  ASSERT_EQ(batched.cols(), 24u);
  for (std::size_t b = 0; b < queries.rows(); ++b) {
    const Matrix one = acc.query(queries.row(b));
    for (std::size_t k = 0; k < one.cols(); ++k)
      EXPECT_EQ(one(0, k), batched(b, k)) << "query " << b << " key " << k;
  }
}

TEST(BatchedRetriever, ScoresAndRetrieveBatchMatchSerial) {
  retrieval::CimRetriever::Config cfg;
  cfg.algorithm = retrieval::Algorithm::SSA;
  cfg.crossbar.rows = 64;
  cfg.crossbar.cols = 16;
  cfg.variation = {nvm::fefet3(), 0.15};
  retrieval::CimRetriever r(cfg);
  Rng rng(31);
  std::vector<Matrix> keys;
  for (int i = 0; i < 6; ++i) keys.push_back(Matrix::randn(4, 16, rng));
  r.store(keys, rng);

  Rng qr(32);
  std::vector<Matrix> queries;
  for (int i = 0; i < 9; ++i) queries.push_back(Matrix::randn(4, 16, qr));
  const Matrix packed = r.pack_queries(queries);
  const Matrix batch_scores = r.scores_batch(packed);
  const std::vector<std::size_t> batch_best = r.retrieve_batch(packed);
  ASSERT_EQ(batch_scores.rows(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const Matrix s = r.scores(queries[q]);
    for (std::size_t k = 0; k < s.cols(); ++k) EXPECT_EQ(s(0, k), batch_scores(q, k));
    EXPECT_EQ(r.retrieve(queries[q]), batch_best[q]);
  }
}

// ---------------------------------------------------------------------------
// LRU cache.
// ---------------------------------------------------------------------------

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  EXPECT_TRUE(c.get(1).has_value());  // 1 now most-recent
  c.put(3, 30);                       // evicts 2
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(3));
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(LruCache, HitMissAccounting) {
  LruCache<int, int> c(4);
  EXPECT_FALSE(c.get(7).has_value());
  c.put(7, 70);
  EXPECT_EQ(*c.get(7), 70);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(LruCache, PutRefreshesExistingKey) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  c.put(1, 11);  // refresh, not insert: nothing evicted
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(*c.get(1), 11);
  c.put(3, 30);  // evicts 2 (1 was refreshed more recently)
  EXPECT_FALSE(c.contains(2));
}

// ---------------------------------------------------------------------------
// Sharded OVT store.
// ---------------------------------------------------------------------------

OvtStoreConfig noise_free_store(std::size_t n_shards) {
  OvtStoreConfig cfg;
  cfg.n_shards = n_shards;
  cfg.crossbar.rows = 64;
  cfg.crossbar.cols = 16;
  cfg.crossbar.adc_bits = 0;  // ideal ADC
  cfg.variation = {nvm::fefet3(), 0.0};
  return cfg;
}

std::vector<Matrix> user_keys(std::size_t n, std::size_t len, Rng& rng) {
  std::vector<Matrix> keys;
  for (std::size_t i = 0; i < n; ++i) keys.push_back(Matrix::rand_uniform(1, len, rng, -1, 1));
  return keys;
}

TEST(ShardedOvtStore, BalancedPlacementAndSlots) {
  ShardedOvtStore store(noise_free_store(2));
  Rng rng(41);
  for (std::size_t u = 0; u < 8; ++u) store.add_user(u, user_keys(3, 32, rng));
  EXPECT_EQ(store.n_users(), 8u);
  EXPECT_EQ(store.n_keys(), 24u);
  std::size_t shard0 = 0, shard1 = 0;
  for (std::size_t u = 0; u < 8; ++u) {
    const auto& slot = store.slot(u);
    EXPECT_EQ(slot.n_keys(), 3u);
    (slot.shard == 0 ? shard0 : shard1) += slot.n_keys();
  }
  EXPECT_EQ(shard0, 12u);
  EXPECT_EQ(shard1, 12u);
}

TEST(ShardedOvtStore, RetrieveMatchesDedicatedPerUserRetriever) {
  // Noise-free: a user's retrieval through a shared multi-tenant shard must
  // agree with a dedicated single-user CimRetriever on the same keys.
  const std::size_t n_users = 8, keys_per_user = 4, len = 32;
  Rng rng(51);
  std::vector<std::vector<Matrix>> keys;
  for (std::size_t u = 0; u < n_users; ++u) keys.push_back(user_keys(keys_per_user, len, rng));

  ShardedOvtStore store(noise_free_store(2));
  for (std::size_t u = 0; u < n_users; ++u) store.add_user(u, keys[u]);
  Rng build_rng(52);
  store.build(build_rng);

  retrieval::CimRetriever::Config rcfg;
  rcfg.crossbar = noise_free_store(2).crossbar;
  rcfg.variation = noise_free_store(2).variation;

  Rng qr(53);
  for (std::size_t u = 0; u < n_users; ++u) {
    retrieval::CimRetriever dedicated(rcfg);
    Rng srng(54 + u);
    dedicated.store(keys[u], srng);
    for (int t = 0; t < 4; ++t) {
      const Matrix q = Matrix::rand_uniform(1, len, qr, -1, 1);
      EXPECT_EQ(store.retrieve_user(u, q), dedicated.retrieve(q))
          << "user " << u << " trial " << t;
    }
  }
}

TEST(ShardedOvtStore, LifecycleChecks) {
  ShardedOvtStore store(noise_free_store(2));
  Rng rng(61);
  EXPECT_THROW(store.build(rng), Error);  // no users
  store.add_user(0, user_keys(2, 16, rng));
  EXPECT_THROW(store.add_user(0, user_keys(2, 16, rng)), Error);  // duplicate
  EXPECT_THROW(store.shard_scores(0, Matrix(1, 16, 0.5f)), Error);  // not built
  store.build(rng);
  EXPECT_THROW(store.add_user(1, user_keys(2, 16, rng)), Error);  // after build
  EXPECT_THROW(store.slot(9), Error);
}

// ---------------------------------------------------------------------------
// Serving engine against the single-user framework path.
// ---------------------------------------------------------------------------

/// One pretrained backbone + task shared by K single-user frameworks, then
/// exported into a multi-tenant engine. Pretraining is brief: equivalence of
/// the retrieval path, not task accuracy, is under test.
struct EngineFixture {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;

  EngineFixture() : model(make_model()) {}

  llm::TinyLM make_model() {
    llm::TinyLmConfig cfg;
    cfg.vocab = task.vocab_size();
    cfg.d_model = 16;
    cfg.n_layers = 1;
    cfg.n_heads = 2;
    cfg.ffn_hidden = 32;
    cfg.max_seq = 40;
    cfg.prompt_slots = 8;
    llm::TinyLM m(cfg, 5);
    llm::PretrainConfig pt;
    pt.steps = 40;
    pt.batch_size = 8;
    llm::pretrain(m, task.pretraining_corpus(100, 3), pt);
    return m;
  }

  /// Noise-free framework config so multi-tenant packing (different
  /// quantization grid) cannot flip an argmax.
  core::FrameworkConfig framework_config(std::uint64_t seed) const {
    core::FrameworkConfig cfg;
    cfg.tuner.n_virtual_tokens = 4;
    cfg.tuner.steps = 8;
    cfg.autoencoder.steps = 40;
    cfg.autoencoder.code_dim = 24;
    cfg.crossbar.rows = 64;
    cfg.crossbar.cols = 16;
    cfg.crossbar.adc_bits = 0;
    cfg.variation = {nvm::fefet3(), 0.0};
    cfg.noise_aware = false;
    cfg.seed = seed;
    return cfg;
  }

  ServingConfig serving_config(std::size_t n_shards, std::size_t n_threads) const {
    ServingConfig cfg;
    cfg.n_shards = n_shards;
    cfg.n_threads = n_threads;
    cfg.crossbar.rows = 64;
    cfg.crossbar.cols = 16;
    cfg.crossbar.adc_bits = 0;
    cfg.variation = {nvm::fefet3(), 0.0};
    return cfg;
  }
};

TEST(ServingEngine, MatchesSingleUserFrameworkAcrossEightUsersTwoShards) {
  EngineFixture f;
  const std::size_t n_users = 8;
  const std::size_t n_queries = 4;

  // Train each user's framework, record its single-user retrievals, then
  // hand the deployment over to the engine.
  ServingEngine engine(f.model, f.task, f.serving_config(/*n_shards=*/2, /*n_threads=*/2));
  std::vector<std::vector<data::Sample>> queries(n_users);
  std::vector<std::vector<std::size_t>> expected(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    core::NvcimPtFramework fw(f.model, f.task, f.framework_config(100 + u));
    fw.initialize_autoencoder(12);
    fw.train_from_buffer(f.task.make_user(u, 10, 0).train);
    Rng qr(200 + u);
    for (std::size_t q = 0; q < n_queries; ++q) {
      queries[u].push_back(f.task.sample(qr.uniform_index(f.task.config().n_domains), qr));
      expected[u].push_back(fw.retrieve_index(queries[u].back()));
    }
    engine.add_deployment(u, fw.export_deployment());
    EXPECT_EQ(fw.n_stored_ovts(), 0u);  // ownership moved out
  }

  engine.start();
  EXPECT_GE(engine.store().n_shards(), 2u);
  for (std::size_t u = 0; u < n_users; ++u)
    for (std::size_t q = 0; q < n_queries; ++q) {
      const Response r = engine.serve(u, queries[u][q]);
      EXPECT_EQ(r.ovt_index, expected[u][q]) << "user " << u << " query " << q;
      EXPECT_EQ(r.user_id, u);
    }
  engine.stop();

  const StatsSnapshot s = engine.stats();
  EXPECT_EQ(s.requests, n_users * n_queries);
  EXPECT_GT(s.throughput_rps, 0.0);
  EXPECT_GE(s.p95_latency_ms, s.p50_latency_ms);
}

TEST(ServingEngine, ConcurrentRequestsMatchSerialExecution) {
  EngineFixture f;
  const std::size_t n_users = 4;

  ServingConfig scfg = f.serving_config(2, 4);
  scfg.variation.global_sigma = 0.1;  // device noise is fine: programmed once
  ServingEngine engine(f.model, f.task, scfg);
  for (std::size_t u = 0; u < n_users; ++u) {
    core::NvcimPtFramework fw(f.model, f.task, f.framework_config(300 + u));
    fw.initialize_autoencoder(12);
    fw.train_from_buffer(f.task.make_user(10 + u, 10, 0).train);
    engine.add_deployment(u, fw.export_deployment());
  }
  engine.start();

  // Serial reference first (threads are idle), then a concurrent burst.
  Rng qr(77);
  std::vector<std::pair<std::size_t, data::Sample>> requests;
  for (int t = 0; t < 24; ++t) {
    const std::size_t u = qr.uniform_index(n_users);
    requests.emplace_back(u, f.task.sample(qr.uniform_index(f.task.config().n_domains), qr));
  }
  std::vector<std::size_t> serial;
  for (const auto& [u, q] : requests) serial.push_back(engine.retrieve_serial(u, q));

  std::vector<std::future<Response>> futures;
  for (const auto& [u, q] : requests) futures.push_back(engine.submit(u, q));
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(futures[i].get().ovt_index, serial[i]) << "request " << i;
  engine.stop();
}

TEST(ServingEngine, LruCacheHitsAndEvictions) {
  EngineFixture f;
  ServingConfig scfg = f.serving_config(1, 1);
  scfg.cache_capacity = 2;
  ServingEngine engine(f.model, f.task, scfg);

  core::NvcimPtFramework fw(f.model, f.task, f.framework_config(400));
  fw.initialize_autoencoder(12);
  fw.train_from_buffer(f.task.make_user(20, 14, 0).train);
  const std::size_t n_ovts = fw.n_stored_ovts();
  ASSERT_GT(n_ovts, 2u) << "need more OVTs than cache slots";
  engine.add_deployment(0, fw.export_deployment());
  engine.start();

  // Touch every OVT prompt directly: with capacity 2 < n_ovts this must
  // evict; touching one key twice in a row must hit.
  for (std::size_t i = 0; i < n_ovts; ++i) engine.prompt(0, i);
  EXPECT_GT(engine.cache_evictions(), 0u);
  const auto before = engine.deployment(0).n_ovts();
  engine.prompt(0, before - 1);  // still resident → hit
  engine.stop();

  // Decoded prompts equal the framework's restored prompts by construction.
  const Matrix direct = engine.deployment(0).decode_prompt(0);
  EXPECT_TRUE(allclose(direct, *engine.prompt(0, 0)));
}

TEST(ServingEngine, StatsTrackBatchesAndHitRate) {
  EngineFixture f;
  ServingConfig scfg = f.serving_config(1, 1);
  scfg.max_batch = 4;
  ServingEngine engine(f.model, f.task, scfg);
  core::NvcimPtFramework fw(f.model, f.task, f.framework_config(500));
  fw.initialize_autoencoder(12);
  fw.train_from_buffer(f.task.make_user(30, 10, 0).train);
  engine.add_deployment(0, fw.export_deployment());
  engine.start();

  Rng qr(88);
  const data::Sample q = f.task.sample(0, qr);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(engine.submit(0, q));
  for (auto& fu : futs) fu.get();
  engine.stop();

  const StatsSnapshot s = engine.stats();
  EXPECT_EQ(s.requests, 8u);
  EXPECT_GE(s.avg_batch_size, 1.0);
  // Identical repeated query → one miss per distinct (user, ovt), rest hits.
  EXPECT_GT(s.cache_hits, 0u);
  EXPECT_GT(s.cache_hit_rate, 0.5);
}

TEST(ServingEngine, LifecycleAndValidation) {
  EngineFixture f;
  ServingEngine engine(f.model, f.task, f.serving_config(1, 1));
  Rng qr(99);
  const data::Sample q = f.task.sample(0, qr);
  EXPECT_THROW(engine.submit(0, q), Error);  // not started
  EXPECT_THROW(engine.start(), Error);       // no deployments

  core::NvcimPtFramework fw(f.model, f.task, f.framework_config(600));
  fw.initialize_autoencoder(12);
  EXPECT_THROW(fw.export_deployment(), Error);  // nothing trained
  fw.train_from_buffer(f.task.make_user(40, 10, 0).train);
  engine.add_deployment(0, fw.export_deployment());
  engine.start();
  // Unknown users settle the future with a structured UnknownUser error
  // instead of throwing out of submit() — async callers see it on .get().
  EXPECT_THROW(engine.submit(42, q).get(), UnknownUser);
  EXPECT_THROW(engine.add_deployment(1, core::TrainedDeployment{}), Error);  // running
  engine.stop();
  engine.stop();  // idempotent
}

TEST(ServingEngine, BadRequestFailsItsFutureNotTheWorker) {
  EngineFixture f;
  ServingEngine engine(f.model, f.task, f.serving_config(1, 1));
  core::NvcimPtFramework fw(f.model, f.task, f.framework_config(700));
  fw.initialize_autoencoder(12);
  fw.train_from_buffer(f.task.make_user(50, 10, 0).train);
  engine.add_deployment(0, fw.export_deployment());
  engine.start();

  // An empty token sequence is rejected deep inside the backbone; the
  // exception must surface through this request's future only.
  data::Sample bad;  // empty input
  auto bad_future = engine.submit(0, bad);
  EXPECT_THROW(bad_future.get(), Error);

  // The worker survived and keeps serving valid traffic.
  Rng qr(111);
  const Response r = engine.serve(0, f.task.sample(0, qr));
  EXPECT_LT(r.ovt_index, engine.deployment(0).n_ovts());
  engine.stop();
}

}  // namespace
}  // namespace nvcim::serve
