#include <gtest/gtest.h>

#include <set>

#include "nvcim/data/lamp.hpp"

namespace nvcim::data {
namespace {

TEST(LampConfigs, FiveBenchmarks) {
  const auto all = all_lamp_configs();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "LaMP-1");
  EXPECT_EQ(all[0].kind, TaskKind::Classification);
  EXPECT_EQ(all[0].n_labels, 2u);
  EXPECT_EQ(all[2].n_labels, 5u);  // rating task
  EXPECT_EQ(all[3].kind, TaskKind::Generation);
  EXPECT_EQ(all[4].kind, TaskKind::Generation);
}

TEST(LampTask, VocabularyIsFrozenAndSized) {
  LampTask task(lamp1_config());
  EXPECT_TRUE(task.tokenizer().frozen());
  // 5 specials + 6 dom + 6 cue + 12 content + 2 labels
  EXPECT_EQ(task.vocab_size(), 31u);
  EXPECT_EQ(task.label_ids().size(), 2u);
}

TEST(LampTask, GenerationTaskHasNoLabels) {
  LampTask task(lamp5_config());
  EXPECT_TRUE(task.label_ids().empty());
}

TEST(LampTask, SampleStructure) {
  LampTask task(lamp1_config());
  Rng rng(1);
  const Sample s = task.sample(2, rng);
  // [bos, cue, cue, w, w, sep]
  ASSERT_EQ(s.input.size(), 6u);
  EXPECT_EQ(s.input.front(), task.tokenizer().bos_id());
  EXPECT_EQ(s.input[1], s.input[2]);  // repeated cue
  EXPECT_EQ(s.input.back(), task.tokenizer().sep_id());
  EXPECT_EQ(s.domain, 2u);
  EXPECT_GE(s.label, 0);
  EXPECT_LT(s.label, 2);
  EXPECT_EQ(s.completion.back(), task.eos_id());
  EXPECT_TRUE(s.example.prefix_tokens.empty());  // user samples carry no context
}

TEST(LampTask, ExplicitDomainGoesToPrefix) {
  LampTask task(lamp1_config());
  Rng rng(2);
  const Sample s = task.sample(3, rng, /*explicit_domain=*/true);
  ASSERT_FALSE(s.example.prefix_tokens.empty());
  EXPECT_LE(s.example.prefix_tokens.size(), 3u);
  // All prefix tokens are the same domain token.
  for (int t : s.example.prefix_tokens) EXPECT_EQ(t, s.example.prefix_tokens[0]);
}

TEST(LampTask, LabelDependsOnDomain) {
  // Same RNG stream replayed for two domains must give different labels for
  // at least some content (the domain-conditional mapping).
  LampTask task(lamp1_config());
  int diffs = 0;
  for (int i = 0; i < 32; ++i) {
    Rng r1(100 + i), r2(100 + i);
    const Sample a = task.sample(0, r1);
    const Sample b = task.sample(1, r2);
    if (a.label != b.label) ++diffs;
  }
  EXPECT_GT(diffs, 8);
}

TEST(LampTask, CueIsSharedBetweenAdjacentDomains) {
  LampTask task(lamp1_config());
  // Collect cue tokens per domain over many draws; adjacent domains must
  // overlap in exactly one cue.
  std::vector<std::set<int>> cues(6);
  Rng rng(7);
  for (std::size_t d = 0; d < 6; ++d)
    for (int i = 0; i < 64; ++i) cues[d].insert(task.sample(d, rng).input[1]);
  for (std::size_t d = 0; d < 6; ++d) {
    EXPECT_EQ(cues[d].size(), 2u);
    std::set<int> inter;
    for (int c : cues[d])
      if (cues[(d + 1) % 6].count(c)) inter.insert(c);
    EXPECT_EQ(inter.size(), 1u) << "domains " << d << " and " << (d + 1) % 6;
  }
}

TEST(LampTask, GenerationCompletionLength) {
  LampTask task(lamp5_config());
  Rng rng(3);
  const Sample s = task.sample(1, rng);
  EXPECT_EQ(s.completion.size(), task.config().gen_len + 1);  // + eos
  EXPECT_EQ(s.label, -1);
}

TEST(LampTask, GenerationOutputDependsOnDomain) {
  LampTask task(lamp5_config());
  int diffs = 0;
  for (int i = 0; i < 32; ++i) {
    Rng r1(200 + i), r2(200 + i);
    const Sample a = task.sample(0, r1);
    const Sample b = task.sample(2, r2);
    if (a.completion != b.completion) ++diffs;
  }
  EXPECT_GT(diffs, 16);
}

TEST(LampTask, ReferenceWordsStripEos) {
  LampTask task(lamp5_config());
  Rng rng(4);
  const Sample s = task.sample(0, rng);
  const auto ref = LampTask::reference_words(s);
  EXPECT_EQ(ref.size(), s.completion.size() - 1);
}

TEST(LampTask, PretrainingCorpusMixesContexts) {
  LampTask task(lamp1_config());
  const auto corpus = task.pretraining_corpus(200, 9);
  ASSERT_EQ(corpus.size(), 200u);
  int with_ctx = 0;
  for (const auto& ex : corpus)
    if (!ex.prefix_tokens.empty()) ++with_ctx;
  // explicit_domain_frac defaults to 0.7
  EXPECT_GT(with_ctx, 100);
  EXPECT_LT(with_ctx, 180);
}

TEST(LampTask, UserStreamHasDomainShift) {
  LampTask task(lamp1_config());
  const UserData u = task.make_user(0, 25, 10);
  EXPECT_EQ(u.train.size(), 25u);
  EXPECT_EQ(u.test.size(), 10u);
  EXPECT_EQ(u.domains.size(), task.config().domains_per_user);

  // Blocks of shift_block samples share a domain; at least one shift occurs.
  const std::size_t block = task.config().shift_block;
  int shifts = 0;
  for (std::size_t i = 1; i < u.train.size(); ++i) {
    if (u.train[i].domain != u.train[i - 1].domain) {
      ++shifts;
      EXPECT_EQ(i % block, 0u) << "shift inside a block at " << i;
    }
  }
  EXPECT_GT(shifts, 0);

  // All samples come from the user's domain set.
  std::set<std::size_t> dset(u.domains.begin(), u.domains.end());
  for (const Sample& s : u.train) EXPECT_TRUE(dset.count(s.domain));
  for (const Sample& s : u.test) EXPECT_TRUE(dset.count(s.domain));
}

TEST(LampTask, UsersAreDeterministicAndDistinct) {
  LampTask task(lamp1_config());
  const UserData a1 = task.make_user(1, 10, 5);
  const UserData a2 = task.make_user(1, 10, 5);
  EXPECT_EQ(a1.train[0].input, a2.train[0].input);
  const UserData b = task.make_user(2, 10, 5);
  bool differs = a1.domains != b.domains;
  for (std::size_t i = 0; !differs && i < 10; ++i)
    differs = a1.train[i].input != b.train[i].input;
  EXPECT_TRUE(differs);
}

TEST(DataBuffer, FillsAndReportsFull) {
  LampTask task(lamp1_config());
  Rng rng(5);
  DataBuffer buf(3);
  EXPECT_FALSE(buf.full());
  EXPECT_FALSE(buf.push(task.sample(0, rng)));
  EXPECT_FALSE(buf.push(task.sample(0, rng)));
  EXPECT_TRUE(buf.push(task.sample(1, rng)));
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_THROW(buf.push(task.sample(1, rng)), Error);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
}

TEST(DataBuffer, ZeroCapacityRejected) { EXPECT_THROW(DataBuffer(0), Error); }

class LampTaskParam : public ::testing::TestWithParam<LampConfig> {};

TEST_P(LampTaskParam, SamplesAreWellFormedAcrossDomains) {
  LampTask task(GetParam());
  Rng rng(11);
  for (std::size_t d = 0; d < task.config().n_domains; ++d) {
    const Sample s = task.sample(d, rng);
    EXPECT_EQ(s.example.tokens.size(), s.example.targets.size());
    // At least one trained target position.
    bool has_target = false;
    for (int t : s.example.targets) has_target |= t >= 0;
    EXPECT_TRUE(has_target);
    if (task.config().kind == TaskKind::Classification) {
      EXPECT_GE(s.label, 0);
      EXPECT_LT(s.label, static_cast<int>(task.config().n_labels));
    } else {
      EXPECT_EQ(s.label, -1);
      EXPECT_EQ(s.completion.size(), task.config().gen_len + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, LampTaskParam,
                         ::testing::ValuesIn(all_lamp_configs()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace nvcim::data
