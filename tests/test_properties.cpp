// Property-based invariant tests across modules: algebraic identities and
// monotonicity laws that must hold for every seed/shape in the sweep, not
// just hand-picked examples.
#include <gtest/gtest.h>

#include <cmath>

#include "nvcim/cim/accelerator.hpp"
#include "nvcim/cluster/kmeans.hpp"
#include "nvcim/eval/metrics.hpp"
#include "nvcim/retrieval/search.hpp"

namespace nvcim {
namespace {

// ---------------------------------------------------------------------------
// Matrix algebra laws over random seeds
// ---------------------------------------------------------------------------

class MatrixLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixLaws, MatmulDistributesOverAddition) {
  Rng rng(GetParam());
  const Matrix a = Matrix::randn(3, 4, rng);
  const Matrix b = Matrix::randn(3, 4, rng);
  const Matrix c = Matrix::randn(4, 5, rng);
  EXPECT_TRUE(allclose(matmul(a + b, c), matmul(a, c) + matmul(b, c), 1e-4f, 1e-4f));
}

TEST_P(MatrixLaws, TransposeReversesMatmul) {
  Rng rng(GetParam());
  const Matrix a = Matrix::randn(3, 4, rng);
  const Matrix b = Matrix::randn(4, 5, rng);
  EXPECT_TRUE(allclose(matmul(a, b).transposed(),
                       matmul(b.transposed(), a.transposed()), 1e-4f, 1e-4f));
}

TEST_P(MatrixLaws, DotIsSymmetricAndCauchySchwarz) {
  Rng rng(GetParam());
  const Matrix a = Matrix::randn(2, 6, rng);
  const Matrix b = Matrix::randn(2, 6, rng);
  EXPECT_NEAR(dot(a, b), dot(b, a), 1e-4f);
  EXPECT_LE(std::fabs(dot(a, b)),
            a.frobenius_norm() * b.frobenius_norm() * (1.0f + 1e-5f));
  EXPECT_LE(std::fabs(cosine_similarity(a, b)), 1.0f + 1e-5f);
}

TEST_P(MatrixLaws, PoolingIsLinear) {
  Rng rng(GetParam());
  const Matrix a = Matrix::randn(1, 17, rng);
  const Matrix b = Matrix::randn(1, 17, rng);
  for (std::size_t scale : {2u, 3u, 4u}) {
    const Matrix lhs = average_pool_flat(a + b, scale);
    const Matrix rhs = average_pool_flat(a, scale) + average_pool_flat(b, scale);
    EXPECT_TRUE(allclose(lhs, rhs, 1e-5f, 1e-5f));
  }
}

TEST_P(MatrixLaws, ResampleRowsPreservesColumnMeansOnExactDivisors) {
  Rng rng(GetParam());
  const Matrix x = Matrix::randn(12, 5, rng);
  const Matrix r = resample_rows(x, 4);  // 12 / 4 exact
  for (std::size_t c = 0; c < 5; ++c) {
    double mx = 0.0, mr = 0.0;
    for (std::size_t i = 0; i < 12; ++i) mx += x(i, c);
    for (std::size_t i = 0; i < 4; ++i) mr += r(i, c);
    EXPECT_NEAR(mx / 12.0, mr / 4.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixLaws, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// ---------------------------------------------------------------------------
// Retrieval laws
// ---------------------------------------------------------------------------

class RetrievalLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RetrievalLaws, WmsdpIsBilinear) {
  Rng rng(GetParam());
  const Matrix e1 = Matrix::randn(1, 24, rng);
  const Matrix e2 = Matrix::randn(1, 24, rng);
  const Matrix p = Matrix::randn(1, 24, rng);
  const retrieval::ScaledSearchConfig cfg;
  EXPECT_NEAR(retrieval::wmsdp(e1 + e2, p, cfg),
              retrieval::wmsdp(e1, p, cfg) + retrieval::wmsdp(e2, p, cfg), 1e-3f);
  EXPECT_NEAR(retrieval::wmsdp(e1 * 2.0f, p, cfg), 2.0f * retrieval::wmsdp(e1, p, cfg),
              1e-3f);
}

TEST_P(RetrievalLaws, WmsdpIsSymmetric) {
  Rng rng(GetParam());
  const Matrix a = Matrix::randn(1, 20, rng);
  const Matrix b = Matrix::randn(1, 20, rng);
  EXPECT_NEAR(retrieval::wmsdp(a, b), retrieval::wmsdp(b, a), 1e-4f);
}

TEST_P(RetrievalLaws, ExactRetrievalPicksSelfFromOrthogonalSet) {
  // With near-orthogonal keys, both MIPS and SSA must retrieve the key
  // itself when queried with it.
  Rng rng(GetParam());
  std::vector<Matrix> keys;
  for (int k = 0; k < 6; ++k) keys.push_back(Matrix::randn(1, 64, rng));
  for (std::size_t k = 0; k < keys.size(); ++k) {
    EXPECT_EQ(retrieval::mips_retrieve_exact(keys[k], keys), k);
    EXPECT_EQ(retrieval::ssa_retrieve_exact(keys[k], keys), k);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetrievalLaws, ::testing::Values(4, 9, 16, 25, 36));

// ---------------------------------------------------------------------------
// Crossbar laws
// ---------------------------------------------------------------------------

class CrossbarLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossbarLaws, NoiselessMatvecIsLinearInInput) {
  cim::CrossbarConfig cfg;
  cfg.rows = 24;
  cfg.cols = 8;
  cfg.adc_bits = 0;
  cim::Crossbar xb(cfg);
  Rng rng(GetParam());
  Matrix w(16, 6);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.at_flat(i) = static_cast<float>(static_cast<long>(rng.uniform_index(2001)) - 1000);
  nvm::VariationModel noiseless{nvm::rram1(), 0.0};
  xb.program(w, noiseless, rng);
  const Matrix x1 = Matrix::randn(1, 16, rng);
  const Matrix x2 = Matrix::randn(1, 16, rng);
  const Matrix lhs = xb.matvec(x1 + x2);
  const Matrix rhs = xb.matvec(x1) + xb.matvec(x2);
  EXPECT_TRUE(allclose(lhs, rhs, 0.2f, 1e-3f));
}

TEST_P(CrossbarLaws, ReadbackErrorGrowsMonotonicallyWithSigma) {
  Rng wrng(GetParam());
  Matrix w(20, 10);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.at_flat(i) = static_cast<float>(static_cast<long>(wrng.uniform_index(4001)) - 2000);
  cim::CrossbarConfig cfg;
  cfg.rows = 20;
  cfg.cols = 10;
  double prev = -1.0;
  for (double sigma : {0.02, 0.1, 0.3}) {
    // Average over several draws to make the monotonicity robust.
    double err = 0.0;
    for (int rep = 0; rep < 4; ++rep) {
      cim::Crossbar xb(cfg);
      Rng rng(1000 * rep + 7);
      xb.program(w, {nvm::fefet3(), sigma}, rng);
      err += (xb.read_values() - w).frobenius_norm();
    }
    EXPECT_GT(err, prev);
    prev = err;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossbarLaws, ::testing::Values(3, 7, 11));

// ---------------------------------------------------------------------------
// Clustering + metric laws
// ---------------------------------------------------------------------------

class ClusterLaws : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClusterLaws, InertiaNonIncreasingInK) {
  Rng rng(5);
  std::vector<Matrix> pts;
  for (int i = 0; i < 30; ++i) pts.push_back(Matrix::randn(1, 4, rng));
  const std::size_t k = GetParam();
  cluster::KMeansConfig cfg;
  cfg.seed = 9;
  const double inertia_k = cluster::kmeans(pts, k, cfg).inertia;
  const double inertia_k1 = cluster::kmeans(pts, k + 3, cfg).inertia;
  // k-means++ with enough extra clusters must not fit worse.
  EXPECT_LE(inertia_k1, inertia_k * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Ks, ClusterLaws, ::testing::Values(1, 2, 4, 6));

class MetricLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricLaws, RougeScoresAreBoundedAndConsistent) {
  Rng rng(GetParam());
  std::vector<int> hyp, ref;
  for (int i = 0; i < 8; ++i) hyp.push_back(static_cast<int>(rng.uniform_index(6)));
  for (int i = 0; i < 6; ++i) ref.push_back(static_cast<int>(rng.uniform_index(6)));
  const auto r1 = eval::rouge1(hyp, ref);
  const auto rl = eval::rouge_l(hyp, ref);
  for (double v : {r1.precision, r1.recall, r1.f1, rl.precision, rl.recall, rl.f1}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // LCS overlap can never exceed clipped-bag overlap.
  EXPECT_LE(rl.recall, r1.recall + 1e-12);
  EXPECT_LE(rl.precision, r1.precision + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricLaws, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace nvcim
