// Property tests for the staged batched encode pipeline: every batched
// layer (embed, resample, autoencoder encode, query representation, the
// serving engine) must agree with its serial counterpart bit-for-bit.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "nvcim/serve/engine.hpp"

namespace nvcim {
namespace {

llm::TinyLM tiny_model(std::size_t vocab, std::size_t d_model, std::uint64_t seed) {
  llm::TinyLmConfig cfg;
  cfg.vocab = vocab;
  cfg.d_model = d_model;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.ffn_hidden = 2 * d_model;
  cfg.max_seq = 40;
  cfg.prompt_slots = 8;
  return llm::TinyLM(cfg, seed);
}

std::vector<int> random_tokens(std::size_t len, std::size_t vocab, Rng& rng) {
  std::vector<int> t(len);
  for (int& v : t) v = static_cast<int>(rng.uniform_index(vocab));
  return t;
}

std::shared_ptr<const compress::Autoencoder> make_autoencoder(std::size_t input_dim,
                                                              std::size_t code_dim,
                                                              std::uint64_t seed) {
  compress::AutoencoderConfig cfg;
  cfg.input_dim = input_dim;
  cfg.code_dim = code_dim;
  cfg.hidden_dim = 2 * input_dim;
  cfg.seed = seed;
  return std::make_shared<const compress::Autoencoder>(cfg);
}

/// Synthetic serve-side deployment: random keys/codes in the n_vt×code_dim
/// shape, sharing the given autoencoder.
core::TrainedDeployment synthetic_deployment(
    std::shared_ptr<const compress::Autoencoder> autoencoder, std::size_t n_vt,
    std::size_t code_dim, std::size_t n_keys, Rng& rng) {
  core::TrainedDeployment d;
  d.autoencoder = std::move(autoencoder);
  d.n_virtual_tokens = n_vt;
  for (std::size_t k = 0; k < n_keys; ++k) {
    d.keys.push_back(Matrix::rand_uniform(n_vt, code_dim, rng, -1.0f, 1.0f));
    d.stored_codes.push_back(Matrix::rand_uniform(n_vt, code_dim, rng, -1.0f, 1.0f));
    d.domains.push_back(k);
  }
  return d;
}

// ---------------------------------------------------------------------------
// Layer-by-layer batched ≡ serial, bit-for-bit.
// ---------------------------------------------------------------------------

TEST(BatchedEncode, EmbedBatchMatchesEmbedBitForBit) {
  const llm::TinyLM model = tiny_model(32, 12, 3);
  Rng rng(41);
  std::vector<std::vector<int>> seqs;
  for (std::size_t len : {1u, 2u, 7u, 13u}) seqs.push_back(random_tokens(len, 32, rng));
  std::vector<const std::vector<int>*> ptrs;
  for (const auto& s : seqs) ptrs.push_back(&s);
  const std::vector<Matrix> batched = model.embed_batch(ptrs);
  ASSERT_EQ(batched.size(), seqs.size());
  for (std::size_t b = 0; b < seqs.size(); ++b) {
    const Matrix serial = model.embed(seqs[b]);
    ASSERT_TRUE(serial.same_shape(batched[b]));
    for (std::size_t i = 0; i < serial.size(); ++i)
      ASSERT_EQ(serial.at_flat(i), batched[b].at_flat(i)) << "seq " << b << " flat " << i;
  }
}

TEST(BatchedEncode, EncodeIntoAndDecodeIntoMatchAllocatingPath) {
  const auto ae = make_autoencoder(10, 6, 5);
  Rng rng(42);
  const Matrix x = Matrix::randn(7, 10, rng);
  const Matrix code = ae->encode(x);

  compress::Autoencoder::Scratch scratch;
  Matrix out;
  ae->encode_into(x, out, &scratch);
  ASSERT_TRUE(out.same_shape(code));
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out.at_flat(i), code.at_flat(i));

  const Matrix rec = ae->decode(code);
  Matrix rec_out;
  ae->decode_into(code, rec_out, &scratch);
  ASSERT_TRUE(rec_out.same_shape(rec));
  for (std::size_t i = 0; i < rec_out.size(); ++i)
    ASSERT_EQ(rec_out.at_flat(i), rec.at_flat(i));
}

TEST(BatchedEncode, EncodeRowsAreIndependent) {
  // Encoding a stack of rows must equal encoding each row alone — the
  // property that makes the cross-user fused GEMM exact.
  const auto ae = make_autoencoder(8, 5, 6);
  Rng rng(43);
  const Matrix stacked = Matrix::randn(9, 8, rng);
  const Matrix batch_code = ae->encode(stacked);
  for (std::size_t r = 0; r < stacked.rows(); ++r) {
    const Matrix one = ae->encode(stacked.row(r));
    for (std::size_t c = 0; c < one.cols(); ++c)
      ASSERT_EQ(one(0, c), batch_code(r, c)) << "row " << r << " col " << c;
  }
}

// ---------------------------------------------------------------------------
// core::TrainedDeployment::query_representation_batch.
// ---------------------------------------------------------------------------

TEST(BatchedEncode, QueryRepresentationBatchMatchesSerialAcrossShapes) {
  Rng rng(44);
  for (const std::size_t n_vt : {1u, 3u, 4u}) {
    for (const std::size_t code_dim : {8u, 24u}) {
      const llm::TinyLM model = tiny_model(48, 16, 7 + n_vt);
      const auto ae = make_autoencoder(16, code_dim, 11 + code_dim);
      for (const std::size_t B : {1u, 2u, 5u, 9u}) {
        // All deployments share one autoencoder → one fused group.
        std::vector<core::TrainedDeployment> deps;
        std::vector<data::Sample> queries;
        for (std::size_t b = 0; b < B; ++b) {
          deps.push_back(synthetic_deployment(ae, n_vt, code_dim, 2, rng));
          data::Sample q;
          q.input = random_tokens(1 + rng.uniform_index(12), 48, rng);
          queries.push_back(std::move(q));
        }
        std::vector<const core::TrainedDeployment*> dep_ptrs;
        std::vector<const data::Sample*> query_ptrs;
        for (std::size_t b = 0; b < B; ++b) {
          dep_ptrs.push_back(&deps[b]);
          query_ptrs.push_back(&queries[b]);
        }
        const Matrix batched =
            core::TrainedDeployment::query_representation_batch(model, dep_ptrs, query_ptrs);
        ASSERT_EQ(batched.rows(), B);
        ASSERT_EQ(batched.cols(), n_vt * code_dim);
        for (std::size_t b = 0; b < B; ++b) {
          const Matrix serial =
              deps[b].query_representation(model, queries[b]).flattened();
          for (std::size_t c = 0; c < serial.size(); ++c)
            ASSERT_EQ(serial.at_flat(c), batched(b, c))
                << "n_vt " << n_vt << " code " << code_dim << " B " << B << " row " << b;
        }
      }
    }
  }
}

TEST(BatchedEncode, QueryRepresentationBatchRejectsMixedAutoencoders) {
  const llm::TinyLM model = tiny_model(32, 12, 9);
  Rng rng(45);
  const auto ae_a = make_autoencoder(12, 6, 1);
  const auto ae_b = make_autoencoder(12, 6, 2);
  core::TrainedDeployment da = synthetic_deployment(ae_a, 2, 6, 1, rng);
  core::TrainedDeployment db = synthetic_deployment(ae_b, 2, 6, 1, rng);
  data::Sample q;
  q.input = random_tokens(4, 32, rng);
  EXPECT_THROW(core::TrainedDeployment::query_representation_batch(model, {&da, &db}, {&q, &q}),
               Error);
}

TEST(BatchedEncode, ExportedDeploymentSharesAutoencoderUntilRetrain) {
  // export_deployment() aliases the framework's autoencoder (enabling fused
  // serving); the next mutating train step must clone, leaving the exported
  // snapshot untouched.
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model = tiny_model(task.vocab_size(), 16, 13);
  core::FrameworkConfig cfg;
  cfg.tuner.n_virtual_tokens = 4;
  cfg.tuner.steps = 4;
  cfg.autoencoder.steps = 10;
  cfg.autoencoder.code_dim = 8;
  cfg.crossbar.rows = 64;
  cfg.crossbar.cols = 16;
  cfg.noise_aware = false;
  core::NvcimPtFramework fw(model, task, cfg);
  fw.initialize_autoencoder(8);
  fw.train_from_buffer(task.make_user(0, 8, 0).train);
  const core::TrainedDeployment dep = fw.export_deployment();
  ASSERT_EQ(dep.autoencoder.get(), &fw.autoencoder());  // shared, not copied

  Rng rng(46);
  data::Sample probe;
  probe.input = random_tokens(6, task.vocab_size(), rng);
  const Matrix before = dep.query_representation(model, probe);

  // Retraining mutates the framework's encoder — through a fresh clone.
  fw.train_from_buffer(task.make_user(1, 8, 0).train);
  EXPECT_NE(dep.autoencoder.get(), &fw.autoencoder());
  const Matrix after = dep.query_representation(model, probe);
  ASSERT_TRUE(before.same_shape(after));
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before.at_flat(i), after.at_flat(i)) << "deployment encode drifted, flat " << i;
}

// ---------------------------------------------------------------------------
// Full engine: fused batched serving ≡ serial reference path.
// ---------------------------------------------------------------------------

serve::ServingConfig noise_free_serving(std::size_t n_threads, std::size_t max_batch) {
  serve::ServingConfig cfg;
  cfg.n_shards = 2;
  cfg.n_threads = n_threads;
  cfg.max_batch = max_batch;
  cfg.crossbar.rows = 64;
  cfg.crossbar.cols = 16;
  cfg.crossbar.adc_bits = 0;  // ideal ADC
  cfg.variation = {nvm::fefet3(), 0.0};
  return cfg;
}

TEST(BatchedEncode, EngineWithSharedAutoencoderMatchesSerialReference) {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model = tiny_model(task.vocab_size(), 16, 17);
  const std::size_t n_vt = 4, code_dim = 16, n_users = 6;
  const auto shared_ae = make_autoencoder(16, code_dim, 19);

  serve::ServingEngine engine(model, task, noise_free_serving(2, 8));
  Rng rng(47);
  for (std::size_t u = 0; u < n_users; ++u)
    engine.add_deployment(u, synthetic_deployment(shared_ae, n_vt, code_dim, 5, rng));
  engine.start();

  Rng qr(48);
  std::vector<std::pair<std::size_t, data::Sample>> requests;
  for (int t = 0; t < 32; ++t) {
    data::Sample q;
    q.input = random_tokens(1 + qr.uniform_index(10), task.vocab_size(), qr);
    requests.emplace_back(qr.uniform_index(n_users), std::move(q));
  }
  std::vector<std::size_t> serial;
  for (const auto& [u, q] : requests) serial.push_back(engine.retrieve_serial(u, q));

  std::vector<std::future<serve::Response>> futures;
  for (const auto& [u, q] : requests) futures.push_back(engine.submit(u, q));
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(futures[i].get().ovt_index, serial[i]) << "request " << i;
  engine.stop();

  const serve::StatsSnapshot s = engine.stats();
  EXPECT_EQ(s.requests, requests.size());
  EXPECT_GE(s.encode_ms, 0.0);
  EXPECT_GT(s.encode_ms + s.retrieve_ms + s.decode_ms + s.classify_ms, 0.0);
}

TEST(BatchedEncode, SingleMemberBatchThroughEngineMatchesSerial) {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model = tiny_model(task.vocab_size(), 16, 23);
  const auto ae = make_autoencoder(16, 12, 29);
  serve::ServingEngine engine(model, task, noise_free_serving(1, 1));
  Rng rng(49);
  engine.add_deployment(0, synthetic_deployment(ae, 3, 12, 4, rng));
  engine.start();
  Rng qr(50);
  for (int t = 0; t < 8; ++t) {
    data::Sample q;
    q.input = random_tokens(1 + qr.uniform_index(8), task.vocab_size(), qr);
    const std::size_t expect = engine.retrieve_serial(0, q);
    EXPECT_EQ(engine.serve(0, q).ovt_index, expect) << "trial " << t;
  }
  engine.stop();
}

// ---------------------------------------------------------------------------
// Single-flight decoded-prompt fetch.
// ---------------------------------------------------------------------------

TEST(SingleFlight, ConcurrentMissesDecodeEachKeyExactlyOnce) {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model = tiny_model(task.vocab_size(), 16, 31);
  const std::size_t n_ovts = 6;
  const auto ae = make_autoencoder(16, 12, 37);
  serve::ServingConfig cfg = noise_free_serving(1, 1);
  cfg.cache_capacity = 2 * n_ovts;  // no evictions → decode count is exact
  serve::ServingEngine engine(model, task, cfg);
  Rng rng(51);
  engine.add_deployment(0, synthetic_deployment(ae, 3, 12, n_ovts, rng));

  // 8 threads hammer every prompt concurrently. With single-flight fetches
  // and no evictions, each (user, ovt) key is decoded exactly once, however
  // the races resolve; every caller sees the same cached object.
  const std::size_t n_threads = 8;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::shared_ptr<const Matrix>> first(n_ovts);
  for (std::size_t i = 0; i < n_ovts; ++i) first[i] = engine.prompt(0, i);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([&engine, &first, &mismatches] {
      for (int round = 0; round < 20; ++round)
        for (std::size_t i = 0; i < n_ovts; ++i)
          if (engine.prompt(0, i).get() != first[i].get()) ++mismatches;
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(engine.prompt_decodes(), n_ovts);
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(SingleFlight, ColdConcurrentFetchesOfOneKeyCoalesce) {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model = tiny_model(task.vocab_size(), 16, 41);
  const auto ae = make_autoencoder(16, 12, 43);
  serve::ServingEngine engine(model, task, noise_free_serving(1, 1));
  Rng rng(53);
  engine.add_deployment(0, synthetic_deployment(ae, 3, 12, 3, rng));

  // Cold cache, many threads racing on the same key: exactly one decode.
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t)
    threads.emplace_back([&engine] {
      for (int round = 0; round < 5; ++round) (void)engine.prompt(0, 0);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(engine.prompt_decodes(), 1u);
}

}  // namespace
}  // namespace nvcim
