#include <gtest/gtest.h>

#include "nvcim/core/framework.hpp"
#include "nvcim/llm/pretrain.hpp"

namespace nvcim::core {
namespace {

/// Small but real setup: tiny backbone, briefly pretrained so embeddings are
/// meaningful; framework invariants are checked, not benchmark accuracy.
struct Fixture {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;

  Fixture() : model(make_model()) {}

  llm::TinyLM make_model() {
    llm::TinyLmConfig cfg;
    cfg.vocab = task.vocab_size();
    cfg.d_model = 16;
    cfg.n_layers = 1;
    cfg.n_heads = 2;
    cfg.ffn_hidden = 32;
    cfg.max_seq = 40;
    cfg.prompt_slots = 8;
    llm::TinyLM m(cfg, 5);
    llm::PretrainConfig pt;
    pt.steps = 60;
    pt.batch_size = 8;
    llm::pretrain(m, task.pretraining_corpus(120, 3), pt);
    return m;
  }

  FrameworkConfig config() {
    FrameworkConfig cfg;
    cfg.tuner.n_virtual_tokens = 4;
    cfg.tuner.steps = 15;
    cfg.autoencoder.steps = 60;
    cfg.autoencoder.code_dim = 24;
    cfg.variation = {nvm::fefet3(), 0.1};
    return cfg;
  }

  std::vector<data::Sample> buffer(std::size_t n, std::uint64_t seed = 9) {
    const data::UserData u = task.make_user(seed, n, 0);
    return u.train;
  }
};

TEST(Framework, TrainingStoresKPerBuffer) {
  Fixture f;
  NvcimPtFramework fw(f.model, f.task, f.config());
  fw.initialize_autoencoder(16);
  fw.train_from_buffer(f.buffer(12));
  EXPECT_EQ(fw.last_selected_k(), cluster::select_k(12, {}));
  EXPECT_EQ(fw.n_stored_ovts(), fw.last_selected_k());
  EXPECT_EQ(fw.ovt_domains().size(), fw.n_stored_ovts());
}

TEST(Framework, OvtsAccumulateAcrossBuffers) {
  Fixture f;
  NvcimPtFramework fw(f.model, f.task, f.config());
  fw.initialize_autoencoder(16);
  fw.train_from_buffer(f.buffer(10, 1));
  const std::size_t first = fw.n_stored_ovts();
  fw.train_from_buffer(f.buffer(10, 2));
  EXPECT_GT(fw.n_stored_ovts(), first);
}

TEST(Framework, InferenceBeforeTrainingThrows) {
  Fixture f;
  NvcimPtFramework fw(f.model, f.task, f.config());
  fw.initialize_autoencoder(16);
  Rng rng(1);
  const data::Sample q = f.task.sample(0, rng);
  EXPECT_THROW(fw.classify(q), Error);
}

TEST(Framework, RestoredPromptShapeMatchesTuner) {
  Fixture f;
  FrameworkConfig cfg = f.config();
  NvcimPtFramework fw(f.model, f.task, cfg);
  fw.initialize_autoencoder(16);
  fw.train_from_buffer(f.buffer(10));
  for (const Matrix& p : fw.restored_prompts()) {
    EXPECT_EQ(p.rows(), cfg.tuner.n_virtual_tokens);
    EXPECT_EQ(p.cols(), f.model.config().d_model);
    EXPECT_TRUE(p.all_finite());
  }
}

TEST(Framework, QueryRepresentationShape) {
  Fixture f;
  FrameworkConfig cfg = f.config();
  NvcimPtFramework fw(f.model, f.task, cfg);
  fw.initialize_autoencoder(16);
  Rng rng(2);
  const Matrix rep = fw.query_representation(f.task.sample(1, rng));
  EXPECT_EQ(rep.rows(), cfg.tuner.n_virtual_tokens);
  EXPECT_EQ(rep.cols(), cfg.autoencoder.code_dim);
}

TEST(Framework, ClassifyReturnsValidLabel) {
  Fixture f;
  NvcimPtFramework fw(f.model, f.task, f.config());
  fw.initialize_autoencoder(16);
  fw.train_from_buffer(f.buffer(10));
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    const data::Sample q = f.task.sample(i % 6, rng);
    EXPECT_LT(fw.classify(q), f.task.label_ids().size());
  }
}

TEST(Framework, RetrieveIndexInRange) {
  Fixture f;
  NvcimPtFramework fw(f.model, f.task, f.config());
  fw.initialize_autoencoder(16);
  fw.train_from_buffer(f.buffer(10));
  Rng rng(4);
  for (int i = 0; i < 8; ++i)
    EXPECT_LT(fw.retrieve_index(f.task.sample(i % 6, rng)), fw.n_stored_ovts());
}

TEST(Framework, EvaluateClassificationIsZeroOrOne) {
  Fixture f;
  NvcimPtFramework fw(f.model, f.task, f.config());
  fw.initialize_autoencoder(16);
  fw.train_from_buffer(f.buffer(10));
  Rng rng(5);
  const data::Sample q = f.task.sample(2, rng);
  const double v = fw.evaluate(q, rng);
  EXPECT_TRUE(v == 0.0 || v == 1.0);
}

TEST(Framework, GenerationTaskProducesRougeInUnitInterval) {
  data::LampTask gen_task(data::lamp5_config());
  llm::TinyLmConfig mcfg;
  mcfg.vocab = gen_task.vocab_size();
  mcfg.d_model = 16;
  mcfg.n_layers = 1;
  mcfg.n_heads = 2;
  mcfg.ffn_hidden = 32;
  mcfg.max_seq = 40;
  mcfg.prompt_slots = 8;
  llm::TinyLM model(mcfg, 5);
  llm::PretrainConfig pt;
  pt.steps = 40;
  llm::pretrain(model, gen_task.pretraining_corpus(80, 3), pt);

  FrameworkConfig cfg;
  cfg.tuner.n_virtual_tokens = 4;
  cfg.tuner.steps = 10;
  cfg.autoencoder.steps = 50;
  cfg.autoencoder.code_dim = 24;
  cfg.variation = {nvm::rram1(), 0.1};
  NvcimPtFramework fw(model, gen_task, cfg);
  fw.initialize_autoencoder(12);
  fw.train_from_buffer(gen_task.make_user(0, 10, 0).train);
  Rng rng(6);
  const data::Sample q = gen_task.sample(1, rng);
  const double r = fw.evaluate(q, rng);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1.0);
}

TEST(Framework, MipsConfigurationRuns) {
  Fixture f;
  FrameworkConfig cfg = f.config();
  cfg.retrieval_algorithm = retrieval::Algorithm::MIPS;
  cfg.payload_mitigation = mitigation::Kind::SWV;
  NvcimPtFramework fw(f.model, f.task, cfg);
  fw.initialize_autoencoder(16);
  fw.train_from_buffer(f.buffer(10));
  Rng rng(7);
  EXPECT_NO_THROW(fw.classify(f.task.sample(0, rng)));
}

TEST(Framework, EmptyBufferThrows) {
  Fixture f;
  NvcimPtFramework fw(f.model, f.task, f.config());
  EXPECT_THROW(fw.train_from_buffer({}), Error);
}

}  // namespace
}  // namespace nvcim::core
