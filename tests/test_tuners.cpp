#include <gtest/gtest.h>

#include "nvcim/llm/pretrain.hpp"
#include "nvcim/llm/tuners.hpp"

namespace nvcim::llm {
namespace {

TinyLmConfig tiny_config() {
  TinyLmConfig cfg;
  cfg.vocab = 20;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.ffn_hidden = 32;
  cfg.max_seq = 32;
  cfg.prompt_slots = 8;
  return cfg;
}

/// Loss of an example under a soft prompt (helper).
float prompt_loss(TinyLM& model, const TrainExample& ex, const Matrix& prompt) {
  autograd::Tape tape;
  nn::Binder bind(tape, true);
  autograd::Var p = tape.leaf(prompt, false);
  return model.loss(bind, ex, p).value()(0, 0);
}

TEST(SoftPromptTuner, ReducesLossOnTrainingExample) {
  TinyLM model(tiny_config(), 3);
  const TrainExample ex = make_example({2, 5, 6}, {7, 3});
  TunerConfig cfg;
  cfg.steps = 80;
  cfg.n_virtual_tokens = 4;
  Rng rng(1);
  const Matrix random_prompt = Matrix::randn(4, 16, rng, 0.5f);
  const float before = prompt_loss(model, ex, random_prompt);
  const Matrix tuned = SoftPromptTuner(cfg).train(model, {ex});
  const float after = prompt_loss(model, ex, tuned);
  EXPECT_LT(after, before);
  EXPECT_EQ(tuned.rows(), 4u);
  EXPECT_EQ(tuned.cols(), 16u);
}

TEST(SoftPromptTuner, DeterministicForSeed) {
  TinyLM model(tiny_config(), 3);
  const TrainExample ex = make_example({2, 5}, {7, 3});
  TunerConfig cfg;
  cfg.steps = 20;
  const Matrix a = SoftPromptTuner(cfg).train(model, {ex});
  const Matrix b = SoftPromptTuner(cfg).train(model, {ex});
  EXPECT_TRUE(allclose(a, b));
}

TEST(SoftPromptTuner, InitShapeValidated) {
  TinyLM model(tiny_config(), 3);
  const TrainExample ex = make_example({2, 5}, {7, 3});
  TunerConfig cfg;
  cfg.steps = 2;
  cfg.n_virtual_tokens = 4;
  Rng rng(2);
  cfg.init = Matrix::randn(3, 16, rng);  // wrong row count
  EXPECT_THROW(SoftPromptTuner(cfg).train(model, {ex}), Error);
}

TEST(SoftPromptTuner, AnchorBoundsDrift) {
  TinyLM model(tiny_config(), 3);
  const TrainExample ex = make_example({2, 5, 6}, {7, 3});
  Rng rng(4);
  const Matrix init = Matrix::randn(4, 16, rng, 0.3f);

  TunerConfig loose;
  loose.steps = 60;
  loose.n_virtual_tokens = 4;
  loose.init = init;
  loose.anchor_weight = 0.0f;
  TunerConfig tight = loose;
  tight.anchor_weight = 5.0f;

  const Matrix p_loose = SoftPromptTuner(loose).train(model, {ex});
  const Matrix p_tight = SoftPromptTuner(tight).train(model, {ex});
  const float drift_loose = (p_loose - init).frobenius_norm();
  const float drift_tight = (p_tight - init).frobenius_norm();
  EXPECT_LT(drift_tight, drift_loose);
}

TEST(SoftPromptTuner, NoiseHookIsCalled) {
  TinyLM model(tiny_config(), 3);
  const TrainExample ex = make_example({2, 5}, {7, 3});
  TunerConfig cfg;
  cfg.steps = 5;
  int calls = 0;
  cfg.perturb = [&calls](const Matrix& s, Rng&) {
    ++calls;
    return s;
  };
  SoftPromptTuner(cfg).train(model, {ex});
  EXPECT_EQ(calls, 5);
}

TEST(SoftPromptTuner, EmptyExamplesThrows) {
  TinyLM model(tiny_config(), 3);
  TunerConfig cfg;
  EXPECT_THROW(SoftPromptTuner(cfg).train(model, {}), Error);
}

TEST(SoftPromptTuner, BackboneIsFrozen) {
  TinyLM model(tiny_config(), 3);
  const Matrix emb_before = model.token_embedding().value;
  const TrainExample ex = make_example({2, 5}, {7, 3});
  TunerConfig cfg;
  cfg.steps = 20;
  SoftPromptTuner(cfg).train(model, {ex});
  EXPECT_TRUE(allclose(model.token_embedding().value, emb_before));
}

TEST(PrefixKvTuner, ProducesPerLayerPrefixAndReducesLoss) {
  TinyLM model(tiny_config(), 5);
  const TrainExample ex = make_example({2, 5, 6}, {7, 3});
  TunerConfig cfg;
  cfg.steps = 80;
  cfg.n_virtual_tokens = 3;
  const KvPrefixValues kv = PrefixKvTuner(cfg).train(model, {ex});
  ASSERT_EQ(kv.size(), 1u);  // one layer
  EXPECT_EQ(kv[0].key.rows(), 3u);
  EXPECT_EQ(kv[0].key.cols(), 16u);

  auto kv_loss = [&](const KvPrefixValues* p) {
    autograd::Tape tape;
    nn::Binder bind(tape, true);
    KvPrefixVars vars;
    if (p != nullptr)
      for (const auto& kvp : *p)
        vars.emplace_back(tape.leaf(kvp.key, false), tape.leaf(kvp.value, false));
    return model.loss(bind, ex, std::nullopt, p != nullptr ? &vars : nullptr).value()(0, 0);
  };
  EXPECT_LT(kv_loss(&kv), kv_loss(nullptr));
}

TEST(DeptTuner, AdapterShapesAndLoss) {
  TinyLM model(tiny_config(), 7);
  const TrainExample ex = make_example({2, 5, 6}, {7, 3});
  DeptTuner::Config cfg;
  cfg.base.steps = 80;
  cfg.base.n_virtual_tokens = 2;
  cfg.rank = 2;
  const DeptAdapters a = DeptTuner(cfg).train(model, {ex});
  EXPECT_EQ(a.soft_prompt.rows(), 2u);
  EXPECT_EQ(a.lora_a.rows(), 20u);
  EXPECT_EQ(a.lora_b.cols(), 16u);
  const Matrix delta = a.embed_delta();
  EXPECT_EQ(delta.rows(), 20u);
  EXPECT_EQ(delta.cols(), 16u);

  const Matrix z_plain = model.logits_inference({2, 5, 6});
  const Matrix z_dept =
      model.logits_inference({2, 5, 6}, &a.soft_prompt, nullptr, &delta);
  EXPECT_FALSE(allclose(z_plain, z_dept, 1e-5f, 1e-5f));
}

TEST(DeptTuner, ZeroInitLoraBStartsAtIdentityDelta) {
  TinyLM model(tiny_config(), 7);
  DeptTuner::Config cfg;
  cfg.base.steps = 1;
  cfg.base.lr = 0.0f;
  const DeptAdapters a =
      DeptTuner(cfg).train(model, {make_example({2, 5}, {7, 3})});
  // lr=0: B stays zero, so the embedding delta is exactly zero.
  EXPECT_NEAR(a.embed_delta().max_abs(), 0.0f, 1e-7f);
}

}  // namespace
}  // namespace nvcim::llm
