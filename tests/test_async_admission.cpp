// Churn fast path (PR 7): batched programming primitives and write-behind
// admission, overlapped with serving.
//
//  - Crossbar::program_columns is cell-for-cell identical to a loop of
//    program_column calls with the same per-column streams
//  - Accelerator::program_keys_batched matches program_keys bit-for-bit
//    (multi-tile geometry, unaligned span, reprogramming included)
//  - the CimRetriever batched_programming toggle changes nothing observable
//  - the staged admission protocol (stage → program_span× → commit) matches
//    a synchronous admit_user bit-identically, with spans executed in ANY
//    order; staged tenants are Pending (not queryable, not evictable,
//    skipped by the rebalancer) until commit; abort rolls back completely
//  - engine-level write-behind admission: wait_admitted() joins, results
//    bit-identical to a synchronous-admission engine, untouched tenants
//    unchanged, stats expose queue depth / batch count / admission latency
//  - try_admit_user() bounces with Overloaded on the pending-admission
//    bound instead of blocking; rejected users leave no trace
//  - evict_user() of an in-flight admission joins it first
//  - stress: concurrent admit/wait/evict churn, serving traffic and a
//    rebalance on one engine (runs under ASan/TSan in CI)
//
// The per-column noise streams are derived from (subarray, column) position
// only, which is what makes all of the above bit-identity — not tolerance —
// properties.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "nvcim/cim/accelerator.hpp"
#include "nvcim/retrieval/search.hpp"
#include "nvcim/serve/engine.hpp"

namespace nvcim {
namespace {

// ---------------------------------------------------------------------------
// Batched programming primitives.
// ---------------------------------------------------------------------------

TEST(BatchedProgramming, CrossbarSpanMatchesPerColumnCellForCell) {
  cim::CrossbarConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  const nvm::VariationModel var{nvm::fefet3(), 0.1};
  const Rng base(4242);

  // Integer column values (span-major: row j holds column col0 + j).
  const std::size_t n = 5, col0 = 2;
  Matrix vals(n, cfg.rows);
  Rng vr(11);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t r = 0; r < cfg.rows; ++r)
      vals(j, r) = static_cast<float>(static_cast<long>(vr.uniform_index(201)) - 100);

  cim::Crossbar one_at_a_time(cfg);
  one_at_a_time.init_blank(cfg.rows, cfg.cols);
  for (std::size_t j = 0; j < n; ++j) {
    Matrix col(1, cfg.rows);
    for (std::size_t r = 0; r < cfg.rows; ++r) col(0, r) = vals(j, r);
    Rng stream = base.split(1000 + j);
    one_at_a_time.program_column(col, col0 + j, var, stream);
  }

  cim::Crossbar span(cfg);
  span.init_blank(cfg.rows, cfg.cols);
  std::vector<Rng> streams;
  for (std::size_t j = 0; j < n; ++j) streams.push_back(base.split(1000 + j));
  span.program_columns(vals, col0, var, streams.data());

  const std::size_t slices = cfg.n_slices();
  for (std::size_t s = 0; s < slices; ++s)
    for (std::size_t r = 0; r < cfg.rows; ++r)
      for (std::size_t c = 0; c < cfg.cols; ++c)
        for (const bool neg : {false, true})
          ASSERT_EQ(one_at_a_time.cell_level(s, r, c, neg), span.cell_level(s, r, c, neg))
              << "slice " << s << " cell (" << r << ", " << c << ") neg=" << neg;
}

TEST(BatchedProgramming, AcceleratorBatchedMatchesPerKeyQueries) {
  cim::CrossbarConfig cfg;
  cfg.rows = 16;  // key_len 32 -> two row tiles
  cfg.cols = 8;   // 20 keys from col 3 -> three column tiles, unaligned span
  const nvm::VariationModel var{nvm::fefet3(), 0.1};
  const Rng base(77);

  Rng kr(21);
  const Matrix keys = Matrix::rand_uniform(20, 32, kr, -1.0f, 1.0f);

  cim::Accelerator per_key(cfg, var), batched(cfg, var);
  per_key.init_mutable(32, 24, base);
  batched.init_mutable(32, 24, base);
  per_key.program_keys(keys, 3);
  batched.program_keys_batched(keys, 3);

  Rng qr(22);
  const Matrix queries = Matrix::randn(4, 32, qr);
  const Matrix ya = per_key.query_batch(queries);
  const Matrix yb = batched.query_batch(queries);
  ASSERT_TRUE(ya.same_shape(yb));
  for (std::size_t i = 0; i < ya.size(); ++i)
    ASSERT_EQ(ya.at_flat(i), yb.at_flat(i)) << "flat index " << i;

  // Reprogramming an occupied sub-span stays bit-identical too.
  const Matrix fresh = Matrix::rand_uniform(6, 32, kr, -1.0f, 1.0f);
  per_key.program_keys(fresh, 7);
  batched.program_keys_batched(fresh, 7);
  const Matrix ya2 = per_key.query_batch(queries);
  const Matrix yb2 = batched.query_batch(queries);
  for (std::size_t i = 0; i < ya2.size(); ++i)
    ASSERT_EQ(ya2.at_flat(i), yb2.at_flat(i)) << "flat index " << i;
}

std::vector<Matrix> random_keys(std::size_t n, std::size_t rows, std::size_t cols, Rng& rng) {
  std::vector<Matrix> keys;
  for (std::size_t i = 0; i < n; ++i)
    keys.push_back(Matrix::rand_uniform(rows, cols, rng, -1.0f, 1.0f));
  return keys;
}

retrieval::CimRetriever::Config small_retriever_config(bool batched) {
  retrieval::CimRetriever::Config cfg;
  cfg.crossbar.rows = 48;
  cfg.crossbar.cols = 8;
  cfg.variation = {nvm::fefet3(), 0.1};
  cfg.batched_programming = batched;
  return cfg;
}

TEST(BatchedProgramming, RetrieverToggleIsUnobservable) {
  Rng kr(31);
  const std::vector<Matrix> a = random_keys(6, 4, 8, kr);
  const std::vector<Matrix> b = random_keys(5, 4, 8, kr);
  const Rng base(2025);

  retrieval::CimRetriever batched(small_retriever_config(true));
  retrieval::CimRetriever per_key(small_retriever_config(false));
  for (retrieval::CimRetriever* r : {&batched, &per_key}) {
    r->store_mutable(32, 6, base);
    r->program_keys(0, a);
    r->ensure_capacity(a.size() + b.size());
    r->program_keys(a.size(), b);
  }

  Rng qr(32);
  const Matrix queries = Matrix::randn(3, 32, qr);
  retrieval::CimRetriever::Scratch s1, s2;
  Matrix yb, yp;
  batched.scores_batch_into(queries, yb, s1);
  per_key.scores_batch_into(queries, yp, s2);
  ASSERT_TRUE(yb.same_shape(yp));
  for (std::size_t i = 0; i < yb.size(); ++i)
    ASSERT_EQ(yb.at_flat(i), yp.at_flat(i)) << "flat index " << i;
}

// ---------------------------------------------------------------------------
// Store-level staged admission protocol.
// ---------------------------------------------------------------------------

serve::OvtStoreConfig lifecycle_store_config() {
  serve::OvtStoreConfig cfg;
  cfg.n_shards = 2;
  cfg.crossbar.rows = 64;
  cfg.crossbar.cols = 16;
  cfg.variation = {nvm::fefet3(), 0.1};
  cfg.lifecycle.enabled = true;
  return cfg;
}

TEST(AsyncAdmission, StagedProtocolBitIdenticalToSyncInAnyOrder) {
  Rng kr(601);
  std::vector<std::vector<Matrix>> keys;
  for (std::size_t u = 0; u < 3; ++u) keys.push_back(random_keys(4, 4, 8, kr));
  // 40 key columns at 16-column subarrays: the staged admission splits into
  // at least three per-subarray spans.
  const std::vector<Matrix> big = random_keys(40, 4, 8, kr);

  serve::ShardedOvtStore sync_store(lifecycle_store_config());
  for (std::size_t u = 0; u < 3; ++u) sync_store.add_user(u, keys[u]);
  Rng r1(7);
  sync_store.build(r1);
  sync_store.admit_user(9, big);

  serve::ShardedOvtStore staged_store(lifecycle_store_config());
  for (std::size_t u = 0; u < 3; ++u) staged_store.add_user(u, keys[u]);
  Rng r2(7);
  staged_store.build(r2);

  const auto staged = staged_store.stage_admit(9, big);
  ASSERT_GE(staged.spans.size(), 3u);
  // Pending: present in the directory but not queryable, not evictable, not
  // migratable.
  EXPECT_TRUE(staged_store.has_user(9));
  EXPECT_FALSE(staged_store.user_live(9));
  EXPECT_THROW(staged_store.evict_user(9), Error);
  EXPECT_THROW(staged_store.migrate_user(9, 1 - staged.shard), Error);
  // Spans program in REVERSE order: per-column streams are position-derived,
  // so execution order is irrelevant by construction.
  for (std::size_t i = staged.spans.size(); i-- > 0;) staged_store.program_span(staged, i);
  EXPECT_FALSE(staged_store.user_live(9));
  staged_store.commit_admit(9);
  EXPECT_TRUE(staged_store.user_live(9));

  const auto ss = sync_store.slot(9);
  const auto sd = staged_store.slot(9);
  ASSERT_EQ(ss.shard, sd.shard);
  ASSERT_EQ(ss.begin, sd.begin);
  ASSERT_EQ(ss.end, sd.end);
  Rng qr(602);
  const Matrix queries = Matrix::randn(3, 32, qr);
  for (std::size_t sh = 0; sh < 2; ++sh) {
    const Matrix ya = sync_store.shard_scores(sh, queries);
    const Matrix yb = staged_store.shard_scores(sh, queries);
    ASSERT_TRUE(ya.same_shape(yb));
    for (std::size_t i = 0; i < ya.size(); ++i)
      ASSERT_EQ(ya.at_flat(i), yb.at_flat(i)) << "shard " << sh << " flat " << i;
  }
}

TEST(AsyncAdmission, AbortRollsBackCompletely) {
  Rng kr(611);
  serve::ShardedOvtStore store(lifecycle_store_config());
  for (std::size_t u = 0; u < 2; ++u) store.add_user(u, random_keys(4, 4, 8, kr));
  Rng br(9);
  store.build(br);

  Rng qr(612);
  const Matrix queries = Matrix::randn(2, 32, qr);
  const Matrix before = store.shard_scores(0, queries);

  const auto staged = store.stage_admit(9, random_keys(20, 4, 8, kr));
  store.program_span(staged, 0);  // half-programmed, then abandoned
  store.abort_admit(9);
  EXPECT_FALSE(store.has_user(9));
  EXPECT_FALSE(store.user_live(9));

  // Existing tenants are bit-identical through the stage/abort cycle. (The
  // shard capacity the stage provisioned stays provisioned — abort releases
  // the slot, not the blank subarrays — so the score width may grow.)
  const Matrix after = store.shard_scores(0, queries);
  ASSERT_GE(after.cols(), before.cols());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    for (std::size_t u = 0; u < 2; ++u) {
      const auto slot = store.slot(u);
      if (slot.shard != 0) continue;
      for (std::size_t c = slot.begin; c < slot.end; ++c)
        ASSERT_EQ(before(q, c), after(q, c)) << "user " << u << " column " << c;
    }
  }

  // The id is free again: a synchronous admit of the same user succeeds.
  store.admit_user(9, random_keys(4, 4, 8, kr));
  EXPECT_TRUE(store.user_live(9));
}

// ---------------------------------------------------------------------------
// Engine-level write-behind admission (threaded; ASan/TSan in CI).
// ---------------------------------------------------------------------------

llm::TinyLM async_model(std::size_t vocab, std::uint64_t seed) {
  llm::TinyLmConfig cfg;
  cfg.vocab = vocab;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.ffn_hidden = 32;
  cfg.max_seq = 40;
  cfg.prompt_slots = 8;
  return llm::TinyLM(cfg, seed);
}

struct AsyncEngineFixture {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;
  std::shared_ptr<const compress::Autoencoder> autoencoder;

  AsyncEngineFixture() : model(async_model(task.vocab_size(), 21)) {
    compress::AutoencoderConfig acfg;
    acfg.input_dim = 16;
    acfg.code_dim = 24;
    acfg.hidden_dim = 32;
    autoencoder = std::make_shared<const compress::Autoencoder>(acfg);
  }

  core::TrainedDeployment make_deployment(std::size_t user, std::size_t n_keys = 6) {
    core::TrainedDeployment d;
    d.autoencoder = autoencoder;
    d.n_virtual_tokens = 4;
    Rng rng(5000 + user);
    for (std::size_t k = 0; k < n_keys; ++k) {
      d.keys.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
      d.stored_codes.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
      d.domains.push_back(k);
    }
    return d;
  }

  serve::ServingConfig config(std::size_t shards, std::size_t threads, std::size_t batch,
                              bool write_behind = true) {
    serve::ServingConfig cfg;
    cfg.n_shards = shards;
    cfg.n_threads = threads;
    cfg.max_batch = batch;
    cfg.crossbar.rows = 96;
    cfg.crossbar.cols = 32;
    cfg.variation = {nvm::fefet3(), 0.1};
    cfg.lifecycle.enabled = true;
    cfg.lifecycle.write_behind = write_behind;
    cfg.seed = 2026;
    return cfg;
  }

  data::Sample query(Rng& rng) {
    return task.sample(rng.uniform_index(task.config().n_domains), rng);
  }
};

TEST(AsyncAdmission, WriteBehindBitIdenticalToSynchronousEngine) {
  AsyncEngineFixture f;
  serve::ServingEngine wb(f.model, f.task, f.config(2, 2, 8, /*write_behind=*/true));
  serve::ServingEngine sync(f.model, f.task, f.config(2, 2, 8, /*write_behind=*/false));
  for (std::size_t u = 0; u < 4; ++u) {
    wb.add_deployment(u, f.make_deployment(u));
    sync.add_deployment(u, f.make_deployment(u));
  }
  wb.start();
  sync.start();

  // Reference answers for an untouched tenant, before any churn.
  Rng qr(701);
  std::vector<data::Sample> probes;
  std::vector<std::size_t> expected;
  for (int t = 0; t < 6; ++t) {
    probes.push_back(f.query(qr));
    expected.push_back(wb.retrieve_serial(0, probes.back()));
  }

  // 40 key columns -> several per-subarray programming spans.
  wb.admit_user(100, f.make_deployment(100, 40));
  sync.admit_user(100, f.make_deployment(100, 40));
  wb.wait_admitted(100);
  EXPECT_TRUE(wb.store().user_live(100));
  // Joining an already-live admission is a no-op, not an error.
  wb.wait_admitted(100);

  // Deferred == synchronous, bit for bit (same seed, same placement, same
  // per-column noise streams), through both the serial path and the engine.
  for (int t = 0; t < 6; ++t) {
    const data::Sample probe = f.query(qr);
    const std::size_t want = sync.retrieve_serial(100, probe);
    EXPECT_EQ(wb.retrieve_serial(100, probe), want) << "probe " << t;
    EXPECT_EQ(wb.serve(100, probe).ovt_index, want) << "probe " << t;
  }
  // Untouched tenants are bit-identical through the write-behind admit.
  for (std::size_t t = 0; t < probes.size(); ++t)
    EXPECT_EQ(wb.retrieve_serial(0, probes[t]), expected[t]) << "probe " << t;

  const serve::StatsSnapshot s = wb.stats();
  EXPECT_EQ(s.users_admitted, 1u);
  EXPECT_GE(s.program_batches, 2u);
  EXPECT_EQ(s.programming_queue_depth, 0u);
  EXPECT_GE(s.admission_p50_ms, 0.0);
  EXPECT_LE(s.admission_p50_ms, s.admission_p95_ms);

  // No admission to join: unknown users hard-error.
  EXPECT_THROW(wb.wait_admitted(777), Error);

  wb.stop();
  sync.stop();
}

TEST(AsyncAdmission, TryAdmitBouncesOnPendingBound) {
  AsyncEngineFixture f;
  serve::ServingConfig cfg = f.config(2, 2, 8);
  cfg.lifecycle.max_pending_admissions = 1;
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < 2; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  // Rapid-fire non-blocking admissions against a bound of one: whichever
  // calls land while a prior admission is still programming bounce with
  // Overloaded and leave no trace.
  std::vector<std::size_t> accepted, rejected;
  for (std::size_t u = 200; u < 206; ++u) {
    if (engine.try_admit_user(u, f.make_deployment(u, 24)))
      accepted.push_back(u);
    else
      rejected.push_back(u);
  }
  EXPECT_GE(accepted.size(), 1u);
  for (const std::size_t u : accepted) {
    engine.wait_admitted(u);
    EXPECT_TRUE(engine.store().user_live(u));
  }
  for (const std::size_t u : rejected) EXPECT_FALSE(engine.store().has_user(u));
  EXPECT_EQ(engine.stats().rejected_admissions, rejected.size());

  // The blocking call waits out the backpressure instead of bouncing.
  if (!rejected.empty()) {
    engine.admit_user(rejected.front(), f.make_deployment(rejected.front()));
    engine.wait_admitted(rejected.front());
    EXPECT_TRUE(engine.store().user_live(rejected.front()));
  }
  engine.stop();
}

TEST(AsyncAdmission, EvictJoinsInFlightAdmission) {
  AsyncEngineFixture f;
  serve::ServingEngine engine(f.model, f.task, f.config(2, 2, 8));
  for (std::size_t u = 0; u < 2; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  // Evict immediately after a write-behind admit: the eviction joins the
  // in-flight programming first, then removes the (fully admitted) tenant.
  engine.admit_user(300, f.make_deployment(300, 24));
  engine.evict_user(300);
  EXPECT_FALSE(engine.store().has_user(300));
  Rng qr(711);
  // Evicted: submits settle their future with the structured UnknownUser.
  EXPECT_THROW(engine.submit(300, f.query(qr)).get(), serve::UnknownUser);

  // The id is immediately re-admittable.
  engine.admit_user(300, f.make_deployment(300));
  engine.wait_admitted(300);
  EXPECT_EQ(engine.serve(300, f.query(qr)).user_id, 300u);
  engine.stop();
}

TEST(AsyncAdmission, ConcurrentChurnServingAndRebalance) {
  AsyncEngineFixture f;
  serve::ServingEngine engine(f.model, f.task, f.config(2, 4, 8));
  for (std::size_t u = 0; u < 4; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  // Pre-generate every query on this thread (task sampling is not part of
  // the race under test).
  Rng qr(721);
  std::vector<data::Sample> stable_probes, churn_probes;
  for (int t = 0; t < 40; ++t) stable_probes.push_back(f.query(qr));
  for (int t = 0; t < 6; ++t) churn_probes.push_back(f.query(qr));

  std::atomic<std::size_t> served{0};
  std::thread churn([&] {
    for (std::size_t i = 0; i < 6; ++i) {
      const std::size_t u = 1000 + i;
      engine.admit_user(u, f.make_deployment(u, 24));
      engine.wait_admitted(u);
      const serve::Response r = engine.submit(u, churn_probes[i]).get();
      EXPECT_EQ(r.user_id, u);
      engine.evict_user(u);
    }
  });
  std::thread traffic([&] {
    std::vector<std::future<serve::Response>> futures;
    for (std::size_t t = 0; t < stable_probes.size(); ++t)
      futures.push_back(engine.submit(t % 4, stable_probes[t]));
    for (std::size_t t = 0; t < futures.size(); ++t) {
      const serve::Response r = futures[t].get();
      EXPECT_EQ(r.user_id, t % 4);
      ++served;
    }
  });
  (void)engine.rebalance();
  churn.join();
  traffic.join();
  EXPECT_EQ(served.load(), stable_probes.size());

  // The engine is intact after the churn: stable tenants still serve.
  EXPECT_EQ(engine.serve(0, stable_probes[0]).user_id, 0u);
  const serve::StatsSnapshot s = engine.stats();
  EXPECT_EQ(s.users_admitted, 6u);
  EXPECT_EQ(s.users_evicted, 6u);
  EXPECT_EQ(s.programming_queue_depth, 0u);
  engine.stop();
}

TEST(AsyncAdmission, StopDrainsInFlightAdmissionsDeterministically) {
  AsyncEngineFixture f;
  serve::ServingEngine engine(f.model, f.task, f.config(2, 2, 8));
  for (std::size_t u = 0; u < 2; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  // Fire a burst of write-behind admissions and stop() immediately, without
  // joining any of them: stop() must drain every staged programming span
  // and wait for every admission to settle before returning — no tenant may
  // be left half-programmed.
  std::vector<std::size_t> users;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t u = 2000 + i;
    engine.admit_user(u, f.make_deployment(u, 24));
    users.push_back(u);
  }
  engine.stop();

  // Every admission committed fully: live slot, zero staged spans left.
  for (const std::size_t u : users) EXPECT_TRUE(engine.store().user_live(u)) << "user " << u;
  const serve::StatsSnapshot s = engine.stats();
  EXPECT_EQ(s.users_admitted, users.size());
  EXPECT_EQ(s.programming_queue_depth, 0u);
  // wait_admitted() after the drain is a no-op, not a hang or an error.
  for (const std::size_t u : users) engine.wait_admitted(u);
  engine.stop();  // idempotent
}

}  // namespace
}  // namespace nvcim
