#include <gtest/gtest.h>

#include "nvcim/cluster/kmeans.hpp"

namespace nvcim::cluster {
namespace {

/// Three well-separated blobs in 2D.
std::vector<Matrix> blobs(std::size_t per_blob, Rng& rng) {
  std::vector<Matrix> pts;
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int b = 0; b < 3; ++b)
    for (std::size_t i = 0; i < per_blob; ++i) {
      Matrix p(1, 2);
      p(0, 0) = centers[b][0] + static_cast<float>(rng.normal(0.0, 0.3));
      p(0, 1) = centers[b][1] + static_cast<float>(rng.normal(0.0, 0.3));
      pts.push_back(p);
    }
  return pts;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  Rng rng(1);
  const auto pts = blobs(10, rng);
  const KMeansResult res = kmeans(pts, 3);
  EXPECT_EQ(res.k, 3u);
  // All members of a blob share an assignment.
  for (int b = 0; b < 3; ++b)
    for (int i = 1; i < 10; ++i)
      EXPECT_EQ(res.assignment[b * 10 + i], res.assignment[b * 10]);
  // Distinct blobs get distinct clusters.
  EXPECT_NE(res.assignment[0], res.assignment[10]);
  EXPECT_NE(res.assignment[10], res.assignment[20]);
  EXPECT_LT(res.inertia, 30.0);
}

TEST(KMeans, KClampedToPointCount) {
  Rng rng(2);
  std::vector<Matrix> pts{Matrix{{1, 1}}, Matrix{{2, 2}}};
  const KMeansResult res = kmeans(pts, 5);
  EXPECT_EQ(res.k, 2u);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  std::vector<Matrix> pts{Matrix{{0, 0}}, Matrix{{2, 0}}, Matrix{{1, 3}}};
  const KMeansResult res = kmeans(pts, 1);
  EXPECT_NEAR(res.centroids[0](0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(res.centroids[0](0, 1), 1.0f, 1e-5f);
}

TEST(KMeans, EmptyInputThrows) {
  std::vector<Matrix> empty;
  EXPECT_THROW(kmeans(empty, 2), Error);
}

TEST(KMeans, MismatchedDimsThrow) {
  std::vector<Matrix> pts{Matrix(1, 2), Matrix(1, 3)};
  EXPECT_THROW(kmeans(pts, 1), Error);
}

TEST(KMeans, DeterministicForSeed) {
  Rng rng(3);
  const auto pts = blobs(8, rng);
  KMeansConfig cfg;
  cfg.seed = 42;
  const auto a = kmeans(pts, 3, cfg);
  const auto b = kmeans(pts, 3, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, DuplicatePointsHandled) {
  std::vector<Matrix> pts(6, Matrix{{1.0f, 2.0f}});
  const KMeansResult res = kmeans(pts, 3);
  EXPECT_LE(res.inertia, 1e-9);
}

TEST(SelectK, PaperEquation2Behaviour) {
  // Defaults: n_min=2, n_max=8, b0=5, s=1.5.
  KSelectionConfig cfg;
  // Small buffers floor at n_min.
  EXPECT_EQ(select_k(1, cfg), 2u);
  EXPECT_EQ(select_k(5, cfg), 2u);
  // Growth is logarithmic in bs/b0.
  const std::size_t k10 = select_k(10, cfg);
  const std::size_t k25 = select_k(25, cfg);
  const std::size_t k60 = select_k(60, cfg);
  EXPECT_GE(k25, k10);
  EXPECT_GE(k60, k25);
  // Large buffers cap at n_max.
  EXPECT_EQ(select_k(100000, cfg), 8u);
}

TEST(SelectK, MonotoneInBufferSize) {
  KSelectionConfig cfg;
  std::size_t prev = 0;
  for (std::size_t bs = 1; bs <= 200; ++bs) {
    const std::size_t k = select_k(bs, cfg);
    EXPECT_GE(k, prev);
    EXPECT_GE(k, cfg.n_min);
    EXPECT_LE(k, cfg.n_max);
    prev = k;
  }
}

TEST(Representatives, PicksClosestToCentroid) {
  Rng rng(4);
  const auto pts = blobs(10, rng);
  const KMeansResult res = kmeans(pts, 3);
  const auto reps = representatives(pts, res);
  ASSERT_EQ(reps.size(), 3u);
  // Each representative belongs to its cluster and has maximal cosine
  // similarity to the centroid within the cluster.
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(res.assignment[reps[c]], c);
    const float rep_cs = cosine_similarity(pts[reps[c]], res.centroids[c]);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (res.assignment[i] != c) continue;
      EXPECT_LE(cosine_similarity(pts[i], res.centroids[c]), rep_cs + 1e-6f);
    }
  }
}

TEST(Representatives, PaperArgminRuleIsOpposite) {
  Rng rng(5);
  const auto pts = blobs(10, rng);
  const KMeansResult res = kmeans(pts, 3);
  const auto max_reps = representatives(pts, res, RepresentativeRule::ClosestToCentroid);
  const auto min_reps = representatives(pts, res, RepresentativeRule::PaperArgmin);
  ASSERT_EQ(min_reps.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    const float cs_max = cosine_similarity(pts[max_reps[c]], res.centroids[c]);
    const float cs_min = cosine_similarity(pts[min_reps[c]], res.centroids[c]);
    EXPECT_LE(cs_min, cs_max + 1e-6f);
  }
}

class SelectKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SelectKSweep, AlwaysWithinBounds) {
  KSelectionConfig cfg;
  const std::size_t k = select_k(GetParam(), cfg);
  EXPECT_GE(k, cfg.n_min);
  EXPECT_LE(k, cfg.n_max);
}

INSTANTIATE_TEST_SUITE_P(BufferSizes, SelectKSweep,
                         ::testing::Values(1, 2, 5, 10, 20, 25, 30, 40, 50, 60, 100, 1000));

}  // namespace
}  // namespace nvcim::cluster
