// Online tenant lifecycle (PR 5): live admission/eviction, epoch-versioned
// directory, shard rebalancing and incremental router refresh.
//
//  - slot allocator: alignment, coalescing, epoch-deferred reuse
//  - rebalance planning moves users from overloaded to underloaded shards
//  - incremental program_keys() is bit-identical to a from-scratch program
//    of the same keys at the same columns, and never perturbs other columns
//  - a user admitted after build() retrieves identically to a from-scratch
//    build containing that user; untouched users stay bit-identical across
//    admit/evict/migrate (nprobe = all included)
//  - evicted slots are reused by later admits — unless a pinned epoch still
//    covers them, in which case reuse is deferred until the pin drops
//  - two-phase recall stays >= 0.95 for users admitted via router refresh
//  - the engine serves through admits/evictions/rebalances (parallel shard
//    fan-out on), with lifecycle counters in EngineStats
//  - try_submit() returns Overloaded instead of blocking on a full queue
//  - add_user() after build(): hard error without lifecycle, live admission
//    with it.
//
// The engine suites run under ASan/TSan in CI (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "nvcim/serve/engine.hpp"

namespace nvcim {
namespace {

// ---------------------------------------------------------------------------
// SlotAllocator / rebalance planning (pure logic).
// ---------------------------------------------------------------------------

TEST(LifecycleAllocator, TailBumpAlignmentAndGapReuse) {
  serve::SlotAllocator a;
  EXPECT_EQ(a.allocate(5, 0, 1), 0u);
  // Aligned allocation skips to the next block boundary; the gap is free.
  EXPECT_EQ(a.allocate(6, 0, 8), 8u);
  EXPECT_EQ(a.occupied(), 11u);
  EXPECT_EQ(a.tail(), 14u);
  // The 3-column alignment gap [5, 8) is immediately reusable.
  EXPECT_EQ(a.allocate(3, 0, 1), 5u);
  EXPECT_EQ(a.occupied(), 14u);
}

TEST(LifecycleAllocator, ReleaseCoalescesAndReuses) {
  serve::SlotAllocator a;
  const std::size_t s0 = a.allocate(4, 0, 1);
  const std::size_t s1 = a.allocate(4, 0, 1);
  const std::size_t s2 = a.allocate(4, 0, 1);
  (void)s2;
  a.release(s0, s0 + 4, 1);
  a.release(s1, s1 + 4, 2);
  EXPECT_EQ(a.free_ranges(), 1u);  // [0, 8) coalesced
  // The merged range carries the younger epoch (2): not reusable at safe=1,
  // so the allocation bumps the tail…
  EXPECT_EQ(a.allocate(8, 1, 1), 12u);
  // …but at safe=2 the coalesced range is handed out.
  EXPECT_EQ(a.allocate(8, 2, 1), 0u);
}

TEST(LifecycleAllocator, EpochDefersReuse) {
  serve::SlotAllocator a;
  const std::size_t s0 = a.allocate(4, 0, 1);
  a.allocate(4, 0, 1);
  a.release(s0, s0 + 4, /*freed_epoch=*/5);
  // A reader pinned at epoch 3 may still score those columns: allocate must
  // bump the tail instead.
  EXPECT_EQ(a.allocate(4, /*safe_epoch=*/3, 1), 8u);
  // Once every pin >= 5, the freed range is handed out again.
  EXPECT_EQ(a.allocate(4, /*safe_epoch=*/5, 1), 0u);
}

TEST(LifecyclePlan, MovesUsersFromOverloadedToUnderloaded) {
  std::unordered_map<std::size_t, serve::UserSlot> slots;
  slots[0] = {0, 0, 8};
  slots[1] = {0, 8, 16};
  slots[2] = {0, 16, 24};
  slots[3] = {1, 0, 2};
  const auto plan = serve::plan_rebalance({24, 2}, slots, 0.25, 4);
  ASSERT_FALSE(plan.empty());
  std::size_t occ0 = 24, occ1 = 2;
  for (const auto& m : plan) {
    EXPECT_EQ(m.from_shard, 0u);
    EXPECT_EQ(m.to_shard, 1u);
    occ0 -= m.n_keys;
    occ1 += m.n_keys;
  }
  // Within tolerance of the mean (13) afterwards.
  EXPECT_LE(static_cast<double>(std::max(occ0, occ1)), 1.25 * 13.0 + 1e-9);
}

TEST(LifecyclePlan, BalancedLoadPlansNothing) {
  std::unordered_map<std::size_t, serve::UserSlot> slots;
  slots[0] = {0, 0, 8};
  slots[1] = {1, 0, 8};
  EXPECT_TRUE(serve::plan_rebalance({8, 8}, slots, 0.25, 4).empty());
}

// ---------------------------------------------------------------------------
// Retriever-level incremental programming.
// ---------------------------------------------------------------------------

std::vector<Matrix> random_keys(std::size_t n, std::size_t rows, std::size_t cols, Rng& rng) {
  std::vector<Matrix> keys;
  for (std::size_t i = 0; i < n; ++i)
    keys.push_back(Matrix::rand_uniform(rows, cols, rng, -1.0f, 1.0f));
  return keys;
}

retrieval::CimRetriever::Config small_retriever_config() {
  retrieval::CimRetriever::Config cfg;
  cfg.crossbar.rows = 48;
  cfg.crossbar.cols = 8;  // several column subarrays at these key counts
  cfg.variation = {nvm::fefet3(), 0.1};
  return cfg;
}

TEST(LifecycleRetriever, IncrementalProgramBitIdenticalToFromScratch) {
  Rng kr(101);
  const std::vector<Matrix> a = random_keys(5, 4, 8, kr);
  const std::vector<Matrix> b = random_keys(7, 4, 8, kr);

  const Rng base(2024);
  retrieval::CimRetriever inc(small_retriever_config());
  inc.store_mutable(32, 6, base);
  inc.program_keys(0, a);

  Rng qr(102);
  const Matrix queries = Matrix::randn(3, 32, qr);
  retrieval::CimRetriever::Scratch s1, s2;
  Matrix before;
  inc.scores_batch_into(queries, before, s1);

  // Grow and program B behind A: A's columns must not change a single bit.
  inc.ensure_capacity(5 + b.size());
  inc.program_keys(5, b);
  Matrix after;
  inc.scores_batch_into(queries, after, s2);
  for (std::size_t q = 0; q < 3; ++q)
    for (std::size_t c = 0; c < 5; ++c)
      ASSERT_EQ(before(q, c), after(q, c)) << "untouched column " << c;

  // From-scratch store programming A and B in ONE pass at the same columns:
  // bit-identical everywhere, including B's columns.
  retrieval::CimRetriever scratch(small_retriever_config());
  scratch.store_mutable(32, 5 + b.size(), base);
  std::vector<Matrix> ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  scratch.program_keys(0, ab);
  retrieval::CimRetriever::Scratch s3;
  Matrix fresh;
  scratch.scores_batch_into(queries, fresh, s3);
  ASSERT_EQ(fresh.cols(), after.cols());
  for (std::size_t q = 0; q < 3; ++q)
    for (std::size_t c = 0; c < 5 + b.size(); ++c)
      ASSERT_EQ(fresh(q, c), after(q, c)) << "column " << c;

  // Unprogrammed capacity columns score exactly zero.
  for (std::size_t c = 5 + b.size(); c < after.cols(); ++c)
    EXPECT_EQ(after(0, c), 0.0f) << "free column " << c;
}

// ---------------------------------------------------------------------------
// Store-level lifecycle.
// ---------------------------------------------------------------------------

serve::OvtStoreConfig lifecycle_store_config(std::size_t shards, bool two_phase = false) {
  serve::OvtStoreConfig cfg;
  cfg.n_shards = shards;
  cfg.crossbar.rows = 64;
  cfg.crossbar.cols = 16;
  cfg.variation = {nvm::fefet3(), 0.1};
  cfg.lifecycle.enabled = true;
  cfg.two_phase.enabled = two_phase;
  return cfg;
}

TEST(LifecycleStore, AdmitAfterBuildMatchesFromScratchBuild) {
  Rng kr(301);
  std::vector<std::vector<Matrix>> keys;
  for (std::size_t u = 0; u < 6; ++u) keys.push_back(random_keys(4, 4, 8, kr));

  serve::ShardedOvtStore inc(lifecycle_store_config(2));
  for (std::size_t u = 0; u < 4; ++u) inc.add_user(u, keys[u]);
  Rng r1(7);
  inc.build(r1);
  inc.admit_user(4, keys[4]);
  inc.admit_user(5, keys[5]);

  serve::ShardedOvtStore scratch(lifecycle_store_config(2));
  for (std::size_t u = 0; u < 6; ++u) scratch.add_user(u, keys[u]);
  Rng r2(7);
  scratch.build(r2);

  Rng qr(302);
  for (std::size_t u = 0; u < 6; ++u) {
    const auto si = inc.slot(u);
    const auto ss = scratch.slot(u);
    ASSERT_EQ(si.shard, ss.shard) << "user " << u;
    ASSERT_EQ(si.begin, ss.begin) << "user " << u;
    ASSERT_EQ(si.end, ss.end) << "user " << u;
    // Same placement + per-column programming ⇒ bit-identical slot scores.
    const Matrix queries = Matrix::randn(2, 32, qr);
    const Matrix yi = inc.shard_scores(si.shard, queries);
    const Matrix ys = scratch.shard_scores(ss.shard, queries);
    for (std::size_t q = 0; q < 2; ++q)
      for (std::size_t c = si.begin; c < si.end; ++c)
        ASSERT_EQ(yi(q, c), ys(q, c)) << "user " << u << " column " << c;
    for (const Matrix& k : keys[u])
      ASSERT_EQ(inc.retrieve_user(u, k), scratch.retrieve_user(u, k)) << "user " << u;
  }
}

TEST(LifecycleStore, UntouchedUsersBitIdenticalAcrossAdmitEvictMigrate) {
  Rng kr(311);
  std::vector<std::vector<Matrix>> keys;
  for (std::size_t u = 0; u < 4; ++u) keys.push_back(random_keys(4, 4, 8, kr));

  serve::ShardedOvtStore store(lifecycle_store_config(2));
  for (std::size_t u = 0; u < 4; ++u) store.add_user(u, keys[u]);
  Rng br(9);
  store.build(br);

  Rng qr(312);
  const Matrix queries = Matrix::randn(3, 32, qr);
  const auto capture = [&](std::size_t u) {
    const auto slot = store.slot(u);
    const Matrix y = store.shard_scores(slot.shard, queries);
    Matrix out(queries.rows(), slot.n_keys());
    for (std::size_t q = 0; q < queries.rows(); ++q)
      for (std::size_t c = 0; c < slot.n_keys(); ++c) out(q, c) = y(q, slot.begin + c);
    return out;
  };
  const Matrix u0 = capture(0), u2 = capture(2);

  store.admit_user(50, random_keys(6, 4, 8, kr));   // admit
  store.evict_user(1);                              // evict a neighbour
  const std::size_t other = store.slot(3).shard == 0 ? 1 : 0;
  store.migrate_user(3, other);                     // migrate another tenant

  const Matrix u0b = capture(0), u2b = capture(2);
  ASSERT_TRUE(u0.same_shape(u0b));
  for (std::size_t i = 0; i < u0.size(); ++i) ASSERT_EQ(u0.at_flat(i), u0b.at_flat(i));
  ASSERT_TRUE(u2.same_shape(u2b));
  for (std::size_t i = 0; i < u2.size(); ++i) ASSERT_EQ(u2.at_flat(i), u2b.at_flat(i));
}

TEST(LifecycleStore, EvictedSlotReusedByLaterAdmit) {
  Rng kr(321);
  serve::ShardedOvtStore store(lifecycle_store_config(1));
  for (std::size_t u = 0; u < 3; ++u) store.add_user(u, random_keys(4, 4, 8, kr));
  Rng br(11);
  store.build(br);

  const auto old_slot = store.slot(1);
  store.evict_user(1);
  // No pinned readers: the freed range is immediately reusable.
  store.admit_user(7, random_keys(4, 4, 8, kr));
  const auto new_slot = store.slot(7);
  EXPECT_EQ(new_slot.shard, old_slot.shard);
  EXPECT_EQ(new_slot.begin, old_slot.begin);
  EXPECT_EQ(new_slot.end, old_slot.end);
}

TEST(LifecycleStore, PinnedEpochDefersSlotReuse) {
  Rng kr(331);
  serve::ShardedOvtStore store(lifecycle_store_config(1));
  for (std::size_t u = 0; u < 3; ++u) store.add_user(u, random_keys(4, 4, 8, kr));
  Rng br(13);
  store.build(br);
  const auto old_slot = store.slot(0);

  {
    // An in-flight "batch" pins the epoch that still contains user 0.
    const serve::PinnedDirectory pinned = store.pin();
    store.evict_user(0);
    store.admit_user(8, random_keys(4, 4, 8, kr));
    // The pinned reader could still be scoring user 0's columns: the admit
    // must NOT land on them.
    const auto s8 = store.slot(8);
    EXPECT_FALSE(s8.begin == old_slot.begin && s8.shard == old_slot.shard)
        << "slot reused while a reader was pinned";
    // The pinned snapshot still resolves the evicted user.
    EXPECT_TRUE(pinned.has_user(0));
  }
  // Pin released: the next admit reclaims the freed range.
  store.admit_user(9, random_keys(4, 4, 8, kr));
  const auto s9 = store.slot(9);
  EXPECT_EQ(s9.shard, old_slot.shard);
  EXPECT_EQ(s9.begin, old_slot.begin);
}

TEST(LifecycleStore, AddUserAfterBuildRoutesToAdmission) {
  Rng kr(341);
  serve::ShardedOvtStore store(lifecycle_store_config(2));
  store.add_user(0, random_keys(4, 4, 8, kr));
  Rng br(15);
  store.build(br);
  // With the lifecycle subsystem, post-build add_user IS live admission.
  const std::vector<Matrix> keys = random_keys(4, 4, 8, kr);
  store.add_user(1, keys);
  EXPECT_TRUE(store.has_user(1));
  (void)store.retrieve_user(1, keys[0]);
  // Misuse still hard-errors: duplicate ids, unknown evictions.
  EXPECT_THROW(store.add_user(1, keys), Error);
  EXPECT_THROW(store.evict_user(99), Error);
}

TEST(LifecycleStore, RebalanceMovesLoadBetweenShards) {
  Rng kr(351);
  serve::ShardedOvtStore store(lifecycle_store_config(2));
  for (std::size_t u = 0; u < 4; ++u) store.add_user(u, random_keys(4, 4, 8, kr));
  Rng br(17);
  store.build(br);
  // Unbalance: evict everything on shard 1.
  for (std::size_t u = 0; u < 4; ++u)
    if (store.slot(u).shard == 1) store.evict_user(u);
  ASSERT_GT(store.shard_occupied(0), 0u);
  ASSERT_EQ(store.shard_occupied(1), 0u);

  const auto plan = store.plan_rebalance();
  ASSERT_FALSE(plan.empty());
  for (const auto& m : plan) store.migrate_user(m.user_id, m.to_shard);
  EXPECT_GT(store.shard_occupied(1), 0u);
  // Migrated users still retrieve through their new shard.
  for (const auto& m : plan) (void)store.retrieve_user(m.user_id, Matrix::randn(4, 8, kr));
}

// ---------------------------------------------------------------------------
// Two-phase router refresh on admission.
// ---------------------------------------------------------------------------

/// Clustered keys (noisy prototype copies), the regime the router exploits.
std::vector<Matrix> clustered_keys(std::size_t protos, std::size_t per_proto, Rng& rng) {
  std::vector<Matrix> centers;
  for (std::size_t p = 0; p < protos; ++p)
    centers.push_back(Matrix::rand_uniform(4, 8, rng, -1.0f, 1.0f));
  std::vector<Matrix> keys;
  for (std::size_t p = 0; p < protos; ++p)
    for (std::size_t j = 0; j < per_proto; ++j) {
      Matrix k = centers[p];
      k += Matrix::randn(4, 8, rng, 0.05f);
      keys.push_back(k);
    }
  return keys;
}

TEST(LifecycleRouter, AdmittedUserRecallAtLeast095AndNprobeAllExact) {
  Rng kr(401);
  serve::OvtStoreConfig cfg = lifecycle_store_config(2, /*two_phase=*/true);
  cfg.two_phase.nprobe = 2;
  serve::ShardedOvtStore store(cfg);
  for (std::size_t u = 0; u < 4; ++u) store.add_user(u, clustered_keys(4, 4, kr));
  Rng br(19);
  store.build(br);
  ASSERT_TRUE(store.routed());

  // Router refresh: admitted users get a freshly clustered router; nobody
  // else's router is touched (per-user routers — incremental by design).
  const std::size_t before = store.router_refreshes();
  store.admit_user(10, clustered_keys(4, 4, kr));
  store.admit_user(11, clustered_keys(4, 4, kr));
  EXPECT_EQ(store.router_refreshes(), before + 2);

  Rng qr(402);
  std::size_t matches = 0, total = 0;
  serve::ShardedOvtStore::RouteScratch rs;
  retrieval::CimRetriever::Scratch sc1, sc2;
  for (const std::size_t u : {10ul, 11ul}) {
    const auto slot = store.slot(u);
    for (int t = 0; t < 24; ++t) {
      const Matrix q = Matrix::randn(1, 32, qr);
      cim::CandidateSet cand;
      store.route_candidates(slot.shard, q, {u}, cand, rs);
      Matrix masked, exact;
      store.shard_scores_into(slot.shard, q, masked, sc1, &cand);
      store.shard_scores_into(slot.shard, q, exact, sc2);
      const std::size_t routed =
          serve::ShardedOvtStore::best_in_slot_candidates(masked, 0, slot, cand);
      const std::size_t truth = serve::ShardedOvtStore::best_in_slot(exact, 0, slot);
      matches += routed == truth ? 1 : 0;
      ++total;
    }
    EXPECT_GE(store.router_k(u), 2u);
  }
  EXPECT_GE(static_cast<double>(matches) / static_cast<double>(total), 0.95);

  // nprobe = all on an admitted user: candidates cover the slot, winners
  // bit-identical to the exact pass.
  serve::OvtStoreConfig all_cfg = lifecycle_store_config(2, true);
  all_cfg.two_phase.nprobe = 0;
  serve::ShardedOvtStore all_store(all_cfg);
  Rng kr2(401);
  for (std::size_t u = 0; u < 4; ++u) all_store.add_user(u, clustered_keys(4, 4, kr2));
  Rng br2(19);
  all_store.build(br2);
  all_store.admit_user(10, clustered_keys(4, 4, kr2));
  const auto slot = all_store.slot(10);
  for (int t = 0; t < 8; ++t) {
    const Matrix q = Matrix::randn(1, 32, qr);
    cim::CandidateSet cand;
    all_store.route_candidates(slot.shard, q, {10ul}, cand, rs);
    EXPECT_EQ(cand.count_row(0), slot.n_keys());
    Matrix masked, exact;
    all_store.shard_scores_into(slot.shard, q, masked, sc1, &cand);
    all_store.shard_scores_into(slot.shard, q, exact, sc2);
    EXPECT_EQ(serve::ShardedOvtStore::best_in_slot_candidates(masked, 0, slot, cand),
              serve::ShardedOvtStore::best_in_slot(exact, 0, slot));
  }
}

// ---------------------------------------------------------------------------
// Engine-level lifecycle (threaded; runs under ASan/TSan in CI).
// ---------------------------------------------------------------------------

llm::TinyLM lifecycle_model(std::size_t vocab, std::uint64_t seed) {
  llm::TinyLmConfig cfg;
  cfg.vocab = vocab;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.ffn_hidden = 32;
  cfg.max_seq = 40;
  cfg.prompt_slots = 8;
  return llm::TinyLM(cfg, seed);
}

struct LifecycleEngineFixture {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;
  std::shared_ptr<const compress::Autoencoder> autoencoder;

  LifecycleEngineFixture() : model(lifecycle_model(task.vocab_size(), 21)) {
    compress::AutoencoderConfig acfg;
    acfg.input_dim = 16;
    acfg.code_dim = 24;
    acfg.hidden_dim = 32;
    autoencoder = std::make_shared<const compress::Autoencoder>(acfg);
  }

  core::TrainedDeployment make_deployment(std::size_t user, std::size_t n_keys = 6) {
    core::TrainedDeployment d;
    d.autoencoder = autoencoder;
    d.n_virtual_tokens = 4;
    Rng rng(5000 + user);
    for (std::size_t k = 0; k < n_keys; ++k) {
      d.keys.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
      d.stored_codes.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
      d.domains.push_back(k);
    }
    return d;
  }

  serve::ServingConfig config(std::size_t shards, std::size_t threads, std::size_t batch) {
    serve::ServingConfig cfg;
    cfg.n_shards = shards;
    cfg.n_threads = threads;
    cfg.max_batch = batch;
    cfg.crossbar.rows = 96;
    cfg.crossbar.cols = 32;
    cfg.variation = {nvm::fefet3(), 0.1};
    cfg.lifecycle.enabled = true;
    cfg.seed = 2026;
    return cfg;
  }

  data::Sample query(Rng& rng) {
    return task.sample(rng.uniform_index(task.config().n_domains), rng);
  }
};

TEST(LifecycleEngine, AdmitAndEvictWhileServing) {
  LifecycleEngineFixture f;
  serve::ServingEngine engine(f.model, f.task, f.config(2, 2, 8));
  for (std::size_t u = 0; u < 4; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  // Reference answers for an untouched user, before any churn.
  Rng qr(501);
  std::vector<data::Sample> probes;
  std::vector<std::size_t> expected;
  for (int t = 0; t < 6; ++t) {
    probes.push_back(f.query(qr));
    expected.push_back(engine.retrieve_serial(0, probes.back()));
  }

  // Live admission mid-serve: the new user is immediately servable.
  engine.admit_user(100, f.make_deployment(100));
  std::vector<std::future<serve::Response>> futures;
  for (int t = 0; t < 8; ++t) futures.push_back(engine.submit(100, f.query(qr)));
  for (auto& fu : futures) {
    const serve::Response r = fu.get();
    EXPECT_EQ(r.user_id, 100u);
    EXPECT_LT(r.ovt_index, engine.deployment(100).n_ovts());
  }
  // Admitted results match the serial reference path (same banks).
  const data::Sample probe100 = f.query(qr);
  EXPECT_EQ(engine.serve(100, probe100).ovt_index, engine.retrieve_serial(100, probe100));

  // Live eviction: in-flight traffic drains, then submits are rejected.
  engine.evict_user(2);
  EXPECT_THROW(engine.submit(2, f.query(qr)).get(), serve::UnknownUser);
  EXPECT_FALSE(engine.store().has_user(2));

  // Untouched users are bit-identical through the whole churn.
  for (std::size_t t = 0; t < probes.size(); ++t) {
    EXPECT_EQ(engine.retrieve_serial(0, probes[t]), expected[t]) << "probe " << t;
    EXPECT_EQ(engine.serve(0, probes[t]).ovt_index, expected[t]) << "probe " << t;
  }

  const serve::StatsSnapshot s = engine.stats();
  EXPECT_EQ(s.users_admitted, 1u);
  EXPECT_EQ(s.users_evicted, 1u);
  engine.stop();
}

TEST(LifecycleEngine, RebalanceDuringParallelServingKeepsResults) {
  LifecycleEngineFixture f;
  serve::ServingConfig cfg = f.config(2, 4, 8);
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < 6; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  // Unbalance shard loads by evicting every tenant of shard 1.
  std::vector<std::size_t> survivors;
  for (std::size_t u = 0; u < 6; ++u) {
    if (engine.store().slot(u).shard == 1)
      engine.evict_user(u);
    else
      survivors.push_back(u);
  }
  ASSERT_GE(survivors.size(), 2u);
  ASSERT_EQ(engine.store().shard_occupied(1), 0u);

  Rng qr(511);
  std::vector<data::Sample> probes;
  std::vector<std::size_t> users, expected;
  for (int t = 0; t < 12; ++t) {
    users.push_back(survivors[static_cast<std::size_t>(t) % survivors.size()]);
    probes.push_back(f.query(qr));
    expected.push_back(engine.retrieve_serial(users.back(), probes.back()));
  }

  // Serve while the rebalancer migrates users between shards (as aux tasks
  // on the same worker pool, parallel shard fan-out on).
  std::vector<std::future<serve::Response>> futures;
  for (std::size_t t = 0; t < probes.size(); ++t)
    futures.push_back(engine.submit(users[t], probes[t]));
  const std::size_t migrated = engine.rebalance();
  EXPECT_GT(migrated, 0u);
  EXPECT_GT(engine.store().shard_occupied(1), 0u);

  // Every response matches the pre- or post-migration serial answer for its
  // user (epoch pinning decides which placement a batch scored against; for
  // untouched users both coincide — per-column noise streams are stable).
  for (std::size_t t = 0; t < futures.size(); ++t) {
    const std::size_t got = futures[t].get().ovt_index;
    const std::size_t after = engine.retrieve_serial(users[t], probes[t]);
    EXPECT_TRUE(got == expected[t] || got == after)
        << "request " << t << ": got " << got << ", pre " << expected[t] << ", post " << after;
    const auto slot = engine.store().slot(users[t]);
    if (slot.shard == 0 && expected[t] == after) {  // untouched placement
      EXPECT_EQ(got, expected[t]) << "request " << t;
    }
  }

  const serve::StatsSnapshot s = engine.stats();
  EXPECT_EQ(s.migrations, migrated);
  EXPECT_GT(s.rebalance_ms, 0.0);
  engine.stop();
}

TEST(LifecycleEngine, TrySubmitOverloadedInsteadOfBlocking) {
  LifecycleEngineFixture f;
  serve::ServingConfig cfg = f.config(2, 1, 8);
  cfg.queue_capacity = 2;
  // The lone worker waits for a full batch inside a long coalescing window,
  // so the queue deterministically fills to capacity without being drained.
  cfg.min_batch = 8;
  cfg.batch_window_ms = 300.0;
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < 2; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  Rng qr(521);
  auto f1 = engine.try_submit(0, f.query(qr));
  ASSERT_TRUE(f1.has_value());  // room in the queue → accepted
  auto f2 = engine.try_submit(1, f.query(qr));
  ASSERT_TRUE(f2.has_value());
  // Queue is at capacity and the worker is inside its batch window: a
  // blocking submit would stall here — try_submit reports Overloaded.
  auto f3 = engine.try_submit(0, f.query(qr));
  EXPECT_FALSE(f3.has_value());
  EXPECT_EQ(engine.stats().rejected_requests, 1u);

  // The accepted requests still complete (window expiry flushes them).
  (void)f1->get();
  (void)f2->get();
  engine.stop();
}

TEST(LifecycleEngine, TwoPhaseServingAcrossAdmissions) {
  LifecycleEngineFixture f;
  serve::ServingConfig cfg = f.config(2, 2, 8);
  cfg.two_phase.enabled = true;
  cfg.two_phase.nprobe = 0;  // probe-all: winners bit-identical to exact
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < 4; ++u) engine.add_deployment(u, f.make_deployment(u, 16));
  engine.start();

  engine.admit_user(200, f.make_deployment(200, 16));
  Rng qr(531);
  for (int t = 0; t < 10; ++t) {
    const std::size_t u = t % 2 == 0 ? 200u : 1u;
    const data::Sample q = f.query(qr);
    EXPECT_EQ(engine.serve(u, q).ovt_index, engine.retrieve_serial(u, q)) << "request " << t;
  }
  const serve::StatsSnapshot s = engine.stats();
  EXPECT_GT(s.candidates_examined, 0u);
  EXPECT_EQ(s.router_refreshes, 1u);
  engine.stop();
}

}  // namespace
}  // namespace nvcim
