#include <gtest/gtest.h>

#include "nvcim/eval/metrics.hpp"

namespace nvcim::eval {
namespace {

TEST(Rouge1, PerfectMatch) {
  const Rouge1 r = rouge1({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
}

TEST(Rouge1, OrderIndependent) {
  const Rouge1 r = rouge1({3, 1, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
}

TEST(Rouge1, NoOverlap) {
  const Rouge1 r = rouge1({4, 5}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(Rouge1, PartialOverlap) {
  // hyp {1,2,4}, ref {1,2,3}: overlap 2 -> P=2/3, R=2/3, F1=2/3.
  const Rouge1 r = rouge1({1, 2, 4}, {1, 2, 3});
  EXPECT_NEAR(r.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.f1, 2.0 / 3.0, 1e-12);
}

TEST(Rouge1, ClippedCounts) {
  // Repeating a reference word in the hypothesis must not inflate overlap
  // beyond the reference count (Lin 2004 clipping).
  const Rouge1 r = rouge1({1, 1, 1}, {1, 2});
  EXPECT_NEAR(r.precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.recall, 1.0 / 2.0, 1e-12);
}

TEST(Rouge1, AsymmetricLengths) {
  const Rouge1 r = rouge1({1}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.25);
  EXPECT_NEAR(r.f1, 2.0 * 1.0 * 0.25 / 1.25, 1e-12);
}

TEST(Rouge1, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(rouge1({}, {1}).f1, 0.0);
  EXPECT_DOUBLE_EQ(rouge1({1}, {}).f1, 0.0);
  EXPECT_DOUBLE_EQ(rouge1({}, {}).f1, 0.0);
}


TEST(RougeL, PerfectAndReversed) {
  EXPECT_DOUBLE_EQ(rouge_l({1, 2, 3}, {1, 2, 3}).f1, 1.0);
  // Reversed order: LCS = 1 -> P=R=1/3.
  const RougeL r = rouge_l({3, 2, 1}, {1, 2, 3});
  EXPECT_NEAR(r.f1, 1.0 / 3.0, 1e-12);
}

TEST(RougeL, SubsequenceNotSubstring) {
  // LCS of {1,9,2,9,3} vs {1,2,3} is {1,2,3}.
  const RougeL r = rouge_l({1, 9, 2, 9, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_NEAR(r.precision, 3.0 / 5.0, 1e-12);
}

TEST(RougeL, OrderSensitiveUnlikeRouge1) {
  const std::vector<int> hyp{3, 1, 2}, ref{1, 2, 3};
  EXPECT_DOUBLE_EQ(rouge1(hyp, ref).f1, 1.0);
  EXPECT_LT(rouge_l(hyp, ref).f1, 1.0);
}

TEST(RougeL, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(rouge_l({}, {1}).f1, 0.0);
  EXPECT_DOUBLE_EQ(rouge_l({1}, {}).f1, 0.0);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const Interval iv = wilson_interval(30, 60);
  EXPECT_LT(iv.lo, 0.5);
  EXPECT_GT(iv.hi, 0.5);
  EXPECT_GT(iv.lo, 0.3);
  EXPECT_LT(iv.hi, 0.7);
}

TEST(WilsonInterval, ShrinksWithTrials) {
  const Interval small = wilson_interval(5, 10);
  const Interval large = wilson_interval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(WilsonInterval, EdgeCases) {
  const Interval zero = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_DOUBLE_EQ(zero.hi, 1.0);
  const Interval all = wilson_interval(10, 10);
  EXPECT_GT(all.lo, 0.6);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  const Interval none = wilson_interval(0, 10);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.4);
}

TEST(MeanAccumulator, Basics) {
  MeanAccumulator m;
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.count(), 0u);
  m.add(1.0);
  m.add(3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_EQ(m.count(), 2u);
}

TEST(MeanAccumulator, NegativeValues) {
  MeanAccumulator m;
  m.add(-2.0);
  m.add(2.0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

}  // namespace
}  // namespace nvcim::eval
