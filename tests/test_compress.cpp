#include <gtest/gtest.h>

#include "nvcim/compress/autoencoder.hpp"

namespace nvcim::compress {
namespace {

AutoencoderConfig quick_config() {
  AutoencoderConfig cfg;
  cfg.input_dim = 12;
  cfg.code_dim = 16;
  cfg.hidden_dim = 32;
  cfg.steps = 400;
  return cfg;
}

std::vector<Matrix> training_rows(std::size_t n, Rng& rng) {
  std::vector<Matrix> rows;
  for (std::size_t i = 0; i < n; ++i) rows.push_back(Matrix::randn(4, 12, rng, 0.8f));
  return rows;
}

TEST(Autoencoder, EncodeDecodeShapes) {
  Autoencoder ae(quick_config());
  Rng rng(1);
  const Matrix x = Matrix::randn(5, 12, rng);
  const Matrix code = ae.encode(x);
  EXPECT_EQ(code.rows(), 5u);
  EXPECT_EQ(code.cols(), 16u);
  const Matrix rec = ae.decode(code);
  EXPECT_EQ(rec.rows(), 5u);
  EXPECT_EQ(rec.cols(), 12u);
}

TEST(Autoencoder, CodeIsBoundedForInt16Storage) {
  Autoencoder ae(quick_config());
  Rng rng(2);
  // Even extreme inputs produce codes in [-1, 1] (tanh): NVM-compatible.
  const Matrix x = Matrix::randn(3, 12, rng, 50.0f);
  const Matrix code = ae.encode(x);
  EXPECT_LE(code.max_abs(), 1.0f);
}

TEST(Autoencoder, TrainingReducesReconstructionError) {
  Rng rng(3);
  const auto rows = training_rows(16, rng);
  AutoencoderConfig cfg = quick_config();
  Autoencoder untrained(cfg);
  Autoencoder trained(cfg);
  trained.train(rows);
  const Matrix probe = rows[0];
  EXPECT_LT(trained.reconstruction_error(probe), untrained.reconstruction_error(probe));
}

TEST(Autoencoder, GeneralizesNearManifoldWithAugmentation) {
  Rng rng(4);
  const auto rows = training_rows(16, rng);
  Autoencoder ae(quick_config());
  ae.train(rows);
  // Probe: perturbed mixture of two training rows (off-manifold direction).
  Matrix probe = rows[0].row(0);
  probe.add_scaled(rows[1].row(2), 0.7f);
  for (std::size_t i = 0; i < probe.size(); ++i)
    probe.at_flat(i) += static_cast<float>(rng.normal(0.0, 0.1));
  const float err = ae.reconstruction_error(probe);
  const float scale = probe.frobenius_norm() * probe.frobenius_norm() /
                      static_cast<float>(probe.size());
  EXPECT_LT(err, 0.3f * scale);
}

TEST(Autoencoder, UpdateImprovesOnNewData) {
  Rng rng(5);
  const auto rows = training_rows(16, rng);
  Autoencoder ae(quick_config());
  ae.train(rows);
  // A new cluster far from the training data.
  Matrix shifted = Matrix::randn(6, 12, rng, 0.5f);
  shifted += Matrix(6, 12, 3.0f);
  const float before = ae.reconstruction_error(shifted);
  ae.update({shifted}, 300);
  const float after = ae.reconstruction_error(shifted);
  EXPECT_LT(after, before);
}

TEST(Autoencoder, DimensionMismatchThrows) {
  Autoencoder ae(quick_config());
  EXPECT_THROW(ae.train({Matrix(2, 5, 1.0f)}), Error);
}

TEST(Autoencoder, EmptyTrainingThrows) {
  Autoencoder ae(quick_config());
  EXPECT_THROW(ae.train({}), Error);
}

TEST(Autoencoder, DeterministicForSeed) {
  Rng rng(6);
  const auto rows = training_rows(8, rng);
  AutoencoderConfig cfg = quick_config();
  cfg.steps = 50;
  Autoencoder a(cfg), b(cfg);
  a.train(rows);
  b.train(rows);
  const Matrix probe = rows[0];
  EXPECT_TRUE(allclose(a.encode(probe), b.encode(probe)));
}

TEST(Autoencoder, CopyIsIndependent) {
  Rng rng(7);
  const auto rows = training_rows(8, rng);
  AutoencoderConfig cfg = quick_config();
  cfg.steps = 50;
  Autoencoder a(cfg);
  a.train(rows);
  Autoencoder b = a;  // value copy
  b.update(rows, 50);
  // a unchanged by b's update — encodes identically to a fresh copy of a.
  const Matrix probe = rows[0];
  const Matrix ca = a.encode(probe);
  Autoencoder c = a;
  EXPECT_TRUE(allclose(ca, c.encode(probe)));
}

}  // namespace
}  // namespace nvcim::compress
