// Two-phase retrieval (PR 4): k-means candidate routing + low-bit sketch
// prefilter ahead of candidate-masked exact crossbar scoring.
//
//  - the masked fused kernel is bit-identical to the full pass on candidate
//    columns (and exactly 0 elsewhere), at crossbar and accelerator level,
//    with pruned ADC accounting
//  - the store's router keeps candidates inside the user's slot, never
//    empty, and covers the whole slot at nprobe = all
//  - an engine with two-phase enabled at nprobe = all reproduces the exact
//    (two-phase off) engine bit-identically, request for request
//  - recall@1 at the default nprobe stays >= 0.95 on a seeded clustered
//    workload, and pruning/recall counters land in EngineStats
//  - the parallel per-shard fan-out stays deterministic with masks on
//    (this suite also runs under TSan in CI)
//  - the batched decode GEMM and TinyLM::classify_batch satellites match
//    their serial counterparts bit-for-bit.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "nvcim/serve/engine.hpp"

namespace nvcim {
namespace {

llm::TinyLM tiny_model2(std::size_t vocab, std::size_t d_model, std::uint64_t seed) {
  llm::TinyLmConfig cfg;
  cfg.vocab = vocab;
  cfg.d_model = d_model;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.ffn_hidden = 2 * d_model;
  cfg.max_seq = 40;
  cfg.prompt_slots = 8;
  return llm::TinyLM(cfg, seed);
}

std::vector<int> random_tokens2(std::size_t len, std::size_t vocab, Rng& rng) {
  std::vector<int> t(len);
  for (int& v : t) v = static_cast<int>(rng.uniform_index(vocab));
  return t;
}

// ---------------------------------------------------------------------------
// Masked fused kernel: crossbar and accelerator level.
// ---------------------------------------------------------------------------

Matrix random_ints(std::size_t rows, std::size_t cols, int lo, int hi, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.at_flat(i) = static_cast<float>(
        lo + static_cast<int>(rng.uniform_index(static_cast<std::size_t>(hi - lo + 1))));
  return m;
}

/// Random mask over B×n_keys with roughly `density` candidate probability,
/// at least one candidate per row.
cim::CandidateSet random_mask(std::size_t B, std::size_t n_keys, double density, Rng& rng) {
  cim::CandidateSet cand;
  cand.reset(B, n_keys);
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t k = 0; k < n_keys; ++k)
      if (rng.uniform() < density) cand.set(b, k);
    if (cand.count_row(b) == 0) cand.set(b, rng.uniform_index(n_keys));
  }
  return cand;
}

TEST(MaskedKernel, CandidateColumnsBitIdenticalAndRestExactZero) {
  cim::CrossbarConfig cfg;
  cfg.rows = 60;
  cfg.cols = 40;  // differential: 40 output columns over 80 interleaved lanes
  cfg.adc_bits = 8;
  cim::Crossbar full(cfg), masked(cfg);
  Rng wr(211);
  const Matrix w = random_ints(cfg.rows, cfg.cols, -4000, 4000, wr);
  Rng p1(212), p2(212);
  full.program(w, {nvm::fefet3(), 0.15}, p1);
  masked.program(w, {nvm::fefet3(), 0.15}, p2);

  Rng qr(213);
  const Matrix x = Matrix::randn(7, cfg.rows, qr);
  const Matrix y_full = full.matvec_batch(x);

  // Sparse mask: with ~4% density a 16-column accumulator block is often
  // candidate-free for a query, so whole-block pruning actually fires.
  Rng mr(214);
  const cim::CandidateSet cand = random_mask(7, cfg.cols, 0.04, mr);
  Matrix y_masked;
  masked.matvec_batch_into(x, y_masked, &cand, 0);

  ASSERT_TRUE(y_full.same_shape(y_masked));
  bool any_zeroed = false;
  for (std::size_t b = 0; b < 7; ++b) {
    for (std::size_t c = 0; c < cfg.cols; ++c) {
      if (cand.test(b, c)) {
        EXPECT_EQ(y_full(b, c), y_masked(b, c)) << "candidate (" << b << "," << c << ")";
      } else {
        // Block-granular masking: a non-candidate column is either exact 0
        // (its whole accumulator block was pruned for this query) or the
        // exact full-pass value (a candidate shares its block) — never
        // anything in between.
        const bool exact = y_masked(b, c) == y_full(b, c);
        const bool zeroed = y_masked(b, c) == 0.0f;
        EXPECT_TRUE(exact || zeroed) << "pruned (" << b << "," << c << ")";
        any_zeroed = any_zeroed || (zeroed && y_full(b, c) != 0.0f);
      }
    }
  }
  EXPECT_TRUE(any_zeroed);  // the mask actually pruned whole blocks
  // Pruned ADC accounting: the masked pass converted fewer columns.
  EXPECT_LT(masked.counters().adc_conversions, full.counters().adc_conversions);
  EXPECT_EQ(masked.counters().subarray_activations, full.counters().subarray_activations);
}

TEST(MaskedKernel, FastAccumulateHonoursMaskToo) {
  cim::CrossbarConfig cfg;
  cfg.rows = 48;
  cfg.cols = 24;
  cfg.fast_accumulate = true;
  cim::Crossbar xb(cfg);
  Rng wr(221), pr(222);
  xb.program(random_ints(cfg.rows, cfg.cols, -2000, 2000, wr), {nvm::fefet3(), 0.1}, pr);
  Rng qr(223), mr(224);
  const Matrix x = Matrix::randn(5, cfg.rows, qr);
  const cim::CandidateSet cand = random_mask(5, cfg.cols, 0.25, mr);
  const Matrix y_full = xb.matvec_batch(x);
  Matrix y_masked;
  xb.matvec_batch_into(x, y_masked, &cand, 0);
  for (std::size_t b = 0; b < 5; ++b)
    for (std::size_t c = 0; c < cfg.cols; ++c) {
      if (cand.test(b, c))
        EXPECT_EQ(y_full(b, c), y_masked(b, c)) << "(" << b << "," << c << ")";
      else
        EXPECT_TRUE(y_masked(b, c) == y_full(b, c) || y_masked(b, c) == 0.0f)
            << "(" << b << "," << c << ")";
    }
}

TEST(MaskedAccelerator, TiledQueryBatchMatchesFullOnCandidates) {
  cim::CrossbarConfig cfg;
  cfg.rows = 64;
  cfg.cols = 16;  // forces tiling in both grid dimensions below
  cfg.adc_bits = 8;
  cim::Accelerator acc(cfg, {nvm::rram1(), 0.2});
  Rng rng(231);
  acc.store(Matrix::randn(40, 100, rng), rng);  // 40 keys × len 100

  Rng qr(232), mr(233);
  const Matrix queries = Matrix::randn(6, 100, qr);
  const cim::CandidateSet cand = random_mask(6, 40, 0.2, mr);

  cim::Accelerator::BatchScratch s1, s2;
  Matrix y_full, y_masked;
  acc.query_batch_into(queries, y_full, s1);
  acc.query_batch_into(queries, y_masked, s2, &cand);
  ASSERT_TRUE(y_full.same_shape(y_masked));
  for (std::size_t b = 0; b < 6; ++b)
    for (std::size_t k = 0; k < 40; ++k) {
      if (cand.test(b, k))
        EXPECT_EQ(y_full(b, k), y_masked(b, k)) << "(" << b << "," << k << ")";
      else
        EXPECT_TRUE(y_masked(b, k) == y_full(b, k) || y_masked(b, k) == 0.0f)
            << "(" << b << "," << k << ")";
    }
}

// ---------------------------------------------------------------------------
// Store-level routing.
// ---------------------------------------------------------------------------

/// Clustered synthetic deployment: keys are noisy copies of a few separated
/// prototypes, so the router's k-means recovers real structure. Queries that
/// score best against one prototype family keep their winner inside the
/// probed clusters — the regime two-phase retrieval is built for.
core::TrainedDeployment clustered_deployment(
    std::shared_ptr<const compress::Autoencoder> autoencoder, std::size_t n_vt,
    std::size_t code_dim, std::size_t n_protos, std::size_t keys_per_proto, Rng& rng) {
  core::TrainedDeployment d;
  d.autoencoder = std::move(autoencoder);
  d.n_virtual_tokens = n_vt;
  std::vector<Matrix> protos;
  for (std::size_t p = 0; p < n_protos; ++p)
    protos.push_back(Matrix::rand_uniform(n_vt, code_dim, rng, -1.0f, 1.0f));
  for (std::size_t p = 0; p < n_protos; ++p) {
    for (std::size_t j = 0; j < keys_per_proto; ++j) {
      Matrix key = protos[p];
      key += Matrix::randn(n_vt, code_dim, rng, 0.05f);
      d.keys.push_back(key);
      d.stored_codes.push_back(Matrix::rand_uniform(n_vt, code_dim, rng, -1.0f, 1.0f));
      d.domains.push_back(p);
    }
  }
  return d;
}

struct TwoPhaseFixture {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;
  std::shared_ptr<const compress::Autoencoder> autoencoder;

  static constexpr std::size_t kDModel = 16;
  static constexpr std::size_t kCodeDim = 24;
  static constexpr std::size_t kTokens = 4;
  static constexpr std::size_t kProtos = 4;
  static constexpr std::size_t kKeysPerProto = 4;  // 16 keys per user

  TwoPhaseFixture() : model(tiny_model2(task.vocab_size(), kDModel, 9)) {
    compress::AutoencoderConfig acfg;
    acfg.input_dim = kDModel;
    acfg.code_dim = kCodeDim;
    acfg.hidden_dim = 32;
    autoencoder = std::make_shared<const compress::Autoencoder>(acfg);
  }

  core::TrainedDeployment make_deployment(std::size_t user) {
    Rng rng(7000 + user);
    return clustered_deployment(autoencoder, kTokens, kCodeDim, kProtos, kKeysPerProto, rng);
  }

  serve::ServingConfig config(bool two_phase, std::size_t nprobe, std::size_t shards,
                              std::size_t threads, std::size_t batch) const {
    serve::ServingConfig cfg;
    cfg.n_shards = shards;
    cfg.n_threads = threads;
    cfg.max_batch = batch;
    cfg.two_phase.enabled = two_phase;
    cfg.two_phase.nprobe = nprobe;
    cfg.crossbar.rows = 96;
    cfg.crossbar.cols = 32;
    cfg.variation = {nvm::fefet3(), 0.1};
    cfg.seed = 2026;
    return cfg;
  }

  std::vector<std::size_t> run(const serve::ServingConfig& cfg,
                               const std::vector<std::pair<std::size_t, data::Sample>>& reqs,
                               std::size_t n_users, serve::StatsSnapshot* stats = nullptr) {
    serve::ServingEngine engine(model, task, cfg);
    for (std::size_t u = 0; u < n_users; ++u) engine.add_deployment(u, make_deployment(u));
    engine.start();
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(reqs.size());
    for (const auto& [u, q] : reqs) futures.push_back(engine.submit(u, q));
    std::vector<std::size_t> out;
    out.reserve(reqs.size());
    for (auto& f : futures) out.push_back(f.get().ovt_index);
    if (stats != nullptr) *stats = engine.stats();
    engine.stop();
    return out;
  }

  std::vector<std::pair<std::size_t, data::Sample>> requests(std::size_t n, std::size_t n_users,
                                                             std::uint64_t seed) {
    Rng qr(seed);
    std::vector<std::pair<std::size_t, data::Sample>> reqs;
    for (std::size_t t = 0; t < n; ++t) {
      const std::size_t u = qr.uniform_index(n_users);
      reqs.emplace_back(u, task.sample(qr.uniform_index(task.config().n_domains), qr));
    }
    return reqs;
  }
};

TEST(TwoPhaseRouter, CandidatesStayInSlotAndNonEmpty) {
  TwoPhaseFixture f;
  const std::size_t n_users = 6;
  serve::ServingEngine engine(f.model, f.task, f.config(true, 2, 2, 1, 8));
  for (std::size_t u = 0; u < n_users; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();
  const serve::ShardedOvtStore& store = engine.store();
  ASSERT_TRUE(store.routed());

  Rng qr(301);
  for (std::size_t u = 0; u < n_users; ++u) {
    const auto& slot = store.slot(u);
    // k per Eq. 2 on a 16-key slot: within [2, 16] and at most the slot size.
    EXPECT_GE(store.router_k(u), 2u);
    EXPECT_LE(store.router_k(u), slot.n_keys());

    Matrix queries = Matrix::randn(3, f.kTokens * f.kCodeDim, qr);
    serve::ShardedOvtStore::RouteScratch rs;
    cim::CandidateSet cand;
    const std::vector<std::size_t> users(3, u);
    store.route_candidates(slot.shard, queries, users, cand, rs);
    for (std::size_t b = 0; b < 3; ++b) {
      const std::size_t n_cand = cand.count_row(b);
      EXPECT_GE(n_cand, 1u);
      EXPECT_LE(n_cand, slot.n_keys());
      for (std::size_t k = 0; k < cand.n_keys; ++k) {
        if (cand.test(b, k)) {
          EXPECT_TRUE(k >= slot.begin && k < slot.end)
              << "candidate " << k << " escapes slot of user " << u;
        }
      }
    }
  }
  engine.stop();
}

TEST(TwoPhaseRouter, NprobeAllCoversWholeSlot) {
  TwoPhaseFixture f;
  serve::ServingEngine engine(f.model, f.task, f.config(true, /*nprobe=*/0, 2, 1, 8));
  for (std::size_t u = 0; u < 4; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();
  const serve::ShardedOvtStore& store = engine.store();
  Rng qr(311);
  for (std::size_t u = 0; u < 4; ++u) {
    const auto& slot = store.slot(u);
    Matrix queries = Matrix::randn(2, f.kTokens * f.kCodeDim, qr);
    serve::ShardedOvtStore::RouteScratch rs;
    cim::CandidateSet cand;
    store.route_candidates(slot.shard, queries, std::vector<std::size_t>(2, u), cand, rs);
    for (std::size_t b = 0; b < 2; ++b)
      EXPECT_EQ(cand.count_row(b), slot.n_keys()) << "user " << u << " row " << b;
  }
  engine.stop();
}

// ---------------------------------------------------------------------------
// Engine-level properties.
// ---------------------------------------------------------------------------

TEST(TwoPhase, NprobeAllBitIdenticalToExactEngine) {
  TwoPhaseFixture f;
  const std::size_t n_users = 8;
  const auto reqs = f.requests(48, n_users, 321);

  const std::vector<std::size_t> exact = f.run(f.config(false, 0, 4, 2, 16), reqs, n_users);
  serve::StatsSnapshot s;
  const std::vector<std::size_t> all_probe =
      f.run(f.config(true, /*nprobe=*/0, 4, 2, 16), reqs, n_users, &s);
  ASSERT_EQ(exact.size(), all_probe.size());
  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_EQ(exact[i], all_probe[i]) << "request " << i;
  // nprobe = all still prunes other users' columns — the masked pass
  // examined fewer keys than a full pass would have.
  EXPECT_GT(s.candidates_examined, 0u);
  EXPECT_LT(s.candidates_examined, s.candidates_possible);
  EXPECT_GT(s.pruned_fraction, 0.0);
  // Sampled recall of the all-probe configuration is exact by construction.
  ASSERT_GT(s.recall_samples, 0u);
  EXPECT_EQ(s.recall_matches, s.recall_samples);
}

TEST(TwoPhase, DefaultNprobeRecallAtLeast095OnSeededWorkload) {
  TwoPhaseFixture f;
  const std::size_t n_users = 8;
  const auto reqs = f.requests(96, n_users, 331);

  const std::vector<std::size_t> exact = f.run(f.config(false, 0, 4, 2, 16), reqs, n_users);
  serve::StatsSnapshot s;
  serve::ServingConfig pruned_cfg = f.config(true, 0, 4, 2, 16);
  pruned_cfg.two_phase.nprobe = serve::TwoPhaseConfig{}.nprobe;  // the default
  const std::vector<std::size_t> pruned = f.run(pruned_cfg, reqs, n_users, &s);

  std::size_t matches = 0;
  for (std::size_t i = 0; i < exact.size(); ++i)
    if (exact[i] == pruned[i]) ++matches;
  const double recall = static_cast<double>(matches) / static_cast<double>(exact.size());
  EXPECT_GE(recall, 0.95) << matches << "/" << exact.size();
  // And the pruning must be real. candidates_examined is block-granular
  // (candidate work rounds up to whole 16-column accumulator blocks, and at
  // this geometry each user's 16-key slot is exactly one block), so the
  // measurable saving here is the slot-level half of the shard.
  EXPECT_LE(s.candidates_examined, s.candidates_possible / 2);
  EXPECT_GT(s.candidates_examined, 0u);
}

TEST(TwoPhase, ParallelShardFanoutWithMasksDeterministic) {
  TwoPhaseFixture f;
  const std::size_t n_users = 12;
  const auto reqs = f.requests(64, n_users, 341);

  serve::ServingConfig serial_cfg = f.config(true, 2, 4, 4, 16);
  serial_cfg.parallel_retrieval = false;
  serve::ServingConfig parallel_cfg = f.config(true, 2, 4, 4, 16);

  const std::vector<std::size_t> serial = f.run(serial_cfg, reqs, n_users);
  serve::StatsSnapshot s;
  const std::vector<std::size_t> parallel = f.run(parallel_cfg, reqs, n_users, &s);
  const std::vector<std::size_t> parallel_again = f.run(parallel_cfg, reqs, n_users);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "request " << i;
    EXPECT_EQ(parallel[i], parallel_again[i]) << "request " << i << " (rerun)";
  }
  EXPECT_GT(s.parallel_retrieve_fanouts, 0u);
  EXPECT_GT(s.candidates_examined, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: batched decode GEMM.
// ---------------------------------------------------------------------------

TEST(BatchedDecode, StackedDecodeBitIdenticalToPerKeyDecode) {
  TwoPhaseFixture f;
  const std::size_t n_users = 6;
  serve::ServingConfig cfg = f.config(false, 0, 2, 1, 16);
  cfg.cache_capacity = 256;  // no evictions: every prompt decodes exactly once
  serve::ServingEngine engine(f.model, f.task, cfg);
  std::vector<core::TrainedDeployment> copies;
  for (std::size_t u = 0; u < n_users; ++u) {
    core::TrainedDeployment d = f.make_deployment(u);
    copies.push_back(d);  // keep a reference copy for the serial decode below
    engine.add_deployment(u, std::move(d));
  }
  engine.start();

  // A burst of distinct users in one batch forces several cache misses in a
  // single process_batch pass — the stacked-decode path.
  std::vector<std::future<serve::Response>> futures;
  Rng qr(351);
  std::vector<std::size_t> users;
  for (std::size_t u = 0; u < n_users; ++u) {
    data::Sample q;
    q.input = random_tokens2(1 + qr.uniform_index(8), f.task.vocab_size(), qr);
    users.push_back(u);
    futures.push_back(engine.submit(u, q));
  }
  std::vector<std::size_t> got;
  for (auto& fu : futures) got.push_back(fu.get().ovt_index);

  // Every decoded prompt equals the serial per-key decode bit-for-bit.
  for (std::size_t r = 0; r < users.size(); ++r) {
    const Matrix expect = copies[users[r]].decode_prompt(got[r]);
    const std::shared_ptr<const Matrix> actual = engine.prompt(users[r], got[r]);
    ASSERT_TRUE(expect.same_shape(*actual));
    for (std::size_t i = 0; i < expect.size(); ++i)
      ASSERT_EQ(expect.at_flat(i), actual->at_flat(i)) << "user " << users[r] << " flat " << i;
  }
  const serve::StatsSnapshot s = engine.stats();
  EXPECT_GT(s.batched_decode_gemms, 0u);  // at least one stacked GEMM fired
  engine.stop();
}

// ---------------------------------------------------------------------------
// Satellite: batched classify via embed_batch.
// ---------------------------------------------------------------------------

TEST(BatchedClassify, ClassifyBatchBitIdenticalToSerialClassify) {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model = tiny_model2(task.vocab_size(), 16, 61);
  Rng rng(361);

  std::vector<std::vector<int>> inputs;
  std::vector<Matrix> prompts;
  for (int t = 0; t < 12; ++t) {
    inputs.push_back(random_tokens2(1 + rng.uniform_index(10), task.vocab_size(), rng));
    prompts.push_back(Matrix::rand_uniform(4, 16, rng, -1.0f, 1.0f));
  }
  std::vector<const std::vector<int>*> seqs;
  std::vector<const Matrix*> sps;
  for (int t = 0; t < 12; ++t) {
    seqs.push_back(&inputs[t]);
    // Exercise promptless rows too.
    sps.push_back(t % 3 == 0 ? nullptr : &prompts[t]);
  }
  const std::vector<std::size_t> batched = model.classify_batch(seqs, task.label_ids(), sps);
  ASSERT_EQ(batched.size(), seqs.size());
  for (std::size_t b = 0; b < seqs.size(); ++b)
    EXPECT_EQ(batched[b], model.classify(inputs[b], task.label_ids(), sps[b]))
        << "sequence " << b;
}

TEST(BatchedClassify, EngineLabelsMatchSerialClassify) {
  TwoPhaseFixture f;
  const std::size_t n_users = 4;
  serve::ServingConfig cfg = f.config(false, 0, 2, 2, 8);
  cfg.run_inference = true;
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < n_users; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  const auto reqs = f.requests(24, n_users, 371);
  std::vector<std::future<serve::Response>> futures;
  for (const auto& [u, q] : reqs) futures.push_back(engine.submit(u, q));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const serve::Response resp = futures[i].get();
    ASSERT_TRUE(resp.has_label);
    const std::shared_ptr<const Matrix> prompt = engine.prompt(reqs[i].first, resp.ovt_index);
    EXPECT_EQ(resp.label,
              f.model.classify(reqs[i].second.input, f.task.label_ids(), prompt.get()))
        << "request " << i;
  }
  engine.stop();
}

}  // namespace
}  // namespace nvcim
