#include <gtest/gtest.h>

#include <cmath>

#include "nvcim/nvm/device.hpp"

namespace nvcim::nvm {
namespace {

TEST(DeviceModel, TableTwoValuesVerbatim) {
  const auto devs = table2_devices();
  ASSERT_EQ(devs.size(), 5u);
  EXPECT_EQ(devs[0].name, "RRAM1");
  EXPECT_EQ(devs[0].paper_id, "NVM-1");
  EXPECT_DOUBLE_EQ(devs[0].sigma_per_level[0], 0.0100);
  EXPECT_EQ(devs[1].name, "FeFET2");
  EXPECT_DOUBLE_EQ(devs[1].sigma_per_level[0], 0.0067);
  EXPECT_DOUBLE_EQ(devs[1].sigma_per_level[1], 0.0135);
  EXPECT_EQ(devs[2].name, "FeFET3");
  EXPECT_DOUBLE_EQ(devs[2].sigma_per_level[1], 0.0146);
  EXPECT_EQ(devs[3].name, "RRAM4");
  EXPECT_DOUBLE_EQ(devs[3].sigma_per_level[0], 0.0038);
  EXPECT_EQ(devs[4].name, "FeFET6");
  EXPECT_DOUBLE_EQ(devs[4].sigma_per_level[3], 0.0026);
  for (const auto& d : devs) {
    EXPECT_EQ(d.n_levels, 4u);
    EXPECT_EQ(d.bits_per_cell(), 2u);
  }
}

TEST(DeviceModel, SymmetricLevelStructure) {
  // Table II devices are symmetric: L0==L3 and L1==L2.
  for (const auto& d : table2_devices()) {
    EXPECT_DOUBLE_EQ(d.sigma_per_level[0], d.sigma_per_level[3]);
    EXPECT_DOUBLE_EQ(d.sigma_per_level[1], d.sigma_per_level[2]);
  }
}

TEST(VariationModel, EffectiveSigmaNormalizedToGlobal) {
  VariationModel var{fefet3(), 0.1};
  // Mean effective sigma across levels equals global sigma.
  double mean = 0.0;
  for (std::size_t l = 0; l < 4; ++l) mean += var.effective_sigma(l);
  mean /= 4.0;
  EXPECT_NEAR(mean, 0.1, 1e-9);
  // Level shape preserved: mid levels noisier than edges for FeFET3.
  EXPECT_GT(var.effective_sigma(1), var.effective_sigma(0));
}

TEST(VariationModel, ScalesLinearlyWithGlobalSigma) {
  VariationModel lo{rram1(), 0.05}, hi{rram1(), 0.15};
  for (std::size_t l = 0; l < 4; ++l)
    EXPECT_NEAR(hi.effective_sigma(l), 3.0 * lo.effective_sigma(l), 1e-9);
}

TEST(NearestLevel, QuantizesCorrectly) {
  EXPECT_EQ(nearest_level(0.0, 4), 0u);
  EXPECT_EQ(nearest_level(1.0, 4), 3u);
  EXPECT_EQ(nearest_level(0.33, 4), 1u);
  EXPECT_EQ(nearest_level(0.5, 4), 2u);  // ties round up
  EXPECT_EQ(nearest_level(-0.2, 4), 0u);  // clamped
  EXPECT_EQ(nearest_level(1.7, 4), 3u);   // clamped
}

TEST(ProgramCell, NoiseFreeAtZeroSigma) {
  VariationModel var{rram1(), 0.0};
  Rng rng(1);
  EXPECT_DOUBLE_EQ(program_cell(0.0, var, rng), 0.0);
  EXPECT_NEAR(program_cell(0.65, var, rng), 2.0 / 3.0, 1e-12);
}

TEST(ProgramCell, NoiseStatisticsMatchSigma) {
  VariationModel var{rram1(), 0.1};  // uniform shape -> effective sigma 0.1
  Rng rng(2);
  const double target = 1.0 / 3.0;
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = program_cell(target, var, rng);
    sum += g - target;
    sq += (g - target) * (g - target);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.005);
  EXPECT_NEAR(std::sqrt(sq / n), 0.1, 0.01);
}

TEST(ProgramCell, OutputClampedToUnitRange) {
  VariationModel var{rram1(), 1.0};  // extreme noise
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double g = program_cell(1.0, var, rng);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
}

TEST(WriteVerify, ConvergesWithinTolerance) {
  VariationModel var{rram1(), 0.2};
  Rng rng(4);
  int exceeded = 0;
  for (int i = 0; i < 200; ++i) {
    const auto res = write_verify_cell(2.0 / 3.0, var, rng, 0.05, 50);
    if (std::fabs(res.conductance - 2.0 / 3.0) > 0.05) ++exceeded;
    EXPECT_GE(res.pulses, 1u);
    EXPECT_LE(res.pulses, 50u);
  }
  // With 50 attempts at sigma 0.2, nearly all cells land inside tolerance.
  EXPECT_LT(exceeded, 5);
}

TEST(WriteVerify, UsesMorePulsesAtHigherNoise) {
  Rng rng(5);
  VariationModel lo{rram1(), 0.02}, hi{rram1(), 0.3};
  std::size_t pulses_lo = 0, pulses_hi = 0;
  for (int i = 0; i < 300; ++i) {
    pulses_lo += write_verify_cell(1.0 / 3.0, lo, rng, 0.05, 20).pulses;
    pulses_hi += write_verify_cell(1.0 / 3.0, hi, rng, 0.05, 20).pulses;
  }
  EXPECT_GT(pulses_hi, pulses_lo);
}

TEST(WriteVerify, SinglePulseEqualsBlindWrite) {
  VariationModel var{rram1(), 0.1};
  Rng r1(6), r2(6);
  const auto wv = write_verify_cell(0.5, var, r1, 1e9, 1);
  const double blind = program_cell(0.5, var, r2);
  EXPECT_DOUBLE_EQ(wv.conductance, blind);
  EXPECT_EQ(wv.pulses, 1u);
}

class DeviceSweep : public ::testing::TestWithParam<DeviceModel> {};

TEST_P(DeviceSweep, ProgramEveryLevelWithBoundedError) {
  VariationModel var{GetParam(), 0.1};
  Rng rng(7);
  for (std::size_t level = 0; level < 4; ++level) {
    const double target = static_cast<double>(level) / 3.0;
    double worst = 0.0;
    for (int i = 0; i < 500; ++i)
      worst = std::max(worst, std::fabs(program_cell(target, var, rng) - target));
    // 5-sigma bound on the worst draw (clamping helps at the edges).
    EXPECT_LT(worst, 5.0 * var.effective_sigma(level) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceSweep, ::testing::ValuesIn(table2_devices()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace nvcim::nvm
