#include <gtest/gtest.h>

#include "nvcim/mitigation/methods.hpp"

namespace nvcim::mitigation {
namespace {

cim::CrossbarConfig xbar_config() {
  cim::CrossbarConfig cfg;
  cfg.rows = 32;
  cfg.cols = 16;
  return cfg;
}

float roundtrip_error(const MitigationMethod& m, const Matrix& w, double sigma,
                      std::uint64_t seed) {
  Rng rng(seed);
  const Matrix restored =
      m.store_and_restore(w, xbar_config(), {nvm::fefet3(), sigma}, rng);
  return (restored - w).frobenius_norm() / w.frobenius_norm();
}

Matrix payload(std::uint64_t seed = 1, std::size_t r = 8, std::size_t c = 24) {
  Rng rng(seed);
  return Matrix::randn(r, c, rng, 0.4f);
}

TEST(NvmRoundtrip, NoiselessIsQuantizationOnly) {
  Rng rng(2);
  const Matrix w = payload(2);
  Rng store(3);
  const Matrix restored = nvm_roundtrip(w, xbar_config(), {nvm::rram1(), 0.0}, store);
  // Only int16 quantization error remains.
  EXPECT_LT((restored - w).frobenius_norm() / w.frobenius_norm(), 1e-3f);
}

TEST(NvmRoundtrip, TilesLargeMatrices) {
  Rng rng(4);
  const Matrix w = Matrix::randn(70, 40, rng);  // spans 3×3 tiles of 32×16
  Rng store(5);
  const Matrix restored = nvm_roundtrip(w, xbar_config(), {nvm::rram1(), 0.0}, store);
  EXPECT_EQ(restored.rows(), 70u);
  EXPECT_EQ(restored.cols(), 40u);
  EXPECT_LT((restored - w).frobenius_norm() / w.frobenius_norm(), 1e-3f);
}

TEST(NvmRoundtrip, CountersReported) {
  cim::OpCounters counters;
  Rng store(6);
  nvm_roundtrip(payload(6), xbar_config(), {nvm::rram1(), 0.0}, store, {}, &counters);
  EXPECT_GT(counters.cells_programmed, 0u);
  EXPECT_GT(counters.write_pulses, 0u);
}

TEST(Mitigation, FactoryCoversAllKinds) {
  EXPECT_EQ(make_mitigation(Kind::None)->name(), "No-Miti");
  EXPECT_EQ(make_mitigation(Kind::SWV)->name(), "SWV");
  EXPECT_EQ(make_mitigation(Kind::CxDNN)->name(), "CxDNN");
  EXPECT_EQ(make_mitigation(Kind::CorrectNet)->name(), "CorrectNet");
}

TEST(Mitigation, AllMethodsPreserveShape) {
  const Matrix w = payload(7);
  for (Kind k : {Kind::None, Kind::SWV, Kind::CxDNN, Kind::CorrectNet}) {
    Rng rng(8);
    const Matrix r =
        make_mitigation(k)->store_and_restore(w, xbar_config(), {nvm::fefet3(), 0.1}, rng);
    EXPECT_EQ(r.rows(), w.rows());
    EXPECT_EQ(r.cols(), w.cols());
    EXPECT_TRUE(r.all_finite());
  }
}

TEST(Mitigation, SwvReducesErrorVsNoMitigation) {
  const Matrix w = payload(9, 12, 20);
  double err_none = 0.0, err_swv = 0.0;
  NoMitigation none;
  SelectiveWriteVerify swv;
  for (int rep = 0; rep < 5; ++rep) {
    err_none += roundtrip_error(none, w, 0.15, 100 + rep);
    err_swv += roundtrip_error(swv, w, 0.15, 100 + rep);
  }
  EXPECT_LT(err_swv, err_none);
}

TEST(Mitigation, SwvFullFractionBeatsPartial) {
  const Matrix w = payload(10);
  SelectiveWriteVerify::Options partial;
  partial.fraction = 0.1;
  SelectiveWriteVerify::Options full;
  full.fraction = 1.0;
  double err_partial = 0.0, err_full = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    err_partial += roundtrip_error(SelectiveWriteVerify(partial), w, 0.2, 300 + rep);
    err_full += roundtrip_error(SelectiveWriteVerify(full), w, 0.2, 300 + rep);
  }
  EXPECT_LT(err_full, err_partial);
}

TEST(Mitigation, CxDnnImprovesOverNoMitigation) {
  const Matrix w = payload(11, 16, 24);
  double err_none = 0.0, err_cx = 0.0;
  NoMitigation none;
  CxDnn cx;
  for (int rep = 0; rep < 8; ++rep) {
    err_none += roundtrip_error(none, w, 0.2, 400 + rep);
    err_cx += roundtrip_error(cx, w, 0.2, 400 + rep);
  }
  EXPECT_LT(err_cx, err_none * 1.02f);
}

TEST(Mitigation, CorrectNetHandlesOutliers) {
  // A payload with a huge outlier wastes the quantization grid; CorrectNet's
  // clipping must beat plain storage on the bulk of the values.
  Matrix w = payload(12);
  w(0, 0) = 40.0f;  // outlier ~100× the RMS
  NoMitigation none;
  CorrectNet cn;
  // Compare error on the non-outlier entries only.
  auto bulk_error = [&](const MitigationMethod& m, std::uint64_t seed) {
    Rng rng(seed);
    const Matrix r = m.store_and_restore(w, xbar_config(), {nvm::fefet3(), 0.1}, rng);
    double s = 0.0, n = 0.0;
    for (std::size_t i = 1; i < w.size(); ++i) {
      const double d = r.at_flat(i) - w.at_flat(i);
      s += d * d;
      n += static_cast<double>(w.at_flat(i)) * w.at_flat(i);
    }
    return std::sqrt(s / n);
  };
  double err_none = 0.0, err_cn = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    err_none += bulk_error(none, 500 + rep);
    err_cn += bulk_error(cn, 500 + rep);
  }
  EXPECT_LT(err_cn, err_none);
}

TEST(Mitigation, ErrorGrowsWithSigmaForAllMethods) {
  const Matrix w = payload(13);
  for (Kind k : {Kind::None, Kind::SWV, Kind::CxDNN, Kind::CorrectNet}) {
    auto m = make_mitigation(k);
    const float lo = roundtrip_error(*m, w, 0.02, 77);
    const float hi = roundtrip_error(*m, w, 0.3, 77);
    EXPECT_GT(hi, lo) << m->name();
  }
}

class MitigationSweep : public ::testing::TestWithParam<Kind> {};

TEST_P(MitigationSweep, DeterministicForSeed) {
  const Matrix w = payload(14);
  auto m = make_mitigation(GetParam());
  Rng r1(9), r2(9);
  const Matrix a = m->store_and_restore(w, xbar_config(), {nvm::fefet3(), 0.1}, r1);
  const Matrix b = m->store_and_restore(w, xbar_config(), {nvm::fefet3(), 0.1}, r2);
  EXPECT_TRUE(allclose(a, b));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MitigationSweep,
                         ::testing::Values(Kind::None, Kind::SWV, Kind::CxDNN,
                                           Kind::CorrectNet));

}  // namespace
}  // namespace nvcim::mitigation
