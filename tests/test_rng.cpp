#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nvcim/common/check.hpp"
#include "nvcim/common/rng.hpp"

namespace nvcim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithMeanAndStddev) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(17);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexRejectsZero) { EXPECT_THROW(Rng(1).uniform_index(0), Error); }

TEST(Rng, PermutationIsBijection) {
  Rng rng(19);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto s = rng.sample_without_replacement(20, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(23);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng root(31);
  Rng a = root.split(0);
  Rng b = root.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng r1(5), r2(5);
  Rng a = r1.split(99);
  Rng b = r2.split(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedResets) {
  Rng rng(3);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(3);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace nvcim
