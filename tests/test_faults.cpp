// Device-fault tolerance (PR 9): seed-driven fault injection, pristine-shadow
// scrubbing, in-place self-repair and graceful degradation.
//
//  - fault storms are deterministic: same seed + geometry => identical sets
//  - golden probes against the pristine shadow detect 100% of injected
//    stuck-at columns with zero false positives on clean columns
//  - drift is repairable: re-programming refreshes the cells and the repaired
//    columns score bit-identically to before the fault (slot-deterministic
//    noise streams)
//  - stuck columns defeat the in-place rewrite; their tenants migrate to a
//    healthy shard while untouched tenants stay bit-identical
//  - quarantined subarrays leave the placement pool permanently
//  - the engine keeps serving through a fault storm: responses are flagged
//    degraded (never failed), the background scrubber repairs in place, and
//    scrub counters land in EngineStats
//
// The engine suites run under ASan/TSan in CI (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "nvcim/cim/faults.hpp"
#include "nvcim/serve/engine.hpp"

namespace nvcim {
namespace {

// ---------------------------------------------------------------------------
// Fault-storm generation (pure).
// ---------------------------------------------------------------------------

TEST(FaultStorm, DeterministicAndInBounds) {
  cim::FaultStormConfig cfg;
  cfg.seed = 0xABCDEFull;
  cfg.column_frac = 0.10;
  const auto a = cim::generate_fault_storm(cfg, 8, 16);
  const auto b = cim::generate_fault_storm(cfg, 8, 16);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), static_cast<std::size_t>(0.10 * 8 * 16));
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].subarray, b[i].subarray);
    EXPECT_EQ(a[i].column, b[i].column);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_LT(a[i].subarray, 8u);
    EXPECT_LT(a[i].column, 16u);
    // Distinct (subarray, column) pairs.
    EXPECT_TRUE(seen.insert({a[i].subarray, a[i].column}).second);
  }
  // A different seed draws a different storm.
  cfg.seed = 0x123456ull;
  const auto c = cim::generate_fault_storm(cfg, 8, 16);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < c.size(); ++i)
    differs = c[i].subarray != a[i].subarray || c[i].column != a[i].column;
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Retriever-level injection and golden probes.
// ---------------------------------------------------------------------------

std::vector<Matrix> random_keys(std::size_t n, std::size_t rows, std::size_t cols, Rng& rng) {
  std::vector<Matrix> keys;
  for (std::size_t i = 0; i < n; ++i)
    keys.push_back(Matrix::rand_uniform(rows, cols, rng, -1.0f, 1.0f));
  return keys;
}

retrieval::CimRetriever::Config fault_retriever_config() {
  retrieval::CimRetriever::Config cfg;
  cfg.crossbar.rows = 48;
  cfg.crossbar.cols = 8;
  cfg.variation = {nvm::fefet3(), 0.1};
  return cfg;
}

TEST(FaultProbe, StuckColumnsDetectedCleanColumnsSilent) {
  Rng kr(601);
  const std::vector<Matrix> keys = random_keys(12, 4, 8, kr);
  retrieval::CimRetriever ret(fault_retriever_config());
  ret.store_mutable(32, keys.size(), Rng(2027));
  ret.program_keys(0, keys);

  // Programming noise is frozen into the pristine shadow: every column
  // probes exactly clean before any fault.
  for (std::size_t c = 0; c < keys.size(); ++c)
    EXPECT_EQ(ret.probe_column(c).deviant, 0u) << "column " << c;

  const std::size_t clamped =
      ret.inject_column_fault(3, nvm::FaultKind::StuckAtOn, 2, 0xFA11ull);
  EXPECT_GT(clamped, 0u);
  EXPECT_GT(ret.probe_column(3).deviant, 0u);
  for (std::size_t c = 0; c < keys.size(); ++c) {
    if (c == 3) continue;
    EXPECT_EQ(ret.probe_column(c).deviant, 0u) << "column " << c;
  }

  // Stuck cells override writes: an in-place rewrite cannot clean them.
  ret.program_keys(3, {keys[3]});
  EXPECT_GT(ret.probe_column(3).deviant, 0u);
}

TEST(FaultProbe, DriftDetectedAndRefreshedByReprogramming) {
  Rng kr(611);
  const std::vector<Matrix> keys = random_keys(6, 4, 8, kr);
  retrieval::CimRetriever ret(fault_retriever_config());
  ret.store_mutable(32, keys.size(), Rng(2028));
  ret.program_keys(0, keys);

  ret.set_drift_rate(0.05);
  ret.advance_age(3);
  std::size_t drifted = 0;
  for (std::size_t c = 0; c < keys.size(); ++c)
    if (ret.probe_column(c).deviant > 0) ++drifted;
  EXPECT_EQ(drifted, keys.size());  // every programmed column decayed

  // Re-programming refreshes the cells (drift counts from the last write):
  // the rewritten column probes clean again.
  ret.program_keys(0, {keys[0]});
  EXPECT_EQ(ret.probe_column(0).deviant, 0u);
  EXPECT_GT(ret.probe_column(1).deviant, 0u);  // others still drifted
}

TEST(FaultProbe, KilledSubarrayDeviatesAcrossItsColumns) {
  Rng kr(621);
  const std::vector<Matrix> keys = random_keys(10, 4, 8, kr);
  retrieval::CimRetriever ret(fault_retriever_config());
  ret.store_mutable(32, keys.size(), Rng(2029));
  ret.program_keys(0, keys);

  ASSERT_GE(ret.n_subarrays(), 2u);
  const std::size_t cols = ret.cols_per_subarray();
  ret.kill_subarray(0);
  for (std::size_t c = 0; c < std::min(cols, keys.size()); ++c)
    EXPECT_GT(ret.probe_column(c).deviant, 0u) << "killed column " << c;
  for (std::size_t c = cols; c < keys.size(); ++c)
    EXPECT_EQ(ret.probe_column(c).deviant, 0u) << "surviving column " << c;
}

// ---------------------------------------------------------------------------
// Store-level scrub, repair, migration and quarantine.
// ---------------------------------------------------------------------------

serve::OvtStoreConfig fault_store_config(std::size_t shards) {
  serve::OvtStoreConfig cfg;
  cfg.n_shards = shards;
  cfg.crossbar.rows = 64;
  cfg.crossbar.cols = 16;
  cfg.variation = {nvm::fefet3(), 0.1};
  cfg.lifecycle.enabled = true;
  return cfg;
}

/// Slot-masked score matrix of one user (bit-comparison capture).
Matrix capture_user(serve::ShardedOvtStore& store, std::size_t user, const Matrix& queries) {
  const auto slot = store.slot(user);
  const Matrix y = store.shard_scores(slot.shard, queries);
  Matrix out(queries.rows(), slot.n_keys());
  for (std::size_t q = 0; q < queries.rows(); ++q)
    for (std::size_t c = 0; c < slot.n_keys(); ++c) out(q, c) = y(q, slot.begin + c);
  return out;
}

TEST(FaultScrub, DetectsEveryInjectedStuckColumn) {
  Rng kr(701);
  serve::ShardedOvtStore store(fault_store_config(2));
  for (std::size_t u = 0; u < 4; ++u) store.add_user(u, random_keys(6, 4, 8, kr));
  Rng br(31);
  store.build(br);

  // Inject a deterministic storm into occupied columns of shard 0.
  std::vector<std::size_t> occupied;
  for (std::size_t u = 0; u < 4; ++u) {
    const auto slot = store.slot(u);
    if (slot.shard != 0) continue;
    for (std::size_t c = slot.begin; c < slot.end; ++c) occupied.push_back(c);
  }
  ASSERT_GE(occupied.size(), 4u);
  std::set<std::size_t> injected;
  for (std::size_t i = 0; i < occupied.size(); i += 3) {
    const std::size_t col = occupied[i];
    const auto kind = i % 2 == 0 ? nvm::FaultKind::StuckAtOn : nvm::FaultKind::StuckAtOff;
    if (store.inject_column_fault(0, col, kind, 2, 0x5EEDull + i) > 0) injected.insert(col);
  }
  ASSERT_FALSE(injected.empty());

  // Detect-only scrub over every subarray: the union of degraded columns is
  // EXACTLY the injected set — 100% detection, zero false positives.
  serve::ScrubPolicy detect;
  detect.auto_repair = false;
  detect.auto_migrate = false;
  std::set<std::size_t> flagged;
  for (std::size_t sub = 0; sub < store.shard_subarrays(0); ++sub) {
    const auto report = store.scrub_subarray(0, sub, detect);
    flagged.insert(report.degraded.begin(), report.degraded.end());
    const bool hit = std::any_of(injected.begin(), injected.end(), [&](std::size_t c) {
      return c / store.cols_per_subarray() == sub;
    });
    EXPECT_EQ(report.health,
              hit ? serve::SubarrayHealth::Degraded : serve::SubarrayHealth::Healthy);
  }
  EXPECT_EQ(flagged, injected);
  EXPECT_EQ(store.degraded_columns(0), injected.size());
}

TEST(FaultRepair, DriftRepairedInPlaceBitIdentical) {
  Rng kr(711);
  serve::ShardedOvtStore store(fault_store_config(1));
  for (std::size_t u = 0; u < 3; ++u) store.add_user(u, random_keys(5, 4, 8, kr));
  Rng br(33);
  store.build(br);

  Rng qr(712);
  const Matrix queries = Matrix::randn(3, 32, qr);
  std::vector<Matrix> before;
  for (std::size_t u = 0; u < 3; ++u) before.push_back(capture_user(store, u, queries));

  // Age the device: every occupied column drifts off its pristine levels.
  store.set_drift_rate(0.05);
  store.advance_age(2);

  std::size_t degraded = 0, repaired = 0, stuck = 0;
  for (std::size_t sub = 0; sub < store.shard_subarrays(0); ++sub) {
    const auto out = store.scrub_and_repair(0, sub);
    degraded += out.columns_degraded;
    repaired += out.columns_repaired;
    stuck += out.columns_stuck;
    EXPECT_FALSE(out.quarantined);
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(repaired, degraded);  // drift is fully repairable
  EXPECT_EQ(stuck, 0u);
  EXPECT_EQ(store.degraded_columns(0), 0u);

  // Slot-deterministic noise streams: the in-place rewrite restores every
  // winner's column content bit-for-bit, not just approximately.
  for (std::size_t u = 0; u < 3; ++u) {
    const Matrix after = capture_user(store, u, queries);
    ASSERT_TRUE(before[u].same_shape(after));
    for (std::size_t i = 0; i < after.size(); ++i)
      ASSERT_EQ(before[u].at_flat(i), after.at_flat(i)) << "user " << u << " entry " << i;
  }
}

TEST(FaultRepair, StuckColumnMigratesTenantUntouchedTenantsBitIdentical) {
  Rng kr(721);
  serve::ShardedOvtStore store(fault_store_config(2));
  for (std::size_t u = 0; u < 4; ++u) store.add_user(u, random_keys(5, 4, 8, kr));
  Rng br(35);
  store.build(br);

  // Pick a victim on shard 0 and capture every OTHER tenant's scores.
  std::size_t victim = 4;
  for (std::size_t u = 0; u < 4; ++u)
    if (store.slot(u).shard == 0) {
      victim = u;
      break;
    }
  ASSERT_LT(victim, 4u);
  Rng qr(722);
  const Matrix queries = Matrix::randn(3, 32, qr);
  std::vector<std::pair<std::size_t, Matrix>> others;
  for (std::size_t u = 0; u < 4; ++u)
    if (u != victim) others.emplace_back(u, capture_user(store, u, queries));

  const auto vslot = store.slot(victim);
  ASSERT_GT(store.inject_column_fault(0, vslot.begin, nvm::FaultKind::StuckAtOn, 2, 0xDEADull),
            0u);

  const auto out = store.scrub_and_repair(0, vslot.begin / store.cols_per_subarray());
  EXPECT_GE(out.columns_degraded, 1u);
  EXPECT_EQ(out.columns_stuck, 1u);  // the rewrite cannot clean stuck cells
  ASSERT_EQ(out.migrated_users.size(), 1u);
  EXPECT_EQ(out.migrated_users[0], victim);
  EXPECT_FALSE(out.quarantined);  // one stuck column, threshold is 8

  // The victim now lives on the healthy shard and still retrieves; its
  // degraded mark is gone (nothing serves from the stuck column anymore).
  EXPECT_EQ(store.slot(victim).shard, 1u);
  (void)store.retrieve_user(victim, Matrix::randn(4, 8, kr));
  EXPECT_FALSE(store.user_degraded(victim));

  // Untouched tenants never changed a bit, on either shard.
  for (const auto& [u, ref] : others) {
    const Matrix after = capture_user(store, u, queries);
    ASSERT_TRUE(ref.same_shape(after));
    for (std::size_t i = 0; i < after.size(); ++i)
      ASSERT_EQ(ref.at_flat(i), after.at_flat(i)) << "user " << u << " entry " << i;
  }

  // The retired stuck column stays physically deviant forever, but a
  // re-scrub must come back clean: known-bad hardware already pulled from
  // the placement pool is skipped, not re-flagged (re-detection would pump
  // the subarray's stuck count toward quarantine on every pass).
  const auto verify = store.scrub_and_repair(0, vslot.begin / store.cols_per_subarray());
  EXPECT_EQ(verify.columns_degraded, 0u);
  EXPECT_EQ(verify.columns_stuck, 0u);
  EXPECT_EQ(store.degraded_columns(0), 0u);
}

TEST(FaultQuarantine, QuarantinedSubarrayExcludedFromPlacement) {
  Rng kr(731);
  serve::ShardedOvtStore store(fault_store_config(1));
  // 8 users × 4 keys occupy two whole subarrays; the 1.5× capacity factor
  // provisions a third, fully free one — the quarantine target.
  for (std::size_t u = 0; u < 8; ++u) store.add_user(u, random_keys(4, 4, 8, kr));
  Rng br(37);
  store.build(br);

  // Retire the last provisioned subarray, then admit more tenants than the
  // remaining space strictly needs: no slot may touch the retired range.
  const std::size_t sub = store.shard_subarrays(0) - 1;
  ASSERT_GE(sub, 1u);  // capacity headroom provisions > 1 subarray
  store.quarantine_subarray(0, sub);
  EXPECT_TRUE(store.subarray_quarantined(0, sub));
  EXPECT_EQ(store.subarray_health(0, sub), serve::SubarrayHealth::Failed);

  const std::size_t q_begin = sub * store.cols_per_subarray();
  const std::size_t q_end = q_begin + store.cols_per_subarray();
  for (std::size_t u = 10; u <= 13; ++u) {
    store.admit_user(u, random_keys(4, 4, 8, kr));
    const auto slot = store.slot(u);
    EXPECT_TRUE(slot.end <= q_begin || slot.begin >= q_end)
        << "user " << u << " slot [" << slot.begin << ", " << slot.end
        << ") overlaps quarantined [" << q_begin << ", " << q_end << ")";
  }
  // A killed subarray's tenants migrate nowhere on a single shard, but the
  // quarantine itself holds: future placement skips it permanently.
  EXPECT_TRUE(store.subarray_quarantined(0, sub));
}

TEST(FaultQuarantine, KilledSubarrayCrossesThresholdAndQuarantines) {
  Rng kr(741);
  serve::ShardedOvtStore store(fault_store_config(2));
  for (std::size_t u = 0; u < 4; ++u) store.add_user(u, random_keys(6, 4, 8, kr));
  Rng br(39);
  store.build(br);

  // Kill subarray 0 of shard 0 outright: every occupied column sticks at
  // zero. Repair cannot rescue killed cells, tenants migrate off, and the
  // subarray crosses the quarantine threshold in one pass.
  store.kill_subarray(0, 0);
  serve::ScrubPolicy policy;
  policy.quarantine_after = 2;
  const auto out = store.scrub_and_repair(0, 0, policy);
  EXPECT_GE(out.columns_stuck, 2u);
  EXPECT_TRUE(out.quarantined);
  EXPECT_EQ(out.health, serve::SubarrayHealth::Failed);
  EXPECT_TRUE(store.subarray_quarantined(0, 0));

  // Every tenant that lived there migrated to the healthy shard and still
  // answers queries.
  for (const std::size_t u : out.migrated_users) {
    EXPECT_EQ(store.slot(u).shard, 1u);
    (void)store.retrieve_user(u, Matrix::randn(4, 8, kr));
  }
  // A quarantined subarray scrubs as a no-op afterwards.
  const auto again = store.scrub_and_repair(0, 0, policy);
  EXPECT_EQ(again.columns_probed, 0u);
  EXPECT_EQ(again.health, serve::SubarrayHealth::Failed);
}

// ---------------------------------------------------------------------------
// Engine-level: serving through a fault storm (threaded; ASan/TSan in CI).
// ---------------------------------------------------------------------------

llm::TinyLM fault_model(std::size_t vocab, std::uint64_t seed) {
  llm::TinyLmConfig cfg;
  cfg.vocab = vocab;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.ffn_hidden = 32;
  cfg.max_seq = 40;
  cfg.prompt_slots = 8;
  return llm::TinyLM(cfg, seed);
}

struct FaultEngineFixture {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;
  std::shared_ptr<const compress::Autoencoder> autoencoder;

  FaultEngineFixture() : model(fault_model(task.vocab_size(), 23)) {
    compress::AutoencoderConfig acfg;
    acfg.input_dim = 16;
    acfg.code_dim = 24;
    acfg.hidden_dim = 32;
    autoencoder = std::make_shared<const compress::Autoencoder>(acfg);
  }

  core::TrainedDeployment make_deployment(std::size_t user, std::size_t n_keys = 6) {
    core::TrainedDeployment d;
    d.autoencoder = autoencoder;
    d.n_virtual_tokens = 4;
    Rng rng(6000 + user);
    for (std::size_t k = 0; k < n_keys; ++k) {
      d.keys.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
      d.stored_codes.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
      d.domains.push_back(k);
    }
    return d;
  }

  serve::ServingConfig config(std::size_t shards, std::size_t threads, std::size_t batch) {
    serve::ServingConfig cfg;
    cfg.n_shards = shards;
    cfg.n_threads = threads;
    cfg.max_batch = batch;
    cfg.crossbar.rows = 96;
    cfg.crossbar.cols = 32;
    cfg.variation = {nvm::fefet3(), 0.1};
    cfg.lifecycle.enabled = true;
    cfg.seed = 2026;
    return cfg;
  }

  data::Sample query(Rng& rng) {
    return task.sample(rng.uniform_index(task.config().n_domains), rng);
  }
};

TEST(FaultEngine, ServesThroughFaultStormWithBackgroundScrubber) {
  FaultEngineFixture f;
  serve::ServingConfig cfg = f.config(2, 3, 8);
  cfg.scrubber.enabled = true;
  cfg.scrubber.interval_ms = 2.0;
  cfg.scrubber.subarrays_per_round = 0;  // whole fleet per round
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < 4; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  // Reference answers before the storm, through the serial path.
  Rng qr(801);
  std::vector<data::Sample> probes;
  std::vector<std::size_t> expected;
  for (int t = 0; t < 4; ++t) {
    probes.push_back(f.query(qr));
    expected.push_back(engine.retrieve_serial(0, probes.back()));
  }

  // Storm: age the whole device (repairable drift on every column).
  engine.store_mutable().set_drift_rate(0.05);
  engine.store_mutable().advance_age(2);

  // Serve straight through it. No request may fail; any answer computed
  // before the scrubber's repair lands is flagged degraded, not dropped.
  std::vector<std::future<serve::Response>> futures;
  for (int t = 0; t < 24; ++t)
    futures.push_back(engine.submit(static_cast<std::size_t>(t) % 4, f.query(qr)));
  for (auto& fu : futures) {
    const serve::Response r = fu.get();
    EXPECT_LT(r.user_id, 4u);
  }

  // The background scrubber converges: all degraded columns repaired.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    bool clean = true;
    for (std::size_t s = 0; s < engine.store().n_shards(); ++s)
      clean = clean && engine.store().degraded_columns(s) == 0;
    if (clean && engine.stats().scrub_passes > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::size_t s = 0; s < engine.store().n_shards(); ++s)
    EXPECT_EQ(engine.store().degraded_columns(s), 0u) << "shard " << s;

  const serve::StatsSnapshot st = engine.stats();
  EXPECT_GT(st.scrub_passes, 0u);
  EXPECT_GT(st.scrub_columns_probed, 0u);
  EXPECT_GT(st.columns_degraded, 0u);
  EXPECT_EQ(st.columns_repaired, st.columns_degraded);  // drift: all repairable
  EXPECT_EQ(st.columns_stuck, 0u);
  EXPECT_EQ(st.subarrays_quarantined, 0u);

  // Repair restored pristine content: the serial path answers exactly as
  // before the storm.
  for (std::size_t t = 0; t < probes.size(); ++t)
    EXPECT_EQ(engine.retrieve_serial(0, probes[t]), expected[t]) << "probe " << t;
  engine.stop();
}

TEST(FaultEngine, ManualScrubRepairsStuckColumnByMigration) {
  FaultEngineFixture f;
  serve::ServingConfig cfg = f.config(2, 2, 8);
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < 4; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  // Stick a column under some tenant on shard 0.
  std::size_t victim = 4;
  for (std::size_t u = 0; u < 4; ++u)
    if (engine.store().slot(u).shard == 0) {
      victim = u;
      break;
    }
  ASSERT_LT(victim, 4u);
  const auto vslot = engine.store().slot(victim);
  ASSERT_GT(engine.store_mutable().inject_column_fault(0, vslot.begin,
                                                       nvm::FaultKind::StuckAtOn, 2, 0xF00Dull),
            0u);

  // While degraded and unrepaired, the victim's responses carry the flag.
  serve::ScrubPolicy detect;
  detect.auto_repair = false;
  detect.auto_migrate = false;
  engine.store_mutable().scrub_subarray(0, vslot.begin / engine.store().cols_per_subarray(),
                                        detect);
  ASSERT_TRUE(engine.store().user_degraded(victim));
  Rng qr(811);
  const serve::Response degraded_resp = engine.serve(victim, f.query(qr));
  EXPECT_TRUE(degraded_resp.degraded);
  EXPECT_GT(engine.stats().degraded_responses, 0u);

  // One synchronous scrub pass: repair fails (stuck), the tenant migrates,
  // and the flag clears.
  const serve::ScrubOutcome out = engine.scrub_now();
  EXPECT_GE(out.columns_stuck, 1u);
  ASSERT_EQ(out.migrated_users.size(), 1u);
  EXPECT_EQ(out.migrated_users[0], victim);
  EXPECT_EQ(engine.store().slot(victim).shard, 1u);
  EXPECT_FALSE(engine.store().user_degraded(victim));
  const serve::Response healthy_resp = engine.serve(victim, f.query(qr));
  EXPECT_FALSE(healthy_resp.degraded);

  const serve::StatsSnapshot st = engine.stats();
  EXPECT_GT(st.scrub_passes, 0u);
  EXPECT_GE(st.columns_stuck, 1u);
  EXPECT_GE(st.scrub_migrations, 1u);
  engine.stop();
}

}  // namespace
}  // namespace nvcim
