#include <gtest/gtest.h>

#include <cmath>

#include "nvcim/tensor/matrix.hpp"

namespace nvcim {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
  m(0, 1) = -2.0f;
  EXPECT_FLOAT_EQ(m(0, 1), -2.0f);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m(1, 0), 4.0f);
}

TEST(Matrix, OutOfBoundsThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), Error);
  EXPECT_THROW(m(0, 2), Error);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_FLOAT_EQ(i(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(i(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(i.sum(), 3.0f);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  const Matrix sum = a + b;
  EXPECT_FLOAT_EQ(sum(1, 1), 44.0f);
  const Matrix diff = b - a;
  EXPECT_FLOAT_EQ(diff(0, 0), 9.0f);
  const Matrix prod = hadamard(a, b);
  EXPECT_FLOAT_EQ(prod(1, 0), 90.0f);
  const Matrix scaled = a * 2.0f;
  EXPECT_FLOAT_EQ(scaled(0, 1), 4.0f);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(hadamard(a, b), Error);
}

TEST(Matrix, AddScaled) {
  Matrix a{{1, 1}};
  Matrix b{{2, 4}};
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(a(0, 1), 3.0f);
}

TEST(Matrix, MatmulAgainstManual) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Matrix, MatmulShapeCheck) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(Matrix, MatmulVariantsAgree) {
  Rng rng(5);
  const Matrix a = Matrix::randn(4, 6, rng);
  const Matrix b = Matrix::randn(4, 5, rng);
  const Matrix c = Matrix::randn(5, 6, rng);
  EXPECT_TRUE(allclose(matmul_tn(a, b), matmul(a.transposed(), b), 1e-4f, 1e-4f));
  EXPECT_TRUE(allclose(matmul_nt(a, c), matmul(a, c.transposed()), 1e-4f, 1e-4f));
}

TEST(Matrix, TransposeRoundtrip) {
  Rng rng(6);
  const Matrix a = Matrix::randn(3, 7, rng);
  EXPECT_TRUE(allclose(a.transposed().transposed(), a));
}

TEST(Matrix, ReshapePreservesData) {
  Matrix a{{1, 2, 3, 4}};
  const Matrix r = a.reshaped(2, 2);
  EXPECT_FLOAT_EQ(r(1, 0), 3.0f);
  EXPECT_THROW(a.reshaped(3, 2), Error);
}

TEST(Matrix, RowAndColSlice) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix rows = m.row_slice(1, 3);
  EXPECT_EQ(rows.rows(), 2u);
  EXPECT_FLOAT_EQ(rows(0, 0), 4.0f);
  const Matrix cols = m.col_slice(1, 2);
  EXPECT_EQ(cols.cols(), 1u);
  EXPECT_FLOAT_EQ(cols(2, 0), 8.0f);
}

TEST(Matrix, SetRow) {
  Matrix m(2, 3, 0.0f);
  m.set_row(1, Matrix{{7, 8, 9}});
  EXPECT_FLOAT_EQ(m(1, 2), 9.0f);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
}

TEST(Matrix, Reductions) {
  Matrix m{{-1, 2}, {3, -4}};
  EXPECT_FLOAT_EQ(m.sum(), 0.0f);
  EXPECT_FLOAT_EQ(m.mean(), 0.0f);
  EXPECT_FLOAT_EQ(m.min(), -4.0f);
  EXPECT_FLOAT_EQ(m.max(), 3.0f);
  EXPECT_FLOAT_EQ(m.max_abs(), 4.0f);
  EXPECT_NEAR(m.frobenius_norm(), std::sqrt(30.0f), 1e-5f);
}

TEST(Matrix, DotAndCosine) {
  Matrix a{{1, 0, 2}};
  Matrix b{{3, 5, 1}};
  EXPECT_FLOAT_EQ(dot(a, b), 5.0f);
  EXPECT_NEAR(cosine_similarity(a, a), 1.0f, 1e-6f);
  Matrix zero(1, 3, 0.0f);
  EXPECT_FLOAT_EQ(cosine_similarity(a, zero), 0.0f);
}

TEST(Matrix, Concat) {
  Matrix a{{1, 2}}, b{{3, 4}};
  const Matrix v = vconcat(a, b);
  EXPECT_EQ(v.rows(), 2u);
  EXPECT_FLOAT_EQ(v(1, 1), 4.0f);
  const Matrix h = hconcat(a, b);
  EXPECT_EQ(h.cols(), 4u);
  EXPECT_FLOAT_EQ(h(0, 3), 4.0f);
}

TEST(Matrix, AveragePoolFlat) {
  Matrix x{{1, 2, 3, 4, 5}};
  const Matrix p2 = average_pool_flat(x, 2);
  ASSERT_EQ(p2.size(), 3u);
  EXPECT_FLOAT_EQ(p2.at_flat(0), 1.5f);
  EXPECT_FLOAT_EQ(p2.at_flat(1), 3.5f);
  EXPECT_FLOAT_EQ(p2.at_flat(2), 5.0f);  // short tail window
  const Matrix p1 = average_pool_flat(x, 1);
  EXPECT_TRUE(allclose(p1, x.flattened()));
}

TEST(Matrix, AveragePoolPreservesMeanForExactWindows) {
  Rng rng(8);
  const Matrix x = Matrix::randn(1, 16, rng);
  const Matrix p = average_pool_flat(x, 4);
  EXPECT_NEAR(p.mean(), x.mean(), 1e-5f);
}

TEST(Matrix, ResampleRowsDown) {
  Matrix x{{1, 1}, {3, 3}, {5, 5}, {7, 7}};
  const Matrix r = resample_rows(x, 2);
  ASSERT_EQ(r.rows(), 2u);
  EXPECT_FLOAT_EQ(r(0, 0), 2.0f);  // mean of rows 0,1
  EXPECT_FLOAT_EQ(r(1, 0), 6.0f);  // mean of rows 2,3
}

TEST(Matrix, ResampleRowsUpRepeats) {
  Matrix x{{1, 1}, {3, 3}};
  const Matrix r = resample_rows(x, 4);
  ASSERT_EQ(r.rows(), 4u);
  EXPECT_FLOAT_EQ(r(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(r(3, 0), 3.0f);
}

TEST(Matrix, ResampleRowsIdentity) {
  Rng rng(4);
  const Matrix x = Matrix::randn(5, 3, rng);
  EXPECT_TRUE(allclose(resample_rows(x, 5), x));
}

TEST(Matrix, BlockedMatmulMatchesNaiveReferenceBitForBit) {
  // The production matmul is blocked over (rows, shared dim); per-element
  // accumulation order must be unchanged, so results are bit-identical to
  // the textbook triple loop. Shapes straddle the block sizes (32, 128).
  Rng rng(31);
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 5, 4},    {32, 128, 8},
                                   {33, 129, 7}, {70, 300, 5}, {2, 257, 3}};
  for (const auto& s : shapes) {
    const std::size_t M = s[0], K = s[1], N = s[2];
    const Matrix a = Matrix::randn(M, K, rng);
    const Matrix b = Matrix::randn(K, N, rng);
    Matrix ref(M, N, 0.0f);
    for (std::size_t i = 0; i < M; ++i)
      for (std::size_t k = 0; k < K; ++k) {
        const float av = a(i, k);
        if (av == 0.0f) continue;
        for (std::size_t j = 0; j < N; ++j) ref(i, j) += av * b(k, j);
      }
    const Matrix c = matmul(a, b);
    ASSERT_TRUE(c.same_shape(ref));
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(c.at_flat(i), ref.at_flat(i)) << M << "x" << K << "x" << N << " flat " << i;
  }
}

TEST(Matrix, MatmulIntoReusesStorage) {
  Rng rng(32);
  const Matrix a = Matrix::randn(6, 9, rng);
  const Matrix b = Matrix::randn(9, 4, rng);
  Matrix out(6, 4, 123.0f);  // pre-sized garbage; must be fully overwritten
  const float* before = out.data();
  matmul_into(a, b, out);
  EXPECT_EQ(out.data(), before);  // no reallocation when the size fits
  const Matrix ref = matmul(a, b);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out.at_flat(i), ref.at_flat(i));
}

TEST(Matrix, StackRowsConcatenatesInOrder) {
  Rng rng(33);
  const Matrix a = Matrix::randn(2, 3, rng);
  const Matrix b = Matrix::randn(1, 3, rng);
  const Matrix c = Matrix::randn(4, 3, rng);
  const Matrix s = stack_rows({&a, &b, &c});
  ASSERT_EQ(s.rows(), 7u);
  ASSERT_EQ(s.cols(), 3u);
  const Matrix ref = vconcat(vconcat(a, b), c);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.at_flat(i), ref.at_flat(i));
}

TEST(Matrix, ResampleRowsBatchMatchesSerialBitForBit) {
  Rng rng(34);
  for (std::size_t n_rows : {1u, 2u, 4u, 7u}) {
    std::vector<Matrix> items;
    for (std::size_t r : {1u, 2u, 4u, 5u, 13u, 17u}) items.push_back(Matrix::randn(r, 6, rng));
    std::vector<const Matrix*> ptrs;
    for (const Matrix& m : items) ptrs.push_back(&m);
    Matrix batched;
    resample_rows_batch(ptrs, n_rows, batched);
    ASSERT_EQ(batched.rows(), items.size() * n_rows);
    for (std::size_t b = 0; b < items.size(); ++b) {
      const Matrix serial = resample_rows(items[b], n_rows);
      for (std::size_t i = 0; i < serial.rows(); ++i)
        for (std::size_t c = 0; c < serial.cols(); ++c)
          ASSERT_EQ(batched(b * n_rows + i, c), serial(i, c))
              << "item " << b << " n_rows " << n_rows << " (" << i << "," << c << ")";
    }
  }
}

TEST(Matrix, ReshapeInplaceAndResize) {
  Matrix m(2, 6, 1.0f);
  const float* data = m.data();
  m.reshape_inplace(4, 3);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.data(), data);  // no copy
  EXPECT_THROW(m.reshape_inplace(5, 3), Error);
  m.resize(1, 3);
  EXPECT_EQ(m.size(), 3u);
  m.resize(10, 10);
  EXPECT_EQ(m.size(), 100u);
}

TEST(Matrix, AllFinite) {
  Matrix m(2, 2, 1.0f);
  EXPECT_TRUE(m.all_finite());
  m(0, 0) = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(m.all_finite());
}

TEST(Matrix, RandnStatistics) {
  Rng rng(21);
  const Matrix m = Matrix::randn(100, 100, rng, 2.0f);
  EXPECT_NEAR(m.mean(), 0.0f, 0.05f);
  const float var = m.frobenius_norm() * m.frobenius_norm() / static_cast<float>(m.size());
  EXPECT_NEAR(var, 4.0f, 0.2f);
}

class PoolScaleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolScaleTest, PooledLengthIsCeilDiv) {
  Rng rng(1);
  const std::size_t scale = GetParam();
  const Matrix x = Matrix::randn(3, 10, rng);  // 30 elements flattened
  const Matrix p = average_pool_flat(x, scale);
  EXPECT_EQ(p.size(), (30 + scale - 1) / scale);
}

INSTANTIATE_TEST_SUITE_P(Scales, PoolScaleTest, ::testing::Values(1, 2, 3, 4, 7, 30, 31));

}  // namespace
}  // namespace nvcim
