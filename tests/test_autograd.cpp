#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nvcim/autograd/tape.hpp"

namespace nvcim::autograd {
namespace {

/// Numerical gradient check: builds the graph twice per perturbed entry
/// (central differences) and compares with the analytic gradient.
void gradcheck(const std::function<Var(Tape&, Var)>& fn, Matrix x0, float tol = 2e-2f) {
  Tape tape;
  Var x = tape.leaf(x0, true);
  Var y = fn(tape, x);
  ASSERT_EQ(y.value().size(), 1u) << "gradcheck needs a scalar output";
  tape.backward(y);
  const Matrix analytic = x.grad();

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < x0.size(); ++i) {
    Matrix xp = x0, xm = x0;
    xp.at_flat(i) += eps;
    xm.at_flat(i) -= eps;
    Tape tp, tm;
    const float fp = fn(tp, tp.leaf(xp, false)).value()(0, 0);
    const float fm = fn(tm, tm.leaf(xm, false)).value()(0, 0);
    const float numeric = (fp - fm) / (2.0f * eps);
    EXPECT_NEAR(analytic.at_flat(i), numeric, tol * (1.0f + std::fabs(numeric)))
        << "entry " << i;
  }
}

Matrix test_input(std::size_t r, std::size_t c, std::uint64_t seed = 3) {
  Rng rng(seed);
  return Matrix::randn(r, c, rng, 0.7f);
}

TEST(Autograd, AddGrad) {
  gradcheck(
      [](Tape& t, Var x) {
        Var c = t.leaf(Matrix(2, 3, 0.5f), false);
        return t.mean_all(t.add(x, c));
      },
      test_input(2, 3));
}

TEST(Autograd, SubAndScaleGrad) {
  gradcheck(
      [](Tape& t, Var x) {
        Var c = t.leaf(Matrix(2, 3, 1.0f), false);
        return t.mean_all(t.scale(t.sub(x, c), 3.0f));
      },
      test_input(2, 3));
}

TEST(Autograd, MulGrad) {
  gradcheck(
      [](Tape& t, Var x) {
        Var c = t.leaf(Matrix{{1, -2, 3}, {0.5, 2, -1}}, false);
        return t.mean_all(t.mul(x, c));
      },
      test_input(2, 3));
}

TEST(Autograd, SquareGrad) {
  gradcheck([](Tape& t, Var x) { return t.mean_all(t.square(x)); }, test_input(3, 2));
}

TEST(Autograd, MatmulGradLhs) {
  gradcheck(
      [](Tape& t, Var x) {
        Var w = t.leaf(test_input(3, 4, 11), false);
        return t.mean_all(t.matmul(x, w));
      },
      test_input(2, 3));
}

TEST(Autograd, MatmulGradRhs) {
  gradcheck(
      [](Tape& t, Var x) {
        Var a = t.leaf(test_input(4, 2, 13), false);
        return t.mean_all(t.matmul(a, x));
      },
      test_input(2, 3));
}

TEST(Autograd, MatmulNtGrad) {
  gradcheck(
      [](Tape& t, Var x) {
        Var b = t.leaf(test_input(5, 3, 17), false);
        return t.mean_all(t.matmul_nt(x, b));
      },
      test_input(2, 3));
}

TEST(Autograd, RowBroadcastBiasGrad) {
  gradcheck(
      [](Tape& t, Var x) {
        Var a = t.leaf(test_input(4, 3, 19), false);
        return t.mean_all(t.add_row_broadcast(a, x));
      },
      test_input(1, 3));
}

TEST(Autograd, ReluGrad) {
  gradcheck([](Tape& t, Var x) { return t.mean_all(t.relu(x)); }, test_input(3, 3, 23));
}

TEST(Autograd, GeluGrad) {
  gradcheck([](Tape& t, Var x) { return t.mean_all(t.gelu(x)); }, test_input(3, 3, 29));
}

TEST(Autograd, TanhGrad) {
  gradcheck([](Tape& t, Var x) { return t.mean_all(t.tanh_op(x)); }, test_input(3, 3, 31));
}

TEST(Autograd, RowSoftmaxGrad) {
  gradcheck(
      [](Tape& t, Var x) {
        Var w = t.leaf(test_input(2, 4, 37), false);
        return t.mean_all(t.mul(t.row_softmax(x), w));
      },
      test_input(2, 4));
}

TEST(Autograd, RowSoftmaxRowsSumToOne) {
  Tape t;
  Var x = t.leaf(test_input(3, 5), false);
  const Matrix y = t.row_softmax(x).value();
  for (std::size_t r = 0; r < y.rows(); ++r) {
    float s = 0.0f;
    for (std::size_t c = 0; c < y.cols(); ++c) {
      s += y(r, c);
      EXPECT_GT(y(r, c), 0.0f);
    }
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(Autograd, LayerNormGradInput) {
  gradcheck(
      [](Tape& t, Var x) {
        Var g = t.leaf(Matrix(1, 4, 1.2f), false);
        Var b = t.leaf(Matrix(1, 4, 0.1f), false);
        Var w = t.leaf(test_input(3, 4, 41), false);
        return t.mean_all(t.mul(t.layernorm(x, g, b), w));
      },
      test_input(3, 4));
}

TEST(Autograd, LayerNormGradGainBias) {
  const Matrix x0 = test_input(3, 4, 43);
  gradcheck(
      [&](Tape& t, Var g) {
        Var x = t.leaf(x0, false);
        Var b = t.leaf(Matrix(1, 4, 0.0f), false);
        return t.mean_all(t.layernorm(x, g, b));
      },
      Matrix(1, 4, 1.0f));
}

TEST(Autograd, LayerNormNormalizesRows) {
  Tape t;
  Var x = t.leaf(test_input(4, 8, 47), false);
  Var g = t.leaf(Matrix(1, 8, 1.0f), false);
  Var b = t.leaf(Matrix(1, 8, 0.0f), false);
  const Matrix y = t.layernorm(x, g, b).value();
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double mu = 0.0, var = 0.0;
    for (std::size_t c = 0; c < y.cols(); ++c) mu += y(r, c);
    mu /= y.cols();
    for (std::size_t c = 0; c < y.cols(); ++c) var += (y(r, c) - mu) * (y(r, c) - mu);
    var /= y.cols();
    EXPECT_NEAR(mu, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Autograd, ConcatAndSliceRowsGrad) {
  gradcheck(
      [](Tape& t, Var x) {
        Var top = t.leaf(test_input(2, 3, 53), false);
        Var cat = t.concat_rows(top, x);
        return t.mean_all(t.slice_rows(cat, 1, 4));
      },
      test_input(2, 3));
}

TEST(Autograd, ConcatAndSliceColsGrad) {
  gradcheck(
      [](Tape& t, Var x) {
        Var left = t.leaf(test_input(2, 2, 59), false);
        Var cat = t.concat_cols(left, x);
        return t.mean_all(t.slice_cols(cat, 1, 4));
      },
      test_input(2, 3));
}

TEST(Autograd, ReshapeGrad) {
  gradcheck([](Tape& t, Var x) { return t.mean_all(t.reshape(x, 3, 2)); },
            test_input(2, 3));
}

TEST(Autograd, EmbeddingGradScattersToRows) {
  Tape t;
  Var table = t.leaf(test_input(5, 3, 61), true);
  Var out = t.embedding(table, {1, 3, 1});
  Var loss = t.mean_all(out);
  t.backward(loss);
  const Matrix g = table.grad();
  // Row 1 gathered twice, row 3 once, rows 0/2/4 never.
  EXPECT_NEAR(g(1, 0), 2.0f / 9.0f, 1e-5f);
  EXPECT_NEAR(g(3, 0), 1.0f / 9.0f, 1e-5f);
  EXPECT_FLOAT_EQ(g(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g(4, 2), 0.0f);
}

TEST(Autograd, EmbeddingRejectsBadIds) {
  Tape t;
  Var table = t.leaf(Matrix(3, 2), false);
  EXPECT_THROW(t.embedding(table, {3}), Error);
  EXPECT_THROW(t.embedding(table, {-1}), Error);
}

TEST(Autograd, CrossEntropyGrad) {
  gradcheck(
      [](Tape& t, Var x) { return t.cross_entropy(x, {1, 0, -1}); },
      test_input(3, 4), 3e-2f);
}

TEST(Autograd, CrossEntropyIgnoresMaskedRows) {
  Tape t;
  Matrix z = test_input(2, 3, 67);
  Var a = t.leaf(z, true);
  Var l1 = t.cross_entropy(a, {1, -1});
  Tape t2;
  Var b = t2.leaf(z.row_slice(0, 1), true);
  Var l2 = t2.cross_entropy(b, {1});
  EXPECT_NEAR(l1.value()(0, 0), l2.value()(0, 0), 1e-5f);
}

TEST(Autograd, CrossEntropyAllMaskedThrows) {
  Tape t;
  Var a = t.leaf(Matrix(2, 3, 0.1f), false);
  EXPECT_THROW(t.cross_entropy(a, {-1, -1}), Error);
}

TEST(Autograd, MseGrad) {
  gradcheck(
      [](Tape& t, Var x) { return t.mse(x, Matrix(2, 3, 0.25f)); }, test_input(2, 3));
}

TEST(Autograd, BackwardRequiresScalar) {
  Tape t;
  Var x = t.leaf(Matrix(2, 2, 1.0f), true);
  Var y = t.add(x, x);
  EXPECT_THROW(t.backward(y), Error);
}

TEST(Autograd, GradAccumulatesAcrossUses) {
  Tape t;
  Var x = t.leaf(Matrix(1, 1, 2.0f), true);
  Var y = t.mean_all(t.mul(x, x));  // d/dx x² = 2x = 4
  t.backward(y);
  EXPECT_NEAR(x.grad()(0, 0), 4.0f, 1e-5f);
}

TEST(Autograd, NoGradForFrozenLeaf) {
  Tape t;
  Var x = t.leaf(Matrix(1, 2, 1.0f), false);
  Var y = t.mean_all(t.scale(x, 2.0f));
  t.backward(y);
  EXPECT_FALSE(t.has_grad(x));
}

TEST(Autograd, DeepChainGradient) {
  // f(x) = mean(tanh(gelu(x W1) W2)) — composite through several ops.
  gradcheck(
      [](Tape& t, Var x) {
        Var w1 = t.leaf(test_input(3, 5, 71), false);
        Var w2 = t.leaf(test_input(5, 2, 73), false);
        return t.mean_all(t.tanh_op(t.matmul(t.gelu(t.matmul(x, w1)), w2)));
      },
      test_input(2, 3));
}

TEST(Autograd, ClearInvalidatesGraph) {
  Tape t;
  Var x = t.leaf(Matrix(1, 1, 1.0f), true);
  (void)x;
  EXPECT_EQ(t.node_count(), 1u);
  t.clear();
  EXPECT_EQ(t.node_count(), 0u);
}

}  // namespace
}  // namespace nvcim::autograd
