// End-to-end integration tests: the scientific mechanisms the benchmarks
// rely on, exercised at reduced scale. These are the invariants behind the
// paper's figures; they use a briefly pretrained backbone, so thresholds are
// intentionally loose but directional.
#include <gtest/gtest.h>

#include "nvcim/core/experiment.hpp"

namespace nvcim::core {
namespace {

/// Shared slow fixture: pretrain once for the whole suite.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new data::LampTask(data::lamp1_config());
    llm::TinyLmConfig cfg;
    cfg.vocab = task_->vocab_size();
    cfg.d_model = 32;
    cfg.n_layers = 2;
    cfg.n_heads = 4;
    cfg.ffn_hidden = 64;
    cfg.max_seq = 40;
    cfg.prompt_slots = 12;
    model_ = new llm::TinyLM(cfg, 11);
    llm::PretrainConfig pt;
    pt.steps = 800;
    pt.batch_size = 12;
    llm::pretrain(*model_, task_->pretraining_corpus(1800, 7), pt);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete task_;
    model_ = nullptr;
    task_ = nullptr;
  }

  static double classify_acc(std::size_t domain, const Matrix* prompt, int n, Rng& rng) {
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      const data::Sample q = task_->sample(domain, rng);
      hits += model_->classify(q.input, task_->label_ids(), prompt) ==
                      static_cast<std::size_t>(q.label)
                  ? 1
                  : 0;
    }
    return static_cast<double>(hits) / n;
  }

  static data::LampTask* task_;
  static llm::TinyLM* model_;
};

data::LampTask* IntegrationTest::task_ = nullptr;
llm::TinyLM* IntegrationTest::model_ = nullptr;

TEST_F(IntegrationTest, BackboneLearnsDomainConditionalMapping) {
  // With explicit domain context the mapping must be close to solved; with
  // only the ambiguous cue it must stay far below that.
  Rng rng(1);
  double with_ctx = 0.0, without_ctx = 0.0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    const std::size_t d = rng.uniform_index(task_->config().n_domains);
    const data::Sample s = task_->sample(d, rng, /*explicit_domain=*/true);
    const Matrix ctx = model_->embed(s.example.prefix_tokens);
    with_ctx += model_->classify(s.input, task_->label_ids(), &ctx) ==
                        static_cast<std::size_t>(s.label)
                    ? 1
                    : 0;
    const data::Sample p = task_->sample(d, rng);
    without_ctx += model_->classify(p.input, task_->label_ids()) ==
                           static_cast<std::size_t>(p.label)
                       ? 1
                       : 0;
  }
  with_ctx /= n;
  without_ctx /= n;
  EXPECT_GT(with_ctx, 0.85);
  EXPECT_LT(without_ctx, with_ctx - 0.2);
}

TEST_F(IntegrationTest, DomainOvtBeatsNoPromptInDomain) {
  // A soft prompt tuned on a handful of one domain's samples must raise
  // in-domain accuracy above the promptless baseline (the OVT premise).
  Rng rng(2);
  double ovt_acc = 0.0, plain_acc = 0.0;
  for (std::size_t d = 0; d < 3; ++d) {
    std::vector<llm::TrainExample> ex;
    std::vector<data::Sample> ss;
    for (int i = 0; i < 5; ++i) {
      ss.push_back(task_->sample(d, rng));
      ex.push_back(ss.back().example);
    }
    llm::TunerConfig tc;
    tc.steps = 60;
    tc.n_virtual_tokens = 6;
    tc.seed = 50 + d;
    tc.init = resample_rows(model_->embed(ss[0].input), tc.n_virtual_tokens);
    const Matrix ovt = llm::SoftPromptTuner(tc).train(*model_, ex);
    ovt_acc += classify_acc(d, &ovt, 30, rng);
    plain_acc += classify_acc(d, nullptr, 30, rng);
  }
  EXPECT_GT(ovt_acc / 3.0, plain_acc / 3.0 + 0.1);
}

TEST_F(IntegrationTest, NoiseAwareTrainingImprovesNoisyStorageAccuracy) {
  // The NT mechanism (Table IV): under NVM storage noise, noise-aware OVTs
  // must not do worse than plain OVTs, and the clean prompt must not do
  // worse than the noisy one.
  Rng rng(3);
  compress::AutoencoderConfig ae_cfg;
  ae_cfg.input_dim = model_->config().d_model;
  ae_cfg.code_dim = 32;
  ae_cfg.steps = 300;
  compress::Autoencoder ae(ae_cfg);
  {
    std::vector<Matrix> rows;
    for (int i = 0; i < 32; ++i)
      rows.push_back(model_->embed(task_->sample(rng.uniform_index(6), rng).input));
    ae.train(rows);
  }
  nvm::VariationModel var{nvm::fefet3(), 0.15};
  cim::CrossbarConfig xbar;
  mitigation::NoMitigation store;

  double plain_noisy = 0.0, nt_noisy = 0.0, clean = 0.0;
  for (std::size_t d = 0; d < 3; ++d) {
    std::vector<llm::TrainExample> ex;
    std::vector<data::Sample> ss;
    for (int i = 0; i < 5; ++i) {
      ss.push_back(task_->sample(d, rng));
      ex.push_back(ss.back().example);
    }
    llm::TunerConfig tc;
    tc.steps = 60;
    tc.n_virtual_tokens = 6;
    tc.seed = 80 + d;
    tc.init = resample_rows(model_->embed(ss[0].input), tc.n_virtual_tokens);
    const Matrix ovt_plain = llm::SoftPromptTuner(tc).train(*model_, ex);
    llm::TunerConfig tcn = tc;
    NoiseBandConfig bands;
    bands.sigma = 0.15;
    tcn.perturb = make_noise_hook(bands);
    const Matrix ovt_nt = llm::SoftPromptTuner(tcn).train(*model_, ex);

    auto through_nvm = [&](const Matrix& ovt, std::uint64_t seed) {
      Rng srng(seed);
      const Matrix code = ae.encode(resample_rows(ovt, 6));
      return ae.decode(store.store_and_restore(code, xbar, var, srng));
    };
    const Matrix p_plain = through_nvm(ovt_plain, 900 + d);
    const Matrix p_nt = through_nvm(ovt_nt, 900 + d);
    plain_noisy += classify_acc(d, &p_plain, 30, rng);
    nt_noisy += classify_acc(d, &p_nt, 30, rng);
    clean += classify_acc(d, &ovt_plain, 30, rng);
  }
  // Directional, seed-tolerant bounds (means over 3 domains).
  EXPECT_GE(nt_noisy / 3.0, plain_noisy / 3.0 - 0.2);
  EXPECT_GE(clean / 3.0, plain_noisy / 3.0 - 0.1);
}

TEST_F(IntegrationTest, ExperimentMethodsGridRuns) {
  // Smoke-test every Table-I method spec end to end on a reduced context.
  const auto methods = table1_methods();
  ASSERT_EQ(methods.size(), 6u);
  EXPECT_EQ(methods.back().name, "NVCiM-PT");
  EXPECT_TRUE(methods.back().noise_aware);
  EXPECT_EQ(methods.back().retrieval, retrieval::Algorithm::SSA);
  EXPECT_EQ(methods[3].name, "No-Miti(MIPS)");
  EXPECT_FALSE(methods[3].noise_aware);
}

TEST_F(IntegrationTest, RetrievalBeatsChanceOnUserOvts) {
  // End-to-end retrieval (encoded OVT keys on noisy crossbars, SSA) must
  // pick the right domain's OVT more often than uniform chance.
  Rng rng(4);
  compress::AutoencoderConfig ae_cfg;
  ae_cfg.input_dim = model_->config().d_model;
  ae_cfg.code_dim = 32;
  ae_cfg.steps = 300;
  compress::Autoencoder ae(ae_cfg);
  {
    std::vector<Matrix> rows;
    for (int i = 0; i < 32; ++i)
      rows.push_back(model_->embed(task_->sample(rng.uniform_index(6), rng).input));
    ae.train(rows);
  }
  const std::size_t n_vt = 6;
  std::vector<Matrix> keys;
  std::vector<std::size_t> key_domain;
  for (std::size_t d = 0; d < 4; ++d) {
    std::vector<llm::TrainExample> ex;
    std::vector<data::Sample> ss;
    for (int i = 0; i < 4; ++i) {
      ss.push_back(task_->sample(d, rng));
      ex.push_back(ss.back().example);
    }
    llm::TunerConfig tc;
    tc.steps = 40;
    tc.n_virtual_tokens = n_vt;
    tc.seed = 60 + d;
    tc.init = resample_rows(model_->embed(ss[0].input), n_vt);
    keys.push_back(ae.encode(resample_rows(llm::SoftPromptTuner(tc).train(*model_, ex), n_vt)));
    key_domain.push_back(d);
  }
  retrieval::CimRetriever::Config rcfg;
  rcfg.algorithm = retrieval::Algorithm::SSA;
  rcfg.variation = {nvm::fefet3(), 0.1};
  retrieval::CimRetriever retriever(rcfg);
  Rng store_rng(5);
  retriever.store(keys, store_rng);

  int hits = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    const std::size_t d = rng.uniform_index(4);
    const data::Sample q = task_->sample(d, rng);
    const Matrix qr = ae.encode(resample_rows(model_->embed(q.input), n_vt));
    hits += key_domain[retriever.retrieve(qr)] == d ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(hits) / n, 0.3);  // chance = 0.25
}

}  // namespace
}  // namespace nvcim::core
