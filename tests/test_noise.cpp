#include <gtest/gtest.h>

#include <cmath>

#include "nvcim/core/noise.hpp"

namespace nvcim::core {
namespace {

TEST(NoiseBands, FactorSelection) {
  NoiseBandConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.factor_for(0.9), cfg.f1);
  EXPECT_DOUBLE_EQ(cfg.factor_for(0.76), cfg.f1);
  EXPECT_DOUBLE_EQ(cfg.factor_for(0.75), cfg.f2);
  EXPECT_DOUBLE_EQ(cfg.factor_for(0.5), cfg.f2);
  EXPECT_DOUBLE_EQ(cfg.factor_for(0.49), cfg.f3);
  EXPECT_DOUBLE_EQ(cfg.factor_for(0.25), cfg.f3);
  EXPECT_DOUBLE_EQ(cfg.factor_for(0.24), cfg.f4);
  EXPECT_DOUBLE_EQ(cfg.factor_for(0.0), cfg.f4);
}

TEST(InjectBandedNoise, ZeroMatrixUnchanged) {
  Rng rng(1);
  const Matrix s(3, 4, 0.0f);
  EXPECT_TRUE(allclose(inject_banded_noise(s, {}, rng), s));
}

TEST(InjectBandedNoise, ZeroSigmaIsIdentity) {
  Rng rng(2);
  const Matrix s = Matrix::randn(4, 4, rng);
  NoiseBandConfig cfg;
  cfg.sigma = 0.0;
  EXPECT_TRUE(allclose(inject_banded_noise(s, cfg, rng), s));
}

TEST(InjectBandedNoise, NoiseScaledByMaxAbs) {
  // Eq. 4: S' = S + N·max|S|. Scaling the input scales the noise linearly.
  NoiseBandConfig cfg;
  cfg.sigma = 0.1;
  Matrix s(1, 1000, 1.0f);  // every entry in the top band (|Ŝ|=1)
  Rng r1(3);
  const Matrix a = inject_banded_noise(s, cfg, r1);
  Matrix s10 = s * 10.0f;
  Rng r2(3);
  const Matrix b = inject_banded_noise(s10, cfg, r2);
  // Same RNG stream -> identical normalized noise, 10× absolute noise.
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_NEAR(b.at_flat(i) - 10.0f, 10.0f * (a.at_flat(i) - 1.0f), 1e-4f);
}

TEST(InjectBandedNoise, TopBandStatistics) {
  NoiseBandConfig cfg;
  cfg.sigma = 0.1;
  Matrix s(1, 20000, 2.0f);  // max|S| = 2, all entries |Ŝ| = 1 -> f1 band
  Rng rng(4);
  const Matrix out = inject_banded_noise(s, cfg, rng);
  double sq = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double d = out.at_flat(i) - 2.0;
    sq += d * d;
  }
  const double stddev = std::sqrt(sq / s.size());
  // Expected: sigma · f1 · max|S| = 0.1 · 1.0 · 2.0 = 0.2.
  EXPECT_NEAR(stddev, 0.2, 0.01);
}

TEST(InjectBandedNoise, SmallMagnitudesGetLessNoise) {
  NoiseBandConfig cfg;
  cfg.sigma = 0.2;
  // Half the entries at max magnitude, half tiny.
  Matrix s(1, 20000, 0.0f);
  for (std::size_t i = 0; i < 10000; ++i) s.at_flat(i) = 1.0f;
  for (std::size_t i = 10000; i < 20000; ++i) s.at_flat(i) = 0.05f;
  Rng rng(5);
  const Matrix out = inject_banded_noise(s, cfg, rng);
  double sq_hi = 0.0, sq_lo = 0.0;
  for (std::size_t i = 0; i < 10000; ++i) {
    const double d = out.at_flat(i) - 1.0;
    sq_hi += d * d;
  }
  for (std::size_t i = 10000; i < 20000; ++i) {
    const double d = out.at_flat(i) - 0.05;
    sq_lo += d * d;
  }
  // Band factors: f1 = 1.0 vs f4 = 0.4 -> variance ratio 6.25.
  EXPECT_NEAR(std::sqrt(sq_hi / sq_lo), 2.5, 0.2);
}

TEST(MakeNoiseHook, WrapsInjection) {
  NoiseBandConfig cfg;
  cfg.sigma = 0.1;
  llm::PerturbFn hook = make_noise_hook(cfg);
  ASSERT_TRUE(static_cast<bool>(hook));
  Rng r1(6), r2(6);
  const Matrix s = Matrix::randn(2, 3, r1);
  const Matrix via_hook = hook(s, r2);
  Rng r3(6);
  Matrix direct_src = Matrix::randn(2, 3, r3);
  EXPECT_EQ(via_hook.rows(), 2u);
  EXPECT_FALSE(allclose(via_hook, s));  // noise applied
}

}  // namespace
}  // namespace nvcim::core
