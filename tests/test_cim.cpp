#include <gtest/gtest.h>

#include <cmath>

#include "nvcim/cim/accelerator.hpp"
#include "nvcim/cim/perf.hpp"
#include "nvcim/cim/quant.hpp"

namespace nvcim::cim {
namespace {

nvm::VariationModel noiseless() { return {nvm::rram1(), 0.0}; }

CrossbarConfig small_config() {
  CrossbarConfig cfg;
  cfg.rows = 32;
  cfg.cols = 16;
  cfg.adc_bits = 0;  // ideal unless a test enables it
  return cfg;
}

Matrix random_int_matrix(std::size_t r, std::size_t c, long lo, long hi, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.at_flat(i) = static_cast<float>(
        lo + static_cast<long>(rng.uniform_index(static_cast<std::size_t>(hi - lo + 1))));
  return m;
}

TEST(Quant, RoundtripWithinHalfLsb) {
  Rng rng(1);
  const Matrix x = Matrix::randn(4, 5, rng);
  const QuantizedMatrix q = quantize_symmetric(x, 16);
  const Matrix back = q.dequantize();
  EXPECT_TRUE(allclose(back, x, q.scale * 0.51f, 0.0f));
}

TEST(Quant, IntegerEntriesWithinRange) {
  Rng rng(2);
  const Matrix x = Matrix::randn(3, 3, rng, 10.0f);
  const QuantizedMatrix q = quantize_symmetric(x, 8);
  for (std::size_t i = 0; i < q.q.size(); ++i) {
    EXPECT_FLOAT_EQ(q.q.at_flat(i), std::round(q.q.at_flat(i)));
    EXPECT_LE(std::fabs(q.q.at_flat(i)), 127.0f);
  }
}

TEST(Quant, ZeroMatrixSafe) {
  const QuantizedMatrix q = quantize_symmetric(Matrix(2, 2, 0.0f), 16);
  EXPECT_FLOAT_EQ(q.scale, 1.0f);
  EXPECT_FLOAT_EQ(q.q.max_abs(), 0.0f);
}

TEST(CrossbarConfig, SliceCountForInt16Differential) {
  CrossbarConfig cfg;  // 2-bit cells, 16-bit values, differential
  EXPECT_EQ(cfg.levels(), 4u);
  EXPECT_EQ(cfg.n_slices(), 8u);  // 15 magnitude bits / 2
}

TEST(Crossbar, NoiselessRoundtripExact) {
  Crossbar xb(small_config());
  Rng rng(3);
  const Matrix w = random_int_matrix(8, 6, -1000, 1000, rng);
  xb.program(w, noiseless(), rng);
  EXPECT_TRUE(allclose(xb.read_values(), w, 1e-3f, 0.0f));
}

TEST(Crossbar, NoiselessMatvecExact) {
  Crossbar xb(small_config());
  Rng rng(4);
  const Matrix w = random_int_matrix(8, 6, -500, 500, rng);
  xb.program(w, noiseless(), rng);
  const Matrix x = Matrix::randn(1, 8, rng);
  const Matrix y = xb.matvec(x);
  const Matrix expected = matmul(x, w);
  EXPECT_TRUE(allclose(y, expected, 0.05f, 1e-3f));
}

TEST(Crossbar, RejectsOversizedMatrix) {
  Crossbar xb(small_config());
  Rng rng(5);
  EXPECT_THROW(xb.program(Matrix(33, 4, 1.0f), noiseless(), rng), Error);
  EXPECT_THROW(xb.program(Matrix(4, 17, 1.0f), noiseless(), rng), Error);
}

TEST(Crossbar, RejectsNonIntegerAndOverflow) {
  Crossbar xb(small_config());
  Rng rng(6);
  EXPECT_THROW(xb.program(Matrix(2, 2, 0.5f), noiseless(), rng), Error);
  EXPECT_THROW(xb.program(Matrix(2, 2, 40000.0f), noiseless(), rng), Error);
}

TEST(Crossbar, MatvecRequiresProgramming) {
  Crossbar xb(small_config());
  Matrix x(1, 8, 1.0f);
  EXPECT_THROW(xb.matvec(x), Error);
}

TEST(Crossbar, MatvecWidthValidated) {
  Crossbar xb(small_config());
  Rng rng(7);
  xb.program(Matrix(8, 4, 1.0f), noiseless(), rng);
  EXPECT_THROW(xb.matvec(Matrix(1, 9, 1.0f)), Error);
}

TEST(Crossbar, NoiseScalesWithSigma) {
  Rng rng(8);
  const Matrix w = random_int_matrix(16, 8, -2000, 2000, rng);
  auto readback_err = [&](double sigma) {
    Crossbar xb(small_config());
    Rng r(99);
    xb.program(w, {nvm::rram1(), sigma}, r);
    return (xb.read_values() - w).frobenius_norm() / w.frobenius_norm();
  };
  const float e_lo = readback_err(0.02);
  const float e_hi = readback_err(0.2);
  EXPECT_GT(e_hi, 3.0f * e_lo);
}

TEST(Crossbar, AdcQuantizationBoundedError) {
  CrossbarConfig cfg = small_config();
  cfg.adc_bits = 8;
  Crossbar ideal(small_config()), adc(cfg);
  Rng r1(9), r2(9);
  const Matrix w = random_int_matrix(16, 8, -500, 500, r1);
  ideal.program(w, noiseless(), r1);
  adc.program(w, noiseless(), r2);
  Rng rx(10);
  const Matrix x = Matrix::randn(1, 16, rx);
  const Matrix y_ideal = ideal.matvec(x);
  const Matrix y_adc = adc.matvec(x);
  const float rel =
      (y_adc - y_ideal).frobenius_norm() / std::max(1e-6f, y_ideal.frobenius_norm());
  EXPECT_GT(rel, 0.0f);   // quantization does something
  EXPECT_LT(rel, 0.25f);  // but stays bounded at 8 bits
}

TEST(Crossbar, CountersTrackActivity) {
  Crossbar xb(small_config());
  Rng rng(11);
  xb.program(Matrix(8, 4, 3.0f), noiseless(), rng);
  const auto after_program = xb.counters();
  EXPECT_EQ(after_program.cells_programmed, 8u * 4u * 8u * 2u);  // slices × polarity
  EXPECT_EQ(after_program.subarray_activations, 0u);
  xb.matvec(Matrix(1, 8, 1.0f));
  const auto after_mv = xb.counters();
  EXPECT_EQ(after_mv.subarray_activations, 16u);       // 8 slices × 2 polarities
  EXPECT_EQ(after_mv.adc_conversions, 16u * 4u);       // × active cols
  xb.reset_counters();
  EXPECT_EQ(xb.counters().subarray_activations, 0u);
}

TEST(Accelerator, MatchesIdealReferenceWithoutNoise) {
  CrossbarConfig cfg = small_config();
  Accelerator acc(cfg, noiseless());
  Rng rng(12);
  const Matrix keys = Matrix::randn(5, 70, rng);  // forces 3 row tiles
  Rng store_rng(13);
  acc.store(keys, store_rng);
  EXPECT_EQ(acc.n_keys(), 5u);
  EXPECT_EQ(acc.key_len(), 70u);
  EXPECT_EQ(acc.n_tiles(), 3u);  // ceil(70/32) × ceil(5/16)
  const Matrix q = Matrix::randn(1, 70, rng);
  const Matrix scores = acc.query(q);
  const Matrix ideal = acc.query_ideal(q);
  EXPECT_TRUE(allclose(scores, ideal, 0.05f, 0.02f));
}

TEST(Accelerator, NoisePerturbsButPreservesTopKeyMostly) {
  CrossbarConfig cfg = small_config();
  Rng rng(14);
  // Orthogonal-ish keys with one strongly matching the query.
  Matrix keys(4, 32, 0.0f);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t i = 0; i < 8; ++i) keys(k, k * 8 + i) = 1.0f;
  Accelerator acc(cfg, {nvm::fefet3(), 0.1});
  Rng store_rng(15);
  acc.store(keys, store_rng);
  Matrix q(1, 32, 0.0f);
  for (std::size_t i = 0; i < 8; ++i) q(0, 16 + i) = 1.0f;  // matches key 2
  const Matrix scores = acc.query(q);
  std::size_t best = 0;
  for (std::size_t i = 1; i < 4; ++i)
    if (scores(0, i) > scores(0, best)) best = i;
  EXPECT_EQ(best, 2u);
}

TEST(Accelerator, QueryShapeValidated) {
  Accelerator acc(small_config(), noiseless());
  Rng rng(16);
  acc.store(Matrix::randn(3, 20, rng), rng);
  EXPECT_THROW(acc.query(Matrix(1, 21, 1.0f)), Error);
  EXPECT_THROW(acc.query(Matrix(2, 20, 1.0f)), Error);
}

TEST(Perf, CimLatencyScalesWithKeys) {
  const auto p = rram_perf_22nm();
  CrossbarConfig cfg;  // 384×128
  const auto small = cim_retrieval_cost(p, cfg, 128, 384);
  const auto large = cim_retrieval_cost(p, cfg, 128 * 64, 384);
  EXPECT_GT(large.latency_ns, small.latency_ns);
  EXPECT_GT(large.energy_pj, small.energy_pj * 32.0);
}

TEST(Perf, CpuPaysSsdBeyondDramBudget) {
  CpuPerfParams cpu;
  cpu.dram_capacity_gb = 0.001;  // 1 MB budget
  const std::size_t keys = 10000, len = 768;
  const auto with_ssd = cpu_retrieval_cost(cpu, keys, len);
  cpu.dram_capacity_gb = 100.0;
  const auto without = cpu_retrieval_cost(cpu, keys, len);
  EXPECT_GT(with_ssd.latency_ns, without.latency_ns * 2.0);
}

TEST(Perf, CimBeatsCpuAtScale) {
  // The paper's headline: up to ~120× latency, ~60× energy vs Jetson CPU.
  CrossbarConfig cfg;
  const std::size_t n = 1u << 20;  // ~1M stored OVT codes
  const std::size_t len = 384;
  const auto cim = cim_retrieval_cost(fefet_perf_22nm(), cfg, n, len);
  const auto cpu = cpu_retrieval_cost(jetson_orin_cpu(), n, len);
  const double lat_ratio = cpu.latency_ns / cim.latency_ns;
  const double e_ratio = cpu.energy_pj / cim.energy_pj;
  EXPECT_GT(lat_ratio, 20.0);
  EXPECT_LT(lat_ratio, 400.0);
  EXPECT_GT(e_ratio, 10.0);
  EXPECT_LT(e_ratio, 200.0);
}

TEST(Perf, CountersBasedCostMatchesAnalytic) {
  CrossbarConfig cfg = small_config();
  Accelerator acc(cfg, noiseless());
  Rng rng(17);
  acc.store(Matrix::randn(4, 40, rng), rng);
  acc.query(Matrix::randn(1, 40, rng));
  const auto measured = cim_cost_from_counters(rram_perf_22nm(), cfg, acc.counters());
  EXPECT_GT(measured.latency_ns, 0.0);
  EXPECT_GT(measured.energy_pj, 0.0);
}

TEST(Perf, OvtSizingMatchesPaperScale) {
  OvtSizingModel sizing;  // 20 tokens × 2048 dim × fp16
  EXPECT_DOUBLE_EQ(sizing.bytes_per_ovt(), 81920.0);
  // Fig. 2a: 90×100 OVTs ≈ 700+ MB.
  EXPECT_GT(sizing.total_bytes(9000), 7e8);
  // Fig. 2b: 100k OVTs over a 0.2 GB/s SSD ≈ 40 s.
  const double secs = ssd_transfer_seconds(sizing.total_bytes(100000), jetson_orin_cpu());
  EXPECT_GT(secs, 30.0);
  EXPECT_LT(secs, 60.0);
}

class ValueBitsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ValueBitsSweep, NoiselessRoundtripExactForAllPrecisions) {
  CrossbarConfig cfg = small_config();
  cfg.value_bits = GetParam();
  Crossbar xb(cfg);
  Rng rng(18);
  const long vmax = qmax_for_bits(static_cast<int>(cfg.value_bits));
  const Matrix w = random_int_matrix(6, 6, -vmax, vmax, rng);
  xb.program(w, noiseless(), rng);
  EXPECT_TRUE(allclose(xb.read_values(), w, 1e-3f, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Precisions, ValueBitsSweep, ::testing::Values(4, 8, 12, 16));

}  // namespace
}  // namespace nvcim::cim
