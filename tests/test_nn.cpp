#include <gtest/gtest.h>

#include <cmath>

#include "nvcim/nn/layers.hpp"
#include "nvcim/nn/optim.hpp"

namespace nvcim::nn {
namespace {

TEST(Param, BinderMemoizesLeaves) {
  autograd::Tape tape;
  Binder bind(tape);
  Rng rng(1);
  Param p(Matrix::randn(2, 2, rng), "p");
  autograd::Var a = bind(p);
  autograd::Var b = bind(p);
  EXPECT_EQ(a.index(), b.index());
  EXPECT_EQ(bind.bound().size(), 1u);
}

TEST(Param, FrozenBinderDisablesGrad) {
  autograd::Tape tape;
  Binder bind(tape, /*frozen=*/true);
  Param p(Matrix(2, 2, 1.0f), "p");
  autograd::Var v = bind(p);
  (void)v;
  EXPECT_TRUE(bind.bound().empty());
}

TEST(LrSchedule, ConstantAndWarmup) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.warmup_steps = 10;
  EXPECT_NEAR(s.lr_at(0), 0.1f, 1e-5f);
  EXPECT_NEAR(s.lr_at(9), 1.0f, 1e-5f);
  EXPECT_NEAR(s.lr_at(100), 1.0f, 1e-5f);
}

TEST(LrSchedule, CosineDecaysToZero) {
  LrSchedule s;
  s.kind = LrSchedule::Kind::Cosine;
  s.base_lr = 1.0f;
  s.total_steps = 100;
  EXPECT_NEAR(s.lr_at(0), 1.0f, 1e-4f);
  EXPECT_LT(s.lr_at(99), 0.01f);
  EXPECT_GT(s.lr_at(50), 0.3f);
}

TEST(LrSchedule, StepDecay) {
  LrSchedule s;
  s.kind = LrSchedule::Kind::StepDecay;
  s.base_lr = 1.0f;
  s.step_decay_every = 10;
  s.step_decay_factor = 0.5f;
  EXPECT_NEAR(s.lr_at(5), 1.0f, 1e-6f);
  EXPECT_NEAR(s.lr_at(15), 0.5f, 1e-6f);
  EXPECT_NEAR(s.lr_at(25), 0.25f, 1e-6f);
}

TEST(Adam, MinimizesQuadratic) {
  // minimize ||x - target||² — Adam should converge quickly.
  Param x(Matrix(1, 3, 0.0f), "x");
  const Matrix target{{1.0f, -2.0f, 0.5f}};
  Adam::Config cfg;
  cfg.schedule.base_lr = 0.1f;
  Adam adam(cfg);
  for (int step = 0; step < 200; ++step) {
    autograd::Tape tape;
    autograd::Var v = tape.leaf(x.value, true);
    autograd::Var loss = tape.mse(v, target);
    tape.backward(loss);
    adam.step({{&x, v}});
  }
  EXPECT_TRUE(allclose(x.value, target, 0.02f, 0.02f));
}

TEST(Adam, SkipsParamsWithoutGrad) {
  Param used(Matrix(1, 1, 1.0f), "used");
  Param unused(Matrix(1, 1, 5.0f), "unused");
  autograd::Tape tape;
  autograd::Var vu = tape.leaf(used.value, true);
  autograd::Var vn = tape.leaf(unused.value, true);
  autograd::Var loss = tape.mean_all(vu);
  tape.backward(loss);
  Adam adam;
  adam.step({{&used, vu}, {&unused, vn}});
  EXPECT_FLOAT_EQ(unused.value(0, 0), 5.0f);
  EXPECT_NE(used.value(0, 0), 1.0f);
}

TEST(Adam, ClippingBoundsUpdate) {
  Param x(Matrix(1, 1, 0.0f), "x");
  Adam::Config cfg;
  cfg.clip_norm = 1e-3f;
  cfg.schedule.base_lr = 1.0f;
  Adam adam(cfg);
  autograd::Tape tape;
  autograd::Var v = tape.leaf(x.value, true);
  autograd::Var loss = tape.mean_all(tape.scale(v, 1e6f));
  tape.backward(loss);
  adam.step({{&x, v}});
  // Clipped gradient keeps the Adam moment estimates tiny; the first-step
  // update is bounded by lr regardless.
  EXPECT_LT(std::fabs(x.value(0, 0)), 1.1f);
}

TEST(Linear, ForwardMatchesManual) {
  Rng rng(2);
  Linear lin(3, 2, rng, "lin");
  lin.w.value = Matrix{{1, 0}, {0, 1}, {1, 1}};
  lin.b.value = Matrix{{0.5f, -0.5f}};
  autograd::Tape tape;
  Binder bind(tape, true);
  autograd::Var x = tape.leaf(Matrix{{1, 2, 3}}, false);
  const Matrix y = lin.forward(bind, x).value();
  EXPECT_FLOAT_EQ(y(0, 0), 4.5f);
  EXPECT_FLOAT_EQ(y(0, 1), 4.5f);
}

TEST(CausalMask, BlocksFutureAllowsPrefix) {
  const Matrix m = causal_mask(3, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  // Prefix columns always visible.
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 0.0f);
  // Self visible, future blocked.
  EXPECT_FLOAT_EQ(m(0, 2), 0.0f);
  EXPECT_LT(m(0, 3), -1e8f);
  EXPECT_FLOAT_EQ(m(2, 4), 0.0f);
}

TEST(Attention, OutputShapeAndFiniteness) {
  Rng rng(3);
  MultiHeadSelfAttention attn(8, 2, rng, "attn");
  autograd::Tape tape;
  Binder bind(tape, true);
  autograd::Var x = tape.leaf(Matrix::randn(5, 8, rng), false);
  const Matrix y = attn.forward(bind, x).value();
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 8u);
  EXPECT_TRUE(y.all_finite());
}

TEST(Attention, CausalityHoldsForSuffixChange) {
  // Changing a later token must not change earlier rows' output.
  Rng rng(4);
  MultiHeadSelfAttention attn(8, 2, rng, "attn");
  Matrix x1 = Matrix::randn(4, 8, rng);
  Matrix x2 = x1;
  for (std::size_t c = 0; c < 8; ++c) x2(3, c) += 1.0f;

  auto run = [&](const Matrix& x) {
    autograd::Tape tape;
    Binder bind(tape, true);
    return attn.forward(bind, tape.leaf(x, false)).value();
  };
  const Matrix y1 = run(x1), y2 = run(x2);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 8; ++c) EXPECT_NEAR(y1(r, c), y2(r, c), 1e-5f);
}

TEST(Attention, PrefixKvChangesOutput) {
  Rng rng(5);
  MultiHeadSelfAttention attn(8, 2, rng, "attn");
  const Matrix x = Matrix::randn(3, 8, rng);
  KvPrefix prefix{Matrix::randn(2, 8, rng), Matrix::randn(2, 8, rng)};

  autograd::Tape t1;
  Binder b1(t1, true);
  const Matrix y_plain = attn.forward(b1, t1.leaf(x, false)).value();
  autograd::Tape t2;
  Binder b2(t2, true);
  const Matrix y_prefix = attn.forward(b2, t2.leaf(x, false), &prefix).value();
  EXPECT_EQ(y_prefix.rows(), 3u);
  EXPECT_FALSE(allclose(y_plain, y_prefix, 1e-4f, 1e-4f));
}

TEST(Attention, HeadCountMustDivideModel) {
  Rng rng(6);
  EXPECT_THROW(MultiHeadSelfAttention(10, 3, rng, "bad"), Error);
}

TEST(TransformerBlock, ResidualPathPreservesShape) {
  Rng rng(7);
  TransformerBlock block(8, 2, 16, rng, "blk");
  autograd::Tape tape;
  Binder bind(tape, true);
  const Matrix y = block.forward(bind, tape.leaf(Matrix::randn(6, 8, rng), false)).value();
  EXPECT_EQ(y.rows(), 6u);
  EXPECT_EQ(y.cols(), 8u);
  EXPECT_TRUE(y.all_finite());
}

TEST(TransformerBlock, CollectGathersAllParams) {
  Rng rng(8);
  TransformerBlock block(8, 2, 16, rng, "blk");
  ParamSet ps;
  block.collect(ps);
  // ln1(2) + ln2(2) + attn(4 linears × 2) + ffn(2 linears × 2) = 16
  EXPECT_EQ(ps.all().size(), 16u);
  EXPECT_GT(ps.parameter_count(), 0u);
}

TEST(TransformerBlock, TrainableEndToEnd) {
  // One block + pooling can fit a fixed random target — sanity of gradients
  // flowing through attention, layernorm and GELU jointly.
  Rng rng(9);
  TransformerBlock block(8, 2, 16, rng, "blk");
  const Matrix x = Matrix::randn(4, 8, rng);
  const Matrix target(1, 1, 0.7f);
  ParamSet ps;
  block.collect(ps);
  Adam::Config cfg;
  cfg.schedule.base_lr = 0.01f;
  Adam adam(cfg);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 60; ++step) {
    autograd::Tape tape;
    Binder bind(tape, false);
    autograd::Var out = block.forward(bind, tape.leaf(x, false));
    autograd::Var loss = tape.mse(tape.mean_all(out), target);
    tape.backward(loss);
    adam.step(bind.bound());
    if (step == 0) first_loss = loss.value()(0, 0);
    last_loss = loss.value()(0, 0);
  }
  EXPECT_LT(last_loss, first_loss * 0.2f);
}

}  // namespace
}  // namespace nvcim::nn
